#include "io/yield_writers.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace vipvt {

namespace {

// Fixed-width float formatting: locale-independent and stable across
// runs, so serialized reports are byte-comparable.
std::string num(double v, int digits = 6) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

template <typename F>
void open_and_write(const std::string& path, F&& writer) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  writer(os);
  if (!os) throw std::runtime_error("write failed: " + path);
}

void write_stats_json(std::ostream& os, const RunningStats& s) {
  os << "{\"count\": " << s.count() << ", \"mean\": " << num(s.mean())
     << ", \"stddev\": " << num(s.stddev()) << ", \"min\": " << num(s.min())
     << ", \"max\": " << num(s.max()) << "}";
}

}  // namespace

void write_yield_csv(std::ostream& os, const WaferModel& wafer,
                     const YieldReport& report) {
  if (report.dies.size() != wafer.num_dies()) {
    throw std::invalid_argument("write_yield_csv: report/wafer die mismatch");
  }
  os << "die_id,grid_col,grid_row,center_x_mm,center_y_mm,field_x_mm,"
        "field_y_mm,mc_severity,mc_samples,mc_stop,detected_severity,policy,"
        "islands_raised,timing_met,escalated,missed_violation,wns_all_low_ns,"
        "wns_final_ns,fmax_ghz,total_mw,leakage_mw,triage,triage_margin_ns,"
        "triage_band_ns,policy_mix\n";
  for (const DieOutcome& d : report.dies) {
    const WaferDie& g = wafer.dies()[static_cast<std::size_t>(d.die_id)];
    os << d.die_id << ',' << wafer.grid_col(g) << ',' << wafer.grid_row(g)
       << ',' << num(g.center_mm.x, 3) << ',' << num(g.center_mm.y, 3) << ','
       << num(g.location.chip_origin_mm.x, 3) << ','
       << num(g.location.chip_origin_mm.y, 3) << ',' << d.mc_severity << ','
       << d.mc_samples << ',' << mc_stop_name(d.mc_stop) << ','
       << d.detected_severity << ',' << tuning_policy_name(d.policy) << ','
       << d.islands_raised << ',' << int{d.timing_met} << ','
       << int{d.escalated} << ',' << int{d.missed_violation} << ','
       << num(d.wns_all_low_ns) << ',' << num(d.wns_final_ns) << ','
       << num(d.fmax_ghz) << ',' << num(d.total_mw) << ','
       << num(d.leakage_mw) << ',' << triage_tier_name(d.triage_tier) << ','
       << num(d.triage_margin_ns) << ',' << num(d.triage_band_ns) << ','
       << report.portfolio.mix << '\n';
  }
}

void write_yield_json(std::ostream& os, const YieldReport& report) {
  os << "{\n";
  os << "  \"wafer\": {\"diameter_mm\": " << num(report.wafer.wafer_diameter_mm, 1)
     << ", \"edge_exclusion_mm\": " << num(report.wafer.edge_exclusion_mm, 1)
     << ", \"field_mm\": " << num(report.wafer.field_mm, 1)
     << ", \"die_mm\": " << num(report.wafer.die_mm, 1) << "},\n";
  os << "  \"mc_samples\": " << report.config.mc.samples << ",\n";
  // Adaptive sequential-sampling accounting (DESIGN.md §14): zero savings
  // and drawn == budget for fixed-budget runs, so dashboards can diff the
  // two modes without a schema switch.
  os << "  \"mc_adaptive\": "
     << (report.config.mc.adaptive.enabled ? "true" : "false") << ",\n";
  os << "  \"mc_samples_drawn\": " << report.mc_samples_drawn << ",\n";
  os << "  \"mc_samples_budget\": " << report.mc_samples_budget << ",\n";
  os << "  \"mc_sample_savings\": " << num(report.mc_sample_savings())
     << ",\n";
  os << "  \"mc_converged_dies\": " << report.mc_converged_dies << ",\n";
  // Analytic screen accounting (DESIGN.md §16 triage, §19 macromodel):
  // all counts are 0, the fraction 0, and the tier "flat" when no
  // screen is on, so the schema never switches.
  os << "  \"triage\": {\"enabled\": "
     << (report.config.effective_tier() != EvalTier::Flat ? "true" : "false")
     << ", \"tier\": \"" << eval_tier_name(report.config.effective_tier())
     << "\", \"analytical\": " << report.triage_analytical
     << ", \"macro\": " << report.triage_macro
     << ", \"mc_fallback\": " << report.triage_mc_fallback
     << ", \"fraction\": " << num(report.triage_fraction())
     << ", \"confidence\": " << num(report.config.triage.confidence)
     << ", \"band_scale\": " << num(report.config.triage.band_scale)
     << ", \"model_error_ns\": " << num(report.config.triage.model_error_ns)
     << "},\n";
  // Compensation-policy portfolio provenance (DESIGN.md §18): the
  // default vi-only stamp when the analyzer runs on an untransformed
  // netlist, so the schema never switches.
  os << "  \"portfolio\": {\"mix\": \"" << report.portfolio.mix
     << "\", \"sizing\": " << (report.portfolio.sizing ? "true" : "false")
     << ", \"buffering\": " << (report.portfolio.buffering ? "true" : "false")
     << ", \"gates_upsized\": " << report.portfolio.gates_upsized
     << ", \"buffers_inserted\": " << report.portfolio.buffers_inserted
     << ", \"nets_buffered\": " << report.portfolio.nets_buffered
     << ", \"crit_samples\": " << report.portfolio.crit_samples
     << ", \"area_um2\": " << num(report.portfolio.area_um2)
     << ", \"area_delta_um2\": " << num(report.portfolio.area_delta_um2)
     << "},\n";
  os << "  \"seed\": " << report.config.seed << ",\n";
  os << "  \"total_dies\": " << report.total_dies() << ",\n";
  os << "  \"shipped_dies\": " << report.shipped_dies() << ",\n";
  os << "  \"parametric_yield\": " << num(report.parametric_yield()) << ",\n";

  os << "  \"policy_count\": {";
  for (int p = 0; p < kNumTuningPolicies; ++p) {
    os << (p ? ", " : "") << '"'
       << tuning_policy_name(static_cast<TuningPolicy>(p))
       << "\": " << report.policy_count[static_cast<std::size_t>(p)];
  }
  os << "},\n";

  os << "  \"island_activation\": [";
  for (std::size_t k = 0; k < report.island_activation.size(); ++k) {
    os << (k ? ", " : "") << report.island_activation[k];
  }
  os << "],\n";

  os << "  \"power_mw\": {";
  for (int p = 0; p < kNumTuningPolicies; ++p) {
    os << (p ? ", " : "") << '"'
       << tuning_policy_name(static_cast<TuningPolicy>(p)) << "\": ";
    write_stats_json(os, report.power_mw[static_cast<std::size_t>(p)]);
  }
  os << "},\n";

  os << "  \"leakage_mw\": {";
  for (int p = 0; p < kNumTuningPolicies; ++p) {
    os << (p ? ", " : "") << '"'
       << tuning_policy_name(static_cast<TuningPolicy>(p)) << "\": ";
    write_stats_json(os, report.leakage_mw[static_cast<std::size_t>(p)]);
  }
  os << "},\n";

  os << "  \"fmax_ghz\": ";
  write_stats_json(os, report.fmax_ghz);
  os << ",\n";
  os << "  \"speed_bins\": {\"lo_ghz\": " << num(report.speed_bin_lo_ghz)
     << ", \"step_ghz\": " << num(report.speed_bin_step_ghz) << ", \"count\": [";
  for (std::size_t k = 0; k < report.speed_bin_count.size(); ++k) {
    os << (k ? ", " : "") << report.speed_bin_count[k];
  }
  os << "]}\n";
  os << "}\n";
}

void write_yield_csv_file(const std::string& path, const WaferModel& wafer,
                          const YieldReport& report) {
  open_and_write(path,
                 [&](std::ostream& os) { write_yield_csv(os, wafer, report); });
}

void write_yield_json_file(const std::string& path, const YieldReport& report) {
  open_and_write(path, [&](std::ostream& os) { write_yield_json(os, report); });
}

}  // namespace vipvt
