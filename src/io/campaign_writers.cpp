#include "io/campaign_writers.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "util/stats.hpp"

namespace vipvt {

namespace {

std::string num(double v, int digits = 6) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

void write_moments_json(std::ostream& os, const ExactMoments& m) {
  os << "{\"count\": " << m.count() << ", \"mean\": " << num(m.mean())
     << ", \"stddev\": " << num(m.stddev()) << ", \"min\": " << num(m.min())
     << ", \"max\": " << num(m.max()) << "}";
}

}  // namespace

void write_campaign_json(std::ostream& os, const CampaignReport& report) {
  const CampaignSpec& spec = report.spec;
  os << "{\n";
  os << "  \"schema\": \"vipvt.campaign.report\",\n";
  // Version 2: policies carry the portfolio knobs and every cell gains a
  // "portfolio" object (DESIGN.md §18).
  os << "  \"version\": 2,\n";
  os << "  \"seed\": " << spec.seed << ",\n";
  os << "  \"complete\": " << (report.complete() ? "true" : "false") << ",\n";

  os << "  \"variants\": [";
  for (std::size_t i = 0; i < report.variant_names.size(); ++i) {
    os << (i ? ", " : "") << '"' << report.variant_names[i] << '"';
  }
  os << "],\n";

  os << "  \"wafer_grids\": [";
  for (std::size_t i = 0; i < spec.wafer_grids.size(); ++i) {
    const WaferConfig& wc = spec.wafer_grids[i];
    os << (i ? ", " : "") << "{\"diameter_mm\": " << num(wc.wafer_diameter_mm, 1)
       << ", \"edge_exclusion_mm\": " << num(wc.edge_exclusion_mm, 1)
       << ", \"field_mm\": " << num(wc.field_mm, 1)
       << ", \"die_mm\": " << num(wc.die_mm, 1) << "}";
  }
  os << "],\n";

  os << "  \"sigma_scales\": [";
  for (std::size_t i = 0; i < spec.sigma_scales.size(); ++i) {
    os << (i ? ", " : "") << num(spec.sigma_scales[i], 4);
  }
  os << "],\n";

  os << "  \"policies\": [";
  for (std::size_t i = 0; i < spec.policies.size(); ++i) {
    const PolicyMix& p = spec.policies[i];
    os << (i ? ", " : "") << "{\"name\": \"" << p.name
       << "\", \"escalation\": " << (p.allow_escalation ? "true" : "false")
       << ", \"chip_wide_fallback\": "
       << (p.allow_chip_wide_fallback ? "true" : "false")
       << ", \"sizing\": " << (p.sizing.enabled ? "true" : "false")
       << ", \"sizing_min_crit_prob\": " << num(p.sizing.min_crit_prob)
       << ", \"sizing_max_upsized\": " << p.sizing.max_upsized
       << ", \"sizing_max_drive_steps\": " << p.sizing.max_drive_steps
       << ", \"buffering\": " << (p.buffering.enabled ? "true" : "false")
       << ", \"buffering_min_crit_prob\": " << num(p.buffering.min_crit_prob)
       << ", \"buffering_max_nets\": " << p.buffering.max_nets
       << ", \"buffering_min_fanout\": " << p.buffering.min_fanout
       << ", \"buffering_cluster\": " << p.buffering.cluster
       << ", \"crit_samples\": " << p.crit_samples
       << ", \"crit_seed\": " << p.crit_seed << "}";
  }
  os << "],\n";

  os << "  \"mc_samples\": [";
  for (std::size_t i = 0; i < spec.mc_samples.size(); ++i) {
    os << (i ? ", " : "") << spec.mc_samples[i];
  }
  os << "],\n";
  os << "  \"mc_adaptive\": "
     << (spec.base.mc.adaptive.enabled ? "true" : "false") << ",\n";
  os << "  \"wafers_per_cell\": " << spec.wafers_per_cell << ",\n";

  os << "  \"total_dies\": " << report.total_dies() << ",\n";
  os << "  \"shipped_dies\": " << report.shipped_dies() << ",\n";
  os << "  \"parametric_yield\": " << num(report.parametric_yield()) << ",\n";

  os << "  \"cells\": [\n";
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    const CampaignCell& cell = report.cells[c].cell;
    const YieldAggregate& a = report.cells[c].agg;
    os << "    {\"cell\": " << cell.index << ", \"variant\": \""
       << report.variant_names[cell.variant] << "\", \"wafer_grid\": "
       << cell.wafer_grid << ", \"sigma_scale\": "
       << num(spec.sigma_scales[cell.sigma], 4) << ", \"policy\": \""
       << spec.policies[cell.policy].name << "\", \"mc_samples\": "
       << spec.mc_samples[cell.samples] << ",\n";
    os << "     \"dies\": " << a.dies << ", \"shipped_dies\": "
       << a.shipped_dies() << ", \"parametric_yield\": "
       << num(a.parametric_yield()) << ",\n";

    os << "     \"policy_count\": {";
    for (int p = 0; p < kNumTuningPolicies; ++p) {
      os << (p ? ", " : "") << '"'
         << tuning_policy_name(static_cast<TuningPolicy>(p))
         << "\": " << a.policy_count[static_cast<std::size_t>(p)];
    }
    os << "},\n";

    os << "     \"island_activation\": [";
    for (std::size_t k = 0; k < a.island_activation.size(); ++k) {
      os << (k ? ", " : "") << a.island_activation[k];
    }
    os << "],\n";

    os << "     \"timing_met\": " << a.timing_met
       << ", \"escalated\": " << a.escalated
       << ", \"missed_violation\": " << a.missed_violation
       << ", \"mc_severity_sum\": " << a.mc_severity_sum << ",\n";
    os << "     \"mc_samples_drawn\": " << a.mc_samples_drawn
       << ", \"mc_samples_budget\": " << a.mc_samples_budget
       << ", \"mc_converged_dies\": " << a.mc_converged_dies << ",\n";
    os << "     \"triage_analytical\": " << a.triage_analytical
       << ", \"triage_macro\": " << a.triage_macro
       << ", \"triage_mc_fallback\": " << a.triage_mc_fallback << ",\n";

    const PortfolioStats& pf = report.cells[c].portfolio;
    os << "     \"portfolio\": {\"mix\": \"" << pf.mix
       << "\", \"sizing\": " << (pf.sizing ? "true" : "false")
       << ", \"buffering\": " << (pf.buffering ? "true" : "false")
       << ", \"gates_upsized\": " << pf.gates_upsized
       << ", \"buffers_inserted\": " << pf.buffers_inserted
       << ", \"nets_buffered\": " << pf.nets_buffered
       << ", \"crit_samples\": " << pf.crit_samples
       << ", \"area_um2\": " << num(pf.area_um2)
       << ", \"area_delta_um2\": " << num(pf.area_delta_um2) << "},\n";

    os << "     \"fmax_ghz\": ";
    write_moments_json(os, a.fmax_ghz);
    os << ",\n     \"wns_all_low_ns\": ";
    write_moments_json(os, a.wns_all_low_ns);
    os << ",\n     \"wns_final_ns\": ";
    write_moments_json(os, a.wns_final_ns);
    os << ",\n";

    os << "     \"power_mw\": {";
    for (int p = 0; p < kNumTuningPolicies; ++p) {
      os << (p ? ", " : "") << '"'
         << tuning_policy_name(static_cast<TuningPolicy>(p)) << "\": ";
      write_moments_json(os, a.power_mw[static_cast<std::size_t>(p)]);
    }
    os << "},\n";

    os << "     \"leakage_mw\": {";
    for (int p = 0; p < kNumTuningPolicies; ++p) {
      os << (p ? ", " : "") << '"'
         << tuning_policy_name(static_cast<TuningPolicy>(p)) << "\": ";
      write_moments_json(os, a.leakage_mw[static_cast<std::size_t>(p)]);
    }
    os << "}}" << (c + 1 < report.cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

void write_campaign_json_file(const std::string& path,
                              const CampaignReport& report) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  write_campaign_json(os, report);
  if (!os) throw std::runtime_error("write failed: " + path);
}

}  // namespace vipvt
