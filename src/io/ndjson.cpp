#include "io/ndjson.hpp"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <ostream>

namespace vipvt {

namespace {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

/// Locates the rendered value of `"key": ` in a JsonBuilder-produced
/// line; returns the remainder of the line starting at the value, or an
/// empty view when absent.
std::string_view value_at(std::string_view line, std::string_view key) {
  std::string pattern;
  pattern.reserve(key.size() + 4);
  pattern += '"';
  pattern += key;
  pattern += "\": ";
  const std::size_t pos = line.find(pattern);
  if (pos == std::string_view::npos) return {};
  return line.substr(pos + pattern.size());
}

bool parse_u64_at(std::string_view v, std::uint64_t& out) {
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  return ec == std::errc{} && ptr != v.data();
}

}  // namespace

JsonBuilder& JsonBuilder::value(std::string_view key,
                                std::string_view rendered) {
  if (!body_.empty()) body_ += ", ";
  body_ += '"';
  body_ += escape(key);
  body_ += "\": ";
  body_ += rendered;
  return *this;
}

JsonBuilder& JsonBuilder::u64(std::string_view key, std::uint64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return value(key, std::string_view(buf, static_cast<std::size_t>(ptr - buf)));
}

JsonBuilder& JsonBuilder::i64(std::string_view key, std::int64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return value(key, std::string_view(buf, static_cast<std::size_t>(ptr - buf)));
}

JsonBuilder& JsonBuilder::num(std::string_view key, double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return value(key, buf);
}

JsonBuilder& JsonBuilder::bits(std::string_view key, double v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "\"x%016llx\"",
                static_cast<unsigned long long>(double_bits(v)));
  return value(key, buf);
}

JsonBuilder& JsonBuilder::str(std::string_view key, std::string_view s) {
  std::string rendered;
  rendered += '"';
  rendered += escape(s);
  rendered += '"';
  return value(key, rendered);
}

JsonBuilder& JsonBuilder::raw(std::string_view key, std::string_view json) {
  return value(key, json);
}

JsonBuilder& JsonBuilder::u64_array(std::string_view key,
                                    std::span<const std::uint64_t> values) {
  std::string rendered = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) rendered += ", ";
    char buf[24];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, values[i]);
    rendered.append(buf, static_cast<std::size_t>(ptr - buf));
  }
  rendered += ']';
  return value(key, rendered);
}

std::string JsonBuilder::build() const { return "{" + body_ + "}"; }

void NdjsonWriter::record(const JsonBuilder& obj) { record_line(obj.build()); }

void NdjsonWriter::record_line(std::string_view line) {
  *os_ << line << '\n';
  os_->flush();
  ++records_;
}

bool ndjson_find_u64(std::string_view line, std::string_view key,
                     std::uint64_t& out) {
  const std::string_view v = value_at(line, key);
  if (v.empty()) return false;
  std::uint64_t parsed;
  if (!parse_u64_at(v, parsed)) return false;
  out = parsed;
  return true;
}

bool ndjson_find_i64(std::string_view line, std::string_view key,
                     std::int64_t& out) {
  const std::string_view v = value_at(line, key);
  if (v.empty()) return false;
  std::int64_t parsed;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), parsed);
  if (ec != std::errc{} || ptr == v.data()) return false;
  out = parsed;
  return true;
}

bool ndjson_find_bits(std::string_view line, std::string_view key,
                      double& out) {
  const std::string_view v = value_at(line, key);
  // "x" + 16 hex digits + closing quote.
  if (v.size() < 19 || v[0] != '"' || v[1] != 'x') return false;
  std::uint64_t bits;
  const auto [ptr, ec] = std::from_chars(v.data() + 2, v.data() + 18, bits, 16);
  if (ec != std::errc{} || ptr != v.data() + 18 || v[18] != '"') return false;
  double parsed;
  std::memcpy(&parsed, &bits, sizeof parsed);
  out = parsed;
  return true;
}

bool ndjson_find_str(std::string_view line, std::string_view key,
                     std::string& out) {
  std::string_view v = value_at(line, key);
  if (v.empty() || v[0] != '"') return false;
  v.remove_prefix(1);
  std::string parsed;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] == '"') {
      out = std::move(parsed);
      return true;
    }
    if (v[i] == '\\' && i + 1 < v.size()) {
      parsed += v[++i];
    } else {
      parsed += v[i];
    }
  }
  return false;
}

bool ndjson_find_u64_array(std::string_view line, std::string_view key,
                           std::vector<std::uint64_t>& out) {
  std::string_view v = value_at(line, key);
  if (v.empty() || v[0] != '[') return false;
  v.remove_prefix(1);
  std::vector<std::uint64_t> parsed;
  for (;;) {
    while (!v.empty() && (v[0] == ' ' || v[0] == ',')) v.remove_prefix(1);
    if (v.empty()) return false;
    if (v[0] == ']') break;
    std::uint64_t item;
    const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), item);
    if (ec != std::errc{} || ptr == v.data()) return false;
    parsed.push_back(item);
    v.remove_prefix(static_cast<std::size_t>(ptr - v.data()));
  }
  out = std::move(parsed);
  return true;
}

}  // namespace vipvt
