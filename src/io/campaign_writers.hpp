#pragma once
// Campaign-report emission.  The JSON document this writer produces is
// THE byte-compared artifact of the campaign determinism gate
// (bench/campaign_sweep, DESIGN.md §15): two runs of the same spec must
// serialize identically for any shard size, thread count, or
// kill-and-resume split.  Two consequences shape the schema:
//
//   * Nothing schedule- or partition-dependent appears: no shard size,
//     no job counts, no timings — only the spec axes and the exact
//     per-cell aggregates, which the reducers guarantee are
//     partition-invariant.
//   * All floats use fixed %.6f formatting (and the aggregates they
//     print from are bit-identical anyway), so equality is byte
//     equality.

#include <iosfwd>
#include <string>

#include "campaign/campaign.hpp"

namespace vipvt {

/// Aggregate campaign JSON: axes, totals, then one block per cell in
/// cell-index order (axis values, tallies, moment statistics).
void write_campaign_json(std::ostream& os, const CampaignReport& report);

/// File variant; throws on I/O failure.
void write_campaign_json_file(const std::string& path,
                              const CampaignReport& report);

}  // namespace vipvt
