#pragma once
// NDJSON (newline-delimited JSON) streaming primitives: the campaign
// runtime appends one self-contained JSON object per completed wafer
// shard so a consumer can `tail -f` a running campaign, and the SAME
// stream doubles as the checkpoint a killed campaign resumes from
// (DESIGN.md §15).  Three design rules follow from that double duty:
//
//   1. *Deterministic bytes.*  Keys are emitted in insertion order with
//      fixed formats, so a stream produced by any thread count or shard
//      schedule is byte-identical (records are emitted in job order).
//   2. *Exact round-trips.*  Doubles that must survive a checkpoint
//      round-trip bit-for-bit travel as IEEE-754 bit patterns
//      (JsonBuilder::bits / parse_bits), not as decimal text.
//   3. *Prefix validity.*  Every record is flushed with its trailing
//      newline; a reader treats the last line as complete only if the
//      newline is present, so a kill mid-write never corrupts the
//      resumable prefix.
//
// The field extractors parse ONLY machine-generated JsonBuilder output
// (unique keys per line, `"key": value` with one space) — they are the
// matched reader of these writers, not a general JSON parser.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace vipvt {

/// Deterministic single-object JSON builder: insertion-ordered keys,
/// fixed number formats, no whitespace surprises.  build() returns the
/// object as one line (no trailing newline).
class JsonBuilder {
 public:
  JsonBuilder& u64(std::string_view key, std::uint64_t v);
  JsonBuilder& i64(std::string_view key, std::int64_t v);
  /// Fixed-precision decimal (human-facing; NOT bit-exact round-trip).
  JsonBuilder& num(std::string_view key, double v, int digits = 6);
  /// Bit-exact double: the IEEE-754 bit pattern as a hex string
  /// ("x3ff0000000000000") — the checkpoint-grade encoding.
  JsonBuilder& bits(std::string_view key, double v);
  /// String value with minimal escaping (\\ \" and control bytes).
  JsonBuilder& str(std::string_view key, std::string_view s);
  /// Pre-serialized JSON value, emitted verbatim.
  JsonBuilder& raw(std::string_view key, std::string_view json);
  JsonBuilder& u64_array(std::string_view key,
                         std::span<const std::uint64_t> values);

  std::string build() const;

 private:
  JsonBuilder& value(std::string_view key, std::string_view rendered);
  std::string body_;  // "key": value pairs, comma-joined
};

/// Line-oriented NDJSON writer: one JSON object per line, flushed per
/// record so readers (live tails and the resume loader) always observe a
/// prefix of complete records.
class NdjsonWriter {
 public:
  /// The stream must outlive the writer.
  explicit NdjsonWriter(std::ostream& os) : os_(&os) {}

  void record(const JsonBuilder& obj);
  void record_line(std::string_view line);
  std::size_t records() const { return records_; }

 private:
  std::ostream* os_;
  std::size_t records_ = 0;
};

// ---- matched field extractors ---------------------------------------------
// All return false (leaving `out` untouched) when the key is absent or
// malformed.  Keys must be unique within the line — JsonBuilder records
// built by this library keep that invariant.

bool ndjson_find_u64(std::string_view line, std::string_view key,
                     std::uint64_t& out);
bool ndjson_find_i64(std::string_view line, std::string_view key,
                     std::int64_t& out);
/// Reads a bits()-encoded double back bit-exactly.
bool ndjson_find_bits(std::string_view line, std::string_view key,
                      double& out);
bool ndjson_find_str(std::string_view line, std::string_view key,
                     std::string& out);
bool ndjson_find_u64_array(std::string_view line, std::string_view key,
                           std::vector<std::uint64_t>& out);

}  // namespace vipvt
