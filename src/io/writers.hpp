#pragma once
// EDA interchange writers: dump the design in the standard formats the
// paper's flow moved between tools ("standard file formats do exist to
// transfer delay information between tools", §3).  These make the
// reproduction inspectable with ordinary EDA tooling:
//
//   * structural Verilog-2001 netlist       (write_verilog)
//   * DEF 5.8 placement                     (write_def)
//   * SDF 3.0 delay annotation              (write_sdf)  — the file the
//     paper's SSTA loop perturbs and re-imports into PrimeTime
//   * a Liberty-flavoured library summary   (write_liberty_summary)
//
// All writers emit deterministic output (stable ordering) so files can
// be diffed across runs.

#include <iosfwd>
#include <string>

#include "netlist/design.hpp"
#include "placement/floorplan.hpp"
#include "timing/sta.hpp"

namespace vipvt {

struct VerilogOptions {
  std::string module_name;  ///< defaults to the design name
  bool with_comments = true;
};

/// Structural Verilog: one module, library cells as primitives.
void write_verilog(std::ostream& os, const Design& design,
                   const VerilogOptions& opts = {});

struct DefOptions {
  int dbu_per_micron = 1000;
};

/// DEF: DIEAREA, ROWs, COMPONENTS with PLACED locations, PINS.
void write_def(std::ostream& os, const Design& design, const Floorplan& fp,
               const DefOptions& opts = {});

struct SdfOptions {
  std::string process = "typical";
  /// Optional per-instance delay factors (e.g. one Monte-Carlo draw or a
  /// fabricated chip) — the paper's "altered gate delays" SDF.
  std::span<const double> inst_factor{};
};

/// SDF 3.0 IOPATH delays from the engine's current base delays.
void write_sdf(std::ostream& os, const Design& design, const StaEngine& sta,
               const SdfOptions& opts = {});

/// Liberty-flavoured summary of every cell (area, pins, leakage, a
/// representative delay point per corner).  Not a full NLDM dump — a
/// human-auditable characterization record.
void write_liberty_summary(std::ostream& os, const Library& lib);

/// Convenience: write straight to a file path; throws on I/O failure.
void write_verilog_file(const std::string& path, const Design& design,
                        const VerilogOptions& opts = {});
void write_def_file(const std::string& path, const Design& design,
                    const Floorplan& fp, const DefOptions& opts = {});
void write_sdf_file(const std::string& path, const Design& design,
                    const StaEngine& sta, const SdfOptions& opts = {});

/// Identifier escaping shared by the writers: bus bits and hierarchy
/// separators become Verilog-safe escaped identifiers.
std::string verilog_escape(const std::string& name);

}  // namespace vipvt
