#include "io/writers.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace vipvt {

namespace {

bool is_simple_ident(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_')) {
    return false;
  }
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '$')) {
      return false;
    }
  }
  return true;
}

template <typename F>
void open_and_write(const std::string& path, F&& writer) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  writer(os);
  if (!os) throw std::runtime_error("write failed: " + path);
}

}  // namespace

std::string verilog_escape(const std::string& name) {
  // Bus bits like "instr[3]" are valid escaped identifiers; simple names
  // pass through, everything else gets the backslash-escape form.
  if (is_simple_ident(name)) return name;
  return "\\" + name + " ";
}

void write_verilog(std::ostream& os, const Design& design,
                   const VerilogOptions& opts) {
  const Library& lib = design.lib();
  const std::string module =
      opts.module_name.empty() ? design.name() : opts.module_name;

  if (opts.with_comments) {
    os << "// Structural netlist emitted by vipvt\n"
       << "// library: " << lib.name() << ", instances: "
       << design.num_instances() << ", nets: " << design.num_nets() << "\n";
  }
  os << "module " << verilog_escape(module) << " (";
  bool first = true;
  for (NetId n : design.primary_inputs()) {
    os << (first ? "" : ", ") << verilog_escape(design.net(n).name);
    first = false;
  }
  for (NetId n : design.primary_outputs()) {
    os << (first ? "" : ", ") << verilog_escape(design.net(n).name);
    first = false;
  }
  os << ");\n";

  for (NetId n : design.primary_inputs()) {
    os << "  input " << verilog_escape(design.net(n).name) << ";\n";
  }
  for (NetId n : design.primary_outputs()) {
    os << "  output " << verilog_escape(design.net(n).name) << ";\n";
  }
  for (NetId n = 0; n < design.num_nets(); ++n) {
    const Net& net = design.net(n);
    if (net.is_primary_input || net.is_primary_output) continue;
    os << "  wire " << verilog_escape(net.name) << ";\n";
  }

  for (InstId i = 0; i < design.num_instances(); ++i) {
    const Instance& inst = design.instance(i);
    const Cell& cell = lib.cell(inst.cell);
    os << "  " << cell.name << " " << verilog_escape(inst.name) << " (";
    for (std::size_t p = 0; p < cell.pins.size(); ++p) {
      os << (p ? ", " : "") << "." << cell.pins[p].name << "("
         << verilog_escape(design.net(inst.conns[p]).name) << ")";
    }
    os << ");\n";
  }
  os << "endmodule\n";
}

void write_def(std::ostream& os, const Design& design, const Floorplan& fp,
               const DefOptions& opts) {
  const int dbu = opts.dbu_per_micron;
  auto to_dbu = [&](double um) {
    return static_cast<long long>(std::llround(um * dbu));
  };
  os << "VERSION 5.8 ;\nDIVIDERCHAR \"/\" ;\nBUSBITCHARS \"[]\" ;\n";
  os << "DESIGN " << design.name() << " ;\n";
  os << "UNITS DISTANCE MICRONS " << dbu << " ;\n";
  const Rect& die = fp.die();
  os << "DIEAREA ( " << to_dbu(die.lo.x) << " " << to_dbu(die.lo.y)
     << " ) ( " << to_dbu(die.hi.x) << " " << to_dbu(die.hi.y) << " ) ;\n";
  for (int r = 0; r < fp.num_rows(); ++r) {
    os << "ROW row_" << r << " core " << to_dbu(die.lo.x) << " "
       << to_dbu(fp.row_y(r)) << " " << (r % 2 ? "FS" : "N") << " DO "
       << fp.sites_per_row() << " BY 1 STEP " << to_dbu(fp.site_width())
       << " 0 ;\n";
  }

  std::size_t placed = 0;
  for (InstId i = 0; i < design.num_instances(); ++i) {
    placed += design.instance(i).placed;
  }
  os << "COMPONENTS " << placed << " ;\n";
  for (InstId i = 0; i < design.num_instances(); ++i) {
    const Instance& inst = design.instance(i);
    if (!inst.placed) continue;
    os << "  - " << inst.name << " " << design.cell_of(i).name << " + PLACED ( "
       << to_dbu(inst.pos.x) << " " << to_dbu(inst.pos.y) << " ) N ;\n";
  }
  os << "END COMPONENTS\n";

  const auto pins =
      design.primary_inputs().size() + design.primary_outputs().size();
  os << "PINS " << pins << " ;\n";
  for (NetId n : design.primary_inputs()) {
    os << "  - " << design.net(n).name << " + NET " << design.net(n).name
       << " + DIRECTION INPUT ;\n";
  }
  for (NetId n : design.primary_outputs()) {
    os << "  - " << design.net(n).name << " + NET " << design.net(n).name
       << " + DIRECTION OUTPUT ;\n";
  }
  os << "END PINS\nEND DESIGN\n";
}

void write_sdf(std::ostream& os, const Design& design, const StaEngine& sta,
               const SdfOptions& opts) {
  os << "(DELAYFILE\n"
     << "  (SDFVERSION \"3.0\")\n"
     << "  (DESIGN \"" << design.name() << "\")\n"
     << "  (PROCESS \"" << opts.process << "\")\n"
     << "  (TIMESCALE 1ns)\n";
  // Group arcs per instance for one CELL entry each.
  struct Arc {
    std::uint16_t from, to;
    double delay;
  };
  std::map<InstId, std::vector<Arc>> arcs;
  sta.for_each_cell_arc([&](InstId inst, std::uint16_t from, std::uint16_t to,
                            double delay) {
    double f = 1.0;
    if (!opts.inst_factor.empty()) f = opts.inst_factor[inst];
    arcs[inst].push_back({from, to, delay * f});
  });
  for (const auto& [inst_id, list] : arcs) {
    const Instance& inst = design.instance(inst_id);
    const Cell& cell = design.cell_of(inst_id);
    os << "  (CELL (CELLTYPE \"" << cell.name << "\")\n"
       << "    (INSTANCE " << inst.name << ")\n"
       << "    (DELAY (ABSOLUTE\n";
    for (const auto& arc : list) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.6f", arc.delay);
      os << "      (IOPATH " << cell.pins[arc.from].name << " "
         << cell.pins[arc.to].name << " (" << buf << ") (" << buf << "))\n";
    }
    os << "    ))\n  )\n";
  }
  os << ")\n";
}

void write_liberty_summary(std::ostream& os, const Library& lib) {
  const CharParams& cp = lib.char_params();
  os << "/* vipvt library summary (liberty-flavoured, not a full NLDM dump) */\n";
  os << "library (" << lib.name() << ") {\n";
  os << "  /* corners: " << cp.vdd_low << "V, " << cp.vdd_high
     << "V; vth0 svt/hvt/uhvt = " << cp.vth0 << "/" << cp.vth0_hvt << "/"
     << cp.vth0_uhvt << " V */\n";
  os << "  time_unit : \"1ns\";\n  capacitive_load_unit (1, pf);\n";
  for (const auto& cell : lib.cells()) {
    os << "  cell (" << cell.name << ") {\n"
       << "    area : " << cell.area_um2 << ";\n"
       << "    cell_leakage_power : " << cell.leakage_mw[kVddLow] * 1e6
       << "; /* nW at " << cp.vdd_low << "V */\n";
    for (const auto& pin : cell.pins) {
      os << "    pin (" << pin.name << ") { direction : "
         << (pin.is_input ? "input" : "output");
      if (pin.is_input) os << "; capacitance : " << pin.cap_pf;
      if (pin.is_clock) os << "; clock : true";
      os << "; }\n";
    }
    if (!cell.arcs.empty()) {
      const auto& arc = cell.arcs.front();
      os << "    /* representative delay (slew 0.02ns, load 0.005pF): "
         << arc.corner[kVddLow].delay.lookup(0.02, 0.005) << "ns @"
         << cp.vdd_low << "V, "
         << arc.corner[kVddHigh].delay.lookup(0.02, 0.005) << "ns @"
         << cp.vdd_high << "V */\n";
    }
    os << "  }\n";
  }
  os << "}\n";
}

void write_verilog_file(const std::string& path, const Design& design,
                        const VerilogOptions& opts) {
  open_and_write(path, [&](std::ostream& os) { write_verilog(os, design, opts); });
}

void write_def_file(const std::string& path, const Design& design,
                    const Floorplan& fp, const DefOptions& opts) {
  open_and_write(path, [&](std::ostream& os) { write_def(os, design, fp, opts); });
}

void write_sdf_file(const std::string& path, const Design& design,
                    const StaEngine& sta, const SdfOptions& opts) {
  open_and_write(path, [&](std::ostream& os) { write_sdf(os, design, sta, opts); });
}

}  // namespace vipvt
