#pragma once
// Yield-report emission: the wafer-scale results leave the virtual fab
// in the two formats downstream consumers actually take — a per-die CSV
// (one row per die, for pandas/spreadsheet slicing) and an aggregate
// JSON document (for dashboards and the bench trajectory files).  Like
// every writer in this library, output is deterministic: fixed column
// order, die-id row order, fixed float formatting — so reports diff
// cleanly across runs and thread counts (test_yield.cpp compares
// serialized reports byte-for-byte).

#include <iosfwd>
#include <string>

#include "yield/yield.hpp"

namespace vipvt {

/// CSV, one row per die: id, location, MC severity, policy, islands,
/// timing, wns, fmax, power.
void write_yield_csv(std::ostream& os, const WaferModel& wafer,
                     const YieldReport& report);

/// JSON: wafer config, yield/policy counts, island activation, power
/// stats per policy, speed bins.  Not a per-die dump — pair with the CSV.
void write_yield_json(std::ostream& os, const YieldReport& report);

/// Convenience file variants; throw on I/O failure.
void write_yield_csv_file(const std::string& path, const WaferModel& wafer,
                          const YieldReport& report);
void write_yield_json_file(const std::string& path, const YieldReport& report);

}  // namespace vipvt
