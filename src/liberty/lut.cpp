#include "liberty/lut.hpp"

#include <algorithm>
#include <stdexcept>

namespace vipvt {

Lut2D::Lut2D(std::vector<double> slews, std::vector<double> loads,
             std::vector<double> values)
    : slews_(std::move(slews)), loads_(std::move(loads)),
      values_(std::move(values)) {
  if (slews_.empty() || loads_.empty() ||
      values_.size() != slews_.size() * loads_.size()) {
    throw std::invalid_argument("Lut2D: axis/value size mismatch");
  }
  if (!std::is_sorted(slews_.begin(), slews_.end()) ||
      !std::is_sorted(loads_.begin(), loads_.end())) {
    throw std::invalid_argument("Lut2D: axes must be increasing");
  }
}

double Lut2D::at(std::size_t si, std::size_t li) const {
  return values_.at(si * loads_.size() + li);
}

namespace {

/// Index of the lower grid point for interpolation; clamps so that the
/// bracketing pair [i, i+1] always exists (=> extrapolation at the edges).
std::size_t lower_index(const std::vector<double>& axis, double x) {
  if (axis.size() == 1) return 0;
  auto it = std::upper_bound(axis.begin(), axis.end(), x);
  auto idx = static_cast<std::size_t>(std::distance(axis.begin(), it));
  if (idx == 0) return 0;
  if (idx >= axis.size()) return axis.size() - 2;
  return idx - 1;
}

double fraction(const std::vector<double>& axis, std::size_t i, double x) {
  if (axis.size() == 1) return 0.0;
  const double span = axis[i + 1] - axis[i];
  return span > 0.0 ? (x - axis[i]) / span : 0.0;
}

}  // namespace

double Lut2D::lookup(double slew, double load) const {
  const std::size_t si = lower_index(slews_, slew);
  const std::size_t li = lower_index(loads_, load);
  const double fs = fraction(slews_, si, slew);
  const double fl = fraction(loads_, li, load);
  const std::size_t si1 = std::min(si + 1, slews_.size() - 1);
  const std::size_t li1 = std::min(li + 1, loads_.size() - 1);
  const double v00 = at(si, li);
  const double v01 = at(si, li1);
  const double v10 = at(si1, li);
  const double v11 = at(si1, li1);
  const double lo = v00 + (v01 - v00) * fl;
  const double hi = v10 + (v11 - v10) * fl;
  return lo + (hi - lo) * fs;
}

}  // namespace vipvt
