#pragma once
// NLDM-style 2-D lookup table: value = f(input_slew, output_load), with
// bilinear interpolation inside the characterized grid and linear
// extrapolation outside it (the same convention liberty delay calculators
// use).  Axes are strictly increasing.

#include <cstddef>
#include <vector>

namespace vipvt {

class Lut2D {
 public:
  Lut2D() = default;

  /// rows follow `slews` (axis 1), columns follow `loads` (axis 2).
  Lut2D(std::vector<double> slews, std::vector<double> loads,
        std::vector<double> values);

  bool empty() const { return values_.empty(); }
  std::size_t slew_points() const { return slews_.size(); }
  std::size_t load_points() const { return loads_.size(); }
  const std::vector<double>& slew_axis() const { return slews_; }
  const std::vector<double>& load_axis() const { return loads_; }
  double at(std::size_t si, std::size_t li) const;

  /// Bilinear interpolation / linear extrapolation.
  double lookup(double slew, double load) const;

 private:
  std::vector<double> slews_;
  std::vector<double> loads_;
  std::vector<double> values_;  // row-major [slew][load]
};

}  // namespace vipvt
