#pragma once
// The cell library: a set of characterized cells plus the technology
// parameters (device physics, wire parasitics) every downstream engine
// shares.  `make_st65lp_like()` reconstructs a dual-Vdd 65 nm low-power
// library in the spirit of the STMicroelectronics library the paper used:
// 1.0 V and 1.2 V corners, low leakage, dedicated level-shifter and
// Razor-flip-flop cells.

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "liberty/cell.hpp"
#include "liberty/physics.hpp"

namespace vipvt {

/// Interconnect parasitics for the wire-delay estimator (per um of
/// estimated route length).
struct WireParams {
  double r_kohm_per_um = 0.0010;  ///< 1 Ohm/um, mid-layer 65 nm metal
  double c_pf_per_um = 0.00020;   ///< 0.2 fF/um

  double resistance(double length_um) const { return r_kohm_per_um * length_um; }
  double capacitance(double length_um) const { return c_pf_per_um * length_um; }
};

/// Placement-site geometry (row-based standard-cell fabric).
struct SiteParams {
  double site_width_um = 0.2;
  double row_height_um = 1.8;
};

class Library {
 public:
  Library(std::string name, CharParams char_params, WireParams wire,
          SiteParams site);

  const std::string& name() const { return name_; }
  const CharParams& char_params() const { return char_; }
  const WireParams& wire() const { return wire_; }
  const SiteParams& site() const { return site_; }

  /// Adds a cell; its `sites` is derived from area and row geometry.
  CellId add_cell(Cell cell);

  const Cell& cell(CellId id) const { return cells_.at(id); }
  std::size_t num_cells() const { return cells_.size(); }

  /// Lookup by name; throws std::out_of_range if absent.
  CellId find(const std::string& name) const;
  std::optional<CellId> try_find(const std::string& name) const;

  /// Smallest-drive SVT cell implementing the function (the netlist
  /// builders' default mapping choice).
  CellId cell_for(CellFunc func) const;

  /// Same function and drive in a different Vth flavour, if characterized
  /// (footprint-compatible swap used by the power-recovery pass).
  std::optional<CellId> variant(CellId id, VthClass vth) const;

  const std::vector<Cell>& cells() const { return cells_; }

 private:
  std::string name_;
  CharParams char_;
  WireParams wire_;
  SiteParams site_;
  std::vector<Cell> cells_;
  std::unordered_map<std::string, CellId> by_name_;
};

/// Build the synthetic dual-Vdd 65 nm LP library.  Characterization is
/// analytic: a logical-effort-style base model per function/drive,
/// scaled across supply corners with the alpha-power law from
/// CharParams.  Delay/slew surfaces are emitted as 5x5 NLDM tables.
Library make_st65lp_like();

}  // namespace vipvt
