#pragma once
// Standard-cell model for the synthetic dual-Vdd 65 nm library.
//
// Conventions:
//  * every cell has exactly one output pin, stored last in `pins`;
//  * combinational cells have one timing arc per non-clock input;
//  * sequential cells (DFF variants) have a single CLK->Q arc plus
//    setup/hold constraints on D;
//  * all timing is characterized at both supply corners (index 0 = low
//    Vdd, index 1 = high Vdd).
//
// Units: time ns, capacitance pF, resistance kOhm, power mW, energy pJ,
// area um^2.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "liberty/lut.hpp"
#include "liberty/physics.hpp"

namespace vipvt {

using CellId = std::uint32_t;
inline constexpr CellId kInvalidCell = static_cast<CellId>(-1);

/// Logic function of a cell; drives both simulation semantics and
/// characterization (logical effort class).
enum class CellFunc : std::uint8_t {
  Inv, Buf,
  Nand2, Nand3, Nand4,
  Nor2, Nor3,
  And2, And3,
  Or2, Or3,
  Xor2, Xnor2,
  Aoi21,   // !(a*b + c)
  Oai21,   // !((a+b) * c)
  Aoi22,   // !(a*b + c*d)
  Mux2,    // s ? b : a   (pins: a, b, s)
  Maj3,    // majority of 3 (full-adder carry)
  Tie0, Tie1,
  Dff,          // pins: D, CLK -> Q
  RazorDff,     // DFF plus shadow latch & comparator (timing sensor)
  LevelShifter, // logic buffer; crosses a low->high supply boundary
};

/// Number of logic inputs for a function (clock excluded).
int func_input_count(CellFunc f);
/// True for flip-flop-like functions.
bool func_is_sequential(CellFunc f);
const char* func_name(CellFunc f);

/// Supply corner index into per-corner characterization arrays.
enum VddCorner : int { kVddLow = 0, kVddHigh = 1 };
inline constexpr int kNumCorners = 2;

struct PinSpec {
  std::string name;
  bool is_input = true;
  bool is_clock = false;
  double cap_pf = 0.0;  ///< input pin capacitance (0 for outputs)
};

/// Per-corner delay / output-slew surfaces for one timing arc.
struct ArcTiming {
  Lut2D delay;
  Lut2D out_slew;
};

/// One input->output timing arc.
struct TimingArc {
  std::uint16_t from_pin = 0;  ///< index into Cell::pins
  std::uint16_t to_pin = 0;
  std::array<ArcTiming, kNumCorners> corner;
};

struct Cell {
  std::string name;
  CellFunc func = CellFunc::Inv;
  int drive = 1;            ///< drive strength (X1/X2/X4)
  VthClass vth = VthClass::Svt;  ///< threshold flavour (same footprint/caps)
  double area_um2 = 0.0;
  int sites = 1;            ///< width in placement sites
  std::vector<PinSpec> pins;
  std::vector<TimingArc> arcs;

  // Sequential constraints (valid when is_sequential()).
  double setup_ns = 0.0;
  double hold_ns = 0.0;
  double clk_q_ns = 0.0;  ///< nominal clk->q at low Vdd (arcs carry the LUTs)

  std::array<double, kNumCorners> leakage_mw{};          ///< at nominal Lgate
  std::array<double, kNumCorners> internal_energy_pj{};  ///< per output toggle

  bool is_sequential() const { return func_is_sequential(func); }
  bool is_level_shifter() const { return func == CellFunc::LevelShifter; }
  bool is_razor() const { return func == CellFunc::RazorDff; }
  bool is_tie() const { return func == CellFunc::Tie0 || func == CellFunc::Tie1; }

  /// Index of the unique output pin (stored last by construction).
  std::uint16_t output_pin() const {
    return static_cast<std::uint16_t>(pins.size() - 1);
  }
  int num_inputs() const { return static_cast<int>(pins.size()) - 1; }

  /// Arc from the given input pin, or nullptr if none (e.g. clock pin of
  /// a combinational cell — which does not exist — or tie cells).
  const TimingArc* arc_from(std::uint16_t input_pin) const;
};

}  // namespace vipvt
