#include "liberty/library.hpp"

#include <cmath>
#include <stdexcept>

namespace vipvt {

int func_input_count(CellFunc f) {
  switch (f) {
    case CellFunc::Inv:
    case CellFunc::Buf:
    case CellFunc::LevelShifter:
      return 1;
    case CellFunc::Nand2:
    case CellFunc::Nor2:
    case CellFunc::And2:
    case CellFunc::Or2:
    case CellFunc::Xor2:
    case CellFunc::Xnor2:
      return 2;
    case CellFunc::Nand3:
    case CellFunc::Nor3:
    case CellFunc::And3:
    case CellFunc::Or3:
    case CellFunc::Aoi21:
    case CellFunc::Oai21:
    case CellFunc::Mux2:
    case CellFunc::Maj3:
      return 3;
    case CellFunc::Nand4:
    case CellFunc::Aoi22:
      return 4;
    case CellFunc::Tie0:
    case CellFunc::Tie1:
      return 0;
    case CellFunc::Dff:
    case CellFunc::RazorDff:
      return 1;  // D (clock handled separately)
  }
  throw std::logic_error("func_input_count: unknown function");
}

bool func_is_sequential(CellFunc f) {
  return f == CellFunc::Dff || f == CellFunc::RazorDff;
}

const char* func_name(CellFunc f) {
  switch (f) {
    case CellFunc::Inv: return "INV";
    case CellFunc::Buf: return "BUF";
    case CellFunc::Nand2: return "NAND2";
    case CellFunc::Nand3: return "NAND3";
    case CellFunc::Nand4: return "NAND4";
    case CellFunc::Nor2: return "NOR2";
    case CellFunc::Nor3: return "NOR3";
    case CellFunc::And2: return "AND2";
    case CellFunc::And3: return "AND3";
    case CellFunc::Or2: return "OR2";
    case CellFunc::Or3: return "OR3";
    case CellFunc::Xor2: return "XOR2";
    case CellFunc::Xnor2: return "XNOR2";
    case CellFunc::Aoi21: return "AOI21";
    case CellFunc::Oai21: return "OAI21";
    case CellFunc::Aoi22: return "AOI22";
    case CellFunc::Mux2: return "MUX2";
    case CellFunc::Maj3: return "MAJ3";
    case CellFunc::Tie0: return "TIE0";
    case CellFunc::Tie1: return "TIE1";
    case CellFunc::Dff: return "DFF";
    case CellFunc::RazorDff: return "RAZOR_DFF";
    case CellFunc::LevelShifter: return "LS";
  }
  return "?";
}

const TimingArc* Cell::arc_from(std::uint16_t input_pin) const {
  for (const auto& arc : arcs) {
    if (arc.from_pin == input_pin) return &arc;
  }
  return nullptr;
}

Library::Library(std::string name, CharParams char_params, WireParams wire,
                 SiteParams site)
    : name_(std::move(name)), char_(char_params), wire_(wire), site_(site) {}

CellId Library::add_cell(Cell cell) {
  cell.sites = std::max(
      1, static_cast<int>(std::ceil(cell.area_um2 / (site_.row_height_um *
                                                     site_.site_width_um))));
  const auto id = static_cast<CellId>(cells_.size());
  auto [it, inserted] = by_name_.emplace(cell.name, id);
  if (!inserted) throw std::invalid_argument("duplicate cell: " + cell.name);
  cells_.push_back(std::move(cell));
  return id;
}

CellId Library::find(const std::string& name) const {
  return by_name_.at(name);
}

std::optional<CellId> Library::try_find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

CellId Library::cell_for(CellFunc func) const {
  CellId best = kInvalidCell;
  for (CellId id = 0; id < cells_.size(); ++id) {
    if (cells_[id].func != func || cells_[id].vth != VthClass::Svt) continue;
    if (best == kInvalidCell || cells_[id].drive < cells_[best].drive) {
      best = id;
    }
  }
  if (best == kInvalidCell) {
    throw std::out_of_range(std::string("no cell for function ") +
                            func_name(func));
  }
  return best;
}

std::optional<CellId> Library::variant(CellId id, VthClass vth) const {
  const Cell& base = cells_.at(id);
  if (base.vth == vth) return id;
  for (CellId other = 0; other < cells_.size(); ++other) {
    const Cell& c = cells_[other];
    if (c.func == base.func && c.drive == base.drive && c.vth == vth) {
      return other;
    }
  }
  return std::nullopt;
}

namespace {

/// Logical-effort-style characterization seed for one function class.
struct FuncSeed {
  CellFunc func;
  double intrinsic_ns;   ///< parasitic delay at drive X1, low Vdd
  double drive_kohm;     ///< output resistance at X1
  double in_cap_pf;      ///< input cap per logic pin at X1
  double base_area_um2;  ///< X1 area
  double leak_nw;        ///< leakage at low Vdd, nominal Lgate [nW]
  double internal_fj;    ///< internal energy per output toggle at 1.0 V [fJ]
};

constexpr double kSlewAxis[] = {0.005, 0.02, 0.05, 0.12, 0.30};  // ns
constexpr double kLoadAxis[] = {0.0005, 0.002, 0.005, 0.012, 0.030};  // pF

Lut2D make_delay_lut(double intrinsic, double drive_r, double slew_k,
                     double vscale) {
  std::vector<double> slews(std::begin(kSlewAxis), std::end(kSlewAxis));
  std::vector<double> loads(std::begin(kLoadAxis), std::end(kLoadAxis));
  std::vector<double> vals;
  vals.reserve(slews.size() * loads.size());
  for (double s : slews) {
    for (double l : loads) {
      // Mildly super-linear load term models the RC knee of real NLDM data.
      const double d =
          intrinsic + drive_r * l * (1.0 + 0.08 * l / kLoadAxis[4]) +
          slew_k * s;
      vals.push_back(d * vscale);
    }
  }
  return Lut2D{std::move(slews), std::move(loads), std::move(vals)};
}

Lut2D make_slew_lut(double intrinsic, double drive_r, double vscale) {
  std::vector<double> slews(std::begin(kSlewAxis), std::end(kSlewAxis));
  std::vector<double> loads(std::begin(kLoadAxis), std::end(kLoadAxis));
  std::vector<double> vals;
  vals.reserve(slews.size() * loads.size());
  for (double s : slews) {
    for (double l : loads) {
      const double t = 0.6 * intrinsic + 1.7 * drive_r * l + 0.12 * s;
      vals.push_back(t * vscale);
    }
  }
  return Lut2D{std::move(slews), std::move(loads), std::move(vals)};
}

/// Input-pin names for a function (output pin is appended by the caller).
std::vector<std::string> input_names(CellFunc f) {
  if (func_is_sequential(f)) return {"D"};
  switch (func_input_count(f)) {
    case 0: return {};
    case 1: return {"A"};
    case 2: return {"A", "B"};
    case 3:
      if (f == CellFunc::Mux2) return {"A", "B", "S"};
      return {"A", "B", "C"};
    case 4: return {"A", "B", "C", "D"};
    default: return {};
  }
}

}  // namespace

Library make_st65lp_like() {
  CharParams cp{};
  Library lib("st65lp_like", cp, WireParams{}, SiteParams{});

  // Per-corner, per-Vth-class delay scaling from the alpha-power law.
  // Reference (scale 1.0) is SVT at the low corner.
  double vscale[kNumVthClasses][kNumCorners];
  double leak_scale[kNumVthClasses][kNumCorners];
  const double ref = cp.raw_delay(cp.lgate_nom, cp.vdd_low, cp.vth0);
  for (int v = 0; v < kNumVthClasses; ++v) {
    const auto vc = static_cast<VthClass>(v);
    const double vth0 = cp.vth0_of(vc);
    vscale[v][kVddLow] = cp.raw_delay(cp.lgate_nom, cp.vdd_low, vth0) / ref;
    vscale[v][kVddHigh] = cp.raw_delay(cp.lgate_nom, cp.vdd_high, vth0) / ref;
    leak_scale[v][kVddLow] = cp.leakage_class_ratio(vc);
    leak_scale[v][kVddHigh] =
        cp.leakage_class_ratio(vc) * cp.leakage_factor(cp.lgate_nom, cp.vdd_high);
  }
  const double dyn_scale[kNumCorners] = {1.0, cp.dynamic_factor(cp.vdd_high)};

  const FuncSeed seeds[] = {
      // func            t_int    R      Cin      area   leak  E_int
      {CellFunc::Inv,    0.010, 2.4, 0.0010, 1.44, 1.5, 0.35},
      {CellFunc::Buf,    0.022, 2.2, 0.0011, 2.16, 2.0, 0.55},
      {CellFunc::Nand2,  0.014, 2.8, 0.0012, 2.16, 2.2, 0.50},
      {CellFunc::Nand3,  0.018, 3.3, 0.0013, 2.88, 3.0, 0.65},
      {CellFunc::Nand4,  0.023, 3.9, 0.0014, 3.60, 3.8, 0.80},
      {CellFunc::Nor2,   0.016, 3.2, 0.0012, 2.16, 2.4, 0.52},
      {CellFunc::Nor3,   0.022, 4.1, 0.0013, 2.88, 3.2, 0.70},
      {CellFunc::And2,   0.024, 2.6, 0.0011, 2.88, 2.8, 0.72},
      {CellFunc::And3,   0.028, 2.8, 0.0012, 3.60, 3.4, 0.85},
      {CellFunc::Or2,    0.026, 2.7, 0.0011, 2.88, 2.9, 0.74},
      {CellFunc::Or3,    0.031, 2.9, 0.0012, 3.60, 3.6, 0.88},
      {CellFunc::Xor2,   0.034, 3.0, 0.0016, 4.32, 3.9, 1.10},
      {CellFunc::Xnor2,  0.034, 3.0, 0.0016, 4.32, 3.9, 1.10},
      {CellFunc::Aoi21,  0.019, 3.4, 0.0012, 2.88, 2.9, 0.60},
      {CellFunc::Oai21,  0.019, 3.4, 0.0012, 2.88, 2.9, 0.60},
      {CellFunc::Aoi22,  0.024, 3.8, 0.0013, 3.60, 3.6, 0.75},
      {CellFunc::Mux2,   0.030, 2.9, 0.0013, 4.32, 3.7, 0.95},
      {CellFunc::Maj3,   0.030, 3.1, 0.0014, 4.32, 3.8, 1.00},
      {CellFunc::Tie0,   0.000, 1.0, 0.0000, 1.44, 0.3, 0.00},
      {CellFunc::Tie1,   0.000, 1.0, 0.0000, 1.44, 0.3, 0.00},
      {CellFunc::Dff,    0.085, 2.6, 0.0012, 7.92, 6.5, 2.40},
      // Razor FF: main FF + shadow latch + XOR comparator => roughly 1.8x
      // area/power of a plain DFF, slightly higher clk->q.
      {CellFunc::RazorDff, 0.095, 2.6, 0.0013, 14.40, 11.5, 4.10},
      // Level shifter: cross-coupled pull-up pair; big, slow-ish, and with
      // static current paths reflected in higher leakage.  The aggregate
      // area of several thousand shifters is a substantial fraction of
      // logic area, as Table 2 of the paper finds.
      {CellFunc::LevelShifter, 0.040, 2.6, 0.0014, 8.0, 9.0, 1.60},
  };

  const double slew_k = 0.11;  // delay sensitivity to input slew

  for (const auto& seed : seeds) {
    // Full drive sweep for all plain combinational functions (the sizing
    // pass needs them) and for level shifters (the inserter picks the
    // drive by receiving-cluster load); sequential/tie cells come in one
    // size.
    const bool one_size = func_is_sequential(seed.func) ||
                          seed.func == CellFunc::Tie0 ||
                          seed.func == CellFunc::Tie1;
    const int max_drive = one_size ? 1 : 4;
    // Sequential, tie, and special cells exist in SVT only; all plain
    // combinational functions get the full Vth-flavour sweep.
    const bool multi_vth = !func_is_sequential(seed.func) &&
                           seed.func != CellFunc::Tie0 &&
                           seed.func != CellFunc::Tie1 &&
                           seed.func != CellFunc::LevelShifter;
    const int vth_count = multi_vth ? kNumVthClasses : 1;
    for (int drive = 1; drive <= max_drive; drive *= 2) {
      for (int v = 0; v < vth_count; ++v) {
        const auto vc = static_cast<VthClass>(v);
        Cell cell;
        cell.func = seed.func;
        cell.drive = drive;
        cell.vth = vc;
        cell.name = std::string(func_name(seed.func)) + "_X" +
                    std::to_string(drive) + vth_class_suffix(vc);
        const double ds = static_cast<double>(drive);
        // Vth flavours share the footprint and pin caps (implant-only
        // swap), which is what makes power recovery placement-neutral.
        cell.area_um2 = seed.base_area_um2 * (1.0 + 0.75 * (ds - 1.0));

        for (const auto& pin_name : input_names(seed.func)) {
          cell.pins.push_back(
              {pin_name, true, false, seed.in_cap_pf * (0.75 + 0.25 * ds)});
        }
        if (cell.is_sequential()) {
          cell.pins.push_back({"CLK", true, true, 0.0009});
          cell.setup_ns = 0.035;
          cell.hold_ns = 0.012;
          cell.clk_q_ns = seed.intrinsic_ns;
        }
        cell.pins.push_back(
            {cell.is_sequential() ? "Q" : "Z", false, false, 0.0});

        const double drive_r = seed.drive_kohm / ds;
        const double intrinsic = seed.intrinsic_ns * (1.0 + 0.1 * (ds - 1.0));
        const auto out = cell.output_pin();
        for (std::uint16_t p = 0; p < cell.pins.size(); ++p) {
          if (!cell.pins[p].is_input) continue;
          if (cell.is_sequential() && !cell.pins[p].is_clock) continue;
          if (cell.is_tie()) continue;
          TimingArc arc;
          arc.from_pin = p;
          arc.to_pin = out;
          // Later inputs of a stack are marginally slower, as in real
          // libraries; clock->Q uses the seed intrinsic directly.
          const double pin_skew = cell.is_sequential() ? 1.0 : 1.0 + 0.05 * p;
          for (int c = 0; c < kNumCorners; ++c) {
            arc.corner[c].delay = make_delay_lut(intrinsic * pin_skew, drive_r,
                                                 slew_k, vscale[v][c]);
            arc.corner[c].out_slew =
                make_slew_lut(intrinsic, drive_r, vscale[v][c]);
          }
          cell.arcs.push_back(std::move(arc));
        }

        for (int c = 0; c < kNumCorners; ++c) {
          // nW -> mW for leakage; fJ -> pJ for internal energy.
          cell.leakage_mw[c] = seed.leak_nw * 1e-6 * ds * leak_scale[v][c];
          cell.internal_energy_pj[c] =
              seed.internal_fj * 1e-3 * ds * dyn_scale[c];
        }

        lib.add_cell(std::move(cell));
      }
    }
  }
  return lib;
}

}  // namespace vipvt
