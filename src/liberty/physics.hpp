#pragma once
// Device-physics models shared by library characterization, the variation
// engine and the power engine.  These are exactly the models the paper
// builds on:
//
//   Delay (Orshansky et al., paper Eq. 3):
//       D ~ Lgate^1.5 * Vdd / (Vdd - Vth)^alpha            alpha = 1.3
//
//   DIBL threshold shift (Cao & Clark, paper Eq. 4):
//       Vth_eff = Vth0 - Vdd * exp(-alpha_DIBL * Leff)     Vth0 = 0.22 V
//
// The paper quotes alpha_DIBL = 0.15 with Leff in unspecified normalized
// units; we express Leff in nanometres and rescale the coefficient to
// 0.045 /nm so that the DIBL term at the 65 nm nominal length contributes
// a realistic ~54 mV at 1.0 V (exp(-0.045*65) = 0.054).  The functional
// form — longer gate => higher Vth => slower and less leaky — is preserved,
// which is what the methodology depends on.

#include <cmath>
#include <stdexcept>

namespace vipvt {

/// Threshold-voltage flavour of a cell.  Performance-optimized flows mix
/// flavours: timing-critical logic stays SVT; power recovery swaps slack-
/// rich logic to HVT/UHVT (slower, far less leaky) — which is also what
/// piles every pipeline stage up against the clock (the "slack wall" the
/// paper's Fig. 3 presumes).
enum class VthClass : int { Svt = 0, Hvt = 1, Uhvt = 2 };
inline constexpr int kNumVthClasses = 3;

inline const char* vth_class_suffix(VthClass v) {
  switch (v) {
    case VthClass::Svt: return "";
    case VthClass::Hvt: return "H";
    case VthClass::Uhvt: return "U";
  }
  return "";
}

/// Characterization constants for the synthetic 65 nm low-power library.
struct CharParams {
  double vdd_low = 1.0;             ///< nominal supply [V]
  double vdd_high = 1.2;            ///< boosted supply [V]
  double vth0 = 0.22;               ///< SVT long-channel threshold [V]
  double vth0_hvt = 0.40;           ///< HVT long-channel threshold [V]
  double vth0_uhvt = 0.52;          ///< UHVT long-channel threshold [V]
  double alpha = 1.3;               ///< velocity-saturation exponent
  double alpha_dibl = 0.045;        ///< DIBL coefficient [1/nm]
  double lgate_nom = 65.0;          ///< nominal effective gate length [nm]
  double subthreshold_nvt = 0.0375; ///< n*kT/q for leakage slope [V]

  double vth0_of(VthClass c) const {
    switch (c) {
      case VthClass::Svt: return vth0;
      case VthClass::Hvt: return vth0_hvt;
      case VthClass::Uhvt: return vth0_uhvt;
    }
    return vth0;
  }

  /// Effective threshold voltage after DIBL (Eq. 4).
  double vth_eff(double lgate_nm, double vdd, double vth0_class) const {
    return vth0_class - vdd * std::exp(-alpha_dibl * lgate_nm);
  }
  double vth_eff(double lgate_nm, double vdd) const {
    return vth_eff(lgate_nm, vdd, vth0);
  }

  /// Un-normalized alpha-power delay (Eq. 3).  Only ratios of this value
  /// are meaningful; characterization anchors the absolute scale.
  double raw_delay(double lgate_nm, double vdd, double vth0_class) const {
    const double vth = vth_eff(lgate_nm, vdd, vth0_class);
    const double overdrive = vdd - vth;
    if (overdrive <= 0.0) {
      throw std::domain_error("raw_delay: Vdd below effective threshold");
    }
    return std::pow(lgate_nm, 1.5) * vdd / std::pow(overdrive, alpha);
  }
  double raw_delay(double lgate_nm, double vdd) const {
    return raw_delay(lgate_nm, vdd, vth0);
  }

  /// raw_delay with pow(Lgate, 1.5) strength-reduced to Lgate*sqrt(Lgate)
  /// (~3x cheaper, equal to within ~1 ulp but NOT bit-identical — pow
  /// rounds once, the product twice).  Kept separate so the scalar draw
  /// path stays bit-identical to seed; the batched draw profile's
  /// delay-factor tables are built from this form.
  double raw_delay_fast(double lgate_nm, double vdd,
                        double vth0_class) const {
    const double vth = vth_eff(lgate_nm, vdd, vth0_class);
    const double overdrive = vdd - vth;
    if (overdrive <= 0.0) {
      throw std::domain_error("raw_delay_fast: Vdd below effective threshold");
    }
    return lgate_nm * std::sqrt(lgate_nm) * vdd / std::pow(overdrive, alpha);
  }

  /// Delay multiplier of a gate with the given Lgate at the given Vdd,
  /// relative to a nominal-Lgate gate of the same Vth class at the same
  /// Vdd.  This is the factor the SSTA loop applies to annotated
  /// (SDF-like) delays: base delays already carry corner and Vth class,
  /// the variation model only scales them.
  double delay_factor(double lgate_nm, double vdd, double vth0_class) const {
    return raw_delay(lgate_nm, vdd, vth0_class) /
           raw_delay(lgate_nom, vdd, vth0_class);
  }
  double delay_factor(double lgate_nm, double vdd) const {
    return delay_factor(lgate_nm, vdd, vth0);
  }

  /// High-Vdd speedup at nominal Lgate: D(vdd_high)/D(vdd_low) < 1.
  /// Higher-Vth flavours benefit more from the boost (lower overdrive).
  double high_vdd_speed_ratio(VthClass c = VthClass::Svt) const {
    return raw_delay(lgate_nom, vdd_high, vth0_of(c)) /
           raw_delay(lgate_nom, vdd_low, vth0_of(c));
  }

  /// Delay ratio of a Vth class vs SVT at the given supply (>= 1).
  double vth_class_delay_ratio(VthClass c, double vdd) const {
    return raw_delay(lgate_nom, vdd, vth0_of(c)) /
           raw_delay(lgate_nom, vdd, vth0);
  }

  /// Subthreshold-leakage multiplier relative to nominal Lgate at vdd_low.
  /// I_leak ~ Vdd * exp(-Vth_eff / (n*kT/q)); shorter channels leak more
  /// (lower Vth via DIBL), and raising Vdd both lowers Vth and raises the
  /// drain term — the effect Fig. 6 of the paper measures.  The Vth-class
  /// offset cancels in the ratio, so one function serves all flavours.
  double leakage_factor(double lgate_nm, double vdd) const {
    auto leak = [this](double l, double v) {
      return v * std::exp(-vth_eff(l, v) / subthreshold_nvt);
    };
    return leak(lgate_nm, vdd) / leak(lgate_nom, vdd_low);
  }

  /// Absolute leakage ratio of a Vth class vs SVT (same geometry & Vdd).
  double leakage_class_ratio(VthClass c) const {
    return std::exp(-(vth0_of(c) - vth0) / subthreshold_nvt);
  }

  /// Dynamic-energy multiplier vs. vdd_low (CV^2 scaling).
  double dynamic_factor(double vdd) const {
    return (vdd * vdd) / (vdd_low * vdd_low);
  }

  // ---- adaptive body bias (ABB) baseline -----------------------------------
  // The paper argues (citing Tschanz et al. and Humenay et al.) that
  // supply adaptation needs a much smaller percentage change than body
  // bias and is far milder on leakage.  These helpers model chip-wide
  // forward body bias as an alternative compensation knob: FBB lowers
  // the effective threshold by `vth_shift` volts.

  /// Delay of a gate under FBB relative to zero bias (same Lgate/Vdd).
  double abb_delay_ratio(double vth_shift,
                         VthClass c = VthClass::Svt) const {
    return raw_delay(lgate_nom, vdd_low, vth0_of(c) - vth_shift) /
           raw_delay(lgate_nom, vdd_low, vth0_of(c));
  }

  /// Leakage multiplier of FBB vs zero bias: exponential in the shift.
  double abb_leakage_ratio(double vth_shift) const {
    return std::exp(vth_shift / subthreshold_nvt);
  }

  /// FBB shift needed to match the high-Vdd speedup (bisection).
  double abb_shift_matching_avs(VthClass c = VthClass::Svt) const {
    const double target = high_vdd_speed_ratio(c);
    double lo = 0.0, hi = vth0_of(c) * 0.9;
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo + hi);
      (abb_delay_ratio(mid, c) > target ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
  }
};

}  // namespace vipvt
