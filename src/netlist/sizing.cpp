#include "netlist/sizing.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace vipvt {

namespace {

/// All drive variants of (func, vth) in the library, ordered by drive.
std::vector<CellId> drive_family(const Library& lib, const Cell& base) {
  std::vector<CellId> family;
  for (CellId id = 0; id < lib.num_cells(); ++id) {
    const Cell& c = lib.cell(id);
    if (c.func == base.func && c.vth == base.vth) family.push_back(id);
  }
  // Libraries are built with ascending drive per function; keep order
  // deterministic regardless.
  std::sort(family.begin(), family.end(), [&](CellId a, CellId b) {
    return lib.cell(a).drive < lib.cell(b).drive;
  });
  return family;
}

}  // namespace

SizingReport resize_for_wireload(Design& design, const SizingConfig& cfg) {
  SizingReport report;
  const Library& lib = design.lib();
  const double wl_cap_per_sink =
      lib.wire().capacitance(cfg.wireload_um_per_fanout);

  for (InstId i = 0; i < design.num_instances(); ++i) {
    Instance& inst = design.instance(i);
    const Cell& cell = lib.cell(inst.cell);
    if (cell.is_sequential() || cell.is_tie() || cell.is_level_shifter()) {
      continue;
    }
    ++report.examined;

    const NetId out = inst.conns[cell.output_pin()];
    const Net& net = design.net(out);
    double load = wl_cap_per_sink * static_cast<double>(net.sinks.size());
    for (const auto& sink : net.sinks) {
      load += design.cell_of(sink.inst).pins[sink.pin].cap_pf;
    }

    const auto family = drive_family(lib, cell);
    if (family.size() < 2) continue;

    // Delay of each variant at this load (worst arc, low corner).
    double best = std::numeric_limits<double>::infinity();
    std::vector<double> delay(family.size());
    for (std::size_t k = 0; k < family.size(); ++k) {
      const Cell& cand = lib.cell(family[k]);
      double worst = 0.0;
      for (const auto& arc : cand.arcs) {
        worst = std::max(
            worst, arc.corner[kVddLow].delay.lookup(cfg.eval_slew_ns, load));
      }
      delay[k] = worst;
      best = std::min(best, worst);
    }
    for (std::size_t k = 0; k < family.size(); ++k) {
      if (delay[k] <= best * cfg.tolerance) {
        if (family[k] != inst.cell) {
          inst.cell = family[k];
          ++report.upsized;
        }
        break;
      }
    }
  }
  return report;
}

SizingReport upsize_critical(Design& design, std::span<const double> crit_prob,
                             const CriticalSizingConfig& cfg) {
  if (crit_prob.size() != design.num_instances()) {
    throw std::invalid_argument(
        "upsize_critical: crit_prob size != num_instances");
  }
  if (cfg.max_upsized < 0 || cfg.max_drive_steps < 1) {
    throw std::invalid_argument("upsize_critical: bad knobs");
  }
  SizingReport report;
  const Library& lib = design.lib();

  std::vector<InstId> candidates;
  for (InstId i = 0; i < design.num_instances(); ++i) {
    const Cell& cell = design.cell_of(i);
    if (cell.is_sequential() || cell.is_tie() || cell.is_level_shifter()) {
      continue;
    }
    ++report.examined;
    if (crit_prob[i] >= cfg.min_crit_prob) candidates.push_back(i);
  }
  // Most-critical first; stable sort keeps InstId order as the
  // deterministic tie-break for equal probabilities.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](InstId a, InstId b) {
                     return crit_prob[a] > crit_prob[b];
                   });

  for (InstId i : candidates) {
    if (report.upsized >= static_cast<std::size_t>(cfg.max_upsized)) break;
    Instance& inst = design.instance(i);
    const auto family = drive_family(lib, lib.cell(inst.cell));
    const auto pos = static_cast<std::size_t>(
        std::find(family.begin(), family.end(), inst.cell) - family.begin());
    const std::size_t target =
        std::min(family.size() - 1,
                 pos + static_cast<std::size_t>(cfg.max_drive_steps));
    if (target == pos) continue;  // already at the top drive
    inst.cell = family[target];
    ++report.upsized;
  }
  return report;
}

}  // namespace vipvt
