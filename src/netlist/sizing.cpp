#include "netlist/sizing.hpp"

#include <limits>
#include <vector>

namespace vipvt {

namespace {

/// All drive variants of (func, vth) in the library, ordered by drive.
std::vector<CellId> drive_family(const Library& lib, const Cell& base) {
  std::vector<CellId> family;
  for (CellId id = 0; id < lib.num_cells(); ++id) {
    const Cell& c = lib.cell(id);
    if (c.func == base.func && c.vth == base.vth) family.push_back(id);
  }
  // Libraries are built with ascending drive per function; keep order
  // deterministic regardless.
  std::sort(family.begin(), family.end(), [&](CellId a, CellId b) {
    return lib.cell(a).drive < lib.cell(b).drive;
  });
  return family;
}

}  // namespace

SizingReport resize_for_wireload(Design& design, const SizingConfig& cfg) {
  SizingReport report;
  const Library& lib = design.lib();
  const double wl_cap_per_sink =
      lib.wire().capacitance(cfg.wireload_um_per_fanout);

  for (InstId i = 0; i < design.num_instances(); ++i) {
    Instance& inst = design.instance(i);
    const Cell& cell = lib.cell(inst.cell);
    if (cell.is_sequential() || cell.is_tie() || cell.is_level_shifter()) {
      continue;
    }
    ++report.examined;

    const NetId out = inst.conns[cell.output_pin()];
    const Net& net = design.net(out);
    double load = wl_cap_per_sink * static_cast<double>(net.sinks.size());
    for (const auto& sink : net.sinks) {
      load += design.cell_of(sink.inst).pins[sink.pin].cap_pf;
    }

    const auto family = drive_family(lib, cell);
    if (family.size() < 2) continue;

    // Delay of each variant at this load (worst arc, low corner).
    double best = std::numeric_limits<double>::infinity();
    std::vector<double> delay(family.size());
    for (std::size_t k = 0; k < family.size(); ++k) {
      const Cell& cand = lib.cell(family[k]);
      double worst = 0.0;
      for (const auto& arc : cand.arcs) {
        worst = std::max(
            worst, arc.corner[kVddLow].delay.lookup(cfg.eval_slew_ns, load));
      }
      delay[k] = worst;
      best = std::min(best, worst);
    }
    for (std::size_t k = 0; k < family.size(); ++k) {
      if (delay[k] <= best * cfg.tolerance) {
        if (family[k] != inst.cell) {
          inst.cell = family[k];
          ++report.upsized;
        }
        break;
      }
    }
  }
  return report;
}

}  // namespace vipvt
