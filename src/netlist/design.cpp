#include "netlist/design.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace vipvt {

const char* stage_name(PipeStage s) {
  switch (s) {
    case PipeStage::Fetch: return "FE";
    case PipeStage::Decode: return "DC";
    case PipeStage::Execute: return "EX";
    case PipeStage::WriteBack: return "WB";
    case PipeStage::Other: return "--";
  }
  return "?";
}

Design::Design(std::string name, const Library& lib)
    : name_(std::move(name)), lib_(&lib) {}

NetId Design::add_net(std::string net_name) {
  const auto id = static_cast<NetId>(nets_.size());
  Net net;
  net.name = std::move(net_name);
  nets_.push_back(std::move(net));
  return id;
}

NetId Design::add_primary_input(std::string net_name, bool is_clock) {
  const NetId id = add_net(std::move(net_name));
  nets_[id].is_primary_input = true;
  nets_[id].is_clock = is_clock;
  primary_inputs_.push_back(id);
  if (is_clock) {
    if (clock_net_ != kInvalidNet) {
      throw std::runtime_error("Design: multiple clock nets");
    }
    clock_net_ = id;
  }
  return id;
}

void Design::mark_primary_output(NetId net) {
  if (!nets_.at(net).is_primary_output) {
    nets_[net].is_primary_output = true;
    primary_outputs_.push_back(net);
  }
}

InstId Design::add_instance(std::string inst_name, CellId cell,
                            PipeStage stage, UnitId unit,
                            std::vector<NetId> conns) {
  const Cell& c = lib_->cell(cell);
  if (conns.size() != c.pins.size()) {
    throw std::invalid_argument("add_instance(" + inst_name +
                                "): pin count mismatch for cell " + c.name);
  }
  const auto id = static_cast<InstId>(instances_.size());
  for (std::size_t p = 0; p < conns.size(); ++p) {
    Net& net = nets_.at(conns[p]);
    const auto pin = static_cast<std::uint16_t>(p);
    if (c.pins[p].is_input) {
      net.sinks.push_back({id, pin});
    } else {
      if (net.has_cell_driver() || net.is_primary_input) {
        throw std::runtime_error("add_instance(" + inst_name +
                                 "): net already driven: " + net.name);
      }
      net.driver = {id, pin};
    }
  }
  Instance inst;
  inst.name = std::move(inst_name);
  inst.cell = cell;
  inst.stage = stage;
  inst.unit = unit;
  inst.conns = std::move(conns);
  instances_.push_back(std::move(inst));
  return id;
}

void Design::move_sink(NetId from, PinConn sink, NetId to) {
  Net& src = nets_.at(from);
  auto it = std::find(src.sinks.begin(), src.sinks.end(), sink);
  if (it == src.sinks.end()) {
    throw std::invalid_argument("move_sink: sink not on source net");
  }
  src.sinks.erase(it);
  nets_.at(to).sinks.push_back(sink);
  instances_.at(sink.inst).conns.at(sink.pin) = to;
}

UnitId Design::unit_id(const std::string& unit_name) {
  for (std::size_t i = 0; i < unit_names_.size(); ++i) {
    if (unit_names_[i] == unit_name) return static_cast<UnitId>(i);
  }
  unit_names_.push_back(unit_name);
  return static_cast<UnitId>(unit_names_.size() - 1);
}

double Design::total_area() const {
  double area = 0.0;
  for (const auto& inst : instances_) area += lib_->cell(inst.cell).area_um2;
  return area;
}

double Design::unit_area(UnitId unit) const {
  double area = 0.0;
  for (const auto& inst : instances_) {
    if (inst.unit == unit) area += lib_->cell(inst.cell).area_um2;
  }
  return area;
}

std::size_t Design::num_flops() const {
  std::size_t n = 0;
  for (const auto& inst : instances_) {
    if (lib_->cell(inst.cell).is_sequential()) ++n;
  }
  return n;
}

void Design::check() const {
  for (NetId n = 0; n < nets_.size(); ++n) {
    const Net& net = nets_[n];
    const bool driven = net.has_cell_driver() || net.is_primary_input;
    if (!driven && !net.sinks.empty()) {
      throw std::runtime_error("check: undriven net with sinks: " + net.name);
    }
    if (net.has_cell_driver()) {
      const Instance& drv = instances_.at(net.driver.inst);
      const Cell& c = lib_->cell(drv.cell);
      if (c.pins.at(net.driver.pin).is_input) {
        throw std::runtime_error("check: net driven by input pin: " + net.name);
      }
    }
    for (const auto& sink : net.sinks) {
      const Instance& inst = instances_.at(sink.inst);
      const Cell& c = lib_->cell(inst.cell);
      const PinSpec& pin = c.pins.at(sink.pin);
      if (!pin.is_input) {
        throw std::runtime_error("check: output pin listed as sink on net " +
                                 net.name);
      }
      if (pin.is_clock && !net.is_clock) {
        throw std::runtime_error("check: clock pin of " + inst.name +
                                 " not on the clock net");
      }
      if (inst.conns.at(sink.pin) != n) {
        throw std::runtime_error("check: conns/sink inconsistency on net " +
                                 net.name);
      }
    }
  }
  for (InstId i = 0; i < instances_.size(); ++i) {
    const Instance& inst = instances_[i];
    const Cell& c = lib_->cell(inst.cell);
    for (std::size_t p = 0; p < c.pins.size(); ++p) {
      const NetId n = inst.conns.at(p);
      if (n == kInvalidNet) {
        throw std::runtime_error("check: floating pin on " + inst.name);
      }
      if (c.pins[p].is_input) {
        const Net& net = nets_.at(n);
        if (!net.has_cell_driver() && !net.is_primary_input) {
          throw std::runtime_error("check: input pin of " + inst.name +
                                   " on undriven net " + net.name);
        }
      }
    }
  }
}

}  // namespace vipvt
