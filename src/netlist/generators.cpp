#include "netlist/generators.hpp"

#include <algorithm>
#include <stdexcept>

namespace vipvt {

namespace {

struct FaOut {
  NetId sum;
  NetId carry;
};

FaOut full_adder(NetlistBuilder& b, NetId x, NetId y, NetId c) {
  const NetId p = b.xor2(x, y);
  return {b.xor2(p, c), b.maj3(x, y, c)};
}

FaOut half_adder(NetlistBuilder& b, NetId x, NetId y) {
  return {b.xor2(x, y), b.and2(x, y)};
}

}  // namespace

AdderOut ripple_adder(NetlistBuilder& b, const Bus& a, const Bus& bb,
                      NetId cin) {
  if (a.size() != bb.size() || a.empty()) {
    throw std::invalid_argument("ripple_adder: width mismatch");
  }
  AdderOut out;
  out.sum.reserve(a.size());
  NetId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto [s, c] = full_adder(b, a[i], bb[i], carry);
    out.sum.push_back(s);
    carry = c;
  }
  out.cout = carry;
  return out;
}

AdderOut cla_adder(NetlistBuilder& b, const Bus& a, const Bus& bb, NetId cin) {
  if (a.size() != bb.size() || a.empty()) {
    throw std::invalid_argument("cla_adder: width mismatch");
  }
  const std::size_t n = a.size();
  // Bit-level propagate/generate.
  Bus p(n), g(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = b.xor2(a[i], bb[i]);
    g[i] = b.and2(a[i], bb[i]);
  }
  // 4-bit groups: compute carries into each bit from the group carry-in
  // with two-level lookahead; chain group carries with group G/P.
  AdderOut out;
  out.sum.resize(n);
  NetId group_cin = cin;
  for (std::size_t base = 0; base < n; base += 4) {
    const std::size_t len = std::min<std::size_t>(4, n - base);
    // carries[j] = carry into bit base+j.
    NetId carry = group_cin;
    for (std::size_t j = 0; j < len; ++j) {
      out.sum[base + j] = b.xor2(p[base + j], carry);
      if (j + 1 < len) {
        // c_{j+1} = g_j + p_j * c_j  — AOI-style lookahead node.
        carry = b.or2(g[base + j], b.and2(p[base + j], carry));
      }
    }
    // Group generate/propagate for the next group's carry-in: computed
    // directly from bit P/G so the inter-group chain is 2 levels per
    // group rather than 8.
    if (base + len < n) {
      NetId gp = p[base];
      NetId gg = g[base];
      for (std::size_t j = 1; j < len; ++j) {
        gg = b.or2(g[base + j], b.and2(p[base + j], gg));
        gp = b.and2(gp, p[base + j]);
      }
      group_cin = b.or2(gg, b.and2(gp, group_cin));
    } else {
      // Final carry-out.
      NetId gg = g[base];
      NetId gp = p[base];
      for (std::size_t j = 1; j < len; ++j) {
        gg = b.or2(g[base + j], b.and2(p[base + j], gg));
        gp = b.and2(gp, p[base + j]);
      }
      out.cout = b.or2(gg, b.and2(gp, group_cin));
    }
  }
  return out;
}

SubOut subtractor(NetlistBuilder& b, const Bus& a, const Bus& bb) {
  const Bus nb = b.invert(bb);
  auto add = cla_adder(b, a, nb, b.const1());
  return {std::move(add.sum), add.cout};
}

NetId equal(NetlistBuilder& b, const Bus& a, const Bus& bb) {
  if (a.size() != bb.size()) throw std::invalid_argument("equal: width mismatch");
  Bus eq;
  eq.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) eq.push_back(b.xnor2(a[i], bb[i]));
  return b.reduce_and(eq);
}

NetId less_than(NetlistBuilder& b, const Bus& a, const Bus& bb) {
  return b.inv(subtractor(b, a, bb).no_borrow);
}

NetId is_zero(NetlistBuilder& b, const Bus& a) {
  return b.inv(b.reduce_or(a));
}

Bus barrel_shifter(NetlistBuilder& b, const Bus& a, const Bus& amount,
                   bool left, bool arithmetic) {
  Bus cur = a;
  const NetId fill0 = b.const0();
  const NetId fill = (!left && arithmetic) ? a.back() : fill0;
  for (std::size_t level = 0; level < amount.size(); ++level) {
    const std::size_t dist = std::size_t{1} << level;
    Bus shifted(cur.size());
    for (std::size_t i = 0; i < cur.size(); ++i) {
      if (left) {
        shifted[i] = (i >= dist) ? cur[i - dist] : fill0;
      } else {
        shifted[i] = (i + dist < cur.size()) ? cur[i + dist] : fill;
      }
    }
    Bus next(cur.size());
    for (std::size_t i = 0; i < cur.size(); ++i) {
      next[i] = b.mux2(cur[i], shifted[i], amount[level]);
    }
    cur = std::move(next);
  }
  return cur;
}

Bus carry_save_sum(NetlistBuilder& b, std::vector<Bus> rows, int out_width) {
  if (rows.empty()) throw std::invalid_argument("carry_save_sum: no rows");
  const auto w = static_cast<std::size_t>(out_width);
  // Column-oriented reduction (Wallace): collect bits per column, compress
  // columns with FAs/HAs until every column holds at most 2 bits.
  std::vector<std::vector<NetId>> cols(w);
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size() && i < w; ++i) {
      cols[i].push_back(row[i]);
    }
  }
  bool again = true;
  while (again) {
    again = false;
    std::vector<std::vector<NetId>> next(w);
    for (std::size_t i = 0; i < w; ++i) {
      auto& col = cols[i];
      std::size_t k = 0;
      while (col.size() - k >= 3) {
        auto [s, c] = full_adder(b, col[k], col[k + 1], col[k + 2]);
        next[i].push_back(s);
        if (i + 1 < w) next[i + 1].push_back(c);
        k += 3;
      }
      if (col.size() - k == 2 && col.size() > 2) {
        auto [s, c] = half_adder(b, col[k], col[k + 1]);
        next[i].push_back(s);
        if (i + 1 < w) next[i + 1].push_back(c);
        k += 2;
      }
      for (; k < col.size(); ++k) next[i].push_back(col[k]);
    }
    cols = std::move(next);
    for (const auto& col : cols) {
      if (col.size() > 2) {
        again = true;
        break;
      }
    }
  }
  // Two remaining rows -> CLA.
  Bus r0(w), r1(w);
  for (std::size_t i = 0; i < w; ++i) {
    r0[i] = cols[i].empty() ? b.const0() : cols[i][0];
    r1[i] = cols[i].size() > 1 ? cols[i][1] : b.const0();
  }
  return cla_adder(b, r0, r1, b.const0()).sum;
}

Bus multiplier(NetlistBuilder& b, const Bus& a, const Bus& bb) {
  if (a.empty() || bb.empty()) throw std::invalid_argument("multiplier: empty");
  const int out_width = static_cast<int>(a.size() + bb.size());
  std::vector<Bus> rows;
  rows.reserve(bb.size());
  for (std::size_t j = 0; j < bb.size(); ++j) {
    Bus row(j, kInvalidNet);  // j leading zero positions
    // Represent the shift structurally: row i of the partial-product
    // matrix starts at column j.
    Bus pp;
    pp.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      pp.push_back(b.and2(a[i], bb[j]));
    }
    Bus shifted;
    shifted.reserve(j + pp.size());
    for (std::size_t i = 0; i < j; ++i) shifted.push_back(b.const0());
    for (NetId n : pp) shifted.push_back(n);
    rows.push_back(std::move(shifted));
  }
  return carry_save_sum(b, std::move(rows), out_width);
}

Bus decoder_onehot(NetlistBuilder& b, const Bus& sel) {
  const std::size_t n = sel.size();
  const std::size_t outputs = std::size_t{1} << n;
  Bus inv_sel;
  inv_sel.reserve(n);
  for (NetId s : sel) inv_sel.push_back(b.inv(s));
  Bus out;
  out.reserve(outputs);
  for (std::size_t v = 0; v < outputs; ++v) {
    Bus terms;
    terms.reserve(n);
    for (std::size_t bit = 0; bit < n; ++bit) {
      terms.push_back((v >> bit) & 1 ? sel[bit] : inv_sel[bit]);
    }
    out.push_back(b.reduce_and(terms));
  }
  return out;
}

Bus mux_tree(NetlistBuilder& b, const std::vector<Bus>& options,
             const Bus& sel) {
  if (options.empty()) throw std::invalid_argument("mux_tree: no options");
  const std::size_t width = options[0].size();
  for (const auto& o : options) {
    if (o.size() != width) throw std::invalid_argument("mux_tree: ragged widths");
  }
  if (options.size() > (std::size_t{1} << sel.size())) {
    throw std::invalid_argument("mux_tree: select bus too narrow");
  }
  std::vector<Bus> level = options;
  for (std::size_t s = 0; s < sel.size() && level.size() > 1; ++s) {
    std::vector<Bus> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(b.mux2_bus(level[i], level[i + 1], sel[s]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

Bus extend(NetlistBuilder& b, const Bus& a, int width, bool sign_extend) {
  Bus out = a;
  const NetId fill = sign_extend ? a.back() : b.const0();
  while (static_cast<int>(out.size()) < width) out.push_back(fill);
  out.resize(static_cast<std::size_t>(width));
  return out;
}

}  // namespace vipvt
