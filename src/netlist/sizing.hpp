#pragma once
// Wireload-model drive sizing — the pre-placement gate-sizing step of a
// synthesis flow.  Each gate's output load is estimated as the sum of
// its sink pin capacitances plus a per-fanout wireload term; the gate is
// then swapped to the smallest drive strength whose table delay at that
// load is within `tolerance` of the best available drive.  Without this
// pass, long/multi-fanout nets behind minimum-size drivers drown the
// gate delays (and with them the Lgate-variation signal the methodology
// measures) in RC.

#include <cstddef>
#include <span>

#include "netlist/design.hpp"

namespace vipvt {

struct SizingConfig {
  /// Estimated wire length per sink [um] (classic wireload model).
  double wireload_um_per_fanout = 18.0;
  /// Accept the smallest drive within this factor of the fastest choice.
  double tolerance = 1.20;
  /// Characteristic input slew for the delay comparison [ns].
  double eval_slew_ns = 0.05;
};

struct SizingReport {
  std::size_t upsized = 0;
  std::size_t examined = 0;
};

/// Runs the sizing pass in place.  Must run before placement (placement
/// consumes the final cell widths).  Preserves function and Vth class.
SizingReport resize_for_wireload(Design& design,
                                 const SizingConfig& cfg = {});

/// Statistical upsizing knob of the compensation-policy portfolio
/// (DESIGN.md §18): push MC-critical gates up their drive family.
struct CriticalSizingConfig {
  bool enabled = false;
  /// Only gates whose MC criticality probability reaches this threshold
  /// are candidates.
  double min_crit_prob = 0.05;
  /// Area guard: at most this many gates are upsized per compile.
  int max_upsized = 64;
  /// Drive steps to climb within the (func, Vth) family per gate.
  int max_drive_steps = 1;
};

/// Upsizes up to `cfg.max_upsized` combinational gates, picked from
/// `crit_prob` (one entry per instance, from instance_criticality) in
/// descending criticality with InstId as the deterministic tie-break.
/// Each selected gate climbs `max_drive_steps` drives within its
/// (function, Vth) family — function and Vth are preserved by
/// construction, like resize_for_wireload.  Runs POST-placement as a
/// zero-displacement ECO: positions are untouched and footprint growth
/// is absorbed as ECO slack.  Throws std::invalid_argument when
/// `crit_prob.size() != design.num_instances()`.
SizingReport upsize_critical(Design& design, std::span<const double> crit_prob,
                             const CriticalSizingConfig& cfg);

}  // namespace vipvt
