#pragma once
// Wireload-model drive sizing — the pre-placement gate-sizing step of a
// synthesis flow.  Each gate's output load is estimated as the sum of
// its sink pin capacitances plus a per-fanout wireload term; the gate is
// then swapped to the smallest drive strength whose table delay at that
// load is within `tolerance` of the best available drive.  Without this
// pass, long/multi-fanout nets behind minimum-size drivers drown the
// gate delays (and with them the Lgate-variation signal the methodology
// measures) in RC.

#include <cstddef>

#include "netlist/design.hpp"

namespace vipvt {

struct SizingConfig {
  /// Estimated wire length per sink [um] (classic wireload model).
  double wireload_um_per_fanout = 18.0;
  /// Accept the smallest drive within this factor of the fastest choice.
  double tolerance = 1.20;
  /// Characteristic input slew for the delay comparison [ns].
  double eval_slew_ns = 0.05;
};

struct SizingReport {
  std::size_t upsized = 0;
  std::size_t examined = 0;
};

/// Runs the sizing pass in place.  Must run before placement (placement
/// consumes the final cell widths).  Preserves function and Vth class.
SizingReport resize_for_wireload(Design& design,
                                 const SizingConfig& cfg = {});

}  // namespace vipvt
