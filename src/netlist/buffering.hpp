#pragma once
// High-fanout net buffering — the buffer-tree insertion every synthesis
// flow performs.  Nets with more than `max_fanout` sinks get a layer of
// buffers, each driving a cluster of sinks; the pass iterates until no
// net (except the ideal clock) exceeds the limit, so decoded one-hot
// selects and control broadcasts end up behind balanced buffer trees
// instead of presenting pathological loads to a single driver.

#include <cstddef>
#include <span>

#include "netlist/design.hpp"

namespace vipvt {

struct BufferingReport {
  std::size_t buffers_inserted = 0;
  std::size_t nets_split = 0;
  std::size_t max_fanout_before = 0;
  std::size_t max_fanout_after = 0;
};

/// Splits every net with more than `max_fanout` sinks (clock excluded).
/// Inserted buffers inherit the driver's stage/unit (or the first sink's
/// for port-driven nets).  Must run before placement.
BufferingReport buffer_high_fanout(Design& design, int max_fanout = 12);

/// Statistical buffering knob of the compensation-policy portfolio
/// (DESIGN.md §18): split MC-critical nets behind repeaters.
struct CriticalBufferConfig {
  bool enabled = false;
  /// Only nets whose DRIVER's MC criticality reaches this threshold are
  /// candidates.
  double min_crit_prob = 0.05;
  /// At most this many nets are split per compile (area guard).
  int max_nets = 16;
  /// Nets below this fanout are not worth a repeater layer.
  int min_fanout = 3;
  /// Sinks per inserted buffer.
  int cluster = 4;
};

/// Splits up to `cfg.max_nets` cell-driven nets, picked by the driving
/// instance's criticality in `crit_prob` (descending, fanout then NetId
/// as deterministic tie-breaks).  Runs POST-placement as a
/// zero-displacement ECO: each buffer is placed AT its driver's point
/// and inherits the driver's domain/stage/unit.  Legality: clock nets,
/// primary-output nets, port-driven nets, unplaced drivers, and nets
/// whose sinks span voltage domains are never touched (a repeater must
/// not create an unshifted domain crossing).  Only original nets are
/// candidates — inserted legs are never re-split.  Throws
/// std::invalid_argument on bad sizes or degenerate knobs.
BufferingReport buffer_critical_nets(Design& design,
                                     std::span<const double> crit_prob,
                                     const CriticalBufferConfig& cfg);

}  // namespace vipvt
