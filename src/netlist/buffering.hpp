#pragma once
// High-fanout net buffering — the buffer-tree insertion every synthesis
// flow performs.  Nets with more than `max_fanout` sinks get a layer of
// buffers, each driving a cluster of sinks; the pass iterates until no
// net (except the ideal clock) exceeds the limit, so decoded one-hot
// selects and control broadcasts end up behind balanced buffer trees
// instead of presenting pathological loads to a single driver.

#include <cstddef>

#include "netlist/design.hpp"

namespace vipvt {

struct BufferingReport {
  std::size_t buffers_inserted = 0;
  std::size_t nets_split = 0;
  std::size_t max_fanout_before = 0;
  std::size_t max_fanout_after = 0;
};

/// Splits every net with more than `max_fanout` sinks (clock excluded).
/// Inserted buffers inherit the driver's stage/unit (or the first sink's
/// for port-driven nets).  Must run before placement.
BufferingReport buffer_high_fanout(Design& design, int max_fanout = 12);

}  // namespace vipvt
