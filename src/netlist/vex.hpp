#pragma once
// Generator for the target design of the paper: a VEX-class 4-way
// clustered VLIW core with 4 pipeline stages (FE, DC, EX, WB), four
// parallel execution slots (each: ALU with an in-series shifter, compare
// unit, address-computation unit, and a parallel multiplier), two
// forwarding paths for RAW hazards, a branch unit in the decode stage
// (static predict-not-taken), and a fully synthesized multi-ported
// register file.  Memories are behavioural, i.e. instruction words and
// load data enter as primary inputs and store address/data leave as
// primary outputs — exactly the modelling level of the paper.

#include <string>

#include "netlist/design.hpp"
#include "netlist/regfile.hpp"

namespace vipvt {

struct VexConfig {
  int slots = 4;        ///< issue width (paper: 4)
  int width = 32;       ///< datapath width (paper: 32)
  int num_regs = 64;    ///< architectural registers (power of two)
  int mult_width = 16;  ///< multiplier operand width (low half of operands)
  int opcode_bits = 5;

  /// A scaled-down configuration for unit tests and quick examples.
  static VexConfig tiny() {
    VexConfig c;
    c.slots = 2;
    c.width = 8;
    c.num_regs = 8;
    c.mult_width = 4;
    c.opcode_bits = 4;
    return c;
  }
};

/// Instruction-field layout of one 32-bit syllable (LSB-first offsets);
/// derived from VexConfig so tests can introspect the encoding.
struct SyllableLayout {
  int opcode_lsb = 0;
  int dest_lsb = 0;
  int src1_lsb = 0;
  int src2_lsb = 0;
  int imm_lsb = 0;
  int addr_bits = 0;
  int imm_bits = 0;
  int syllable_bits = 32;

  static SyllableLayout from(const VexConfig& cfg);
};

/// Opcode values understood by the decoder (and by the workload
/// generators in src/sim).
enum class VexOp : int {
  Nop = 0,
  Add = 1,
  Sub = 2,
  And = 3,
  Or = 4,
  Xor = 5,
  Shl = 6,
  Shr = 7,
  Mul = 8,
  Load = 9,
  Store = 10,
  Cmp = 11,
  Branch = 12,
  AddImm = 13,
  JumpReg = 14,  ///< register-indirect jump: target = R[src1] + imm
};

/// Interface nets of a built core (for testbenches and stimulus).
struct VexPorts {
  std::vector<NetId> instr;                ///< slot 0 in the low bits
  std::vector<std::vector<NetId>> load_data;  ///< per slot
  std::vector<NetId> pc_out;
  std::vector<std::vector<NetId>> store_addr;  ///< per slot
  std::vector<std::vector<NetId>> store_data;  ///< per slot
  std::vector<NetId> store_en;             ///< per slot
};

/// Builds the core into `design` (which must be empty).  Port naming:
/// "clk", "instr[i]", "load_data{slot}[i]" inputs; store interface and
/// "pc" outputs.  Returns the interface nets.
VexPorts build_vex_core(Design& design, const VexConfig& cfg);

/// Convenience: create the design, build the core, run Design::check().
Design make_vex_design(const Library& lib, const VexConfig& cfg,
                       const std::string& name = "vex");

}  // namespace vipvt
