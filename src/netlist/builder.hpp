#pragma once
// Structural netlist construction DSL.  The builder keeps a context
// (pipeline stage + functional unit) so generator code reads like
// structural RTL; every created gate is tagged for the per-stage SSTA
// grouping and the per-unit area/power breakdown.

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "netlist/design.hpp"

namespace vipvt {

/// A bus is an ordered vector of nets, LSB first.
using Bus = std::vector<NetId>;

class NetlistBuilder {
 public:
  explicit NetlistBuilder(Design& design);

  Design& design() { return *design_; }
  const Library& lib() const { return design_->lib(); }

  // --- context ----------------------------------------------------------
  /// Enter a functional unit scope; names of gates created inside are
  /// prefixed with the unit path.  Returns the previous unit for restore.
  void push_unit(const std::string& name);
  void pop_unit();
  void set_stage(PipeStage stage) { stage_ = stage; }
  PipeStage stage() const { return stage_; }
  UnitId current_unit() const { return unit_; }

  /// RAII unit scope.
  class UnitScope {
   public:
    UnitScope(NetlistBuilder& b, const std::string& name) : b_(b) {
      b_.push_unit(name);
    }
    ~UnitScope() { b_.pop_unit(); }
    UnitScope(const UnitScope&) = delete;
    UnitScope& operator=(const UnitScope&) = delete;

   private:
    NetlistBuilder& b_;
  };

  // --- ports & wires ------------------------------------------------------
  NetId input(const std::string& name);
  NetId clock_input(const std::string& name = "clk");
  void output(NetId net) { design_->mark_primary_output(net); }
  void output(const Bus& bus);
  Bus input_bus(const std::string& name, int width);
  NetId wire(const std::string& name);

  /// Constant nets via tie cells (memoized — one tie cell per value).
  NetId const0();
  NetId const1();

  // --- gates --------------------------------------------------------------
  /// Generic gate: instantiates the smallest-drive cell of `func`, returns
  /// the output net.  `ins` must match the function's input count
  /// (clock excluded; use dff() for sequential cells).
  NetId gate(CellFunc func, std::span<const NetId> ins);
  NetId gate(CellFunc func, std::initializer_list<NetId> ins);

  NetId inv(NetId a) { return gate(CellFunc::Inv, {a}); }
  NetId buf(NetId a) { return gate(CellFunc::Buf, {a}); }
  NetId and2(NetId a, NetId b) { return gate(CellFunc::And2, {a, b}); }
  NetId or2(NetId a, NetId b) { return gate(CellFunc::Or2, {a, b}); }
  NetId nand2(NetId a, NetId b) { return gate(CellFunc::Nand2, {a, b}); }
  NetId nor2(NetId a, NetId b) { return gate(CellFunc::Nor2, {a, b}); }
  NetId xor2(NetId a, NetId b) { return gate(CellFunc::Xor2, {a, b}); }
  NetId xnor2(NetId a, NetId b) { return gate(CellFunc::Xnor2, {a, b}); }
  /// s ? b : a
  NetId mux2(NetId a, NetId b, NetId s) { return gate(CellFunc::Mux2, {a, b, s}); }
  NetId maj3(NetId a, NetId b, NetId c) { return gate(CellFunc::Maj3, {a, b, c}); }

  /// D flip-flop clocked by the design clock; returns Q.
  NetId dff(NetId d);
  /// D flip-flop driving a pre-created Q net — needed for state loops
  /// (register-file hold paths, counters) where D logic reads Q.
  void dff_into(NetId d, NetId q);
  /// Flop an entire bus (pipeline register); tags flops with `stage()`.
  Bus dff_bus(const Bus& d);

  // --- bus utilities --------------------------------------------------------
  /// Reduction trees (balanced) over a bus.
  NetId reduce_or(const Bus& bus);
  NetId reduce_and(const Bus& bus);
  NetId reduce_xor(const Bus& bus);
  /// Bitwise ops.
  Bus bitwise(CellFunc func2, const Bus& a, const Bus& b);
  Bus invert(const Bus& a);
  /// Word-level 2:1 mux: s ? b : a.
  Bus mux2_bus(const Bus& a, const Bus& b, NetId s);
  /// Bus of constants from an integer literal (LSB first).
  Bus const_bus(std::uint64_t value, int width);

  std::size_t gates_created() const { return gates_created_; }

 private:
  std::string next_name(const char* kind);

  Design* design_;
  PipeStage stage_ = PipeStage::Other;
  UnitId unit_ = kUnitTop;
  std::vector<std::string> unit_stack_;
  std::vector<UnitId> unit_id_stack_;
  NetId const0_ = kInvalidNet;
  NetId const1_ = kInvalidNet;
  std::size_t gates_created_ = 0;
};

}  // namespace vipvt
