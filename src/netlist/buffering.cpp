#include "netlist/buffering.hpp"

#include <algorithm>
#include <stdexcept>

namespace vipvt {

BufferingReport buffer_high_fanout(Design& design, int max_fanout) {
  if (max_fanout < 2) {
    throw std::invalid_argument("buffer_high_fanout: max_fanout < 2");
  }
  BufferingReport report;
  const CellId buf = design.lib().cell_for(CellFunc::Buf);
  const auto fanout_limit = static_cast<std::size_t>(max_fanout);

  for (NetId n = 0; n < design.num_nets(); ++n) {
    const Net& net = design.net(n);
    if (net.is_clock) continue;
    report.max_fanout_before =
        std::max(report.max_fanout_before, net.sinks.size());
  }

  // The loop naturally processes nets created by earlier splits, so a
  // 1000-sink net becomes a tree of buffer layers.
  std::size_t buffers = 0;
  for (NetId n = 0; n < design.num_nets(); ++n) {
    // Note: design.net(n) may be invalidated by add_net; re-fetch.
    if (design.net(n).is_clock) continue;
    if (design.net(n).sinks.size() <= fanout_limit) continue;
    ++report.nets_split;

    // Attribution: the buffer tree belongs to the driving logic.
    PipeStage stage = PipeStage::Other;
    UnitId unit = kUnitTop;
    if (design.net(n).has_cell_driver()) {
      const Instance& drv = design.instance(design.net(n).driver.inst);
      stage = drv.stage;
      unit = drv.unit;
    } else if (!design.net(n).sinks.empty()) {
      const Instance& first = design.instance(design.net(n).sinks[0].inst);
      stage = first.stage;
      unit = first.unit;
    }

    // Snapshot the sinks, then move each cluster behind a buffer.
    const std::vector<PinConn> sinks = design.net(n).sinks;
    for (std::size_t base = 0; base < sinks.size(); base += fanout_limit) {
      const std::size_t end = std::min(base + fanout_limit, sinks.size());
      const NetId leg =
          design.add_net("buf_net_" + std::to_string(buffers));
      design.add_instance("fbuf_" + std::to_string(buffers), buf, stage,
                          unit, {n, leg});
      ++buffers;
      for (std::size_t k = base; k < end; ++k) {
        design.move_sink(n, sinks[k], leg);
      }
    }
    // The original net now drives only the buffer inputs; if those still
    // exceed the limit the loop will split this net again when it is
    // revisited — so re-queue by processing it once more.
    if (design.net(n).sinks.size() > fanout_limit) --n;
  }
  report.buffers_inserted = buffers;

  for (NetId n = 0; n < design.num_nets(); ++n) {
    const Net& net = design.net(n);
    if (net.is_clock) continue;
    report.max_fanout_after =
        std::max(report.max_fanout_after, net.sinks.size());
  }
  return report;
}

}  // namespace vipvt
