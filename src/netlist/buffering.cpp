#include "netlist/buffering.hpp"

#include <algorithm>
#include <stdexcept>

namespace vipvt {

BufferingReport buffer_high_fanout(Design& design, int max_fanout) {
  if (max_fanout < 2) {
    throw std::invalid_argument("buffer_high_fanout: max_fanout < 2");
  }
  BufferingReport report;
  const CellId buf = design.lib().cell_for(CellFunc::Buf);
  const auto fanout_limit = static_cast<std::size_t>(max_fanout);

  for (NetId n = 0; n < design.num_nets(); ++n) {
    const Net& net = design.net(n);
    if (net.is_clock) continue;
    report.max_fanout_before =
        std::max(report.max_fanout_before, net.sinks.size());
  }

  // The loop naturally processes nets created by earlier splits, so a
  // 1000-sink net becomes a tree of buffer layers.
  std::size_t buffers = 0;
  for (NetId n = 0; n < design.num_nets(); ++n) {
    // Note: design.net(n) may be invalidated by add_net; re-fetch.
    if (design.net(n).is_clock) continue;
    if (design.net(n).sinks.size() <= fanout_limit) continue;
    ++report.nets_split;

    // Attribution: the buffer tree belongs to the driving logic.
    PipeStage stage = PipeStage::Other;
    UnitId unit = kUnitTop;
    if (design.net(n).has_cell_driver()) {
      const Instance& drv = design.instance(design.net(n).driver.inst);
      stage = drv.stage;
      unit = drv.unit;
    } else if (!design.net(n).sinks.empty()) {
      const Instance& first = design.instance(design.net(n).sinks[0].inst);
      stage = first.stage;
      unit = first.unit;
    }

    // Snapshot the sinks, then move each cluster behind a buffer.
    const std::vector<PinConn> sinks = design.net(n).sinks;
    for (std::size_t base = 0; base < sinks.size(); base += fanout_limit) {
      const std::size_t end = std::min(base + fanout_limit, sinks.size());
      const NetId leg =
          design.add_net("buf_net_" + std::to_string(buffers));
      design.add_instance("fbuf_" + std::to_string(buffers), buf, stage,
                          unit, {n, leg});
      ++buffers;
      for (std::size_t k = base; k < end; ++k) {
        design.move_sink(n, sinks[k], leg);
      }
    }
    // The original net now drives only the buffer inputs; if those still
    // exceed the limit the loop will split this net again when it is
    // revisited — so re-queue by processing it once more.
    if (design.net(n).sinks.size() > fanout_limit) --n;
  }
  report.buffers_inserted = buffers;

  for (NetId n = 0; n < design.num_nets(); ++n) {
    const Net& net = design.net(n);
    if (net.is_clock) continue;
    report.max_fanout_after =
        std::max(report.max_fanout_after, net.sinks.size());
  }
  return report;
}

BufferingReport buffer_critical_nets(Design& design,
                                     std::span<const double> crit_prob,
                                     const CriticalBufferConfig& cfg) {
  if (crit_prob.size() != design.num_instances()) {
    throw std::invalid_argument(
        "buffer_critical_nets: crit_prob size != num_instances");
  }
  if (cfg.max_nets < 0 || cfg.min_fanout < 1 || cfg.cluster < 1) {
    throw std::invalid_argument("buffer_critical_nets: bad knobs");
  }
  BufferingReport report;
  const CellId buf = design.lib().cell_for(CellFunc::Buf);
  const NetId num_original = design.num_nets();
  const auto cluster = static_cast<std::size_t>(cfg.cluster);

  for (NetId n = 0; n < num_original; ++n) {
    const Net& net = design.net(n);
    if (net.is_clock) continue;
    report.max_fanout_before =
        std::max(report.max_fanout_before, net.sinks.size());
  }

  // Candidate nets: cell-driven, placed driver, critical driver, sinks
  // all in the driver's domain (a repeater inherits the driver's domain
  // and must not sit on an unshifted crossing), not clock / PO.
  std::vector<NetId> candidates;
  for (NetId n = 0; n < num_original; ++n) {
    const Net& net = design.net(n);
    if (net.is_clock || net.is_primary_output) continue;
    if (!net.has_cell_driver()) continue;
    if (net.sinks.size() < static_cast<std::size_t>(cfg.min_fanout)) continue;
    const Instance& drv = design.instance(net.driver.inst);
    if (!drv.placed) continue;
    if (crit_prob[net.driver.inst] < cfg.min_crit_prob) continue;
    bool same_domain = true;
    for (const auto& sink : net.sinks) {
      if (design.instance(sink.inst).domain != drv.domain) {
        same_domain = false;
        break;
      }
    }
    if (same_domain) candidates.push_back(n);
  }
  // Most-critical driver first, then fanout; stable sort leaves NetId
  // order as the final deterministic tie-break.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](NetId a, NetId b) {
                     const double ca = crit_prob[design.net(a).driver.inst];
                     const double cb = crit_prob[design.net(b).driver.inst];
                     if (ca != cb) return ca > cb;
                     return design.net(a).sinks.size() >
                            design.net(b).sinks.size();
                   });
  if (candidates.size() > static_cast<std::size_t>(cfg.max_nets)) {
    candidates.resize(static_cast<std::size_t>(cfg.max_nets));
  }

  std::size_t buffers = 0;
  for (NetId n : candidates) {
    ++report.nets_split;
    // Capture driver attributes BY VALUE: add_net/add_instance may
    // reallocate the instance/net vectors.
    const Instance drv = design.instance(design.net(n).driver.inst);
    const std::vector<PinConn> sinks = design.net(n).sinks;
    for (std::size_t base = 0; base < sinks.size(); base += cluster) {
      const std::size_t end = std::min(base + cluster, sinks.size());
      const NetId leg =
          design.add_net("crit_buf_net_" + std::to_string(buffers));
      const InstId bi =
          design.add_instance("crit_fbuf_" + std::to_string(buffers), buf,
                              drv.stage, drv.unit, {n, leg});
      // Zero-displacement ECO: the repeater sits at the driver's point
      // and inherits its voltage domain, so placement and island plans
      // stay valid without a placer rerun.
      Instance& bref = design.instance(bi);
      bref.pos = drv.pos;
      bref.placed = true;
      bref.domain = drv.domain;
      ++buffers;
      for (std::size_t k = base; k < end; ++k) {
        design.move_sink(n, sinks[k], leg);
      }
    }
  }
  report.buffers_inserted = buffers;

  for (NetId n = 0; n < design.num_nets(); ++n) {
    const Net& net = design.net(n);
    if (net.is_clock) continue;
    report.max_fanout_after =
        std::max(report.max_fanout_after, net.sinks.size());
  }
  return report;
}

}  // namespace vipvt
