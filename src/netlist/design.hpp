#pragma once
// Gate-level netlist data model.  A Design owns instances, nets and the
// primary ports; every instance references a Library cell and carries the
// microarchitectural metadata the methodology needs: which pipeline stage
// its logic belongs to (for per-stage SSTA grouping), which functional
// unit it implements (for the Table-1 style breakdown), its placement
// coordinates and its voltage-domain membership (for voltage islands).
//
// Handles are plain indices (InstId/NetId) — the standard EDA idiom for
// cache-friendly traversal of netlists with tens of thousands of instances.

#include <cstdint>
#include <string>
#include <vector>

#include "liberty/library.hpp"
#include "util/geometry.hpp"

namespace vipvt {

using InstId = std::uint32_t;
using NetId = std::uint32_t;
using UnitId = std::uint16_t;
using DomainId = std::uint8_t;

inline constexpr InstId kInvalidInst = static_cast<InstId>(-1);
inline constexpr NetId kInvalidNet = static_cast<NetId>(-1);
inline constexpr UnitId kUnitTop = 0;  ///< default/unassigned unit

/// Base voltage domain: cells outside every island; always at low Vdd.
inline constexpr DomainId kDomainBase = 0;

/// Pipeline stage a piece of logic (or the flop capturing it) belongs to.
enum class PipeStage : std::uint8_t {
  Fetch,
  Decode,
  Execute,
  WriteBack,
  Other,
};
inline constexpr int kNumPipeStages = 5;
const char* stage_name(PipeStage s);

struct PinConn {
  InstId inst = kInvalidInst;
  std::uint16_t pin = 0;

  friend bool operator==(const PinConn&, const PinConn&) = default;
};

struct Net {
  std::string name;
  PinConn driver;  ///< invalid inst => driven by a primary input
  std::vector<PinConn> sinks;
  bool is_primary_input = false;
  bool is_primary_output = false;
  bool is_clock = false;

  bool has_cell_driver() const { return driver.inst != kInvalidInst; }
};

struct Instance {
  std::string name;
  CellId cell = kInvalidCell;
  PipeStage stage = PipeStage::Other;
  UnitId unit = kUnitTop;
  std::vector<NetId> conns;  ///< aligned with Cell::pins
  Point pos;                 ///< lower-left, um; valid when `placed`
  bool placed = false;
  DomainId domain = kDomainBase;
};

class Design {
 public:
  Design(std::string name, const Library& lib);

  const std::string& name() const { return name_; }
  const Library& lib() const { return *lib_; }

  // --- construction -----------------------------------------------------
  NetId add_net(std::string net_name);
  NetId add_primary_input(std::string net_name, bool is_clock = false);
  void mark_primary_output(NetId net);

  /// Creates an instance of `cell` whose pin i connects to conns[i].
  /// Output pins become the driver of their net; inputs become sinks.
  InstId add_instance(std::string inst_name, CellId cell, PipeStage stage,
                      UnitId unit, std::vector<NetId> conns);

  /// Registers (or finds) a named functional unit for breakdown reports.
  UnitId unit_id(const std::string& unit_name);

  /// Moves a sink pin from one net to another (ECO edit used by the
  /// level-shifter inserter).  The sink must currently be on `from`.
  void move_sink(NetId from, PinConn sink, NetId to);

  // --- access -----------------------------------------------------------
  const Instance& instance(InstId id) const { return instances_[id]; }
  Instance& instance(InstId id) { return instances_[id]; }
  const Net& net(NetId id) const { return nets_[id]; }
  Net& net(NetId id) { return nets_[id]; }
  std::size_t num_instances() const { return instances_.size(); }
  std::size_t num_nets() const { return nets_.size(); }
  const std::vector<Instance>& instances() const { return instances_; }
  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<std::string>& unit_names() const { return unit_names_; }
  const std::vector<NetId>& primary_inputs() const { return primary_inputs_; }
  const std::vector<NetId>& primary_outputs() const { return primary_outputs_; }
  NetId clock_net() const { return clock_net_; }

  const Cell& cell_of(InstId id) const { return lib_->cell(instances_[id].cell); }

  /// Total standard-cell area [um^2].
  double total_area() const;
  /// Area of one unit [um^2].
  double unit_area(UnitId unit) const;
  /// Number of sequential instances.
  std::size_t num_flops() const;

  /// Structural sanity check: every input pin driven exactly once, pin
  /// counts match the cell, clock pins on the clock net, no floating
  /// cell-driven outputs feeding nothing AND marked primary.  Throws
  /// std::runtime_error with a diagnostic on the first violation.
  void check() const;

 private:
  std::string name_;
  const Library* lib_;
  std::vector<Instance> instances_;
  std::vector<Net> nets_;
  std::vector<std::string> unit_names_{"top"};
  std::vector<NetId> primary_inputs_;
  std::vector<NetId> primary_outputs_;
  NetId clock_net_ = kInvalidNet;
};

}  // namespace vipvt
