#pragma once
// Fully synthesized multi-ported register file, as in the paper ("the
// design was fully synthesized, even the register file").  Per-register
// write logic is a priority mux over the write ports gated by one-hot
// address decoders; read ports are binary mux trees over all registers.
// This block dominates area/power exactly as Table 1 of the paper reports
// (53 % area / 64 % power on the real VEX).

#include <vector>

#include "netlist/builder.hpp"

namespace vipvt {

struct RegFileConfig {
  int num_regs = 64;    ///< must be a power of two
  int width = 32;
  int read_ports = 8;
  int write_ports = 4;
};

struct RegFileIo {
  std::vector<Bus> read_addr;   ///< inputs (caller-provided)
  std::vector<Bus> read_data;   ///< outputs
  std::vector<Bus> write_addr;  ///< inputs
  std::vector<Bus> write_data;  ///< inputs
  std::vector<NetId> write_en;  ///< inputs
};

/// Builds the register file inside the current unit scope.  Read logic is
/// tagged PipeStage::Decode (operand fetch happens in DC), write/decode
/// logic and the storage flops PipeStage::WriteBack, matching how the
/// paper attributes register-file paths to pipeline stages.
///
/// The IO buses in `io` must be pre-filled with the input nets
/// (read_addr, write_addr, write_data, write_en); read_data is produced.
void build_register_file(NetlistBuilder& b, const RegFileConfig& cfg,
                         RegFileIo& io);

}  // namespace vipvt
