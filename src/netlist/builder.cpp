#include "netlist/builder.hpp"

#include <stdexcept>

namespace vipvt {

NetlistBuilder::NetlistBuilder(Design& design) : design_(&design) {}

void NetlistBuilder::push_unit(const std::string& name) {
  const std::string path =
      unit_stack_.empty() ? name : unit_stack_.back() + "/" + name;
  unit_stack_.push_back(path);
  unit_id_stack_.push_back(unit_);
  unit_ = design_->unit_id(path);
}

void NetlistBuilder::pop_unit() {
  if (unit_stack_.empty()) throw std::logic_error("pop_unit: empty stack");
  unit_stack_.pop_back();
  unit_ = unit_id_stack_.back();
  unit_id_stack_.pop_back();
}

std::string NetlistBuilder::next_name(const char* kind) {
  const std::string prefix =
      unit_stack_.empty() ? std::string() : unit_stack_.back() + "/";
  return prefix + kind + "_" + std::to_string(gates_created_);
}

NetId NetlistBuilder::input(const std::string& name) {
  return design_->add_primary_input(name);
}

NetId NetlistBuilder::clock_input(const std::string& name) {
  return design_->add_primary_input(name, /*is_clock=*/true);
}

void NetlistBuilder::output(const Bus& bus) {
  for (NetId n : bus) design_->mark_primary_output(n);
}

Bus NetlistBuilder::input_bus(const std::string& name, int width) {
  Bus bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    bus.push_back(input(name + "[" + std::to_string(i) + "]"));
  }
  return bus;
}

NetId NetlistBuilder::wire(const std::string& name) {
  return design_->add_net(name);
}

NetId NetlistBuilder::const0() {
  if (const0_ == kInvalidNet) {
    const0_ = design_->add_net("const0");
    const CellId tie = lib().cell_for(CellFunc::Tie0);
    design_->add_instance("tie0", tie, PipeStage::Other, kUnitTop, {const0_});
  }
  return const0_;
}

NetId NetlistBuilder::const1() {
  if (const1_ == kInvalidNet) {
    const1_ = design_->add_net("const1");
    const CellId tie = lib().cell_for(CellFunc::Tie1);
    design_->add_instance("tie1", tie, PipeStage::Other, kUnitTop, {const1_});
  }
  return const1_;
}

NetId NetlistBuilder::gate(CellFunc func, std::span<const NetId> ins) {
  const CellId cell = lib().cell_for(func);
  const Cell& c = lib().cell(cell);
  if (static_cast<int>(ins.size()) != c.num_inputs()) {
    throw std::invalid_argument(std::string("gate(") + func_name(func) +
                                "): wrong input count");
  }
  ++gates_created_;
  const NetId out = design_->add_net(next_name(func_name(func)));
  std::vector<NetId> conns(ins.begin(), ins.end());
  conns.push_back(out);
  design_->add_instance(next_name("u"), cell, stage_, unit_, std::move(conns));
  return out;
}

NetId NetlistBuilder::gate(CellFunc func, std::initializer_list<NetId> ins) {
  return gate(func, std::span<const NetId>(ins.begin(), ins.size()));
}

NetId NetlistBuilder::dff(NetId d) {
  const NetId q = design_->add_net(next_name("q"));
  dff_into(d, q);
  return q;
}

void NetlistBuilder::dff_into(NetId d, NetId q) {
  const NetId clk = design_->clock_net();
  if (clk == kInvalidNet) {
    throw std::logic_error("dff: design has no clock input");
  }
  const CellId cell = lib().cell_for(CellFunc::Dff);
  ++gates_created_;
  design_->add_instance(next_name("ff"), cell, stage_, unit_, {d, clk, q});
}

Bus NetlistBuilder::dff_bus(const Bus& d) {
  Bus q;
  q.reserve(d.size());
  for (NetId n : d) q.push_back(dff(n));
  return q;
}

namespace {

NetId reduce_tree(NetlistBuilder& b, Bus bus, CellFunc func2) {
  if (bus.empty()) throw std::invalid_argument("reduce: empty bus");
  while (bus.size() > 1) {
    Bus next;
    next.reserve((bus.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < bus.size(); i += 2) {
      next.push_back(b.gate(func2, {bus[i], bus[i + 1]}));
    }
    if (bus.size() % 2 == 1) next.push_back(bus.back());
    bus = std::move(next);
  }
  return bus[0];
}

}  // namespace

NetId NetlistBuilder::reduce_or(const Bus& bus) {
  return reduce_tree(*this, bus, CellFunc::Or2);
}

NetId NetlistBuilder::reduce_and(const Bus& bus) {
  return reduce_tree(*this, bus, CellFunc::And2);
}

NetId NetlistBuilder::reduce_xor(const Bus& bus) {
  return reduce_tree(*this, bus, CellFunc::Xor2);
}

Bus NetlistBuilder::bitwise(CellFunc func2, const Bus& a, const Bus& b) {
  if (a.size() != b.size()) throw std::invalid_argument("bitwise: width mismatch");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(gate(func2, {a[i], b[i]}));
  }
  return out;
}

Bus NetlistBuilder::invert(const Bus& a) {
  Bus out;
  out.reserve(a.size());
  for (NetId n : a) out.push_back(inv(n));
  return out;
}

Bus NetlistBuilder::mux2_bus(const Bus& a, const Bus& b, NetId s) {
  if (a.size() != b.size()) throw std::invalid_argument("mux2_bus: width mismatch");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(mux2(a[i], b[i], s));
  return out;
}

Bus NetlistBuilder::const_bus(std::uint64_t value, int width) {
  Bus out;
  out.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    out.push_back((value >> i) & 1 ? const1() : const0());
  }
  return out;
}

}  // namespace vipvt
