#pragma once
// Structural generators for the datapath blocks the VEX-class VLIW is
// assembled from.  All generators emit plain library gates through the
// NetlistBuilder, inheriting its stage/unit context, so the resulting
// netlist has realistic logic-depth and path-count profiles per pipeline
// stage — the property the paper's SSTA results hinge on (deep
// ALU/forwarding paths in EX, wide mux trees in DC, shallow WB logic).

#include <vector>

#include "netlist/builder.hpp"

namespace vipvt {

struct AdderOut {
  Bus sum;
  NetId cout = kInvalidNet;
};

/// Ripple-carry adder: minimal area, depth O(n).  Used where delay is
/// uncritical (counters, small address math).
AdderOut ripple_adder(NetlistBuilder& b, const Bus& a, const Bus& bb, NetId cin);

/// Carry-lookahead adder with 4-bit groups: the performance adder of the
/// ALUs and AGUs; depth O(n/4 + lookahead levels).
AdderOut cla_adder(NetlistBuilder& b, const Bus& a, const Bus& bb, NetId cin);

/// a - b (two's complement); `borrow_n` out is the carry-out (1 => a >= b
/// for unsigned operands).
struct SubOut {
  Bus diff;
  NetId no_borrow = kInvalidNet;
};
SubOut subtractor(NetlistBuilder& b, const Bus& a, const Bus& bb);

/// Equality comparator (XNOR + AND-tree).
NetId equal(NetlistBuilder& b, const Bus& a, const Bus& bb);
/// Unsigned a < b via subtract borrow.
NetId less_than(NetlistBuilder& b, const Bus& a, const Bus& bb);
/// True iff the bus is all zero.
NetId is_zero(NetlistBuilder& b, const Bus& a);

/// Logarithmic barrel shifter.  `amount` is LSB-first; result width equals
/// a's width.  When `left` shifts left, else logical right shift;
/// `arithmetic` makes right shifts sign-extending.
Bus barrel_shifter(NetlistBuilder& b, const Bus& a, const Bus& amount,
                   bool left, bool arithmetic = false);

/// Carry-save reduction of addend rows to two rows (Wallace-style), then
/// final CLA.  Rows may have different widths; they are implicitly
/// zero-padded to `out_width`.
Bus carry_save_sum(NetlistBuilder& b, std::vector<Bus> rows, int out_width);

/// Unsigned array multiplier with Wallace-tree reduction and CLA final
/// adder.  Result has a.size() + bb.size() bits.
Bus multiplier(NetlistBuilder& b, const Bus& a, const Bus& bb);

/// n-to-2^n one-hot decoder.
Bus decoder_onehot(NetlistBuilder& b, const Bus& sel);

/// Select one of `options` (all same width) by the binary select bus;
/// options.size() must be <= 2^sel.size(); missing options select option 0.
Bus mux_tree(NetlistBuilder& b, const std::vector<Bus>& options, const Bus& sel);

/// Sign- or zero-extend a bus to `width`.
Bus extend(NetlistBuilder& b, const Bus& a, int width, bool sign_extend);

}  // namespace vipvt
