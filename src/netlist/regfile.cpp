#include "netlist/regfile.hpp"

#include <bit>
#include <stdexcept>

#include "netlist/generators.hpp"

namespace vipvt {

void build_register_file(NetlistBuilder& b, const RegFileConfig& cfg,
                         RegFileIo& io) {
  if (!std::has_single_bit(static_cast<unsigned>(cfg.num_regs))) {
    throw std::invalid_argument("register file: num_regs must be 2^k");
  }
  const int addr_bits = std::countr_zero(static_cast<unsigned>(cfg.num_regs));
  auto check_addr = [&](const std::vector<Bus>& v, int count) {
    if (static_cast<int>(v.size()) != count) {
      throw std::invalid_argument("register file: port count mismatch");
    }
    for (const auto& bus : v) {
      if (static_cast<int>(bus.size()) != addr_bits) {
        throw std::invalid_argument("register file: address width mismatch");
      }
    }
  };
  check_addr(io.read_addr, cfg.read_ports);
  check_addr(io.write_addr, cfg.write_ports);
  if (static_cast<int>(io.write_data.size()) != cfg.write_ports ||
      static_cast<int>(io.write_en.size()) != cfg.write_ports) {
    throw std::invalid_argument("register file: write port mismatch");
  }

  // ---- write-address decode (WB stage) ---------------------------------
  b.set_stage(PipeStage::WriteBack);
  std::vector<Bus> wr_onehot;  // [port][reg]
  {
    NetlistBuilder::UnitScope dec(b, "wdec");
    wr_onehot.reserve(static_cast<std::size_t>(cfg.write_ports));
    for (int w = 0; w < cfg.write_ports; ++w) {
      Bus onehot = decoder_onehot(b, io.write_addr[w]);
      for (auto& sel : onehot) sel = b.and2(sel, io.write_en[w]);
      wr_onehot.push_back(std::move(onehot));
    }
  }

  // ---- storage & write muxing (WB stage) --------------------------------
  // q[reg][bit] created up front: the hold path makes D depend on Q.
  std::vector<Bus> q(static_cast<std::size_t>(cfg.num_regs));
  for (int r = 0; r < cfg.num_regs; ++r) {
    q[r].reserve(static_cast<std::size_t>(cfg.width));
    for (int bit = 0; bit < cfg.width; ++bit) {
      q[r].push_back(b.wire("rf_q_" + std::to_string(r) + "_" +
                            std::to_string(bit)));
    }
  }
  {
    NetlistBuilder::UnitScope store(b, "store");
    for (int r = 0; r < cfg.num_regs; ++r) {
      for (int bit = 0; bit < cfg.width; ++bit) {
        // Priority chain over write ports; default = hold.
        NetId d = q[r][bit];
        for (int w = 0; w < cfg.write_ports; ++w) {
          d = b.mux2(d, io.write_data[w][bit], wr_onehot[w][r]);
        }
        b.dff_into(d, q[r][bit]);
      }
    }
  }

  // ---- read mux trees (DC stage) ----------------------------------------
  b.set_stage(PipeStage::Decode);
  io.read_data.clear();
  io.read_data.reserve(static_cast<std::size_t>(cfg.read_ports));
  {
    NetlistBuilder::UnitScope rd(b, "read");
    for (int p = 0; p < cfg.read_ports; ++p) {
      io.read_data.push_back(mux_tree(b, q, io.read_addr[p]));
    }
  }
}

}  // namespace vipvt
