#include "netlist/vex.hpp"

#include <bit>
#include <stdexcept>
#include <string>
#include <vector>

#include "netlist/buffering.hpp"
#include "netlist/builder.hpp"
#include "netlist/generators.hpp"
#include "netlist/sizing.hpp"

namespace vipvt {

SyllableLayout SyllableLayout::from(const VexConfig& cfg) {
  SyllableLayout l;
  l.addr_bits = std::countr_zero(static_cast<unsigned>(cfg.num_regs));
  l.opcode_lsb = 0;
  l.dest_lsb = cfg.opcode_bits;
  l.src1_lsb = l.dest_lsb + l.addr_bits;
  l.src2_lsb = l.src1_lsb + l.addr_bits;
  l.imm_lsb = l.src2_lsb + l.addr_bits;
  l.imm_bits = l.syllable_bits - l.imm_lsb;
  if (l.imm_bits < 2) {
    throw std::invalid_argument("VexConfig: syllable fields exceed 32 bits");
  }
  return l;
}

namespace {

Bus slice(const Bus& bus, int lsb, int count) {
  return Bus(bus.begin() + lsb, bus.begin() + lsb + count);
}

Bus reverse_bus(const Bus& bus) { return Bus(bus.rbegin(), bus.rend()); }

/// Pre-create `n` wire nets (for signals whose drivers are built later).
Bus make_wires(NetlistBuilder& b, const std::string& name, int n) {
  Bus bus;
  bus.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    bus.push_back(b.wire(name + "[" + std::to_string(i) + "]"));
  }
  return bus;
}

/// Per-slot decoded control word registered into the DC/EX pipe register.
struct SlotCtl {
  NetId is_sub, is_and, is_or, is_xor, is_shift, is_shl, is_mul, is_load,
      is_store, is_cmp, use_imm, wr_en;
};

/// Priority-forwarding of one operand: newest (EX/WB) beats WB-retire
/// beats the register-file value.
Bus forward_operand(NetlistBuilder& b, const Bus& rf_value, const Bus& src,
                    const std::vector<Bus>& exwb_res,
                    const std::vector<Bus>& exwb_dest,
                    const Bus& exwb_wren, const std::vector<Bus>& wb_res,
                    const std::vector<Bus>& wb_dest, const Bus& wb_wren) {
  Bus value = rf_value;
  // Older results first so that the priority chain ends with the newest.
  for (std::size_t k = 0; k < wb_res.size(); ++k) {
    const NetId hit = b.and2(equal(b, src, wb_dest[k]), wb_wren[k]);
    value = b.mux2_bus(value, wb_res[k], hit);
  }
  for (std::size_t k = 0; k < exwb_res.size(); ++k) {
    const NetId hit = b.and2(equal(b, src, exwb_dest[k]), exwb_wren[k]);
    value = b.mux2_bus(value, exwb_res[k], hit);
  }
  return value;
}

}  // namespace

VexPorts build_vex_core(Design& design, const VexConfig& cfg) {
  const auto layout = SyllableLayout::from(cfg);
  const int W = cfg.width;
  const int S = cfg.slots;
  const int A = layout.addr_bits;
  NetlistBuilder b(design);

  b.clock_input("clk");

  // ---- primary inputs ----------------------------------------------------
  Bus instr;  // S syllables, slot 0 in the low bits
  {
    instr = b.input_bus("instr", layout.syllable_bits * S);
  }
  std::vector<Bus> load_data(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    load_data[s] = b.input_bus("load_data" + std::to_string(s), W);
  }

  // ---- wires whose drivers come later (pipeline back-edges) --------------
  std::vector<Bus> exwb_result(S), exwb_dest(S), wb_result(S), wb_dest(S);
  Bus exwb_wren = make_wires(b, "exwb_wren", S);
  Bus wb_wren = make_wires(b, "wb_wren", S);
  for (int s = 0; s < S; ++s) {
    const std::string tag = std::to_string(s);
    exwb_result[s] = make_wires(b, "exwb_result" + tag, W);
    exwb_dest[s] = make_wires(b, "exwb_dest" + tag, A);
    wb_result[s] = make_wires(b, "wb_result" + tag, W);
    wb_dest[s] = make_wires(b, "wb_dest" + tag, A);
  }
  Bus branch_taken_w = make_wires(b, "branch_taken", 1);
  Bus branch_target = make_wires(b, "branch_target", W);

  // ---- FE: program counter -----------------------------------------------
  Bus pc = make_wires(b, "pc_q", W);
  {
    NetlistBuilder::UnitScope fe(b, "fetch");
    b.set_stage(PipeStage::Fetch);
    // PC + 4 (one instruction bundle per cycle, byte addressed).
    Bus four = b.const_bus(4, W);
    Bus pc_inc = cla_adder(b, pc, four, b.const0()).sum;
    Bus pc_next = b.mux2_bus(pc_inc, branch_target, branch_taken_w[0]);
    for (int i = 0; i < W; ++i) b.dff_into(pc_next[i], pc[i]);
    b.output(pc);  // "pc_out": behavioural program memory address
  }

  // ---- FE/DC pipeline register -------------------------------------------
  Bus instr_dc;
  Bus pc_dc;
  {
    NetlistBuilder::UnitScope pr(b, "pipe/fe_dc");
    b.set_stage(PipeStage::Fetch);  // captures FE-stage logic
    instr_dc = b.dff_bus(instr);
    pc_dc = b.dff_bus(pc);
  }

  // ---- DC: decode, register read, branch ----------------------------------
  b.set_stage(PipeStage::Decode);
  std::vector<Bus> dc_src1(S), dc_src2(S), dc_dest(S), dc_imm(S);
  std::vector<Bus> opcode_oh(S);
  std::vector<SlotCtl> ctl(static_cast<std::size_t>(S));
  {
    NetlistBuilder::UnitScope dc(b, "decode");
    for (int s = 0; s < S; ++s) {
      NetlistBuilder::UnitScope slot(b, "slot" + std::to_string(s));
      const Bus syll = slice(instr_dc, s * layout.syllable_bits,
                             layout.syllable_bits);
      const Bus opcode = slice(syll, layout.opcode_lsb, cfg.opcode_bits);
      dc_dest[s] = slice(syll, layout.dest_lsb, A);
      dc_src1[s] = slice(syll, layout.src1_lsb, A);
      dc_src2[s] = slice(syll, layout.src2_lsb, A);
      const Bus imm_raw = slice(syll, layout.imm_lsb, layout.imm_bits);
      dc_imm[s] = extend(b, imm_raw, W, /*sign_extend=*/true);

      Bus oh = decoder_onehot(b, opcode);
      auto line = [&](VexOp op) { return oh[static_cast<std::size_t>(op)]; };
      SlotCtl& c = ctl[s];
      c.is_sub = b.or2(line(VexOp::Sub), line(VexOp::Cmp));
      c.is_and = line(VexOp::And);
      c.is_or = line(VexOp::Or);
      c.is_xor = line(VexOp::Xor);
      c.is_shl = line(VexOp::Shl);
      c.is_shift = b.or2(line(VexOp::Shl), line(VexOp::Shr));
      c.is_mul = line(VexOp::Mul);
      c.is_load = line(VexOp::Load);
      c.is_store = line(VexOp::Store);
      c.is_cmp = line(VexOp::Cmp);
      c.use_imm = b.or2(line(VexOp::AddImm),
                        b.or2(line(VexOp::Load), line(VexOp::Store)));
      // Everything except NOP, Store and Branch writes a destination.
      c.wr_en = b.inv(b.or2(line(VexOp::Nop),
                            b.or2(line(VexOp::Store), line(VexOp::Branch))));
      opcode_oh[s] = std::move(oh);
    }
  }

  // ---- WB commit units ------------------------------------------------------
  // Between the EX/WB register and the register-file write ports: bounds
  // check + saturating clip (DSP saturation mode — present in the VEX
  // ISA; the mode input is tied off for this workload so the function is
  // transparent but the timing paths are real), store-merge rotation, and
  // zero/parity flag generation.  This gives the write-back stage the
  // realistic logic depth behind the paper's Fig. 3 WB distribution.
  std::vector<Bus> commit_data(S);
  {
    NetlistBuilder::UnitScope cu(b, "commit");
    b.set_stage(PipeStage::WriteBack);
    for (int s = 0; s < S; ++s) {
      NetlistBuilder::UnitScope slot(b, "slot" + std::to_string(s));
      const Bus& r = exwb_result[s];
      // Saturation bounds: magnitude check on the top half of the result
      // (full-width compare is not needed to detect clipping range).
      const int half = W / 2;
      const Bus top = slice(r, W - half, half);
      const std::uint64_t hi_val = (1ull << (half - 1)) - 2;
      const Bus hi_bound = b.const_bus(hi_val, half);
      const Bus lo_bound = b.const_bus(2, half);
      const NetId above = less_than(b, hi_bound, top);
      const NetId below = less_than(b, top, lo_bound);
      const NetId out_of_range = b.or2(above, below);
      const NetId sat_mode = b.const0();  // saturation disabled here
      const NetId clip = b.and2(out_of_range, sat_mode);
      const Bus sat_value = b.const_bus((1ull << (W - 1)) - 1, W);
      const Bus clipped = b.mux2_bus(r, sat_value, clip);
      // Store-merge rotation by the low destination bits (sub-word
      // writes); rotation mode likewise tied off.
      Bus rot = clipped;
      for (int level = 0; level < 2 && (W >> (level + 2)) > 0; ++level) {
        const int dist = W >> (level + 2);
        const NetId amt = b.and2(exwb_dest[s][level], sat_mode);
        Bus next(rot.size());
        for (int i = 0; i < W; ++i) {
          next[i] = b.mux2(rot[i], rot[(i + dist) % W], amt);
        }
        rot = std::move(next);
      }
      commit_data[s] = rot;
      // Commit flags: architectural condition state written every cycle.
      b.dff(is_zero(b, clipped));
      b.dff(b.reduce_xor(clipped));
      b.dff(out_of_range);
    }
  }

  // ---- register file (reads in DC, writes from WB commit) -------------------
  RegFileIo rf_io;
  {
    NetlistBuilder::UnitScope rf(b, "regfile");
    RegFileConfig rf_cfg;
    rf_cfg.num_regs = cfg.num_regs;
    rf_cfg.width = W;
    rf_cfg.read_ports = 2 * S;
    rf_cfg.write_ports = S;
    for (int s = 0; s < S; ++s) {
      rf_io.read_addr.push_back(dc_src1[s]);
      rf_io.read_addr.push_back(dc_src2[s]);
      rf_io.write_addr.push_back(exwb_dest[s]);
      rf_io.write_data.push_back(commit_data[s]);
      rf_io.write_en.push_back(exwb_wren[s]);
    }
    build_register_file(b, rf_cfg, rf_io);
  }

  // ---- branch unit (DC stage, slot 0; static predict-not-taken) -----------
  {
    NetlistBuilder::UnitScope br(b, "branch");
    b.set_stage(PipeStage::Decode);
    const NetId is_branch = opcode_oh[0][static_cast<std::size_t>(VexOp::Branch)];
    const NetId is_jr = opcode_oh[0][static_cast<std::size_t>(VexOp::JumpReg)];
    // Condition: branch if the first read operand of slot 0 is zero.
    const NetId cond = is_zero(b, rf_io.read_data[0]);
    const NetId taken = b.or2(b.and2(is_branch, cond), is_jr);
    // Direct target: PC-relative immediate (already sign-extended);
    // indirect target: register + immediate — the register value comes
    // through the RF read muxes, making this the decode stage's deepest
    // path (read port -> CLA -> target mux), as in real jump-register
    // implementations.
    Bus direct = cla_adder(b, pc_dc, dc_imm[0], b.const0()).sum;
    Bus indirect = cla_adder(b, rf_io.read_data[0], dc_imm[0], b.const0()).sum;
    Bus target = b.mux2_bus(direct, indirect, is_jr);
    b.dff_into(taken, branch_taken_w[0]);  // registered into the FE mux
    for (int i = 0; i < W; ++i) b.dff_into(target[i], branch_target[i]);
  }

  // ---- DC/EX pipeline register ---------------------------------------------
  std::vector<Bus> ex_op1(S), ex_op2(S), ex_imm(S), ex_src1(S), ex_src2(S),
      ex_dest(S);
  std::vector<SlotCtl> exc(static_cast<std::size_t>(S));
  {
    NetlistBuilder::UnitScope pr(b, "pipe/dc_ex");
    b.set_stage(PipeStage::Decode);  // captures DC-stage logic
    for (int s = 0; s < S; ++s) {
      ex_op1[s] = b.dff_bus(rf_io.read_data[2 * s]);
      ex_op2[s] = b.dff_bus(rf_io.read_data[2 * s + 1]);
      ex_imm[s] = b.dff_bus(dc_imm[s]);
      ex_src1[s] = b.dff_bus(dc_src1[s]);
      ex_src2[s] = b.dff_bus(dc_src2[s]);
      ex_dest[s] = b.dff_bus(dc_dest[s]);
      SlotCtl& c = exc[s];
      const SlotCtl& d = ctl[s];
      c.is_sub = b.dff(d.is_sub);
      c.is_and = b.dff(d.is_and);
      c.is_or = b.dff(d.is_or);
      c.is_xor = b.dff(d.is_xor);
      c.is_shift = b.dff(d.is_shift);
      c.is_shl = b.dff(d.is_shl);
      c.is_mul = b.dff(d.is_mul);
      c.is_load = b.dff(d.is_load);
      c.is_store = b.dff(d.is_store);
      c.is_cmp = b.dff(d.is_cmp);
      c.use_imm = b.dff(d.use_imm);
      c.wr_en = b.dff(d.wr_en);
    }
  }

  // ---- EX: forwarding, ALU+shifter, compare, AGU, multiplier ---------------
  b.set_stage(PipeStage::Execute);
  std::vector<Bus> slot_result(S), slot_st_addr(S), slot_st_data(S);
  Bus slot_wren(static_cast<std::size_t>(S));
  {
    NetlistBuilder::UnitScope ex(b, "execute");
    for (int s = 0; s < S; ++s) {
      NetlistBuilder::UnitScope slot(b, "slot" + std::to_string(s));
      const SlotCtl& c = exc[s];

      // Two forwarding units: from the EX/WB register (newest) and from
      // the WB retire register, resolving read-after-write hazards.
      Bus opa, opb;
      {
        NetlistBuilder::UnitScope fwd(b, "fwd");
        opa = forward_operand(b, ex_op1[s], ex_src1[s], exwb_result,
                              exwb_dest, exwb_wren, wb_result, wb_dest,
                              wb_wren);
        opb = forward_operand(b, ex_op2[s], ex_src2[s], exwb_result,
                              exwb_dest, exwb_wren, wb_result, wb_dest,
                              wb_wren);
      }
      const Bus b_eff = b.mux2_bus(opb, ex_imm[s], c.use_imm);

      // ALU: add/sub share the CLA (B xor is_sub, carry-in = is_sub).
      Bus alu;
      {
        NetlistBuilder::UnitScope alu_u(b, "alu");
        Bus b_add(b_eff.size());
        for (std::size_t i = 0; i < b_eff.size(); ++i) {
          b_add[i] = b.xor2(b_eff[i], c.is_sub);
        }
        const Bus sum = cla_adder(b, opa, b_add, c.is_sub).sum;
        alu = sum;
        alu = b.mux2_bus(alu, b.bitwise(CellFunc::And2, opa, b_eff), c.is_and);
        alu = b.mux2_bus(alu, b.bitwise(CellFunc::Or2, opa, b_eff), c.is_or);
        alu = b.mux2_bus(alu, b.bitwise(CellFunc::Xor2, opa, b_eff), c.is_xor);
        // Shift ops route opa through the shifter untouched by the adder.
        alu = b.mux2_bus(alu, opa, c.is_shift);
      }

      // Shifter in series with the ALU (shift-and-accumulate support).
      Bus shifted;
      {
        NetlistBuilder::UnitScope sh(b, "shifter");
        const int amt_bits = std::bit_width(static_cast<unsigned>(W)) - 1;
        Bus amt(static_cast<std::size_t>(amt_bits));
        for (int i = 0; i < amt_bits; ++i) {
          amt[i] = b.and2(b_eff[i], c.is_shift);  // amount 0 => pass-through
        }
        // Dynamic direction: reverse, right-shift, reverse back for SHL.
        const Bus fwd_in = b.mux2_bus(alu, reverse_bus(alu), c.is_shl);
        const Bus sh_r = barrel_shifter(b, fwd_in, amt, /*left=*/false);
        shifted = b.mux2_bus(sh_r, reverse_bus(sh_r), c.is_shl);
      }

      // Compare unit: checks the MSB of the ALU (subtract) result.
      Bus cmp_ext;
      {
        NetlistBuilder::UnitScope cm(b, "cmp");
        Bus z = b.const_bus(0, W);
        z[0] = b.buf(alu.back());  // sign bit => "less than"
        cmp_ext = z;
      }

      // Address computation unit for loads/stores.
      Bus agu;
      {
        NetlistBuilder::UnitScope ag(b, "agu");
        agu = cla_adder(b, opa, ex_imm[s], b.const0()).sum;
      }

      // Multiplier in parallel with the other units.
      Bus mult_ext;
      {
        NetlistBuilder::UnitScope mu(b, "mult");
        const Bus ma = slice(opa, 0, cfg.mult_width);
        const Bus mb = slice(b_eff, 0, cfg.mult_width);
        Bus prod = multiplier(b, ma, mb);
        mult_ext = extend(b, prod, W, /*sign_extend=*/false);
      }

      // Result selection.
      Bus res = shifted;
      res = b.mux2_bus(res, mult_ext, c.is_mul);
      res = b.mux2_bus(res, load_data[s], c.is_load);
      res = b.mux2_bus(res, cmp_ext, c.is_cmp);
      slot_result[s] = std::move(res);
      slot_st_addr[s] = agu;
      slot_st_data[s] = opb;
      slot_wren[s] = c.wr_en;
    }
  }

  // ---- EX/WB pipeline register (drives the pre-created back-edge wires) ----
  std::vector<Bus> ports_store_addr, ports_store_data;
  Bus ports_store_en;
  {
    NetlistBuilder::UnitScope pr(b, "pipe/ex_wb");
    b.set_stage(PipeStage::Execute);  // captures EX-stage logic
    for (int s = 0; s < S; ++s) {
      for (int i = 0; i < W; ++i) {
        b.dff_into(slot_result[s][i], exwb_result[s][i]);
      }
      for (int i = 0; i < A; ++i) {
        b.dff_into(ex_dest[s][i], exwb_dest[s][i]);
      }
      b.dff_into(slot_wren[s], exwb_wren[s]);
      // Store interface to the behavioural data memory.
      Bus st_addr = b.dff_bus(slot_st_addr[s]);
      Bus st_data = b.dff_bus(slot_st_data[s]);
      NetId st_en = b.dff(exc[s].is_store);
      b.output(st_addr);
      b.output(st_data);
      b.output(st_en);
      ports_store_addr.push_back(std::move(st_addr));
      ports_store_data.push_back(std::move(st_data));
      ports_store_en.push_back(st_en);
    }
  }

  // ---- WB retire register (second forwarding source) -----------------------
  {
    NetlistBuilder::UnitScope pr(b, "pipe/wb");
    b.set_stage(PipeStage::WriteBack);  // captures WB-stage logic
    for (int s = 0; s < S; ++s) {
      for (int i = 0; i < W; ++i) {
        b.dff_into(exwb_result[s][i], wb_result[s][i]);
      }
      for (int i = 0; i < A; ++i) {
        b.dff_into(exwb_dest[s][i], wb_dest[s][i]);
      }
      b.dff_into(exwb_wren[s], wb_wren[s]);
    }
  }

  VexPorts ports;
  ports.instr = std::move(instr);
  ports.load_data = std::move(load_data);
  ports.pc_out = std::move(pc);
  ports.store_addr = std::move(ports_store_addr);
  ports.store_data = std::move(ports_store_data);
  ports.store_en = std::move(ports_store_en);
  return ports;
}

Design make_vex_design(const Library& lib, const VexConfig& cfg,
                       const std::string& name) {
  Design design(name, lib);
  build_vex_core(design, cfg);
  buffer_high_fanout(design);
  resize_for_wireload(design);
  design.check();
  return design;
}

}  // namespace vipvt
