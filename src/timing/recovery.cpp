#include "timing/recovery.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace vipvt {

namespace {

double total_leakage_low(const Design& d) {
  double mw = 0.0;
  for (const auto& inst : d.instances()) {
    mw += d.lib().cell(inst.cell).leakage_mw[kVddLow];
  }
  return mw;
}

bool swappable(const Cell& cell) {
  return !cell.is_sequential() && !cell.is_tie() && !cell.is_level_shifter();
}

std::optional<VthClass> next_faster(VthClass v) {
  switch (v) {
    case VthClass::Uhvt: return VthClass::Hvt;
    case VthClass::Hvt: return VthClass::Svt;
    case VthClass::Svt: return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

RecoveryReport recover_power(Design& design, StaEngine& sta,
                             const RecoveryConfig& cfg) {
  const Library& lib = design.lib();
  const CharParams& cp = lib.char_params();
  RecoveryReport report;

  sta.compute_base_all_low();
  report.wns_before_ns = sta.analyze().wns;
  report.leakage_before_mw = total_leakage_low(design);

  const double clock = sta.options().clock_period_ns;
  auto target_of = [&](PipeStage stage) {
    if (cfg.target_ns >= 0.0) return cfg.target_ns;
    return cfg.stage_slack_target[static_cast<std::size_t>(stage)] * clock;
  };
  // Fractional delay gain of downgrading one Vth step at the low supply.
  auto step_gain = [&](VthClass from) {
    const auto to = next_faster(from);
    if (!to.has_value()) return 0.0;
    return 1.0 - cp.vth_class_delay_ratio(*to, cp.vdd_low) /
                     cp.vth_class_delay_ratio(from, cp.vdd_low);
  };

  // ---- phase 1: leakage-first mapping (everything to the slowest Vth) -----
  for (InstId i = 0; i < design.num_instances(); ++i) {
    Instance& inst = design.instance(i);
    const Cell& cell = lib.cell(inst.cell);
    if (!swappable(cell)) continue;
    const auto variant = lib.variant(inst.cell, VthClass::Uhvt);
    if (variant.has_value()) inst.cell = *variant;
  }
  sta.compute_base_all_low();

  // ---- phase 2: timing-driven downgrades along violating paths -------------
  // Endpoints whose target proved unreachable (their whole worst path is
  // already SVT) are blacklisted so they don't monopolize the batches.
  std::vector<char> stuck(sta.endpoints().size(), 0);
  for (int round = 0; round < cfg.max_rounds; ++round) {
    report.passes = round + 1;
    const StaResult res = sta.analyze();
    const auto& endpoints = sta.endpoints();

    // Endpoints below their stage target, worst gap first.
    std::vector<std::pair<double, std::size_t>> pending;
    for (std::size_t k = 0; k < endpoints.size(); ++k) {
      if (stuck[k]) continue;
      const double slack = res.endpoint_slack[k];
      if (!std::isfinite(slack)) continue;
      const double gap = target_of(endpoints[k].stage) - slack;
      if (gap > 1e-9) pending.push_back({gap, k});
    }
    if (pending.empty()) break;
    std::sort(pending.begin(), pending.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (static_cast<int>(pending.size()) > cfg.batch_size) {
      pending.resize(static_cast<std::size_t>(cfg.batch_size));
    }

    std::size_t changed = 0;
    std::size_t new_stuck = 0;
    // Traces read the round-start scratchpad; once any swap happened the
    // scratch is stale, and an "all-SVT path" may just reflect swaps made
    // for earlier endpoints in this batch — not unreachability.
    bool scratch_dirty = false;
    for (const auto& [gap, k] : pending) {
      // Walk the worst path, downgrading cells (largest contributors
      // first) until the estimated accumulated gain covers the gap.
      const auto path = sta.trace_from_last_analysis(k);
      std::vector<std::pair<double, InstId>> contributions;
      // Side-input slew feeders: a slow driver anywhere in the transitive
      // fanin of a path gate degrades slews on the path (graph-based STA
      // keeps the max over arcs), so path-only repair can stall.  Offer
      // the fanin cone up to fanin_depth levels at discounted weight.
      auto offer_fanin = [&](InstId root, double weight) {
        std::vector<std::pair<InstId, int>> frontier{{root, 0}};
        for (std::size_t fi = 0; fi < frontier.size(); ++fi) {
          const auto [cur, level] = frontier[fi];
          if (level >= cfg.fanin_depth) continue;
          const Instance& inst = design.instance(cur);
          const Cell& cell = lib.cell(inst.cell);
          for (std::size_t p = 0; p < inst.conns.size(); ++p) {
            if (!cell.pins[p].is_input || cell.pins[p].is_clock) continue;
            const Net& in_net = design.net(inst.conns[p]);
            if (!in_net.has_cell_driver()) continue;
            const InstId drv = in_net.driver.inst;
            const Cell& drv_cell = lib.cell(design.instance(drv).cell);
            if (swappable(drv_cell) && drv_cell.vth != VthClass::Svt) {
              contributions.push_back(
                  {weight * std::pow(cfg.fanin_discount, level + 1), drv});
            }
            // Slews restart at flops: no need to cross them.
            if (!drv_cell.is_sequential()) frontier.push_back({drv, level + 1});
          }
        }
      };
      for (const auto& step : path) {
        if (step.inst == kInvalidInst) continue;
        const Cell& cell = lib.cell(design.instance(step.inst).cell);
        if (swappable(cell) && cell.vth != VthClass::Svt) {
          contributions.push_back({step.incr_ns, step.inst});
        }
        offer_fanin(step.inst, step.incr_ns);
      }
      std::sort(contributions.begin(), contributions.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      if (contributions.empty()) {
        if (!scratch_dirty) {
          // Fresh trace, path and fanin fully SVT: genuinely unreachable.
          if (std::getenv("VIPVT_RECOVERY_DEBUG")) {
            std::fprintf(stderr, "stuck ep=%zu gap=%.3f pathlen=%zu round=%d\n",
                         k, gap, path.size(), round);
          }
          stuck[k] = 1;
          ++new_stuck;
        }
        continue;  // stale trace: retry next round
      }
      double need = gap * cfg.gain_safety;
      for (const auto& [incr, inst_id] : contributions) {
        if (need <= 0.0) break;
        Instance& inst = design.instance(inst_id);
        const Cell& cell = lib.cell(inst.cell);
        const double gain = incr * step_gain(cell.vth);
        const auto faster = next_faster(cell.vth);
        if (!faster.has_value()) continue;
        const auto variant = lib.variant(inst.cell, *faster);
        if (!variant.has_value()) continue;
        inst.cell = *variant;
        ++report.reverted;
        ++changed;
        scratch_dirty = true;
        need -= gain;
      }
    }
    if (changed == 0 && new_stuck == 0) break;  // no progress possible
    if (changed != 0) sta.compute_base_all_low();
  }

  for (InstId i = 0; i < design.num_instances(); ++i) {
    switch (lib.cell(design.instance(i).cell).vth) {
      case VthClass::Hvt: ++report.swapped_to_hvt; break;
      case VthClass::Uhvt: ++report.swapped_to_uhvt; break;
      case VthClass::Svt: break;
    }
  }

  sta.compute_base_all_low();
  report.wns_after_ns = sta.analyze().wns;
  report.leakage_after_mw = total_leakage_low(design);
  return report;
}

}  // namespace vipvt
