#pragma once
// Static timing analysis engine.
//
// Two-phase design mirroring the paper's PrimeTime/SDF flow:
//
//  1. compute_base(): full delay calculation — slew propagation in
//     topological order, NLDM table lookups per cell arc at each
//     instance's supply corner, Elmore-style wire delays from placement.
//     This produces the "annotated SDF" — a base delay per timing edge.
//
//  2. analyze(factors): fast forward propagation that scales every cell
//     arc by its instance's variation factor (Lgate/Vdd dependent) and
//     returns arrival/slack per endpoint, grouped per pipeline stage.
//     This is the inner loop of Monte-Carlo SSTA, so it allocates nothing
//     and touches each edge once.
//
// Clock is ideal (zero skew), as in the paper's single-clock VEX setup.

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "netlist/design.hpp"
#include "placement/placer.hpp"
#include "util/aligned.hpp"
#include "util/simd/kernels.hpp"

namespace vipvt {

struct StaOptions {
  double clock_period_ns = 3.9;  ///< ~256 MHz, the paper's fmax
  double default_input_slew_ns = 0.02;
  double primary_output_load_pf = 0.003;
  /// recorner_delta() falls back to a full compute_base() + propagation
  /// when the flipped domain's precomputed fan-out cone spans more than
  /// this fraction of the timing-graph nodes — checked up front, BEFORE
  /// any dirty-mark sweep, so an oversized cone costs exactly one full
  /// recompute and nothing else (DESIGN.md §12).  0 forces the full path
  /// on every flip, 1 never falls back; both produce bit-identical
  /// results — the threshold is purely a cost choice.  The sweep is
  /// branchy per cone node (epoch compares, adjacency chasing) while the
  /// full path is a straight-line pass over all edges, so the measured
  /// break-even sits well below 1: on the paper's 4-way core the delta
  /// sweep costs ~1.5x the full pass per node touched, i.e. cones past
  /// ~2/3 of the graph tie or lose (BENCH_wafer.json's
  /// level_warmup_speedup row tracks exactly this).  0.5 keeps a safety
  /// margin under that break-even across island shapes.
  double recorner_fallback_fraction = 0.5;
};

/// One timing endpoint: a flop D pin or a primary output.
struct Endpoint {
  InstId flop = kInvalidInst;     ///< invalid => primary output
  NetId net = kInvalidNet;        ///< net feeding the endpoint
  PipeStage stage = PipeStage::Other;
  std::uint32_t node = 0;         ///< internal graph node (for backtrace)
};

struct StaResult {
  double clock_period_ns = 0.0;
  double wns = std::numeric_limits<double>::infinity();  ///< worst slack
  double tns = 0.0;                                      ///< total negative
  /// Minimum achievable clock period: max over constrained endpoints of
  /// (arrival + setup), i.e. clock_period_ns - slack.  Computed in the
  /// same endpoint pass that produces the slacks, so consumers
  /// (StaEngine::min_period, the Monte-Carlo speed-bin metric) never
  /// rescan the endpoint list.
  double min_period_ns = 0.0;
  std::array<double, kNumPipeStages> stage_wns{};        ///< per stage
  std::vector<double> endpoint_slack;  ///< aligned with StaEngine::endpoints()

  double stage_worst(PipeStage s) const {
    return stage_wns[static_cast<std::size_t>(s)];
  }
};

/// A traced critical path element.
struct PathStep {
  InstId inst = kInvalidInst;  ///< invalid for port nodes
  std::string pin_name;
  double arrival_ns = 0.0;
  double incr_ns = 0.0;
};

class StaEngine {
 public:
  /// The design must be fully placed (wire delays come from net HPWL).
  StaEngine(const Design& design, const StaOptions& opts);

  /// The engine is cheaply copyable, and copying is the supported way to
  /// run analyses on multiple threads: analyze() is const but writes the
  /// per-engine scalar scratchpad (arrival_ / pred_edge_), the batch
  /// entry points write the SoA scratch (arrival_soa_ / factor_soa_ /
  /// delay_soa_), compute_base() / restore_bases() rewrite the base
  /// delays and slews, and recorner_delta() additionally mutates the
  /// lazily built re-corner index and the cached nominal arrivals — so
  /// concurrent use of ONE engine races on every entry point, const or
  /// not.  A copy carries the source's base delays, snapshots-compatible
  /// graph order, and options (no recomputation) and its own scratch.
  /// The referenced Design must outlive every copy and stay unmodified
  /// while copies are in flight.
  StaEngine(const StaEngine&) = default;
  StaEngine& operator=(const StaEngine&) = default;
  StaEngine(StaEngine&&) = default;
  StaEngine& operator=(StaEngine&&) = default;

  const Design& design() const { return *design_; }
  const StaOptions& options() const { return opts_; }
  void set_clock_period(double ns) { opts_.clock_period_ns = ns; }
  /// Adjusts the recorner_delta() full-recompute threshold (see
  /// StaOptions::recorner_fallback_fraction).  Results are bit-identical
  /// at any setting; tests use 0 / 1 to force each path.
  void set_recorner_fallback_fraction(double f) {
    opts_.recorner_fallback_fraction = f;
  }

  /// Recomputes base (nominal) delays with the given supply corner per
  /// voltage domain (index = DomainId, value = VddCorner).  Domains not
  /// covered default to the low corner.
  void compute_base(std::span<const int> domain_corner);
  /// Convenience: everything at the low corner.
  void compute_base_all_low() { compute_base({}); }

  /// Supply corner assigned to an instance in the last compute_base().
  int inst_corner(InstId id) const { return inst_corner_.at(id); }

  /// Telemetry from the last recorner_delta() call (DESIGN.md §12).
  struct RecornerStats {
    bool noop = false;           ///< no instance actually changed corner
    bool full_fallback = false;  ///< cone exceeded the fraction threshold
    std::size_t instances_flipped = 0;   ///< instances whose corner changed
    std::size_t cone_nodes = 0;          ///< precomputed cone of the domain
    std::size_t slew_nodes_visited = 0;  ///< slew/delay pass recomputes
    std::size_t arrival_nodes_visited = 0;  ///< arrival pass recomputes
    std::size_t delay_edges_changed = 0;    ///< edge bases rewritten
  };

  /// Incremental re-cornering: moves voltage domain `domain` to supply
  /// `corner` and returns the nominal analysis, BIT-IDENTICAL (result
  /// fields, edge/launch bases, slews, inst corners — i.e. the whole
  /// BaseSnapshot) to calling compute_base() with the matching per-domain
  /// corner vector followed by analyze({}).  Cost scales with the flipped
  /// domain's fan-out cone, not the design: the per-domain instance sets
  /// and topologically-ordered cones are precomputed once per domain
  /// assignment, only instances whose corner actually changed get fresh
  /// NLDM lookups, and slew/arrival deltas propagate through the cone
  /// with early termination as soon as a recomputed value is bitwise
  /// unchanged.  Cones larger than recorner_fallback_fraction of the
  /// graph fall back to the full path (same results, different cost).
  /// See DESIGN.md §12 for the delta-propagation contract and
  /// README.md "Which analyze entry point do I want?" for when to prefer
  /// this over analyze()/analyze_batch_bases().
  ///
  /// Precondition: per-domain corners are consistent, i.e. the engine
  /// state came from compute_base()/restore_bases()/recorner_delta()
  /// under the CURRENT Design domain assignment.  (Reassigning domains
  /// rebuilds the index automatically on the next call, but the caller
  /// must then re-run compute_base() once before going incremental.)
  /// A domain with no instances, or a flip to the corner the domain
  /// already sits at, is a no-op that just re-extracts the nominal
  /// result.  Throws std::invalid_argument for an out-of-range corner.
  StaResult recorner_delta(DomainId domain, int corner);
  const RecornerStats& recorner_stats() const { return recorner_stats_; }

  /// Fast annotated analysis.  `inst_factor` scales every cell arc of
  /// instance i by inst_factor[i]; pass {} for the nominal (all-ones) run.
  StaResult analyze(std::span<const double> inst_factor = {}) const;

  /// Batched annotated analysis: results[b] is bit-identical to
  /// analyze(inst_factor[b]) for every lane b (an empty lane vector means
  /// nominal).  Arrival times are laid out structure-of-arrays —
  /// arrival[node][lane] — so one pass over the timing graph propagates
  /// all lanes: edge metadata is fetched once per edge instead of once
  /// per edge per sample, and the per-lane inner loop is a contiguous
  /// vectorizable max-plus update.  This is the Monte-Carlo SSTA hot
  /// kernel.  No-trace mode: pred-edge bookkeeping is skipped entirely,
  /// so trace_from_last_analysis() must not be used after this call.
  void analyze_batch(std::span<const std::vector<double>> inst_factor,
                     std::span<StaResult> results) const;

  /// Batched analysis over factors already laid out structure-of-arrays
  /// (factor_soa[i * width + b], one row per instance) — the lane handoff
  /// from VariationModel::draw_factors_batch, which writes this layout
  /// directly so no per-batch transpose runs between draw and
  /// propagation.  results[b] is bit-identical to analyze() on lane b's
  /// factors (same kernel as analyze_batch, minus the packing).
  void analyze_batch_soa(std::span<const double> factor_soa, std::size_t width,
                         std::span<StaResult> results) const;

  /// Frozen output of one compute_base(): per-edge and per-launch base
  /// delays, the propagated per-node slews (so recorner_delta() can
  /// resume incrementally from a restored snapshot), plus the
  /// per-instance corner map.  restore_bases() writes a snapshot back
  /// bit-identically at memcpy cost — the compensation controller uses
  /// this to flip between island escalation levels without re-running
  /// delay calculation.  A snapshot is tied to this engine's graph (edge
  /// order); copies of the same engine may exchange snapshots.
  struct BaseSnapshot {
    std::vector<float> edge_base;
    std::vector<float> launch_base;
    std::vector<float> slew;
    std::vector<int> inst_corner;
  };
  BaseSnapshot snapshot_bases() const;
  void restore_bases(const BaseSnapshot& snap);

  /// Batched analysis where every lane has its OWN base delays: lane b
  /// evaluates bases[b] (a snapshot of some compute_base()) scaled by
  /// inst_factor[b] (empty = nominal).  results[b] is bit-identical to
  /// restore_bases(*bases[b]) followed by analyze(inst_factor[b]).  This
  /// is how all island escalation levels of one die run as one batch:
  /// same graph, same factors, different corner assignments per lane.
  void analyze_batch_bases(std::span<const BaseSnapshot* const> bases,
                           std::span<const std::vector<double>> inst_factor,
                           std::span<StaResult> results) const;

  const std::vector<Endpoint>& endpoints() const { return endpoints_; }
  /// Setup requirement per endpoint, aligned with endpoints().  Slack at
  /// endpoint k is clock_period - endpoint_setups()[k] - arrival.
  std::span<const double> endpoint_setups() const { return endpoint_setup_; }

  /// Read-only structural view of the timing graph for external
  /// propagation engines (the canonical SSTA of DESIGN.md §16): visits
  /// every edge in the exact topological order analyze() relaxes them,
  /// calling fn(from_node, to_node, inst, base_delay_ns).  inst ==
  /// kInvalidInst marks a wire/port edge, never scaled by variation
  /// factors.  Base delays reflect the last compute_base() /
  /// restore_bases() / recorner_delta(), same as analyze().
  template <class F>
  void for_each_graph_edge(F&& fn) const {
    for (const Edge& e : edges_) {
      fn(e.from, e.to, e.inst, static_cast<double>(e.base_delay));
    }
  }

  /// Launch view, three aligned spans: launch graph node, base launch
  /// delay (flop clk->q, or source delay for a primary input), and the
  /// launching flop — kInvalidInst for primary inputs, whose launch
  /// delay is NOT scaled by variation factors (same rule analyze()
  /// applies).
  std::span<const std::uint32_t> launch_nodes() const { return launch_nodes_; }
  std::span<const float> launch_bases() const { return launch_base_; }
  std::span<const InstId> launch_insts() const { return launch_inst_; }

  /// Critical path to the given endpoint under the provided factors
  /// (runs a fresh analysis).
  std::vector<PathStep> trace_path(std::size_t endpoint_index,
                                   std::span<const double> inst_factor = {}) const;

  /// Critical path from the scratchpad of the most recent analyze() /
  /// instance_slack() call — no re-analysis; cheap enough for batched
  /// repair loops.  Increments reflect that call's factors.
  std::vector<PathStep> trace_from_last_analysis(
      std::size_t endpoint_index) const;

  /// Minimum achievable clock period under the given factors (max
  /// endpoint arrival + setup).
  double min_period(std::span<const double> inst_factor = {}) const;

  /// Per-instance worst slack: min over the instance's pins of
  /// (required - arrival).  Instances on no constrained path report
  /// +infinity.  Used by the power-recovery (dual-Vth) pass.
  std::vector<double> instance_slack(
      std::span<const double> inst_factor = {}) const;

  /// Worst (max) nominal cell-arc base delay per instance, from the last
  /// compute_base(); sequential cells report their clk->q launch delay.
  std::vector<double> instance_arc_delay() const;

  /// Visit every cell timing arc with its current base delay: callback
  /// (inst, from_pin, to_pin, delay_ns).  Flop clk->q launch arcs are
  /// included.  Used by the SDF writer.
  void for_each_cell_arc(
      const std::function<void(InstId, std::uint16_t, std::uint16_t, double)>&
          fn) const;

  std::size_t num_nodes() const { return node_count_; }
  std::size_t num_edges() const { return edges_.size(); }

 private:
  /// One timing edge in relaxation form.  An alias for the SIMD layer's
  /// POD (same fields: from/to node ids, owning inst or kInvalidInst,
  /// float base delay) so edges_ feeds the runtime-dispatched relax
  /// kernels (DESIGN.md §17) without conversion.  The batched relaxation
  /// hot loops themselves live in util/simd/kernels_body.hpp; every
  /// dispatch target is per-lane bit-identical to the scalar lane.
  using Edge = simd::RelaxEdge;

  void build_graph();
  double wire_length(NetId net) const;

  /// Shared tail of analyze_batch / analyze_batch_soa: launch
  /// initialization, relaxation dispatch and endpoint extraction over
  /// pre-packed SoA factors.
  void analyze_batch_core(const double* factor_soa, std::size_t width,
                          std::span<StaResult> results) const;

  /// Per-lane endpoint extraction from arrival_soa_ (identical
  /// arithmetic and endpoint order to the scalar path).
  void extract_batch_results(std::size_t width,
                             std::span<StaResult> results) const;

  /// Endpoint extraction from a full per-node arrival array — the shared
  /// tail of analyze() and recorner_delta(), so both produce the result
  /// through the exact same arithmetic in the exact same endpoint order.
  StaResult extract_scalar_result(std::span<const double> arrival) const;

  /// (Re)builds the re-corner index: CSR in/out adjacency over the
  /// topologically sorted edge list, per-domain instance sets and
  /// topo-ordered fan-out cones.  Revalidated against the Design's
  /// current domain assignment on every recorner_delta() call (the
  /// island generator reassigns Instance::domain after construction).
  void ensure_recorner_index();

  /// Full-cost re-corner (compute_base at the synthesized per-domain
  /// corner vector + full nominal propagation); the fallback path.
  StaResult recorner_full(DomainId domain, int corner);

  /// Full nominal arrival propagation into nominal_arrival_ — identical
  /// relaxation order and arithmetic to analyze({}).
  void propagate_nominal_full();

  const Design* design_;
  StaOptions opts_;

  // Graph: one node per instance pin plus one per primary port net.
  std::vector<std::uint32_t> pin_offset_;   // per instance
  std::vector<std::uint32_t> port_node_;    // per net (only ports valid)
  std::uint32_t node_count_ = 0;

  std::vector<Edge> edges_;                 // sorted topologically
  std::vector<std::uint32_t> launch_nodes_; // flop Q outputs & PIs
  std::vector<float> launch_base_;          // base launch delay (clk->q)
  std::vector<InstId> launch_inst_;         // flop for clk->q scaling
  std::vector<Endpoint> endpoints_;
  std::vector<double> endpoint_setup_;
  std::vector<int> inst_corner_;
  std::vector<float> net_load_;  // pin caps + wire cap per net [pF]
  std::vector<float> slew_;      // per-node propagated slew (compute_base)

  // Re-corner index (ensure_recorner_index; DESIGN.md §12).  The graph
  // part is built once; the domain part is rebuilt whenever the Design's
  // domain assignment changes.
  static constexpr std::uint32_t kNoLaunch = 0xffffffffu;
  bool recorner_graph_built_ = false;
  std::vector<std::uint32_t> topo_rank_;      // per node (build_graph order)
  std::vector<std::uint32_t> in_head_, in_adj_;    // edge idx by e.to
  std::vector<std::uint32_t> out_head_, out_adj_;  // edge idx by e.from
  std::vector<std::uint32_t> launch_of_node_;      // launch idx or kNoLaunch
  std::vector<DomainId> inst_domain_;              // cached vs the Design
  std::vector<std::vector<InstId>> domain_insts_;
  std::vector<std::vector<std::uint32_t>> domain_cone_;  // topo-sorted
  // Epoch-stamped dirty marks (cleared O(1) per call, not O(V)).
  std::vector<std::uint32_t> slew_mark_, arr_mark_;
  std::uint32_t mark_epoch_ = 0;
  // Cached nominal arrivals (analyze({}) equivalent) that the delta pass
  // patches in place; invalidated by compute_base()/restore_bases().
  std::vector<double> nominal_arrival_;
  bool nominal_valid_ = false;
  RecornerStats recorner_stats_;

  // Scratch reused across analyze() calls (sized once).
  mutable std::vector<double> arrival_;
  mutable std::vector<std::int32_t> pred_edge_;
  // Batch scratch (SoA lanes), grown on demand by analyze_batch().
  // 64-byte aligned so the dispatch kernels' wide loads never split a
  // cache line (util/aligned.hpp) — alignment changes no bits.
  mutable AlignedVec<double> arrival_soa_;  // node_count_ * batch
  mutable AlignedVec<double> factor_soa_;   // num_instances * batch
  mutable AlignedVec<double> delay_soa_;    // num_edges * batch (multi-base)
};

}  // namespace vipvt
