#include "timing/sta.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <type_traits>

#include "util/simd/dispatch.hpp"

namespace vipvt {

// Edge aliases simd::RelaxEdge; the graph builder relies on the sentinel
// matching the kernels' fixed-delay sentinel.
static_assert(kInvalidInst == simd::kInvalidRelaxInst);
static_assert(std::is_same_v<InstId, std::uint32_t>);

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// The delta pass decides "changed" on bit patterns, not operator==:
// +0.0 == -0.0 would stop propagation while a from-scratch recompute
// stores the other zero, breaking the byte-identical-snapshot contract.
inline bool bits_differ(float a, float b) {
  return std::bit_cast<std::uint32_t>(a) != std::bit_cast<std::uint32_t>(b);
}
inline bool bits_differ(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) != std::bit_cast<std::uint64_t>(b);
}
}  // namespace

StaEngine::StaEngine(const Design& design, const StaOptions& opts)
    : design_(&design), opts_(opts) {
  build_graph();
  compute_base_all_low();
}

double StaEngine::wire_length(NetId net) const {
  return net_hpwl(*design_, net);
}

void StaEngine::build_graph() {
  const Design& d = *design_;
  const WireParams& wp = d.lib().wire();

  // ---- node numbering ------------------------------------------------------
  pin_offset_.resize(d.num_instances());
  std::uint32_t next = 0;
  for (InstId i = 0; i < d.num_instances(); ++i) {
    pin_offset_[i] = next;
    next += static_cast<std::uint32_t>(d.cell_of(i).pins.size());
  }
  port_node_.assign(d.num_nets(), 0);
  for (NetId n = 0; n < d.num_nets(); ++n) {
    const Net& net = d.net(n);
    if (net.is_primary_input || net.is_primary_output) {
      port_node_[n] = next++;
    }
  }
  node_count_ = next;

  auto pin_node = [&](InstId inst, std::uint16_t pin) {
    return pin_offset_[inst] + pin;
  };

  // ---- per-net loads & parasitics (corner-independent) ----------------------
  net_load_.assign(d.num_nets(), 0.0f);
  std::vector<float> net_rw(d.num_nets(), 0.0f);
  std::vector<float> net_cw(d.num_nets(), 0.0f);
  for (NetId n = 0; n < d.num_nets(); ++n) {
    const Net& net = d.net(n);
    if (net.is_clock) continue;
    const double len = wire_length(n);
    net_rw[n] = static_cast<float>(wp.resistance(len));
    net_cw[n] = static_cast<float>(wp.capacitance(len));
    double load = net_cw[n];
    for (const auto& sink : net.sinks) {
      load += d.cell_of(sink.inst).pins[sink.pin].cap_pf;
    }
    if (net.is_primary_output) load += opts_.primary_output_load_pf;
    net_load_[n] = static_cast<float>(load);
  }

  // ---- edges ---------------------------------------------------------------
  edges_.clear();
  for (InstId i = 0; i < d.num_instances(); ++i) {
    const Cell& cell = d.cell_of(i);
    if (cell.is_sequential()) continue;  // clk->q handled as launch
    for (const auto& arc : cell.arcs) {
      Edge e;
      e.from = pin_node(i, arc.from_pin);
      e.to = pin_node(i, arc.to_pin);
      e.inst = i;
      edges_.push_back(e);
    }
  }
  for (NetId n = 0; n < d.num_nets(); ++n) {
    const Net& net = d.net(n);
    if (net.is_clock) continue;  // ideal clock
    std::uint32_t src;
    if (net.has_cell_driver()) {
      src = pin_node(net.driver.inst, net.driver.pin);
    } else if (net.is_primary_input) {
      src = port_node_[n];
    } else {
      continue;  // dangling
    }
    for (const auto& sink : net.sinks) {
      Edge e;
      e.from = src;
      e.to = pin_node(sink.inst, sink.pin);
      const double sink_cap = d.cell_of(sink.inst).pins[sink.pin].cap_pf;
      e.base_delay =
          static_cast<float>(net_rw[n] * (0.5 * net_cw[n] + sink_cap));
      edges_.push_back(e);
    }
    if (net.is_primary_output && net.has_cell_driver()) {
      Edge e;
      e.from = src;
      e.to = port_node_[n];
      e.base_delay = static_cast<float>(
          net_rw[n] * (0.5 * net_cw[n] + opts_.primary_output_load_pf));
      edges_.push_back(e);
    }
  }

  // ---- topological ordering (Kahn over nodes) -------------------------------
  std::vector<std::uint32_t> indeg(node_count_, 0);
  for (const auto& e : edges_) ++indeg[e.to];
  std::vector<std::uint32_t> head(node_count_ + 1, 0);
  for (const auto& e : edges_) ++head[e.from + 1];
  for (std::size_t i = 1; i <= node_count_; ++i) head[i] += head[i - 1];
  std::vector<std::uint32_t> adj(edges_.size());
  {
    std::vector<std::uint32_t> cursor(head.begin(), head.end() - 1);
    for (std::uint32_t ei = 0; ei < edges_.size(); ++ei) {
      adj[cursor[edges_[ei].from]++] = ei;
    }
  }
  std::vector<std::uint32_t> rank(node_count_, 0);
  std::vector<std::uint32_t> queue;
  queue.reserve(node_count_);
  for (std::uint32_t v = 0; v < node_count_; ++v) {
    if (indeg[v] == 0) queue.push_back(v);
  }
  std::uint32_t processed = 0;
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const std::uint32_t u = queue[qi];
    rank[u] = processed++;
    for (std::uint32_t ai = head[u]; ai < head[u + 1]; ++ai) {
      const Edge& e = edges_[adj[ai]];
      if (--indeg[e.to] == 0) queue.push_back(e.to);
    }
  }
  if (processed != node_count_) {
    throw std::runtime_error("StaEngine: combinational loop detected");
  }
  std::sort(edges_.begin(), edges_.end(), [&](const Edge& a, const Edge& b) {
    return rank[a.from] < rank[b.from];
  });
  topo_rank_ = std::move(rank);  // kept for the re-corner cone ordering
  recorner_graph_built_ = false;
  inst_domain_.clear();

  // ---- launch nodes & endpoints ---------------------------------------------
  launch_nodes_.clear();
  launch_inst_.clear();
  endpoints_.clear();
  endpoint_setup_.clear();
  for (InstId i = 0; i < d.num_instances(); ++i) {
    const Cell& cell = d.cell_of(i);
    if (!cell.is_sequential()) continue;
    launch_nodes_.push_back(pin_node(i, cell.output_pin()));
    launch_inst_.push_back(i);
    // D pin is pin 0 by library construction.
    Endpoint ep;
    ep.flop = i;
    ep.net = d.instance(i).conns[0];
    ep.stage = d.instance(i).stage;
    ep.node = pin_node(i, 0);
    endpoints_.push_back(ep);
    endpoint_setup_.push_back(cell.setup_ns);
  }
  for (NetId n : d.primary_inputs()) {
    if (d.net(n).is_clock) continue;
    launch_nodes_.push_back(port_node_[n]);
    launch_inst_.push_back(kInvalidInst);
  }
  for (NetId n : d.primary_outputs()) {
    const Net& net = d.net(n);
    Endpoint ep;
    ep.flop = kInvalidInst;
    ep.net = n;
    ep.stage = net.has_cell_driver() ? d.instance(net.driver.inst).stage
                                     : PipeStage::Other;
    ep.node = port_node_[n];
    endpoints_.push_back(ep);
    endpoint_setup_.push_back(0.0);
  }
  launch_base_.assign(launch_nodes_.size(), 0.0f);

  arrival_.assign(node_count_, kNegInf);
  pred_edge_.assign(node_count_, -1);
  inst_corner_.assign(d.num_instances(), kVddLow);
  slew_.assign(node_count_, 0.0f);
  nominal_arrival_.assign(node_count_, kNegInf);
  nominal_valid_ = false;
}

void StaEngine::compute_base(std::span<const int> domain_corner) {
  const Design& d = *design_;

  for (InstId i = 0; i < d.num_instances(); ++i) {
    const DomainId dom = d.instance(i).domain;
    inst_corner_[i] = dom < domain_corner.size() ? domain_corner[dom] : kVddLow;
  }

  // Slew propagation + cell-arc base delays, in topological edge order.
  // Only primary inputs start at the default slew; internal nodes take
  // the max of their drivers' output slews.  Slews live in a member so
  // recorner_delta() can patch them incrementally afterwards.
  slew_.assign(node_count_, 0.0f);
  auto& slew = slew_;
  for (NetId n : design_->primary_inputs()) {
    if (design_->net(n).is_clock) continue;
    slew[port_node_[n]] = static_cast<float>(opts_.default_input_slew_ns);
  }

  for (std::size_t li = 0; li < launch_nodes_.size(); ++li) {
    const InstId i = launch_inst_[li];
    if (i == kInvalidInst) {
      launch_base_[li] = 0.0f;
      continue;
    }
    const Cell& cell = d.cell_of(i);
    const int corner = inst_corner_[i];
    const NetId qnet = d.instance(i).conns[cell.output_pin()];
    const auto& arc = cell.arcs.at(0);  // clk->q, the flop's only arc
    const double in_slew = opts_.default_input_slew_ns;
    const double load = net_load_[qnet];
    launch_base_[li] =
        static_cast<float>(arc.corner[corner].delay.lookup(in_slew, load));
    slew[launch_nodes_[li]] =
        static_cast<float>(arc.corner[corner].out_slew.lookup(in_slew, load));
  }

  for (auto& e : edges_) {
    if (e.inst != kInvalidInst) {
      const Cell& cell = d.cell_of(e.inst);
      const int corner = inst_corner_[e.inst];
      const auto from_pin =
          static_cast<std::uint16_t>(e.from - pin_offset_[e.inst]);
      const TimingArc* arc = cell.arc_from(from_pin);
      if (arc == nullptr) throw std::logic_error("compute_base: missing arc");
      const NetId out_net = d.instance(e.inst).conns[arc->to_pin];
      const double in_slew = slew[e.from];
      const double load = net_load_[out_net];
      e.base_delay =
          static_cast<float>(arc->corner[corner].delay.lookup(in_slew, load));
      const auto os = static_cast<float>(
          arc->corner[corner].out_slew.lookup(in_slew, load));
      slew[e.to] = std::max(slew[e.to], os);
    } else {
      // Net edge: delay fixed at build time; degrade slew downstream.
      slew[e.to] = std::max(
          slew[e.to], static_cast<float>(slew[e.from] + 2.0 * e.base_delay));
    }
  }
  nominal_valid_ = false;  // cached nominal arrivals no longer match
}

StaResult StaEngine::analyze(std::span<const double> inst_factor) const {
  std::fill(arrival_.begin(), arrival_.end(), kNegInf);
  std::fill(pred_edge_.begin(), pred_edge_.end(), -1);
  auto factor = [&](InstId i) {
    return inst_factor.empty() ? 1.0 : inst_factor[i];
  };

  for (std::size_t li = 0; li < launch_nodes_.size(); ++li) {
    const InstId i = launch_inst_[li];
    const double f = i == kInvalidInst ? 1.0 : factor(i);
    arrival_[launch_nodes_[li]] = std::max(
        arrival_[launch_nodes_[li]], static_cast<double>(launch_base_[li]) * f);
  }

  for (std::size_t ei = 0; ei < edges_.size(); ++ei) {
    const Edge& e = edges_[ei];
    const double a = arrival_[e.from];
    if (a == kNegInf) continue;
    const double f = e.inst == kInvalidInst ? 1.0 : factor(e.inst);
    const double cand = a + static_cast<double>(e.base_delay) * f;
    if (cand > arrival_[e.to]) {
      arrival_[e.to] = cand;
      pred_edge_[e.to] = static_cast<std::int32_t>(ei);
    }
  }

  return extract_scalar_result(arrival_);
}

StaResult StaEngine::extract_scalar_result(
    std::span<const double> arrival) const {
  StaResult res;
  res.clock_period_ns = opts_.clock_period_ns;
  res.stage_wns.fill(std::numeric_limits<double>::infinity());
  res.endpoint_slack.resize(endpoints_.size());
  for (std::size_t k = 0; k < endpoints_.size(); ++k) {
    const double a = arrival[endpoints_[k].node];
    const double slack = a == kNegInf
                             ? std::numeric_limits<double>::infinity()
                             : opts_.clock_period_ns - endpoint_setup_[k] - a;
    res.endpoint_slack[k] = slack;
    res.wns = std::min(res.wns, slack);
    if (slack < 0.0 && std::isfinite(slack)) res.tns += slack;
    if (std::isfinite(slack)) {
      res.min_period_ns =
          std::max(res.min_period_ns, opts_.clock_period_ns - slack);
    }
    auto& sw = res.stage_wns[static_cast<std::size_t>(endpoints_[k].stage)];
    sw = std::min(sw, slack);
  }
  return res;
}

void StaEngine::analyze_batch(std::span<const std::vector<double>> inst_factor,
                              std::span<StaResult> results) const {
  const std::size_t width = inst_factor.size();
  if (results.size() != width) {
    throw std::invalid_argument("analyze_batch: factor/result size mismatch");
  }
  if (width == 0) return;
  const std::size_t num_inst = design_->num_instances();

  // Pack per-sample factor vectors into SoA lanes: factor_soa_[i*W + b].
  // An empty lane stays at the nominal 1.0 (== analyze({})).  Instance-
  // major transpose order: each i writes one contiguous W-row while
  // reading one element from each lane — W sequential read streams
  // instead of W strided write passes over the whole array.
  const double* lane_ptr[64];
  std::size_t lanes_capped = std::min<std::size_t>(width, 64);
  for (std::size_t b = 0; b < width; ++b) {
    const std::vector<double>& f = inst_factor[b];
    if (!f.empty() && f.size() < num_inst) {
      throw std::invalid_argument("analyze_batch: short factor vector");
    }
    if (b < lanes_capped) lane_ptr[b] = f.empty() ? nullptr : f.data();
  }
  factor_soa_.resize(num_inst * width);
  if (width <= lanes_capped) {
    for (std::size_t i = 0; i < num_inst; ++i) {
      double* row = &factor_soa_[i * width];
      for (std::size_t b = 0; b < width; ++b) {
        row[b] = lane_ptr[b] == nullptr ? 1.0 : lane_ptr[b][i];
      }
    }
  } else {  // very wide batches: the simple lane-major fallback
    std::fill(factor_soa_.begin(), factor_soa_.end(), 1.0);
    for (std::size_t b = 0; b < width; ++b) {
      const std::vector<double>& f = inst_factor[b];
      if (f.empty()) continue;
      for (std::size_t i = 0; i < num_inst; ++i) {
        factor_soa_[i * width + b] = f[i];
      }
    }
  }
  analyze_batch_core(factor_soa_.data(), width, results);
}

void StaEngine::analyze_batch_soa(std::span<const double> factor_soa,
                                  std::size_t width,
                                  std::span<StaResult> results) const {
  if (results.size() != width) {
    throw std::invalid_argument(
        "analyze_batch_soa: factor/result size mismatch");
  }
  if (width == 0) return;
  if (factor_soa.size() < design_->num_instances() * width) {
    throw std::invalid_argument("analyze_batch_soa: short factor buffer");
  }
  analyze_batch_core(factor_soa.data(), width, results);
}

void StaEngine::analyze_batch_core(const double* factor_soa, std::size_t width,
                                   std::span<StaResult> results) const {
  arrival_soa_.assign(static_cast<std::size_t>(node_count_) * width, kNegInf);

  for (std::size_t li = 0; li < launch_nodes_.size(); ++li) {
    const InstId i = launch_inst_[li];
    const double base = static_cast<double>(launch_base_[li]);
    double* a = &arrival_soa_[static_cast<std::size_t>(launch_nodes_[li]) * width];
    if (i == kInvalidInst) {
      for (std::size_t b = 0; b < width; ++b) a[b] = std::max(a[b], base);
    } else {
      const double* f = &factor_soa[static_cast<std::size_t>(i) * width];
      for (std::size_t b = 0; b < width; ++b) {
        a[b] = std::max(a[b], base * f[b]);
      }
    }
  }

  // One graph traversal for the whole batch.  No pred-edge bookkeeping
  // in batch mode.  The relaxation sweep runs through the runtime-
  // dispatched SIMD kernel (DESIGN.md §17); every dispatch target is
  // per-lane bit-identical to the scalar lane, so the arch choice is
  // invisible in the results.
  simd::active_kernels().relax_edges(edges_.data(), edges_.size(), factor_soa,
                                     arrival_soa_.data(), width);

  extract_batch_results(width, results);
}

void StaEngine::extract_batch_results(std::size_t width,
                                      std::span<StaResult> results) const {
  // Per-lane endpoint extraction, identical arithmetic (and endpoint
  // order) to the scalar path.
  for (std::size_t b = 0; b < width; ++b) {
    // Reset every StaResult field explicitly (rather than assigning a
    // fresh StaResult{}) so a reused results[b] keeps its
    // endpoint_slack allocation across batches.
    StaResult& res = results[b];
    res.clock_period_ns = opts_.clock_period_ns;
    res.wns = std::numeric_limits<double>::infinity();
    res.tns = 0.0;
    res.min_period_ns = 0.0;
    res.stage_wns.fill(std::numeric_limits<double>::infinity());
    res.endpoint_slack.resize(endpoints_.size());
    for (std::size_t k = 0; k < endpoints_.size(); ++k) {
      const double a =
          arrival_soa_[static_cast<std::size_t>(endpoints_[k].node) * width + b];
      const double slack = a == kNegInf
                               ? std::numeric_limits<double>::infinity()
                               : opts_.clock_period_ns - endpoint_setup_[k] - a;
      res.endpoint_slack[k] = slack;
      res.wns = std::min(res.wns, slack);
      if (slack < 0.0 && std::isfinite(slack)) res.tns += slack;
      if (std::isfinite(slack)) {
        res.min_period_ns =
            std::max(res.min_period_ns, opts_.clock_period_ns - slack);
      }
      auto& sw = res.stage_wns[static_cast<std::size_t>(endpoints_[k].stage)];
      sw = std::min(sw, slack);
    }
  }
}

StaEngine::BaseSnapshot StaEngine::snapshot_bases() const {
  BaseSnapshot snap;
  snap.edge_base.resize(edges_.size());
  for (std::size_t ei = 0; ei < edges_.size(); ++ei) {
    snap.edge_base[ei] = edges_[ei].base_delay;
  }
  snap.launch_base = launch_base_;
  snap.slew = slew_;
  snap.inst_corner = inst_corner_;
  return snap;
}

void StaEngine::restore_bases(const BaseSnapshot& snap) {
  if (snap.edge_base.size() != edges_.size() ||
      snap.launch_base.size() != launch_base_.size() ||
      snap.slew.size() != slew_.size() ||
      snap.inst_corner.size() != inst_corner_.size()) {
    throw std::invalid_argument("restore_bases: snapshot/graph mismatch");
  }
  for (std::size_t ei = 0; ei < edges_.size(); ++ei) {
    edges_[ei].base_delay = snap.edge_base[ei];
  }
  launch_base_ = snap.launch_base;
  slew_ = snap.slew;
  inst_corner_ = snap.inst_corner;
  nominal_valid_ = false;  // restored bases invalidate the arrival cache
}

void StaEngine::ensure_recorner_index() {
  const Design& d = *design_;

  // Graph-shape part: CSR adjacency in both directions over the sorted
  // edge list, plus the node->launch map.  Domain-independent, built once.
  if (!recorner_graph_built_) {
    in_head_.assign(node_count_ + 1, 0);
    out_head_.assign(node_count_ + 1, 0);
    for (const Edge& e : edges_) {
      ++in_head_[e.to + 1];
      ++out_head_[e.from + 1];
    }
    for (std::size_t v = 1; v <= node_count_; ++v) {
      in_head_[v] += in_head_[v - 1];
      out_head_[v] += out_head_[v - 1];
    }
    in_adj_.resize(edges_.size());
    out_adj_.resize(edges_.size());
    {
      std::vector<std::uint32_t> in_cur(in_head_.begin(), in_head_.end() - 1);
      std::vector<std::uint32_t> out_cur(out_head_.begin(),
                                         out_head_.end() - 1);
      for (std::uint32_t ei = 0; ei < edges_.size(); ++ei) {
        in_adj_[in_cur[edges_[ei].to]++] = ei;
        out_adj_[out_cur[edges_[ei].from]++] = ei;
      }
    }
    launch_of_node_.assign(node_count_, kNoLaunch);
    for (std::uint32_t li = 0; li < launch_nodes_.size(); ++li) {
      launch_of_node_[launch_nodes_[li]] = li;
    }
    slew_mark_.assign(node_count_, 0);
    arr_mark_.assign(node_count_, 0);
    mark_epoch_ = 0;
    recorner_graph_built_ = true;
  }

  // Domain part: the island generator reassigns Instance::domain AFTER
  // engine construction, so revalidate the cached map on every call and
  // rebuild the per-domain instance sets + fan-out cones on mismatch.
  bool domains_current = inst_domain_.size() == d.num_instances();
  if (domains_current) {
    for (InstId i = 0; i < d.num_instances(); ++i) {
      if (inst_domain_[i] != d.instance(i).domain) {
        domains_current = false;
        break;
      }
    }
  }
  if (domains_current) return;

  inst_domain_.resize(d.num_instances());
  std::size_t num_domains = 1;
  for (InstId i = 0; i < d.num_instances(); ++i) {
    inst_domain_[i] = d.instance(i).domain;
    num_domains = std::max(num_domains,
                           static_cast<std::size_t>(inst_domain_[i]) + 1);
  }
  domain_insts_.assign(num_domains, {});
  for (InstId i = 0; i < d.num_instances(); ++i) {
    domain_insts_[inst_domain_[i]].push_back(i);
  }

  // Fan-out cone per domain: forward closure from every member
  // instance's output node.  Flop D pins have no out-edges (clk->q is a
  // launch arc, not a graph edge), so cones stop at register boundaries.
  domain_cone_.assign(num_domains, {});
  std::vector<std::uint8_t> in_cone(node_count_, 0);
  std::vector<std::uint32_t> stack;
  for (std::size_t dom = 0; dom < num_domains; ++dom) {
    auto& cone = domain_cone_[dom];
    stack.clear();
    for (InstId i : domain_insts_[dom]) {
      const std::uint32_t v = pin_offset_[i] + d.cell_of(i).output_pin();
      if (!in_cone[v]) {
        in_cone[v] = 1;
        cone.push_back(v);
        stack.push_back(v);
      }
    }
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      for (std::uint32_t ai = out_head_[u]; ai < out_head_[u + 1]; ++ai) {
        const std::uint32_t v = edges_[out_adj_[ai]].to;
        if (!in_cone[v]) {
          in_cone[v] = 1;
          cone.push_back(v);
          stack.push_back(v);
        }
      }
    }
    std::sort(cone.begin(), cone.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return topo_rank_[a] < topo_rank_[b];
              });
    for (std::uint32_t v : cone) in_cone[v] = 0;  // reset for next domain
  }
}

void StaEngine::propagate_nominal_full() {
  // Identical relaxation order and arithmetic to analyze({}) — launches
  // seeded first (factor 1.0), then one max-plus sweep in edge order.
  std::fill(nominal_arrival_.begin(), nominal_arrival_.end(), kNegInf);
  for (std::size_t li = 0; li < launch_nodes_.size(); ++li) {
    nominal_arrival_[launch_nodes_[li]] =
        std::max(nominal_arrival_[launch_nodes_[li]],
                 static_cast<double>(launch_base_[li]));
  }
  for (const Edge& e : edges_) {
    const double a = nominal_arrival_[e.from];
    if (a == kNegInf) continue;
    const double cand = a + static_cast<double>(e.base_delay);
    if (cand > nominal_arrival_[e.to]) nominal_arrival_[e.to] = cand;
  }
  nominal_valid_ = true;
}

StaResult StaEngine::recorner_full(DomainId domain, int corner) {
  recorner_stats_.full_fallback = true;
  // Synthesize the per-domain corner vector the equivalent compute_base()
  // would receive: every other domain keeps its current corner (read off
  // any member instance — consistent by the recorner_delta precondition).
  std::vector<int> corners(
      std::max<std::size_t>(domain_insts_.size(), domain + std::size_t{1}),
      kVddLow);
  for (std::size_t dom = 0; dom < domain_insts_.size(); ++dom) {
    if (!domain_insts_[dom].empty()) {
      corners[dom] = inst_corner_[domain_insts_[dom].front()];
    }
  }
  corners[domain] = corner;
  compute_base(corners);
  propagate_nominal_full();
  recorner_stats_.arrival_nodes_visited = node_count_;
  return extract_scalar_result(nominal_arrival_);
}

StaResult StaEngine::recorner_delta(DomainId domain, int corner) {
  if (corner < 0 || corner >= kNumCorners) {
    throw std::invalid_argument("recorner_delta: corner out of range");
  }
  ensure_recorner_index();
  recorner_stats_ = {};
  const Design& d = *design_;
  const auto dom = static_cast<std::size_t>(domain);

  std::size_t flips = 0;
  if (dom < domain_insts_.size()) {
    for (InstId i : domain_insts_[dom]) {
      flips += inst_corner_[i] != corner ? 1 : 0;
    }
  }
  if (flips == 0) {
    // Unknown/empty domain, or already at the requested corner: nothing
    // in the timing state changes; just (re)extract the nominal result.
    recorner_stats_.noop = true;
    if (!nominal_valid_) {
      propagate_nominal_full();
      recorner_stats_.arrival_nodes_visited = node_count_;
    }
    return extract_scalar_result(nominal_arrival_);
  }
  recorner_stats_.instances_flipped = flips;
  const auto& cone = domain_cone_[dom];
  recorner_stats_.cone_nodes = cone.size();
  if (static_cast<double>(cone.size()) >
      opts_.recorner_fallback_fraction * static_cast<double>(node_count_)) {
    return recorner_full(domain, corner);
  }

  // O(1) clear of the dirty marks (epoch stamps; wrap resets the arrays).
  if (mark_epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(slew_mark_.begin(), slew_mark_.end(), 0u);
    std::fill(arr_mark_.begin(), arr_mark_.end(), 0u);
    mark_epoch_ = 0;
  }
  const std::uint32_t ep = ++mark_epoch_;
  const bool track_arrival = nominal_valid_;
  auto mark_out_neighbors = [&](std::uint32_t v,
                                std::vector<std::uint32_t>& marks) {
    for (std::uint32_t ai = out_head_[v]; ai < out_head_[v + 1]; ++ai) {
      marks[edges_[out_adj_[ai]].to] = ep;
    }
  };

  // ---- seed: flip corners, refresh launch arcs, mark dirty fronts -----
  for (InstId i : domain_insts_[dom]) {
    if (inst_corner_[i] == corner) continue;
    inst_corner_[i] = corner;
    const Cell& cell = d.cell_of(i);
    const std::uint32_t out_node = pin_offset_[i] + cell.output_pin();
    if (cell.is_sequential()) {
      // The clk->q launch arc is not a graph edge: recompute it (and the
      // Q slew) directly, exactly as compute_base's launch loop does.
      const std::uint32_t li = launch_of_node_[out_node];
      const NetId qnet = d.instance(i).conns[cell.output_pin()];
      const auto& arc = cell.arcs.at(0);
      const double in_slew = opts_.default_input_slew_ns;
      const double load = net_load_[qnet];
      const auto nb = static_cast<float>(
          arc.corner[corner].delay.lookup(in_slew, load));
      const auto ns = static_cast<float>(
          arc.corner[corner].out_slew.lookup(in_slew, load));
      if (bits_differ(nb, launch_base_[li])) {
        launch_base_[li] = nb;
        if (track_arrival) arr_mark_[out_node] = ep;
      }
      if (bits_differ(ns, slew_[out_node])) {
        slew_[out_node] = ns;
        mark_out_neighbors(out_node, slew_mark_);
      }
    } else {
      // All of a combinational cell's arcs end at its output pin, so
      // marking that node re-derives every arc delay at the new corner.
      slew_mark_[out_node] = ep;
    }
  }

  // ---- slew/delay pass: recompute dirty nodes in topological order ----
  // A dirty node's slew is re-derived from ALL in-edges (max over floats
  // is order-independent, so the result is bitwise what a full
  // compute_base would store); cell in-edge base delays are re-looked-up
  // en route, and changes push the dirty front downstream.
  for (const std::uint32_t v : cone) {
    if (slew_mark_[v] != ep) continue;
    ++recorner_stats_.slew_nodes_visited;
    float ns = 0.0f;
    for (std::uint32_t ai = in_head_[v]; ai < in_head_[v + 1]; ++ai) {
      Edge& e = edges_[in_adj_[ai]];
      if (e.inst != kInvalidInst) {
        const Cell& cell = d.cell_of(e.inst);
        const int c = inst_corner_[e.inst];
        const auto from_pin =
            static_cast<std::uint16_t>(e.from - pin_offset_[e.inst]);
        const TimingArc* arc = cell.arc_from(from_pin);
        if (arc == nullptr) {
          throw std::logic_error("recorner_delta: missing arc");
        }
        const NetId out_net = d.instance(e.inst).conns[arc->to_pin];
        const double in_slew = slew_[e.from];
        const double load = net_load_[out_net];
        const auto nd = static_cast<float>(
            arc->corner[c].delay.lookup(in_slew, load));
        if (bits_differ(nd, e.base_delay)) {
          e.base_delay = nd;
          ++recorner_stats_.delay_edges_changed;
          if (track_arrival) arr_mark_[v] = ep;  // e.to == v
        }
        ns = std::max(ns, static_cast<float>(
                              arc->corner[c].out_slew.lookup(in_slew, load)));
      } else {
        ns = std::max(ns, static_cast<float>(slew_[e.from] +
                                             2.0 * e.base_delay));
      }
    }
    if (bits_differ(ns, slew_[v])) {
      slew_[v] = ns;
      mark_out_neighbors(v, slew_mark_);
    }
  }

  // ---- arrival pass: early-terminating delta propagation -------------
  if (!track_arrival) {
    propagate_nominal_full();
    recorner_stats_.arrival_nodes_visited = node_count_;
  } else {
    for (const std::uint32_t v : cone) {
      if (arr_mark_[v] != ep) continue;
      ++recorner_stats_.arrival_nodes_visited;
      const std::uint32_t li = launch_of_node_[v];
      double a = li != kNoLaunch ? static_cast<double>(launch_base_[li])
                                 : kNegInf;
      for (std::uint32_t ai = in_head_[v]; ai < in_head_[v + 1]; ++ai) {
        const Edge& e = edges_[in_adj_[ai]];
        const double af = nominal_arrival_[e.from];
        if (af == kNegInf) continue;
        a = std::max(a, af + static_cast<double>(e.base_delay));
      }
      // Early termination: an unchanged arrival marks no successors.
      if (bits_differ(a, nominal_arrival_[v])) {
        nominal_arrival_[v] = a;
        mark_out_neighbors(v, arr_mark_);
      }
    }
  }
  return extract_scalar_result(nominal_arrival_);
}

void StaEngine::analyze_batch_bases(
    std::span<const BaseSnapshot* const> bases,
    std::span<const std::vector<double>> inst_factor,
    std::span<StaResult> results) const {
  const std::size_t width = bases.size();
  if (results.size() != width || inst_factor.size() != width) {
    throw std::invalid_argument("analyze_batch_bases: lane count mismatch");
  }
  if (width == 0) return;
  const std::size_t num_inst = design_->num_instances();
  for (std::size_t b = 0; b < width; ++b) {
    if (bases[b] == nullptr || bases[b]->edge_base.size() != edges_.size() ||
        bases[b]->launch_base.size() != launch_base_.size()) {
      throw std::invalid_argument("analyze_batch_bases: snapshot mismatch");
    }
    if (!inst_factor[b].empty() && inst_factor[b].size() < num_inst) {
      throw std::invalid_argument("analyze_batch_bases: short factor vector");
    }
  }

  // Fold every lane's own base into a per-edge per-lane delay row once,
  // so the relaxation loop stays a pure max-plus sweep.
  delay_soa_.resize(edges_.size() * width);
  for (std::size_t ei = 0; ei < edges_.size(); ++ei) {
    const Edge& e = edges_[ei];
    double* d = &delay_soa_[ei * width];
    for (std::size_t b = 0; b < width; ++b) {
      const double base = static_cast<double>(bases[b]->edge_base[ei]);
      const double f = (e.inst == kInvalidInst || inst_factor[b].empty())
                           ? 1.0
                           : inst_factor[b][e.inst];
      d[b] = base * f;
    }
  }

  arrival_soa_.assign(static_cast<std::size_t>(node_count_) * width, kNegInf);
  for (std::size_t li = 0; li < launch_nodes_.size(); ++li) {
    const InstId i = launch_inst_[li];
    double* a =
        &arrival_soa_[static_cast<std::size_t>(launch_nodes_[li]) * width];
    for (std::size_t b = 0; b < width; ++b) {
      const double base = static_cast<double>(bases[b]->launch_base[li]);
      const double f = (i == kInvalidInst || inst_factor[b].empty())
                           ? 1.0
                           : inst_factor[b][i];
      a[b] = std::max(a[b], base * f);
    }
  }

  // Dispatched per-edge-delay relaxation (DESIGN.md §17): the per-lane
  // delay (this lane's own base times its factor) was formed above as one
  // IEEE multiply, so bits match the scalar path at every dispatch width.
  simd::active_kernels().relax_edges_delays(
      edges_.data(), edges_.size(), delay_soa_.data(), arrival_soa_.data(),
      width);

  extract_batch_results(width, results);
}

double StaEngine::min_period(std::span<const double> inst_factor) const {
  return analyze(inst_factor).min_period_ns;
}

std::vector<double> StaEngine::instance_slack(
    std::span<const double> inst_factor) const {
  constexpr double kPosInf = std::numeric_limits<double>::infinity();
  analyze(inst_factor);  // fills arrival_
  auto factor = [&](InstId i) {
    return inst_factor.empty() ? 1.0 : inst_factor[i];
  };

  std::vector<double> required(node_count_, kPosInf);
  for (std::size_t k = 0; k < endpoints_.size(); ++k) {
    required[endpoints_[k].node] =
        std::min(required[endpoints_[k].node],
                 opts_.clock_period_ns - endpoint_setup_[k]);
  }
  // Edges are stored in topological order of their source; walking them
  // backward relaxes required times correctly.
  for (std::size_t ei = edges_.size(); ei-- > 0;) {
    const Edge& e = edges_[ei];
    if (required[e.to] == kPosInf) continue;
    const double f = e.inst == kInvalidInst ? 1.0 : factor(e.inst);
    required[e.from] = std::min(
        required[e.from], required[e.to] - static_cast<double>(e.base_delay) * f);
  }

  std::vector<double> slack(design_->num_instances(), kPosInf);
  for (InstId i = 0; i < design_->num_instances(); ++i) {
    const auto lo = pin_offset_[i];
    const auto hi = lo + design_->cell_of(i).pins.size();
    for (auto node = lo; node < hi; ++node) {
      if (required[node] == kPosInf || arrival_[node] == kNegInf) continue;
      slack[i] = std::min(slack[i], required[node] - arrival_[node]);
    }
  }
  return slack;
}

std::vector<double> StaEngine::instance_arc_delay() const {
  std::vector<double> worst(design_->num_instances(), 0.0);
  for (const auto& e : edges_) {
    if (e.inst == kInvalidInst) continue;
    worst[e.inst] =
        std::max(worst[e.inst], static_cast<double>(e.base_delay));
  }
  for (std::size_t li = 0; li < launch_nodes_.size(); ++li) {
    const InstId i = launch_inst_[li];
    if (i == kInvalidInst) continue;
    worst[i] = std::max(worst[i], static_cast<double>(launch_base_[li]));
  }
  return worst;
}

void StaEngine::for_each_cell_arc(
    const std::function<void(InstId, std::uint16_t, std::uint16_t, double)>&
        fn) const {
  for (const auto& e : edges_) {
    if (e.inst == kInvalidInst) continue;
    const auto from_pin =
        static_cast<std::uint16_t>(e.from - pin_offset_[e.inst]);
    const auto to_pin = static_cast<std::uint16_t>(e.to - pin_offset_[e.inst]);
    fn(e.inst, from_pin, to_pin, static_cast<double>(e.base_delay));
  }
  for (std::size_t li = 0; li < launch_nodes_.size(); ++li) {
    const InstId i = launch_inst_[li];
    if (i == kInvalidInst) continue;
    const Cell& cell = design_->cell_of(i);
    // Clock pin is pin 1, Q is the output pin by library construction.
    fn(i, 1, cell.output_pin(), static_cast<double>(launch_base_[li]));
  }
}

std::vector<PathStep> StaEngine::trace_path(
    std::size_t endpoint_index, std::span<const double> inst_factor) const {
  analyze(inst_factor);  // fills arrival_/pred_edge_
  return trace_from_last_analysis(endpoint_index);
}

std::vector<PathStep> StaEngine::trace_from_last_analysis(
    std::size_t endpoint_index) const {
  std::vector<PathStep> rev;
  std::uint32_t node = endpoints_.at(endpoint_index).node;
  while (true) {
    PathStep step;
    step.arrival_ns = arrival_[node] == kNegInf ? 0.0 : arrival_[node];
    // Map the node back to instance/pin via the sorted pin_offset_ table.
    auto it = std::upper_bound(pin_offset_.begin(), pin_offset_.end(), node);
    if (it != pin_offset_.begin()) {
      const auto i =
          static_cast<InstId>(std::distance(pin_offset_.begin(), it) - 1);
      const auto lo = pin_offset_[i];
      if (node < lo + design_->cell_of(i).pins.size()) {
        step.inst = i;
        step.pin_name = design_->instance(i).name + "/" +
                        design_->cell_of(i).pins[node - lo].name;
      }
    }
    if (step.inst == kInvalidInst) step.pin_name = "<port>";
    const std::int32_t pe = pred_edge_[node];
    if (pe >= 0) {
      const Edge& e = edges_[static_cast<std::size_t>(pe)];
      // Increment from the arrival difference: exact under any factors.
      const double from_arr = arrival_[e.from] == kNegInf ? 0.0 : arrival_[e.from];
      step.incr_ns = step.arrival_ns - from_arr;
      rev.push_back(step);
      node = e.from;
    } else {
      step.incr_ns = step.arrival_ns;
      rev.push_back(step);
      break;
    }
  }
  return {rev.rbegin(), rev.rend()};
}

}  // namespace vipvt
