#pragma once
// Timing-driven power recovery via dual-/triple-Vth assignment — the
// pass a commercial performance-optimized synthesis flow runs after
// timing closure.  Slack-rich combinational cells are swapped to HVT and
// then UHVT flavours (same footprint and pin caps, slower, orders of
// magnitude less leakage).  Two consequences the reproduction depends on:
//
//  1. Leakage collapses to the ~1 % share of total power the paper
//     reports for its low-power ST library.
//  2. Every pipeline stage is pushed up against the clock (the "slack
//     wall"), which is what makes all of DC/EX/WB violate under the
//     worst-case variation scenario (Fig. 3), creating the paper's
//     multi-scenario structure.
//
// The pass is conservative per wave (assumes several cells of one path
// swap together) and ends with a repair loop that downgrades cells on
// violating paths, so the nominal design is still slack-met on exit.

#include <array>

#include "netlist/design.hpp"
#include "timing/sta.hpp"

namespace vipvt {

// Strategy: leakage-first mapping — every swappable cell starts at the
// slowest (UHVT) flavour — followed by timing-driven Vth *downgrades*
// along violating paths until each endpoint regains its per-stage slack
// target.  Because the closing direction is "speed paths up just enough",
// final stage slacks land at the targets, which is how the flow dials in
// the paper's stage profile (EX pinned at the clock, DC a little above,
// WB above DC, FE loose and excluded from the analysis).
struct RecoveryConfig {
  /// Target nominal slack per pipeline stage of the capturing endpoint,
  /// as a fraction of the clock period (FE, DC, EX, WB, Other).
  std::array<double, kNumPipeStages> stage_slack_target{
      {0.12, 0.048, 0.022, 0.078, 0.12}};
  /// Absolute override for all stages; < 0 disables.
  double target_ns = -1.0;
  int max_rounds = 200;
  /// Endpoints repaired per round before re-timing.
  int batch_size = 48;
  /// Extra estimated gain collected beyond the gap (covers slew effects).
  double gain_safety = 1.15;
  /// Levels of transitive fanin offered for downgrade: slow drivers off
  /// the path degrade slews on it (graph-based STA keeps the max), so
  /// path-only repair can stall.
  int fanin_depth = 3;
  /// Contribution discount per fanin level.
  double fanin_discount = 0.35;
};

struct RecoveryReport {
  std::size_t swapped_to_hvt = 0;   ///< cells ending at HVT
  std::size_t swapped_to_uhvt = 0;  ///< cells ending at UHVT
  std::size_t reverted = 0;         ///< timing-driven downgrades applied
  int passes = 0;                   ///< repair rounds run
  double wns_before_ns = 0.0;
  double wns_after_ns = 0.0;
  double leakage_before_mw = 0.0;  ///< nominal, low corner
  double leakage_after_mw = 0.0;
};

/// Runs recovery on a placed, timing-clean design.  The engine's clock
/// period defines the wall; base delays are recomputed internally (all
/// domains at the low corner).  On return the design holds the new cell
/// assignment and the engine's base delays are up to date.
RecoveryReport recover_power(Design& design, StaEngine& sta,
                             const RecoveryConfig& cfg = {});

}  // namespace vipvt
