#pragma once
// Row-based standard-cell floorplan.  The die is sized from total cell
// area and a target row utilization (the paper's VEX run used ~70 %),
// then divided into rows of placement sites.

#include "netlist/design.hpp"
#include "util/geometry.hpp"

namespace vipvt {

struct FloorplanConfig {
  double target_utilization = 0.70;
  double aspect_ratio = 1.0;  ///< width / height
};

class Floorplan {
 public:
  /// Sizes the die so that sum(cell area) / die area == utilization.
  static Floorplan for_design(const Design& design, const FloorplanConfig& cfg);

  /// Explicit construction (tests).
  Floorplan(Rect die, double row_height, double site_width);

  const Rect& die() const { return die_; }
  double row_height() const { return row_height_; }
  double site_width() const { return site_width_; }
  int num_rows() const { return num_rows_; }
  int sites_per_row() const { return sites_per_row_; }

  /// y coordinate of a row's bottom edge.
  double row_y(int row) const { return die_.lo.y + row_height_ * row; }
  /// x coordinate of a site's left edge.
  double site_x(int site) const { return die_.lo.x + site_width_ * site; }
  /// Row containing (or nearest to) the y coordinate.
  int row_at(double y) const;
  /// Site containing (or nearest to) the x coordinate.
  int site_at(double x) const;

 private:
  Rect die_;
  double row_height_;
  double site_width_;
  int num_rows_;
  int sites_per_row_;
};

}  // namespace vipvt
