#include "placement/placer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace vipvt {

PlacementDb::PlacementDb(const Floorplan& fp)
    : fp_(&fp),
      occ_(static_cast<std::size_t>(fp.num_rows()),
           std::vector<InstId>(static_cast<std::size_t>(fp.sites_per_row()),
                               kInvalidInst)) {}

bool PlacementDb::is_free(int row, int site, int span) const {
  if (row < 0 || row >= fp_->num_rows() || site < 0 ||
      site + span > fp_->sites_per_row()) {
    return false;
  }
  const auto& r = occ_[static_cast<std::size_t>(row)];
  for (int s = site; s < site + span; ++s) {
    if (r[static_cast<std::size_t>(s)] != kInvalidInst) return false;
  }
  return true;
}

void PlacementDb::occupy_inst(int row, int site, int span, InstId inst) {
  auto& r = occ_.at(static_cast<std::size_t>(row));
  for (int s = site; s < site + span; ++s) {
    if (r.at(static_cast<std::size_t>(s)) != kInvalidInst) {
      throw std::logic_error("PlacementDb: double occupancy");
    }
    r[static_cast<std::size_t>(s)] = inst;
  }
  occupied_ += static_cast<std::size_t>(span);
}

void PlacementDb::release(int row, int site, int span) {
  auto& r = occ_.at(static_cast<std::size_t>(row));
  for (int s = site; s < site + span; ++s) {
    if (r.at(static_cast<std::size_t>(s)) == kInvalidInst) {
      throw std::logic_error("PlacementDb: releasing free site");
    }
    r[static_cast<std::size_t>(s)] = kInvalidInst;
  }
  occupied_ -= static_cast<std::size_t>(span);
}

InstId PlacementDb::occupant(int row, int site) const {
  return occ_.at(static_cast<std::size_t>(row))
      .at(static_cast<std::size_t>(site));
}

std::optional<Point> PlacementDb::allocate_near(Point target, int span,
                                                InstId inst) {
  const int trow = fp_->row_at(target.y);
  const int tsite = fp_->site_at(target.x);
  const int max_row_radius = fp_->num_rows();
  for (int rr = 0; rr < max_row_radius; ++rr) {
    for (int dir = 0; dir < 2; ++dir) {
      const int row = dir == 0 ? trow + rr : trow - rr;
      if (rr == 0 && dir == 1) continue;
      if (row < 0 || row >= fp_->num_rows()) continue;
      // Scan start positions outward from the target site.
      const int max_site_radius = fp_->sites_per_row();
      for (int sr = 0; sr < max_site_radius; ++sr) {
        for (int sdir = 0; sdir < 2; ++sdir) {
          const int site = sdir == 0 ? tsite + sr : tsite - sr;
          if (sr == 0 && sdir == 1) continue;
          if (is_free(row, site, span)) {
            occupy_inst(row, site, span, inst);
            return Point{fp_->site_x(site), fp_->row_y(row)};
          }
        }
        // Bound the in-row scan when far from the target row; a full-row
        // scan per row keeps worst case O(rows*sites) which is fine at
        // our sizes, but trimming keeps the common case fast.
        if (rr > 2 && sr > fp_->sites_per_row() / 4) break;
      }
    }
  }
  return std::nullopt;
}

std::optional<int> PlacementDb::try_open_gap(Design& design, int row,
                                             int site, int span) {
  const int row_end = fp_->sites_per_row();
  if (row < 0 || row >= fp_->num_rows()) return std::nullopt;
  site = std::clamp(site, 0, row_end - span);
  auto& r = occ_[static_cast<std::size_t>(row)];

  // Free sites reachable rightward from each start (stopping at movable
  // blockers), in one O(row) pass.  If the target start lacks room, the
  // window slides left to the nearest start that has enough — i.e. the
  // compaction also recruits free space left of the target.
  std::vector<int> suffix_free(static_cast<std::size_t>(row_end) + 1, 0);
  for (int s = row_end - 1; s >= 0; --s) {
    const InstId occ = r[static_cast<std::size_t>(s)];
    suffix_free[static_cast<std::size_t>(s)] =
        occ == kBlocked
            ? 0
            : suffix_free[static_cast<std::size_t>(s) + 1] +
                  (occ == kInvalidInst ? 1 : 0);
  }
  while (site > 0 && suffix_free[static_cast<std::size_t>(site)] < span) {
    --site;
  }
  if (suffix_free[static_cast<std::size_t>(site)] < span) return std::nullopt;

  // Collect the movable segments in [site, row_end) up to the first
  // blocker, in left-to-right order.
  struct Segment {
    InstId inst;
    int site;
    int span;
  };
  std::vector<Segment> segments;
  int scan_start = site;
  // A cell straddling `site` must move as a whole: rewind to its start.
  if (r[static_cast<std::size_t>(scan_start)] != kInvalidInst &&
      r[static_cast<std::size_t>(scan_start)] != kBlocked) {
    while (scan_start > 0 &&
           r[static_cast<std::size_t>(scan_start - 1)] ==
               r[static_cast<std::size_t>(scan_start)]) {
      --scan_start;
    }
  }
  for (int s = scan_start; s < row_end;) {
    const InstId occ = r[static_cast<std::size_t>(s)];
    if (occ == kBlocked) break;
    if (occ == kInvalidInst) {
      ++s;
      continue;
    }
    int e = s;
    while (e < row_end && r[static_cast<std::size_t>(e)] == occ) ++e;
    segments.push_back({occ, s, e - s});
    s = e;
  }

  // Re-pack: clear, then place each segment at max(cursor, original),
  // falling back to pure compaction if the tail would overflow.
  for (const auto& seg : segments) release(row, seg.site, seg.span);
  auto place_all = [&](bool keep_gaps) {
    int cursor = site + span;
    std::vector<int> new_sites(segments.size());
    for (std::size_t k = 0; k < segments.size(); ++k) {
      const int at = keep_gaps ? std::max(cursor, segments[k].site) : cursor;
      new_sites[k] = at;
      cursor = at + segments[k].span;
    }
    if (cursor > row_end) return false;
    for (std::size_t k = 0; k < segments.size(); ++k) {
      occupy_inst(row, new_sites[k], segments[k].span, segments[k].inst);
      Instance& inst = design.instance(segments[k].inst);
      inst.pos = {fp_->site_x(new_sites[k]), fp_->row_y(row)};
    }
    return true;
  };
  if (!place_all(true) && !place_all(false)) {
    // Should not happen given the free-count check; restore and fail.
    for (const auto& seg : segments) {
      occupy_inst(row, seg.site, seg.span, seg.inst);
    }
    return std::nullopt;
  }
  return site;
}

std::optional<Point> PlacementDb::allocate_with_shove(Design& design,
                                                      Point target, int span,
                                                      InstId inst) {
  if (auto spot = allocate_near(target, span, inst)) return spot;
  const int trow = fp_->row_at(target.y);
  const int tsite = fp_->site_at(target.x);
  for (int rr = 0; rr < fp_->num_rows(); ++rr) {
    for (int dir = 0; dir < 2; ++dir) {
      const int row = dir == 0 ? trow + rr : trow - rr;
      if (rr == 0 && dir == 1) continue;
      if (row < 0 || row >= fp_->num_rows()) continue;
      if (const auto gap = try_open_gap(design, row, tsite, span)) {
        occupy_inst(row, *gap, span, inst);
        return Point{fp_->site_x(*gap), fp_->row_y(row)};
      }
    }
  }
  return std::nullopt;
}

double PlacementDb::utilization() const {
  const double total = static_cast<double>(fp_->num_rows()) *
                       static_cast<double>(fp_->sites_per_row());
  return total > 0 ? static_cast<double>(occupied_) / total : 0.0;
}

namespace {

/// Deterministic boundary position for a primary port: inputs on the left
/// edge, outputs on the right, spread by port ordinal.
Point port_position(const Design& design, const Floorplan& fp, NetId net_id) {
  const Net& net = design.net(net_id);
  const Rect& die = fp.die();
  const auto& list =
      net.is_primary_input ? design.primary_inputs() : design.primary_outputs();
  std::size_t ordinal = 0;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i] == net_id) {
      ordinal = i;
      break;
    }
  }
  const double frac =
      list.empty() ? 0.5
                   : (static_cast<double>(ordinal) + 0.5) /
                         static_cast<double>(list.size());
  const double x = net.is_primary_input ? die.lo.x : die.hi.x;
  return {x, die.lo.y + frac * die.height()};
}

Point instance_center(const Design& design, InstId id) {
  const Instance& inst = design.instance(id);
  const Cell& cell = design.lib().cell(inst.cell);
  const auto& site = design.lib().site();
  return {inst.pos.x + 0.5 * cell.sites * site.site_width_um,
          inst.pos.y + 0.5 * site.row_height_um};
}

Rect net_bbox(const Design& design, const Floorplan* fp, NetId net_id) {
  const Net& net = design.net(net_id);
  Rect box = Rect::empty();
  if (net.has_cell_driver()) {
    box.expand(instance_center(design, net.driver.inst));
  } else if (fp && (net.is_primary_input || net.is_primary_output)) {
    box.expand(port_position(design, *fp, net_id));
  }
  for (const auto& sink : net.sinks) {
    box.expand(instance_center(design, sink.inst));
  }
  if (fp && net.is_primary_output) box.expand(port_position(design, *fp, net_id));
  return box;
}

}  // namespace

double net_hpwl(const Design& design, NetId net) {
  const Rect box = net_bbox(design, nullptr, net);
  if (box.is_empty()) return 0.0;
  return box.width() + box.height();
}

double total_hpwl(const Design& design) {
  double sum = 0.0;
  for (NetId n = 0; n < design.num_nets(); ++n) {
    const Net& net = design.net(n);
    if (net.is_clock) continue;
    const std::size_t pins = net.sinks.size() + (net.has_cell_driver() ? 1 : 0);
    if (pins < 2) continue;
    sum += net_hpwl(design, n);
  }
  return sum;
}

std::vector<double> density_map(const Design& design, const Floorplan& fp,
                                int n) {
  std::vector<double> map(static_cast<std::size_t>(n) * n, 0.0);
  const Rect& die = fp.die();
  for (InstId i = 0; i < design.num_instances(); ++i) {
    const Instance& inst = design.instance(i);
    if (!inst.placed) continue;
    const Point c = instance_center(design, i);
    int bx = static_cast<int>((c.x - die.lo.x) / die.width() * n);
    int by = static_cast<int>((c.y - die.lo.y) / die.height() * n);
    bx = std::clamp(bx, 0, n - 1);
    by = std::clamp(by, 0, n - 1);
    map[static_cast<std::size_t>(by) * n + bx] +=
        design.lib().cell(inst.cell).area_um2;
  }
  return map;
}

PlaceResult place_design(Design& design, const Floorplan& fp,
                         const PlacerConfig& cfg, PlacementDb& db) {
  const std::size_t n = design.num_instances();
  const Rect& die = fp.die();
  Rng rng(cfg.seed);

  // --- initial placement: Hilbert curve by construction order ----------------
  // Builder-generated netlists create logically related gates with
  // adjacent ids (an adder's bits, a mux tree's levels, a unit's cells),
  // so mapping the id order onto a space-filling Hilbert curve seeds the
  // solver with 2-D-compact blobs: locality is isotropic, which keeps
  // nets short against BOTH slicing directions of the voltage-island
  // generator.  Area-weighted so big cells take proportional curve span.
  std::vector<Point> pos(n);
  if (cfg.random_init) {
    for (std::size_t i = 0; i < n; ++i) {
      pos[i] = {rng.uniform(die.lo.x, die.hi.x),
                rng.uniform(die.lo.y, die.hi.y)};
    }
  } else {
    constexpr int kOrder = 128;  // 128x128 curve grid
    auto hilbert_d2xy = [](std::uint64_t d, int& hx, int& hy) {
      hx = hy = 0;
      for (int s = 1; s < kOrder; s <<= 1) {
        const int rx = 1 & static_cast<int>(d / 2);
        const int ry = 1 & static_cast<int>(d ^ static_cast<std::uint64_t>(rx));
        if (ry == 0) {
          if (rx == 1) {
            hx = s - 1 - hx;
            hy = s - 1 - hy;
          }
          std::swap(hx, hy);
        }
        hx += s * rx;
        hy += s * ry;
        d /= 4;
      }
    };
    const double total_area = design.total_area();
    constexpr std::uint64_t kCurveLen =
        static_cast<std::uint64_t>(kOrder) * kOrder;
    double cum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double a =
          design.lib().cell(design.instance(i).cell).area_um2;
      const double t = (cum + 0.5 * a) / total_area;  // midpoint of span
      cum += a;
      const auto d = std::min<std::uint64_t>(
          kCurveLen - 1, static_cast<std::uint64_t>(t * kCurveLen));
      int hx = 0, hy = 0;
      hilbert_d2xy(d, hx, hy);
      pos[i] = {die.lo.x + (hx + 0.5) / kOrder * die.width() +
                    rng.uniform(-0.005, 0.005) * die.width(),
                die.lo.y + (hy + 0.5) / kOrder * die.height() +
                    rng.uniform(-0.005, 0.005) * die.height()};
      pos[i].x = std::clamp(pos[i].x, die.lo.x, die.hi.x);
      pos[i].y = std::clamp(pos[i].y, die.lo.y, die.hi.y);
    }
  }

  // QoR checkpointing: keep the best intermediate state.  The score is
  // estimated wirelength inflated by density overflow — a collapsed
  // state has artificially short nets but legalization will blow it
  // apart, so overflow must count against it.
  const int est_bins = std::max(4, cfg.density_bins);
  auto estimate_score = [&]() {
    double sum = 0.0;
    for (NetId net_id = 0; net_id < design.num_nets(); ++net_id) {
      const Net& net = design.net(net_id);
      if (net.is_clock) continue;
      Rect box = Rect::empty();
      if (net.has_cell_driver()) box.expand(pos[net.driver.inst]);
      for (const auto& sink : net.sinks) box.expand(pos[sink.inst]);
      if (!box.is_empty()) sum += box.width() + box.height();
    }
    // Density overflow fraction over the estimate grid.
    std::vector<double> area(static_cast<std::size_t>(est_bins) * est_bins,
                             0.0);
    const double bw = die.width() / est_bins;
    const double bh = die.height() / est_bins;
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const int bx = std::clamp(
          static_cast<int>((pos[i].x - die.lo.x) / bw), 0, est_bins - 1);
      const int by = std::clamp(
          static_cast<int>((pos[i].y - die.lo.y) / bh), 0, est_bins - 1);
      const double a = design.lib().cell(design.instance(i).cell).area_um2;
      area[static_cast<std::size_t>(by) * est_bins + bx] += a;
      total += a;
    }
    const double cap = total / (est_bins * est_bins) / 0.65;
    double overflow = 0.0;
    for (double a : area) overflow += std::max(0.0, a - cap);
    return sum * (1.0 + 4.0 * overflow / total);
  };
  std::vector<Point> best_pos = pos;
  double best_hpwl = estimate_score();

  // Net pin lists (skip clock: a global net must not pull everything to
  // one point; skip huge fanout nets beyond a threshold for the pull pass
  // as placers do with "don't touch" global nets).
  const NetId clock = design.clock_net();

  // --- centroid iterations with density spreading ---------------------------
  const int bins = std::max(4, cfg.density_bins);
  const double bin_w = die.width() / bins;
  const double bin_h = die.height() / bins;
  const double total_area = design.total_area();
  const double cap_per_bin = total_area / (bins * bins) /
                             0.65;  // allow ~1/0.65 of average before pushing

  std::vector<double> bin_area(static_cast<std::size_t>(bins) * bins);
  for (int iter = 0; iter < cfg.iterations; ++iter) {
    // Pull: move every instance toward the centroid of its connected pins.
    for (std::size_t i = 0; i < n; ++i) {
      const Instance& inst = design.instance(i);
      double sx = 0.0, sy = 0.0;
      int cnt = 0;
      for (std::size_t p = 0; p < inst.conns.size(); ++p) {
        const NetId net_id = inst.conns[p];
        if (net_id == clock) continue;
        const Net& net = design.net(net_id);
        if (net.sinks.size() > 64) continue;  // global-ish net
        // Centroid of the other pins on this net.
        double ox = 0.0, oy = 0.0;
        int ocnt = 0;
        if (net.has_cell_driver() && net.driver.inst != i) {
          ox += pos[net.driver.inst].x;
          oy += pos[net.driver.inst].y;
          ++ocnt;
        }
        if (net.is_primary_input || net.is_primary_output) {
          const Point pp = port_position(design, fp, net_id);
          ox += pp.x;
          oy += pp.y;
          ++ocnt;
        }
        for (const auto& sink : net.sinks) {
          if (sink.inst == i) continue;
          ox += pos[sink.inst].x;
          oy += pos[sink.inst].y;
          ++ocnt;
        }
        if (ocnt > 0) {
          sx += ox / ocnt;
          sy += oy / ocnt;
          ++cnt;
        }
      }
      if (cnt > 0) {
        const double d = cfg.damping;
        pos[i] = {pos[i].x * (1.0 - d) + (sx / cnt) * d,
                  pos[i].y * (1.0 - d) + (sy / cnt) * d};
      }
    }

    // Spread: push cells out of overfull bins toward the die mean.
    // Spreading every iteration fights the pull before it converges, so
    // it only runs every spread_every-th round (always on the last).
    const bool spread_now =
        (iter % std::max(1, cfg.spread_every)) == 0 ||
        iter + 1 == cfg.iterations;
    if (!spread_now) continue;
    std::fill(bin_area.begin(), bin_area.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      int bx = std::clamp(static_cast<int>((pos[i].x - die.lo.x) / bin_w), 0,
                          bins - 1);
      int by = std::clamp(static_cast<int>((pos[i].y - die.lo.y) / bin_h), 0,
                          bins - 1);
      bin_area[static_cast<std::size_t>(by) * bins + bx] +=
          design.lib().cell(design.instance(i).cell).area_um2;
    }
    for (std::size_t i = 0; i < n; ++i) {
      int bx = std::clamp(static_cast<int>((pos[i].x - die.lo.x) / bin_w), 0,
                          bins - 1);
      int by = std::clamp(static_cast<int>((pos[i].y - die.lo.y) / bin_h), 0,
                          bins - 1);
      const double fill =
          bin_area[static_cast<std::size_t>(by) * bins + bx] / cap_per_bin;
      if (fill <= 1.0) continue;
      // Displace away from the bin center, magnitude grows with overflow,
      // with a deterministic pseudo-random direction component to break
      // symmetric pile-ups.
      const Point bc{die.lo.x + (bx + 0.5) * bin_w,
                     die.lo.y + (by + 0.5) * bin_h};
      double dx = pos[i].x - bc.x;
      double dy = pos[i].y - bc.y;
      const double len = std::hypot(dx, dy);
      if (len < 1e-9) {
        std::uint64_t h = i * 0x9e3779b97f4a7c15ULL + iter;
        dx = (static_cast<double>(splitmix64(h) & 0xffff) / 65535.0) - 0.5;
        dy = (static_cast<double>(splitmix64(h) & 0xffff) / 65535.0) - 0.5;
      } else {
        dx /= len;
        dy /= len;
      }
      const double mag =
          cfg.spread_strength * std::min(fill - 1.0, 3.0) * std::max(bin_w, bin_h);
      pos[i].x = std::clamp(pos[i].x + dx * mag, die.lo.x, die.hi.x);
      pos[i].y = std::clamp(pos[i].y + dy * mag, die.lo.y, die.hi.y);
    }

    const double cur = estimate_score();
    if (cur < best_hpwl) {
      best_hpwl = cur;
      best_pos = pos;
    }
  }
  pos = std::move(best_pos);

  // --- two-phase legalization -------------------------------------------------
  // Phase 1: assign cells to rows near their global y, respecting row
  // capacity.  Phase 2: within each row, keep the x order and place each
  // cell as close to its global x as fits, reserving room for the cells
  // still to come so the row never overflows.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t bdx) {
    return pos[a].x < pos[bdx].x;
  });

  const auto rows = static_cast<std::size_t>(fp.num_rows());
  std::vector<int> row_fill(rows, 0);  // committed spans per row
  std::vector<std::vector<std::size_t>> row_cells(rows);
  for (std::size_t oi = 0; oi < n; ++oi) {
    const std::size_t i = order[oi];
    const int span = design.lib().cell(design.instance(static_cast<InstId>(i))
                                           .cell).sites;
    const int want_row = fp.row_at(pos[i].y);
    int best_row = -1;
    for (int rr = 0; rr < fp.num_rows(); ++rr) {
      for (int dir = 0; dir < 2; ++dir) {
        const int row = dir == 0 ? want_row + rr : want_row - rr;
        if (rr == 0 && dir == 1) continue;
        if (row < 0 || row >= fp.num_rows()) continue;
        if (row_fill[static_cast<std::size_t>(row)] + span <=
            fp.sites_per_row()) {
          best_row = row;
          break;
        }
      }
      if (best_row >= 0) break;
    }
    if (best_row < 0) throw std::runtime_error("legalization: die is full");
    row_fill[static_cast<std::size_t>(best_row)] += span;
    row_cells[static_cast<std::size_t>(best_row)].push_back(i);
  }

  double max_disp = 0.0;
  for (std::size_t row = 0; row < rows; ++row) {
    auto& cells = row_cells[row];
    // Already in ascending x order (phase 1 consumed a sorted sequence).
    // Suffix spans: room that must stay free to the right of each cell.
    int suffix = 0;
    std::vector<int> suffix_after(cells.size(), 0);
    for (std::size_t k = cells.size(); k-- > 0;) {
      suffix_after[k] = suffix;
      suffix += design.lib()
                    .cell(design.instance(static_cast<InstId>(cells[k])).cell)
                    .sites;
    }
    int cursor = 0;
    const int chunk = std::max(1, cfg.eco_gap_sites);
    for (std::size_t k = 0; k < cells.size(); ++k) {
      const std::size_t i = cells[k];
      Instance& inst = design.instance(static_cast<InstId>(i));
      const int span = design.lib().cell(inst.cell).sites;
      const int limit = fp.sites_per_row() - suffix_after[k] - span;
      int site = std::clamp(fp.site_at(pos[i].x), cursor, limit);
      // Quantize whitespace: squeeze sub-chunk gaps so free sites cluster
      // into ECO holes wide enough for later level-shifter insertion.
      if (site - cursor < chunk) site = cursor;
      cursor = site + span;
      inst.pos = {fp.site_x(site), fp.row_y(static_cast<int>(row))};
      inst.placed = true;
      db.occupy_inst(static_cast<int>(row), site, span,
                     static_cast<InstId>(i));
      max_disp = std::max(max_disp, manhattan(inst.pos, pos[i]));
    }
  }

  PlaceResult res;
  res.hpwl_um = total_hpwl(design);
  res.max_displacement = max_disp;
  return res;
}

}  // namespace vipvt
