#include "placement/floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vipvt {

Floorplan Floorplan::for_design(const Design& design,
                                const FloorplanConfig& cfg) {
  const double cell_area = design.total_area();
  if (cell_area <= 0.0) throw std::invalid_argument("floorplan: empty design");
  const double die_area = cell_area / cfg.target_utilization;
  const double height = std::sqrt(die_area / cfg.aspect_ratio);
  const double width = die_area / height;
  const auto& site = design.lib().site();
  // Snap to whole rows/sites.
  const int rows = std::max(1, static_cast<int>(std::ceil(height / site.row_height_um)));
  const int sites = std::max(1, static_cast<int>(std::ceil(width / site.site_width_um)));
  Rect die{{0.0, 0.0},
           {sites * site.site_width_um, rows * site.row_height_um}};
  return Floorplan(die, site.row_height_um, site.site_width_um);
}

Floorplan::Floorplan(Rect die, double row_height, double site_width)
    : die_(die), row_height_(row_height), site_width_(site_width) {
  if (die.width() <= 0 || die.height() <= 0 || row_height <= 0 ||
      site_width <= 0) {
    throw std::invalid_argument("floorplan: degenerate geometry");
  }
  num_rows_ = std::max(1, static_cast<int>(die.height() / row_height));
  sites_per_row_ = std::max(1, static_cast<int>(die.width() / site_width));
}

int Floorplan::row_at(double y) const {
  // Small epsilon so that row_y(r) round-trips to r despite FP rounding.
  const int row = static_cast<int>((y - die_.lo.y) / row_height_ + 1e-6);
  return std::clamp(row, 0, num_rows_ - 1);
}

int Floorplan::site_at(double x) const {
  const int site = static_cast<int>((x - die_.lo.x) / site_width_ + 1e-6);
  return std::clamp(site, 0, sites_per_row_ - 1);
}

}  // namespace vipvt
