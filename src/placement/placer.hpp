#pragma once
// Wirelength-driven global placement + row legalization.
//
// The global pass is an iterated centroid (force-directed) scheme with
// grid-density spreading: each cell is pulled to the weighted centroid of
// its nets' bounding boxes while overfull density bins push cells apart.
// Legalization is a tetris sweep onto rows/sites.  The result has the
// one property the paper's voltage-island methodology relies on: cells of
// different pipeline stages end up *interleaved* across the floorplan
// according to connectivity, not grouped by logic hierarchy.
//
// PlacementDb keeps the per-site occupancy after legalization so that the
// level-shifter insertion step can place new cells incrementally near a
// target point without disturbing the optimized placement.

#include <optional>
#include <vector>

#include "netlist/design.hpp"
#include "placement/floorplan.hpp"

namespace vipvt {

struct PlacerConfig {
  int iterations = 60;          ///< centroid+spreading rounds
  double damping = 0.85;        ///< fraction of the move toward the centroid
  int spread_every = 4;         ///< density spreading every k-th iteration
  double spread_strength = 0.55;///< fraction of overflow displacement applied
  int density_bins = 24;        ///< density grid is bins x bins
  /// Whitespace quantum during legalization: sub-quantum gaps are
  /// squeezed out so free space clusters into ECO-usable holes at least
  /// this many sites wide (level shifters are ~30+ sites).
  int eco_gap_sites = 44;
  /// true: start from uniform random positions (baseline experiments);
  /// false: seed with the construction-order serpentine, which carries
  /// strong logical locality for generated netlists.
  bool random_init = false;
  std::uint64_t seed = 0x91acedULL;
};

/// Site-granular occupancy map of the legalized placement.  Sites record
/// which instance occupies them, which lets ECO insertion shove existing
/// cells aside (the paper's "incremental placement" for level shifters).
class PlacementDb {
 public:
  /// Marker for sites occupied by something that must not be moved.
  static constexpr InstId kBlocked = kInvalidInst - 1;

  explicit PlacementDb(const Floorplan& fp);

  const Floorplan& floorplan() const { return *fp_; }

  bool is_free(int row, int site, int span) const;
  /// Occupy with an immovable blocker (tests / reserved areas).
  void occupy(int row, int site, int span) {
    occupy_inst(row, site, span, kBlocked);
  }
  /// Occupy on behalf of an instance (movable during ECO shoves).
  void occupy_inst(int row, int site, int span, InstId inst);
  void release(int row, int site, int span);
  InstId occupant(int row, int site) const;

  /// Finds the free span of `span` sites nearest to `target` (spiral row
  /// search + in-row scan), occupies it and returns its lower-left
  /// coordinate.  Returns nullopt if no free span exists.
  std::optional<Point> allocate_near(Point target, int span,
                                     InstId inst = kBlocked);

  /// ECO insertion: like allocate_near, but when no free span exists it
  /// opens one by shifting movable cells sideways within a row (their
  /// Instance::pos in `design` is updated).  Returns nullopt only if the
  /// die genuinely lacks `span` free sites in every row.
  std::optional<Point> allocate_with_shove(Design& design, Point target,
                                           int span, InstId inst);

  /// Fraction of sites occupied.
  double utilization() const;

 private:
  /// Opens a `span`-site gap in `row` as close to `site` as the row's
  /// free space allows, shifting movable cells; returns the gap's start
  /// site, or nullopt if the row lacks room.
  std::optional<int> try_open_gap(Design& design, int row, int site, int span);

  const Floorplan* fp_;
  std::vector<std::vector<InstId>> occ_;  // [row][site]; kInvalidInst = free
  std::size_t occupied_ = 0;
};

struct PlaceResult {
  double hpwl_um = 0.0;      ///< total half-perimeter wirelength
  double max_displacement = 0.0;  ///< global->legal displacement [um]
};

/// Places every instance of `design` (writes Instance::pos / placed) and
/// returns the occupancy database for incremental edits.
PlaceResult place_design(Design& design, const Floorplan& fp,
                         const PlacerConfig& cfg, PlacementDb& db);

/// Total half-perimeter wirelength of the current placement.  Nets with
/// fewer than 2 pins and the clock net are skipped.
double total_hpwl(const Design& design);

/// Bounding-box wirelength of one net (primary ports count at their
/// boundary position; unplaced instances are an error).
double net_hpwl(const Design& design, NetId net);

/// Cell-count density over an n x n grid (row-major, [y][x] flattened).
std::vector<double> density_map(const Design& design, const Floorplan& fp,
                                int n);

}  // namespace vipvt
