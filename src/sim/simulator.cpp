#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace vipvt {

LogicSimulator::LogicSimulator(const Design& design) : design_(&design) {
  const Design& d = *design_;
  values_.assign(d.num_nets(), 0);
  toggles_.assign(d.num_nets(), 0);

  // Topological order over combinational instances (Kahn on gate level).
  std::vector<std::uint32_t> pending(d.num_instances(), 0);
  for (InstId i = 0; i < d.num_instances(); ++i) {
    const Cell& cell = d.cell_of(i);
    if (cell.is_sequential()) {
      flops_.push_back(i);
      continue;
    }
    std::uint32_t deps = 0;
    for (std::size_t p = 0; p < cell.pins.size(); ++p) {
      if (!cell.pins[p].is_input) continue;
      const Net& net = d.net(d.instance(i).conns[p]);
      if (net.has_cell_driver() &&
          !d.cell_of(net.driver.inst).is_sequential()) {
        ++deps;
      }
    }
    pending[i] = deps;
    if (deps == 0) topo_gates_.push_back(i);
  }
  for (std::size_t qi = 0; qi < topo_gates_.size(); ++qi) {
    const InstId u = topo_gates_[qi];
    const Cell& cell = d.cell_of(u);
    const NetId out = d.instance(u).conns[cell.output_pin()];
    for (const auto& sink : d.net(out).sinks) {
      if (d.cell_of(sink.inst).is_sequential()) continue;
      if (--pending[sink.inst] == 0) topo_gates_.push_back(sink.inst);
    }
  }
  std::size_t comb_count = 0;
  for (InstId i = 0; i < d.num_instances(); ++i) {
    if (!d.cell_of(i).is_sequential()) ++comb_count;
  }
  if (topo_gates_.size() != comb_count) {
    throw std::runtime_error("LogicSimulator: combinational loop");
  }
  flop_state_.assign(flops_.size(), 0);
  reset();
}

void LogicSimulator::reset() {
  std::fill(values_.begin(), values_.end(), 0);
  std::fill(toggles_.begin(), toggles_.end(), 0);
  std::fill(flop_state_.begin(), flop_state_.end(), 0);
  cycles_ = 0;
  settle();
  inputs_dirty_ = false;
  // The initial settle is not activity.
  std::fill(toggles_.begin(), toggles_.end(), 0);
}

void LogicSimulator::set_input(NetId net, bool v) {
  if (!design_->net(net).is_primary_input) {
    throw std::invalid_argument("set_input: not a primary input");
  }
  const auto nv = static_cast<std::uint8_t>(v);
  if (values_[net] != nv) {
    values_[net] = nv;
    ++toggles_[net];
    inputs_dirty_ = true;
  }
}

bool LogicSimulator::eval_gate(InstId inst) const {
  const Design& d = *design_;
  const Cell& cell = d.cell_of(inst);
  const auto& conns = d.instance(inst).conns;
  auto in = [&](int k) { return values_[conns[static_cast<std::size_t>(k)]] != 0; };
  switch (cell.func) {
    case CellFunc::Inv: return !in(0);
    case CellFunc::Buf: return in(0);
    case CellFunc::LevelShifter: return in(0);
    case CellFunc::Nand2: return !(in(0) && in(1));
    case CellFunc::Nand3: return !(in(0) && in(1) && in(2));
    case CellFunc::Nand4: return !(in(0) && in(1) && in(2) && in(3));
    case CellFunc::Nor2: return !(in(0) || in(1));
    case CellFunc::Nor3: return !(in(0) || in(1) || in(2));
    case CellFunc::And2: return in(0) && in(1);
    case CellFunc::And3: return in(0) && in(1) && in(2);
    case CellFunc::Or2: return in(0) || in(1);
    case CellFunc::Or3: return in(0) || in(1) || in(2);
    case CellFunc::Xor2: return in(0) != in(1);
    case CellFunc::Xnor2: return in(0) == in(1);
    case CellFunc::Aoi21: return !((in(0) && in(1)) || in(2));
    case CellFunc::Oai21: return !((in(0) || in(1)) && in(2));
    case CellFunc::Aoi22: return !((in(0) && in(1)) || (in(2) && in(3)));
    case CellFunc::Mux2: return in(2) ? in(1) : in(0);
    case CellFunc::Maj3:
      return (in(0) && in(1)) || (in(0) && in(2)) || (in(1) && in(2));
    case CellFunc::Tie0: return false;
    case CellFunc::Tie1: return true;
    case CellFunc::Dff:
    case CellFunc::RazorDff:
      throw std::logic_error("eval_gate on sequential cell");
  }
  throw std::logic_error("eval_gate: unknown function");
}

void LogicSimulator::settle() {
  const Design& d = *design_;
  for (InstId inst : topo_gates_) {
    const Cell& cell = d.cell_of(inst);
    const NetId out = d.instance(inst).conns[cell.output_pin()];
    const auto nv = static_cast<std::uint8_t>(eval_gate(inst));
    if (values_[out] != nv) {
      values_[out] = nv;
      ++toggles_[out];
    }
  }
}

void LogicSimulator::step() {
  const Design& d = *design_;
  // Primary-input changes must propagate through combinational logic
  // before the edge, so flops capture a consistent pre-edge state
  // regardless of how many gates separate them from the inputs.
  if (inputs_dirty_) {
    settle();
    inputs_dirty_ = false;
  }
  // Capture D with pre-edge values.
  for (std::size_t k = 0; k < flops_.size(); ++k) {
    const InstId inst = flops_[k];
    flop_state_[k] = values_[d.instance(inst).conns[0]];  // D is pin 0
  }
  // Update Q outputs.
  for (std::size_t k = 0; k < flops_.size(); ++k) {
    const InstId inst = flops_[k];
    const Cell& cell = d.cell_of(inst);
    const NetId q = d.instance(inst).conns[cell.output_pin()];
    if (values_[q] != flop_state_[k]) {
      values_[q] = flop_state_[k];
      ++toggles_[q];
    }
  }
  settle();
  ++cycles_;
}

double LogicSimulator::toggle_rate(NetId net) const {
  if (cycles_ == 0) return 0.0;
  return static_cast<double>(toggles_[net]) / static_cast<double>(cycles_);
}

NetId LogicSimulator::input_by_name(const std::string& name) const {
  for (NetId n : design_->primary_inputs()) {
    if (design_->net(n).name == name) return n;
  }
  throw std::out_of_range("input_by_name: no primary input " + name);
}

}  // namespace vipvt
