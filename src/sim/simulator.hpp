#pragma once
// Cycle-based gate-level logic simulator with per-net toggle counting —
// the stand-in for the paper's Modelsim run that produced switching-
// activity back-annotation for PrimePower.  Gates are evaluated in
// levelized (topological) order once per clock cycle; glitches are not
// modelled, which uniformly underestimates activity and therefore cancels
// in the relative power comparisons the methodology needs.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/design.hpp"

namespace vipvt {

class LogicSimulator {
 public:
  explicit LogicSimulator(const Design& design);

  /// Reset all nets and flop states to 0 and clear statistics.
  void reset();

  /// Set a primary input for the upcoming cycle.
  void set_input(NetId net, bool value);

  /// One clock cycle: flops capture their D values from the previous
  /// settle, Q outputs update, then combinational logic settles.
  /// Toggles (including those caused by new primary-input values) are
  /// accumulated per net.
  void step();

  bool value(NetId net) const { return values_[net]; }
  std::uint64_t cycles() const { return cycles_; }
  const std::vector<std::uint64_t>& toggles() const { return toggles_; }

  /// Toggle rate of a net: transitions per cycle (0 if no cycles ran).
  double toggle_rate(NetId net) const;

  /// Primary-input net lookup by name (e.g. "instr[3]"); throws if absent.
  NetId input_by_name(const std::string& name) const;

 private:
  void settle();
  bool eval_gate(InstId inst) const;

  const Design* design_;
  std::vector<InstId> topo_gates_;   // combinational, in evaluation order
  std::vector<InstId> flops_;
  std::vector<std::uint8_t> values_;     // per net
  std::vector<std::uint8_t> flop_state_; // per entry in flops_
  std::vector<std::uint64_t> toggles_;   // per net
  std::uint64_t cycles_ = 0;
  bool inputs_dirty_ = false;
};

}  // namespace vipvt
