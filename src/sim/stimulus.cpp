#include "sim/stimulus.hpp"

#include <algorithm>
#include <stdexcept>

namespace vipvt {

FirStimulus::FirStimulus(const Design& design, const VexConfig& cfg,
                         std::uint64_t seed)
    : design_(&design), cfg_(cfg), layout_(SyllableLayout::from(cfg)),
      rng_(seed) {
  // Resolve input nets once.
  instr_nets_.reserve(
      static_cast<std::size_t>(layout_.syllable_bits * cfg.slots));
  auto find_input = [&](const std::string& name) {
    for (NetId n : design.primary_inputs()) {
      if (design.net(n).name == name) return n;
    }
    throw std::out_of_range("FirStimulus: missing input " + name);
  };
  for (int i = 0; i < layout_.syllable_bits * cfg.slots; ++i) {
    instr_nets_.push_back(find_input("instr[" + std::to_string(i) + "]"));
  }
  load_nets_.resize(static_cast<std::size_t>(cfg.slots));
  for (int s = 0; s < cfg.slots; ++s) {
    load_nets_[s].reserve(static_cast<std::size_t>(cfg.width));
    for (int i = 0; i < cfg.width; ++i) {
      load_nets_[s].push_back(find_input("load_data" + std::to_string(s) +
                                         "[" + std::to_string(i) + "]"));
    }
  }
}

std::uint32_t FirStimulus::encode(VexOp op, int dest, int src1, int src2,
                                  std::uint32_t imm) const {
  const auto mask = [](int bits) {
    return bits >= 32 ? ~0u : ((1u << bits) - 1u);
  };
  std::uint32_t w = 0;
  w |= (static_cast<std::uint32_t>(op) & mask(cfg_.opcode_bits))
       << layout_.opcode_lsb;
  w |= (static_cast<std::uint32_t>(dest) & mask(layout_.addr_bits))
       << layout_.dest_lsb;
  w |= (static_cast<std::uint32_t>(src1) & mask(layout_.addr_bits))
       << layout_.src1_lsb;
  w |= (static_cast<std::uint32_t>(src2) & mask(layout_.addr_bits))
       << layout_.src2_lsb;
  w |= (imm & mask(layout_.imm_bits)) << layout_.imm_lsb;
  return w;
}

void FirStimulus::apply_bus(LogicSimulator& sim,
                            const std::vector<NetId>& nets,
                            std::uint64_t value) {
  for (std::size_t i = 0; i < nets.size(); ++i) {
    sim.set_input(nets[i], (value >> i) & 1);
  }
}

void FirStimulus::apply_syllable(LogicSimulator& sim, int slot,
                                 std::uint32_t word) {
  for (int i = 0; i < layout_.syllable_bits; ++i) {
    sim.set_input(
        instr_nets_[static_cast<std::size_t>(slot * layout_.syllable_bits + i)],
        (word >> i) & 1);
  }
}

void FirStimulus::step(LogicSimulator& sim) {
  const int regs = cfg_.num_regs;
  // Register roles (kept within the architectural register count).
  const int r_sample = 1 % regs;
  const int r_coeff = 2 % regs;
  const int r_prod = 3 % regs;
  const int r_acc = 4 % regs;
  const int r_ptr = 5 % regs;
  const int r_tmp = 6 % regs;

  // A software-pipelined FIR body across the issue slots; the pattern
  // repeats every 4 bundles with a store+branch epilogue bundle.
  std::vector<std::uint32_t> bundle(static_cast<std::size_t>(cfg_.slots),
                                    encode(VexOp::Nop, 0, 0, 0, 0));
  switch (phase_) {
    case 0:
      bundle[0] = encode(VexOp::Load, r_sample, r_ptr, 0, 0);
      if (cfg_.slots > 1) bundle[1] = encode(VexOp::Mul, r_prod, r_sample, r_coeff, 0);
      if (cfg_.slots > 2) bundle[2] = encode(VexOp::Add, r_acc, r_acc, r_prod, 0);
      if (cfg_.slots > 3) bundle[3] = encode(VexOp::AddImm, r_ptr, r_ptr, 0, 4);
      break;
    case 1:
      bundle[0] = encode(VexOp::Load, r_tmp, r_ptr, 0, 4);
      if (cfg_.slots > 1) bundle[1] = encode(VexOp::Mul, r_prod, r_tmp, r_coeff, 0);
      if (cfg_.slots > 2) bundle[2] = encode(VexOp::Add, r_acc, r_acc, r_prod, 0);
      if (cfg_.slots > 3) bundle[3] = encode(VexOp::Shl, r_tmp, r_sample, r_coeff, 0);
      break;
    case 2:
      bundle[0] = encode(VexOp::Mul, r_prod, r_sample, r_coeff, 0);
      if (cfg_.slots > 1) bundle[1] = encode(VexOp::Add, r_acc, r_acc, r_prod, 0);
      if (cfg_.slots > 2) bundle[2] = encode(VexOp::Cmp, r_tmp, r_ptr, r_acc, 0);
      if (cfg_.slots > 3) bundle[3] = encode(VexOp::Xor, r_tmp, r_sample, r_acc, 0);
      break;
    default:
      bundle[0] = encode(VexOp::Store, 0, r_ptr, r_acc, 8);
      if (cfg_.slots > 1) bundle[1] = encode(VexOp::Branch, 0, r_tmp, 0, 16);
      if (cfg_.slots > 2) bundle[2] = encode(VexOp::Sub, r_acc, r_acc, r_prod, 0);
      if (cfg_.slots > 3) bundle[3] = encode(VexOp::Or, r_tmp, r_acc, r_sample, 0);
      break;
  }
  phase_ = (phase_ + 1) % 4;
  for (int s = 0; s < cfg_.slots; ++s) apply_syllable(sim, s, bundle[s]);

  // FIR input samples: bounded random walk (adjacent samples correlated,
  // high-order bits quiet — like real audio/sensor data).
  sample_ += static_cast<std::int64_t>(rng_.below(257)) - 128;
  const std::int64_t lim = (1ll << (cfg_.width - 1)) - 1;
  sample_ = std::clamp<std::int64_t>(sample_, -lim, lim);
  for (int s = 0; s < cfg_.slots; ++s) {
    apply_bus(sim, load_nets_[s],
              static_cast<std::uint64_t>(sample_ + s * 3));
  }
  sim.step();
}

void FirStimulus::run(LogicSimulator& sim, int cycles) {
  for (int c = 0; c < cycles; ++c) step(sim);
}

RandomStimulus::RandomStimulus(const Design& design, std::uint64_t seed)
    : design_(&design), rng_(seed) {}

void RandomStimulus::run(LogicSimulator& sim, int cycles) {
  for (int c = 0; c < cycles; ++c) {
    for (NetId n : design_->primary_inputs()) {
      if (design_->net(n).is_clock) continue;
      sim.set_input(n, rng_.chance(0.5));
    }
    sim.step();
  }
}

}  // namespace vipvt
