#pragma once
// Workload stimulus for the VEX core.  The paper measures power on a FIR
// filtering benchmark compiled with the VEX trace-scheduling compiler; we
// reproduce the workload's structure directly: a software-pipelined FIR
// inner loop issuing load / multiply / accumulate / pointer-increment
// syllables across the 4 slots, with periodic store and (not-taken
// biased) branch syllables, over a correlated (random-walk) input sample
// stream.

#include <cstdint>

#include "netlist/vex.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace vipvt {

class FirStimulus {
 public:
  FirStimulus(const Design& design, const VexConfig& cfg,
              std::uint64_t seed = 0xf19f19);

  /// Encode one syllable with the design's field layout.
  std::uint32_t encode(VexOp op, int dest, int src1, int src2,
                       std::uint32_t imm) const;

  /// Drive one cycle worth of inputs (instruction bundle + load data) and
  /// advance the simulator.
  void step(LogicSimulator& sim);

  /// Run `cycles` cycles.
  void run(LogicSimulator& sim, int cycles);

 private:
  void apply_syllable(LogicSimulator& sim, int slot, std::uint32_t word);
  void apply_bus(LogicSimulator& sim, const std::vector<NetId>& nets,
                 std::uint64_t value);

  const Design* design_;
  VexConfig cfg_;
  SyllableLayout layout_;
  Rng rng_;
  std::vector<NetId> instr_nets_;
  std::vector<std::vector<NetId>> load_nets_;  // per slot
  std::int64_t sample_ = 0;  ///< random-walk FIR input sample
  int phase_ = 0;            ///< position within the software-pipelined loop
};

/// Uniform-random stimulus over all primary inputs (tests / baselines).
class RandomStimulus {
 public:
  RandomStimulus(const Design& design, std::uint64_t seed = 0xabcd);
  void run(LogicSimulator& sim, int cycles);

 private:
  const Design* design_;
  Rng rng_;
};

}  // namespace vipvt
