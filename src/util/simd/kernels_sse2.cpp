// SSE2 (W=2) instantiation of the kernel bodies.  SSE2 is the x86-64
// baseline, so this TU needs no extra -m flags — only -ffp-contract=off
// to uphold the bit-identity contract (DESIGN.md §17).

#include "util/simd/kernels.hpp"

#if defined(VIPVT_SIMD_HAVE_SSE2)

#include "util/simd/kernels_body.hpp"
#include "util/simd/vec.hpp"

namespace vipvt::simd {
namespace {

using P = Sse2Policy;

void relax(const RelaxEdge* edges, std::size_t num_edges,
           const double* factor_soa, double* arrival_soa, std::size_t width) {
  relax_edges_body<P>(edges, num_edges, factor_soa, arrival_soa, width);
}

void relax_delays(const RelaxEdge* edges, std::size_t num_edges,
                  const double* delay_soa, double* arrival_soa,
                  std::size_t width) {
  relax_edges_delays_body<P>(edges, num_edges, delay_soa, arrival_soa, width);
}

void transform(const double* coef, std::int32_t row_stride, double lo,
               double step, double inv_step, std::int32_t intervals,
               const std::int32_t* rows, const double* sys, const double* eps,
               double* out, std::size_t n, std::size_t width) {
  draw_transform_body<P>(coef, row_stride, lo, step, inv_step, intervals,
                         rows, sys, eps, out, n, width);
}

void normals(std::uint64_t key_r, std::uint64_t key_t, double* out,
             std::size_t n) {
  normals_fill_body<P>(key_r, key_t, out, n);
}

}  // namespace

const Kernels kKernelsSse2{&relax, &relax_delays, &transform, &normals};

}  // namespace vipvt::simd

#endif  // VIPVT_SIMD_HAVE_SSE2
