// AVX-512 (W=8) instantiation of the kernel bodies.  Compiled with
// "-mavx512f -mavx512dq -ffp-contract=off"; -mavx512f implies FMA
// availability to the compiler, which is exactly why contraction must be
// switched off here — a fused from+base*f would change per-lane bits and
// break the dispatch contract (DESIGN.md §17).  Only reachable through
// runtime CPUID dispatch (avx512f && avx512dq).

#include "util/simd/kernels.hpp"

#if defined(VIPVT_SIMD_HAVE_AVX512)

#include "util/simd/kernels_body.hpp"
#include "util/simd/vec.hpp"

namespace vipvt::simd {
namespace {

using P = Avx512Policy;

void relax(const RelaxEdge* edges, std::size_t num_edges,
           const double* factor_soa, double* arrival_soa, std::size_t width) {
  relax_edges_body<P>(edges, num_edges, factor_soa, arrival_soa, width);
}

void relax_delays(const RelaxEdge* edges, std::size_t num_edges,
                  const double* delay_soa, double* arrival_soa,
                  std::size_t width) {
  relax_edges_delays_body<P>(edges, num_edges, delay_soa, arrival_soa, width);
}

void transform(const double* coef, std::int32_t row_stride, double lo,
               double step, double inv_step, std::int32_t intervals,
               const std::int32_t* rows, const double* sys, const double* eps,
               double* out, std::size_t n, std::size_t width) {
  draw_transform_body<P>(coef, row_stride, lo, step, inv_step, intervals,
                         rows, sys, eps, out, n, width);
}

void normals(std::uint64_t key_r, std::uint64_t key_t, double* out,
             std::size_t n) {
  normals_fill_body<P>(key_r, key_t, out, n);
}

}  // namespace

const Kernels kKernelsAvx512{&relax, &relax_delays, &transform, &normals};

}  // namespace vipvt::simd

#endif  // VIPVT_SIMD_HAVE_AVX512
