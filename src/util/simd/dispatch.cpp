// Runtime ISA dispatch (DESIGN.md §17): CPU probing, table selection, the
// VIPVT_SIMD override, and the Rng::normals_simd entry point that routes
// the bulk normal fill through the active table.

#include "util/simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/rng.hpp"

namespace vipvt::simd {

namespace {

#if defined(__x86_64__) || defined(_M_X64)
constexpr bool kX86 = true;
bool cpu_supports(const char* feature) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_cpu_init();
  if (std::strcmp(feature, "sse2") == 0) return __builtin_cpu_supports("sse2");
  if (std::strcmp(feature, "sse4.2") == 0)
    return __builtin_cpu_supports("sse4.2");
  if (std::strcmp(feature, "avx") == 0) return __builtin_cpu_supports("avx");
  if (std::strcmp(feature, "avx2") == 0) return __builtin_cpu_supports("avx2");
  if (std::strcmp(feature, "fma") == 0) return __builtin_cpu_supports("fma");
  if (std::strcmp(feature, "avx512f") == 0)
    return __builtin_cpu_supports("avx512f");
  if (std::strcmp(feature, "avx512dq") == 0)
    return __builtin_cpu_supports("avx512dq");
  if (std::strcmp(feature, "avx512bw") == 0)
    return __builtin_cpu_supports("avx512bw");
  if (std::strcmp(feature, "avx512vl") == 0)
    return __builtin_cpu_supports("avx512vl");
  return false;
#else
  (void)feature;
  return false;
#endif
}
#else
constexpr bool kX86 = false;
bool cpu_supports(const char*) { return false; }
#endif

const Kernels* table_for(Arch a) {
  switch (a) {
    case Arch::Scalar:
      return &kKernelsScalar;
    case Arch::Sse2:
#if defined(VIPVT_SIMD_HAVE_SSE2)
      if (cpu_supports("sse2")) return &kKernelsSse2;
#endif
      return nullptr;
    case Arch::Avx2:
#if defined(VIPVT_SIMD_HAVE_AVX2)
      if (cpu_supports("avx2")) return &kKernelsAvx2;
#endif
      return nullptr;
    case Arch::Avx512:
#if defined(VIPVT_SIMD_HAVE_AVX512)
      if (cpu_supports("avx512f") && cpu_supports("avx512dq"))
        return &kKernelsAvx512;
#endif
      return nullptr;
  }
  return nullptr;
}

Arch parse_arch_name(const char* s, Arch fallback) {
  if (s == nullptr) return fallback;
  if (std::strcmp(s, "scalar") == 0) return Arch::Scalar;
  if (std::strcmp(s, "sse2") == 0) return Arch::Sse2;
  if (std::strcmp(s, "avx2") == 0) return Arch::Avx2;
  if (std::strcmp(s, "avx512") == 0) return Arch::Avx512;
  return fallback;
}

Arch detect_default() {
  Arch best = Arch::Scalar;
  for (Arch a : {Arch::Sse2, Arch::Avx2, Arch::Avx512})
    if (table_for(a) != nullptr) best = a;
  // Env override (VIPVT_SIMD=scalar|sse2|avx2|avx512); an unavailable or
  // unknown request silently keeps the autodetected best — the contract
  // guarantees identical results either way.
  const Arch wanted = parse_arch_name(std::getenv("VIPVT_SIMD"), best);
  return table_for(wanted) != nullptr ? wanted : best;
}

struct Dispatch {
  Arch default_arch;
  std::atomic<int> active;
  Dispatch() : default_arch(detect_default()) {
    active.store(static_cast<int>(default_arch), std::memory_order_relaxed);
  }
};

Dispatch& state() {
  static Dispatch d;
  return d;
}

}  // namespace

const Kernels& active_kernels() {
  return *table_for(active_arch());
}

Arch active_arch() {
  return static_cast<Arch>(state().active.load(std::memory_order_relaxed));
}

const Kernels* kernels_for(Arch a) { return table_for(a); }

bool arch_available(Arch a) { return table_for(a) != nullptr; }

std::vector<Arch> available_archs() {
  std::vector<Arch> out;
  for (Arch a : {Arch::Scalar, Arch::Sse2, Arch::Avx2, Arch::Avx512})
    if (table_for(a) != nullptr) out.push_back(a);
  return out;
}

bool set_arch(Arch a) {
  if (table_for(a) == nullptr) return false;
  state().active.store(static_cast<int>(a), std::memory_order_relaxed);
  return true;
}

void reset_arch() {
  Dispatch& d = state();
  d.active.store(static_cast<int>(d.default_arch), std::memory_order_relaxed);
}

const char* arch_name(Arch a) {
  switch (a) {
    case Arch::Scalar:
      return "scalar";
    case Arch::Sse2:
      return "sse2";
    case Arch::Avx2:
      return "avx2";
    case Arch::Avx512:
      return "avx512";
  }
  return "unknown";
}

std::string cpu_features() {
  if (!kX86) return "non-x86";
  std::string out;
  for (const char* f : {"sse2", "sse4.2", "avx", "avx2", "fma", "avx512f",
                        "avx512dq", "avx512bw", "avx512vl"}) {
    if (cpu_supports(f)) {
      if (!out.empty()) out += ' ';
      out += f;
    }
  }
  return out.empty() ? "x86-64 (no probed features)" : out;
}

}  // namespace vipvt::simd

namespace vipvt {

// Defined here (not rng.cpp) so the Rng TU keeps its -ffast-math compile
// options away from anything feeding the dispatch-stable kernels.
void Rng::normals_simd(std::span<double> out) noexcept {
  // Like normals(), the two parent draws happen regardless of the request
  // size, keeping downstream streams length-independent.
  const std::uint64_t key_r = next();
  const std::uint64_t key_t = next();
  if (out.empty()) return;
  simd::active_kernels().normals_fill(key_r, key_t, out.data(), out.size());
}

}  // namespace vipvt
