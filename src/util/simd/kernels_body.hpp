#pragma once
// Width-agnostic kernel bodies for the SIMD dispatch layer (DESIGN.md §17).
//
// Every kernel is a template over a vec.hpp policy class; the per-ISA TUs
// (kernels_scalar.cpp / _sse2.cpp / _avx2.cpp / _avx512.cpp) instantiate
// these SAME bodies at their width, so the operation sequence — and with
// contraction disabled, the per-lane result bits — is defined once, here.
// Lanes beyond the last full vector chunk run the identical sequence
// through ScalarPolicy, which is also the W=1 reference instantiation.
//
// The relax/transform kernels mirror pre-existing scalar code exactly
// (StaEngine::relax_edges, DelayFactorTables::eval_row) and are therefore
// transparently dispatchable: swapping ISA never changes result bits.
// normals_fill_body is a NEW numeric path (own vector log/sincos instead of
// libm/libmvec) and is only reachable through DrawProfile::BatchedSimd.
//
// The vector log/sincos are double-precision Cephes evaluations
// (Moshier, netlib cephes/cmath: log.c, sin.c).  Their domains here are
// narrow — log on [2^-53, 1], sincos on [0, 2pi) — so the argument
// reduction needs no inf/nan/denormal handling and the quadrant logic can
// run entirely in doubles (no per-ISA 64-bit integer multiplies).

#include <cstddef>
#include <cstdint>

#include "util/rng.hpp"
#include "util/simd/kernels.hpp"
#include "util/simd/vec.hpp"

namespace vipvt::simd {

namespace cephes {
// log(1+x) rational P/Q on [sqrt(1/2)-1, sqrt(2)-1].
inline constexpr double kLogP[6] = {
    1.01875663804580931796e-4, 4.97494994976747001425e-1,
    4.70579119878881725854e0,  1.44989225341610930846e1,
    1.79368678507819816313e1,  7.70838733755885391666e0,
};
inline constexpr double kLogQ[5] = {
    // leading coefficient 1.0 implicit
    1.12873587189167450590e1, 4.52279145837532221105e1,
    8.29875266912776603211e1, 7.11544750618563894466e1,
    2.31251620126765340583e1,
};
inline constexpr double kSqrtHalf = 0.70710678118654752440;
// ln(2) split hi/lo with ln2 = kLn2Hi - kLn2Lo (note the subtraction).
inline constexpr double kLn2Hi = 0.693359375;
inline constexpr double kLn2Lo = 2.121944400546905827679e-4;

// sin/cos polynomials on [-pi/4, pi/4].
inline constexpr double kSinC[6] = {
    1.58962301576546568060e-10, -2.50507477628578072866e-8,
    2.75573136213857245213e-6,  -1.98412698295895385996e-4,
    8.33333333332211858878e-3,  -1.66666666666666307295e-1,
};
inline constexpr double kCosC[6] = {
    -1.13585365213876817300e-11, 2.08757008419747316778e-9,
    -2.75573141792967388112e-7,  2.48015872888517179954e-5,
    -1.38888888888730564116e-3,  4.16666666666665929218e-2,
};
// pi/4 split into three parts for extended-precision reduction.
inline constexpr double kDp1 = 7.85398125648498535156e-1;
inline constexpr double kDp2 = 3.77489470793079817668e-8;
inline constexpr double kDp3 = 2.69515142907905952645e-15;
inline constexpr double kFourOverPi = 1.27323954473516268615;
}  // namespace cephes

/// Natural log for x in [2^-53, 1] (no zero/negative/denormal/inf inputs).
/// Bit-identical across policies: frexp is done by bit surgery, the rest is
/// correctly-rounded arithmetic in a fixed order.
template <class P>
inline typename P::D v_log(typename P::D x) {
  using cephes::kLogP;
  using cephes::kLogQ;
  typename P::D e = P::sub(P::exp_bits(x), P::bcast(1022.0));
  typename P::D m = P::mant_half(x);  // in [0.5, 1)
  const typename P::M lo = P::lt(m, P::bcast(cephes::kSqrtHalf));
  e = P::sub(e, P::select(lo, P::bcast(1.0), P::bcast(0.0)));
  // m < sqrt(1/2): x = 2m - 1, else x = m - 1  (both exact)
  m = P::select(lo, P::sub(P::add(m, m), P::bcast(1.0)),
                P::sub(m, P::bcast(1.0)));
  const typename P::D z = P::mul(m, m);
  typename P::D p = P::bcast(kLogP[0]);
  for (int i = 1; i < 6; ++i) p = P::add(P::mul(p, m), P::bcast(kLogP[i]));
  typename P::D q = P::add(m, P::bcast(kLogQ[0]));
  for (int i = 1; i < 5; ++i) q = P::add(P::mul(q, m), P::bcast(kLogQ[i]));
  typename P::D y = P::mul(m, P::div(P::mul(z, p), q));
  y = P::sub(y, P::mul(e, P::bcast(cephes::kLn2Lo)));
  y = P::sub(y, P::mul(z, P::bcast(0.5)));
  typename P::D r = P::add(m, y);
  return P::add(r, P::mul(e, P::bcast(cephes::kLn2Hi)));
}

/// Simultaneous sin/cos for a in [0, 2pi).  Quadrant selection runs in
/// doubles: j = trunc(a*4/pi) rounded up to even, m = (j/2) mod 4 with the
/// j==8 wrap folding to m==0.
template <class P>
inline void v_sincos(typename P::D a, typename P::D& s, typename P::D& c) {
  using cephes::kCosC;
  using cephes::kSinC;
  typename P::D y = P::trunc_nonneg(P::mul(a, P::bcast(cephes::kFourOverPi)));
  // y += y & 1  (fold odd j to j+1): parity = y - 2*trunc(y/2)
  const typename P::D half = P::trunc_nonneg(P::mul(y, P::bcast(0.5)));
  y = P::add(y, P::sub(y, P::add(half, half)));
  // extended-precision x = a - y*pi/4
  typename P::D x = P::sub(a, P::mul(y, P::bcast(cephes::kDp1)));
  x = P::sub(x, P::mul(y, P::bcast(cephes::kDp2)));
  x = P::sub(x, P::mul(y, P::bcast(cephes::kDp3)));
  // quadrant m = (y/2) mod 4, exact small integers throughout
  const typename P::D kd = P::mul(y, P::bcast(0.5));
  const typename P::D m = P::sub(
      kd, P::mul(P::bcast(4.0), P::trunc_nonneg(P::mul(kd, P::bcast(0.25)))));
  const typename P::M m1 = P::eq(m, P::bcast(1.0));
  const typename P::M m2 = P::eq(m, P::bcast(2.0));
  const typename P::M m3 = P::eq(m, P::bcast(3.0));
  const typename P::D z = P::mul(x, x);
  typename P::D ps = P::bcast(kSinC[0]);
  for (int i = 1; i < 6; ++i) ps = P::add(P::mul(ps, z), P::bcast(kSinC[i]));
  ps = P::add(P::mul(P::mul(ps, z), x), x);  // sin(x) on [-pi/4, pi/4]
  typename P::D pc = P::bcast(kCosC[0]);
  for (int i = 1; i < 6; ++i) pc = P::add(P::mul(pc, z), P::bcast(kCosC[i]));
  pc = P::mul(P::mul(pc, z), z);
  pc = P::sub(pc, P::mul(z, P::bcast(0.5)));
  pc = P::add(pc, P::bcast(1.0));  // cos(x) on [-pi/4, pi/4]
  // sin(a): m=0 -> sin x, 1 -> cos x, 2 -> -sin x, 3 -> -cos x
  // cos(a): m=0 -> cos x, 1 -> -sin x, 2 -> -cos x, 3 -> sin x
  const typename P::M swap = P::mor(m1, m3);
  s = P::flipsign_if(P::select(swap, pc, ps), P::mor(m2, m3));
  c = P::flipsign_if(P::select(swap, ps, pc), P::mor(m1, m2));
}

/// Batched edge relaxation (StaEngine::analyze_batch_core hot loop):
/// reproduces `to[b] = std::max(to[b], from[b] + base [* f[b]])` — policy
/// max(cand, to) has exactly std::max(to, cand) semantics.
template <class P>
inline void relax_edges_body(const RelaxEdge* edges, std::size_t num_edges,
                             const double* factor_soa, double* arrival_soa,
                             std::size_t width) {
  using S = ScalarPolicy;
  for (std::size_t ei = 0; ei < num_edges; ++ei) {
    const RelaxEdge& e = edges[ei];
    const double base = static_cast<double>(e.base_delay);
    const double* __restrict from =
        arrival_soa + static_cast<std::size_t>(e.from) * width;
    double* __restrict to =
        arrival_soa + static_cast<std::size_t>(e.to) * width;
    std::size_t b = 0;
    if (e.inst == kInvalidRelaxInst) {
      const typename P::D vb = P::bcast(base);
      for (; b + P::W <= width; b += P::W)
        P::store(to + b, P::max(P::add(P::load(from + b), vb), P::load(to + b)));
      for (; b < width; ++b)
        to[b] = S::max(S::add(from[b], base), to[b]);
    } else {
      const double* __restrict f =
          factor_soa + static_cast<std::size_t>(e.inst) * width;
      const typename P::D vb = P::bcast(base);
      for (; b + P::W <= width; b += P::W)
        P::store(to + b, P::max(P::add(P::load(from + b),
                                       P::mul(vb, P::load(f + b))),
                                P::load(to + b)));
      for (; b < width; ++b)
        to[b] = S::max(S::add(from[b], S::mul(base, f[b])), to[b]);
    }
  }
}

/// Relaxation against per-edge precomputed delays (recorner path,
/// StaEngine::analyze_batch_bases): `to[b] = max(to[b], from[b] + d[b])`.
template <class P>
inline void relax_edges_delays_body(const RelaxEdge* edges,
                                    std::size_t num_edges,
                                    const double* delay_soa,
                                    double* arrival_soa, std::size_t width) {
  using S = ScalarPolicy;
  for (std::size_t ei = 0; ei < num_edges; ++ei) {
    const RelaxEdge& e = edges[ei];
    const double* __restrict from =
        arrival_soa + static_cast<std::size_t>(e.from) * width;
    double* __restrict to =
        arrival_soa + static_cast<std::size_t>(e.to) * width;
    const double* __restrict d = delay_soa + ei * width;
    std::size_t b = 0;
    for (; b + P::W <= width; b += P::W)
      P::store(to + b,
               P::max(P::add(P::load(from + b), P::load(d + b)),
                      P::load(to + b)));
    for (; b < width; ++b)
      to[b] = S::max(S::add(from[b], d[b]), to[b]);
  }
}

/// Batched DelayFactorTables row interpolation: reproduces
/// DelayFactorTables::eval_row (tables.hpp) lane-by-lane:
///   x = (lg - lo) * inv_step; clamp below at 0; j = trunc; clamp above;
///   t = lg - (lo + j*step); out = c[2j] + c[2j+1]*t
/// eps is lane-major [width x n] (stride n between lanes of one instance),
/// out is instance-major [n x width].
template <class P>
inline void draw_transform_body(const double* coef, std::int32_t row_stride,
                                double lo, double step, double inv_step,
                                std::int32_t intervals,
                                const std::int32_t* rows, const double* sys,
                                const double* eps, double* out, std::size_t n,
                                std::size_t width) {
  using S = ScalarPolicy;
  std::int32_t idx[P::W];  // eps lane offsets for the strided gather
  for (std::size_t k = 0; k < P::W; ++k)
    idx[k] = static_cast<std::int32_t>(k * n);
  const typename P::D vlo = P::bcast(lo);
  const typename P::D vstep = P::bcast(step);
  const typename P::D vinv = P::bcast(inv_step);
  const typename P::D vzero = P::bcast(0.0);
  const typename P::D vimax = P::bcast(static_cast<double>(intervals - 1));
  const double imax = static_cast<double>(intervals - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double* rc = coef + static_cast<std::size_t>(rows[i]) * row_stride;
    const typename P::D vsys = P::bcast(sys[i]);
    double* o = out + i * width;
    std::size_t l = 0;
    for (; l + P::W <= width; l += P::W) {
      const typename P::D lg = P::add(vsys, P::gather_idx(eps + l * n + i, idx));
      typename P::D x = P::mul(P::sub(lg, vlo), vinv);
      x = P::max(x, vzero);
      typename P::D jd = P::trunc_nonneg(x);
      jd = P::min(jd, vimax);
      const typename P::D t = P::sub(lg, P::add(vlo, P::mul(jd, vstep)));
      typename P::D c0, c1;
      P::gather_pair(rc, jd, c0, c1);
      P::store(o + l, P::add(c0, P::mul(c1, t)));
    }
    for (; l < width; ++l) {
      const double lg = S::add(sys[i], eps[l * n + i]);
      double x = S::mul(S::sub(lg, lo), inv_step);
      x = S::max(x, 0.0);
      double jd = S::trunc_nonneg(x);
      jd = S::min(jd, imax);
      const double t = S::sub(lg, S::add(lo, S::mul(jd, step)));
      double c0, c1;
      S::gather_pair(rc, jd, c0, c1);
      o[l] = S::add(c0, S::mul(c1, t));
    }
  }
}

/// Counter-driven bulk Box–Muller fill (Rng::normals_simd engine).  Mirrors
/// the block structure of Rng::normals (rng.cpp): fixed 128-pair blocks,
/// full-block padding for prefix stability, interleaved (cos, sin) output,
/// odd tail keeps only the cosine branch.  Counter generation stays scalar
/// (splitmix64 is cheap); the log/sqrt/sincos run through the policy, and
/// 128 % W == 0 for every policy so blocks never need a remainder lane.
template <class P>
inline void normals_fill_body(std::uint64_t key_r, std::uint64_t key_t,
                              double* out, std::size_t n) {
  constexpr std::size_t kBlock = 128;
  static_assert(kBlock % P::W == 0);
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  const std::size_t pairs = n / 2;          // full (cos, sin) pairs
  const std::size_t total = (n + 1) / 2;    // pairs incl. a possible odd tail
  alignas(64) double u1[kBlock], ang[kBlock], rad[kBlock];
  alignas(64) double zc[kBlock], zs[kBlock];
  for (std::size_t base = 0; base < total; base += kBlock) {
    for (std::size_t j = 0; j < kBlock; ++j) {
      const std::uint64_t i = static_cast<std::uint64_t>(base + j);
      // u1 in (0, 1]: 53-bit mantissa + 1, scaled by 2^-53
      u1[j] = (static_cast<double>(Rng::counter_bits(key_r, i) >> 11) + 1.0) *
              0x1.0p-53;
      ang[j] = kTwoPi * (static_cast<double>(Rng::counter_bits(key_t, i) >> 11) *
                         0x1.0p-53);
    }
    for (std::size_t j = 0; j < kBlock; j += P::W) {
      const typename P::D u = P::load(u1 + j);
      P::store(rad + j,
               P::sqrt(P::mul(P::bcast(-2.0), v_log<P>(u))));
      typename P::D s, c;
      v_sincos<P>(P::load(ang + j), s, c);
      P::store(zc + j, c);
      P::store(zs + j, s);
    }
    const std::size_t limit = pairs < base + kBlock ? pairs : base + kBlock;
    for (std::size_t p = base; p < limit; ++p) {
      out[2 * p] = rad[p - base] * zc[p - base];
      out[2 * p + 1] = rad[p - base] * zs[p - base];
    }
    if ((n & 1u) != 0 && total <= base + kBlock && total > base)
      out[n - 1] = rad[total - 1 - base] * zc[total - 1 - base];
  }
}

}  // namespace vipvt::simd
