#pragma once
// Kernel table for the runtime-dispatched SIMD layer (DESIGN.md §17).
//
// Each entry points at one of the three hot kernels compiled per-ISA
// (scalar / SSE2 / AVX2 / AVX-512) from the shared width-agnostic bodies in
// kernels_body.hpp.  Every variant is per-lane BIT-IDENTICAL to the scalar
// reference lane: the kernels use only IEEE-754 correctly-rounded operations
// (add/sub/mul/div/sqrt/max/min and exact conversions), the per-ISA TUs are
// compiled with -ffp-contract=off and never with -mfma, and any numeric path
// that intentionally differs must ship as a new versioned DrawProfile —
// never as a silent change (see mc_ssta.hpp).
//
// This header only declares the POD types and tables so that hot-path
// headers (timing/sta.hpp) can name them without pulling in dispatch state;
// use dispatch.hpp to obtain the active table.

#include <cstddef>
#include <cstdint>

namespace vipvt::simd {

/// Sentinel instance id for edges with a fixed (variation-free) delay.
/// Matches vipvt::kInvalidInst; sta.cpp static_asserts the equality.
inline constexpr std::uint32_t kInvalidRelaxInst = 0xffffffffu;

/// One timing edge in SoA relaxation form.  StaEngine aliases its internal
/// Edge to this type so edge arrays feed the kernels without conversion.
struct RelaxEdge {
  std::uint32_t from = 0;              // source node id
  std::uint32_t to = 0;                // destination node id
  std::uint32_t inst = kInvalidRelaxInst;  // owning instance, or sentinel
  float base_delay = 0.0f;             // nominal delay (ns)
};

/// Batched edge relaxation over an arrival SoA arena:
///   to[b] = max(to[b], from[b] + base * factor[inst][b])   (factored edges)
///   to[b] = max(to[b], from[b] + base)                     (fixed edges)
/// arrival_soa rows are node-major [num_nodes x width]; factor_soa rows are
/// instance-major [num_inst x width].
using RelaxEdgesFn = void (*)(const RelaxEdge* edges, std::size_t num_edges,
                              const double* factor_soa, double* arrival_soa,
                              std::size_t width);

/// Same relaxation against per-edge precomputed delays (recorner path):
///   to[b] = max(to[b], from[b] + delay_soa[edge][b])
/// delay_soa rows are edge-major [num_edges x width]; the caller folds
/// every lane's own base (and factor, 1.0 for fixed edges) into the row.
using RelaxEdgesDelaysFn = void (*)(const RelaxEdge* edges,
                                    std::size_t num_edges,
                                    const double* delay_soa,
                                    double* arrival_soa, std::size_t width);

/// Batched DelayFactorTables row interpolation (model draw transform):
/// for instance i, lane l:
///   lg = sys[i] + eps[l * n + i]              (eps is lane-major)
///   out[i * width + l] = eval_row(coef + rows[i] * row_stride, lg)
/// reproducing DelayFactorTables::eval_row bit-for-bit (tables.hpp).
using DrawTransformFn = void (*)(const double* coef, std::int32_t row_stride,
                                 double lo, double step, double inv_step,
                                 std::int32_t intervals,
                                 const std::int32_t* rows, const double* sys,
                                 const double* eps, double* out,
                                 std::size_t n, std::size_t width);

/// Counter-driven bulk Box–Muller fill for Rng::normals_simd: same block
/// structure as Rng::normals (128-pair blocks, prefix-stable), but the
/// log/sin/cos run through the layer's own vector math so the output bits
/// are identical across ISAs, compilers and build flags.
using NormalsFillFn = void (*)(std::uint64_t key_r, std::uint64_t key_t,
                               double* out, std::size_t n);

struct Kernels {
  RelaxEdgesFn relax_edges = nullptr;
  RelaxEdgesDelaysFn relax_edges_delays = nullptr;
  DrawTransformFn draw_transform = nullptr;
  NormalsFillFn normals_fill = nullptr;
};

// Per-ISA tables, defined in the matching kernels_<isa>.cpp TU.  The scalar
// table is always compiled; the others exist only when the build gates in
// src/util/CMakeLists.txt enabled their TU (VIPVT_SIMD_HAVE_*).
extern const Kernels kKernelsScalar;
#if defined(VIPVT_SIMD_HAVE_SSE2)
extern const Kernels kKernelsSse2;
#endif
#if defined(VIPVT_SIMD_HAVE_AVX2)
extern const Kernels kKernelsAvx2;
#endif
#if defined(VIPVT_SIMD_HAVE_AVX512)
extern const Kernels kKernelsAvx512;
#endif

}  // namespace vipvt::simd
