#pragma once
// Runtime ISA dispatch for the SIMD kernel layer (DESIGN.md §17).
//
// One binary carries every kernel table its build gates compiled
// (kernels.hpp); at first use the dispatcher probes the host CPU
// (__builtin_cpu_supports, which also checks OS XSAVE enablement) and
// selects the widest table that is both compiled in and supported:
//
//   Avx512 (avx512f && avx512dq)  >  Avx2  >  Sse2  >  Scalar
//
// Because every table is per-lane bit-identical, the selection is a pure
// performance choice — results never depend on it.  That invariant is what
// makes the two override mechanisms safe:
//
//   * env VIPVT_SIMD=scalar|sse2|avx2|avx512 pins the startup choice
//     (silently falling back to autodetect if unavailable), and
//   * set_arch()/reset_arch() flip the active table programmatically, which
//     is how tests and bench gates run EVERY compiled-in target against the
//     scalar reference lane in-process.
//
// set_arch affects kernels launched after it returns; it is not meant to be
// raced against in-flight kernel calls (benches/tests flip it only between
// runs).

#include <cstdint>
#include <string>
#include <vector>

#include "util/simd/kernels.hpp"

namespace vipvt::simd {

enum class Arch : int { Scalar = 0, Sse2 = 1, Avx2 = 2, Avx512 = 3 };

/// The currently active kernel table (autodetected on first use).
const Kernels& active_kernels();

/// The arch backing active_kernels().
Arch active_arch();

/// Table for a specific arch, or nullptr if not compiled in / not
/// supported by this CPU.  Lets tests compare targets without global state.
const Kernels* kernels_for(Arch a);

/// True if `a` is compiled in AND runnable on this CPU.
bool arch_available(Arch a);

/// Every available arch, narrowest (Scalar) first.
std::vector<Arch> available_archs();

/// Force the active table; returns false (and leaves the state untouched)
/// if the arch is unavailable.  reset_arch() restores autodetection
/// (including any VIPVT_SIMD override).
bool set_arch(Arch a);
void reset_arch();

/// Lower-case short name: "scalar", "sse2", "avx2", "avx512".
const char* arch_name(Arch a);

/// Space-separated host CPU feature list (bench provenance), e.g.
/// "sse2 sse4.2 avx avx2 fma avx512f avx512dq ...".  "non-x86" elsewhere.
std::string cpu_features();

}  // namespace vipvt::simd
