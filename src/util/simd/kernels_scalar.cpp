// Scalar (W=1) reference instantiation of the kernel bodies — the lane
// every other ISA table must match bit-for-bit (DESIGN.md §17).  Compiled
// with -ffp-contract=off like all kernel TUs so no FMA contraction can
// slip in even under -march overrides.

#include "util/simd/kernels.hpp"
#include "util/simd/kernels_body.hpp"
#include "util/simd/vec.hpp"

namespace vipvt::simd {
namespace {

using P = ScalarPolicy;

void relax(const RelaxEdge* edges, std::size_t num_edges,
           const double* factor_soa, double* arrival_soa, std::size_t width) {
  relax_edges_body<P>(edges, num_edges, factor_soa, arrival_soa, width);
}

void relax_delays(const RelaxEdge* edges, std::size_t num_edges,
                  const double* delay_soa, double* arrival_soa,
                  std::size_t width) {
  relax_edges_delays_body<P>(edges, num_edges, delay_soa, arrival_soa, width);
}

void transform(const double* coef, std::int32_t row_stride, double lo,
               double step, double inv_step, std::int32_t intervals,
               const std::int32_t* rows, const double* sys, const double* eps,
               double* out, std::size_t n, std::size_t width) {
  draw_transform_body<P>(coef, row_stride, lo, step, inv_step, intervals,
                         rows, sys, eps, out, n, width);
}

void normals(std::uint64_t key_r, std::uint64_t key_t, double* out,
             std::size_t n) {
  normals_fill_body<P>(key_r, key_t, out, n);
}

}  // namespace

const Kernels kKernelsScalar{&relax, &relax_delays, &transform, &normals};

}  // namespace vipvt::simd
