#pragma once
// Width-agnostic vector abstraction for the SIMD kernel layer
// (DESIGN.md §17).  Each policy class exposes the same static-op surface
// over one register width:
//
//   ScalarPolicy  W=1  plain double        (the reference lane, always built)
//   Sse2Policy    W=2  __m128d             (x86-64 baseline)
//   Avx2Policy    W=4  __m256d             (gated TU, -mavx2)
//   Avx512Policy  W=8  __m512d             (gated TU, -mavx512f -mavx512dq)
//
// Bit-identity contract: every op here is either an IEEE-754
// correctly-rounded operation (add/sub/mul/div/sqrt), an exact conversion /
// bit manipulation, or has explicitly pinned tie semantics:
//
//   max(a, b) == (a > b) ? a : b      min(a, b) == (a < b) ? a : b
//
// which is exactly the x86 MAXPD/MINPD definition with a as SRC1 — and also
// exactly std::max(b, a) — so the same kernel template instantiated at any
// width produces per-lane identical bits.  trunc_nonneg is exact for
// inputs in [0, 2^31).  Nothing here may introduce FMA contraction: the
// per-ISA TUs compile with -ffp-contract=off and never -mfma.
//
// The guarded policies only exist when the TU is compiled with the matching
// -m flags, so this header is safe to include from any TU.

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__SSE2__)
#include <immintrin.h>
#endif

namespace vipvt::simd {

namespace detail {
inline std::uint64_t bits_of(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}
inline double double_of(std::uint64_t u) {
  double x;
  std::memcpy(&x, &u, sizeof(x));
  return x;
}
}  // namespace detail

// Shared bit-manipulation constants (see exp_bits / mant_half below).
inline constexpr std::uint64_t kMantMask = 0x000FFFFFFFFFFFFFull;
inline constexpr std::uint64_t kHalfExp = 0x3FE0000000000000ull;   // 0.5 bits
inline constexpr std::uint64_t kMagic52 = 0x4330000000000000ull;   // 2^52 bits
inline constexpr std::uint64_t kSignBit = 0x8000000000000000ull;

// ---------------------------------------------------------------------------
// Scalar reference lane.  The other policies must match this lane bit-for-
// bit; it is also used for the width % W remainder inside every kernel.
// ---------------------------------------------------------------------------
struct ScalarPolicy {
  static constexpr std::size_t W = 1;
  using D = double;
  using M = bool;

  static D bcast(double v) { return v; }
  static D load(const double* p) { return *p; }
  static void store(double* p, D v) { *p = v; }
  static D add(D a, D b) { return a + b; }
  static D sub(D a, D b) { return a - b; }
  static D mul(D a, D b) { return a * b; }
  static D div(D a, D b) { return a / b; }
  static D sqrt(D a) { return __builtin_sqrt(a); }
  static D max(D a, D b) { return a > b ? a : b; }
  static D min(D a, D b) { return a < b ? a : b; }
  static M lt(D a, D b) { return a < b; }
  static M eq(D a, D b) { return a == b; }
  static M mor(M a, M b) { return a || b; }
  static D select(M m, D a, D b) { return m ? a : b; }
  static D flipsign_if(D x, M m) {
    return m ? detail::double_of(detail::bits_of(x) ^ kSignBit) : x;
  }
  /// double(int32(x)) — truncation toward zero, exact for x in [0, 2^31).
  static D trunc_nonneg(D x) {
    return static_cast<double>(static_cast<std::int32_t>(x));
  }
  /// double(bits(x) >> 52): the biased exponent (x positive normal).
  static D exp_bits(D x) {
    return static_cast<double>(detail::bits_of(x) >> 52);
  }
  /// x's mantissa re-biased into [0.5, 1) (frexp's fraction, x > 0 normal).
  static D mant_half(D x) {
    return detail::double_of((detail::bits_of(x) & kMantMask) | kHalfExp);
  }
  /// W doubles from base at byte offsets idx[k]*8 (idx precomputed).
  static D gather_idx(const double* base, const std::int32_t* idx) {
    return base[idx[0]];
  }
  /// rc[2j] and rc[2j+1] for the lane-wise integral j held in jd.
  static void gather_pair(const double* rc, D jd, D& c0, D& c1) {
    const std::int32_t j = static_cast<std::int32_t>(jd);
    c0 = rc[2 * j];
    c1 = rc[2 * j + 1];
  }
};

#if defined(__SSE2__)
struct Sse2Policy {
  static constexpr std::size_t W = 2;
  using D = __m128d;
  using M = __m128d;  // all-ones / all-zeros per lane

  static D bcast(double v) { return _mm_set1_pd(v); }
  static D load(const double* p) { return _mm_loadu_pd(p); }
  static void store(double* p, D v) { _mm_storeu_pd(p, v); }
  static D add(D a, D b) { return _mm_add_pd(a, b); }
  static D sub(D a, D b) { return _mm_sub_pd(a, b); }
  static D mul(D a, D b) { return _mm_mul_pd(a, b); }
  static D div(D a, D b) { return _mm_div_pd(a, b); }
  static D sqrt(D a) { return _mm_sqrt_pd(a); }
  static D max(D a, D b) { return _mm_max_pd(a, b); }
  static D min(D a, D b) { return _mm_min_pd(a, b); }
  static M lt(D a, D b) { return _mm_cmplt_pd(a, b); }
  static M eq(D a, D b) { return _mm_cmpeq_pd(a, b); }
  static M mor(M a, M b) { return _mm_or_pd(a, b); }
  static D select(M m, D a, D b) {
    return _mm_or_pd(_mm_and_pd(m, a), _mm_andnot_pd(m, b));
  }
  static D flipsign_if(D x, M m) {
    const D sign = _mm_castsi128_pd(_mm_set1_epi64x(
        static_cast<long long>(kSignBit)));
    return _mm_xor_pd(x, _mm_and_pd(m, sign));
  }
  static D trunc_nonneg(D x) {
    return _mm_cvtepi32_pd(_mm_cvttpd_epi32(x));
  }
  static D exp_bits(D x) {
    __m128i u = _mm_srli_epi64(_mm_castpd_si128(x), 52);
    // int->double via the 2^52 magic constant: OR the small integer into
    // the mantissa of 2^52, subtract 2^52 — exact for u < 2^52.
    u = _mm_or_si128(u, _mm_set1_epi64x(static_cast<long long>(kMagic52)));
    return _mm_sub_pd(_mm_castsi128_pd(u),
                      _mm_set1_pd(4503599627370496.0));  // 2^52
  }
  static D mant_half(D x) {
    __m128i u = _mm_castpd_si128(x);
    u = _mm_and_si128(u, _mm_set1_epi64x(static_cast<long long>(kMantMask)));
    u = _mm_or_si128(u, _mm_set1_epi64x(static_cast<long long>(kHalfExp)));
    return _mm_castsi128_pd(u);
  }
  static D gather_idx(const double* base, const std::int32_t* idx) {
    return _mm_set_pd(base[idx[1]], base[idx[0]]);
  }
  static void gather_pair(const double* rc, D jd, D& c0, D& c1) {
    const __m128i ji = _mm_cvttpd_epi32(jd);
    const std::int32_t j0 = _mm_cvtsi128_si32(ji);
    const std::int32_t j1 = _mm_cvtsi128_si32(_mm_shuffle_epi32(ji, 0x55));
    c0 = _mm_set_pd(rc[2 * j1], rc[2 * j0]);
    c1 = _mm_set_pd(rc[2 * j1 + 1], rc[2 * j0 + 1]);
  }
};
#endif  // __SSE2__

#if defined(__AVX2__)
struct Avx2Policy {
  static constexpr std::size_t W = 4;
  using D = __m256d;
  using M = __m256d;

  static D bcast(double v) { return _mm256_set1_pd(v); }
  static D load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, D v) { _mm256_storeu_pd(p, v); }
  static D add(D a, D b) { return _mm256_add_pd(a, b); }
  static D sub(D a, D b) { return _mm256_sub_pd(a, b); }
  static D mul(D a, D b) { return _mm256_mul_pd(a, b); }
  static D div(D a, D b) { return _mm256_div_pd(a, b); }
  static D sqrt(D a) { return _mm256_sqrt_pd(a); }
  static D max(D a, D b) { return _mm256_max_pd(a, b); }
  static D min(D a, D b) { return _mm256_min_pd(a, b); }
  static M lt(D a, D b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static M eq(D a, D b) { return _mm256_cmp_pd(a, b, _CMP_EQ_OQ); }
  static M mor(M a, M b) { return _mm256_or_pd(a, b); }
  static D select(M m, D a, D b) { return _mm256_blendv_pd(b, a, m); }
  static D flipsign_if(D x, M m) {
    const D sign = _mm256_castsi256_pd(_mm256_set1_epi64x(
        static_cast<long long>(kSignBit)));
    return _mm256_xor_pd(x, _mm256_and_pd(m, sign));
  }
  static D trunc_nonneg(D x) {
    return _mm256_cvtepi32_pd(_mm256_cvttpd_epi32(x));
  }
  static D exp_bits(D x) {
    __m256i u = _mm256_srli_epi64(_mm256_castpd_si256(x), 52);
    u = _mm256_or_si256(u,
                        _mm256_set1_epi64x(static_cast<long long>(kMagic52)));
    return _mm256_sub_pd(_mm256_castsi256_pd(u),
                         _mm256_set1_pd(4503599627370496.0));
  }
  static D mant_half(D x) {
    __m256i u = _mm256_castpd_si256(x);
    u = _mm256_and_si256(u,
                         _mm256_set1_epi64x(static_cast<long long>(kMantMask)));
    u = _mm256_or_si256(u,
                        _mm256_set1_epi64x(static_cast<long long>(kHalfExp)));
    return _mm256_castsi256_pd(u);
  }
  static D gather_idx(const double* base, const std::int32_t* idx) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    return _mm256_i32gather_pd(base, vi, 8);
  }
  static void gather_pair(const double* rc, D jd, D& c0, D& c1) {
    const __m128i ji = _mm256_cvttpd_epi32(jd);
    const __m128i j2 = _mm_add_epi32(ji, ji);
    c0 = _mm256_i32gather_pd(rc, j2, 8);
    c1 = _mm256_i32gather_pd(rc, _mm_add_epi32(j2, _mm_set1_epi32(1)), 8);
  }
};
#endif  // __AVX2__

#if defined(__AVX512F__) && defined(__AVX512DQ__)
struct Avx512Policy {
  static constexpr std::size_t W = 8;
  using D = __m512d;
  using M = __mmask8;

  static D bcast(double v) { return _mm512_set1_pd(v); }
  static D load(const double* p) { return _mm512_loadu_pd(p); }
  static void store(double* p, D v) { _mm512_storeu_pd(p, v); }
  static D add(D a, D b) { return _mm512_add_pd(a, b); }
  static D sub(D a, D b) { return _mm512_sub_pd(a, b); }
  static D mul(D a, D b) { return _mm512_mul_pd(a, b); }
  static D div(D a, D b) { return _mm512_div_pd(a, b); }
  static D sqrt(D a) { return _mm512_sqrt_pd(a); }
  // VMAXPD/VMINPD keep the x86 SRC1/SRC2 tie rules: (a>b)?a:b, (a<b)?a:b.
  static D max(D a, D b) { return _mm512_max_pd(a, b); }
  static D min(D a, D b) { return _mm512_min_pd(a, b); }
  static M lt(D a, D b) { return _mm512_cmp_pd_mask(a, b, _CMP_LT_OQ); }
  static M eq(D a, D b) { return _mm512_cmp_pd_mask(a, b, _CMP_EQ_OQ); }
  static M mor(M a, M b) { return static_cast<M>(a | b); }
  static D select(M m, D a, D b) { return _mm512_mask_blend_pd(m, b, a); }
  static D flipsign_if(D x, M m) {
    const __m512i sign = _mm512_set1_epi64(static_cast<long long>(kSignBit));
    const __m512i xi = _mm512_castpd_si512(x);
    return _mm512_castsi512_pd(_mm512_mask_xor_epi64(xi, m, xi, sign));
  }
  static D trunc_nonneg(D x) {
    return _mm512_cvtepi32_pd(_mm512_cvttpd_epi32(x));
  }
  static D exp_bits(D x) {
    __m512i u = _mm512_srli_epi64(_mm512_castpd_si512(x), 52);
    u = _mm512_or_si512(u,
                        _mm512_set1_epi64(static_cast<long long>(kMagic52)));
    return _mm512_sub_pd(_mm512_castsi512_pd(u),
                         _mm512_set1_pd(4503599627370496.0));
  }
  static D mant_half(D x) {
    __m512i u = _mm512_castpd_si512(x);
    u = _mm512_and_si512(u,
                         _mm512_set1_epi64(static_cast<long long>(kMantMask)));
    u = _mm512_or_si512(u,
                        _mm512_set1_epi64(static_cast<long long>(kHalfExp)));
    return _mm512_castsi512_pd(u);
  }
  static D gather_idx(const double* base, const std::int32_t* idx) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return _mm512_i32gather_pd(vi, base, 8);
  }
  static void gather_pair(const double* rc, D jd, D& c0, D& c1) {
    const __m256i ji = _mm512_cvttpd_epi32(jd);
    const __m256i j2 = _mm256_add_epi32(ji, ji);
    c0 = _mm512_i32gather_pd(j2, rc, 8);
    c1 = _mm512_i32gather_pd(_mm256_add_epi32(j2, _mm256_set1_epi32(1)), rc,
                             8);
  }
};
#endif  // __AVX512F__ && __AVX512DQ__

}  // namespace vipvt::simd
