#pragma once
// ASCII table renderer used by the benchmark harnesses to print the
// paper's tables/figures in a stable, diffable format.

#include <cstddef>
#include <string>
#include <vector>

namespace vipvt {

/// Column-aligned plain-text table.  Numeric formatting is up to the
/// caller (use Table::num for a consistent fixed-precision rendering).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Fixed-precision number formatting helper.
  static std::string num(double v, int precision = 3);
  /// Percentage rendering: 0.0835 -> "8.35%".
  static std::string pct(double fraction, int precision = 2);

  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vipvt
