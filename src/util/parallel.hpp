#pragma once
// General-purpose parallel job runtime for batch workloads (wafer-scale
// yield analysis, and later the Monte-Carlo SSTA inner loop itself).
//
// Design constraints, in order:
//
//  1. *Determinism under parallelism.*  Results must be bit-identical
//     regardless of thread count — the repo's reproducibility contract
//     (see util/rng.hpp) extends to parallel runs.  The runtime therefore
//     never imposes an ordering on results: callers write into
//     per-index slots and seed per-index RNG sub-streams with
//     substream_seed(), so the schedule (which thread ran which index,
//     and when) cannot leak into the output.
//
//  2. *Worker-local mutable state.*  The hot engines (StaEngine) use
//     mutable scratch and per-corner base delays, so workers cannot share
//     one instance.  parallel_for takes a state factory invoked once per
//     participating worker; the body receives that worker's state by
//     reference.
//
//  3. *No allocation in the steady state.*  The pool is fixed-size;
//     chunks are handed out by a single atomic counter.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace vipvt {

/// Fixed-size thread pool.  Threads are launched at construction and
/// joined at destruction; jobs are type-erased closures.
class ThreadPool {
 public:
  /// `threads` == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue one fire-and-forget job.  Exceptions escaping the job
  /// terminate (jobs are expected to capture their own failures); use
  /// run_on_workers() for the rethrowing structured form.
  void submit(std::function<void()> job);

  /// Run fn(slot) for slot in [0, count) concurrently on the pool and
  /// block until all invocations return.  The first exception thrown by
  /// any invocation is rethrown here (the remaining slots still run to
  /// completion, so the pool stays in a clean state).
  void run_on_workers(unsigned count, const std::function<void(unsigned)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

/// parallel_for with worker-local state: `make_state()` is called once
/// per participating worker (at most min(pool.size(), n) times) and
/// `body(state, i)` exactly once for every i in [0, n), in unspecified
/// order.  Deterministic output is the CALLER's job: write results into
/// slot i and derive any randomness from i (substream_seed), never from
/// the schedule.  Runs inline (single state, ascending order) when the
/// pool has one thread or n <= 1.
/// parallel_for with an explicit self-scheduling grain: workers claim
/// `grain` consecutive indices per atomic fetch.  parallel_for picks a
/// throughput-oriented grain automatically; parallel_jobs pins it to 1
/// for heterogeneous job queues.  Same contract otherwise: make_state()
/// once per participating worker, body(state, i) exactly once per index,
/// unspecified order, inline when the pool has one thread or n <= 1.
template <typename StateFactory, typename Body>
void parallel_for_grained(ThreadPool& pool, std::size_t n, std::size_t grain,
                          StateFactory&& make_state, Body&& body) {
  if (n == 0) return;
  const auto workers =
      static_cast<unsigned>(std::min<std::size_t>(pool.size(), n));
  if (workers <= 1) {
    auto state = make_state();
    for (std::size_t i = 0; i < n; ++i) body(state, i);
    return;
  }
  const std::size_t chunk = std::max<std::size_t>(1, grain);
  std::atomic<std::size_t> next{0};
  pool.run_on_workers(workers, [&](unsigned) {
    auto state = make_state();
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = std::min(n, begin + chunk);
      for (std::size_t i = begin; i < end; ++i) body(state, i);
    }
  });
}

template <typename StateFactory, typename Body>
void parallel_for(ThreadPool& pool, std::size_t n, StateFactory&& make_state,
                  Body&& body) {
  // Dynamic chunking: small enough to balance skewed per-item cost (a
  // discarded die escalates through every corner config), large enough
  // that the atomic is not contended.
  const auto workers =
      std::max<std::size_t>(1, std::min<std::size_t>(pool.size(), n));
  parallel_for_grained(pool, n, n / (8 * workers),
                       std::forward<StateFactory>(make_state),
                       std::forward<Body>(body));
}

/// Self-scheduling job queue for HETEROGENEOUS batch jobs: grain 1, so a
/// worker pulls the next job the moment it finishes the last one.  This
/// is the campaign scheduler's shape — wafer-shard jobs differ in cost
/// by orders of magnitude across sweep cells (per-die MC budget, wafer
/// geometry, escalation mix), so the contiguous chunks parallel_for
/// hands out would strand the tail of a sweep on one worker.  Same
/// determinism stance as parallel_for: the schedule must not leak into
/// the output; callers write into per-job slots and derive randomness
/// from the job index alone.
template <typename StateFactory, typename Body>
void parallel_jobs(ThreadPool& pool, std::size_t n, StateFactory&& make_state,
                   Body&& body) {
  parallel_for_grained(pool, n, 1, std::forward<StateFactory>(make_state),
                       std::forward<Body>(body));
}

/// Stateless parallel_for: body(i) exactly once per index, unspecified
/// order.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t n, Body&& body) {
  parallel_for(
      pool, n, [] { return 0; },
      [&body](int&, std::size_t i) { body(i); });
}

}  // namespace vipvt
