#pragma once
// Statistics toolkit for Monte-Carlo SSTA post-processing: running moments,
// histogramming, normal-distribution fitting and the chi-squared
// goodness-of-fit test the paper uses to validate normality of per-stage
// critical-path distributions (95 % confidence).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace vipvt {

/// Welford-style single-pass accumulator for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so mass is never lost (matters for chi-squared bin counts).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double bin_center(std::size_t i) const;

  /// Normalised density of bin i (integrates to ~1 over the range).
  double density(std::size_t i) const;

  /// Render a horizontal ASCII bar chart (for bench/figure output).
  std::string ascii(std::size_t max_width = 60) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Standard normal CDF.
double normal_cdf(double z);
/// CDF of N(mean, stddev^2) at x.
double normal_cdf(double x, double mean, double stddev);
/// Standard normal PDF.
double normal_pdf(double z);
/// Inverse standard normal CDF (Acklam's rational approximation,
/// refined with one Halley step; |error| < 1e-12 over (0,1)).
double normal_quantile(double p);

/// Regularised upper incomplete gamma Q(a, x) — used for the chi-squared
/// survival function.
double gamma_q(double a, double x);
/// Chi-squared survival function P(X >= x) with k degrees of freedom.
double chi_squared_sf(double x, double k);

/// Result of fitting samples to a normal distribution and testing the fit.
struct NormalFit {
  double mean = 0.0;
  double stddev = 0.0;
  double chi2 = 0.0;        ///< chi-squared statistic over the test bins
  double dof = 0.0;         ///< degrees of freedom (bins - 1 - 2 params)
  double p_value = 1.0;     ///< survival probability of the statistic
  bool accepted = false;    ///< true if fit not rejected at `confidence`
  std::size_t bins_used = 0;
};

/// Fit samples to a normal and run a chi-squared goodness-of-fit test at
/// the given confidence level (paper: 0.95).  Bins with small expected
/// counts are pooled into their neighbours, the standard practice for the
/// test's validity.
NormalFit fit_normal(std::span<const double> samples, double confidence = 0.95);

/// p-th percentile (p in [0,1]) by linear interpolation of the sorted data.
double percentile(std::vector<double> samples, double p);

}  // namespace vipvt
