#pragma once
// Statistics toolkit for Monte-Carlo SSTA post-processing: running moments,
// histogramming, normal-distribution fitting and the chi-squared
// goodness-of-fit test the paper uses to validate normality of per-stage
// critical-path distributions (95 % confidence).

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace vipvt {

/// Welford-style single-pass accumulator for mean / variance / extrema.
/// This is the incremental backbone of the adaptive sequential-sampling
/// stopping rule (DESIGN.md §14): per-round confidence-interval checks
/// extend one accumulator per pipeline stage with ONLY the new round's
/// samples instead of re-fitting from scratch over everything drawn so
/// far (tests/test_util_stats.cpp proves the incremental moments match a
/// two-pass batch computation to ulp-scale tolerance).
class RunningStats {
 public:
  void add(double x);
  /// Extend with a whole span (per-round convenience; equivalent to
  /// add() per element, in order).
  void add(std::span<const double> xs);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Order- AND partition-invariant mergeable moment accumulator: the
/// campaign layer's cross-shard streaming reducer (DESIGN.md §15).
/// RunningStats::merge is ulp-accurate but NOT invariant to how a sample
/// set is split — the shape of the merge tree steers the floating-point
/// rounding — which would break the campaign contract that the final
/// report is byte-identical for any shard size.  ExactMoments instead
/// quantizes each sample to a 2^-20 fixed-point grid and accumulates
/// exact 128-bit integer sums of q and q², plus exact min/max, so add()
/// and merge() are fully commutative and associative: ANY partition of a
/// sample set, merged in any order or tree shape, reproduces the
/// single-pass accumulator bit-for-bit (tests/test_util_stats.cpp).
///
/// The price is the quantization: mean/variance are those of the
/// quantized samples (|mean error| <= 2^-21 absolute — fine for the
/// mW / GHz / ns-scale metrics it aggregates; not a general-purpose
/// statistic).  Exactness domain: |x| <= 2^20 (~1.05e6); larger finite
/// magnitudes saturate the per-sample quantizer deterministically (the
/// invariance properties survive, the moments are then clamped), and NaN
/// samples deterministically count as 0.0.  Sums stay exact past 2^40
/// samples at the saturation bound.
class ExactMoments {
 public:
  void add(double x);
  void merge(const ExactMoments& other);

  std::size_t count() const { return static_cast<std::size_t>(n_); }
  double mean() const;
  /// Unbiased sample variance of the quantized samples (n-1 denominator);
  /// 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Exact serializable state: from_state(state()) reproduces the
  /// accumulator bit-for-bit (the campaign checkpoint records round-trip
  /// through this).  min/max travel as IEEE-754 bit patterns.
  struct State {
    std::uint64_t n = 0;
    std::int64_t sum_hi = 0;
    std::uint64_t sum_lo = 0;
    std::int64_t sumsq_hi = 0;
    std::uint64_t sumsq_lo = 0;
    std::uint64_t min_bits = 0;
    std::uint64_t max_bits = 0;
    bool operator==(const State&) const = default;
  };
  State state() const;
  static ExactMoments from_state(const State& s);

  bool operator==(const ExactMoments& other) const {
    return state() == other.state();
  }

  /// Fixed-point resolution of the quantizer (2^-20 ~ 1e-6).
  static constexpr int kFracBits = 20;

 private:
  __int128 sum_ = 0;    ///< Σ quantize(x)
  __int128 sumsq_ = 0;  ///< Σ quantize(x)²
  std::uint64_t n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so mass is never lost (matters for chi-squared bin counts).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double bin_center(std::size_t i) const;

  /// Normalised density of bin i (integrates to ~1 over the range).
  double density(std::size_t i) const;

  /// Render a horizontal ASCII bar chart (for bench/figure output).
  std::string ascii(std::size_t max_width = 60) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Standard normal CDF.
double normal_cdf(double z);
/// CDF of N(mean, stddev^2) at x.
double normal_cdf(double x, double mean, double stddev);
/// Standard normal PDF.
double normal_pdf(double z);
/// Inverse standard normal CDF (Acklam's rational approximation,
/// refined with one Halley step; |error| < 1e-12 over (0,1)).
double normal_quantile(double p);

/// Regularised upper incomplete gamma Q(a, x) — used for the chi-squared
/// survival function.
double gamma_q(double a, double x);
/// Chi-squared survival function P(X >= x) with k degrees of freedom.
double chi_squared_sf(double x, double k);
/// Chi-squared quantile: the x with CDF(x; k) == p, p in (0,1), k > 0.
/// (Monotone bracketed bisection on 1 - chi_squared_sf; throws
/// std::domain_error outside the domain.)
double chi_squared_quantile(double p, double k);

/// Student-t CDF with `dof` degrees of freedom (via the regularised
/// incomplete beta function; any real dof > 0).
double student_t_cdf(double t, double dof);
/// Student-t quantile: the t with CDF(t; dof) == p, p in (0,1).
double student_t_quantile(double p, double dof);

// ---- confidence intervals for normal-sample moments -----------------------
//
// The adaptive sequential-sampling stopping rule (DESIGN.md §14) watches
// these two intervals per pipeline stage and stops the Monte-Carlo run
// when both half-widths meet their targets.  Degenerate inputs follow
// the fit_normal hardening conventions: they report rather than throw.

/// A two-sided interval.  half_width() is the stopping-rule metric.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  double half_width() const { return 0.5 * (hi - lo); }
};

/// Two-sided CI on the mean of a normal sample at `confidence`
/// (Student-t):  mean ± t_{(1+c)/2, n-1} · s/√n.
///   n < 2            → infinite interval (nothing is known yet);
///   stddev == 0      → zero-width interval at the point estimate;
///   NaN mean/stddev  → NaN interval (never satisfies a target).
/// Throws std::domain_error for confidence outside (0,1).
Interval mean_confidence_interval(std::size_t n, double mean, double stddev,
                                  double confidence = 0.95);

/// Two-sided CI on the standard deviation at `confidence` (the χ²
/// interval):  [ s·√((n−1)/χ²_{(1+c)/2}), s·√((n−1)/χ²_{(1−c)/2}) ].
/// Degenerate handling mirrors mean_confidence_interval (n < 2 → [0, ∞)).
Interval stddev_confidence_interval(std::size_t n, double stddev,
                                    double confidence = 0.95);

/// Result of fitting samples to a normal distribution and testing the fit.
struct NormalFit {
  double mean = 0.0;
  double stddev = 0.0;
  double chi2 = 0.0;        ///< chi-squared statistic over the test bins
  double dof = 0.0;         ///< degrees of freedom (bins - 1 - 2 params)
  double p_value = 1.0;     ///< survival probability of the statistic
  bool accepted = false;    ///< true if fit not rejected at `confidence`
  std::size_t bins_used = 0;
};

/// Fit samples to a normal and run a chi-squared goodness-of-fit test at
/// the given confidence level (paper: 0.95).  Bins with small expected
/// counts are pooled into their neighbours, the standard practice for the
/// test's validity.
NormalFit fit_normal(std::span<const double> samples, double confidence = 0.95);

/// p-th percentile (p in [0,1]) by linear interpolation of the sorted data.
double percentile(std::vector<double> samples, double p);

}  // namespace vipvt
