// Bulk normal generation for the batched draw profile.  This file is
// compiled with vector-math options (see CMakeLists.txt) so the
// log/sin/cos of the Box-Muller transform auto-vectorize through libmvec
// — the difference between the draw dominating the Monte-Carlo hot loop
// and disappearing into it.
//
// The fill works in fixed 128-pair blocks held in struct-of-arrays stack
// buffers: uniforms, then radii, then cos, then sin, each as its own
// dense loop over the FULL block even when the tail of the request needs
// fewer pairs.  Padding the last block is what preserves the prefix-
// stability contract of Rng::normals under vectorization: counter k is
// always evaluated at block k/128, lane k%128, so whether k is near a
// request boundary cannot change which code path (vector body vs scalar
// remainder) computes it.

#include "util/rng.hpp"

#include <algorithm>

namespace vipvt {

void Rng::normals(std::span<double> out) noexcept {
  const std::uint64_t key_r = next();
  const std::uint64_t key_t = next();
  const std::size_t n = out.size();
  const std::size_t pairs = n / 2;
  const std::size_t total_pairs = (n + 1) / 2;  // incl. the odd-tail pair

  constexpr std::size_t kBlock = 128;
  double u1[kBlock], ang[kBlock], rad[kBlock], zc[kBlock], zs[kBlock];
  constexpr double kTwoPi = 2.0 * std::numbers::pi;

  for (std::size_t base = 0; base < total_pairs; base += kBlock) {
    for (std::size_t j = 0; j < kBlock; ++j) {
      // u1 in (0, 1] (the +1 before scaling) so log(u1) is finite;
      // u2 in [0, 1).
      u1[j] = (static_cast<double>(counter_bits(key_r, base + j) >> 11) + 1.0) *
              0x1.0p-53;
      ang[j] = kTwoPi * (static_cast<double>(counter_bits(key_t, base + j) >> 11) *
                         0x1.0p-53);
    }
    for (std::size_t j = 0; j < kBlock; ++j) {
      rad[j] = std::sqrt(-2.0 * std::log(u1[j]));
    }
    for (std::size_t j = 0; j < kBlock; ++j) zc[j] = std::cos(ang[j]);
    for (std::size_t j = 0; j < kBlock; ++j) zs[j] = std::sin(ang[j]);

    const std::size_t m = base < pairs ? std::min(kBlock, pairs - base) : 0;
    for (std::size_t j = 0; j < m; ++j) {
      out[2 * (base + j)] = rad[j] * zc[j];
      out[2 * (base + j) + 1] = rad[j] * zs[j];
    }
    if ((n & 1) != 0 && base <= pairs && pairs < base + kBlock) {
      out[n - 1] = rad[pairs - base] * zc[pairs - base];
    }
  }
}

}  // namespace vipvt
