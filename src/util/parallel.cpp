#include "util/parallel.hpp"

#include <exception>

namespace vipvt {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::run_on_workers(unsigned count,
                                const std::function<void(unsigned)>& fn) {
  if (count == 0) return;
  struct Barrier {
    std::mutex mu;
    std::condition_variable done;
    unsigned remaining;
    std::exception_ptr error;
  } barrier{.mu = {}, .done = {}, .remaining = count, .error = nullptr};

  for (unsigned slot = 0; slot < count; ++slot) {
    submit([&barrier, &fn, slot] {
      std::exception_ptr err;
      try {
        fn(slot);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard lock(barrier.mu);
      if (err && !barrier.error) barrier.error = err;
      if (--barrier.remaining == 0) barrier.done.notify_all();
    });
  }
  std::unique_lock lock(barrier.mu);
  barrier.done.wait(lock, [&barrier] { return barrier.remaining == 0; });
  if (barrier.error) std::rethrow_exception(barrier.error);
}

}  // namespace vipvt
