#pragma once
// Deterministic, seedable pseudo-random number generation for Monte-Carlo
// SSTA and workload stimulus.  We carry our own generator (xoshiro256++)
// rather than <random> engines so that results are bit-identical across
// standard-library implementations — reproducibility of the Monte-Carlo
// experiments is part of the methodology contract.

#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>

namespace vipvt {

/// splitmix64: used to expand a single 64-bit seed into the 256-bit
/// xoshiro state.  Also usable standalone for cheap hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Seed for item `index` of a batch job keyed by `key`: two full
/// splitmix64 rounds over (key, index) so that consecutive indices — the
/// common case for per-die / per-sample sub-streams — land on unrelated
/// seeds.  This is the determinism-under-parallelism primitive: a worker
/// processing item i seeds Rng{substream_seed(job_seed, i)}, which makes
/// the item's random stream a function of the item alone, never of the
/// thread schedule.
constexpr std::uint64_t substream_seed(std::uint64_t key,
                                       std::uint64_t index) noexcept {
  std::uint64_t sm = key;
  const std::uint64_t a = splitmix64(sm);
  sm ^= index * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL;
  const std::uint64_t b = splitmix64(sm);
  return splitmix64(sm) ^ a ^ (b << 1);
}

/// xoshiro256++ PRNG (Blackman & Vigna).  Not cryptographic; excellent
/// statistical quality and very fast, which matters when every gate of a
/// 50k-instance netlist draws its own Lgate sample per Monte-Carlo run.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (cached second deviate).
  double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * f;
    has_cached_ = true;
    return u * f;
  }

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Fill `out` with i.i.d. standard-normal deviates.  This is the bulk
  /// generator of the batched draw profile: counter-driven Box-Muller
  /// instead of the polar method — no rejection loop, no cached-deviate
  /// state, one fixed-work iteration per output pair.  Exactly TWO parent
  /// next() calls are consumed regardless of out.size(): they key two
  /// splitmix64-finalized counter streams that supply the uniforms.
  /// Consequences relied on by callers (and pinned in test_util_rng):
  ///   * out[i] depends only on (parent state at entry, i) — prefixes are
  ///     stable, so normals(m) is a prefix of normals(n) for m <= n;
  ///   * an odd-length fill drops the second deviate of the last pair.
  /// Defined in rng.cpp: the fill evaluates fixed-size blocks in
  /// struct-of-arrays form and that file is compiled with vector-math
  /// flags, so log/sin/cos run 2-4 lanes wide through libmvec.  Every
  /// counter position is always evaluated at the same block/lane slot,
  /// which is what keeps prefixes bit-stable under vectorization.
  void normals(std::span<double> out) noexcept;

  /// Like normals(), but the Box-Muller log/sin/cos run through the SIMD
  /// kernel layer's own vector math (DESIGN.md §17) instead of libm /
  /// libmvec.  Same contract — exactly two parent next() calls, counter-
  /// driven prefix-stable output, odd tails drop the second deviate — but
  /// a DIFFERENT stream than normals(): normals() bits depend on the host
  /// libm build, while this stream is bit-identical across ISAs, compilers
  /// and build flags, because every dispatch target instantiates the same
  /// kernel body with contraction disabled.  Reachable through
  /// DrawProfile::BatchedSimd; never substituted silently.  Defined in
  /// simd/dispatch.cpp.
  void normals_simd(std::span<double> out) noexcept;

  /// Derive an independent child generator (for per-sample streams).
  /// The child's 256-bit state is built from a fresh splitmix64 stream
  /// keyed by TWO parent draws, not from a single XOR-perturbed draw:
  /// one draw only decorrelates the child from the parent's *next*
  /// output, while siblings forked in sequence would sit on nearby
  /// splitmix inputs.  Two draws give 128 bits of fork identity, fully
  /// re-expanded, so parent/child and sibling/sibling streams are
  /// statistically independent (regression-tested in test_util_rng).
  Rng fork() noexcept {
    const std::uint64_t hi = next();
    const std::uint64_t lo = next();
    Rng child{};
    std::uint64_t sm = hi;
    child.state_[0] = splitmix64(sm);
    child.state_[1] = splitmix64(sm);
    sm ^= lo * 0x9e3779b97f4a7c15ULL;
    child.state_[2] = splitmix64(sm);
    child.state_[3] = splitmix64(sm);
    return child;
  }

  /// Stateless uniform bits for counter `i` of the stream keyed by `key`:
  /// the splitmix64 finalizer over key + i*golden — the same spacing
  /// splitmix64 itself uses, evaluated at a random offset instead of
  /// sequentially, which is what makes the generator counter-driven.
  /// Public because the SIMD normal-fill kernels (util/simd) and their
  /// tests consume the same counter streams.
  static constexpr std::uint64_t counter_bits(std::uint64_t key,
                                              std::uint64_t i) noexcept {
    std::uint64_t s = key + i * 0x9e3779b97f4a7c15ULL;
    return splitmix64(s);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace vipvt
