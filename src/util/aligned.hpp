#pragma once
// Cache-line-aligned allocation for the SoA hot-loop arenas.  The batched
// propagation and draw kernels issue 32/64-byte vector loads over rows of
// these arenas (DESIGN.md §17); a 64-byte arena base guarantees a width-8
// double row never splits a cache line regardless of the dispatch width.
// Alignment is a pure performance property — values and layout are
// byte-identical to the default allocator's.

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace vipvt {

template <class T, std::size_t Align = 64>
class AlignedAllocator {
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");
  static_assert(Align >= alignof(T), "alignment below the type's own");

 public:
  using value_type = T;
  static constexpr std::align_val_t kAlign{Align};

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, kAlign);
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// 64-byte-aligned vector: drop-in for std::vector<T> in the SoA arenas
/// (implicitly convertible to std::span<T> like any contiguous range).
template <class T>
using AlignedVec = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace vipvt
