#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numbers>
#include <sstream>
#include <stdexcept>

namespace vipvt {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::add(std::span<const double> xs) {
  for (double x : xs) add(x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

namespace {

// Deterministic fixed-point quantizer of ExactMoments: round-half-away
// from zero at 2^-kFracBits resolution, saturating at |q| = 2^40 (so q²
// <= 2^80 and the 128-bit sums stay exact past 2^40 samples).  NaN maps
// to 0 so a poisoned metric cannot make the reduction order-sensitive.
constexpr std::int64_t kQuantMax = std::int64_t{1} << 40;

std::int64_t quantize(double x) {
  if (std::isnan(x)) return 0;
  const double scaled = x * static_cast<double>(std::int64_t{1}
                                               << ExactMoments::kFracBits);
  if (scaled >= static_cast<double>(kQuantMax)) return kQuantMax;
  if (scaled <= -static_cast<double>(kQuantMax)) return -kQuantMax;
  return std::llround(scaled);
}

double int128_to_double(__int128 v) { return static_cast<double>(v); }

}  // namespace

void ExactMoments::add(double x) {
  const double v = std::isnan(x) ? 0.0 : x;
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++n_;
  const __int128 q = quantize(x);
  sum_ += q;
  sumsq_ += q * q;
}

void ExactMoments::merge(const ExactMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
  sum_ += other.sum_;
  sumsq_ += other.sumsq_;
}

double ExactMoments::mean() const {
  if (n_ == 0) return 0.0;
  return int128_to_double(sum_) / static_cast<double>(n_) /
         static_cast<double>(std::int64_t{1} << kFracBits);
}

double ExactMoments::variance() const {
  if (n_ < 2) return 0.0;
  // Computed in doubles FROM the exact integer state, so it is a pure
  // function of the (partition-invariant) sums — deterministic even
  // though the arithmetic here rounds.
  const auto n = static_cast<double>(n_);
  const double s1 = int128_to_double(sum_);
  const double s2 = int128_to_double(sumsq_);
  const double scale = static_cast<double>(std::int64_t{1} << kFracBits);
  const double var = (s2 - s1 * (s1 / n)) / (n - 1.0) / (scale * scale);
  return std::max(var, 0.0);
}

double ExactMoments::stddev() const { return std::sqrt(variance()); }

ExactMoments::State ExactMoments::state() const {
  State s;
  s.n = n_;
  s.sum_hi = static_cast<std::int64_t>(sum_ >> 64);
  s.sum_lo = static_cast<std::uint64_t>(sum_);
  s.sumsq_hi = static_cast<std::int64_t>(sumsq_ >> 64);
  s.sumsq_lo = static_cast<std::uint64_t>(sumsq_);
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof min_);
  std::memcpy(&bits, &min_, sizeof bits);
  s.min_bits = bits;
  std::memcpy(&bits, &max_, sizeof bits);
  s.max_bits = bits;
  return s;
}

ExactMoments ExactMoments::from_state(const State& s) {
  ExactMoments m;
  m.n_ = s.n;
  m.sum_ = (static_cast<__int128>(s.sum_hi) << 64) |
           static_cast<unsigned __int128>(s.sum_lo);
  m.sumsq_ = (static_cast<__int128>(s.sumsq_hi) << 64) |
             static_cast<unsigned __int128>(s.sumsq_lo);
  std::memcpy(&m.min_, &s.min_bits, sizeof m.min_);
  std::memcpy(&m.max_, &s.max_bits, sizeof m.max_);
  return m;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}
double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }
double Histogram::bin_center(std::size_t i) const {
  return bin_lo(i) + width_ * 0.5;
}

double Histogram::density(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) /
         (static_cast<double>(total_) * width_);
}

std::string Histogram::ascii(std::size_t max_width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * max_width / peak;
    out.setf(std::ios::fixed);
    out.precision(4);
    out << bin_center(i) << " |" << std::string(bar, '#') << " "
        << counts_[i] << "\n";
  }
  return out.str();
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }

double normal_cdf(double x, double mean, double stddev) {
  return normal_cdf((x - mean) / stddev);
}

double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::domain_error("normal_quantile: p must be in (0,1)");
  }
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * std::numbers::pi) * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

namespace {

// Lanczos log-gamma (g = 7, n = 9), accurate to ~1e-13 for a > 0.
double log_gamma(double a) {
  static constexpr double coeff[] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  const double x = a - 1.0;
  double sum = coeff[0];
  for (int i = 1; i < 9; ++i) sum += coeff[i] / (x + static_cast<double>(i));
  const double t = x + 7.5;
  return 0.5 * std::log(2.0 * std::numbers::pi) + (x + 0.5) * std::log(t) - t +
         std::log(sum);
}

// Regularised lower incomplete gamma via series (x < a+1).
double gamma_p_series(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 1; n < 500; ++n) {
    term *= x / (a + static_cast<double>(n));
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Regularised upper incomplete gamma via continued fraction (x >= a+1).
double gamma_q_cf(double a, double x) {
  constexpr double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - log_gamma(a));
}

}  // namespace

double gamma_q(double a, double x) {
  if (x < 0.0 || a <= 0.0) {
    throw std::domain_error("gamma_q: require x >= 0 and a > 0");
  }
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double chi_squared_sf(double x, double k) { return gamma_q(k / 2.0, x / 2.0); }

namespace {

// Regularised incomplete beta I_x(a, b) via the Lentz continued fraction;
// the symmetry transform keeps the fraction in its fast-converging half.
double beta_inc(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  if (x > (a + 1.0) / (a + b + 2.0)) return 1.0 - beta_inc(b, a, 1.0 - x);
  const double ln_front = a * std::log(x) + b * std::log1p(-x) -
                          (log_gamma(a) + log_gamma(b) - log_gamma(a + b));
  constexpr double tiny = 1e-300;
  double c = 1.0;
  double d = 1.0 - (a + b) * x / (a + 1.0);
  if (std::abs(d) < tiny) d = tiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m < 500; ++m) {
    const auto dm = static_cast<double>(m);
    // Even step.
    double num = dm * (b - dm) * x / ((a + 2.0 * dm - 1.0) * (a + 2.0 * dm));
    d = 1.0 + num * d;
    if (std::abs(d) < tiny) d = tiny;
    c = 1.0 + num / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    h *= d * c;
    // Odd step.
    num = -(a + dm) * (a + b + dm) * x /
          ((a + 2.0 * dm) * (a + 2.0 * dm + 1.0));
    d = 1.0 + num * d;
    if (std::abs(d) < tiny) d = tiny;
    c = 1.0 + num / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return std::exp(ln_front) * h / a;
}

// Bracketed bisection for a monotonically increasing cdf; the intervals
// these feed are stopping-rule thresholds, so plain robust bisection
// (~1 ulp of interval width after 200 halvings) beats a Newton iteration
// that could escape the bracket near the tails.
template <typename Cdf>
double invert_cdf(const Cdf& cdf, double p, double lo, double hi) {
  for (int i = 0; i < 200 && lo < hi; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= lo || mid >= hi) break;  // interval collapsed to 1 ulp
    (cdf(mid) < p ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double chi_squared_quantile(double p, double k) {
  if (!(p > 0.0 && p < 1.0) || !(k > 0.0)) {
    throw std::domain_error("chi_squared_quantile: need p in (0,1), k > 0");
  }
  // Bracket above the mean + tail; expand until the CDF straddles p.
  double hi = k + 10.0 * std::sqrt(2.0 * k) + 10.0;
  while (1.0 - chi_squared_sf(hi, k) < p) hi *= 2.0;
  return invert_cdf([k](double x) { return 1.0 - chi_squared_sf(x, k); }, p,
                    0.0, hi);
}

double student_t_cdf(double t, double dof) {
  if (!(dof > 0.0)) throw std::domain_error("student_t_cdf: need dof > 0");
  if (std::isnan(t)) return std::numeric_limits<double>::quiet_NaN();
  const double x = dof / (dof + t * t);
  const double tail = 0.5 * beta_inc(0.5 * dof, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double student_t_quantile(double p, double dof) {
  if (!(p > 0.0 && p < 1.0) || !(dof > 0.0)) {
    throw std::domain_error("student_t_quantile: need p in (0,1), dof > 0");
  }
  if (p == 0.5) return 0.0;
  // Symmetry: solve in the upper half and mirror.
  if (p < 0.5) return -student_t_quantile(1.0 - p, dof);
  // Heavy tails at low dof: expand the bracket multiplicatively.
  double hi = 2.0 + std::abs(normal_quantile(p)) * 4.0;
  while (student_t_cdf(hi, dof) < p && hi < 1e300) hi *= 4.0;
  return invert_cdf([dof](double t) { return student_t_cdf(t, dof); }, p, 0.0,
                    hi);
}

Interval mean_confidence_interval(std::size_t n, double mean, double stddev,
                                  double confidence) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::domain_error("mean_confidence_interval: confidence in (0,1)");
  }
  constexpr double inf = std::numeric_limits<double>::infinity();
  if (std::isnan(mean) || std::isnan(stddev)) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    return {nan, nan};
  }
  if (n < 2) return {-inf, inf};
  if (stddev == 0.0) return {mean, mean};
  const double t =
      student_t_quantile(0.5 * (1.0 + confidence), static_cast<double>(n - 1));
  const double hw = t * stddev / std::sqrt(static_cast<double>(n));
  return {mean - hw, mean + hw};
}

Interval stddev_confidence_interval(std::size_t n, double stddev,
                                    double confidence) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::domain_error("stddev_confidence_interval: confidence in (0,1)");
  }
  if (std::isnan(stddev)) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    return {nan, nan};
  }
  if (n < 2) return {0.0, std::numeric_limits<double>::infinity()};
  if (stddev == 0.0) return {0.0, 0.0};
  const double df = static_cast<double>(n - 1);
  const double chi_hi = chi_squared_quantile(0.5 * (1.0 + confidence), df);
  const double chi_lo = chi_squared_quantile(0.5 * (1.0 - confidence), df);
  return {stddev * std::sqrt(df / chi_hi), stddev * std::sqrt(df / chi_lo)};
}

NormalFit fit_normal(std::span<const double> samples, double confidence) {
  NormalFit fit;
  RunningStats rs;
  bool finite = true;
  for (double s : samples) {
    finite = finite && std::isfinite(s);
    rs.add(s);
  }
  if (!finite) {
    // Propagate rather than throw: near-empty or corrupted bins (e.g. a
    // wafer speed bin whose dies all failed analysis) report NaN moments
    // and an unaccepted fit instead of aborting the batch.
    fit.mean = std::numeric_limits<double>::quiet_NaN();
    fit.stddev = std::numeric_limits<double>::quiet_NaN();
    fit.p_value = 0.0;
    fit.accepted = false;
    return fit;
  }
  fit.mean = rs.mean();
  fit.stddev = rs.stddev();
  if (samples.size() < 8 || fit.stddev <= 0.0) {
    // Too few samples (or degenerate data) to test; report the moments and
    // leave the test conservatively unaccepted unless data is degenerate-
    // normal (all equal), which we treat as trivially accepted.
    fit.accepted = fit.stddev == 0.0;
    return fit;
  }

  // Bin over mean +/- 4 sigma using ~sqrt(n) bins, the usual rule of thumb.
  const auto raw_bins =
      std::max<std::size_t>(6, static_cast<std::size_t>(
                                   std::sqrt(static_cast<double>(samples.size()))));
  Histogram h(fit.mean - 4.0 * fit.stddev, fit.mean + 4.0 * fit.stddev,
              raw_bins);
  for (double s : samples) h.add(s);

  // Pool adjacent bins until each pooled bin has expected count >= 5.
  const auto n = static_cast<double>(samples.size());
  double chi2 = 0.0;
  std::size_t pooled_bins = 0;
  double obs_acc = 0.0;
  double exp_acc = 0.0;
  double lower_cdf = 0.0;  // CDF below the histogram range folds into bin 0
  for (std::size_t i = 0; i < h.bins(); ++i) {
    const double cdf_hi = (i + 1 == h.bins())
                              ? 1.0  // top bin absorbs the upper tail
                              : normal_cdf(h.bin_hi(i), fit.mean, fit.stddev);
    const double expected = n * (cdf_hi - lower_cdf);
    lower_cdf = cdf_hi;
    obs_acc += static_cast<double>(h.bin_count(i));
    exp_acc += expected;
    const bool last = (i + 1 == h.bins());
    if (exp_acc >= 5.0 || last) {
      if (exp_acc > 0.0) {
        const double diff = obs_acc - exp_acc;
        chi2 += diff * diff / exp_acc;
        ++pooled_bins;
      }
      obs_acc = 0.0;
      exp_acc = 0.0;
    }
  }

  fit.chi2 = chi2;
  fit.bins_used = pooled_bins;
  // dof = bins - 1 - (two estimated parameters).
  fit.dof = std::max(1.0, static_cast<double>(pooled_bins) - 3.0);
  fit.p_value = chi_squared_sf(chi2, fit.dof);
  fit.accepted = fit.p_value > (1.0 - confidence);
  return fit;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty data");
  p = std::clamp(p, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = p * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace vipvt
