#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace vipvt {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

std::string Table::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](std::ostringstream& out,
                      const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
          << " |";
    }
    out << "\n";
  };
  std::ostringstream out;
  emit_row(out, header_);
  out << "|";
  for (auto w : widths) out << std::string(w + 2, '-') << "|";
  out << "\n";
  for (const auto& row : rows_) emit_row(out, row);
  return out.str();
}

}  // namespace vipvt
