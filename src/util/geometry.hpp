#pragma once
// Minimal 2-D geometry used across placement, floorplanning and the
// exposure-field variation model.  All coordinates are in micrometres
// unless a function documents otherwise (the exposure field works in mm).

#include <algorithm>
#include <cmath>

namespace vipvt {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

constexpr Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
constexpr Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
constexpr Point operator*(Point a, double s) { return {a.x * s, a.y * s}; }

inline double manhattan(Point a, Point b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

inline double euclidean(Point a, Point b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Axis-aligned rectangle; lo is the lower-left corner, hi the upper-right.
struct Rect {
  Point lo;
  Point hi;

  constexpr double width() const { return hi.x - lo.x; }
  constexpr double height() const { return hi.y - lo.y; }
  constexpr double area() const { return width() * height(); }
  constexpr Point center() const {
    return {(lo.x + hi.x) * 0.5, (lo.y + hi.y) * 0.5};
  }
  constexpr bool contains(Point p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  constexpr bool overlaps(const Rect& o) const {
    return lo.x < o.hi.x && o.lo.x < hi.x && lo.y < o.hi.y && o.lo.y < hi.y;
  }
  /// Grow to include p (used for bounding-box accumulation).
  void expand(Point p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  /// A rect primed for expand(): empty in the interval sense.
  static constexpr Rect empty() {
    constexpr double inf = 1e300;
    return {{inf, inf}, {-inf, -inf}};
  }
  constexpr bool is_empty() const { return lo.x > hi.x || lo.y > hi.y; }

  friend constexpr bool operator==(const Rect&, const Rect&) = default;
};

}  // namespace vipvt
