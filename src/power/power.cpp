#include "power/power.hpp"

#include <algorithm>
#include <stdexcept>

#include "placement/placer.hpp"

namespace vipvt {

ActivityDb ActivityDb::uniform(const Design& design, double rate) {
  ActivityDb db;
  db.toggle_rate.assign(design.num_nets(), rate);
  return db;
}

PowerEngine::PowerEngine(const Design& design, const ActivityDb& activity)
    : design_(&design), activity_(&activity) {
  if (activity.toggle_rate.size() != design.num_nets()) {
    throw std::invalid_argument("PowerEngine: activity/net count mismatch");
  }
  // Per-net total capacitance (wire + sink pins), reused by every
  // compute(): a pure function of placement, so hoisting it out of the
  // per-call loop changes no bits.
  const WireParams& wp = design.lib().wire();
  net_cap_.assign(design.num_nets(), 0.0);
  for (NetId n = 0; n < design.num_nets(); ++n) {
    const Net& net = design.net(n);
    if (net.is_clock) continue;  // clock tree power out of scope, constant
    double cap = wp.capacitance(net_hpwl(design, n));
    for (const auto& sink : net.sinks) {
      cap += design.cell_of(sink.inst).pins[sink.pin].cap_pf;
    }
    net_cap_[n] = cap;
  }
}

PowerBreakdown PowerEngine::compute(std::span<const int> domain_corner,
                                    const PowerConfig& cfg) const {
  const Design& d = *design_;
  const Library& lib = d.lib();
  const double f = cfg.clock_freq_ghz;
  const double vdd[kNumCorners] = {lib.char_params().vdd_low,
                                   lib.char_params().vdd_high};

  PowerBreakdown out;
  out.per_unit_mw.assign(d.unit_names().size(), 0.0);
  std::size_t max_domain = 0;
  for (const auto& inst : d.instances()) {
    max_domain = std::max<std::size_t>(max_domain, inst.domain);
  }
  out.per_domain_mw.assign(max_domain + 1, 0.0);

  auto corner_of = [&](DomainId dom) -> int {
    return dom < domain_corner.size() ? domain_corner[dom] : kVddLow;
  };

  for (InstId i = 0; i < d.num_instances(); ++i) {
    const Instance& inst = d.instance(i);
    const Cell& cell = d.cell_of(i);
    const int corner = corner_of(inst.domain);
    const double v = vdd[corner];

    double inst_mw = 0.0;

    // Switching power of the net(s) this instance drives.
    for (std::size_t p = 0; p < cell.pins.size(); ++p) {
      if (cell.pins[p].is_input) continue;
      const NetId n = inst.conns[p];
      const double tr = activity_->toggle_rate[n];
      inst_mw += 0.5 * net_cap_[n] * v * v * tr * f;
    }
    out.switching_mw += inst_mw;

    // Internal energy per output toggle.
    const NetId out_net = inst.conns[cell.output_pin()];
    const double tr = activity_->toggle_rate[out_net];
    const double internal = cell.internal_energy_pj[corner] * tr * f;
    out.internal_mw += internal;
    inst_mw += internal;

    // Leakage: the library value already carries the corner scale at
    // nominal Lgate; with a variation context we recompute the factor
    // from the systematic Lgate at the cell's location instead — read
    // from the caller's precomputed map when one is supplied (it holds
    // the identical polynomial evaluations).
    double leak;
    if (cfg.variation != nullptr && inst.placed && i < cfg.systematic.size()) {
      leak = cell.leakage_mw[kVddLow] *
             cfg.variation->leakage_factor(cfg.systematic[i], corner);
    } else if (cfg.variation != nullptr && cfg.location != nullptr &&
               inst.placed) {
      const double lg =
          cfg.variation->systematic_lgate(inst.pos, *cfg.location);
      leak = cell.leakage_mw[kVddLow] *
             cfg.variation->leakage_factor(lg, corner);
    } else {
      leak = cell.leakage_mw[corner];
    }
    out.leakage_mw += leak;
    inst_mw += leak;

    if (cell.is_level_shifter()) {
      out.level_shifter_mw += inst_mw;
      out.level_shifter_leakage_mw += leak;
    }
    out.per_unit_mw.at(inst.unit) += inst_mw;
    out.per_stage_mw[static_cast<std::size_t>(inst.stage)] += inst_mw;
    out.per_domain_mw.at(inst.domain) += inst_mw;
  }
  return out;
}

}  // namespace vipvt
