#pragma once
// Activity-based power engine: the PrimePower stand-in.
//
//   switching  = 1/2 * C_net * Vdd_driver^2 * toggle_rate * f   (net charging)
//   internal   = E_int(corner) * toggle_rate(out) * f           (cell internal)
//   leakage    = leak(corner) * leakage_factor(Lgate, Vdd)      (subthreshold)
//
// Units: pF * V^2 * GHz = mW;  pJ * GHz = mW.
//
// The engine rolls results up per functional unit (Table 1), per pipeline
// stage, per voltage domain, and separates the level-shifter contribution
// (Table 2 / Fig. 5 / Fig. 6).

#include <array>
#include <span>
#include <string>
#include <vector>

#include "netlist/design.hpp"
#include "variation/model.hpp"

namespace vipvt {

/// Per-net switching activity (from the logic simulator or synthetic).
struct ActivityDb {
  std::vector<double> toggle_rate;  ///< transitions per cycle, per net

  static ActivityDb uniform(const Design& design, double rate);
};

struct PowerBreakdown {
  double switching_mw = 0.0;
  double internal_mw = 0.0;
  double leakage_mw = 0.0;
  double total_mw() const { return switching_mw + internal_mw + leakage_mw; }

  double dynamic_mw() const { return switching_mw + internal_mw; }

  /// Contribution of level-shifter cells (included in the totals above).
  double level_shifter_mw = 0.0;
  double level_shifter_leakage_mw = 0.0;

  std::vector<double> per_unit_mw;    ///< indexed by UnitId
  std::array<double, kNumPipeStages> per_stage_mw{};
  std::vector<double> per_domain_mw;  ///< indexed by DomainId
};

struct PowerConfig {
  double clock_freq_ghz = 0.256;  ///< the paper's 256 MHz fmax
  /// Optional variation context: when set, leakage uses the systematic
  /// Lgate at each cell's location (DIBL-aware), as fabricated silicon
  /// would exhibit.
  const VariationModel* variation = nullptr;
  const DieLocation* location = nullptr;
  /// Precomputed per-instance systematic Lgate [nm]
  /// (VariationModel::systematic_lgates) — when non-empty (and
  /// `variation` is set) leakage reads systematic[i] instead of
  /// re-evaluating the exposure polynomial per instance.  Bit-identical
  /// to the `location` path, since the map holds exactly those
  /// evaluations; the wafer loop shares one map per reticle slot.
  std::span<const double> systematic{};
};

class PowerEngine {
 public:
  /// Construction precomputes the per-net total capacitance (wire HPWL +
  /// sink pins), which depends only on placement — never on corners or
  /// variation — so one engine amortizes it across every compute().
  PowerEngine(const Design& design, const ActivityDb& activity);

  /// Compute the full breakdown with the given supply corner per domain
  /// (index = DomainId; missing entries default to the low corner).
  /// Pure (no engine state is written): one engine may serve concurrent
  /// callers.
  PowerBreakdown compute(std::span<const int> domain_corner,
                         const PowerConfig& cfg) const;

 private:
  const Design* design_;
  const ActivityDb* activity_;
  std::vector<double> net_cap_;  ///< per-net switching cap [pF]; 0 for clock
};

}  // namespace vipvt
