#pragma once
// Monte-Carlo statistical static timing analysis: the design-time
// pre-characterization engine of the methodology.  For each sample it
// draws a per-gate Lgate map (systematic + random), converts it to delay
// multipliers, and re-runs the annotated STA — the in-code equivalent of
// the paper's "parse the SDF, perturb gate delays, re-import into
// PrimeTime" loop.  Outputs: per-pipeline-stage critical-path slack
// distributions (fitted to normals with a chi-squared test, as in
// Fig. 3), per-endpoint criticality statistics (for Razor sensor
// planning), and the max-delay distribution.

#include <array>
#include <cstdint>
#include <vector>

#include "util/stats.hpp"
#include "variation/model.hpp"

namespace vipvt {

class ThreadPool;

/// Versioned draw profiles.  A profile fixes the exact bit-stream of the
/// per-sample factor draw; results are comparable across machines and
/// releases only within a profile.
enum class DrawProfile : int {
  /// The seed path: per-gate polar normals + exact alpha-power quotient
  /// per gate per sample.  Stays bit-identical to the original
  /// implementation forever — the reproducibility anchor.
  Scalar = 0,
  /// The vectorized engine: counter-driven Box-Muller bulk normals
  /// (Rng::normals) + delay-factor interpolation tables
  /// (VariationModel::draw_factors_batch), writing the propagation
  /// kernel's SoA layout directly.  Its own determinism contract:
  /// bit-identical for any thread count and any batch width, but a
  /// DIFFERENT (statistically equivalent) stream than Scalar.
  Batched = 1,
  /// The Batched engine with the Box-Muller log/sin/cos routed through
  /// the SIMD kernel layer's own vector math (Rng::normals_simd,
  /// DESIGN.md §17) instead of libm/libmvec.  Batched's bits depend on
  /// the host libm build; this profile's bits are ADDITIONALLY identical
  /// across ISAs, compilers and build flags, because every dispatch
  /// target instantiates the same kernel body with FMA contraction
  /// disabled.  Same determinism contract as Batched (thread- and
  /// width-invariant); yet another DIFFERENT, statistically equivalent
  /// stream.  This versioned profile exists precisely so the SIMD math
  /// is never silently substituted into an existing stream.
  BatchedSimd = 2,
};

/// Opt-in adaptive sequential sampling (DESIGN.md §14): instead of a
/// fixed sample budget, the engine draws in deterministic rounds of
/// `check_every_batches` whole batches and stops once EVERY present
/// pipeline stage's fitted moments are pinned down — the Student-t CI
/// half-width on µ and the χ²-interval half-width on σ (src/util/stats)
/// both at or below their targets at `confidence`.  Because sample k's
/// randomness derives from substream_seed(seed, k) alone, an adaptive
/// run that stops at N samples is BIT-IDENTICAL (on every sampling-
/// derived McResult field) to a fixed run with samples = N, for any
/// thread count.  The stopping N itself is a pure function of
/// (seed, policy, batch width) — round boundaries land on whole batches,
/// so the batch width quantizes the checkpoint grid; thread count never
/// moves it.
struct AdaptivePolicy {
  bool enabled = false;
  /// Target CI half-width on each present stage's fitted mean [ns].
  double mean_half_width_ns = 2e-3;
  /// Target CI half-width on each present stage's fitted stddev [ns].
  double sigma_half_width_ns = 2e-3;
  /// Confidence level of both intervals (µ via Student-t, σ via χ²).
  double confidence = 0.95;
  /// Never stop before this many samples, even if converged …
  int min_samples = 64;
  /// … and always stop here (replaces McConfig::samples as the budget).
  int max_samples = 4096;
  /// Convergence-check cadence, in whole batches per round.
  int check_every_batches = 4;
};

struct McConfig {
  int samples = 500;  ///< fixed budget; ignored when adaptive.enabled
  std::uint64_t seed = 0x55aa55aa;
  double confidence = 0.95;  ///< for the normality test
  /// Samples propagated per StaEngine::analyze_batch() call.  1 selects
  /// the scalar analyze() kernel (the pre-batching baseline); any width
  /// yields a bit-identical McResult — the batch is a pure layout
  /// optimization (asserted in tests/test_variation.cpp).
  int batch = 8;
  /// Which draw engine generates the factors (see DrawProfile).  The
  /// default keeps every existing caller bit-identical to seed.
  DrawProfile profile = DrawProfile::Scalar;
  /// Opt-in sequential sampling; disabled keeps the fixed-budget path
  /// byte-for-byte unchanged (DESIGN.md §14).
  AdaptivePolicy adaptive{};
};

/// Distribution of one pipeline stage's worst slack across MC samples.
struct StageSlackDist {
  PipeStage stage = PipeStage::Other;
  bool present = false;          ///< stage has endpoints
  NormalFit fit;                 ///< fitted normal over slack samples
  double min_slack = 0.0;
  double max_slack = 0.0;
  std::vector<double> samples;   ///< raw slack samples [ns]

  /// Paper's violation criterion: the 3-sigma point of the slack
  /// distribution is negative.
  double three_sigma_slack() const { return fit.mean - 3.0 * fit.stddev; }
  bool violates() const { return present && three_sigma_slack() < 0.0; }
};

/// Why a Monte-Carlo run ended (DESIGN.md §14).
enum class McStop : std::uint8_t {
  FixedBudget = 0,  ///< ran the fixed cfg.samples budget (adaptive off)
  Converged,        ///< every present stage met both CI targets
  MaxSamples,       ///< hit AdaptivePolicy::max_samples unconverged
};
const char* mc_stop_name(McStop reason);

/// One adaptive round's convergence snapshot: the worst (largest) CI
/// half-widths across present stages after `samples` total draws.
struct McRound {
  int samples = 0;
  double worst_mean_half_width_ns = 0.0;
  double worst_sigma_half_width_ns = 0.0;
  bool converged = false;  ///< both targets met by every present stage
};

struct McResult {
  std::array<StageSlackDist, kNumPipeStages> stages;
  std::vector<double> endpoint_crit_prob;  ///< P(endpoint slack < 0)
  std::vector<std::uint32_t> endpoint_stage_crit;  ///< times it set stage WNS
  std::vector<double> min_period_samples;  ///< achievable Tclk per sample
  int samples = 0;  ///< samples actually drawn (the stopping N if adaptive)
  /// Stopping metadata.  Mode-specific BY DEFINITION: an adaptive run and
  /// its equivalent fixed run agree on every sampling-derived field above
  /// but differ here (Converged/MaxSamples + history vs FixedBudget).
  McStop stopping_reason = McStop::FixedBudget;
  std::vector<McRound> convergence;  ///< per-round history (adaptive only)

  const StageSlackDist& stage(PipeStage s) const {
    return stages[static_cast<std::size_t>(s)];
  }
  /// Worst (most negative) 3-sigma slack across violating stages.
  double worst_three_sigma_slack() const;
  /// Number of violating stages among DC/EX/WB (the scenario severity).
  int num_violating_stages() const;
};

class MonteCarloSsta {
 public:
  /// Sampling never mutates the engine (analyze() is const apart from
  /// its per-engine scratchpad), so a const reference suffices.  NOTE:
  /// the scratchpad means two threads must not sample through the SAME
  /// engine concurrently — give each worker its own copy (StaEngine is
  /// cheaply copyable precisely for this).
  MonteCarloSsta(const Design& design, const StaEngine& sta,
                 const VariationModel& model);

  /// Runs `cfg.samples` draws for a core at `loc`.  The STA engine's
  /// current base delays (supply corners) are used as-is — call
  /// StaEngine::compute_base first when analyzing an island configuration.
  ///
  /// Sample k's randomness derives from substream_seed(cfg.seed, k) —
  /// a function of the sample index alone — and every per-sample output
  /// lands in a pre-sized index slot, so the result is BIT-IDENTICAL
  /// for the serial path (`pool == nullptr`) and any thread count.
  /// Per-endpoint criticality tallies are integer counts merged across
  /// workers (integer addition commutes exactly).  Samples are drawn
  /// against a per-run precomputed systematic-Lgate map and propagated
  /// `cfg.batch` at a time through StaEngine::analyze_batch.
  ///
  /// With cfg.adaptive.enabled the budget becomes sequential: rounds of
  /// whole batches are drawn until the per-stage CI targets are met
  /// (DESIGN.md §14), and the result is bit-identical to a fixed run
  /// with samples = the stopping N.  Throws std::invalid_argument for a
  /// degenerate policy (min/max/cadence < 1, max < min, confidence
  /// outside (0,1)).
  McResult run(const DieLocation& loc, const McConfig& cfg,
               ThreadPool* pool = nullptr) const;

  /// Same run against a caller-provided systematic Lgate map (one entry
  /// per instance, from VariationModel::systematic_lgates).  This is the
  /// wafer path: all dies in a reticle slot share the map, so the
  /// YieldAnalyzer computes it once per slot instead of once per die.
  /// Bit-identical to run(loc, ...) when the map equals the one loc
  /// would produce.
  McResult run_with_systematic(std::span<const double> systematic,
                               const McConfig& cfg,
                               ThreadPool* pool = nullptr) const;

 private:
  const Design* design_;
  const StaEngine* sta_;
  const VariationModel* model_;
};

}  // namespace vipvt
