#pragma once
// Systematic across-field process variation: the effective gate length of
// a transistor depends on its position in the stepper exposure field
// through lens aberration / illumination nonuniformity.  Following the
// paper (and Cain's 130 nm measurements it scales from), the systematic
// component is a second-order polynomial of field position (Eq. 1):
//
//   f(x, y) = a x^2 + b y^2 + c x + d y + e xy + intercept   [x,y in mm]
//
// scaled so that the maximum systematic deviation across the 28 mm x
// 28 mm exposure field is +/- 5.5 % of nominal Lgate, slowest (longest
// Lgate) in the lower-left corner — the Fig. 2 map.

#include <string>

#include "liberty/physics.hpp"
#include "util/geometry.hpp"

namespace vipvt {

struct PolyCoeffs {
  double a = 0.0, b = 0.0, c = 0.0, d = 0.0, e = 0.0, intercept = 0.0;

  double eval(double x, double y) const {
    return a * x * x + b * y * y + c * x + d * y + e * x * y + intercept;
  }
};

class ExposureField {
 public:
  /// `coeffs` is the raw polynomial shape; it is affinely rescaled at
  /// construction so deviations span exactly +/- max_dev_frac * lgate_nom
  /// over the field.
  ExposureField(PolyCoeffs coeffs, double field_mm, double lgate_nom_nm,
                double max_dev_frac);

  /// The paper's configuration: 28 mm field, 65 nm nominal, +/- 5.5 %,
  /// slow corner at (0,0).
  static ExposureField scaled_65nm(const CharParams& cp);

  double field_mm() const { return field_mm_; }
  double lgate_nom() const { return lgate_nom_; }
  double max_dev_frac() const { return max_dev_frac_; }

  /// The rescaled polynomial: eval() is the fractional deviation from
  /// nominal at a field position.  The quadratic terms (a, b, e) are
  /// shift-invariant, which is what lets the stage macromodel (DESIGN.md
  /// §19) decompose any die's systematic map into an exact affine
  /// function of a 3-scalar die basis plus a die-independent residual.
  const PolyCoeffs& coeffs() const { return coeffs_; }

  /// Systematic Lgate [nm] at a field position [mm]; positions are
  /// clamped to the field.
  double lgate_at(double x_mm, double y_mm) const;
  /// Fractional deviation from nominal at a field position.
  double deviation_at(double x_mm, double y_mm) const;

  /// ASCII rendering of the map over an n x n grid (Fig. 2 output).
  std::string ascii_map(int n) const;

 private:
  PolyCoeffs coeffs_;  // rescaled: eval() returns fractional deviation
  double field_mm_;
  double lgate_nom_;
  double max_dev_frac_;
};

/// Placement of a die (chip) on the exposure field plus the position of
/// the processor core inside the chip; converts core-local placement
/// coordinates [um] to field coordinates [mm].
struct DieLocation {
  /// 14x14 chip at the slow corner of the 28 mm exposure field, so the
  /// chip spans the full systematic gradient of Fig. 2 (slowest at its
  /// lower-left corner A, near-nominal at its upper-right corner D).
  Point chip_origin_mm{0.0, 0.0};
  Point core_origin_mm{0.0, 0.0};  ///< core lower-left inside the chip

  Point field_mm(Point cell_pos_um) const {
    return {chip_origin_mm.x + core_origin_mm.x + cell_pos_um.x * 1e-3,
            chip_origin_mm.y + core_origin_mm.y + cell_pos_um.y * 1e-3};
  }

  /// The paper's four reference core positions along the chip diagonal:
  /// A (lower-left, worst), B, C, D (upper-right, best).  `chip_mm` is the
  /// chip edge length; the core is assumed small relative to the chip.
  static DieLocation point(char which, double chip_mm = 14.0);
};

}  // namespace vipvt
