#include "variation/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vipvt {

CorrelatedField::CorrelatedField(double pitch_um, int grid, double sigma_nm,
                                 Rng& rng)
    : pitch_um_(pitch_um), grid_(grid) {
  values_.resize(static_cast<std::size_t>(grid + 1) * (grid + 1));
  for (auto& v : values_) v = rng.normal(0.0, sigma_nm);
}

double CorrelatedField::at(Point pos_um) const {
  if (!active()) return 0.0;
  const double gx = std::clamp(pos_um.x / pitch_um_, 0.0,
                               static_cast<double>(grid_) - 1e-9);
  const double gy = std::clamp(pos_um.y / pitch_um_, 0.0,
                               static_cast<double>(grid_) - 1e-9);
  const auto x0 = static_cast<std::size_t>(gx);
  const auto y0 = static_cast<std::size_t>(gy);
  const double fx = gx - static_cast<double>(x0);
  const double fy = gy - static_cast<double>(y0);
  const auto stride = static_cast<std::size_t>(grid_ + 1);
  const double v00 = values_[y0 * stride + x0];
  const double v01 = values_[y0 * stride + x0 + 1];
  const double v10 = values_[(y0 + 1) * stride + x0];
  const double v11 = values_[(y0 + 1) * stride + x0 + 1];
  const double w00 = (1 - fx) * (1 - fy);
  const double w01 = fx * (1 - fy);
  const double w10 = (1 - fx) * fy;
  const double w11 = fx * fy;
  const double interp = v00 * w00 + v01 * w01 + v10 * w10 + v11 * w11;
  // Bilinear blending of i.i.d. nodes shrinks the variance between nodes;
  // renormalize so the marginal sigma is position-independent.
  const double norm =
      std::sqrt(w00 * w00 + w01 * w01 + w10 * w10 + w11 * w11);
  return interp / norm;
}

VariationModel::VariationModel(const CharParams& cp, const ExposureField& field,
                               const VariationConfig& cfg)
    : cp_(cp), field_(&field), cfg_(cfg),
      sigma_rnd_(cfg.three_sigma_random_frac / 3.0 * cp.lgate_nom) {}

double VariationModel::sigma_correlated_nm() const {
  return sigma_rnd_ * std::sqrt(cfg_.correlated_fraction);
}

double VariationModel::sigma_independent_nm() const {
  return sigma_rnd_ * std::sqrt(1.0 - cfg_.correlated_fraction);
}

CorrelatedField VariationModel::draw_field(Rng& rng) const {
  if (cfg_.correlated_fraction <= 0.0) return {};
  // 24x24 nodes at one correlation length per pitch covers dies up to
  // ~24 correlation lengths across; larger positions clamp to the edge.
  return CorrelatedField(cfg_.correlation_length_um, 24,
                         sigma_correlated_nm(), rng);
}

double VariationModel::systematic_lgate(Point cell_pos_um,
                                        const DieLocation& loc) const {
  const Point f = loc.field_mm(cell_pos_um);
  return field_->lgate_at(f.x, f.y);
}

double VariationModel::sample_lgate(Point cell_pos_um, const DieLocation& loc,
                                    Rng& rng,
                                    const CorrelatedField* field) const {
  const double sys = systematic_lgate(cell_pos_um, loc);
  double eps;
  if (field != nullptr && field->active()) {
    eps = field->at(cell_pos_um) + rng.normal(0.0, sigma_independent_nm());
  } else {
    eps = rng.normal(0.0, sigma_rnd_);
  }
  eps = std::clamp(eps, -cfg_.clamp_sigma * sigma_rnd_,
                   cfg_.clamp_sigma * sigma_rnd_);
  return sys + eps;
}

double VariationModel::delay_factor(double lgate_nm, int corner,
                                    VthClass vth) const {
  return cp_.delay_factor(lgate_nm, vdd_of_corner(corner), cp_.vth0_of(vth));
}

double VariationModel::leakage_factor(double lgate_nm, int corner) const {
  return cp_.leakage_factor(lgate_nm, vdd_of_corner(corner));
}

std::vector<double>& VariationModel::draw_factors(
    const Design& design, const StaEngine& sta, const DieLocation& loc,
    Rng& rng, std::vector<double>& factors) const {
  factors.resize(design.num_instances());
  const CorrelatedField field = draw_field(rng);
  const CorrelatedField* fp = field.active() ? &field : nullptr;
  for (InstId i = 0; i < design.num_instances(); ++i) {
    const Instance& inst = design.instance(i);
    if (!inst.placed) {
      throw std::logic_error("draw_factors: unplaced instance " + inst.name);
    }
    const double lgate = sample_lgate(inst.pos, loc, rng, fp);
    factors[i] =
        delay_factor(lgate, sta.inst_corner(i), design.cell_of(i).vth);
  }
  return factors;
}

}  // namespace vipvt
