#include "variation/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vipvt {

CorrelatedField::CorrelatedField(double pitch_um, int grid, double sigma_nm,
                                 Rng& rng)
    : pitch_um_(pitch_um), grid_(grid) {
  values_.resize(static_cast<std::size_t>(grid + 1) * (grid + 1));
  for (auto& v : values_) v = rng.normal(0.0, sigma_nm);
}

double CorrelatedField::at(Point pos_um) const {
  if (!active()) return 0.0;
  const double gx = std::clamp(pos_um.x / pitch_um_, 0.0,
                               static_cast<double>(grid_) - 1e-9);
  const double gy = std::clamp(pos_um.y / pitch_um_, 0.0,
                               static_cast<double>(grid_) - 1e-9);
  const auto x0 = static_cast<std::size_t>(gx);
  const auto y0 = static_cast<std::size_t>(gy);
  const double fx = gx - static_cast<double>(x0);
  const double fy = gy - static_cast<double>(y0);
  const auto stride = static_cast<std::size_t>(grid_ + 1);
  const double v00 = values_[y0 * stride + x0];
  const double v01 = values_[y0 * stride + x0 + 1];
  const double v10 = values_[(y0 + 1) * stride + x0];
  const double v11 = values_[(y0 + 1) * stride + x0 + 1];
  const double w00 = (1 - fx) * (1 - fy);
  const double w01 = fx * (1 - fy);
  const double w10 = (1 - fx) * fy;
  const double w11 = fx * fy;
  const double interp = v00 * w00 + v01 * w01 + v10 * w10 + v11 * w11;
  // Bilinear blending of i.i.d. nodes shrinks the variance between nodes;
  // renormalize so the marginal sigma is position-independent.
  const double norm =
      std::sqrt(w00 * w00 + w01 * w01 + w10 * w10 + w11 * w11);
  return interp / norm;
}

VariationModel::VariationModel(const CharParams& cp, const ExposureField& field,
                               const VariationConfig& cfg)
    : cp_(cp), field_(&field), cfg_(cfg),
      sigma_rnd_(cfg.three_sigma_random_frac / 3.0 * cp.lgate_nom) {
  for (int corner : {kVddLow, kVddHigh}) {
    for (int v = 0; v < kNumVthClasses; ++v) {
      nominal_raw_delay_[static_cast<std::size_t>(corner)]
                        [static_cast<std::size_t>(v)] =
          cp_.raw_delay(cp_.lgate_nom, vdd_of_corner(corner),
                        cp_.vth0_of(static_cast<VthClass>(v)));
    }
  }
}

double VariationModel::sigma_correlated_nm() const {
  return sigma_rnd_ * std::sqrt(cfg_.correlated_fraction);
}

double VariationModel::sigma_independent_nm() const {
  return sigma_rnd_ * std::sqrt(1.0 - cfg_.correlated_fraction);
}

CorrelatedField VariationModel::draw_field(Rng& rng) const {
  if (cfg_.correlated_fraction <= 0.0) return {};
  // 24x24 nodes at one correlation length per pitch covers dies up to
  // ~24 correlation lengths across; larger positions clamp to the edge.
  return CorrelatedField(cfg_.correlation_length_um, 24,
                         sigma_correlated_nm(), rng);
}

double VariationModel::systematic_lgate(Point cell_pos_um,
                                        const DieLocation& loc) const {
  const Point f = loc.field_mm(cell_pos_um);
  return field_->lgate_at(f.x, f.y);
}

double VariationModel::sample_lgate(Point cell_pos_um, const DieLocation& loc,
                                    Rng& rng,
                                    const CorrelatedField* field) const {
  const double sys = systematic_lgate(cell_pos_um, loc);
  double eps;
  if (field != nullptr && field->active()) {
    eps = field->at(cell_pos_um) + rng.normal(0.0, sigma_independent_nm());
  } else {
    eps = rng.normal(0.0, sigma_rnd_);
  }
  eps = std::clamp(eps, -cfg_.clamp_sigma * sigma_rnd_,
                   cfg_.clamp_sigma * sigma_rnd_);
  return sys + eps;
}

double VariationModel::delay_factor(double lgate_nm, int corner,
                                    VthClass vth) const {
  // Same quotient as CharParams::delay_factor, with the nominal
  // denominator read from the constructor-time cache.
  const std::size_t c = corner == kVddHigh ? 1 : 0;
  return cp_.raw_delay(lgate_nm, vdd_of_corner(corner), cp_.vth0_of(vth)) /
         nominal_raw_delay_[c][static_cast<std::size_t>(vth)];
}

double VariationModel::leakage_factor(double lgate_nm, int corner) const {
  return cp_.leakage_factor(lgate_nm, vdd_of_corner(corner));
}

std::vector<double>& VariationModel::draw_factors(
    const Design& design, const StaEngine& sta, const DieLocation& loc,
    Rng& rng, std::vector<double>& factors) const {
  const std::vector<double> systematic = systematic_lgates(design, loc);
  return draw_factors(design, sta, systematic, rng, factors);
}

std::vector<double> VariationModel::systematic_lgates(
    const Design& design, const DieLocation& loc) const {
  std::vector<double> lgate(design.num_instances());
  for (InstId i = 0; i < design.num_instances(); ++i) {
    const Instance& inst = design.instance(i);
    if (!inst.placed) {
      throw std::logic_error("systematic_lgates: unplaced instance " +
                             inst.name);
    }
    lgate[i] = systematic_lgate(inst.pos, loc);
  }
  return lgate;
}

std::vector<double>& VariationModel::draw_factors(
    const Design& design, const StaEngine& sta,
    std::span<const double> systematic_lgate_nm, Rng& rng,
    std::vector<double>& factors) const {
  if (systematic_lgate_nm.size() < design.num_instances()) {
    throw std::invalid_argument("draw_factors: short systematic map");
  }
  factors.resize(design.num_instances());
  const CorrelatedField field = draw_field(rng);
  const bool correlated = field.active();
  const double sigma_ind = sigma_independent_nm();
  const double clamp = cfg_.clamp_sigma * sigma_rnd_;
  for (InstId i = 0; i < design.num_instances(); ++i) {
    // Mirrors sample_lgate() draw-for-draw (same RNG consumption, same
    // clamp), with the systematic term read from the precomputed map.
    double eps = correlated
                     ? field.at(design.instance(i).pos) +
                           rng.normal(0.0, sigma_ind)
                     : rng.normal(0.0, sigma_rnd_);
    eps = std::clamp(eps, -clamp, clamp);
    factors[i] = delay_factor(systematic_lgate_nm[i] + eps,
                              sta.inst_corner(i), design.cell_of(i).vth);
  }
  return factors;
}

}  // namespace vipvt
