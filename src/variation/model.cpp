#include "variation/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vipvt {

CorrelatedField::CorrelatedField(double pitch_um, int grid, double sigma_nm,
                                 Rng& rng)
    : pitch_um_(pitch_um), grid_(grid) {
  values_.resize(static_cast<std::size_t>(grid + 1) * (grid + 1));
  for (auto& v : values_) v = rng.normal(0.0, sigma_nm);
}

CorrelatedField CorrelatedField::bulk(double pitch_um, int grid,
                                      double sigma_nm, Rng& rng,
                                      bool simd_normals) {
  CorrelatedField f;
  f.pitch_um_ = pitch_um;
  f.grid_ = grid;
  f.values_.resize(static_cast<std::size_t>(grid + 1) * (grid + 1));
  if (simd_normals) {
    rng.normals_simd(f.values_);
  } else {
    rng.normals(f.values_);
  }
  for (auto& v : f.values_) v *= sigma_nm;
  return f;
}

CorrelatedField::Stencil CorrelatedField::stencil_at(Point pos_um,
                                                     double pitch_um,
                                                     int grid) {
  const double gx = std::clamp(pos_um.x / pitch_um, 0.0,
                               static_cast<double>(grid) - 1e-9);
  const double gy = std::clamp(pos_um.y / pitch_um, 0.0,
                               static_cast<double>(grid) - 1e-9);
  const auto x0 = static_cast<std::size_t>(gx);
  const auto y0 = static_cast<std::size_t>(gy);
  const double fx = gx - static_cast<double>(x0);
  const double fy = gy - static_cast<double>(y0);
  const auto stride = static_cast<std::size_t>(grid + 1);
  Stencil s;
  s.idx[0] = static_cast<std::uint32_t>(y0 * stride + x0);
  s.idx[1] = static_cast<std::uint32_t>(y0 * stride + x0 + 1);
  s.idx[2] = static_cast<std::uint32_t>((y0 + 1) * stride + x0);
  s.idx[3] = static_cast<std::uint32_t>((y0 + 1) * stride + x0 + 1);
  s.w[0] = (1 - fx) * (1 - fy);
  s.w[1] = fx * (1 - fy);
  s.w[2] = (1 - fx) * fy;
  s.w[3] = fx * fy;
  // Bilinear blending of i.i.d. nodes shrinks the variance between nodes;
  // the norm renormalizes so the marginal sigma is position-independent.
  // Stored un-divided (at(Stencil) divides) so the stencil path keeps the
  // exact operation order of the historical direct evaluation.
  s.norm = std::sqrt(s.w[0] * s.w[0] + s.w[1] * s.w[1] + s.w[2] * s.w[2] +
                     s.w[3] * s.w[3]);
  return s;
}

double CorrelatedField::at(Point pos_um) const {
  if (!active()) return 0.0;
  return at(stencil_at(pos_um, pitch_um_, grid_));
}

VariationModel::VariationModel(const CharParams& cp, const ExposureField& field,
                               const VariationConfig& cfg)
    : cp_(cp), field_(&field), cfg_(cfg),
      sigma_rnd_(cfg.three_sigma_random_frac / 3.0 * cp.lgate_nom) {
  for (int corner : {kVddLow, kVddHigh}) {
    for (int v = 0; v < kNumVthClasses; ++v) {
      nominal_raw_delay_[static_cast<std::size_t>(corner)]
                        [static_cast<std::size_t>(v)] =
          cp_.raw_delay(cp_.lgate_nom, vdd_of_corner(corner),
                        cp_.vth0_of(static_cast<VthClass>(v)));
    }
  }
  // Table range = everything a clamped draw can produce: systematic
  // field extremes +/- clamp_sigma random deviations.  eval() clamps, so
  // rounding at the extremes cannot read out of range.
  const double dev = field.max_dev_frac() * cp.lgate_nom;
  const double clamp = cfg_.clamp_sigma * sigma_rnd_;
  tables_ = DelayFactorTables(cp_, cp.lgate_nom - dev - clamp,
                              cp.lgate_nom + dev + clamp);
}

double VariationModel::sigma_correlated_nm() const {
  return sigma_rnd_ * std::sqrt(cfg_.correlated_fraction);
}

double VariationModel::sigma_independent_nm() const {
  return sigma_rnd_ * std::sqrt(1.0 - cfg_.correlated_fraction);
}

CorrelatedField VariationModel::draw_field(Rng& rng) const {
  if (cfg_.correlated_fraction <= 0.0) return {};
  return CorrelatedField(cfg_.correlation_length_um, kCorrGrid,
                         sigma_correlated_nm(), rng);
}

double VariationModel::systematic_lgate(Point cell_pos_um,
                                        const DieLocation& loc) const {
  const Point f = loc.field_mm(cell_pos_um);
  return field_->lgate_at(f.x, f.y);
}

double VariationModel::sample_lgate(Point cell_pos_um, const DieLocation& loc,
                                    Rng& rng,
                                    const CorrelatedField* field) const {
  const double sys = systematic_lgate(cell_pos_um, loc);
  double eps;
  if (field != nullptr && field->active()) {
    eps = field->at(cell_pos_um) + rng.normal(0.0, sigma_independent_nm());
  } else {
    eps = rng.normal(0.0, sigma_rnd_);
  }
  eps = std::clamp(eps, -cfg_.clamp_sigma * sigma_rnd_,
                   cfg_.clamp_sigma * sigma_rnd_);
  return sys + eps;
}

double VariationModel::delay_factor(double lgate_nm, int corner,
                                    VthClass vth) const {
  // Same quotient as CharParams::delay_factor, with the nominal
  // denominator read from the constructor-time cache.
  const std::size_t c = corner == kVddHigh ? 1 : 0;
  return cp_.raw_delay(lgate_nm, vdd_of_corner(corner), cp_.vth0_of(vth)) /
         nominal_raw_delay_[c][static_cast<std::size_t>(vth)];
}

double VariationModel::leakage_factor(double lgate_nm, int corner) const {
  return cp_.leakage_factor(lgate_nm, vdd_of_corner(corner));
}

std::vector<double>& VariationModel::draw_factors(
    const Design& design, const StaEngine& sta, const DieLocation& loc,
    Rng& rng, std::vector<double>& factors) const {
  const std::vector<double> systematic = systematic_lgates(design, loc);
  return draw_factors(design, sta, systematic, rng, factors);
}

std::vector<double> VariationModel::systematic_lgates(
    const Design& design, const DieLocation& loc) const {
  std::vector<double> lgate(design.num_instances());
  for (InstId i = 0; i < design.num_instances(); ++i) {
    const Instance& inst = design.instance(i);
    if (!inst.placed) {
      throw std::logic_error("systematic_lgates: unplaced instance " +
                             inst.name);
    }
    lgate[i] = systematic_lgate(inst.pos, loc);
  }
  return lgate;
}

std::vector<double>& VariationModel::draw_factors(
    const Design& design, const StaEngine& sta,
    std::span<const double> systematic_lgate_nm, Rng& rng,
    std::vector<double>& factors) const {
  return draw_factors(design, sta, systematic_lgate_nm, {}, rng, factors);
}

std::vector<CorrelatedField::Stencil> VariationModel::field_stencils(
    const Design& design) const {
  if (cfg_.correlated_fraction <= 0.0) return {};
  std::vector<CorrelatedField::Stencil> stencils(design.num_instances());
  for (InstId i = 0; i < design.num_instances(); ++i) {
    stencils[i] = CorrelatedField::stencil_at(
        design.instance(i).pos, cfg_.correlation_length_um, kCorrGrid);
  }
  return stencils;
}

std::vector<double>& VariationModel::draw_factors(
    const Design& design, const StaEngine& sta,
    std::span<const double> systematic_lgate_nm,
    std::span<const CorrelatedField::Stencil> stencils, Rng& rng,
    std::vector<double>& factors) const {
  if (systematic_lgate_nm.size() < design.num_instances()) {
    throw std::invalid_argument("draw_factors: short systematic map");
  }
  factors.resize(design.num_instances());
  const CorrelatedField field = draw_field(rng);
  const bool correlated = field.active();
  const bool use_stencils =
      correlated && stencils.size() >= design.num_instances();
  const double sigma_ind = sigma_independent_nm();
  const double clamp = cfg_.clamp_sigma * sigma_rnd_;
  for (InstId i = 0; i < design.num_instances(); ++i) {
    // Mirrors sample_lgate() draw-for-draw (same RNG consumption, same
    // clamp), with the systematic term read from the precomputed map and
    // the field read through the precomputed stencil when available
    // (at(Stencil) is bit-identical to at(Point)).
    double eps;
    if (correlated) {
      const double fld = use_stencils ? field.at(stencils[i])
                                      : field.at(design.instance(i).pos);
      eps = fld + rng.normal(0.0, sigma_ind);
    } else {
      eps = rng.normal(0.0, sigma_rnd_);
    }
    eps = std::clamp(eps, -clamp, clamp);
    factors[i] = delay_factor(systematic_lgate_nm[i] + eps,
                              sta.inst_corner(i), design.cell_of(i).vth);
  }
  return factors;
}

void VariationModel::draw_factors_batch(
    const Design& design, const StaEngine& sta,
    std::span<const double> systematic_lgate_nm,
    std::span<const CorrelatedField::Stencil> stencils, std::uint64_t seed,
    std::uint64_t first_sample, std::size_t width,
    std::span<double> factor_soa, DrawScratch& scratch,
    bool simd_normals) const {
  const std::size_t n = design.num_instances();
  if (systematic_lgate_nm.size() < n) {
    throw std::invalid_argument("draw_factors_batch: short systematic map");
  }
  if (factor_soa.size() < n * width) {
    throw std::invalid_argument("draw_factors_batch: short factor buffer");
  }
  const bool correlated = cfg_.correlated_fraction > 0.0;
  if (correlated && stencils.size() < n) {
    throw std::invalid_argument("draw_factors_batch: short stencil span");
  }
  scratch.eps.resize(width * n);
  const double clamp = cfg_.clamp_sigma * sigma_rnd_;
  const double sigma = correlated ? sigma_independent_nm() : sigma_rnd_;
  for (std::size_t lane = 0; lane < width; ++lane) {
    // The lane owns the substream of global sample first_sample + lane,
    // so its bits are a function of the sample index alone — never of
    // width, batch boundaries or the thread schedule.
    Rng rng(substream_seed(seed, first_sample + lane));
    double* eps = &scratch.eps[lane * n];
    CorrelatedField field;
    if (correlated) {
      field = CorrelatedField::bulk(cfg_.correlation_length_um, kCorrGrid,
                                    sigma_correlated_nm(), rng, simd_normals);
    }
    if (simd_normals) {
      rng.normals_simd({eps, n});
    } else {
      rng.normals({eps, n});
    }
    if (correlated) {
      for (std::size_t i = 0; i < n; ++i) {
        eps[i] =
            std::clamp(field.at(stencils[i]) + sigma * eps[i], -clamp, clamp);
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        eps[i] = std::clamp(sigma * eps[i], -clamp, clamp);
      }
    }
  }
  // Transform pass, instance-major to match the SoA layout the batched
  // propagation kernel consumes: one table-row index per instance, then
  // the dispatched row-interpolation kernel gathers lanes with stride n.
  // Bit-identical to a per-lane eval_row loop at every dispatch width
  // (DESIGN.md §17).
  scratch.rows.resize(n);
  for (InstId i = 0; i < n; ++i) {
    scratch.rows[i] = static_cast<std::int32_t>(
        DelayFactorTables::row(sta.inst_corner(i), design.cell_of(i).vth));
  }
  tables_.eval_rows_batch(scratch.rows.data(), systematic_lgate_nm.data(),
                          scratch.eps.data(), n, width, factor_soa.data());
}

}  // namespace vipvt
