#pragma once
// Piecewise-linear delay_factor(Lgate) tables per (supply corner, Vth
// class) for the batched draw profile.  The exact factor is a quotient of
// two alpha-power evaluations (pow + exp per call); over the clamped
// +/- clamp_sigma Lgate range it is smooth and nearly linear, so a few
// hundred knots reproduce it to ~1e-7 relative — far below the 6.5 %
// process sigma being modeled.  The builder measures the actual max
// relative error against the exact quotient on a refinement grid and
// stores it; tests assert the bound, callers can surface it.
//
// The table row for (corner, class) is laid out as interleaved
// (value, slope) pairs so the hot loop touches one contiguous row.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "liberty/cell.hpp"
#include "liberty/physics.hpp"

namespace vipvt {

class DelayFactorTables {
 public:
  DelayFactorTables() = default;  ///< unbuilt; eval() is invalid

  /// Build over [lo_nm, hi_nm] with `intervals` linear segments per row.
  /// Knot values use CharParams::raw_delay_fast (the Lgate*sqrt(Lgate)
  /// form); the error measurement compares against the exact pow-based
  /// delay_factor quotient.
  DelayFactorTables(const CharParams& cp, double lo_nm, double hi_nm,
                    int intervals = 512);

  bool built() const { return !coef_.empty(); }
  double lo_nm() const { return lo_; }
  double hi_nm() const { return lo_ + step_ * intervals_; }
  int intervals() const { return intervals_; }

  /// Measured max |table - exact| / exact over all rows, on a grid 4x
  /// finer than the knots (plus the knots themselves).
  double max_rel_error() const { return max_rel_error_; }

  static constexpr int kRows = 2 * kNumVthClasses;
  static int row(int corner, VthClass vth) {
    return (corner == kVddHigh ? 1 : 0) * kNumVthClasses +
           static_cast<int>(vth);
  }

  const double* row_data(int r) const {
    return &coef_[static_cast<std::size_t>(r) * 2 *
                  static_cast<std::size_t>(intervals_)];
  }

  /// Evaluate one row at `lgate_nm`, clamping to the table range.  The
  /// row pointer form lets the per-instance batch loop hoist the row
  /// lookup out of its lane loop.
  double eval_row(const double* row_coef, double lgate_nm) const {
    double x = (lgate_nm - lo_) * inv_step_;
    if (x < 0.0) x = 0.0;
    int j = static_cast<int>(x);
    if (j >= intervals_) j = intervals_ - 1;
    const double t = lgate_nm - (lo_ + static_cast<double>(j) * step_);
    return row_coef[2 * j] + row_coef[2 * j + 1] * t;
  }

  double eval(double lgate_nm, int corner, VthClass vth) const {
    return eval_row(row_data(row(corner, vth)), lgate_nm);
  }

  /// Batched eval_row over a whole draw: for instance i and lane l,
  ///   out[i * width + l] = eval_row(row_data(rows[i]),
  ///                                 sys[i] + eps[l * n + i])
  /// with eps lane-major (stride n between lanes) and out instance-major.
  /// Runs through the runtime-dispatched SIMD kernel (DESIGN.md §17);
  /// every dispatch target reproduces eval_row() bit-for-bit, so this is
  /// a pure throughput variant, never a numeric one.  Defined in
  /// tables.cpp.
  void eval_rows_batch(const std::int32_t* rows, const double* sys,
                       const double* eps, std::size_t n, std::size_t width,
                       double* out) const;

  /// Evaluate one row at `lgate_nm` and also report the segment slope
  /// d(factor)/d(Lgate) [1/nm] — the exact derivative of the
  /// piecewise-linear surrogate on the clamped segment, which is what
  /// the canonical SSTA linearization (DESIGN.md §16) uses as the
  /// per-gate delay sensitivity around the systematic operating point.
  /// The value is bitwise identical to eval_row() on the same inputs.
  double eval_row_slope(const double* row_coef, double lgate_nm,
                        double* slope_per_nm) const {
    double x = (lgate_nm - lo_) * inv_step_;
    if (x < 0.0) x = 0.0;
    int j = static_cast<int>(x);
    if (j >= intervals_) j = intervals_ - 1;
    const double t = lgate_nm - (lo_ + static_cast<double>(j) * step_);
    *slope_per_nm = row_coef[2 * j + 1];
    return row_coef[2 * j] + row_coef[2 * j + 1] * t;
  }

 private:
  double lo_ = 0.0;
  double step_ = 0.0;
  double inv_step_ = 0.0;
  int intervals_ = 0;
  double max_rel_error_ = 0.0;
  std::vector<double> coef_;  // kRows x intervals x (value, slope)
};

}  // namespace vipvt
