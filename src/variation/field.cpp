#include "variation/field.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace vipvt {

ExposureField::ExposureField(PolyCoeffs coeffs, double field_mm,
                             double lgate_nom_nm, double max_dev_frac)
    : coeffs_(coeffs), field_mm_(field_mm), lgate_nom_(lgate_nom_nm),
      max_dev_frac_(max_dev_frac) {
  if (field_mm <= 0 || lgate_nom_nm <= 0 || max_dev_frac <= 0) {
    throw std::invalid_argument("ExposureField: bad parameters");
  }
  // Sample the raw polynomial to find its range, then rescale so eval()
  // yields fractional deviation in [-max_dev_frac, +max_dev_frac].
  constexpr int kGrid = 200;
  double lo = 1e300, hi = -1e300;
  for (int i = 0; i <= kGrid; ++i) {
    for (int j = 0; j <= kGrid; ++j) {
      const double x = field_mm * i / kGrid;
      const double y = field_mm * j / kGrid;
      const double v = coeffs.eval(x, y);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (hi - lo < 1e-12) {
    throw std::invalid_argument("ExposureField: degenerate polynomial");
  }
  const double mid = 0.5 * (hi + lo);
  const double scale = max_dev_frac / (0.5 * (hi - lo));
  coeffs_.a = coeffs.a * scale;
  coeffs_.b = coeffs.b * scale;
  coeffs_.c = coeffs.c * scale;
  coeffs_.d = coeffs.d * scale;
  coeffs_.e = coeffs.e * scale;
  coeffs_.intercept = (coeffs.intercept - mid) * scale;
}

ExposureField ExposureField::scaled_65nm(const CharParams& cp) {
  // Raw shape in the spirit of the Cain 130 nm polynomial: dominant
  // negative linear trend along the diagonal (slowest at the origin) with
  // mild bowl curvature and a small cross term.
  // Curvature kept mild enough that the diagonal gradient stays monotone
  // across the whole 28 mm field (vertex beyond the field edge).
  PolyCoeffs raw;
  raw.a = 0.0012;
  raw.b = 0.0010;
  raw.c = -0.115;
  raw.d = -0.098;
  raw.e = 0.0006;
  raw.intercept = 3.2;
  return ExposureField(raw, 28.0, cp.lgate_nom, 0.055);
}

double ExposureField::deviation_at(double x_mm, double y_mm) const {
  const double x = std::clamp(x_mm, 0.0, field_mm_);
  const double y = std::clamp(y_mm, 0.0, field_mm_);
  return coeffs_.eval(x, y);
}

double ExposureField::lgate_at(double x_mm, double y_mm) const {
  return lgate_nom_ * (1.0 + deviation_at(x_mm, y_mm));
}

std::string ExposureField::ascii_map(int n) const {
  // Render top row (y max) first so the origin sits at the lower-left as
  // in Fig. 2.
  std::ostringstream out;
  for (int j = n - 1; j >= 0; --j) {
    const double y = field_mm_ * (j + 0.5) / n;
    for (int i = 0; i < n; ++i) {
      const double x = field_mm_ * (i + 0.5) / n;
      const double dev = deviation_at(x, y) / max_dev_frac_;  // [-1, 1]
      static constexpr char kShade[] = {'#', '@', '%', '+', '=', '-',
                                        ':', '.', ' '};
      int idx = static_cast<int>((dev + 1.0) * 0.5 * 8.999);
      idx = std::clamp(idx, 0, 8);
      out << kShade[8 - idx];
    }
    out << "\n";
  }
  return out.str();
}

DieLocation DieLocation::point(char which, double chip_mm) {
  DieLocation loc;
  double t;
  switch (which) {
    case 'A': t = 0.02; break;  // worst corner: all stages violate
    case 'B': t = 0.18; break;  // two stages violate
    case 'C': t = 0.45; break;  // only EX violates
    case 'D': t = 0.90; break;  // nominal performance
    default:
      throw std::invalid_argument("DieLocation::point: expected A..D");
  }
  loc.core_origin_mm = {t * chip_mm, t * chip_mm};
  return loc;
}

}  // namespace vipvt
