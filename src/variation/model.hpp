#pragma once
// Per-gate process variation model (paper Eq. 2):
//
//   Lgate(x, y) = f(x, y) + epsilon
//
// with f the systematic across-field polynomial (ExposureField) and
// epsilon an i.i.d. zero-mean Gaussian with 3*sigma/mu = 6.5 % (random
// component); total budget 3*sigma_tot/mu = 9 % per the ITRS-derived
// 65 nm control limits.  The Lgate sample maps to a per-gate delay
// multiplier through the alpha-power law with DIBL (Eqs. 3-4), evaluated
// at the supply voltage of the gate's island.

#include <array>
#include <span>
#include <vector>

#include "liberty/physics.hpp"
#include "netlist/design.hpp"
#include "timing/sta.hpp"
#include "util/rng.hpp"
#include "variation/field.hpp"

namespace vipvt {

struct VariationConfig {
  double three_sigma_random_frac = 0.065;
  // Lgate samples are clamped to +/- clamp_sigma random deviations to
  // keep the alpha-power law in its valid overdrive range.
  double clamp_sigma = 4.5;
  /// Fraction of the random VARIANCE that is spatially correlated
  /// within the die (0 = the paper's i.i.d. model; > 0 follows the
  /// grid-correlated within-die models of Chang/Sapatnekar and
  /// Friedberg et al. from the paper's related work).
  double correlated_fraction = 0.0;
  /// Correlation length of the within-die component [um].
  double correlation_length_um = 150.0;
};

/// One Monte-Carlo draw of the spatially-correlated within-die component:
/// a Gaussian grid, bilinearly interpolated at cell positions.
class CorrelatedField {
 public:
  CorrelatedField() = default;  ///< inactive (i.i.d. model)
  CorrelatedField(double pitch_um, int grid, double sigma_nm, Rng& rng);

  bool active() const { return !values_.empty(); }
  /// Correlated Lgate deviation [nm] at a core-local position [um].
  double at(Point pos_um) const;

 private:
  double pitch_um_ = 1.0;
  int grid_ = 0;
  std::vector<double> values_;  // (grid+1)^2 node values
};

class VariationModel {
 public:
  VariationModel(const CharParams& cp, const ExposureField& field,
                 const VariationConfig& cfg = {});

  const ExposureField& field() const { return *field_; }
  const CharParams& char_params() const { return cp_; }
  double sigma_random_nm() const { return sigma_rnd_; }

  /// Systematic Lgate [nm] for a cell of a core at `loc`.
  double systematic_lgate(Point cell_pos_um, const DieLocation& loc) const;

  /// Draw one Lgate sample (systematic + random) for a cell.  When a
  /// correlated field is supplied (and configured), the random part is
  /// split between the shared field and an independent residual.
  double sample_lgate(Point cell_pos_um, const DieLocation& loc, Rng& rng,
                      const CorrelatedField* field = nullptr) const;

  /// Draw the per-sample correlated within-die component (inactive field
  /// when correlated_fraction == 0).
  CorrelatedField draw_field(Rng& rng) const;

  /// Standard deviations of the split [nm].
  double sigma_correlated_nm() const;
  double sigma_independent_nm() const;

  /// Delay multiplier for a gate with this Lgate at the given supply
  /// corner, relative to nominal Lgate at that same corner and Vth class.
  /// Relative to the *same* corner/class so it composes with StaEngine
  /// base delays, which already include corner and class scaling.
  double delay_factor(double lgate_nm, int corner,
                      VthClass vth = VthClass::Svt) const;

  /// Leakage multiplier at the given corner, relative to nominal Lgate
  /// at the low corner (absolute corner effect included: the power
  /// engine applies this directly on low-Vdd reference leakage).
  double leakage_factor(double lgate_nm, int corner) const;

  double vdd_of_corner(int corner) const {
    return corner == kVddHigh ? cp_.vdd_high : cp_.vdd_low;
  }

  /// Fill `factors` (size = instances) with one Monte-Carlo draw for the
  /// whole design; corners per instance come from the STA engine's last
  /// compute_base().  Returns the same vector by reference for chaining.
  std::vector<double>& draw_factors(const Design& design, const StaEngine& sta,
                                    const DieLocation& loc, Rng& rng,
                                    std::vector<double>& factors) const;

  /// The sample-invariant half of a draw: the systematic exposure-field
  /// polynomial evaluated at every placed instance of a core at `loc`.
  /// Monte-Carlo runs evaluate this once per (die, location) and then
  /// draw thousands of samples against it; re-evaluating it per sample
  /// (what the DieLocation draw_factors overload does) is pure waste —
  /// it costs five multiplies and a clamp per gate per sample.
  std::vector<double> systematic_lgates(const Design& design,
                                        const DieLocation& loc) const;

  /// Hot-path draw against a precomputed systematic map (one entry per
  /// instance, from systematic_lgates()).  Consumes the same RNG stream
  /// and produces bit-identical factors to the DieLocation overload.
  std::vector<double>& draw_factors(const Design& design, const StaEngine& sta,
                                    std::span<const double> systematic_lgate_nm,
                                    Rng& rng,
                                    std::vector<double>& factors) const;

 private:
  CharParams cp_;
  const ExposureField* field_;
  VariationConfig cfg_;
  double sigma_rnd_;  // nm
  /// raw_delay at nominal Lgate per (corner, Vth class): the
  /// denominator of every delay_factor(), hoisted out of the per-gate
  /// per-sample loop (it halves the pow() count of a Monte-Carlo draw;
  /// the quotient is bitwise unchanged since the operands are).
  std::array<std::array<double, kNumVthClasses>, 2> nominal_raw_delay_{};
};

}  // namespace vipvt
