#pragma once
// Per-gate process variation model (paper Eq. 2):
//
//   Lgate(x, y) = f(x, y) + epsilon
//
// with f the systematic across-field polynomial (ExposureField) and
// epsilon an i.i.d. zero-mean Gaussian with 3*sigma/mu = 6.5 % (random
// component); total budget 3*sigma_tot/mu = 9 % per the ITRS-derived
// 65 nm control limits.  The Lgate sample maps to a per-gate delay
// multiplier through the alpha-power law with DIBL (Eqs. 3-4), evaluated
// at the supply voltage of the gate's island.

#include <array>
#include <span>
#include <vector>

#include "liberty/physics.hpp"
#include "netlist/design.hpp"
#include "timing/sta.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"
#include "variation/field.hpp"
#include "variation/tables.hpp"

namespace vipvt {

struct VariationConfig {
  double three_sigma_random_frac = 0.065;
  // Lgate samples are clamped to +/- clamp_sigma random deviations to
  // keep the alpha-power law in its valid overdrive range.
  double clamp_sigma = 4.5;
  /// Fraction of the random VARIANCE that is spatially correlated
  /// within the die (0 = the paper's i.i.d. model; > 0 follows the
  /// grid-correlated within-die models of Chang/Sapatnekar and
  /// Friedberg et al. from the paper's related work).
  double correlated_fraction = 0.0;
  /// Correlation length of the within-die component [um].
  double correlation_length_um = 150.0;
};

/// One Monte-Carlo draw of the spatially-correlated within-die component:
/// a Gaussian grid, bilinearly interpolated at cell positions.
class CorrelatedField {
 public:
  CorrelatedField() = default;  ///< inactive (i.i.d. model)
  CorrelatedField(double pitch_um, int grid, double sigma_nm, Rng& rng);

  /// Counter-driven bulk draw of the node grid (Rng::normals instead of
  /// per-node polar normals) — the batched draw profile's field source.
  /// With simd_normals the grid is filled by Rng::normals_simd instead:
  /// the BatchedSimd profile's arch-invariant stream (a different stream
  /// than normals(); see DrawProfile in mc_ssta.hpp).
  static CorrelatedField bulk(double pitch_um, int grid, double sigma_nm,
                              Rng& rng, bool simd_normals = false);

  bool active() const { return !values_.empty(); }

  /// Precomputed bilinear interpolation site for a fixed cell position:
  /// node indices, raw weights and the sqrt weight normalization of
  /// at(Point), hoisted out of the per-gate draw loop.  Positions are
  /// sample-invariant — only node values change between draws — so a
  /// Monte-Carlo run computes stencils once and reuses them for every
  /// sample (VariationModel::field_stencils).
  struct Stencil {
    std::uint32_t idx[4]{};
    double w[4]{};
    double norm = 1.0;
  };
  static Stencil stencil_at(Point pos_um, double pitch_um, int grid);

  /// Correlated Lgate deviation [nm] at a core-local position [um].
  double at(Point pos_um) const;

  /// Stencil evaluation.  Evaluates exactly the expression at(Point)
  /// evaluates, in the same order, so the hoisted path is bit-identical
  /// to the direct one.
  double at(const Stencil& s) const {
    if (!active()) return 0.0;
    const double interp = values_[s.idx[0]] * s.w[0] +
                          values_[s.idx[1]] * s.w[1] +
                          values_[s.idx[2]] * s.w[2] +
                          values_[s.idx[3]] * s.w[3];
    return interp / s.norm;
  }

 private:
  double pitch_um_ = 1.0;
  int grid_ = 0;
  std::vector<double> values_;  // (grid+1)^2 node values
};

class VariationModel {
 public:
  VariationModel(const CharParams& cp, const ExposureField& field,
                 const VariationConfig& cfg = {});

  const ExposureField& field() const { return *field_; }
  const CharParams& char_params() const { return cp_; }
  const VariationConfig& config() const { return cfg_; }
  double sigma_random_nm() const { return sigma_rnd_; }

  /// Systematic Lgate [nm] for a cell of a core at `loc`.
  double systematic_lgate(Point cell_pos_um, const DieLocation& loc) const;

  /// Draw one Lgate sample (systematic + random) for a cell.  When a
  /// correlated field is supplied (and configured), the random part is
  /// split between the shared field and an independent residual.
  double sample_lgate(Point cell_pos_um, const DieLocation& loc, Rng& rng,
                      const CorrelatedField* field = nullptr) const;

  /// Draw the per-sample correlated within-die component (inactive field
  /// when correlated_fraction == 0).
  CorrelatedField draw_field(Rng& rng) const;

  /// Standard deviations of the split [nm].
  double sigma_correlated_nm() const;
  double sigma_independent_nm() const;

  /// Delay multiplier for a gate with this Lgate at the given supply
  /// corner, relative to nominal Lgate at that same corner and Vth class.
  /// Relative to the *same* corner/class so it composes with StaEngine
  /// base delays, which already include corner and class scaling.
  double delay_factor(double lgate_nm, int corner,
                      VthClass vth = VthClass::Svt) const;

  /// Leakage multiplier at the given corner, relative to nominal Lgate
  /// at the low corner (absolute corner effect included: the power
  /// engine applies this directly on low-Vdd reference leakage).
  double leakage_factor(double lgate_nm, int corner) const;

  double vdd_of_corner(int corner) const {
    return corner == kVddHigh ? cp_.vdd_high : cp_.vdd_low;
  }

  /// Fill `factors` (size = instances) with one Monte-Carlo draw for the
  /// whole design; corners per instance come from the STA engine's last
  /// compute_base().  Returns the same vector by reference for chaining.
  std::vector<double>& draw_factors(const Design& design, const StaEngine& sta,
                                    const DieLocation& loc, Rng& rng,
                                    std::vector<double>& factors) const;

  /// The sample-invariant half of a draw: the systematic exposure-field
  /// polynomial evaluated at every placed instance of a core at `loc`.
  /// Monte-Carlo runs evaluate this once per (die, location) and then
  /// draw thousands of samples against it; re-evaluating it per sample
  /// (what the DieLocation draw_factors overload does) is pure waste —
  /// it costs five multiplies and a clamp per gate per sample.
  std::vector<double> systematic_lgates(const Design& design,
                                        const DieLocation& loc) const;

  /// Hot-path draw against a precomputed systematic map (one entry per
  /// instance, from systematic_lgates()).  Consumes the same RNG stream
  /// and produces bit-identical factors to the DieLocation overload.
  std::vector<double>& draw_factors(const Design& design, const StaEngine& sta,
                                    std::span<const double> systematic_lgate_nm,
                                    Rng& rng,
                                    std::vector<double>& factors) const;

  /// Node-grid resolution of the within-die correlated field: 24 pitches
  /// of one correlation length cover dies up to ~24 correlation lengths
  /// across; larger positions clamp to the edge.
  static constexpr int kCorrGrid = 24;

  /// Per-(corner, Vth class) delay-factor interpolation tables over the
  /// reachable Lgate range (systematic field extremes +/- the random
  /// clamp), built once at construction.  The batched draw profile reads
  /// factors from these instead of evaluating the alpha-power quotient
  /// per gate per sample; max_rel_error() is the measured bound.
  const DelayFactorTables& delay_factor_tables() const { return tables_; }

  /// Sample-invariant correlated-field stencils for every placed instance
  /// (empty when correlated_fraction == 0).  Hoists CorrelatedField::at's
  /// index/weight/sqrt work out of the per-gate per-sample loop.
  std::vector<CorrelatedField::Stencil> field_stencils(
      const Design& design) const;

  /// Scalar draw with precomputed stencils: bit-identical to the span
  /// overload above (which delegates here with an empty stencil span and
  /// falls back to direct at(Point) evaluation).
  std::vector<double>& draw_factors(
      const Design& design, const StaEngine& sta,
      std::span<const double> systematic_lgate_nm,
      std::span<const CorrelatedField::Stencil> stencils, Rng& rng,
      std::vector<double>& factors) const;

  /// Reusable buffers of draw_factors_batch, kept across batches by the
  /// caller (one per MC worker) to avoid per-batch allocation.  eps is
  /// 64-byte aligned (util/aligned.hpp) for the transform kernel's wide
  /// gathers; rows caches the per-instance table-row index feeding
  /// DelayFactorTables::eval_rows_batch.
  struct DrawScratch {
    AlignedVec<double> eps;          // width x instances, lane-major
    std::vector<std::int32_t> rows;  // instances (table row per instance)
  };

  /// Batched draw profile: fill `factor_soa` — instance-major,
  /// factor_soa[i * width + lane] — with `width` independent whole-design
  /// draws in one pass.  Lane `l` owns the RNG substream of global sample
  /// first_sample + l (substream_seed, same keying as the scalar path),
  /// draws its normals in bulk (Rng::normals) and maps Lgate to delay
  /// factor through the interpolation tables.  Every lane's bits are a
  /// function of (seed, global sample index) alone — never of width,
  /// batch boundaries or the thread schedule — which is the profile's
  /// determinism contract.  NOTE: this is a different (statistically
  /// equivalent) stream than the scalar path's polar normals; the two
  /// profiles do not produce bit-identical samples by design.
  ///
  /// simd_normals selects Rng::normals_simd for the bulk normal fills —
  /// the BatchedSimd profile's arch-invariant stream (again different,
  /// again statistically equivalent; DESIGN.md §17).  The Lgate-to-factor
  /// transform always runs through the dispatched table kernel, which is
  /// bit-identical to eval_row at every dispatch width, so the flag only
  /// ever changes WHICH normal stream feeds the draw — never how any
  /// stream is transformed.
  void draw_factors_batch(const Design& design, const StaEngine& sta,
                          std::span<const double> systematic_lgate_nm,
                          std::span<const CorrelatedField::Stencil> stencils,
                          std::uint64_t seed, std::uint64_t first_sample,
                          std::size_t width, std::span<double> factor_soa,
                          DrawScratch& scratch,
                          bool simd_normals = false) const;

 private:
  CharParams cp_;
  const ExposureField* field_;
  VariationConfig cfg_;
  double sigma_rnd_;  // nm
  /// raw_delay at nominal Lgate per (corner, Vth class): the
  /// denominator of every delay_factor(), hoisted out of the per-gate
  /// per-sample loop (it halves the pow() count of a Monte-Carlo draw;
  /// the quotient is bitwise unchanged since the operands are).
  std::array<std::array<double, kNumVthClasses>, 2> nominal_raw_delay_{};
  DelayFactorTables tables_;
};

}  // namespace vipvt
