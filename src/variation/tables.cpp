#include "variation/tables.hpp"

#include <cmath>
#include <stdexcept>

#include "util/simd/dispatch.hpp"

namespace vipvt {

DelayFactorTables::DelayFactorTables(const CharParams& cp, double lo_nm,
                                     double hi_nm, int intervals) {
  if (!(hi_nm > lo_nm) || intervals < 2) {
    throw std::invalid_argument("DelayFactorTables: degenerate range");
  }
  lo_ = lo_nm;
  intervals_ = intervals;
  step_ = (hi_nm - lo_nm) / intervals;
  inv_step_ = 1.0 / step_;
  coef_.resize(static_cast<std::size_t>(kRows) * 2 *
               static_cast<std::size_t>(intervals_));

  for (int corner : {kVddLow, kVddHigh}) {
    const double vdd = corner == kVddHigh ? cp.vdd_high : cp.vdd_low;
    for (int v = 0; v < kNumVthClasses; ++v) {
      const double vth0c = cp.vth0_of(static_cast<VthClass>(v));
      // Same exact denominator as the scalar path's cached one, so both
      // profiles target the identical normalization.
      const double denom = cp.raw_delay(cp.lgate_nom, vdd, vth0c);
      const int r = row(corner, static_cast<VthClass>(v));
      double* rc = &coef_[static_cast<std::size_t>(r) * 2 *
                          static_cast<std::size_t>(intervals_)];
      double v0 = cp.raw_delay_fast(lo_, vdd, vth0c) / denom;
      for (int j = 0; j < intervals_; ++j) {
        const double x1 = lo_ + static_cast<double>(j + 1) * step_;
        const double v1 = cp.raw_delay_fast(x1, vdd, vth0c) / denom;
        rc[2 * j] = v0;
        rc[2 * j + 1] = (v1 - v0) * inv_step_;
        v0 = v1;
      }
    }
  }

  // Measure the real worst case against the exact quotient: 4 probes per
  // interval plus the endpoints.  Knots themselves are off the exact
  // curve by the raw_delay_fast-vs-pow ulp, so they are probed too.
  const int probes = 4 * intervals_;
  for (int corner : {kVddLow, kVddHigh}) {
    const double vdd = corner == kVddHigh ? cp.vdd_high : cp.vdd_low;
    for (int v = 0; v < kNumVthClasses; ++v) {
      const double vth0c = cp.vth0_of(static_cast<VthClass>(v));
      const double denom = cp.raw_delay(cp.lgate_nom, vdd, vth0c);
      const double* rc = row_data(row(corner, static_cast<VthClass>(v)));
      for (int g = 0; g <= probes; ++g) {
        const double l =
            lo_ + (hi_nm - lo_nm) * static_cast<double>(g) / probes;
        const double exact = cp.raw_delay(l, vdd, vth0c) / denom;
        const double err = std::abs(eval_row(rc, l) - exact) / exact;
        if (err > max_rel_error_) max_rel_error_ = err;
      }
    }
  }
}

void DelayFactorTables::eval_rows_batch(const std::int32_t* rows,
                                        const double* sys, const double* eps,
                                        std::size_t n, std::size_t width,
                                        double* out) const {
  simd::active_kernels().draw_transform(
      coef_.data(), 2 * intervals_, lo_, step_, inv_step_, intervals_, rows,
      sys, eps, out, n, width);
}

}  // namespace vipvt
