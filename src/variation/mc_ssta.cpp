#include "variation/mc_ssta.hpp"

#include <algorithm>
#include <cmath>

namespace vipvt {

double McResult::worst_three_sigma_slack() const {
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& sd : stages) {
    if (sd.present) worst = std::min(worst, sd.three_sigma_slack());
  }
  return worst;
}

int McResult::num_violating_stages() const {
  int n = 0;
  for (PipeStage s : {PipeStage::Decode, PipeStage::Execute,
                      PipeStage::WriteBack}) {
    if (stage(s).violates()) ++n;
  }
  return n;
}

MonteCarloSsta::MonteCarloSsta(const Design& design, const StaEngine& sta,
                               const VariationModel& model)
    : design_(&design), sta_(&sta), model_(&model) {}

McResult MonteCarloSsta::run(const DieLocation& loc, const McConfig& cfg) const {
  McResult result;
  result.samples = cfg.samples;
  for (int s = 0; s < kNumPipeStages; ++s) {
    result.stages[s].stage = static_cast<PipeStage>(s);
    result.stages[s].samples.reserve(static_cast<std::size_t>(cfg.samples));
  }
  const auto& endpoints = sta_->endpoints();
  result.endpoint_crit_prob.assign(endpoints.size(), 0.0);
  result.endpoint_stage_crit.assign(endpoints.size(), 0);
  result.min_period_samples.reserve(static_cast<std::size_t>(cfg.samples));

  Rng rng(cfg.seed);
  std::vector<double> factors;
  for (int k = 0; k < cfg.samples; ++k) {
    Rng sample_rng = rng.fork();
    model_->draw_factors(*design_, *sta_, loc, sample_rng, factors);
    const StaResult sr = sta_->analyze(factors);

    for (int s = 0; s < kNumPipeStages; ++s) {
      const double wns = sr.stage_wns[static_cast<std::size_t>(s)];
      if (std::isfinite(wns)) {
        result.stages[s].present = true;
        result.stages[s].samples.push_back(wns);
      }
    }
    double min_t = 0.0;
    for (std::size_t epi = 0; epi < endpoints.size(); ++epi) {
      const double slack = sr.endpoint_slack[epi];
      if (!std::isfinite(slack)) continue;
      if (slack < 0.0) result.endpoint_crit_prob[epi] += 1.0;
      const double stage_wns =
          sr.stage_wns[static_cast<std::size_t>(endpoints[epi].stage)];
      if (slack <= stage_wns + 1e-12) ++result.endpoint_stage_crit[epi];
      min_t = std::max(min_t, sr.clock_period_ns - slack);
    }
    result.min_period_samples.push_back(min_t);
  }

  const double inv_n = cfg.samples > 0 ? 1.0 / cfg.samples : 0.0;
  for (auto& p : result.endpoint_crit_prob) p *= inv_n;
  for (int s = 0; s < kNumPipeStages; ++s) {
    auto& sd = result.stages[s];
    if (!sd.present || sd.samples.empty()) continue;
    sd.fit = fit_normal(sd.samples, cfg.confidence);
    const auto [lo, hi] =
        std::minmax_element(sd.samples.begin(), sd.samples.end());
    sd.min_slack = *lo;
    sd.max_slack = *hi;
  }
  return result;
}

}  // namespace vipvt
