#include "variation/mc_ssta.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <span>

#include "util/parallel.hpp"

namespace vipvt {

double McResult::worst_three_sigma_slack() const {
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& sd : stages) {
    if (sd.present) worst = std::min(worst, sd.three_sigma_slack());
  }
  return worst;
}

const char* mc_stop_name(McStop reason) {
  switch (reason) {
    case McStop::FixedBudget: return "fixed-budget";
    case McStop::Converged: return "converged";
    case McStop::MaxSamples: return "max-samples";
  }
  return "?";
}

int McResult::num_violating_stages() const {
  int n = 0;
  for (PipeStage s : {PipeStage::Decode, PipeStage::Execute,
                      PipeStage::WriteBack}) {
    if (stage(s).violates()) ++n;
  }
  return n;
}

MonteCarloSsta::MonteCarloSsta(const Design& design, const StaEngine& sta,
                               const VariationModel& model)
    : design_(&design), sta_(&sta), model_(&model) {}

namespace {

/// Worker-local state of the sampling loop: an engine clone (mutable
/// scratch), lane buffers for `width` samples, and per-endpoint tallies.
/// Tallies are unsigned counts so the cross-worker merge is exact
/// integer addition — bit-identical no matter which worker counted what.
struct McWorker {
  explicit McWorker(const StaEngine& sta, int width, std::size_t num_eps,
                    std::size_t num_inst, DrawProfile profile)
      : engine(sta), results(static_cast<std::size_t>(width)),
        crit(num_eps, 0), stage_crit(num_eps, 0) {
    if (profile != DrawProfile::Scalar) {
      factor_soa.resize(num_inst * static_cast<std::size_t>(width));
    } else {
      factors.resize(static_cast<std::size_t>(width));
    }
  }

  StaEngine engine;
  std::vector<std::vector<double>> factors;  ///< Scalar profile lanes
  AlignedVec<double> factor_soa;  ///< Batched/BatchedSimd lanes (SoA, 64B)
  VariationModel::DrawScratch scratch;
  std::vector<StaResult> results;
  std::vector<std::uint32_t> crit;        ///< samples with slack < 0
  std::vector<std::uint32_t> stage_crit;  ///< samples setting stage WNS
};

}  // namespace

McResult MonteCarloSsta::run(const DieLocation& loc, const McConfig& cfg,
                             ThreadPool* pool) const {
  const std::vector<double> systematic =
      model_->systematic_lgates(*design_, loc);
  return run_with_systematic(systematic, cfg, pool);
}

McResult MonteCarloSsta::run_with_systematic(
    std::span<const double> systematic, const McConfig& cfg,
    ThreadPool* pool) const {
  const AdaptivePolicy& ap = cfg.adaptive;
  if (ap.enabled &&
      (ap.min_samples < 1 || ap.max_samples < ap.min_samples ||
       ap.check_every_batches < 1 ||
       !(ap.confidence > 0.0 && ap.confidence < 1.0))) {
    throw std::invalid_argument(
        "MonteCarloSsta: degenerate AdaptivePolicy (need 1 <= min_samples "
        "<= max_samples, check_every_batches >= 1, confidence in (0,1))");
  }
  // Fixed mode runs the whole budget; adaptive mode treats it as a cap
  // and may stop at any earlier round boundary.
  const int budget = ap.enabled ? ap.max_samples : cfg.samples;

  McResult result;
  result.samples = budget;
  for (int s = 0; s < kNumPipeStages; ++s) {
    result.stages[s].stage = static_cast<PipeStage>(s);
    result.stages[s].samples.reserve(
        static_cast<std::size_t>(std::max(budget, 0)));
  }
  const auto& endpoints = sta_->endpoints();
  const std::size_t num_eps = endpoints.size();
  result.endpoint_crit_prob.assign(num_eps, 0.0);
  result.endpoint_stage_crit.assign(num_eps, 0);
  if (budget <= 0) return result;
  const auto cap = static_cast<std::size_t>(budget);
  const int width = std::max(cfg.batch, 1);
  const std::size_t num_inst = design_->num_instances();
  result.min_period_samples.reserve(cap);

  // Sample-invariant precomputes: the systematic Lgate map arrives from
  // the caller (evaluated once per run — or once per reticle slot in the
  // wafer path); the correlated-field stencils hoist the bilinear
  // index/weight/sqrt work out of the per-gate per-sample loop.
  if (systematic.size() < num_inst) {
    throw std::invalid_argument("run_with_systematic: short systematic map");
  }
  const std::vector<CorrelatedField::Stencil> stencils =
      model_->field_stencils(*design_);

  // Pre-sized per-sample slots (the adaptive cap is the worst case);
  // workers only ever write their own indices, so the thread schedule
  // cannot reach the output.
  std::vector<std::array<double, kNumPipeStages>> stage_wns(cap);
  std::vector<double> min_period(cap);

  // Workers are leased per parallel_for call and returned to the idle
  // list afterwards, so adaptive rounds reuse engine clones instead of
  // re-copying the StaEngine every round.  Which worker counted which
  // endpoint tally is schedule-dependent, but the final merge is exact
  // integer addition — order-free by construction.
  std::mutex workers_mu;
  std::vector<std::shared_ptr<McWorker>> workers, idle;
  auto make_worker = [&]() -> std::shared_ptr<McWorker> {
    const std::lock_guard<std::mutex> lock(workers_mu);
    if (!idle.empty()) {
      auto w = idle.back();
      idle.pop_back();
      return w;
    }
    auto w =
        std::make_shared<McWorker>(*sta_, width, num_eps, num_inst,
                                   cfg.profile);
    workers.push_back(w);
    return w;
  };

  const std::size_t total_batches =
      (cap + static_cast<std::size_t>(width) - 1) /
      static_cast<std::size_t>(width);
  auto process_batch = [&](McWorker& w, std::size_t bi) {
    const std::size_t first = bi * static_cast<std::size_t>(width);
    const std::size_t lanes =
        std::min<std::size_t>(static_cast<std::size_t>(width), cap - first);
    if (cfg.profile != DrawProfile::Scalar) {
      // Draw all lanes in one pass directly into the SoA layout the
      // propagation kernel consumes; no per-batch transpose.  BatchedSimd
      // only swaps the bulk normal stream (Rng::normals_simd); the rest
      // of the engine is shared with Batched.
      model_->draw_factors_batch(
          *design_, w.engine, systematic, stencils, cfg.seed, first, lanes,
          std::span(w.factor_soa).first(num_inst * lanes), w.scratch,
          cfg.profile == DrawProfile::BatchedSimd);
      w.engine.analyze_batch_soa(
          std::span<const double>(w.factor_soa).first(num_inst * lanes),
          lanes, std::span(w.results).first(lanes));
      // (lanes is the SoA stride: the tail batch packs tightly, and every
      // lane's bits are width-independent by the draw's contract.)
    } else {
      for (std::size_t l = 0; l < lanes; ++l) {
        Rng rng(substream_seed(cfg.seed, first + l));
        model_->draw_factors(*design_, w.engine, systematic, stencils, rng,
                             w.factors[l]);
      }
      if (width == 1) {
        w.results[0] = w.engine.analyze(w.factors[0]);
      } else {
        w.engine.analyze_batch(std::span(w.factors).first(lanes),
                               std::span(w.results).first(lanes));
      }
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      const StaResult& sr = w.results[l];
      stage_wns[first + l] = sr.stage_wns;
      min_period[first + l] = sr.min_period_ns;
      for (std::size_t epi = 0; epi < num_eps; ++epi) {
        const double slack = sr.endpoint_slack[epi];
        if (!std::isfinite(slack)) continue;
        if (slack < 0.0) ++w.crit[epi];
        const double swns =
            sr.stage_wns[static_cast<std::size_t>(endpoints[epi].stage)];
        if (slack <= swns + 1e-12) ++w.stage_crit[epi];
      }
    }
  };

  auto run_batches = [&](std::size_t first_batch, std::size_t count) {
    if (pool != nullptr) {
      parallel_for(*pool, count, make_worker,
                   [&](std::shared_ptr<McWorker>& w, std::size_t bi) {
                     process_batch(*w, first_batch + bi);
                   });
    } else {
      const auto w = make_worker();
      for (std::size_t bi = 0; bi < count; ++bi) {
        process_batch(*w, first_batch + bi);
      }
    }
    // The parallel_for barrier has passed: every lease is back.
    const std::lock_guard<std::mutex> lock(workers_mu);
    idle = workers;
  };

  std::size_t num_samples = cap;
  if (!ap.enabled) {
    run_batches(0, total_batches);
  } else {
    // Sequential sampling: draw `check_every_batches` whole batches per
    // round, extend the per-stage Welford accumulators with ONLY the new
    // round's samples (in sample order — no refit over the prefix), and
    // stop at the first round boundary >= min_samples where every
    // present stage's µ and σ confidence intervals are tight enough.
    // Round boundaries are sample counts, a function of (policy, batch
    // width) alone — the thread schedule cannot move the stopping N.
    const auto cadence = static_cast<std::size_t>(ap.check_every_batches);
    std::array<RunningStats, kNumPipeStages> acc;
    std::size_t accumulated = 0;
    std::size_t batches_done = 0;
    result.stopping_reason = McStop::MaxSamples;
    while (batches_done < total_batches) {
      const std::size_t round =
          std::min(cadence, total_batches - batches_done);
      run_batches(batches_done, round);
      batches_done += round;
      const std::size_t n_now =
          std::min(cap, batches_done * static_cast<std::size_t>(width));
      for (std::size_t k = accumulated; k < n_now; ++k) {
        for (int s = 0; s < kNumPipeStages; ++s) {
          const double wns = stage_wns[k][static_cast<std::size_t>(s)];
          if (std::isfinite(wns)) acc[static_cast<std::size_t>(s)].add(wns);
        }
      }
      accumulated = n_now;
      McRound rnd;
      rnd.samples = static_cast<int>(n_now);
      bool converged = true;
      for (const RunningStats& rs : acc) {
        if (rs.count() == 0) continue;  // stage absent (so far)
        const double mean_hw =
            mean_confidence_interval(rs.count(), rs.mean(), rs.stddev(),
                                     ap.confidence)
                .half_width();
        const double sigma_hw =
            stddev_confidence_interval(rs.count(), rs.stddev(), ap.confidence)
                .half_width();
        rnd.worst_mean_half_width_ns =
            std::max(rnd.worst_mean_half_width_ns, mean_hw);
        rnd.worst_sigma_half_width_ns =
            std::max(rnd.worst_sigma_half_width_ns, sigma_hw);
        // NaN / infinite half-widths (n < 2, corrupted samples) fail
        // both comparisons, which is the conservative direction.
        converged = converged && mean_hw <= ap.mean_half_width_ns &&
                    sigma_hw <= ap.sigma_half_width_ns;
      }
      rnd.converged = converged;
      result.convergence.push_back(rnd);
      num_samples = n_now;
      if (converged &&
          n_now >= static_cast<std::size_t>(ap.min_samples)) {
        result.stopping_reason = McStop::Converged;
        break;
      }
    }
    result.samples = static_cast<int>(num_samples);
  }

  // Serial aggregation in sample order (vector outputs), plus the exact
  // integer merge of the per-worker endpoint tallies.  Everything below
  // sees only samples [0, num_samples) — the prefix an equivalent fixed
  // run would have drawn — so adaptive and fixed agree bit-for-bit.
  for (std::size_t k = 0; k < num_samples; ++k) {
    for (int s = 0; s < kNumPipeStages; ++s) {
      const double wns = stage_wns[k][static_cast<std::size_t>(s)];
      if (std::isfinite(wns)) {
        result.stages[s].present = true;
        result.stages[s].samples.push_back(wns);
      }
    }
    result.min_period_samples.push_back(min_period[k]);
  }
  for (const auto& w : workers) {
    for (std::size_t epi = 0; epi < num_eps; ++epi) {
      result.endpoint_crit_prob[epi] += static_cast<double>(w->crit[epi]);
      result.endpoint_stage_crit[epi] += w->stage_crit[epi];
    }
  }

  const double inv_n = 1.0 / static_cast<double>(num_samples);
  for (auto& p : result.endpoint_crit_prob) p *= inv_n;
  for (int s = 0; s < kNumPipeStages; ++s) {
    auto& sd = result.stages[s];
    if (!sd.present || sd.samples.empty()) continue;
    sd.fit = fit_normal(sd.samples, cfg.confidence);
    const auto [lo, hi] =
        std::minmax_element(sd.samples.begin(), sd.samples.end());
    sd.min_slack = *lo;
    sd.max_slack = *hi;
  }
  return result;
}

}  // namespace vipvt
