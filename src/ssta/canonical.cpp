#include "ssta/canonical.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "ssta/clark.hpp"
#include "util/stats.hpp"

namespace vipvt {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Clark-merge one canonical form (m, vi, s[0..G)) into an accumulator
/// (tm, tvi, ts[0..G)).  Globals are shared (their covariance is the dot
/// product of the sensitivity rows); the independent parts are treated
/// as uncorrelated — the canonical-form approximation DESIGN.md §16
/// documents.  After the merge the accumulator's sensitivities are the
/// p-blend of the operands and the independent variance absorbs the
/// total-variance remainder (floored at 0).
void merge_canon(double& tm, double& tvi, double* ts, double m, double vi,
                 const double* s, std::size_t num_globals) {
  if (tm == kNegInf) {
    tm = m;
    tvi = vi;
    if (num_globals != 0) std::copy(s, s + num_globals, ts);
    return;
  }
  double va = tvi;
  double vb = vi;
  double cov = 0.0;
  for (std::size_t g = 0; g < num_globals; ++g) {
    va += ts[g] * ts[g];
    vb += s[g] * s[g];
    cov += ts[g] * s[g];
  }
  const ClarkMax cm = clark_max(tm, va, m, vb, cov);
  tm = cm.mean;
  double blended2 = 0.0;
  for (std::size_t g = 0; g < num_globals; ++g) {
    ts[g] = cm.p * ts[g] + (1.0 - cm.p) * s[g];
    blended2 += ts[g] * ts[g];
  }
  tvi = std::max(cm.var - blended2, 0.0);
}

}  // namespace

int CanonicalResult::num_violating_stages() const {
  int n = 0;
  for (PipeStage s :
       {PipeStage::Decode, PipeStage::Execute, PipeStage::WriteBack}) {
    if (stage(s).violates()) ++n;
  }
  return n;
}

double CanonicalResult::fmax_ghz(double percentile) const {
  const double q =
      min_period_mean_ns + normal_quantile(percentile) * min_period_sigma_ns;
  return q > 0.0 ? 1.0 / q : 0.0;
}

CanonicalSsta::CanonicalSsta(const Design& design, const StaEngine& sta,
                             const VariationModel& model)
    : design_(&design), sta_(&sta), model_(&model) {
  stencils_ = model.field_stencils(design);
  if (!stencils_.empty()) {
    // Remap the grid nodes actually touched by some stencil into a dense
    // active-global index space (first-seen order over instances — a
    // core much smaller than the correlation length touches a handful
    // of the (kCorrGrid+1)^2 nodes).  The sqrt norm of at(Stencil) is
    // folded into the weights here so run() never divides.
    std::unordered_map<std::uint32_t, std::uint32_t> dense;
    for (auto& s : stencils_) {
      for (int k = 0; k < 4; ++k) {
        auto [it, inserted] =
            dense.emplace(s.idx[k], static_cast<std::uint32_t>(dense.size()));
        s.idx[k] = it->second;
        s.w[k] /= s.norm;
      }
      s.norm = 1.0;
    }
    num_globals_ = dense.size();
  }
}

CanonicalResult CanonicalSsta::run(
    std::span<const double> systematic_lgate_nm) const {
  const std::size_t num_inst = design_->num_instances();
  if (systematic_lgate_nm.size() < num_inst) {
    throw std::invalid_argument(
        "CanonicalSsta::run: systematic map shorter than instance count");
  }
  const std::size_t num_nodes = sta_->num_nodes();
  const std::size_t G = num_globals_;
  const double sigma_corr = model_->sigma_correlated_nm();
  const double sigma_ind = model_->sigma_independent_nm();
  const DelayFactorTables& tables = model_->delay_factor_tables();

  // Per-instance linearization of delay_factor around the systematic
  // operating point: value + slope from the interpolation-table segment.
  inst_value_.resize(num_inst);
  inst_slope_.resize(num_inst);
  for (std::size_t i = 0; i < num_inst; ++i) {
    const double* row = tables.row_data(
        tables.row(sta_->inst_corner(static_cast<InstId>(i)),
                   design_->cell_of(static_cast<InstId>(i)).vth));
    inst_value_[i] =
        tables.eval_row_slope(row, systematic_lgate_nm[i], &inst_slope_[i]);
  }

  mean_.assign(num_nodes, kNegInf);
  var_ind_.assign(num_nodes, 0.0);
  sens_.assign(num_nodes * G, 0.0);
  cand_sens_.assign(G, 0.0);

  // Adds the canonical delay of a cell arc (inst, base) onto the
  // candidate (m, vi, cand_sens_).
  const auto add_arc = [&](InstId inst, double base, double& m, double& vi) {
    const std::size_t i = static_cast<std::size_t>(inst);
    m += base * inst_value_[i];
    const double bs = base * inst_slope_[i];
    const double bi = bs * sigma_ind;
    vi += bi * bi;
    if (G != 0) {
      const CorrelatedField::Stencil& st = stencils_[i];
      const double bc = bs * sigma_corr;
      for (int k = 0; k < 4; ++k) {
        cand_sens_[st.idx[k]] += bc * st.w[k];
      }
    }
  };

  // Launch initialization — mirrors analyze(): flop clk->q launches are
  // scaled (and carry the flop's variation), primary-input launches are
  // deterministic.
  const auto launch_nodes = sta_->launch_nodes();
  const auto launch_bases = sta_->launch_bases();
  const auto launch_insts = sta_->launch_insts();
  for (std::size_t l = 0; l < launch_nodes.size(); ++l) {
    std::fill(cand_sens_.begin(), cand_sens_.end(), 0.0);
    double m = 0.0;
    double vi = 0.0;
    const InstId inst = launch_insts[l];
    const double base = static_cast<double>(launch_bases[l]);
    if (inst == kInvalidInst) {
      m = base;
    } else {
      add_arc(inst, base, m, vi);
    }
    const std::uint32_t node = launch_nodes[l];
    merge_canon(mean_[node], var_ind_[node], G ? &sens_[node * G] : nullptr, m,
                vi, cand_sens_.data(), G);
  }

  // One topological relaxation pass, Clark max at every merge.  Edge
  // order is analyze()'s relaxation order, so the pass is deterministic
  // for a given engine regardless of caller threading.
  sta_->for_each_graph_edge(
      [&](std::uint32_t from, std::uint32_t to, InstId inst, double base) {
        if (mean_[from] == kNegInf) return;
        double m = mean_[from];
        double vi = var_ind_[from];
        if (G != 0) {
          std::copy_n(&sens_[from * G], G, cand_sens_.begin());
        }
        if (inst == kInvalidInst) {
          m += base;
        } else {
          add_arc(inst, base, m, vi);
        }
        merge_canon(mean_[to], var_ind_[to], G ? &sens_[to * G] : nullptr, m,
                    vi, cand_sens_.data(), G);
      });

  // Endpoint extraction mirroring extract_scalar_result's semantics in
  // expectation: per stage, the worst slack is clock - max over the
  // stage's reachable endpoints of (arrival + setup); min_period is the
  // same max over ALL reachable endpoints (0 when none is reachable,
  // matching StaResult::min_period_ns's identity).  Unreachable
  // endpoints have +inf slack in the scalar path and are skipped here.
  const double clock = sta_->options().clock_period_ns;
  const std::size_t num_accs = kNumPipeStages + 1;  // last = min_period
  std::array<double, kNumPipeStages + 1> acc_mean;
  std::array<double, kNumPipeStages + 1> acc_var_ind;
  acc_mean.fill(kNegInf);
  acc_var_ind.fill(0.0);
  std::vector<double> acc_sens(num_accs * G, 0.0);

  const auto& endpoints = sta_->endpoints();
  const auto setups = sta_->endpoint_setups();
  for (std::size_t k = 0; k < endpoints.size(); ++k) {
    const std::uint32_t node = endpoints[k].node;
    if (mean_[node] == kNegInf) continue;
    const double m = mean_[node] + setups[k];
    const double vi = var_ind_[node];
    const double* s = G ? &sens_[node * G] : nullptr;
    const std::size_t stage = static_cast<std::size_t>(endpoints[k].stage);
    merge_canon(acc_mean[stage], acc_var_ind[stage],
                G ? &acc_sens[stage * G] : nullptr, m, vi, s, G);
    merge_canon(acc_mean[kNumPipeStages], acc_var_ind[kNumPipeStages],
                G ? &acc_sens[kNumPipeStages * G] : nullptr, m, vi, s, G);
  }

  const auto total_sigma = [&](std::size_t a) {
    double v = acc_var_ind[a];
    for (std::size_t g = 0; g < G; ++g) {
      v += acc_sens[a * G + g] * acc_sens[a * G + g];
    }
    return std::sqrt(v);
  };

  CanonicalResult res;
  for (std::size_t s = 0; s < kNumPipeStages; ++s) {
    StageGauss& sg = res.stages[s];
    sg.stage = static_cast<PipeStage>(s);
    if (acc_mean[s] == kNegInf) continue;
    sg.present = true;
    sg.mean_slack_ns = clock - acc_mean[s];
    sg.sigma_ns = total_sigma(s);
  }
  if (acc_mean[kNumPipeStages] != kNegInf) {
    res.min_period_mean_ns = acc_mean[kNumPipeStages];
    res.min_period_sigma_ns = total_sigma(kNumPipeStages);
  }
  return res;
}

}  // namespace vipvt
