#include "ssta/macromodel.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "ssta/clark.hpp"
#include "variation/tables.hpp"

namespace vipvt {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Clark-merge one canonical form into an accumulator — the same merge
/// the flat canonical pass uses (ssta/canonical.cpp, DESIGN.md §16).
void merge_canon(double& tm, double& tvi, double* ts, double m, double vi,
                 const double* s, std::size_t num_globals) {
  if (tm == kNegInf) {
    tm = m;
    tvi = vi;
    if (num_globals != 0) std::copy(s, s + num_globals, ts);
    return;
  }
  double va = tvi;
  double vb = vi;
  double cov = 0.0;
  for (std::size_t g = 0; g < num_globals; ++g) {
    va += ts[g] * ts[g];
    vb += s[g] * s[g];
    cov += ts[g] * s[g];
  }
  const ClarkMax cm = clark_max(tm, va, m, vb, cov);
  tm = cm.mean;
  double blended2 = 0.0;
  for (std::size_t g = 0; g < num_globals; ++g) {
    ts[g] = cm.p * ts[g] + (1.0 - cm.p) * s[g];
    blended2 += ts[g] * ts[g];
  }
  tvi = std::max(cm.var - blended2, 0.0);
}

double form_sigma(double var_ind, std::span<const double> sens) {
  double v = var_ind;
  for (double s : sens) v += s * s;
  return std::sqrt(v);
}

constexpr std::uint8_t kAllStagesMask = (1u << kNumPipeStages) - 1;

}  // namespace

StageMacroLibrary::StageMacroLibrary(const Design& design, const StaEngine& sta,
                                     const VariationModel& model,
                                     const MacroConfig& cfg)
    : design_(&design), model_(&model), cfg_(cfg) {
  if (cfg_.knots < 2) {
    throw std::invalid_argument("StageMacroLibrary: knots must be >= 2");
  }
  if (!(cfg_.grad_step > 0.0)) {
    throw std::invalid_argument("StageMacroLibrary: grad_step must be > 0");
  }
  clock_ns_ = sta.options().clock_period_ns;

  // Dense-remapped correlated-field globals, exactly as CanonicalSsta.
  stencils_ = model.field_stencils(design);
  if (!stencils_.empty()) {
    std::unordered_map<std::uint32_t, std::uint32_t> dense;
    for (auto& s : stencils_) {
      for (int k = 0; k < 4; ++k) {
        auto [it, inserted] =
            dense.emplace(s.idx[k], static_cast<std::uint32_t>(dense.size()));
        s.idx[k] = it->second;
        s.w[k] /= s.norm;
      }
      s.norm = 1.0;
    }
    num_globals_ = dense.size();
  }

  // Die-basis loadings: core-local positions [mm] and the shift-invariant
  // curvature residual q_i from the rescaled field polynomial.
  const ExposureField& field = model.field();
  const PolyCoeffs& pc = field.coeffs();
  const std::size_t num_inst = design.num_instances();
  pos_x_mm_.resize(num_inst);
  pos_y_mm_.resize(num_inst);
  curv_q_.resize(num_inst);
  for (std::size_t i = 0; i < num_inst; ++i) {
    const Instance& inst = design.instance(static_cast<InstId>(i));
    if (!inst.placed) {
      throw std::logic_error("StageMacroLibrary: unplaced instance " +
                             inst.name);
    }
    const double px = inst.pos.x * 1e-3;
    const double py = inst.pos.y * 1e-3;
    pos_x_mm_[i] = px;
    pos_y_mm_[i] = py;
    curv_q_[i] = pc.a * px * px + pc.b * py * py + pc.e * px * py;
  }

  // Precompute the 3x3 least-squares solve for the per-die basis fit.
  {
    double M[3][3] = {};
    for (std::size_t i = 0; i < num_inst; ++i) {
      const double L[3] = {1.0, pos_x_mm_[i], pos_y_mm_[i]};
      for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) M[r][c] += L[r] * L[c];
      }
    }
    const double det = M[0][0] * (M[1][1] * M[2][2] - M[1][2] * M[2][1]) -
                       M[0][1] * (M[1][0] * M[2][2] - M[1][2] * M[2][0]) +
                       M[0][2] * (M[1][0] * M[2][1] - M[1][1] * M[2][0]);
    const double scale = std::max({std::abs(M[0][0] * M[1][1] * M[2][2]),
                                   std::abs(M[0][0]), 1e-300});
    if (std::abs(det) > 1e-12 * scale) {
      const double inv = 1.0 / det;
      fit_inv_[0][0] = (M[1][1] * M[2][2] - M[1][2] * M[2][1]) * inv;
      fit_inv_[0][1] = (M[0][2] * M[2][1] - M[0][1] * M[2][2]) * inv;
      fit_inv_[0][2] = (M[0][1] * M[1][2] - M[0][2] * M[1][1]) * inv;
      fit_inv_[1][0] = (M[1][2] * M[2][0] - M[1][0] * M[2][2]) * inv;
      fit_inv_[1][1] = (M[0][0] * M[2][2] - M[0][2] * M[2][0]) * inv;
      fit_inv_[1][2] = (M[0][2] * M[1][0] - M[0][0] * M[1][2]) * inv;
      fit_inv_[2][0] = (M[1][0] * M[2][1] - M[1][1] * M[2][0]) * inv;
      fit_inv_[2][1] = (M[0][1] * M[2][0] - M[0][0] * M[2][1]) * inv;
      fit_inv_[2][2] = (M[0][0] * M[1][1] - M[0][1] * M[1][0]) * inv;
      fit_has_gradient_ = true;
    } else if (num_inst != 0) {
      // Degenerate placement (e.g. every instance at one point): fit the
      // offset only, drop the gradient terms.
      fit_inv_[0][0] = 1.0 / static_cast<double>(num_inst);
    }
  }

  // B0 knots spanning the field's full deviation range.
  const double dev = field.max_dev_frac();
  knot_b0_.resize(static_cast<std::size_t>(cfg_.knots));
  for (int k = 0; k < cfg_.knots; ++k) {
    knot_b0_[static_cast<std::size_t>(k)] =
        -dev + 2.0 * dev * static_cast<double>(k) /
                   static_cast<double>(cfg_.knots - 1);
  }

  forms_.assign(static_cast<std::size_t>(kVariants) * knot_b0_.size() * kAccs,
                Form{});
  for (Form& f : forms_) f.sens.assign(num_globals_, 0.0);

  refresh_engine_state(sta);
  build_cones();
  characterize(sta);
}

void StageMacroLibrary::refresh_engine_state(const StaEngine& sta) {
  const bool first = edges_.empty() && num_nodes_ == 0;
  num_nodes_ = sta.num_nodes();
  std::size_t e = 0;
  sta.for_each_graph_edge(
      [&](std::uint32_t from, std::uint32_t to, InstId inst, double base) {
        if (first) {
          edges_.push_back({from, to, inst, base, 0});
        } else {
          if (e >= edges_.size() || edges_[e].from != from ||
              edges_[e].to != to || edges_[e].inst != inst) {
            throw std::logic_error(
                "StageMacroLibrary: engine graph changed shape");
          }
          edges_[e].base = base;
        }
        ++e;
      });
  if (!first && e != edges_.size()) {
    throw std::logic_error("StageMacroLibrary: engine graph changed shape");
  }

  const auto ln = sta.launch_nodes();
  const auto lb = sta.launch_bases();
  const auto li = sta.launch_insts();
  launch_nodes_.assign(ln.begin(), ln.end());
  launch_insts_.assign(li.begin(), li.end());
  launch_bases_.resize(lb.size());
  for (std::size_t l = 0; l < lb.size(); ++l) {
    launch_bases_[l] = static_cast<double>(lb[l]);
  }

  const auto& eps = sta.endpoints();
  const auto setups = sta.endpoint_setups();
  endpoints_.resize(eps.size());
  for (std::size_t k = 0; k < eps.size(); ++k) {
    endpoints_[k].node = eps[k].node;
    endpoints_[k].stage = static_cast<std::uint8_t>(eps[k].stage);
    endpoints_[k].setup = static_cast<double>(setups[k]);
  }

  // Per-instance table row at the engine's current corner state.
  const DelayFactorTables& tables = model_->delay_factor_tables();
  const std::size_t num_inst = design_->num_instances();
  inst_row_.resize(num_inst);
  for (std::size_t i = 0; i < num_inst; ++i) {
    inst_row_[i] =
        tables.row(sta.inst_corner(static_cast<InstId>(i)),
                   design_->cell_of(static_cast<InstId>(i)).vth);
  }
}

void StageMacroLibrary::build_cones() {
  std::vector<std::uint8_t> node_mask(num_nodes_, 0);
  for (const End& ep : endpoints_) {
    if (ep.stage < kNumPipeStages) {
      node_mask[ep.node] |= static_cast<std::uint8_t>(1u << ep.stage);
    }
  }
  // Edges are in topological relaxation order, so one reverse sweep
  // closes every stage's cone under predecessors.
  for (auto it = edges_.rbegin(); it != edges_.rend(); ++it) {
    node_mask[it->from] |= node_mask[it->to];
    it->mask = node_mask[it->to];
  }
  launch_mask_.resize(launch_nodes_.size());
  for (std::size_t l = 0; l < launch_nodes_.size(); ++l) {
    launch_mask_[l] = node_mask[launch_nodes_[l]];
  }

  // Stage <-> voltage-domain incidence from the instances inside each
  // stage's cone.
  num_domains_ = 1;
  for (std::size_t i = 0; i < design_->num_instances(); ++i) {
    num_domains_ = std::max(
        num_domains_,
        static_cast<std::size_t>(
            design_->instance(static_cast<InstId>(i)).domain) +
            1);
  }
  stage_domain_.assign(kNumPipeStages * num_domains_, 0);
  const auto touch = [&](InstId inst, std::uint8_t mask) {
    if (inst == kInvalidInst) return;
    const auto dom = static_cast<std::size_t>(design_->instance(inst).domain);
    for (std::size_t s = 0; s < kNumPipeStages; ++s) {
      if (mask & (1u << s)) stage_domain_[s * num_domains_ + dom] = 1;
    }
  };
  for (const Edge& e : edges_) touch(e.inst, e.mask);
  for (std::size_t l = 0; l < launch_insts_.size(); ++l) {
    touch(launch_insts_[l], launch_mask_[l]);
  }

  domain_edge_fraction_.assign(num_domains_, 0.0);
  for (std::size_t d = 0; d < num_domains_; ++d) {
    std::uint8_t um = 0;
    for (std::size_t s = 0; s < kNumPipeStages; ++s) {
      if (stage_domain_[s * num_domains_ + d]) {
        um |= static_cast<std::uint8_t>(1u << s);
      }
    }
    std::size_t in = 0;
    for (const Edge& e : edges_) {
      if (e.mask & um) ++in;
    }
    domain_edge_fraction_[d] =
        edges_.empty() ? 0.0
                       : static_cast<double>(in) /
                             static_cast<double>(edges_.size());
  }
}

bool StageMacroLibrary::stage_touched(PipeStage stage, DomainId domain) const {
  const auto s = static_cast<std::size_t>(stage);
  const auto d = static_cast<std::size_t>(domain);
  if (s >= kNumPipeStages || d >= num_domains_) return false;
  return stage_domain_[s * num_domains_ + d] != 0;
}

double StageMacroLibrary::recharacterize_fraction(DomainId domain) const {
  const auto d = static_cast<std::size_t>(domain);
  return d < num_domains_ ? domain_edge_fraction_[d] : 0.0;
}

std::vector<double> StageMacroLibrary::variant_map(int variant,
                                                   int knot) const {
  const double lgate_nom = model_->field().lgate_nom();
  const double u = knot_b0_[static_cast<std::size_t>(knot)];
  const double h = cfg_.grad_step;
  const std::size_t num_inst = design_->num_instances();
  std::vector<double> map(num_inst);
  for (std::size_t i = 0; i < num_inst; ++i) {
    double dev = u + curv_q_[i];
    switch (variant) {
      case 1: dev += h * pos_x_mm_[i]; break;
      case 2: dev -= h * pos_x_mm_[i]; break;
      case 3: dev += h * pos_y_mm_[i]; break;
      case 4: dev -= h * pos_y_mm_[i]; break;
      default: break;
    }
    map[i] = lgate_nom * (1.0 + dev);
  }
  return map;
}

void StageMacroLibrary::run_pass(int variant, int knot,
                                 std::uint8_t stage_mask) {
  ++passes_;
  const std::size_t num_inst = design_->num_instances();
  const std::size_t G = num_globals_;
  const double sigma_corr = model_->sigma_correlated_nm();
  const double sigma_ind = model_->sigma_independent_nm();
  const DelayFactorTables& tables = model_->delay_factor_tables();
  const std::vector<double> map = variant_map(variant, knot);

  inst_value_.resize(num_inst);
  inst_slope_.resize(num_inst);
  for (std::size_t i = 0; i < num_inst; ++i) {
    inst_value_[i] = tables.eval_row_slope(tables.row_data(inst_row_[i]),
                                           map[i], &inst_slope_[i]);
  }

  mean_.assign(num_nodes_, kNegInf);
  var_ind_.assign(num_nodes_, 0.0);
  sens_.assign(num_nodes_ * G, 0.0);
  cand_sens_.assign(G, 0.0);

  const auto add_arc = [&](InstId inst, double base, double& m, double& vi) {
    const std::size_t i = static_cast<std::size_t>(inst);
    m += base * inst_value_[i];
    const double bs = base * inst_slope_[i];
    const double bi = bs * sigma_ind;
    vi += bi * bi;
    if (G != 0) {
      const CorrelatedField::Stencil& st = stencils_[i];
      const double bc = bs * sigma_corr;
      for (int k = 0; k < 4; ++k) {
        cand_sens_[st.idx[k]] += bc * st.w[k];
      }
    }
  };

  for (std::size_t l = 0; l < launch_nodes_.size(); ++l) {
    if (!(launch_mask_[l] & stage_mask)) continue;
    std::fill(cand_sens_.begin(), cand_sens_.end(), 0.0);
    double m = 0.0;
    double vi = 0.0;
    const InstId inst = launch_insts_[l];
    if (inst == kInvalidInst) {
      m = launch_bases_[l];
    } else {
      add_arc(inst, launch_bases_[l], m, vi);
    }
    const std::uint32_t node = launch_nodes_[l];
    merge_canon(mean_[node], var_ind_[node], G ? &sens_[node * G] : nullptr, m,
                vi, cand_sens_.data(), G);
  }

  for (const Edge& e : edges_) {
    if (!(e.mask & stage_mask)) continue;
    if (mean_[e.from] == kNegInf) continue;
    double m = mean_[e.from];
    double vi = var_ind_[e.from];
    if (G != 0) {
      std::copy_n(&sens_[e.from * G], G, cand_sens_.begin());
    }
    if (e.inst == kInvalidInst) {
      m += e.base;
    } else {
      add_arc(e.inst, e.base, m, vi);
    }
    merge_canon(mean_[e.to], var_ind_[e.to], G ? &sens_[e.to * G] : nullptr, m,
                vi, cand_sens_.data(), G);
  }

  std::array<double, kNumPipeStages> acc_mean;
  std::array<double, kNumPipeStages> acc_var_ind;
  acc_mean.fill(kNegInf);
  acc_var_ind.fill(0.0);
  std::vector<double> acc_sens(kNumPipeStages * G, 0.0);
  for (const End& ep : endpoints_) {
    if (ep.stage >= kNumPipeStages) continue;
    if (!((1u << ep.stage) & stage_mask)) continue;
    if (mean_[ep.node] == kNegInf) continue;
    const double m = mean_[ep.node] + ep.setup;
    const double vi = var_ind_[ep.node];
    const double* s = G ? &sens_[ep.node * G] : nullptr;
    const std::size_t stage = ep.stage;
    merge_canon(acc_mean[stage], acc_var_ind[stage],
                G ? &acc_sens[stage * G] : nullptr, m, vi, s, G);
  }

  for (std::size_t s = 0; s < kNumPipeStages; ++s) {
    if (!((1u << s) & stage_mask)) continue;
    Form& f = forms_[form_index(variant, knot, s)];
    f.present = acc_mean[s] != kNegInf;
    f.mean = f.present ? acc_mean[s] : 0.0;
    f.var_ind = f.present ? acc_var_ind[s] : 0.0;
    if (G != 0) {
      if (f.present) {
        std::copy_n(&acc_sens[s * G], G, f.sens.begin());
      } else {
        std::fill(f.sens.begin(), f.sens.end(), 0.0);
      }
    }
  }
}

void StageMacroLibrary::derive_min_period() {
  // min_period is a pure function of the stage rows: Clark-merge them in
  // stage order so a stage-restricted recharacterization reproduces it
  // bit-identically from the updated rows.
  const std::size_t G = num_globals_;
  std::vector<double> ts(G);
  for (int v = 0; v < kVariants; ++v) {
    for (std::size_t k = 0; k < knot_b0_.size(); ++k) {
      double tm = kNegInf;
      double tvi = 0.0;
      std::fill(ts.begin(), ts.end(), 0.0);
      for (std::size_t s = 0; s < kNumPipeStages; ++s) {
        const Form& f = forms_[form_index(v, static_cast<int>(k), s)];
        if (!f.present) continue;
        merge_canon(tm, tvi, G ? ts.data() : nullptr, f.mean, f.var_ind,
                    G ? f.sens.data() : nullptr, G);
      }
      Form& mp = forms_[form_index(v, static_cast<int>(k), kNumPipeStages)];
      mp.present = tm != kNegInf;
      mp.mean = mp.present ? tm : 0.0;
      mp.var_ind = mp.present ? tvi : 0.0;
      if (G != 0) std::copy(ts.begin(), ts.end(), mp.sens.begin());
    }
  }
}

void StageMacroLibrary::characterize(const StaEngine& sta) {
  refresh_engine_state(sta);
  for (int v = 0; v < kVariants; ++v) {
    for (int k = 0; k < cfg_.knots; ++k) {
      run_pass(v, k, kAllStagesMask);
    }
  }
  derive_min_period();
}

void StageMacroLibrary::recharacterize(const StaEngine& sta, DomainId domain) {
  refresh_engine_state(sta);
  std::uint8_t um = 0;
  const auto d = static_cast<std::size_t>(domain);
  if (d < num_domains_) {
    for (std::size_t s = 0; s < kNumPipeStages; ++s) {
      if (stage_domain_[s * num_domains_ + d]) {
        um |= static_cast<std::uint8_t>(1u << s);
      }
    }
  }
  if (um == 0) return;
  for (int v = 0; v < kVariants; ++v) {
    for (int k = 0; k < cfg_.knots; ++k) {
      run_pass(v, k, um);
    }
  }
  derive_min_period();
}

CanonicalResult StageMacroLibrary::evaluate(
    std::span<const double> systematic_lgate_nm) const {
  const std::size_t num_inst = design_->num_instances();
  if (systematic_lgate_nm.size() < num_inst) {
    throw std::invalid_argument(
        "StageMacroLibrary::evaluate: systematic map shorter than instance "
        "count");
  }
  const double lgate_nom = model_->field().lgate_nom();

  // Recover the die basis (B0, B1, B2) from the map by the precomputed
  // exact least-squares fit.
  double rhs[3] = {0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < num_inst; ++i) {
    const double r = systematic_lgate_nm[i] / lgate_nom - 1.0 - curv_q_[i];
    rhs[0] += r;
    rhs[1] += r * pos_x_mm_[i];
    rhs[2] += r * pos_y_mm_[i];
  }
  double beta[3] = {0.0, 0.0, 0.0};
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) beta[r] += fit_inv_[r][c] * rhs[c];
  }
  if (!fit_has_gradient_) beta[1] = beta[2] = 0.0;

  // Locate the B0 segment (clamped to the characterized range).
  const std::size_t K = knot_b0_.size();
  std::size_t k0 = 0;
  while (k0 + 2 < K && beta[0] > knot_b0_[k0 + 1]) ++k0;
  const double span_b0 = knot_b0_[k0 + 1] - knot_b0_[k0];
  double t = span_b0 > 0.0 ? (beta[0] - knot_b0_[k0]) / span_b0 : 0.0;
  t = std::clamp(t, 0.0, 1.0);
  const double inv2h = 1.0 / (2.0 * cfg_.grad_step);

  // Interpolated mean/sigma of accumulator `a`, with the B1/B2 gradient
  // corrections applied to both moments.
  const auto eval_acc = [&](std::size_t a, double& mean, double& sigma,
                            bool& present) {
    const Form& c0 = forms_[form_index(0, static_cast<int>(k0), a)];
    const Form& c1 = forms_[form_index(0, static_cast<int>(k0 + 1), a)];
    present = c0.present || c1.present;
    if (!present) {
      mean = 0.0;
      sigma = 0.0;
      return;
    }
    const auto lerp_vs = [&](int variant, double& m, double& s) {
      const Form& f0 = forms_[form_index(variant, static_cast<int>(k0), a)];
      const Form& f1 =
          forms_[form_index(variant, static_cast<int>(k0 + 1), a)];
      m = f0.mean + t * (f1.mean - f0.mean);
      const double s0 = form_sigma(f0.var_ind, f0.sens);
      const double s1 = form_sigma(f1.var_ind, f1.sens);
      s = s0 + t * (s1 - s0);
    };
    double mc, sc, mxp, sxp, mxm, sxm, myp, syp, mym, sym;
    lerp_vs(0, mc, sc);
    lerp_vs(1, mxp, sxp);
    lerp_vs(2, mxm, sxm);
    lerp_vs(3, myp, syp);
    lerp_vs(4, mym, sym);
    mean = mc + beta[1] * (mxp - mxm) * inv2h + beta[2] * (myp - mym) * inv2h;
    sigma = sc + beta[1] * (sxp - sxm) * inv2h + beta[2] * (syp - sym) * inv2h;
    sigma = std::max(sigma, 0.0);
  };

  CanonicalResult res;
  for (std::size_t s = 0; s < kNumPipeStages; ++s) {
    StageGauss& sg = res.stages[s];
    sg.stage = static_cast<PipeStage>(s);
    double mean, sigma;
    bool present;
    eval_acc(s, mean, sigma, present);
    if (!present) continue;
    sg.present = true;
    sg.mean_slack_ns = clock_ns_ - mean;
    sg.sigma_ns = sigma;
  }
  {
    double mean, sigma;
    bool present;
    eval_acc(kNumPipeStages, mean, sigma, present);
    if (present) {
      res.min_period_mean_ns = mean;
      res.min_period_sigma_ns = sigma;
    }
  }
  return res;
}

std::string StageMacroLibrary::fingerprint() const {
  std::string out;
  out.reserve(forms_.size() * 32);
  char buf[64];
  const auto put = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%a;", v);
    out += buf;
  };
  put(cfg_.grad_step);
  put(clock_ns_);
  for (double u : knot_b0_) put(u);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) put(fit_inv_[r][c]);
  }
  for (const Form& f : forms_) {
    out += f.present ? '1' : '0';
    put(f.mean);
    put(f.var_ind);
    for (double s : f.sens) put(s);
  }
  return out;
}

}  // namespace vipvt
