#pragma once
// Stage-level timing macromodels — the hierarchical STA tier (DESIGN.md
// §19).  Each pipeline stage is characterized ONCE per (netlist, corner
// state, sigma model) into a compact interface model: the canonical form
// of the stage's worst (arrival + setup) — the same linearization the
// flat canonical engine (ssta/canonical.hpp, DESIGN.md §16) propagates —
// tabulated over the systematic-field die basis.  Per-die evaluation
// then interpolates the tabulated forms instead of propagating the full
// gate graph: O(knots + stages) per die against O(edges) for a flat
// canonical pass.
//
// The die basis.  The exposure-field deviation is an exact quadratic
// P(x, y) over field position, so for a die whose core sits at field
// origin o, every instance's fractional deviation decomposes EXACTLY as
//
//   dev_i = B0 + B1 * px_i + B2 * py_i + q_i
//
// with px/py the core-local instance position [mm], q_i = a px^2 +
// b py^2 + e px py the die-INDEPENDENT curvature residual (quadratic
// coefficients are shift-invariant), and (B0, B1, B2) = (P(o), dP/dx(o),
// dP/dy(o)) the only die-dependent scalars.  Characterization sweeps B0
// knots across the field's deviation range (the dominant axis — the die
// offset) and takes central differences in B1/B2 (the within-die
// gradient, small because the core is ~100 um in a 28 mm field);
// evaluation recovers (B0, B1, B2) from a die's systematic map by an
// exact precomputed least-squares fit and interpolates.
//
// min_period is NOT accumulated endpoint-by-endpoint like the flat pass:
// it is derived by Clark-merging the stored per-stage forms in stage
// order.  That makes it a pure function of the stage rows, so a
// stage-restricted re-characterization reproduces it bit-identically.
//
// Escalation re-cornering: recharacterize(engine, domain) re-runs the
// characterization passes restricted to the union fan-in cone of the
// stages the flipped domain touches (stage <-> domain incidence is
// precomputed from the structural cones).  Untouched stages keep their
// stored rows, which is bit-identical to a full re-characterization
// because their cones contain no instance of the flipped domain.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/design.hpp"
#include "ssta/canonical.hpp"
#include "timing/sta.hpp"
#include "variation/model.hpp"

namespace vipvt {

/// Shape knobs of a stage macromodel characterization.  Part of the
/// macro-tier cache key: two libraries characterized from the same
/// (netlist, corner state, sigma model) with equal MacroConfig are
/// bit-identical (fingerprint()).
struct MacroConfig {
  /// Sample points along the B0 (die offset) axis, spanning
  /// [-max_dev_frac, +max_dev_frac].  Piecewise-linear in between.
  int knots = 9;
  /// Central-difference step for the B1/B2 gradient sensitivities
  /// [fractional deviation per mm].
  double grad_step = 0.0025;
};

/// Per-stage canonical interface models for one (netlist, corner state,
/// sigma model), characterized from a StaEngine's current base delays.
class StageMacroLibrary {
 public:
  /// Characterizes immediately at `sta`'s current corner state.
  StageMacroLibrary(const Design& design, const StaEngine& sta,
                    const VariationModel& model, const MacroConfig& cfg = {});

  /// Full re-characterization at `sta`'s current corner state (all
  /// stages, all knots).  The engine must be the same graph the library
  /// was built from.
  void characterize(const StaEngine& sta);

  /// Delta re-characterization after flipping `domain`'s corner: re-runs
  /// the knot passes restricted to the union cone of the stages that
  /// contain instances of `domain`, reusing every other stage's rows.
  /// Bit-identical to characterize(sta) by construction.
  void recharacterize(const StaEngine& sta, DomainId domain);

  /// Evaluates the macromodel for one die's systematic map (same span as
  /// CanonicalSsta::run).  No graph propagation — basis fit plus knot
  /// interpolation.
  CanonicalResult evaluate(std::span<const double> systematic_lgate_nm) const;

  const MacroConfig& config() const { return cfg_; }

  /// True when any instance of `stage`'s fan-in cone belongs to `domain`
  /// — i.e. a corner flip of `domain` invalidates the stage's rows.
  bool stage_touched(PipeStage stage, DomainId domain) const;

  /// Fraction of graph edges inside the union cone recharacterize()
  /// would re-propagate for a flip of `domain` (1.0 = no savings).
  double recharacterize_fraction(DomainId domain) const;

  /// Hexfloat dump of every stored row (plus knots and fit matrix):
  /// bit-equality of two libraries' fingerprints is the characterization
  /// determinism contract tests and bench gates compare.
  std::string fingerprint() const;

  /// Characterization passes run so far (5 basis variants x knots per
  /// full characterize; fewer for restricted recharacterizations).
  std::uint64_t passes() const { return passes_; }

 private:
  // One canonical accumulator form: worst (arrival + setup) of a stage,
  // mean + independent variance + correlated-global sensitivities.
  struct Form {
    double mean = 0.0;
    double var_ind = 0.0;
    bool present = false;
    std::vector<double> sens;  // num_globals_, empty when iid
  };

  // Basis variants per knot: center, +/- grad_step in B1, +/- in B2.
  static constexpr int kVariants = 5;
  static constexpr std::size_t kAccs = kNumPipeStages + 1;  // last = min_period

  std::size_t form_index(int variant, int knot, std::size_t acc) const {
    return (static_cast<std::size_t>(variant) * knot_b0_.size() +
            static_cast<std::size_t>(knot)) *
               kAccs +
           acc;
  }

  void refresh_engine_state(const StaEngine& sta);
  void build_cones();
  // Propagates one (variant, knot) pass over the edges whose cone mask
  // intersects `stage_mask`, updating that pass's stage forms.
  void run_pass(int variant, int knot, std::uint8_t stage_mask);
  void derive_min_period();
  std::vector<double> variant_map(int variant, int knot) const;

  const Design* design_;
  const VariationModel* model_;
  MacroConfig cfg_;
  double clock_ns_ = 0.0;

  // Structural graph copy (edge order = analyze()'s relaxation order)
  // with per-edge base delays refreshed from the engine at every
  // (re)characterization.
  struct Edge {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    InstId inst = kInvalidInst;
    double base = 0.0;
    std::uint8_t mask = 0;  // stage-cone membership bits
  };
  std::vector<Edge> edges_;
  std::vector<std::uint32_t> launch_nodes_;
  std::vector<InstId> launch_insts_;
  std::vector<double> launch_bases_;
  std::vector<std::uint8_t> launch_mask_;
  struct End {
    std::uint32_t node = 0;
    std::uint8_t stage = 0;
    double setup = 0.0;
  };
  std::vector<End> endpoints_;
  std::size_t num_nodes_ = 0;

  // Die-basis loadings: core-local positions [mm], curvature residual
  // q_i, knot offsets, and the precomputed 3x3 least-squares solve.
  std::vector<double> pos_x_mm_, pos_y_mm_, curv_q_;
  std::vector<double> knot_b0_;
  double fit_inv_[3][3] = {};
  bool fit_has_gradient_ = false;

  // Per-instance corner/Vth table rows at the current corner state and
  // the per-pass linearization scratch.
  std::vector<std::int32_t> inst_row_;
  mutable std::vector<double> inst_value_, inst_slope_;
  mutable std::vector<double> mean_, var_ind_, sens_, cand_sens_;

  // Correlated within-die globals, dense-remapped as in CanonicalSsta.
  std::vector<CorrelatedField::Stencil> stencils_;
  std::size_t num_globals_ = 0;

  std::vector<Form> forms_;                 // [variant][knot][acc]
  std::vector<std::uint8_t> stage_domain_;  // [stage][domain] incidence
  std::size_t num_domains_ = 1;
  std::vector<double> domain_edge_fraction_;  // union-cone edge share
  std::uint64_t passes_ = 0;
};

}  // namespace vipvt
