#pragma once
// Clark's max approximation (C. E. Clark, "The greatest of a finite set
// of random variables", 1961): the moment-matching core of the canonical
// first-order SSTA engine (DESIGN.md §16).
//
// For jointly normal A ~ N(mu_a, var_a), B ~ N(mu_b, var_b) with
// covariance cov, the first two moments of max(A, B) are EXACT:
//
//   theta^2 = var_a + var_b - 2 cov
//   alpha   = (mu_a - mu_b) / theta
//   p       = Phi(alpha)                       (P[A >= B])
//   E[max]  = mu_a p + mu_b (1 - p) + theta phi(alpha)
//   E[max2] = (mu_a^2 + var_a) p + (mu_b^2 + var_b)(1 - p)
//             + (mu_a + mu_b) theta phi(alpha)
//
// The *approximation* is downstream: treating max(A, B) as normal with
// these moments so the next merge can reuse the same formulas, and
// blending linear sensitivities with the same Phi weight p (the
// tightness/selection weight).  theta -> 0 (perfect correlation or two
// deterministic values) degenerates to picking the larger mean exactly.

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace vipvt {

/// Moments of max(A, B) plus the selection weight p = P[A >= B] used to
/// blend the canonical sensitivities of the two operands.
struct ClarkMax {
  double mean = 0.0;
  double var = 0.0;
  double p = 1.0;  ///< weight of operand A (1 on the degenerate A-wins path)
};

/// theta below this is treated as the perfectly-correlated/deterministic
/// degenerate case: max(A, B) is whichever operand has the larger mean
/// (ties keep A), with that operand's variance — exact, not approximate.
inline constexpr double kClarkMinTheta = 1e-12;

inline ClarkMax clark_max(double mu_a, double var_a, double mu_b, double var_b,
                          double cov) {
  ClarkMax out;
  const double theta2 = var_a + var_b - 2.0 * cov;
  if (!(theta2 > kClarkMinTheta * kClarkMinTheta)) {
    const bool a_wins = mu_a >= mu_b;
    out.mean = a_wins ? mu_a : mu_b;
    out.var = a_wins ? var_a : var_b;
    out.p = a_wins ? 1.0 : 0.0;
    return out;
  }
  const double theta = std::sqrt(theta2);
  const double alpha = (mu_a - mu_b) / theta;
  const double p = normal_cdf(alpha);
  const double q = 1.0 - p;
  const double pdf = normal_pdf(alpha);
  out.mean = mu_a * p + mu_b * q + theta * pdf;
  const double e2 = (mu_a * mu_a + var_a) * p + (mu_b * mu_b + var_b) * q +
                    (mu_a + mu_b) * theta * pdf;
  out.var = std::max(e2 - out.mean * out.mean, 0.0);
  out.p = p;
  return out;
}

}  // namespace vipvt
