#pragma once
// First-order canonical SSTA (DESIGN.md §16): every node arrival is a
// canonical form
//
//   arrival = mean + sum_g a_g * global_g + b * independent
//
// where the mean carries the deterministic part (base delays scaled by
// the delay factor at the die's systematic Lgate), the globals are the
// standard-normal node values of the within-die correlated Lgate field
// (empty under the paper's i.i.d. model), and b^2 accumulates the
// variance of the independent random Lgate component.  Per-gate delay is
// linearized around the systematic operating point via the delay-factor
// interpolation tables (value + segment slope), arrivals propagate in
// ONE topological pass over StaEngine's timing graph, and path merges
// use Clark's max approximation (ssta/clark.hpp) — per-stage mean/sigma
// at roughly the cost of a single Monte-Carlo sample instead of ~128.
//
// What the model drops (and why the triage tier needs a confidence
// band, DESIGN.md §16): second-order curvature of the alpha-power law
// across the +/-4.5 sigma Lgate range, the sample clamp at the range
// edge, and the correlation between reconvergent paths' INDEPENDENT
// components (globals are tracked exactly through merges; the
// independent parts of two reconverging paths are treated as
// uncorrelated, the standard canonical-form approximation).

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "netlist/design.hpp"
#include "timing/sta.hpp"
#include "variation/model.hpp"

namespace vipvt {

/// Analytic (Gaussian) worst-slack distribution of one pipeline stage:
/// the canonical-SSTA counterpart of StageSlackDist's fitted normal.
struct StageGauss {
  PipeStage stage = PipeStage::Other;
  bool present = false;  ///< stage has a reachable, constrained endpoint
  double mean_slack_ns = 0.0;  ///< E[stage worst slack]
  double sigma_ns = 0.0;       ///< sd[stage worst slack]

  /// Same 3-sigma criterion as StageSlackDist (paper Fig. 3).
  double three_sigma_slack() const { return mean_slack_ns - 3.0 * sigma_ns; }
  bool violates() const { return present && three_sigma_slack() < 0.0; }
};

struct CanonicalResult {
  std::array<StageGauss, kNumPipeStages> stages;
  /// Moments of the min achievable clock period (max over constrained
  /// endpoints of arrival + setup) — the analytic stand-in for the MC
  /// min_period_samples distribution.
  double min_period_mean_ns = 0.0;
  double min_period_sigma_ns = 0.0;

  const StageGauss& stage(PipeStage s) const {
    return stages[static_cast<std::size_t>(s)];
  }
  /// Violating stages among DC/EX/WB — the scenario severity, mirroring
  /// McResult::num_violating_stages().
  int num_violating_stages() const;
  /// Analytic speed-bin metric: 1 / (p-quantile of the min-period
  /// distribution); 0 when the quantile is non-positive or the design
  /// has no constrained endpoint.
  double fmax_ghz(double percentile) const;
};

/// The canonical-form propagation engine.  Construction captures the
/// graph-independent pieces (correlated-field stencils remapped to a
/// dense active-global set); run() reads the StaEngine's CURRENT base
/// delays, so the caller picks the corner assignment exactly as with
/// analyze() — set_level(0)/compute_base first.
///
/// run() is const but uses per-engine scratch (same convention as
/// StaEngine::analyze): one engine per thread.
class CanonicalSsta {
 public:
  CanonicalSsta(const Design& design, const StaEngine& sta,
                const VariationModel& model);

  /// One analytic pass for a die whose systematic Lgate map is
  /// `systematic_lgate_nm` (one entry per instance, from
  /// VariationModel::systematic_lgates) against the engine's current
  /// base delays.  Throws std::invalid_argument on a short map.
  CanonicalResult run(std::span<const double> systematic_lgate_nm) const;

  /// Dense active-global count: correlated-field grid nodes touched by
  /// at least one instance stencil (0 under the i.i.d. model).
  std::size_t num_globals() const { return num_globals_; }

 private:
  const Design* design_;
  const StaEngine* sta_;
  const VariationModel* model_;

  /// Per-instance stencils with grid-node ids remapped into the dense
  /// active-global space (empty when correlated_fraction == 0).
  std::vector<CorrelatedField::Stencil> stencils_;
  std::size_t num_globals_ = 0;

  // Scratch reused across run() calls (sized on first use).
  mutable std::vector<double> mean_;     // per node; unset == -inf
  mutable std::vector<double> var_ind_;  // independent variance per node
  mutable std::vector<double> sens_;     // node-major x num_globals_
  mutable std::vector<double> inst_value_;  // per-instance factor at sys
  mutable std::vector<double> inst_slope_;  // per-instance dFactor/dLgate
  mutable std::vector<double> cand_sens_;   // one candidate's sensitivities
};

}  // namespace vipvt
