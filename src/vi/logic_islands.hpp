#pragma once
// Logic-aware voltage-island generation — the exploration the paper
// leaves as future work ("placement-aware cell grouping driven by the
// knowledge of logic structure distribution across the floorplan",
// §4.5/§6).  Instead of geometric slices, islands are grown from the
// *criticality* of the logic itself: for each violation scenario, the
// cells with the least slack under that scenario's systematic corner are
// switched to high Vdd first, with a binary search on the slack
// threshold until the scenario's Monte-Carlo check passes.
//
// This produces much smaller islands (only the critical cones are
// boosted) at the cost of fragmentation: island cells are scattered, so
// far more nets cross domains and the level-shifter bill explodes —
// exactly the trade the paper's slice-based style is designed to avoid.
// The ablation bench quantifies both sides.

#include "vi/islands.hpp"

namespace vipvt {

struct LogicIslandConfig {
  int mc_samples = 100;
  std::uint64_t seed = 0x10fca1;
  double slack_margin_fraction = 0.008;
  int bisect_iters = 10;
  double confidence = 0.95;
};

class LogicIslandGenerator {
 public:
  LogicIslandGenerator(Design& design, StaEngine& sta,
                       const VariationModel& model,
                       const LogicIslandConfig& cfg = {});

  /// Same contract as IslandGenerator::generate: one nested island per
  /// severity location; Instance::domain carries the assignment on
  /// return.  The returned plan's `cuts` hold the chosen slack
  /// thresholds [ns] instead of geometric coordinates.
  IslandPlan generate(const std::vector<DieLocation>& severity_locations);

 private:
  bool trial_passes(const DieLocation& loc);

  Design* design_;
  StaEngine* sta_;
  const VariationModel* model_;
  LogicIslandConfig cfg_;
};

}  // namespace vipvt
