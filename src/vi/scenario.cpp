#include "vi/scenario.hpp"

#include <algorithm>

namespace vipvt {

int ScenarioSet::max_severity() const {
  int m = 0;
  for (const auto& p : sweep) m = std::max(m, p.severity);
  return m;
}

ScenarioSet characterize_scenarios(const Design& design, StaEngine& sta,
                                   const VariationModel& model,
                                   const ScenarioConfig& cfg) {
  MonteCarloSsta mc(design, sta, model);
  ScenarioSet out;
  out.sweep.reserve(static_cast<std::size_t>(cfg.sweep_points));
  for (int i = 0; i < cfg.sweep_points; ++i) {
    ScenarioPoint p;
    p.diagonal_t = cfg.sweep_points == 1
                       ? 0.0
                       : static_cast<double>(i) / (cfg.sweep_points - 1);
    p.location.core_origin_mm = {p.diagonal_t * cfg.chip_mm,
                                 p.diagonal_t * cfg.chip_mm};
    p.analysis = mc.run(p.location, cfg.mc);
    p.severity = p.analysis.num_violating_stages();
    out.sweep.push_back(std::move(p));
  }
  const int max_sev = out.max_severity();
  out.by_severity.assign(static_cast<std::size_t>(std::max(max_sev, 0)),
                         std::nullopt);
  // Sweep runs from the A corner outward; the first (worst) point of each
  // severity is its representative.
  for (const auto& p : out.sweep) {
    if (p.severity <= 0) continue;
    auto& slot = out.by_severity[static_cast<std::size_t>(p.severity - 1)];
    if (!slot.has_value()) slot = p;
  }
  return out;
}

}  // namespace vipvt
