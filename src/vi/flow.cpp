#include "vi/flow.hpp"

#include <stdexcept>

namespace vipvt {

Flow::Flow(const FlowConfig& cfg) : cfg_(cfg) {
  lib_ = std::make_unique<Library>(make_st65lp_like());
  design_ = std::make_unique<Design>(make_vex_design(*lib_, cfg_.vex));
  fp_ = std::make_unique<Floorplan>(
      Floorplan::for_design(*design_, cfg_.floorplan));
  db_ = std::make_unique<PlacementDb>(*fp_);
  PlacerConfig pcfg = cfg_.placer;
  pcfg.seed ^= cfg_.seed;
  place_design(*design_, *fp_, pcfg, *db_);

  sta_ = std::make_unique<StaEngine>(*design_, cfg_.sta);
  // Performance-optimized reference: clock at the design's own fmax.
  const double tmin = sta_->min_period();
  nominal_clock_ns_ = tmin * (1.0 + cfg_.clock_margin);
  sta_->set_clock_period(nominal_clock_ns_);
  post_shifter_clock_ns_ = nominal_clock_ns_;

  // Dual-Vth power recovery: slack-rich logic moves to HVT/UHVT, piling
  // every stage against the clock (the paper's balanced-stage profile)
  // and collapsing leakage to its low-power-library share.
  if (cfg_.enable_recovery) {
    recovery_report_ = recover_power(*design_, *sta_, cfg_.recovery);
  }

  field_ = std::make_unique<ExposureField>(
      ExposureField::scaled_65nm(lib_->char_params()));
  model_ = std::make_unique<VariationModel>(lib_->char_params(), *field_);
}

Flow::~Flow() = default;

void Flow::rebuild_sta() {
  const double period = sta_ ? sta_->options().clock_period_ns
                             : cfg_.sta.clock_period_ns;
  StaOptions opts = cfg_.sta;
  opts.clock_period_ns = period;
  sta_ = std::make_unique<StaEngine>(*design_, opts);
}

double Flow::shifter_perf_degradation() const {
  if (nominal_clock_ns_ <= 0.0) return 0.0;
  return (post_shifter_clock_ns_ - nominal_clock_ns_) / nominal_clock_ns_;
}

void Flow::characterize() {
  if (scenarios_.has_value()) return;
  ScenarioConfig sc = cfg_.scenario;
  sc.mc.seed ^= cfg_.seed;
  scenarios_ = characterize_scenarios(*design_, *sta_, *model_, sc);
}

void Flow::generate_islands() {
  if (island_plan_.has_value()) return;
  characterize();
  // Representative location per severity; severities that never occurred
  // fall back to the nearest more severe one (compensating harder than
  // needed is safe).
  std::vector<DieLocation> locs;
  const auto& by_sev = scenarios_->by_severity;
  std::optional<DieLocation> fallback;
  for (std::size_t k = by_sev.size(); k-- > 0;) {
    if (by_sev[k].has_value()) fallback = by_sev[k]->location;
  }
  for (const auto& sp : by_sev) {
    if (sp.has_value()) {
      locs.push_back(sp->location);
      fallback = sp->location;
    } else if (fallback.has_value()) {
      locs.push_back(*fallback);
    }
  }
  if (locs.empty()) {
    // No violations anywhere: a single token island at the worst corner
    // keeps the downstream pipeline exercised.
    locs.push_back(DieLocation::point('A'));
  }
  IslandConfig icfg = cfg_.islands;
  icfg.seed ^= cfg_.seed;
  IslandGenerator gen(*design_, *fp_, *sta_, *model_, icfg);
  island_plan_ = gen.generate(locs);
}

void Flow::insert_shifters() {
  if (shifter_report_.has_value()) return;
  generate_islands();
  shifter_report_ = insert_level_shifters(*design_, *db_, *island_plan_);
  design_->check();
  rebuild_sta();
  // Re-clock at the post-insertion fmax; the delta is the paper's
  // "performance degradation" of the VI design style.
  const double tmin = sta_->min_period();
  post_shifter_clock_ns_ = tmin * (1.0 + cfg_.clock_margin);
  sta_->set_clock_period(post_shifter_clock_ns_);
}

void Flow::plan_sensors() {
  if (razor_plan_.has_value()) return;
  insert_shifters();
  // Worst-case MC on the final netlist: the most severe scenario location
  // (or the A corner if the sweep found none).
  DieLocation worst = DieLocation::point('A');
  for (const auto& sp : scenarios_->by_severity) {
    if (sp.has_value()) worst = sp->location;
  }
  // Highest-severity representative is the last non-empty slot; prefer
  // the earliest sweep point with max severity (closest to A).
  for (const auto& p : scenarios_->sweep) {
    if (p.severity == scenarios_->max_severity()) {
      worst = p.location;
      break;
    }
  }
  MonteCarloSsta mc(*design_, *sta_, *model_);
  McConfig mcc = cfg_.scenario.mc;
  mcc.seed ^= cfg_.seed * 3;
  worst_case_mc_ = mc.run(worst, mcc);
  razor_plan_ = plan_razor_sensors(*sta_, *worst_case_mc_, cfg_.razor);
  apply_razor_plan(*design_, *sta_, *razor_plan_);
  rebuild_sta();
}

void Flow::simulate_activity() {
  if (activity_.has_value()) return;
  plan_sensors();
  LogicSimulator sim(*design_);
  FirStimulus stim(*design_, cfg_.vex, cfg_.seed ^ 0xf17);
  stim.run(sim, cfg_.sim_cycles);
  ActivityDb db;
  db.toggle_rate.resize(design_->num_nets());
  for (NetId n = 0; n < design_->num_nets(); ++n) {
    db.toggle_rate[n] = sim.toggle_rate(n);
  }
  activity_ = std::move(db);
}

const ScenarioSet& Flow::scenarios() const {
  if (!scenarios_) throw std::logic_error("Flow: characterize() not run");
  return *scenarios_;
}
const IslandPlan& Flow::island_plan() const {
  if (!island_plan_) throw std::logic_error("Flow: generate_islands() not run");
  return *island_plan_;
}
const ShifterReport& Flow::shifter_report() const {
  if (!shifter_report_) throw std::logic_error("Flow: insert_shifters() not run");
  return *shifter_report_;
}
const RazorPlan& Flow::razor_plan() const {
  if (!razor_plan_) throw std::logic_error("Flow: plan_sensors() not run");
  return *razor_plan_;
}
const McResult& Flow::worst_case_mc() const {
  if (!worst_case_mc_) throw std::logic_error("Flow: plan_sensors() not run");
  return *worst_case_mc_;
}
const ActivityDb& Flow::activity() const {
  if (!activity_) throw std::logic_error("Flow: simulate_activity() not run");
  return *activity_;
}

PowerBreakdown Flow::power_with_corners(std::span<const int> corners,
                                        const DieLocation& loc) const {
  if (!activity_) throw std::logic_error("Flow: simulate_activity() not run");
  PowerEngine engine(*design_, *activity_);
  PowerConfig pc;
  pc.clock_freq_ghz = 1.0 / post_shifter_clock_ns_;
  pc.variation = model_.get();
  pc.location = &loc;
  return engine.compute(corners, pc);
}

PowerBreakdown Flow::power_for_severity(int severity,
                                        const DieLocation& loc) const {
  const auto corners = island_plan().corners_for_severity(severity);
  return power_with_corners(corners, loc);
}

PowerBreakdown Flow::power_chip_wide_high(const DieLocation& loc) const {
  const std::vector<int> corners(
      static_cast<std::size_t>(island_plan().num_islands()) + 1, kVddHigh);
  return power_with_corners(corners, loc);
}

PowerBreakdown Flow::power_all_low(const DieLocation& loc) const {
  return power_with_corners({}, loc);
}

CompensationController Flow::make_controller() {
  if (!razor_plan_) throw std::logic_error("Flow: plan_sensors() not run");
  return CompensationController(*design_, *sta_, *model_, *island_plan_,
                                *razor_plan_);
}

}  // namespace vipvt
