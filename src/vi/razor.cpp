#include "vi/razor.hpp"

#include <stdexcept>

namespace vipvt {

RazorPlan plan_razor_sensors(const StaEngine& sta, const McResult& worst_case,
                             const RazorConfig& cfg) {
  const auto& endpoints = sta.endpoints();
  if (worst_case.endpoint_crit_prob.size() != endpoints.size()) {
    throw std::invalid_argument("plan_razor_sensors: stale MC result");
  }
  RazorPlan plan;
  for (std::size_t k = 0; k < endpoints.size(); ++k) {
    if (endpoints[k].flop == kInvalidInst) continue;  // ports: no flop to arm
    const double p = worst_case.endpoint_crit_prob[k];
    const bool ever = p > cfg.crit_prob_threshold ||
                      (cfg.crit_prob_threshold <= 0.0 && p > 0.0);
    if (!ever) continue;
    plan.endpoint_indices.push_back(k);
    ++plan.per_stage[static_cast<std::size_t>(endpoints[k].stage)];
  }
  return plan;
}

double apply_razor_plan(Design& design, const StaEngine& sta,
                        const RazorPlan& plan) {
  const Library& lib = design.lib();
  const CellId razor = lib.cell_for(CellFunc::RazorDff);
  double added = 0.0;
  for (std::size_t k : plan.endpoint_indices) {
    const InstId flop = sta.endpoints().at(k).flop;
    Instance& inst = design.instance(flop);
    const Cell& old_cell = lib.cell(inst.cell);
    if (!old_cell.is_sequential()) {
      throw std::logic_error("apply_razor_plan: endpoint is not a flop");
    }
    if (old_cell.is_razor()) continue;
    added += lib.cell(razor).area_um2 - old_cell.area_um2;
    inst.cell = razor;
  }
  return added;
}

std::array<bool, kNumPipeStages> sensor_flags(const StaEngine& sta,
                                              const RazorPlan& plan,
                                              const StaResult& truth) {
  std::array<bool, kNumPipeStages> flags{};
  for (std::size_t k : plan.endpoint_indices) {
    if (truth.endpoint_slack.at(k) < 0.0) {
      flags[static_cast<std::size_t>(sta.endpoints()[k].stage)] = true;
    }
  }
  return flags;
}

}  // namespace vipvt
