#pragma once
// Placement-aware voltage-island generation (paper §4.5).
//
// Islands are floorplan slices — full-height vertical strips or
// full-width horizontal strips — grown greedily from the most promising
// die side, so the performance-optimized placement is disturbed only by
// the later level-shifter insertion, never by cell regrouping.  Islands
// are *nested by severity*: island 1 alone compensates the mildest
// violation scenario; islands 1+2 the next; islands 1+2+3 the worst.
// Moving from one scenario to the next severity raises exactly one more
// island, which is the property that makes post-silicon control trivial.
//
// The growth check is the methodology's own validation loop: a trial
// Monte-Carlo SSTA at the scenario's representative die location with the
// candidate cells at high Vdd; the slice is the minimal prefix (in the
// slicing direction) for which no pipeline stage violates its 3-sigma
// slack.  The search uses common random numbers so the pass/fail
// predicate is monotone in the prefix size and binary search applies.

#include <vector>

#include "placement/floorplan.hpp"
#include "variation/mc_ssta.hpp"
#include "vi/scenario.hpp"

namespace vipvt {

enum class SliceDir { Horizontal, Vertical };
const char* slice_dir_name(SliceDir d);

struct IslandConfig {
  SliceDir dir = SliceDir::Vertical;
  int mc_samples = 120;
  std::uint64_t seed = 0x151a9d5;
  /// Required post-boost 3-sigma slack: max of the absolute value and
  /// the clock fraction.  A small positive margin absorbs Monte-Carlo
  /// estimator noise so islands sized with one seed still compensate
  /// chips sampled with another.
  double slack_margin_ns = 0.0;
  double slack_margin_fraction = 0.008;
  double confidence = 0.95;
};

struct IslandPlan {
  SliceDir dir = SliceDir::Vertical;
  bool from_low_side = true;  ///< slices grow from the low-x/low-y edge
  /// Cut coordinate (um, in slice-key space measured from the start
  /// side) per island; island k spans keys [cuts[k-1], cuts[k]).
  std::vector<double> cuts;
  std::vector<std::size_t> cell_count;  ///< cells per island
  std::vector<bool> feasible;           ///< island compensates its scenario

  int num_islands() const { return static_cast<int>(cuts.size()); }
  std::size_t total_island_cells() const;

  /// Supply corner per domain when `severity` stages violate: islands
  /// 1..severity at the high corner.  Vector is indexed by DomainId.
  std::vector<int> corners_for_severity(int severity) const;

  /// Priority rank of a domain: can domain `a` ever be at high Vdd while
  /// `b` is still low?  Yes iff rank(a) > rank(b).  Island 1 has the
  /// highest rank (raised first), the base domain rank 0.
  int domain_rank(DomainId d) const;
};

class IslandGenerator {
 public:
  /// The engine must hold nominal all-low base delays on entry; on exit
  /// the design's Instance::domain fields carry the island assignment and
  /// the engine is restored to all-low base delays.
  IslandGenerator(Design& design, const Floorplan& fp, StaEngine& sta,
                  const VariationModel& model, const IslandConfig& cfg);

  /// `severity_locations[k]` is the representative (worst) die location
  /// where k+1 stages violate; one island is generated per entry.
  IslandPlan generate(const std::vector<DieLocation>& severity_locations);

 private:
  /// Slice-space key of an instance (distance from the start side).
  double slice_key(InstId i) const;
  bool trial_passes(int severity, const DieLocation& loc);

  Design* design_;
  const Floorplan* fp_;
  StaEngine* sta_;
  const VariationModel* model_;
  IslandConfig cfg_;
  bool from_low_side_ = true;
  std::vector<InstId> sorted_;  ///< instances sorted by slice key
};

}  // namespace vipvt
