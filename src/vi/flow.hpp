#pragma once
// End-to-end methodology driver (paper Fig. 1):
//
//   performance-optimized placed netlist
//     -> STA (clock at the design's own fmax)
//     -> Monte-Carlo SSTA + scenario characterization
//     -> placement-aware voltage-island generation
//     -> level-shifter insertion + incremental placement + re-timing
//     -> Razor sensor planning
//     -> activity simulation (FIR) + power comparisons
//
// Flow owns every intermediate artifact so benches/examples can run any
// prefix of the pipeline and query reports.  Each step is idempotent-
// guarded: calling a step runs its prerequisites if needed.

#include <memory>
#include <optional>

#include "netlist/vex.hpp"
#include "placement/placer.hpp"
#include "power/power.hpp"
#include "sim/stimulus.hpp"
#include "timing/recovery.hpp"
#include "timing/sta.hpp"
#include "variation/mc_ssta.hpp"
#include "vi/compensate.hpp"
#include "vi/islands.hpp"
#include "vi/razor.hpp"
#include "vi/scenario.hpp"
#include "vi/shifters.hpp"

namespace vipvt {

struct FlowConfig {
  VexConfig vex{};
  /// MSV designs reserve extra whitespace up front: compensating the
  /// worst scenario needs islands over most of the die, and every
  /// low->high crossing net takes a level-shifter site.
  FloorplanConfig floorplan{.target_utilization = 0.50, .aspect_ratio = 1.0};
  PlacerConfig placer{};
  StaOptions sta{};
  /// Clock = nominal min period * (1 + margin): the "performance
  /// optimized" slack-met condition of the paper.
  double clock_margin = 0.04;
  /// Dual-Vth power recovery (creates the per-stage slack wall).
  bool enable_recovery = true;
  RecoveryConfig recovery{};
  ScenarioConfig scenario{};
  IslandConfig islands{};
  RazorConfig razor{};
  int sim_cycles = 400;
  std::uint64_t seed = 0xbee5;
};

class Flow {
 public:
  explicit Flow(const FlowConfig& cfg);
  ~Flow();
  Flow(const Flow&) = delete;
  Flow& operator=(const Flow&) = delete;

  // ---- pipeline steps (each runs its prerequisites) ----------------------
  /// Scenario sweep along the chip diagonal (MC SSTA per point).
  void characterize();
  /// Nested voltage islands for cfg.islands.dir.
  void generate_islands();
  /// Level shifters + incremental placement; re-times and re-clocks the
  /// design to its post-insertion fmax (degradation recorded).
  void insert_shifters();
  /// Razor plan from worst-location MC on the final netlist, applied.
  void plan_sensors();
  /// FIR workload simulation -> per-net activity.
  void simulate_activity();

  // ---- accessors -----------------------------------------------------------
  const FlowConfig& config() const { return cfg_; }
  const Library& lib() const { return *lib_; }
  Design& design() { return *design_; }
  const Design& design() const { return *design_; }
  const Floorplan& floorplan() const { return *fp_; }
  PlacementDb& placement_db() { return *db_; }
  StaEngine& sta() { return *sta_; }
  const StaEngine& sta() const { return *sta_; }
  const ExposureField& field() const { return *field_; }
  const VariationModel& variation() const { return *model_; }

  double nominal_clock_ns() const { return nominal_clock_ns_; }
  double post_shifter_clock_ns() const { return post_shifter_clock_ns_; }
  /// (post - pre) / pre, the paper's "8 % / 15 %" number.
  double shifter_perf_degradation() const;

  // ---- cheap pipeline-state queries ---------------------------------------
  // Each step's accessor throws before the step has run; these let benches
  // and batch drivers branch on pipeline state without the
  // throw-and-catch dance around an unset std::optional.
  bool characterized() const noexcept { return scenarios_.has_value(); }
  bool islands_generated() const noexcept { return island_plan_.has_value(); }
  bool shifters_inserted() const noexcept { return shifter_report_.has_value(); }
  bool sensors_planned() const noexcept { return razor_plan_.has_value(); }
  bool activity_simulated() const noexcept { return activity_.has_value(); }

  const RecoveryReport& recovery_report() const { return recovery_report_; }
  const ScenarioSet& scenarios() const;
  const IslandPlan& island_plan() const;
  const ShifterReport& shifter_report() const;
  const RazorPlan& razor_plan() const;
  const McResult& worst_case_mc() const;
  const ActivityDb& activity() const;

  /// Total power with islands 1..severity raised, fabricated at `loc`.
  PowerBreakdown power_for_severity(int severity, const DieLocation& loc) const;
  /// Chip-wide high-Vdd adaptation baseline at `loc`.
  PowerBreakdown power_chip_wide_high(const DieLocation& loc) const;
  /// All-low reference (no compensation).
  PowerBreakdown power_all_low(const DieLocation& loc) const;

  /// Compensation controller over the final netlist (requires sensors).
  CompensationController make_controller();

 private:
  void rebuild_sta();
  PowerBreakdown power_with_corners(std::span<const int> corners,
                                    const DieLocation& loc) const;

  FlowConfig cfg_;
  std::unique_ptr<Library> lib_;
  std::unique_ptr<Design> design_;
  std::unique_ptr<Floorplan> fp_;
  std::unique_ptr<PlacementDb> db_;
  std::unique_ptr<StaEngine> sta_;
  std::unique_ptr<ExposureField> field_;
  std::unique_ptr<VariationModel> model_;

  double nominal_clock_ns_ = 0.0;
  double post_shifter_clock_ns_ = 0.0;
  RecoveryReport recovery_report_{};

  std::optional<ScenarioSet> scenarios_;
  std::optional<IslandPlan> island_plan_;
  std::optional<ShifterReport> shifter_report_;
  std::optional<RazorPlan> razor_plan_;
  std::optional<McResult> worst_case_mc_;
  std::optional<ActivityDb> activity_;
};

}  // namespace vipvt
