#include "vi/logic_islands.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vipvt {

LogicIslandGenerator::LogicIslandGenerator(Design& design, StaEngine& sta,
                                           const VariationModel& model,
                                           const LogicIslandConfig& cfg)
    : design_(&design), sta_(&sta), model_(&model), cfg_(cfg) {}

bool LogicIslandGenerator::trial_passes(const DieLocation& loc) {
  MonteCarloSsta mc(*design_, *sta_, *model_);
  McConfig mcc;
  mcc.samples = cfg_.mc_samples;
  mcc.seed = cfg_.seed;  // common random numbers across trials
  mcc.confidence = cfg_.confidence;
  const McResult res = mc.run(loc, mcc);
  const double margin =
      cfg_.slack_margin_fraction * sta_->options().clock_period_ns;
  for (PipeStage s :
       {PipeStage::Decode, PipeStage::Execute, PipeStage::WriteBack}) {
    const auto& sd = res.stage(s);
    if (sd.present && sd.three_sigma_slack() < margin) return false;
  }
  return true;
}

IslandPlan LogicIslandGenerator::generate(
    const std::vector<DieLocation>& severity_locations) {
  Design& d = *design_;
  const auto n = static_cast<InstId>(d.num_instances());
  if (severity_locations.empty()) {
    throw std::invalid_argument("LogicIslandGenerator: no scenarios");
  }
  const int num_islands = static_cast<int>(severity_locations.size());

  for (InstId i = 0; i < n; ++i) d.instance(i).domain = kDomainBase;

  IslandPlan plan;
  plan.dir = SliceDir::Vertical;  // nominal; geometry is not sliced
  plan.from_low_side = true;

  for (int island = 1; island <= num_islands; ++island) {
    const DieLocation& loc =
        severity_locations[static_cast<std::size_t>(island - 1)];
    const auto dom = static_cast<DomainId>(island);
    const auto corners = [&] {
      std::vector<int> c(static_cast<std::size_t>(num_islands) + 1, kVddLow);
      for (int k = 1; k <= island; ++k) c[static_cast<std::size_t>(k)] = kVddHigh;
      return c;
    }();

    // Criticality under this scenario's systematic corner: per-instance
    // slack with the current (already-raised) islands active and the
    // location's systematic Lgate applied.
    sta_->compute_base(corners);
    std::vector<double> factors(d.num_instances());
    for (InstId i = 0; i < n; ++i) {
      const double lg = model_->systematic_lgate(d.instance(i).pos, loc);
      factors[i] =
          model_->delay_factor(lg, sta_->inst_corner(i), d.cell_of(i).vth);
    }
    const std::vector<double> slack = sta_->instance_slack(factors);

    // Candidates: base-domain cells ordered by ascending slack.
    std::vector<InstId> order;
    order.reserve(d.num_instances());
    for (InstId i = 0; i < n; ++i) {
      if (d.instance(i).domain == kDomainBase && std::isfinite(slack[i])) {
        order.push_back(i);
      }
    }
    std::sort(order.begin(), order.end(),
              [&](InstId a, InstId b) { return slack[a] < slack[b]; });

    auto assign_prefix = [&](std::size_t count, DomainId to) {
      for (std::size_t k = 0; k < count && k < order.size(); ++k) {
        d.instance(order[k]).domain = to;
      }
    };
    auto passes_with = [&](std::size_t count) {
      assign_prefix(count, dom);
      sta_->compute_base(corners);
      const bool ok = trial_passes(loc);
      assign_prefix(count, kDomainBase);
      return ok;
    };

    bool feasible = true;
    std::size_t cut;
    if (passes_with(0)) {
      cut = 0;
    } else if (!passes_with(order.size())) {
      feasible = false;
      cut = order.size();
    } else {
      std::size_t lo = 0, hi = order.size();  // lo fails, hi passes
      while (hi - lo > 1) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (passes_with(mid)) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      cut = hi;
    }

    assign_prefix(cut, dom);
    plan.cell_count.push_back(cut);
    plan.feasible.push_back(feasible);
    plan.cuts.push_back(cut == 0 ? 0.0
                        : cut >= order.size()
                            ? slack[order.back()]
                            : slack[order[cut - 1]]);
  }

  sta_->compute_base_all_low();
  return plan;
}

}  // namespace vipvt
