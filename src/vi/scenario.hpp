#pragma once
// Timing-violation scenario characterization (paper §4.4).
//
// As the core's position moves from the slow corner of the exposure field
// (point A) toward the fast corner (point D), progressively fewer
// pipeline stages have slack distributions violating the nominal
// constraint at their 3-sigma point.  A *scenario* is identified by its
// severity: the number of violating stages among DC/EX/WB.  The
// characterizer sweeps locations along the chip diagonal, runs MC SSTA at
// each, and keeps — for every severity that occurs — the *worst*
// (closest-to-A) location, which is what the island generator must
// compensate.

#include <optional>
#include <vector>

#include "variation/mc_ssta.hpp"

namespace vipvt {

struct ScenarioPoint {
  DieLocation location;
  double diagonal_t = 0.0;  ///< position parameter in [0, 1]
  int severity = 0;         ///< violating stages (0..3)
  McResult analysis;
};

struct ScenarioSet {
  std::vector<ScenarioPoint> sweep;  ///< every sweep point, A-side first

  /// Worst representative location for each severity 1..max; index k
  /// holds severity k+1.  Missing severities are nullopt.
  std::vector<std::optional<ScenarioPoint>> by_severity;

  int max_severity() const;
};

struct ScenarioConfig {
  /// Sweep resolution along the chip diagonal.  Severity transitions can
  /// be close together (two stages recovering within a fraction of a mm
  /// of each other), so the sweep needs enough points to catch every
  /// intermediate scenario.
  int sweep_points = 12;
  double chip_mm = 14.0;
  McConfig mc;
};

/// Sweeps the core location along the chip diagonal and classifies the
/// violation scenario at each point.  The STA engine must hold the
/// nominal (all-low) base delays.
ScenarioSet characterize_scenarios(const Design& design, StaEngine& sta,
                                   const VariationModel& model,
                                   const ScenarioConfig& cfg);

}  // namespace vipvt
