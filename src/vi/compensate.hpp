#pragma once
// Post-silicon compensation (paper §3/§5): the virtual-silicon test bench.
//
// A VirtualChip is one fabricated die — a concrete per-gate Lgate map
// drawn from the variation model at a die location.  The controller
// reproduces the post-silicon test flow: read the Razor sensors at the
// nominal (all-low) supply, map the flagged stages to a violation
// scenario, raise the pre-planned number of voltage islands, and verify
// the result.  The chip-wide adaptive-supply baseline (raise everything
// to high Vdd) is the comparison point for the power results in Fig. 5.

#include <array>

#include "variation/model.hpp"
#include "vi/islands.hpp"
#include "vi/razor.hpp"

namespace vipvt {

struct VirtualChip {
  DieLocation loc;
  std::vector<double> lgate_nm;  ///< per instance, fabricated gate lengths
};

/// Draw one fabricated die.
VirtualChip fabricate_chip(const Design& design, const VariationModel& model,
                           const DieLocation& loc, Rng& rng);

struct CompensationOutcome {
  std::array<bool, kNumPipeStages> sensor_stage_flags{};
  int detected_severity = 0;   ///< stages flagged among DC/EX/WB
  int islands_raised = 0;      ///< after any escalation
  bool timing_met = false;     ///< all endpoints meet Tclk post-compensation
  bool escalated = false;      ///< needed more islands than detected
  bool missed_violation = false;  ///< a violating endpoint had no sensor
  double wns_before = 0.0;
  double wns_after = 0.0;
};

class CompensationController {
 public:
  /// `sta` must be built over the final netlist (islands assigned, level
  /// shifters inserted, Razor flops applied).
  CompensationController(const Design& design, StaEngine& sta,
                         const VariationModel& model, const IslandPlan& plan,
                         const RazorPlan& sensors);

  /// Runs detection + island raising (+ optional escalation) on one die.
  CompensationOutcome compensate(const VirtualChip& chip,
                                 bool allow_escalation = true);

  /// Per-instance delay factors of a chip under the engine's current
  /// corner assignment (exposed for power/analysis code).
  std::vector<double> chip_factors(const VirtualChip& chip) const;

  const IslandPlan& plan() const { return *plan_; }

 private:
  const Design* design_;
  StaEngine* sta_;
  const VariationModel* model_;
  const IslandPlan* plan_;
  const RazorPlan* sensors_;
};

}  // namespace vipvt
