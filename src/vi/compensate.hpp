#pragma once
// Post-silicon compensation (paper §3/§5): the virtual-silicon test bench.
//
// A VirtualChip is one fabricated die — a concrete per-gate Lgate map
// drawn from the variation model at a die location.  The controller
// reproduces the post-silicon test flow: read the Razor sensors at the
// nominal (all-low) supply, map the flagged stages to a violation
// scenario, raise the pre-planned number of voltage islands, and verify
// the result.  The chip-wide adaptive-supply baseline (raise everything
// to high Vdd) is the comparison point for the power results in Fig. 5.
//
// The controller is the POST-SILICON member of the compensation-policy
// portfolio (DESIGN.md §18): VI escalation works per fabricated die.
// The design-side members — statistical gate upsizing and MC-criticality
// buffer insertion — are compiled upstream into the netlist itself by
// vi/policy (compile_policy_mix); the controller then runs unchanged on
// the transformed design.

#include <array>
#include <memory>
#include <vector>

#include "variation/model.hpp"
#include "vi/islands.hpp"
#include "vi/razor.hpp"

namespace vipvt {

struct VirtualChip {
  DieLocation loc;
  std::vector<double> lgate_nm;  ///< per instance, fabricated gate lengths
};

/// Draw one fabricated die.
VirtualChip fabricate_chip(const Design& design, const VariationModel& model,
                           const DieLocation& loc, Rng& rng);

struct CompensationOutcome {
  std::array<bool, kNumPipeStages> sensor_stage_flags{};
  int detected_severity = 0;   ///< stages flagged among DC/EX/WB
  int islands_raised = 0;      ///< after any escalation
  bool timing_met = false;     ///< all endpoints meet Tclk post-compensation
  bool escalated = false;      ///< needed more islands than detected
  bool missed_violation = false;  ///< a violating endpoint had no sensor
  double wns_before = 0.0;
  double wns_after = 0.0;
};

class CompensationController {
 public:
  /// `sta` must be built over the final netlist (islands assigned, level
  /// shifters inserted, Razor flops applied).
  CompensationController(const Design& design, StaEngine& sta,
                         const VariationModel& model, const IslandPlan& plan,
                         const RazorPlan& sensors);

  /// Runs detection + island raising (+ optional escalation) on one die.
  /// Escalation evaluates every remaining level as one multi-base
  /// analyze_batch_bases() batch (lane = level); the outcome is
  /// bit-identical to the historical one-level-at-a-time walk.
  CompensationOutcome compensate(const VirtualChip& chip,
                                 bool allow_escalation = true);

  /// Per-instance delay factors of a chip under the engine's current
  /// corner assignment (exposed for power/analysis code).
  std::vector<double> chip_factors(const VirtualChip& chip) const;

  /// Restore the engine's base delays for severity level k — bit-
  /// identical to sta.compute_base(plan.corners_for_severity(k)), but
  /// full NLDM delay calculation runs at most ONCE per controller: the
  /// first level requested is computed in full, and every other level's
  /// snapshot is delta-built from the nearest cached neighbour with
  /// StaEngine::recorner_delta (one island flip per step, cost bounded
  /// by the flipped domain's fan-out cone — DESIGN.md §12).  Snapshots
  /// are cached for the controller's lifetime, so a wafer worker reusing
  /// one controller across dies pays each level once, not once per die.
  void set_level(int k);

  /// Same, for the chip-wide all-high fallback assignment (the yield
  /// analyzer's last resort before discarding a die).
  void set_chip_wide();

  const IslandPlan& plan() const { return *plan_; }

 private:
  const StaEngine::BaseSnapshot& level_snapshot(int k);

  const Design* design_;
  StaEngine* sta_;
  const VariationModel* model_;
  const IslandPlan* plan_;
  const RazorPlan* sensors_;
  /// Cached per-level base snapshots (index 0..num_islands per severity
  /// level, plus the chip-wide fallback), lazily filled — the first via
  /// compute_base(), the rest delta-built with recorner_delta().
  std::vector<std::unique_ptr<StaEngine::BaseSnapshot>> level_snaps_;
  std::unique_ptr<StaEngine::BaseSnapshot> chip_wide_snap_;
};

}  // namespace vipvt
