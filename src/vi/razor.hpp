#pragma once
// Razor-style timing-sensor planning (paper §4.4).
//
// The violation scenario must be *detected* on fabricated silicon.  The
// paper's key cost saving: only flip-flops fed by signal paths that can
// become critical under process variation need a Razor (shadow-latch)
// flop — the Monte-Carlo SSTA reports exactly which endpoints those are
// (12 for the EX stage of the VEX at point A).  Everything else keeps a
// plain flop.

#include <array>
#include <vector>

#include "netlist/design.hpp"
#include "timing/sta.hpp"
#include "variation/mc_ssta.hpp"

namespace vipvt {

struct RazorConfig {
  /// Minimum Monte-Carlo probability of endpoint violation for a sensor
  /// to be planned.  0 means "ever violated in any sample".
  double crit_prob_threshold = 0.0;
};

struct RazorPlan {
  std::vector<std::size_t> endpoint_indices;  ///< into StaEngine::endpoints()
  std::array<std::size_t, kNumPipeStages> per_stage{};
  std::size_t total() const { return endpoint_indices.size(); }
};

/// Plans sensors from the worst-case-location MC results (point A): every
/// flop endpoint whose violation probability exceeds the threshold.
RazorPlan plan_razor_sensors(const StaEngine& sta, const McResult& worst_case,
                             const RazorConfig& cfg = {});

/// Swaps the planned flops to Razor flip-flops (same pin interface,
/// larger area/power).  Returns the added area [um^2].  Rebuild timing
/// engines afterwards.
double apply_razor_plan(Design& design, const StaEngine& sta,
                        const RazorPlan& plan);

/// Post-silicon sensor readout: with the chip's true per-instance delay
/// factors at the all-low supply, which stages do the sensors flag?
std::array<bool, kNumPipeStages> sensor_flags(const StaEngine& sta,
                                              const RazorPlan& plan,
                                              const StaResult& all_low_truth);

}  // namespace vipvt
