#include "vi/compensate.hpp"

#include <cmath>
#include <stdexcept>

namespace vipvt {

VirtualChip fabricate_chip(const Design& design, const VariationModel& model,
                           const DieLocation& loc, Rng& rng) {
  VirtualChip chip;
  chip.loc = loc;
  chip.lgate_nm.resize(design.num_instances());
  const CorrelatedField field = model.draw_field(rng);
  const CorrelatedField* fp = field.active() ? &field : nullptr;
  for (InstId i = 0; i < design.num_instances(); ++i) {
    const Instance& inst = design.instance(i);
    if (!inst.placed) {
      throw std::logic_error("fabricate_chip: unplaced instance");
    }
    chip.lgate_nm[i] = model.sample_lgate(inst.pos, loc, rng, fp);
  }
  return chip;
}

CompensationController::CompensationController(const Design& design,
                                               StaEngine& sta,
                                               const VariationModel& model,
                                               const IslandPlan& plan,
                                               const RazorPlan& sensors)
    : design_(&design), sta_(&sta), model_(&model), plan_(&plan),
      sensors_(&sensors) {}

std::vector<double> CompensationController::chip_factors(
    const VirtualChip& chip) const {
  std::vector<double> factors(chip.lgate_nm.size());
  for (InstId i = 0; i < factors.size(); ++i) {
    factors[i] = model_->delay_factor(chip.lgate_nm[i], sta_->inst_corner(i),
                                      design_->cell_of(i).vth);
  }
  return factors;
}

const StaEngine::BaseSnapshot& CompensationController::level_snapshot(int k) {
  if (k < 0 || k > plan_->num_islands()) {
    throw std::invalid_argument("level_snapshot: level out of range");
  }
  if (level_snaps_.empty()) {
    level_snaps_.resize(static_cast<std::size_t>(plan_->num_islands()) + 1);
  }
  auto& slot = level_snaps_[static_cast<std::size_t>(k)];
  if (slot == nullptr) {
    // Delta-build from the nearest already-cached level: restoring that
    // snapshot and flipping one island per step through recorner_delta()
    // costs O(changed cones) per level instead of a full compute_base(),
    // and lands on bit-identical bases (DESIGN.md §12).  Level k differs
    // from k-1 only in domain k (corners_for_severity raises domains
    // 1..k), so the walk flips domain t to high going up, low going down.
    int nearest = -1;
    for (int j = 0; j < static_cast<int>(level_snaps_.size()); ++j) {
      if (level_snaps_[static_cast<std::size_t>(j)] == nullptr) continue;
      if (nearest < 0 || std::abs(j - k) < std::abs(nearest - k)) nearest = j;
    }
    if (nearest < 0) {
      sta_->compute_base(plan_->corners_for_severity(k));
    } else {
      sta_->restore_bases(*level_snaps_[static_cast<std::size_t>(nearest)]);
      for (int t = nearest + 1; t <= k; ++t) {
        sta_->recorner_delta(static_cast<DomainId>(t), kVddHigh);
      }
      for (int t = nearest; t > k; --t) {
        sta_->recorner_delta(static_cast<DomainId>(t), kVddLow);
      }
    }
    slot = std::make_unique<StaEngine::BaseSnapshot>(sta_->snapshot_bases());
  }
  return *slot;
}

void CompensationController::set_level(int k) {
  sta_->restore_bases(level_snapshot(k));
}

void CompensationController::set_chip_wide() {
  if (chip_wide_snap_ == nullptr) {
    const std::vector<int> corners(
        static_cast<std::size_t>(plan_->num_islands()) + 1, kVddHigh);
    sta_->compute_base(corners);
    chip_wide_snap_ =
        std::make_unique<StaEngine::BaseSnapshot>(sta_->snapshot_bases());
  }
  sta_->restore_bases(*chip_wide_snap_);
}

CompensationOutcome CompensationController::compensate(const VirtualChip& chip,
                                                       bool allow_escalation) {
  if (chip.lgate_nm.size() != design_->num_instances()) {
    throw std::invalid_argument("compensate: chip/design size mismatch");
  }
  CompensationOutcome out;

  // --- post-silicon test at the nominal supply ----------------------------
  set_level(0);
  const std::vector<double> f0 = chip_factors(chip);
  const StaResult truth0 = sta_->analyze(f0);
  out.wns_before = truth0.wns;
  out.sensor_stage_flags = sensor_flags(*sta_, *sensors_, truth0);
  for (PipeStage s :
       {PipeStage::Decode, PipeStage::Execute, PipeStage::WriteBack}) {
    if (out.sensor_stage_flags[static_cast<std::size_t>(s)]) {
      ++out.detected_severity;
    }
  }
  // Coverage check: did any endpoint violate in a stage no sensor flagged?
  for (std::size_t k = 0; k < sta_->endpoints().size(); ++k) {
    const double slack = truth0.endpoint_slack[k];
    if (std::isfinite(slack) && slack < 0.0 &&
        !out.sensor_stage_flags[static_cast<std::size_t>(
            sta_->endpoints()[k].stage)]) {
      out.missed_violation = true;
      break;
    }
  }

  // --- raise islands per the detected scenario ------------------------------
  // Common case first, scalar: the detected level usually closes timing.
  const int detected = out.detected_severity;
  const int max_k = plan_->num_islands();
  if (detected == 0) {
    // The engine already sits at level 0 and truth0 IS that level's
    // analysis: chip_factors/analyze are pure functions of (bases,
    // corners, chip), so re-running them here would reproduce f0/truth0
    // bitwise.  Clean dies — the bulk of a healthy wafer — skip a second
    // exact-factor fill and full propagation this way.
    out.wns_after = truth0.wns;
    out.islands_raised = 0;
    out.timing_met = truth0.wns >= 0.0;
  } else {
    set_level(detected);
    const std::vector<double> fk = chip_factors(chip);
    const StaResult truth = sta_->analyze(fk);
    out.wns_after = truth.wns;
    out.islands_raised = detected;
    out.timing_met = truth.wns >= 0.0;
  }
  if (out.timing_met || !allow_escalation || detected >= max_k) return out;

  // Escalation: evaluate ALL remaining levels as one multi-base batch —
  // lane j carries level detected+1+j's own base-delay snapshot — and
  // pick the lowest level that closes timing, exactly the level the
  // historical one-at-a-time walk would stop at.  Per-lane results are
  // bit-identical to restore_bases + analyze, so every reported number
  // matches the sequential loop bit-for-bit.
  out.escalated = true;
  const int first_level = detected + 1;
  const auto lanes = static_cast<std::size_t>(max_k - detected);
  std::vector<const StaEngine::BaseSnapshot*> bases(lanes);
  std::vector<std::vector<double>> factors(lanes);
  for (std::size_t j = 0; j < lanes; ++j) {
    const int level = first_level + static_cast<int>(j);
    set_level(level);  // chip_factors reads the level's corner map
    factors[j] = chip_factors(chip);
    bases[j] = level_snaps_[static_cast<std::size_t>(level)].get();
  }
  std::vector<StaResult> results(lanes);
  sta_->analyze_batch_bases(bases, factors, results);
  std::size_t chosen = lanes - 1;  // none passing => stop at max_k
  for (std::size_t j = 0; j < lanes; ++j) {
    if (results[j].wns >= 0.0) {
      chosen = j;
      break;
    }
  }
  out.islands_raised = first_level + static_cast<int>(chosen);
  out.wns_after = results[chosen].wns;
  out.timing_met = results[chosen].wns >= 0.0;
  // Sequential postcondition: the engine holds the final level's bases.
  set_level(out.islands_raised);
  return out;
}

}  // namespace vipvt
