#include "vi/compensate.hpp"

#include <cmath>
#include <stdexcept>

namespace vipvt {

VirtualChip fabricate_chip(const Design& design, const VariationModel& model,
                           const DieLocation& loc, Rng& rng) {
  VirtualChip chip;
  chip.loc = loc;
  chip.lgate_nm.resize(design.num_instances());
  const CorrelatedField field = model.draw_field(rng);
  const CorrelatedField* fp = field.active() ? &field : nullptr;
  for (InstId i = 0; i < design.num_instances(); ++i) {
    const Instance& inst = design.instance(i);
    if (!inst.placed) {
      throw std::logic_error("fabricate_chip: unplaced instance");
    }
    chip.lgate_nm[i] = model.sample_lgate(inst.pos, loc, rng, fp);
  }
  return chip;
}

CompensationController::CompensationController(const Design& design,
                                               StaEngine& sta,
                                               const VariationModel& model,
                                               const IslandPlan& plan,
                                               const RazorPlan& sensors)
    : design_(&design), sta_(&sta), model_(&model), plan_(&plan),
      sensors_(&sensors) {}

std::vector<double> CompensationController::chip_factors(
    const VirtualChip& chip) const {
  std::vector<double> factors(chip.lgate_nm.size());
  for (InstId i = 0; i < factors.size(); ++i) {
    factors[i] = model_->delay_factor(chip.lgate_nm[i], sta_->inst_corner(i),
                                      design_->cell_of(i).vth);
  }
  return factors;
}

CompensationOutcome CompensationController::compensate(const VirtualChip& chip,
                                                       bool allow_escalation) {
  if (chip.lgate_nm.size() != design_->num_instances()) {
    throw std::invalid_argument("compensate: chip/design size mismatch");
  }
  CompensationOutcome out;

  // --- post-silicon test at the nominal supply ----------------------------
  sta_->compute_base(plan_->corners_for_severity(0));
  const std::vector<double> f0 = chip_factors(chip);
  const StaResult truth0 = sta_->analyze(f0);
  out.wns_before = truth0.wns;
  out.sensor_stage_flags = sensor_flags(*sta_, *sensors_, truth0);
  for (PipeStage s :
       {PipeStage::Decode, PipeStage::Execute, PipeStage::WriteBack}) {
    if (out.sensor_stage_flags[static_cast<std::size_t>(s)]) {
      ++out.detected_severity;
    }
  }
  // Coverage check: did any endpoint violate in a stage no sensor flagged?
  for (std::size_t k = 0; k < sta_->endpoints().size(); ++k) {
    const double slack = truth0.endpoint_slack[k];
    if (std::isfinite(slack) && slack < 0.0 &&
        !out.sensor_stage_flags[static_cast<std::size_t>(
            sta_->endpoints()[k].stage)]) {
      out.missed_violation = true;
      break;
    }
  }

  // --- raise islands per the detected scenario ------------------------------
  int k = out.detected_severity;
  const int max_k = plan_->num_islands();
  while (true) {
    sta_->compute_base(plan_->corners_for_severity(k));
    const std::vector<double> fk = chip_factors(chip);
    const StaResult truth = sta_->analyze(fk);
    out.wns_after = truth.wns;
    out.islands_raised = k;
    out.timing_met = truth.wns >= 0.0;
    if (out.timing_met || !allow_escalation || k >= max_k) break;
    ++k;
    out.escalated = true;
  }
  return out;
}

}  // namespace vipvt
