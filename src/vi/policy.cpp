#include "vi/policy.hpp"

#include <stdexcept>
#include <utility>

#include "util/rng.hpp"
#include "vi/compensate.hpp"

namespace vipvt {

std::vector<double> instance_criticality(const Design& design,
                                         const StaEngine& sta,
                                         const VariationModel& model,
                                         const DieLocation& loc, int samples,
                                         std::uint64_t seed) {
  if (samples < 1) {
    throw std::invalid_argument("instance_criticality: samples < 1");
  }
  // A private engine copy: criticality is measured at the all-low supply
  // (the corner where the yield cliff manifests), independent of whatever
  // corner state the caller's engine happens to hold.
  StaEngine eng = sta;
  eng.compute_base_all_low();

  std::vector<std::uint32_t> fail_count(design.num_instances(), 0);
  std::vector<double> factors(design.num_instances());
  for (int k = 0; k < samples; ++k) {
    Rng rng(substream_seed(seed, static_cast<std::uint64_t>(k)));
    const VirtualChip chip = fabricate_chip(design, model, loc, rng);
    for (InstId i = 0; i < design.num_instances(); ++i) {
      factors[i] = model.delay_factor(chip.lgate_nm[i], eng.inst_corner(i),
                                      design.cell_of(i).vth);
    }
    const std::vector<double> slack = eng.instance_slack(factors);
    for (InstId i = 0; i < design.num_instances(); ++i) {
      if (slack[i] < 0.0) ++fail_count[i];
    }
  }

  std::vector<double> crit(design.num_instances());
  for (InstId i = 0; i < design.num_instances(); ++i) {
    crit[i] = static_cast<double>(fail_count[i]) /
              static_cast<double>(samples);
  }
  return crit;
}

CompiledPolicy compile_policy_mix(const PolicyMix& mix, const Design& base,
                                  const StaEngine& base_sta,
                                  const VariationModel& model,
                                  const ActivityDb& base_activity) {
  CompiledPolicy out;
  out.stats.mix = mix.name;
  out.stats.sizing = mix.sizing.enabled;
  out.stats.buffering = mix.buffering.enabled;
  out.stats.area_um2 = base.total_area();
  if (!mix.transforms_design()) return out;  // pure-VI mix: alias baseline

  out.stats.crit_samples = mix.crit_samples;
  const std::vector<double> crit = instance_criticality(
      base, base_sta, model, DieLocation::point('A'), mix.crit_samples,
      mix.crit_seed);

  auto design = std::make_unique<Design>(base);
  if (mix.sizing.enabled) {
    const SizingReport r = upsize_critical(*design, crit, mix.sizing);
    out.stats.gates_upsized = r.upsized;
  }
  if (mix.buffering.enabled) {
    const BufferingReport r =
        buffer_critical_nets(*design, crit, mix.buffering);
    out.stats.buffers_inserted = r.buffers_inserted;
    out.stats.nets_buffered = r.nets_split;
  }
  design->check();
  out.stats.area_delta_um2 = design->total_area() - out.stats.area_um2;
  out.stats.area_um2 = design->total_area();

  // Extend the activity database: each inserted buffer's leg toggles at
  // its source net's rate (a buffer repeats its input).  The buffer's
  // input is always an ORIGINAL net — buffer_critical_nets never
  // re-splits a leg — so the source rate is already present.
  auto activity = std::make_unique<ActivityDb>(base_activity);
  activity->toggle_rate.resize(design->num_nets(), 0.0);
  for (NetId n = static_cast<NetId>(base.num_nets());
       n < design->num_nets(); ++n) {
    const NetId src =
        design->instance(design->net(n).driver.inst).conns[0];
    activity->toggle_rate[n] = activity->toggle_rate[src];
  }

  auto sta = std::make_unique<StaEngine>(*design, base_sta.options());
  sta->compute_base_all_low();

  out.design = std::move(design);
  out.sta = std::move(sta);
  out.activity = std::move(activity);
  return out;
}

}  // namespace vipvt
