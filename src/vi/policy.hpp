#pragma once
// Compensation-policy portfolio (DESIGN.md §18): sizing and buffering as
// first-class knobs alongside voltage-island escalation.
//
// The paper compensates a failing die only by raising voltage islands
// (CompensationController).  The related work names two more levers that
// attack the same yield cliff from the design side: statistical gate
// sizing on MC-critical paths (Neiroukh & Song, arXiv:0710.4713) and
// sampling-based buffer insertion driven by MC criticality tallies
// (Zhang et al., arXiv:1705.04990).  A PolicyMix selects any combination
// of the three; each combination is one power/area/yield point of the
// portfolio Pareto (bench/policy_portfolio).
//
// Division of labour: sizing and buffering are DESIGN-TIME transforms —
// they are compiled ONCE per (netlist variant, policy mix) into a new
// Design + StaEngine + ActivityDb (compile_policy_mix), and every die of
// every wafer under that mix is then fabricated and compensated on the
// transformed netlist through the unchanged per-die flow.  VI escalation
// stays the POST-SILICON lever, applied per die by the controller as
// before.  This keeps the determinism contract trivial to state: a mix
// changes the netlist the per-die RNG walks, never the walk itself, so
// per-die draw counts depend only on the (transformed) instance list and
// reports stay bit-identical for any thread/shard count.
//
// Zero-displacement ECO rule: neither transform moves an instance or
// re-runs the placer.  Upsizing swaps a cell within its (function, Vth)
// drive family — footprint growth is absorbed as ECO slack, like the
// dual-Vth power-recovery pass.  Inserted buffers sit AT the driver's
// placement point, inherit its domain/stage/unit, and are only legal on
// non-clock, non-primary-output nets whose sinks all share the driver's
// voltage domain (a repeater must never create an unshifted low->high
// crossing).  Consequently island plans and Razor sensor plans built for
// the baseline netlist remain valid on the transformed one: flop count,
// flop order and domain structure are preserved, and a rebuilt
// StaEngine enumerates the same endpoints in the same order.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netlist/buffering.hpp"
#include "netlist/design.hpp"
#include "netlist/sizing.hpp"
#include "power/power.hpp"
#include "timing/sta.hpp"
#include "variation/model.hpp"

namespace vipvt {

/// One value of the compensation-policy axis: which post-silicon and
/// design-side levers the virtual fab may pull for a wafer's dies.  The
/// first three fields predate the portfolio and keep their order so
/// existing PolicyMix{"name", esc, fallback} aggregate initializers stay
/// valid; the appended knobs default to the pure-VI (pre-portfolio)
/// behaviour.
struct PolicyMix {
  std::string name = "full";
  bool allow_escalation = true;
  bool allow_chip_wide_fallback = true;
  /// Design-side statistical upsizing of MC-critical gates
  /// (upsize_critical, src/netlist/sizing).
  CriticalSizingConfig sizing{};
  /// Design-side buffer insertion on MC-critical nets
  /// (buffer_critical_nets, src/netlist/buffering).
  CriticalBufferConfig buffering{};
  /// MC budget of the criticality measurement both transforms select
  /// gates from (instance_criticality); the seed is its own substream
  /// root, deliberately disjoint from every die/wafer seed so enabling a
  /// transform can never shift a die's fabrication stream.
  int crit_samples = 32;
  std::uint64_t crit_seed = 0xc817'ca11'5eed'0001ULL;

  /// True when the mix rewrites the netlist (compile produces an owned
  /// Design); false = pure VI policy running on the baseline references.
  bool transforms_design() const {
    return sizing.enabled || buffering.enabled;
  }
};

/// What a compiled mix did to the netlist — carried through YieldReport
/// (CSV `policy_mix` column, JSON `portfolio` object), CellResult and
/// bench/policy_portfolio's Pareto table.
struct PortfolioStats {
  std::string mix = "vi-only";
  bool sizing = false;
  bool buffering = false;
  std::uint64_t gates_upsized = 0;
  std::uint64_t buffers_inserted = 0;
  std::uint64_t nets_buffered = 0;
  /// Samples of the criticality measurement (0 for untransformed mixes).
  int crit_samples = 0;
  double area_um2 = 0.0;        ///< transformed-netlist std-cell area
  double area_delta_um2 = 0.0;  ///< area cost vs the baseline netlist
};

/// Per-instance criticality under variation at the all-low supply:
/// crit[i] = fraction of `samples` fabricated dies (at `loc`, seeded
/// substream_seed(seed, k)) in which instance i sits on a failing path
/// (per-instance worst slack < 0 via StaEngine::instance_slack).  A pure
/// function of its arguments — thread count and caller state never enter
/// — so two compiles of the same mix select identical gates.
std::vector<double> instance_criticality(const Design& design,
                                         const StaEngine& sta,
                                         const VariationModel& model,
                                         const DieLocation& loc, int samples,
                                         std::uint64_t seed);

/// One compiled (netlist variant, policy mix) pair.  For transforming
/// mixes it OWNS the rewritten Design, a StaEngine rebuilt over it (same
/// StaOptions as the baseline engine, bases at all-low — level snapshots
/// are delta-built per worker through the §12 incremental path exactly
/// as on the baseline), and an ActivityDb extended so every inserted
/// buffer leg toggles at its source net's rate.  For pure-VI mixes all
/// three pointers are null and the *_or() accessors resolve to the
/// baseline references — which is what makes portfolio-on bit-identity
/// for untouched mixes structural rather than asserted.
struct CompiledPolicy {
  PortfolioStats stats;
  std::unique_ptr<Design> design;
  std::unique_ptr<StaEngine> sta;
  std::unique_ptr<ActivityDb> activity;

  bool transformed() const { return design != nullptr; }
  const Design& design_or(const Design& base) const {
    return design ? *design : base;
  }
  const StaEngine& sta_or(const StaEngine& base) const {
    return sta ? *sta : base;
  }
  const ActivityDb& activity_or(const ActivityDb& base) const {
    return activity ? *activity : base;
  }
};

/// Compile a mix against a baseline netlist: measure criticality at the
/// worst-case die location (point A — the exposure field's slow corner,
/// where the yield cliff lives), apply the enabled transforms in fixed
/// order (sizing, then buffering), validate the result structurally
/// (Design::check) and rebuild the timing/power views.  The baseline
/// references must outlive the returned object.  Criticality is measured
/// on the CHARACTERIZED process (the model passed in), so a campaign's
/// sigma axis shares one compiled netlist per (variant, mix).
CompiledPolicy compile_policy_mix(const PolicyMix& mix, const Design& base,
                                  const StaEngine& base_sta,
                                  const VariationModel& model,
                                  const ActivityDb& base_activity);

}  // namespace vipvt
