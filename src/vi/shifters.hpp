#pragma once
// Level-shifter insertion (paper §4.6).
//
// A net needs a level shifter wherever its driver's domain can sit at a
// lower supply than a sink's domain in some violation scenario —
// otherwise the low-swing signal leaves the high-Vdd receiver's pMOS
// partially conducting (static current).  With nested slices the "can be
// lower" relation is exactly the island rank order: base < island N <
// ... < island 1.  Only low->high crossings are shifted, matching the
// paper's choice.  One shifter is inserted per (net, receiving-domain)
// pair, placed incrementally at the crossing midpoint so the optimized
// placement is minimally perturbed.

#include "netlist/design.hpp"
#include "placement/placer.hpp"
#include "vi/islands.hpp"

namespace vipvt {

struct ShifterReport {
  std::size_t inserted = 0;
  double area_um2 = 0.0;
  /// Shifter area relative to the pre-insertion logic (cell) area — the
  /// "LS area" row of Table 2.
  double area_fraction = 0.0;
  /// Crossing nets examined / shifted (diagnostics).
  std::size_t crossing_nets = 0;
};

/// Inserts level shifters for the island plan.  The design's domains must
/// already carry the island assignment.  New cells land in unit
/// "level_shifters" and inherit the receiving domain; run Design::check()
/// and rebuild any StaEngine afterwards (the netlist changed).
ShifterReport insert_level_shifters(Design& design, PlacementDb& db,
                                    const IslandPlan& plan);

}  // namespace vipvt
