#include "vi/islands.hpp"

#include <algorithm>
#include <stdexcept>

namespace vipvt {

const char* slice_dir_name(SliceDir d) {
  return d == SliceDir::Horizontal ? "horizontal" : "vertical";
}

std::size_t IslandPlan::total_island_cells() const {
  std::size_t total = 0;
  for (auto c : cell_count) total += c;
  return total;
}

std::vector<int> IslandPlan::corners_for_severity(int severity) const {
  std::vector<int> corners(static_cast<std::size_t>(num_islands()) + 1,
                           kVddLow);
  for (int k = 1; k <= severity && k <= num_islands(); ++k) {
    corners[static_cast<std::size_t>(k)] = kVddHigh;
  }
  return corners;
}

int IslandPlan::domain_rank(DomainId d) const {
  if (d == kDomainBase) return 0;
  // Island 1 is raised in every scenario => highest rank.
  return num_islands() - static_cast<int>(d) + 1;
}

IslandGenerator::IslandGenerator(Design& design, const Floorplan& fp,
                                 StaEngine& sta, const VariationModel& model,
                                 const IslandConfig& cfg)
    : design_(&design), fp_(&fp), sta_(&sta), model_(&model), cfg_(cfg) {}

double IslandGenerator::slice_key(InstId i) const {
  const Instance& inst = design_->instance(i);
  const Rect& die = fp_->die();
  const double coord =
      cfg_.dir == SliceDir::Vertical ? inst.pos.x : inst.pos.y;
  const double lo = cfg_.dir == SliceDir::Vertical ? die.lo.x : die.lo.y;
  const double hi = cfg_.dir == SliceDir::Vertical ? die.hi.x : die.hi.y;
  return from_low_side_ ? coord - lo : hi - coord;
}

bool IslandGenerator::trial_passes(int severity, const DieLocation& loc) {
  // Base delays at the trial's corner assignment were already installed
  // by the caller; run the scenario MC and apply the 3-sigma criterion.
  MonteCarloSsta mc(*design_, *sta_, *model_);
  McConfig mcc;
  mcc.samples = cfg_.mc_samples;
  mcc.seed = cfg_.seed;  // common random numbers across trials
  mcc.confidence = cfg_.confidence;
  (void)severity;
  const McResult res = mc.run(loc, mcc);
  const double margin =
      std::max(cfg_.slack_margin_ns,
               cfg_.slack_margin_fraction * sta_->options().clock_period_ns);
  for (PipeStage s :
       {PipeStage::Decode, PipeStage::Execute, PipeStage::WriteBack}) {
    const auto& sd = res.stage(s);
    if (sd.present && sd.three_sigma_slack() < margin) {
      return false;
    }
  }
  return true;
}

IslandPlan IslandGenerator::generate(
    const std::vector<DieLocation>& severity_locations) {
  Design& d = *design_;
  const auto n = static_cast<std::uint32_t>(d.num_instances());
  if (severity_locations.empty()) {
    throw std::invalid_argument("IslandGenerator: no scenarios");
  }
  if (severity_locations.size() >= 250) {
    throw std::invalid_argument("IslandGenerator: too many islands");
  }

  const int num_islands = static_cast<int>(severity_locations.size());

  // One full nested-island construction for a given start side.
  auto build_from_side = [&](bool from_low) {
    from_low_side_ = from_low;
    sorted_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) sorted_[i] = i;
    std::sort(sorted_.begin(), sorted_.end(), [&](InstId a, InstId b) {
      return slice_key(a) < slice_key(b);
    });
    for (InstId i = 0; i < n; ++i) d.instance(i).domain = kDomainBase;

    IslandPlan plan;
    plan.dir = cfg_.dir;
    plan.from_low_side = from_low;

    std::size_t prev_idx = 0;
    auto assign_prefix = [&](std::size_t from, std::size_t to, DomainId dom) {
      for (std::size_t k = from; k < to; ++k) {
        d.instance(sorted_[k]).domain = dom;
      }
    };

    for (int island = 1; island <= num_islands; ++island) {
      const DieLocation& loc =
          severity_locations[static_cast<std::size_t>(island - 1)];
      const auto dom = static_cast<DomainId>(island);
      const auto corners = [&] {
        std::vector<int> c(static_cast<std::size_t>(num_islands) + 1, kVddLow);
        for (int k = 1; k <= island; ++k) {
          c[static_cast<std::size_t>(k)] = kVddHigh;
        }
        return c;
      }();

      auto passes_with_prefix = [&](std::size_t idx) {
        assign_prefix(prev_idx, idx, dom);
        sta_->compute_base(corners);
        const bool ok = trial_passes(island, loc);
        assign_prefix(prev_idx, idx, kDomainBase);  // roll back trial
        return ok;
      };

      bool feasible = true;
      std::size_t cut_idx;
      if (passes_with_prefix(prev_idx)) {
        // Already-raised islands suffice; this island stays empty so the
        // nesting structure stays intact.
        cut_idx = prev_idx;
      } else if (!passes_with_prefix(n)) {
        feasible = false;
        cut_idx = n;
      } else {
        std::size_t lo = prev_idx, hi = n;  // lo fails, hi passes
        while (hi - lo > 1) {
          const std::size_t mid = lo + (hi - lo) / 2;
          if (passes_with_prefix(mid)) {
            hi = mid;
          } else {
            lo = mid;
          }
        }
        cut_idx = hi;
      }

      assign_prefix(prev_idx, cut_idx, dom);
      plan.cell_count.push_back(cut_idx - prev_idx);
      plan.feasible.push_back(feasible);
      plan.cuts.push_back(cut_idx == 0 ? 0.0
                          : cut_idx >= n
                              ? slice_key(sorted_[n - 1]) + 1.0
                              : slice_key(sorted_[cut_idx]));
      prev_idx = cut_idx;
    }
    return plan;
  };

  // "Most promising side" (paper §4.5): evaluated empirically — build
  // from both sides and keep the plan that compensates the mildest
  // scenario with the smaller first island (ties: fewer total cells).
  const IslandPlan low_plan = build_from_side(true);
  const IslandPlan high_plan = build_from_side(false);
  auto better = [&](const IslandPlan& a, const IslandPlan& b) {
    const bool a_ok = a.feasible.empty() || a.feasible.front();
    const bool b_ok = b.feasible.empty() || b.feasible.front();
    if (a_ok != b_ok) return a_ok;
    if (a.cell_count.front() != b.cell_count.front()) {
      return a.cell_count.front() < b.cell_count.front();
    }
    return a.total_island_cells() <= b.total_island_cells();
  };
  const bool use_low = better(low_plan, high_plan);
  // The high-side build overwrote the domains; rebuilding the winner
  // re-applies its domain assignment.
  const IslandPlan plan = use_low ? build_from_side(true) : high_plan;

  // Restore nominal base delays for the caller.
  sta_->compute_base_all_low();
  return plan;
}

}  // namespace vipvt
