#include "vi/shifters.hpp"

#include <map>
#include <stdexcept>
#include <vector>

namespace vipvt {

ShifterReport insert_level_shifters(Design& design, PlacementDb& db,
                                    const IslandPlan& plan) {
  ShifterReport report;
  const Library& lib = design.lib();
  // Drive selection by receiving-cluster size: shifters feed whole sink
  // clusters plus the wire to reach them, so a single minimum-drive cell
  // would dominate the crossing paths' delay.
  const CellId ls_x1 = lib.find("LS_X1");
  const CellId ls_x2 = lib.find("LS_X2");
  const CellId ls_x4 = lib.find("LS_X4");
  auto ls_for = [&](std::size_t cluster) {
    if (cluster <= 1) return ls_x1;
    if (cluster <= 4) return ls_x2;
    return ls_x4;
  };
  // Receiving clusters larger than this are split across several
  // shifters so no single shifter carries a pathological load.
  constexpr std::size_t kMaxCluster = 12;
  const UnitId ls_unit = design.unit_id("level_shifters");
  const double logic_area_before = design.total_area();

  const auto num_nets_before = static_cast<NetId>(design.num_nets());
  std::size_t ls_index = 0;

  for (NetId n = 0; n < num_nets_before; ++n) {
    const Net& net = design.net(n);
    if (net.is_clock) continue;

    const int driver_rank =
        net.has_cell_driver()
            ? plan.domain_rank(design.instance(net.driver.inst).domain)
            : 0;  // primary inputs arrive at the base (low) supply

    // Group sinks that sit in a strictly higher-rank domain.
    std::map<DomainId, std::vector<PinConn>> groups;
    for (const auto& sink : net.sinks) {
      const DomainId dom = design.instance(sink.inst).domain;
      if (plan.domain_rank(dom) > driver_rank) {
        groups[dom].push_back(sink);
      }
    }
    if (groups.empty()) continue;
    ++report.crossing_nets;

    for (auto& [dom, all_sinks] : groups) {
      // Split large receiving clusters so no shifter drives a
      // pathological load.
      for (std::size_t base = 0; base < all_sinks.size();
           base += kMaxCluster) {
        const std::size_t end =
            std::min(base + kMaxCluster, all_sinks.size());
        const std::vector<PinConn> sinks(all_sinks.begin() + base,
                                         all_sinks.begin() + end);
        // Place at the receiving cluster's centroid: the shifter's own
        // output wire stays short, and the long haul stays on the
        // original (low-swing) net, which was routed anyway.
        Point centroid{0.0, 0.0};
        for (const auto& s : sinks) {
          centroid = centroid + design.instance(s.inst).pos;
        }
        centroid = centroid * (1.0 / static_cast<double>(sinks.size()));

        const NetId shifted =
            design.add_net("ls_net_" + std::to_string(ls_index));
        const PipeStage stage = design.instance(sinks.front().inst).stage;
        const CellId ls_cell = ls_for(sinks.size());
        const InstId ls = design.add_instance(
            "ls_" + std::to_string(ls_index), ls_cell, stage, ls_unit,
            {n, shifted});
        ++ls_index;
        // ECO placement: nearest free hole, shoving row neighbours aside
        // when the whitespace is fragmented.
        const auto spot = db.allocate_with_shove(design, centroid,
                                                 lib.cell(ls_cell).sites, ls);
        if (!spot.has_value()) {
          throw std::runtime_error("level shifter insertion: die is full");
        }
        design.instance(ls).pos = *spot;
        design.instance(ls).placed = true;
        design.instance(ls).domain = dom;  // powered by the receiving island

        for (const auto& s : sinks) design.move_sink(n, s, shifted);

        ++report.inserted;
        report.area_um2 += lib.cell(ls_cell).area_um2;
      }
    }
  }

  report.area_fraction =
      logic_area_before > 0 ? report.area_um2 / logic_area_before : 0.0;
  return report;
}

}  // namespace vipvt
