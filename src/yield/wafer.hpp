#pragma once
// Wafer geometry: stamp a full wafer of dies from the single exposure
// field the paper analyzes.  Three nested coordinate systems:
//
//   * WAFER coordinates [mm], origin at the wafer center.  The stepper
//     exposes the same reticle image at every step of a regular grid
//     centred on the wafer.
//   * FIELD (reticle) coordinates [mm], origin at the exposure field's
//     lower-left corner.  The systematic Lgate polynomial (ExposureField,
//     Fig. 2) lives here and is IDENTICAL for every exposure — that is
//     what makes across-field variation "systematic".
//   * DIE / core coordinates: each field carries a grid of identical
//     dies; a die's position within the field decides its systematic
//     process corner (a lower-left die is a paper point-A die, an
//     upper-right die a point-D die).  DieLocation (variation/field.hpp)
//     maps core-local placement um to field mm.
//
// A die is kept only if its full footprint lies inside the usable wafer
// radius (diameter/2 - edge exclusion); partial edge dies are never
// fabricated.  Die ids are dense and assigned in row-major wafer-scan
// order (bottom row first, left to right), which fixes the iteration
// order every downstream aggregation relies on for determinism.

#include <cstddef>
#include <string>
#include <vector>

#include "util/geometry.hpp"
#include "variation/field.hpp"

namespace vipvt {

struct WaferConfig {
  double wafer_diameter_mm = 300.0;  ///< standard 12-inch wafer
  double edge_exclusion_mm = 3.0;    ///< unusable rim
  /// Exposure-field (reticle) edge length; must match the ExposureField
  /// the variation model was built with (28 mm in the paper).
  double field_mm = 28.0;
  /// Die (chip) edge length; floor(field/die) dies per field side (the
  /// paper's 14 mm chip gives a 2x2 die grid per exposure).
  double die_mm = 14.0;
};

/// One candidate die on the wafer.
struct WaferDie {
  int id = 0;            ///< dense row-major index over kept dies
  int reticle_ix = 0;    ///< exposure step indices (0 at the wafer's
  int reticle_iy = 0;    ///< lower-left exposure)
  int die_ix = 0;        ///< die column within its reticle
  int die_iy = 0;        ///< die row within its reticle
  Point center_mm{};     ///< die center in wafer coordinates
  DieLocation location;  ///< die position within the exposure field
};

class WaferModel {
 public:
  explicit WaferModel(const WaferConfig& cfg);

  const WaferConfig& config() const { return cfg_; }
  const std::vector<WaferDie>& dies() const { return dies_; }
  std::size_t num_dies() const { return dies_.size(); }
  int dies_per_field_side() const { return dies_per_side_; }

  /// Global die-grid column/row of a die (reticle step * grid + in-field
  /// index), used to place dies on a rectangular wafer map.
  int grid_col(const WaferDie& d) const;
  int grid_row(const WaferDie& d) const;

  /// ASCII wafer map: one glyph per die, indexed by die id ('.' off
  /// wafer).  Pass e.g. a per-die policy glyph for the classic colored
  /// wafer-map plot; an empty span renders every die as '#'.
  std::string ascii_map(const std::string& glyph_per_die = {}) const;

 private:
  WaferConfig cfg_;
  int dies_per_side_ = 0;
  int steps_ = 0;  ///< reticle steps per axis
  std::vector<WaferDie> dies_;
};

}  // namespace vipvt
