#pragma once
// Wafer-scale yield analysis: the "virtual fab".  Where the paper
// evaluates compensation at four hand-picked die locations (A-D on the
// exposure-field diagonal), this subsystem fabricates EVERY die of a
// wafer and asks the production questions: parametric yield, per-policy
// power distributions, speed binning, island-activation statistics.
//
// Per die, deterministically keyed by the die id (substream_seed):
//
//   1. Monte-Carlo SSTA at the die's field location, all-low supply —
//      the die's *population* timing statistics (severity per the
//      3-sigma criterion, achievable-fmax distribution for speed bins).
//      Runs on the batched analyze_batch kernel (YieldConfig::mc.batch
//      lanes per graph traversal); dies are already spread across the
//      pool, so per-die sampling stays on the worker's own thread.
//   2. Fabricate one virtual chip (concrete per-gate Lgate map) — this
//      wafer's actual silicon at that location.
//   3. Post-silicon tuning-policy selection, reusing the
//      CompensationController test flow: read Razor sensors at all-low,
//      raise nested islands 1..k with escalation; if even all islands
//      fail, fall back to chip-wide high Vdd; if that fails too, the die
//      is discarded (parametric yield loss).
//   4. Power breakdown under the selected supply assignment at the die's
//      location.
//
// The per-die work is embarrassingly parallel; analyze() runs it on a
// ThreadPool with per-worker StaEngine clones and produces BIT-IDENTICAL
// reports for any thread count (asserted in tests/test_yield.cpp) —
// aggregation happens serially in die-id order after the parallel loop.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "power/power.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "variation/mc_ssta.hpp"
#include "vi/compensate.hpp"
#include "vi/islands.hpp"
#include "vi/razor.hpp"
#include "yield/wafer.hpp"

namespace vipvt {

class Flow;

/// Post-silicon tuning decision for one die, in escalation order.
enum class TuningPolicy : std::uint8_t {
  AllLow = 0,     ///< meets timing uncompensated
  NestedIslands,  ///< islands 1..k raised (k in DieOutcome::islands_raised)
  ChipWideHigh,   ///< whole chip at high Vdd (the paper's baseline)
  Discard,        ///< fails timing even chip-wide: parametric yield loss
};
inline constexpr int kNumTuningPolicies = 4;
const char* tuning_policy_name(TuningPolicy p);
/// One-character wafer-map glyph: '0'..'9' islands raised, 'H' chip-wide
/// high, 'X' discard.
char tuning_policy_glyph(TuningPolicy p, int islands_raised);

struct YieldConfig {
  /// Per-die Monte-Carlo SSTA; mc.seed is ignored (derived per die from
  /// `seed` so results never depend on scheduling).  mc.batch picks the
  /// analyze_batch width of the per-die hot loop (any width, same bits).
  /// mc.adaptive turns every die's run into a sequential-sampling one
  /// (DESIGN.md §14): each die draws only until its own stage fits
  /// converge, so easy dies stop at min_samples while marginal dies run
  /// toward max_samples — per-die budgets, wafer-level savings
  /// (YieldReport::mc_sample_savings()).
  McConfig mc{.samples = 48, .seed = 0, .confidence = 0.95};
  std::uint64_t seed = 0x5afe57a7eULL;
  /// Speed bin metric: the die's achievable clock is this percentile of
  /// its MC min-period distribution (conservative binning).
  double speed_percentile = 0.95;
  std::size_t speed_bins = 8;
  bool allow_escalation = true;
  bool allow_chip_wide_fallback = true;
};

struct DieOutcome {
  int die_id = 0;
  int mc_severity = 0;        ///< violating stages per 3-sigma MC criterion
  int mc_samples = 0;         ///< MC samples drawn (< budget when adaptive)
  McStop mc_stop = McStop::FixedBudget;  ///< why the die's MC run ended
  int detected_severity = 0;  ///< stages the Razor sensors flagged
  int islands_raised = 0;     ///< for AllLow/NestedIslands policies
  TuningPolicy policy = TuningPolicy::Discard;
  bool timing_met = false;
  bool escalated = false;         ///< needed more islands than detected
  bool missed_violation = false;  ///< violating endpoint without a sensor
  double wns_all_low_ns = 0.0;
  double wns_final_ns = 0.0;
  double fmax_ghz = 0.0;  ///< 1 / speed-percentile min period (all-low)
  double total_mw = 0.0;  ///< under the selected policy, at this die
  double leakage_mw = 0.0;
};

/// The worst-case per-die MC sample budget of a config: max_samples when
/// adaptive sampling is on, the fixed mc.samples otherwise (never
/// negative).  Both YieldReport accounting and the campaign layer's
/// streaming reducers charge budgets through this one definition.
int per_die_mc_budget(const McConfig& mc);

/// Partition-invariant mergeable aggregate over die outcomes: the
/// campaign layer's streaming reducer (DESIGN.md §15).  Holds ONLY
/// O(1)-in-dies state — exact integer tallies plus ExactMoments — so a
/// shard worker can reduce its dies as it goes and discard every
/// per-die result.  add() and merge() commute and associate exactly:
/// aggregating dies one-by-one, or in shards of ANY size merged in any
/// order, produces bit-identical state (this is what makes the campaign
/// report byte-identical across shard sizes and thread counts).  Speed
/// bins are deliberately absent: their edges depend on the global fmax
/// extrema, which no one-pass partition-invariant reducer can bin
/// against — campaign consumers derive bins from the fmax moments or
/// from per-die CSVs.
struct YieldAggregate {
  std::uint64_t dies = 0;
  std::array<std::uint64_t, kNumTuningPolicies> policy_count{};
  /// Histogram of islands_raised over island-compensated dies (index 0 =
  /// all-low); size num_islands()+1, fixed at construction by
  /// analyze_shard (merge() rejects mismatched sizes).
  std::vector<std::uint64_t> island_activation;
  std::uint64_t timing_met = 0;
  std::uint64_t escalated = 0;
  std::uint64_t missed_violation = 0;
  std::uint64_t mc_severity_sum = 0;
  std::uint64_t mc_samples_drawn = 0;
  std::uint64_t mc_samples_budget = 0;
  std::uint64_t mc_converged_dies = 0;
  ExactMoments fmax_ghz;  ///< over shipped dies with fmax > 0
  ExactMoments wns_all_low_ns;  ///< over all dies
  ExactMoments wns_final_ns;    ///< over all dies
  std::array<ExactMoments, kNumTuningPolicies> power_mw;
  std::array<ExactMoments, kNumTuningPolicies> leakage_mw;

  /// Fold one die in.  `num_islands` sizes/clamps the activation
  /// histogram; `per_die_budget` is per_die_mc_budget(cfg.mc).
  void add(const DieOutcome& d, int num_islands, int per_die_budget);
  /// Exact reduction; throws std::invalid_argument when the activation
  /// histograms disagree in size (aggregates from different island
  /// plans).
  void merge(const YieldAggregate& other);

  std::uint64_t shipped_dies() const {
    return dies - policy_count[static_cast<std::size_t>(TuningPolicy::Discard)];
  }
  double parametric_yield() const {
    return dies == 0 ? 0.0
                     : static_cast<double>(shipped_dies()) /
                           static_cast<double>(dies);
  }
};

struct YieldReport {
  WaferConfig wafer{};
  YieldConfig config{};
  std::vector<DieOutcome> dies;  ///< die-id order (== WaferModel::dies())

  // ---- aggregates (filled serially after the per-die loop) ---------------
  std::array<std::size_t, kNumTuningPolicies> policy_count{};
  /// Histogram of islands_raised over island-compensated dies (index 0 =
  /// all-low dies); size num_islands()+1.
  std::vector<std::size_t> island_activation;
  std::array<RunningStats, kNumTuningPolicies> power_mw;
  std::array<RunningStats, kNumTuningPolicies> leakage_mw;
  RunningStats fmax_ghz;  ///< over shipped (non-discarded) dies
  /// Wafer-level adaptive-sampling accounting: samples actually drawn
  /// across all dies vs the worst-case budget (max_samples per die when
  /// adaptive, the fixed mc.samples otherwise — the two coincide for
  /// fixed runs, so savings read 0 there by construction).
  std::size_t mc_samples_drawn = 0;
  std::size_t mc_samples_budget = 0;
  /// Dies whose adaptive run stopped on McStop::Converged (0 for fixed
  /// runs, where every die reports FixedBudget).
  std::size_t mc_converged_dies = 0;
  /// Speed-bin histogram over shipped-die fmax: bin i spans
  /// [lo + i*step, lo + (i+1)*step).
  std::vector<std::size_t> speed_bin_count;
  double speed_bin_lo_ghz = 0.0;
  double speed_bin_step_ghz = 0.0;

  std::size_t total_dies() const { return dies.size(); }
  std::size_t count(TuningPolicy p) const {
    return policy_count[static_cast<std::size_t>(p)];
  }
  std::size_t shipped_dies() const {
    return dies.size() - count(TuningPolicy::Discard);
  }
  /// Fraction of dies that ship under SOME policy (the classic
  /// parametric-yield number).
  double parametric_yield() const {
    return dies.empty() ? 0.0
                        : static_cast<double>(shipped_dies()) /
                              static_cast<double>(dies.size());
  }
  /// Fraction of the worst-case MC sample budget the wafer never had to
  /// draw (0 for fixed-budget runs).
  double mc_sample_savings() const {
    return mc_samples_budget == 0
               ? 0.0
               : 1.0 - static_cast<double>(mc_samples_drawn) /
                           static_cast<double>(mc_samples_budget);
  }
  /// Glyph string indexed by die id, for WaferModel::ascii_map().
  std::string policy_glyphs() const;
};

class YieldAnalyzer {
 public:
  /// All references must outlive the analyzer.  `sta` must hold the
  /// final netlist (islands assigned, shifters inserted, Razor flops
  /// applied) — the same precondition as CompensationController; it is
  /// only ever COPIED (one clone per worker), never mutated.
  YieldAnalyzer(const Design& design, const StaEngine& sta,
                const VariationModel& model, const IslandPlan& plan,
                const RazorPlan& sensors, const ActivityDb& activity,
                double clock_freq_ghz);

  /// Convenience: borrow everything from a Flow that has run
  /// plan_sensors() and simulate_activity() (throws otherwise — checked
  /// via the Flow's cheap state queries).
  static YieldAnalyzer from_flow(const Flow& flow);

  /// Analyze every die of the wafer.  `pool == nullptr` runs serially;
  /// any pool produces the identical report.
  YieldReport analyze(const WaferModel& wafer, const YieldConfig& cfg = {},
                      ThreadPool* pool = nullptr) const;

  /// Single-die analysis on a caller-owned engine clone (the parallel
  /// loop's body; exposed for tests and custom drivers).  Leaves the
  /// engine's base delays at the die's final corner assignment.
  /// Constructs a fresh controller and systematic map per call; the
  /// wafer loop goes through analyze_die_with instead to reuse both.
  DieOutcome analyze_die(StaEngine& engine, const WaferDie& die,
                         const YieldConfig& cfg) const;

  /// Worker-grade single-die analysis: `ctrl` must be a controller over
  /// `engine` and persists across dies (its per-level base-delay
  /// snapshots amortize NLDM delay calculation across every die the
  /// worker sees, and all levels past the worker's first are delta-built
  /// via StaEngine::recorner_delta — one full delay calculation per
  /// worker, O(island fan-out cone) per additional level, DESIGN.md
  /// §12); `systematic` is the die's systematic Lgate map —
  /// shared by all dies of the same reticle slot.  Bit-identical to
  /// analyze_die().
  DieOutcome analyze_die_with(StaEngine& engine, CompensationController& ctrl,
                              const WaferDie& die, const YieldConfig& cfg,
                              std::span<const double> systematic) const;

  /// Dense reticle-slot index of a die: die_iy * dies_per_field_side +
  /// die_ix.  All dies of a slot share one systematic Lgate map.
  static std::size_t reticle_slot(const WaferModel& wafer, const WaferDie& die);

  /// The systematic Lgate map of every reticle slot (size side²,
  /// indexed by reticle_slot).  analyze() computes this once per wafer;
  /// the campaign layer computes it once per (variant, wafer geometry)
  /// and shares it read-only across every shard of the sweep.
  std::vector<std::vector<double>> reticle_slot_maps(
      const WaferModel& wafer) const;

  /// Shard-ranged analysis: run dies [die_begin, die_end) of the wafer
  /// on caller-owned worker state and reduce them straight into a
  /// mergeable YieldAggregate — no per-die outcome is retained, which is
  /// what keeps a streaming campaign O(1) in dies.  `slot_maps` is
  /// reticle_slot_maps(wafer) (shared read-only; an empty span makes the
  /// shard compute maps itself).  Per-die bits are identical to
  /// analyze_die(), so aggregating any partition of [0, num_dies) and
  /// merging reproduces the aggregate of a full analyze() run exactly.
  YieldAggregate analyze_shard(
      StaEngine& engine, CompensationController& ctrl,
      const WaferModel& wafer, const YieldConfig& cfg, std::size_t die_begin,
      std::size_t die_end,
      std::span<const std::vector<double>> slot_maps = {}) const;

 private:
  void aggregate(YieldReport& report) const;

  const Design* design_;
  const StaEngine* sta_;
  const VariationModel* model_;
  const IslandPlan* plan_;
  const RazorPlan* sensors_;
  const ActivityDb* activity_;
  double clock_freq_ghz_;
};

}  // namespace vipvt
