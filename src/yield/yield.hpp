#pragma once
// Wafer-scale yield analysis: the "virtual fab".  Where the paper
// evaluates compensation at four hand-picked die locations (A-D on the
// exposure-field diagonal), this subsystem fabricates EVERY die of a
// wafer and asks the production questions: parametric yield, per-policy
// power distributions, speed binning, island-activation statistics.
//
// Per die, deterministically keyed by the die id (substream_seed):
//
//   1. Monte-Carlo SSTA at the die's field location, all-low supply —
//      the die's *population* timing statistics (severity per the
//      3-sigma criterion, achievable-fmax distribution for speed bins).
//      Runs on the batched analyze_batch kernel (YieldConfig::mc.batch
//      lanes per graph traversal); dies are already spread across the
//      pool, so per-die sampling stays on the worker's own thread.
//   2. Fabricate one virtual chip (concrete per-gate Lgate map) — this
//      wafer's actual silicon at that location.
//   3. Post-silicon tuning-policy selection, reusing the
//      CompensationController test flow: read Razor sensors at all-low,
//      raise nested islands 1..k with escalation; if even all islands
//      fail, fall back to chip-wide high Vdd; if that fails too, the die
//      is discarded (parametric yield loss).
//   4. Power breakdown under the selected supply assignment at the die's
//      location.
//
// The per-die work is embarrassingly parallel; analyze() runs it on a
// ThreadPool with per-worker StaEngine clones and produces BIT-IDENTICAL
// reports for any thread count (asserted in tests/test_yield.cpp) —
// aggregation happens serially in die-id order after the parallel loop.

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include <memory>
#include <mutex>

#include "power/power.hpp"
#include "ssta/macromodel.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "variation/mc_ssta.hpp"
#include "vi/compensate.hpp"
#include "vi/islands.hpp"
#include "vi/policy.hpp"
#include "vi/razor.hpp"
#include "yield/wafer.hpp"

namespace vipvt {

class CanonicalSsta;
class Flow;

/// Post-silicon tuning decision for one die, in escalation order.
enum class TuningPolicy : std::uint8_t {
  AllLow = 0,     ///< meets timing uncompensated
  NestedIslands,  ///< islands 1..k raised (k in DieOutcome::islands_raised)
  ChipWideHigh,   ///< whole chip at high Vdd (the paper's baseline)
  Discard,        ///< fails timing even chip-wide: parametric yield loss
};
inline constexpr int kNumTuningPolicies = 4;
const char* tuning_policy_name(TuningPolicy p);
/// One-character wafer-map glyph: '0'..'9' islands raised, 'H' chip-wide
/// high, 'X' discard.
char tuning_policy_glyph(TuningPolicy p, int islands_raised);

/// Which tier decided a die's population statistics (DESIGN.md §16/§19).
enum class TriageTier : std::uint8_t {
  Off = 0,     ///< triage disabled: the die ran the full MC path
  Analytical,  ///< canonical-SSTA margin cleared the band; MC skipped
  McFallback,  ///< margin inside the band; adaptive MC ran unchanged
  Macro,       ///< stage-macromodel margin cleared the band; MC skipped
};
const char* triage_tier_name(TriageTier t);

/// How a die's population statistics are evaluated (DESIGN.md §19):
/// Flat runs per-die MC on the full gate graph; Triage screens reticle
/// slots with one flat canonical pass each (§16); Macro screens them by
/// interpolating pre-characterized stage macromodels — no per-slot graph
/// propagation at all.  Triage and Macro share the TriageConfig band and
/// fall back to the identical MC path on undecided slots.
enum class EvalTier : std::uint8_t {
  Flat = 0,
  Triage,
  Macro,
};
const char* eval_tier_name(EvalTier t);

/// Analytical canonical-SSTA triage (DESIGN.md §16): before paying a
/// die's MC budget, one canonical-form pass produces per-stage
/// mean/sigma analytically.  A die whose every gating stage sits more
/// than a confidence band away from the 3-sigma yield cliff takes the
/// analytical verdict and skips MC entirely; boundary dies fall back to
/// the configured MC unchanged.  The band is calibrated from the §14 CI
/// machinery: what an n-sample MC run could plausibly disagree with the
/// analytic moments by, at `confidence`, plus an absolute model-error
/// allowance for the linearization/Clark approximations.
struct TriageConfig {
  bool enabled = false;
  /// Confidence level of the CI half-widths the band is built from (the
  /// stated error rate of the analytic verdict is 1 - confidence).
  double confidence = 0.95;
  /// Multiplier on the CI-derived part of the band (>1 = stricter
  /// triage: fewer dies decided analytically).
  double band_scale = 1.0;
  /// Absolute allowance [ns] for canonical-model bias (table
  /// linearization, Clark's normal approximation, the dropped sample
  /// clamp) added on top of the scaled CI band.
  double model_error_ns = 0.002;
};

struct YieldConfig {
  /// Per-die Monte-Carlo SSTA; mc.seed is ignored (derived per die from
  /// `seed` so results never depend on scheduling).  mc.batch picks the
  /// analyze_batch width of the per-die hot loop (any width, same bits).
  /// mc.adaptive turns every die's run into a sequential-sampling one
  /// (DESIGN.md §14): each die draws only until its own stage fits
  /// converge, so easy dies stop at min_samples while marginal dies run
  /// toward max_samples — per-die budgets, wafer-level savings
  /// (YieldReport::mc_sample_savings()).
  McConfig mc{.samples = 48, .seed = 0, .confidence = 0.95};
  std::uint64_t seed = 0x5afe57a7eULL;
  /// Speed bin metric: the die's achievable clock is this percentile of
  /// its MC min-period distribution (conservative binning).
  double speed_percentile = 0.95;
  std::size_t speed_bins = 8;
  bool allow_escalation = true;
  bool allow_chip_wide_fallback = true;
  /// Analytical triage tier (off by default: bit-identical to the
  /// pre-triage flow).  With triage on, a die's non-MC outputs (policy,
  /// wns, power) are STILL bit-identical to a triage-off run — the
  /// analytic screen replaces only the MC population statistics
  /// (mc_severity, fmax) on dies it decides, and consumes the same RNG
  /// stream positions so fabrication stays aligned.
  TriageConfig triage{};
  /// Evaluation tier (DESIGN.md §19).  Flat honors the legacy
  /// triage.enabled flag (effective_tier()); Macro screens slots through
  /// the stage macromodel with the same band/fallback contract as
  /// Triage, including the RNG-position guarantee above.
  EvalTier tier = EvalTier::Flat;
  /// Macromodel characterization knobs (used when the effective tier is
  /// Macro); part of the analyzer's library cache key.
  MacroConfig macro{};

  /// Resolves the legacy triage.enabled flag: an explicit tier wins,
  /// otherwise triage.enabled selects Triage.
  EvalTier effective_tier() const {
    if (tier == EvalTier::Flat && triage.enabled) return EvalTier::Triage;
    return tier;
  }
};

struct DieOutcome {
  int die_id = 0;
  int mc_severity = 0;        ///< violating stages per 3-sigma MC criterion
  int mc_samples = 0;         ///< MC samples drawn (< budget when adaptive)
  McStop mc_stop = McStop::FixedBudget;  ///< why the die's MC run ended
  int detected_severity = 0;  ///< stages the Razor sensors flagged
  int islands_raised = 0;     ///< for AllLow/NestedIslands policies
  TuningPolicy policy = TuningPolicy::Discard;
  bool timing_met = false;
  bool escalated = false;         ///< needed more islands than detected
  bool missed_violation = false;  ///< violating endpoint without a sensor
  double wns_all_low_ns = 0.0;
  double wns_final_ns = 0.0;
  double fmax_ghz = 0.0;  ///< 1 / speed-percentile min period (all-low)
  double total_mw = 0.0;  ///< under the selected policy, at this die
  double leakage_mw = 0.0;
  /// Triage accounting (DESIGN.md §16).  Off when triage is disabled;
  /// Analytical dies report mc_samples == 0 and carry the analytic
  /// severity/fmax; McFallback dies ran the full MC path.  margin/band
  /// are the binding gating stage's analytic |3-sigma slack| and the
  /// confidence band it was compared against (0/0 when triage is off).
  TriageTier triage_tier = TriageTier::Off;
  double triage_margin_ns = 0.0;
  double triage_band_ns = 0.0;
};

/// Analytic verdict of one reticle slot (all dies of a slot share the
/// systematic map, hence the same analytic moments): the per-slot output
/// of YieldAnalyzer::triage_screen.
struct SlotTriage {
  bool decided = false;  ///< every gating stage cleared the band
  int severity = 0;      ///< analytic violating-stage count (3-sigma)
  double margin_ns = 0.0;  ///< binding gating-stage |3-sigma slack|
  double band_ns = 0.0;    ///< that stage's confidence band
  double fmax_ghz = 0.0;   ///< analytic speed-percentile fmax
};

/// The worst-case per-die MC sample budget of a config: max_samples when
/// adaptive sampling is on, the fixed mc.samples otherwise (never
/// negative).  Both YieldReport accounting and the campaign layer's
/// streaming reducers charge budgets through this one definition.
int per_die_mc_budget(const McConfig& mc);

/// Partition-invariant mergeable aggregate over die outcomes: the
/// campaign layer's streaming reducer (DESIGN.md §15).  Holds ONLY
/// O(1)-in-dies state — exact integer tallies plus ExactMoments — so a
/// shard worker can reduce its dies as it goes and discard every
/// per-die result.  add() and merge() commute and associate exactly:
/// aggregating dies one-by-one, or in shards of ANY size merged in any
/// order, produces bit-identical state (this is what makes the campaign
/// report byte-identical across shard sizes and thread counts).  Speed
/// bins are deliberately absent: their edges depend on the global fmax
/// extrema, which no one-pass partition-invariant reducer can bin
/// against — campaign consumers derive bins from the fmax moments or
/// from per-die CSVs.
struct YieldAggregate {
  std::uint64_t dies = 0;
  std::array<std::uint64_t, kNumTuningPolicies> policy_count{};
  /// Histogram of islands_raised over island-compensated dies (index 0 =
  /// all-low); size num_islands()+1, fixed at construction by
  /// analyze_shard (merge() rejects mismatched sizes).
  std::vector<std::uint64_t> island_activation;
  std::uint64_t timing_met = 0;
  std::uint64_t escalated = 0;
  std::uint64_t missed_violation = 0;
  std::uint64_t mc_severity_sum = 0;
  std::uint64_t mc_samples_drawn = 0;
  std::uint64_t mc_samples_budget = 0;
  std::uint64_t mc_converged_dies = 0;
  /// Tier tallies (DESIGN.md §16/§19): dies decided analytically, dies
  /// decided by the stage macromodel, dies that fell back to MC.  All 0
  /// on the flat tier.
  std::uint64_t triage_analytical = 0;
  std::uint64_t triage_mc_fallback = 0;
  std::uint64_t triage_macro = 0;
  ExactMoments fmax_ghz;  ///< over shipped dies with fmax > 0
  ExactMoments wns_all_low_ns;  ///< over all dies
  ExactMoments wns_final_ns;    ///< over all dies
  std::array<ExactMoments, kNumTuningPolicies> power_mw;
  std::array<ExactMoments, kNumTuningPolicies> leakage_mw;

  /// Fold one die in.  `num_islands` sizes/clamps the activation
  /// histogram; `per_die_budget` is per_die_mc_budget(cfg.mc).
  void add(const DieOutcome& d, int num_islands, int per_die_budget);
  /// Exact reduction; throws std::invalid_argument when the activation
  /// histograms disagree in size (aggregates from different island
  /// plans).
  void merge(const YieldAggregate& other);

  std::uint64_t shipped_dies() const {
    return dies - policy_count[static_cast<std::size_t>(TuningPolicy::Discard)];
  }
  double parametric_yield() const {
    return dies == 0 ? 0.0
                     : static_cast<double>(shipped_dies()) /
                           static_cast<double>(dies);
  }
};

struct YieldReport {
  WaferConfig wafer{};
  YieldConfig config{};
  std::vector<DieOutcome> dies;  ///< die-id order (== WaferModel::dies())

  // ---- aggregates (filled serially after the per-die loop) ---------------
  std::array<std::size_t, kNumTuningPolicies> policy_count{};
  /// Histogram of islands_raised over island-compensated dies (index 0 =
  /// all-low dies); size num_islands()+1.
  std::vector<std::size_t> island_activation;
  std::array<RunningStats, kNumTuningPolicies> power_mw;
  std::array<RunningStats, kNumTuningPolicies> leakage_mw;
  RunningStats fmax_ghz;  ///< over shipped (non-discarded) dies
  /// Wafer-level adaptive-sampling accounting: samples actually drawn
  /// across all dies vs the worst-case budget (max_samples per die when
  /// adaptive, the fixed mc.samples otherwise — the two coincide for
  /// fixed runs, so savings read 0 there by construction).
  std::size_t mc_samples_drawn = 0;
  std::size_t mc_samples_budget = 0;
  /// Dies whose adaptive run stopped on McStop::Converged (0 for fixed
  /// runs, where every die reports FixedBudget).
  std::size_t mc_converged_dies = 0;
  /// Tier tallies (DESIGN.md §16/§19); all 0 on the flat tier.
  std::size_t triage_analytical = 0;
  std::size_t triage_mc_fallback = 0;
  std::size_t triage_macro = 0;
  /// Speed-bin histogram over shipped-die fmax: bin i spans
  /// [lo + i*step, lo + (i+1)*step).
  std::vector<std::size_t> speed_bin_count;
  double speed_bin_lo_ghz = 0.0;
  double speed_bin_step_ghz = 0.0;
  /// Which compensation-policy mix produced this wafer's netlist and
  /// what it did (DESIGN.md §18) — the default "vi-only" stats when the
  /// analyzer runs on an untransformed design.
  PortfolioStats portfolio{};

  std::size_t total_dies() const { return dies.size(); }
  std::size_t count(TuningPolicy p) const {
    return policy_count[static_cast<std::size_t>(p)];
  }
  std::size_t shipped_dies() const {
    return dies.size() - count(TuningPolicy::Discard);
  }
  /// Fraction of dies that ship under SOME policy (the classic
  /// parametric-yield number).
  double parametric_yield() const {
    return dies.empty() ? 0.0
                        : static_cast<double>(shipped_dies()) /
                              static_cast<double>(dies.size());
  }
  /// Fraction of the worst-case MC sample budget the wafer never had to
  /// draw (0 for fixed-budget runs).
  double mc_sample_savings() const {
    return mc_samples_budget == 0
               ? 0.0
               : 1.0 - static_cast<double>(mc_samples_drawn) /
                           static_cast<double>(mc_samples_budget);
  }
  /// Fraction of dies a screen decided without MC — analytical (§16)
  /// plus macromodel (§19) verdicts (0 on the flat tier).
  double triage_fraction() const {
    return dies.empty() ? 0.0
                        : static_cast<double>(triage_analytical + triage_macro) /
                              static_cast<double>(dies.size());
  }
  /// Glyph string indexed by die id, for WaferModel::ascii_map().
  std::string policy_glyphs() const;
};

class YieldAnalyzer {
 public:
  /// All references must outlive the analyzer.  `sta` must hold the
  /// final netlist (islands assigned, shifters inserted, Razor flops
  /// applied) — the same precondition as CompensationController; it is
  /// only ever COPIED (one clone per worker), never mutated.
  YieldAnalyzer(const Design& design, const StaEngine& sta,
                const VariationModel& model, const IslandPlan& plan,
                const RazorPlan& sensors, const ActivityDb& activity,
                double clock_freq_ghz);

  /// Convenience: borrow everything from a Flow that has run
  /// plan_sensors() and simulate_activity() (throws otherwise — checked
  /// via the Flow's cheap state queries).
  static YieldAnalyzer from_flow(const Flow& flow);

  /// Attach the compile_policy_mix stats of the netlist this analyzer
  /// was built over (DESIGN.md §18); stamped into every report's
  /// `portfolio` field.  Purely descriptive — per-die analysis never
  /// reads it, so the default (vi-only) stamp changes no bits.
  void set_portfolio(PortfolioStats stats) { portfolio_ = std::move(stats); }

  /// Analyze every die of the wafer.  `pool == nullptr` runs serially;
  /// any pool produces the identical report.
  YieldReport analyze(const WaferModel& wafer, const YieldConfig& cfg = {},
                      ThreadPool* pool = nullptr) const;

  /// Single-die analysis on a caller-owned engine clone (the parallel
  /// loop's body; exposed for tests and custom drivers).  Leaves the
  /// engine's base delays at the die's final corner assignment.
  /// Constructs a fresh controller and systematic map per call; the
  /// wafer loop goes through analyze_die_with instead to reuse both.
  DieOutcome analyze_die(StaEngine& engine, const WaferDie& die,
                         const YieldConfig& cfg) const;

  /// Worker-grade single-die analysis: `ctrl` must be a controller over
  /// `engine` and persists across dies (its per-level base-delay
  /// snapshots amortize NLDM delay calculation across every die the
  /// worker sees, and all levels past the worker's first are delta-built
  /// via StaEngine::recorner_delta — one full delay calculation per
  /// worker, O(island fan-out cone) per additional level, DESIGN.md
  /// §12); `systematic` is the die's systematic Lgate map —
  /// shared by all dies of the same reticle slot.  Bit-identical to
  /// analyze_die().
  /// `triage` is the die's reticle-slot screen entry (nullptr = no
  /// screen, every die runs MC); a decided entry replaces the MC pass
  /// with the analytic verdict while consuming the same RNG positions,
  /// so fabrication/compensation/power are bit-identical either way.
  DieOutcome analyze_die_with(StaEngine& engine, CompensationController& ctrl,
                              const WaferDie& die, const YieldConfig& cfg,
                              std::span<const double> systematic,
                              const SlotTriage* triage = nullptr) const;

  /// The analytic screen of every reticle slot (size side², indexed by
  /// reticle_slot; all-default entries when cfg.triage.enabled is
  /// false).  A pure function of (variant, wafer geometry, cfg) —
  /// independent of thread/shard partitioning — computed once per wafer
  /// by analyze(), once per (variant, geometry, budget) by the campaign
  /// layer.  `slot_maps` is reticle_slot_maps(wafer) (recomputed when
  /// empty).  Cost: side² canonical passes, ~one MC sample each.
  std::vector<SlotTriage> triage_screen(
      const WaferModel& wafer, const YieldConfig& cfg,
      std::span<const std::vector<double>> slot_maps = {}) const;

  /// The macromodel screen of every reticle slot (DESIGN.md §19): same
  /// shape and decision rule as triage_screen, but each slot's moments
  /// come from StageMacroLibrary::evaluate on the cached library instead
  /// of a flat canonical pass.  Characterization happens lazily on first
  /// use (per analyzer, keyed by cfg.macro) and is amortized across
  /// every wafer/cell this analyzer screens.
  std::vector<SlotTriage> macro_screen(
      const WaferModel& wafer, const YieldConfig& cfg,
      std::span<const std::vector<double>> slot_maps = {}) const;

  /// The screen for cfg.effective_tier(): triage_screen, macro_screen,
  /// or an empty vector on the flat tier.  What analyze(), the campaign
  /// planner, and shard fallbacks all route through.
  std::vector<SlotTriage> tier_screen(
      const WaferModel& wafer, const YieldConfig& cfg,
      std::span<const std::vector<double>> slot_maps = {}) const;

  /// The lazily characterized stage-macromodel library for cfg.macro
  /// (characterized once per analyzer at the all-low corner state;
  /// re-characterized only when cfg.macro changes — the macro-tier cache
  /// the campaign layer keys per (variant, policy, sigma) analyzer
  /// slot).  Thread-safe; the returned reference lives as long as the
  /// analyzer and the key stays unchanged.
  const StageMacroLibrary& macro_library(const MacroConfig& cfg) const;

  /// Dense reticle-slot index of a die: die_iy * dies_per_field_side +
  /// die_ix.  All dies of a slot share one systematic Lgate map.
  static std::size_t reticle_slot(const WaferModel& wafer, const WaferDie& die);

  /// The systematic Lgate map of every reticle slot (size side²,
  /// indexed by reticle_slot).  analyze() computes this once per wafer;
  /// the campaign layer computes it once per (variant, wafer geometry)
  /// and shares it read-only across every shard of the sweep.
  std::vector<std::vector<double>> reticle_slot_maps(
      const WaferModel& wafer) const;

  /// Shard-ranged analysis: run dies [die_begin, die_end) of the wafer
  /// on caller-owned worker state and reduce them straight into a
  /// mergeable YieldAggregate — no per-die outcome is retained, which is
  /// what keeps a streaming campaign O(1) in dies.  `slot_maps` is
  /// reticle_slot_maps(wafer) (shared read-only; an empty span makes the
  /// shard compute maps itself).  Per-die bits are identical to
  /// analyze_die(), so aggregating any partition of [0, num_dies) and
  /// merging reproduces the aggregate of a full analyze() run exactly.
  /// `screen` is triage_screen(wafer, cfg) (shared read-only; an empty
  /// span with triage enabled makes the shard compute it itself, so a
  /// shard's bits never depend on whether the caller shared the screen).
  YieldAggregate analyze_shard(
      StaEngine& engine, CompensationController& ctrl,
      const WaferModel& wafer, const YieldConfig& cfg, std::size_t die_begin,
      std::size_t die_end, std::span<const std::vector<double>> slot_maps = {},
      std::span<const SlotTriage> screen = {}) const;

 private:
  void aggregate(YieldReport& report) const;
  /// One slot's analytic verdict: canonical pass over `systematic`, then
  /// the per-gating-stage margin-vs-band decision (DESIGN.md §16).
  SlotTriage triage_slot(const CanonicalSsta& canon,
                         std::span<const double> systematic,
                         const YieldConfig& cfg) const;
  /// The shared margin-vs-band decision applied to analytic stage
  /// moments from either tier (§16 canonical pass or §19 macromodel).
  SlotTriage slot_verdict(const CanonicalResult& res,
                          const YieldConfig& cfg) const;

  const Design* design_;
  const StaEngine* sta_;
  const VariationModel* model_;
  const IslandPlan* plan_;
  const RazorPlan* sensors_;
  const ActivityDb* activity_;
  /// Shared across all workers: PowerEngine::compute is pure, and the
  /// per-net capacitance it precomputes never varies per die.
  PowerEngine power_;
  double clock_freq_ghz_;
  PortfolioStats portfolio_{};
  /// Lazy per-analyzer macromodel cache (DESIGN.md §19): characterized
  /// at the all-low corner state on first macro_library() call, reused
  /// until the MacroConfig key changes.
  mutable std::mutex macro_mutex_;
  mutable std::unique_ptr<StageMacroLibrary> macro_lib_;
  mutable MacroConfig macro_key_{};
};

}  // namespace vipvt
