#include "yield/wafer.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace vipvt {

WaferModel::WaferModel(const WaferConfig& cfg) : cfg_(cfg) {
  if (cfg_.die_mm <= 0.0 || cfg_.field_mm < cfg_.die_mm) {
    throw std::invalid_argument("WaferModel: need 0 < die_mm <= field_mm");
  }
  if (cfg_.wafer_diameter_mm <= 2.0 * cfg_.edge_exclusion_mm) {
    throw std::invalid_argument("WaferModel: edge exclusion swallows wafer");
  }
  dies_per_side_ = static_cast<int>(cfg_.field_mm / cfg_.die_mm);
  const double radius = 0.5 * cfg_.wafer_diameter_mm - cfg_.edge_exclusion_mm;

  // Reticle grid centred on the wafer: `steps_` exposures per axis, the
  // whole array symmetric about the wafer center so the map is the
  // familiar circular mosaic.
  steps_ = static_cast<int>(std::ceil(2.0 * radius / cfg_.field_mm));
  const double span = steps_ * cfg_.field_mm;
  const double origin = -0.5 * span;  // lower-left corner of exposure (0,0)

  const auto keep = [&](double x0, double y0) {
    // All four die corners inside the usable radius.
    for (int c = 0; c < 4; ++c) {
      const double x = x0 + (c & 1 ? cfg_.die_mm : 0.0);
      const double y = y0 + (c & 2 ? cfg_.die_mm : 0.0);
      if (x * x + y * y > radius * radius) return false;
    }
    return true;
  };

  // Row-major over the GLOBAL die grid (bottom row first) so die ids are
  // independent of how reticles/dies nest — the deterministic scan order.
  const int cols = steps_ * dies_per_side_;
  for (int gy = 0; gy < cols; ++gy) {
    for (int gx = 0; gx < cols; ++gx) {
      const int rix = gx / dies_per_side_, dix = gx % dies_per_side_;
      const int riy = gy / dies_per_side_, diy = gy % dies_per_side_;
      const double x0 = origin + rix * cfg_.field_mm + dix * cfg_.die_mm;
      const double y0 = origin + riy * cfg_.field_mm + diy * cfg_.die_mm;
      if (!keep(x0, y0)) continue;
      WaferDie d;
      d.id = static_cast<int>(dies_.size());
      d.reticle_ix = rix;
      d.reticle_iy = riy;
      d.die_ix = dix;
      d.die_iy = diy;
      d.center_mm = {x0 + 0.5 * cfg_.die_mm, y0 + 0.5 * cfg_.die_mm};
      // Position within the (shared) exposure field decides the die's
      // systematic corner; the core sits at the die's lower-left, as in
      // the paper's point-A..D convention.
      d.location.chip_origin_mm = {dix * cfg_.die_mm, diy * cfg_.die_mm};
      d.location.core_origin_mm = {0.0, 0.0};
      dies_.push_back(d);
    }
  }
}

int WaferModel::grid_col(const WaferDie& d) const {
  return d.reticle_ix * dies_per_side_ + d.die_ix;
}

int WaferModel::grid_row(const WaferDie& d) const {
  return d.reticle_iy * dies_per_side_ + d.die_iy;
}

std::string WaferModel::ascii_map(const std::string& glyph_per_die) const {
  const int cols = steps_ * dies_per_side_;
  std::vector<std::string> rows(static_cast<std::size_t>(cols),
                                std::string(static_cast<std::size_t>(cols), '.'));
  for (const WaferDie& d : dies_) {
    const char g = static_cast<std::size_t>(d.id) < glyph_per_die.size()
                       ? glyph_per_die[static_cast<std::size_t>(d.id)]
                       : '#';
    rows[static_cast<std::size_t>(grid_row(d))]
        [static_cast<std::size_t>(grid_col(d))] = g;
  }
  std::ostringstream out;
  // Top row printed first: wafer map convention (y up).
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) out << *it << '\n';
  return out.str();
}

}  // namespace vipvt
