#include "yield/yield.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "ssta/canonical.hpp"
#include "vi/flow.hpp"

namespace vipvt {

const char* triage_tier_name(TriageTier t) {
  switch (t) {
    case TriageTier::Off: return "off";
    case TriageTier::Analytical: return "analytical";
    case TriageTier::McFallback: return "mc-fallback";
    case TriageTier::Macro: return "macro";
  }
  return "?";
}

const char* eval_tier_name(EvalTier t) {
  switch (t) {
    case EvalTier::Flat: return "flat";
    case EvalTier::Triage: return "triage";
    case EvalTier::Macro: return "macro";
  }
  return "?";
}

const char* tuning_policy_name(TuningPolicy p) {
  switch (p) {
    case TuningPolicy::AllLow: return "all-low";
    case TuningPolicy::NestedIslands: return "nested-islands";
    case TuningPolicy::ChipWideHigh: return "chip-wide-high";
    case TuningPolicy::Discard: return "discard";
  }
  return "?";
}

char tuning_policy_glyph(TuningPolicy p, int islands_raised) {
  switch (p) {
    case TuningPolicy::AllLow: return '0';
    case TuningPolicy::NestedIslands:
      return islands_raised <= 9 ? static_cast<char>('0' + islands_raised)
                                 : '9';
    case TuningPolicy::ChipWideHigh: return 'H';
    case TuningPolicy::Discard: return 'X';
  }
  return '?';
}

std::string YieldReport::policy_glyphs() const {
  std::string glyphs(dies.size(), '?');
  for (const DieOutcome& d : dies) {
    glyphs[static_cast<std::size_t>(d.die_id)] =
        tuning_policy_glyph(d.policy, d.islands_raised);
  }
  return glyphs;
}

int per_die_mc_budget(const McConfig& mc) {
  return std::max(mc.adaptive.enabled ? mc.adaptive.max_samples : mc.samples,
                  0);
}

void YieldAggregate::add(const DieOutcome& d, int num_islands,
                         int per_die_budget) {
  if (island_activation.empty()) {
    island_activation.assign(static_cast<std::size_t>(num_islands) + 1, 0);
  }
  ++dies;
  const auto p = static_cast<std::size_t>(d.policy);
  ++policy_count[p];
  power_mw[p].add(d.total_mw);
  leakage_mw[p].add(d.leakage_mw);
  if (d.policy == TuningPolicy::AllLow ||
      d.policy == TuningPolicy::NestedIslands) {
    ++island_activation[static_cast<std::size_t>(
        std::clamp<int>(d.islands_raised, 0, num_islands))];
  }
  if (d.policy != TuningPolicy::Discard && d.fmax_ghz > 0.0) {
    fmax_ghz.add(d.fmax_ghz);
  }
  wns_all_low_ns.add(d.wns_all_low_ns);
  wns_final_ns.add(d.wns_final_ns);
  timing_met += d.timing_met ? 1 : 0;
  escalated += d.escalated ? 1 : 0;
  missed_violation += d.missed_violation ? 1 : 0;
  mc_severity_sum += static_cast<std::uint64_t>(std::max(d.mc_severity, 0));
  mc_samples_drawn += static_cast<std::uint64_t>(std::max(d.mc_samples, 0));
  mc_samples_budget += static_cast<std::uint64_t>(std::max(per_die_budget, 0));
  if (d.mc_stop == McStop::Converged) ++mc_converged_dies;
  if (d.triage_tier == TriageTier::Analytical) ++triage_analytical;
  if (d.triage_tier == TriageTier::McFallback) ++triage_mc_fallback;
  if (d.triage_tier == TriageTier::Macro) ++triage_macro;
}

void YieldAggregate::merge(const YieldAggregate& other) {
  if (other.dies == 0) return;
  if (island_activation.empty()) {
    island_activation.assign(other.island_activation.size(), 0);
  }
  if (island_activation.size() != other.island_activation.size()) {
    throw std::invalid_argument(
        "YieldAggregate::merge: island histogram size mismatch");
  }
  dies += other.dies;
  for (std::size_t p = 0; p < policy_count.size(); ++p) {
    policy_count[p] += other.policy_count[p];
    power_mw[p].merge(other.power_mw[p]);
    leakage_mw[p].merge(other.leakage_mw[p]);
  }
  for (std::size_t k = 0; k < island_activation.size(); ++k) {
    island_activation[k] += other.island_activation[k];
  }
  timing_met += other.timing_met;
  escalated += other.escalated;
  missed_violation += other.missed_violation;
  mc_severity_sum += other.mc_severity_sum;
  mc_samples_drawn += other.mc_samples_drawn;
  mc_samples_budget += other.mc_samples_budget;
  mc_converged_dies += other.mc_converged_dies;
  triage_analytical += other.triage_analytical;
  triage_mc_fallback += other.triage_mc_fallback;
  triage_macro += other.triage_macro;
  fmax_ghz.merge(other.fmax_ghz);
  wns_all_low_ns.merge(other.wns_all_low_ns);
  wns_final_ns.merge(other.wns_final_ns);
}

YieldAnalyzer::YieldAnalyzer(const Design& design, const StaEngine& sta,
                             const VariationModel& model,
                             const IslandPlan& plan, const RazorPlan& sensors,
                             const ActivityDb& activity, double clock_freq_ghz)
    : design_(&design), sta_(&sta), model_(&model), plan_(&plan),
      sensors_(&sensors), activity_(&activity), power_(design, activity),
      clock_freq_ghz_(clock_freq_ghz) {}

YieldAnalyzer YieldAnalyzer::from_flow(const Flow& flow) {
  if (!flow.sensors_planned() || !flow.activity_simulated()) {
    throw std::logic_error(
        "YieldAnalyzer::from_flow: run plan_sensors() and "
        "simulate_activity() first");
  }
  return YieldAnalyzer(flow.design(), flow.sta(), flow.variation(),
                       flow.island_plan(), flow.razor_plan(), flow.activity(),
                       1.0 / flow.post_shifter_clock_ns());
}

DieOutcome YieldAnalyzer::analyze_die(StaEngine& engine, const WaferDie& die,
                                      const YieldConfig& cfg) const {
  CompensationController ctrl(*design_, engine, *model_, *plan_, *sensors_);
  const std::vector<double> systematic =
      model_->systematic_lgates(*design_, die.location);
  const EvalTier tier = cfg.effective_tier();
  if (tier == EvalTier::Flat) {
    return analyze_die_with(engine, ctrl, die, cfg, systematic);
  }
  // Single-die screening: screen this die's map exactly as the wafer
  // path screens its reticle slot (level-0 corners), so the outcome is
  // bit-identical to the die's wafer-run outcome.
  ctrl.set_level(0);
  SlotTriage st;
  if (tier == EvalTier::Macro) {
    st = slot_verdict(macro_library(cfg.macro).evaluate(systematic), cfg);
  } else {
    const CanonicalSsta canon(*design_, engine, *model_);
    st = triage_slot(canon, systematic, cfg);
  }
  return analyze_die_with(engine, ctrl, die, cfg, systematic, &st);
}

SlotTriage YieldAnalyzer::triage_slot(const CanonicalSsta& canon,
                                      std::span<const double> systematic,
                                      const YieldConfig& cfg) const {
  return slot_verdict(canon.run(systematic), cfg);
}

SlotTriage YieldAnalyzer::slot_verdict(const CanonicalResult& r,
                                       const YieldConfig& cfg) const {
  const auto n = static_cast<std::size_t>(per_die_mc_budget(cfg.mc));
  const TriageConfig& tc = cfg.triage;
  SlotTriage out;
  out.decided = true;
  out.fmax_ghz = r.fmax_ghz(cfg.speed_percentile);
  // Band per gating stage: what an n-sample MC estimate of the 3-sigma
  // slack could plausibly differ from the analytic moments by at the
  // configured confidence (§14 CI half-widths on mean and 3·stddev),
  // scaled, plus the absolute canonical-model-error allowance.  The die
  // is decided only when EVERY present gating stage's |3-sigma slack|
  // clears its band; the binding (smallest-gap) stage's margin and band
  // are what DieOutcome reports.
  double worst_gap = std::numeric_limits<double>::infinity();
  for (PipeStage s :
       {PipeStage::Decode, PipeStage::Execute, PipeStage::WriteBack}) {
    const StageGauss& sg = r.stage(s);
    if (!sg.present) continue;
    const double band =
        tc.band_scale *
            (mean_confidence_interval(n, 0.0, sg.sigma_ns, tc.confidence)
                 .half_width() +
             3.0 * stddev_confidence_interval(n, sg.sigma_ns, tc.confidence)
                       .half_width()) +
        tc.model_error_ns;
    const double margin = std::abs(sg.three_sigma_slack());
    if (sg.violates()) ++out.severity;
    if (!(margin > band)) out.decided = false;
    const double gap = margin - band;
    if (gap < worst_gap) {
      worst_gap = gap;
      out.margin_ns = margin;
      out.band_ns = band;
    }
  }
  return out;
}

std::vector<SlotTriage> YieldAnalyzer::triage_screen(
    const WaferModel& wafer, const YieldConfig& cfg,
    std::span<const std::vector<double>> slot_maps) const {
  std::vector<std::vector<double>> local_maps;
  if (slot_maps.empty()) {
    local_maps = reticle_slot_maps(wafer);
    slot_maps = local_maps;
  }
  std::vector<SlotTriage> screen(slot_maps.size());
  if (cfg.effective_tier() != EvalTier::Triage) return screen;
  // Level-0 (all-low) corners: the exact supply state the MC population
  // pass runs at, so the analytic moments answer the same question.
  StaEngine engine(*sta_);
  engine.compute_base_all_low();
  const CanonicalSsta canon(*design_, engine, *model_);
  for (std::size_t s = 0; s < slot_maps.size(); ++s) {
    // Slots with no die on this wafer keep the default (undecided) entry.
    if (slot_maps[s].empty()) continue;
    screen[s] = triage_slot(canon, slot_maps[s], cfg);
  }
  return screen;
}

const StageMacroLibrary& YieldAnalyzer::macro_library(
    const MacroConfig& cfg) const {
  std::lock_guard<std::mutex> lock(macro_mutex_);
  if (macro_lib_ == nullptr || macro_key_.knots != cfg.knots ||
      macro_key_.grad_step != cfg.grad_step) {
    // Characterize at the level-0 (all-low) corner state — the supply
    // state every screen asks about — on a private engine clone.
    StaEngine engine(*sta_);
    engine.compute_base_all_low();
    macro_lib_ =
        std::make_unique<StageMacroLibrary>(*design_, engine, *model_, cfg);
    macro_key_ = cfg;
  }
  return *macro_lib_;
}

std::vector<SlotTriage> YieldAnalyzer::macro_screen(
    const WaferModel& wafer, const YieldConfig& cfg,
    std::span<const std::vector<double>> slot_maps) const {
  std::vector<std::vector<double>> local_maps;
  if (slot_maps.empty()) {
    local_maps = reticle_slot_maps(wafer);
    slot_maps = local_maps;
  }
  std::vector<SlotTriage> screen(slot_maps.size());
  if (cfg.effective_tier() != EvalTier::Macro) return screen;
  const StageMacroLibrary& lib = macro_library(cfg.macro);
  for (std::size_t s = 0; s < slot_maps.size(); ++s) {
    if (slot_maps[s].empty()) continue;
    screen[s] = slot_verdict(lib.evaluate(slot_maps[s]), cfg);
  }
  return screen;
}

std::vector<SlotTriage> YieldAnalyzer::tier_screen(
    const WaferModel& wafer, const YieldConfig& cfg,
    std::span<const std::vector<double>> slot_maps) const {
  switch (cfg.effective_tier()) {
    case EvalTier::Triage: return triage_screen(wafer, cfg, slot_maps);
    case EvalTier::Macro: return macro_screen(wafer, cfg, slot_maps);
    case EvalTier::Flat: break;
  }
  return {};
}

DieOutcome YieldAnalyzer::analyze_die_with(
    StaEngine& engine, CompensationController& ctrl, const WaferDie& die,
    const YieldConfig& cfg, std::span<const double> systematic,
    const SlotTriage* triage) const {
  DieOutcome out;
  out.die_id = die.id;

  // Every random decision of this die derives from its id, never from
  // the worker or schedule: the determinism-under-parallelism contract.
  Rng die_rng(substream_seed(cfg.seed, static_cast<std::uint64_t>(die.id)));

  // 1. Population statistics: MC SSTA at the all-low supply.  The level-0
  // base restore and the systematic map are both cached — across dies
  // (controller snapshots) and across the reticle slot (shared map).
  // With triage enabled (DESIGN.md §16), a die whose slot screen cleared
  // the confidence band takes the analytic verdict instead and skips MC
  // — but still consumes the would-be MC seed so every downstream draw
  // (fabrication) stays bit-identical to the MC path.
  ctrl.set_level(0);
  const EvalTier tier = cfg.effective_tier();
  if (tier != EvalTier::Flat && triage != nullptr && triage->decided) {
    (void)die_rng.next();  // the MC seed the skipped run would have taken
    out.triage_tier = tier == EvalTier::Macro ? TriageTier::Macro
                                              : TriageTier::Analytical;
    out.triage_margin_ns = triage->margin_ns;
    out.triage_band_ns = triage->band_ns;
    out.mc_severity = triage->severity;
    out.mc_samples = 0;
    out.mc_stop = McStop::FixedBudget;
    out.fmax_ghz = triage->fmax_ghz;
  } else {
    McConfig mcc = cfg.mc;
    mcc.seed = die_rng.next();
    const McResult mc = MonteCarloSsta(*design_, engine, *model_)
                            .run_with_systematic(systematic, mcc);
    out.mc_severity = mc.num_violating_stages();
    out.mc_samples = mc.samples;
    out.mc_stop = mc.stopping_reason;
    if (!mc.min_period_samples.empty()) {
      const double period_ns =
          percentile(mc.min_period_samples, cfg.speed_percentile);
      if (period_ns > 0.0) out.fmax_ghz = 1.0 / period_ns;
    }
    if (tier != EvalTier::Flat) {
      out.triage_tier = TriageTier::McFallback;
      if (triage != nullptr) {
        out.triage_margin_ns = triage->margin_ns;
        out.triage_band_ns = triage->band_ns;
      }
    }
  }

  // 2-3. This wafer's silicon + post-silicon policy selection.
  Rng fab_rng = die_rng.fork();
  const VirtualChip chip =
      fabricate_chip(*design_, *model_, die.location, fab_rng);
  const CompensationOutcome comp = ctrl.compensate(chip, cfg.allow_escalation);
  out.detected_severity = comp.detected_severity;
  out.islands_raised = comp.islands_raised;
  out.escalated = comp.escalated;
  out.missed_violation = comp.missed_violation;
  out.wns_all_low_ns = comp.wns_before;
  out.wns_final_ns = comp.wns_after;
  out.timing_met = comp.timing_met;

  std::vector<int> corners;
  if (comp.timing_met) {
    out.policy = comp.islands_raised == 0 ? TuningPolicy::AllLow
                                          : TuningPolicy::NestedIslands;
    corners = plan_->corners_for_severity(comp.islands_raised);
  } else if (cfg.allow_chip_wide_fallback) {
    // Even all islands failed: the paper's chip-wide adaptive baseline.
    corners.assign(static_cast<std::size_t>(plan_->num_islands()) + 1,
                   kVddHigh);
    ctrl.set_chip_wide();
    const StaResult truth = engine.analyze(ctrl.chip_factors(chip));
    out.wns_final_ns = truth.wns;
    if (truth.wns >= 0.0) {
      out.policy = TuningPolicy::ChipWideHigh;
      out.timing_met = true;
    } else {
      out.policy = TuningPolicy::Discard;
    }
  } else {
    out.policy = TuningPolicy::Discard;
  }
  if (out.policy == TuningPolicy::Discard) corners.clear();  // all-low power

  // 4. Power under the selected supply assignment.  The shared engine
  // carries the per-net caps; the slot's systematic map stands in for
  // per-instance exposure-polynomial evaluation (same bits, see
  // PowerConfig::systematic).
  PowerConfig pc;
  pc.clock_freq_ghz = clock_freq_ghz_;
  pc.variation = model_;
  pc.location = &die.location;
  pc.systematic = systematic;
  const PowerBreakdown p = power_.compute(corners, pc);
  out.total_mw = p.total_mw();
  out.leakage_mw = p.leakage_mw;
  return out;
}

std::size_t YieldAnalyzer::reticle_slot(const WaferModel& wafer,
                                        const WaferDie& die) {
  const auto side = static_cast<std::size_t>(wafer.dies_per_field_side());
  return static_cast<std::size_t>(die.die_iy) * side +
         static_cast<std::size_t>(die.die_ix);
}

std::vector<std::vector<double>> YieldAnalyzer::reticle_slot_maps(
    const WaferModel& wafer) const {
  // A die's location depends only on its (die_ix, die_iy) slot in the
  // reticle, so every die of a slot shares the systematic map — side²
  // polynomial evaluations over the netlist instead of one per die.
  const auto side = static_cast<std::size_t>(wafer.dies_per_field_side());
  std::vector<std::vector<double>> maps(side * side);
  for (const WaferDie& d : wafer.dies()) {
    auto& map = maps[reticle_slot(wafer, d)];
    if (map.empty()) map = model_->systematic_lgates(*design_, d.location);
  }
  return maps;
}

YieldAggregate YieldAnalyzer::analyze_shard(
    StaEngine& engine, CompensationController& ctrl, const WaferModel& wafer,
    const YieldConfig& cfg, std::size_t die_begin, std::size_t die_end,
    std::span<const std::vector<double>> slot_maps,
    std::span<const SlotTriage> screen) const {
  if (die_begin > die_end || die_end > wafer.num_dies()) {
    throw std::invalid_argument("analyze_shard: die range out of bounds");
  }
  std::vector<std::vector<double>> local_maps;
  if (slot_maps.empty()) {
    local_maps = reticle_slot_maps(wafer);
    slot_maps = local_maps;
  }
  // The screen is a pure function of (wafer geometry, cfg), so a shard
  // computing it locally folds the exact bits a shared one carries —
  // shard results never depend on what the caller precomputed.
  std::vector<SlotTriage> local_screen;
  if (cfg.effective_tier() != EvalTier::Flat && screen.empty()) {
    local_screen = tier_screen(wafer, cfg, slot_maps);
    screen = local_screen;
  }
  YieldAggregate agg;
  agg.island_activation.assign(
      static_cast<std::size_t>(plan_->num_islands()) + 1, 0);
  const int budget = per_die_mc_budget(cfg.mc);
  for (std::size_t i = die_begin; i < die_end; ++i) {
    const WaferDie& die = wafer.dies()[i];
    const std::size_t slot = reticle_slot(wafer, die);
    agg.add(analyze_die_with(engine, ctrl, die, cfg, slot_maps[slot],
                             screen.empty() ? nullptr : &screen[slot]),
            plan_->num_islands(), budget);
  }
  return agg;
}

void YieldAnalyzer::aggregate(YieldReport& report) const {
  report.island_activation.assign(
      static_cast<std::size_t>(plan_->num_islands()) + 1, 0);
  // Adaptive-sampling accounting: the budget is what a fixed-budget run
  // would have drawn per die (max_samples when adaptive, mc.samples
  // otherwise); what each die actually drew is in DieOutcome::mc_samples.
  const int per_die_budget = per_die_mc_budget(report.config.mc);
  report.mc_samples_budget =
      report.dies.size() * static_cast<std::size_t>(per_die_budget);
  report.mc_samples_drawn = 0;
  report.mc_converged_dies = 0;
  report.triage_analytical = 0;
  report.triage_mc_fallback = 0;
  report.triage_macro = 0;
  for (const DieOutcome& d : report.dies) {
    report.mc_samples_drawn += static_cast<std::size_t>(std::max(d.mc_samples, 0));
    if (d.mc_stop == McStop::Converged) ++report.mc_converged_dies;
    if (d.triage_tier == TriageTier::Analytical) ++report.triage_analytical;
    if (d.triage_tier == TriageTier::McFallback) ++report.triage_mc_fallback;
    if (d.triage_tier == TriageTier::Macro) ++report.triage_macro;
  }
  for (const DieOutcome& d : report.dies) {
    const auto p = static_cast<std::size_t>(d.policy);
    ++report.policy_count[p];
    report.power_mw[p].add(d.total_mw);
    report.leakage_mw[p].add(d.leakage_mw);
    if (d.policy == TuningPolicy::AllLow ||
        d.policy == TuningPolicy::NestedIslands) {
      ++report.island_activation[static_cast<std::size_t>(
          std::clamp<int>(d.islands_raised, 0, plan_->num_islands()))];
    }
    if (d.policy != TuningPolicy::Discard && d.fmax_ghz > 0.0) {
      report.fmax_ghz.add(d.fmax_ghz);
    }
  }

  // Speed bins over the shipped-die fmax range.
  if (report.fmax_ghz.count() == 0 || report.config.speed_bins == 0) return;
  const double lo = report.fmax_ghz.min();
  const double hi = report.fmax_ghz.max();
  report.speed_bin_lo_ghz = lo;
  report.speed_bin_count.assign(report.config.speed_bins, 0);
  if (!(hi > lo)) {
    // All shipped dies bin identically (tiny wafers / zero variance).
    report.speed_bin_step_ghz = 0.0;
    report.speed_bin_count[0] = report.fmax_ghz.count();
    return;
  }
  report.speed_bin_step_ghz =
      (hi - lo) / static_cast<double>(report.config.speed_bins);
  for (const DieOutcome& d : report.dies) {
    if (d.policy == TuningPolicy::Discard || !(d.fmax_ghz > 0.0)) continue;
    const auto bin = std::min<std::size_t>(
        report.config.speed_bins - 1,
        static_cast<std::size_t>((d.fmax_ghz - lo) / report.speed_bin_step_ghz));
    ++report.speed_bin_count[bin];
  }
}

YieldReport YieldAnalyzer::analyze(const WaferModel& wafer,
                                   const YieldConfig& cfg,
                                   ThreadPool* pool) const {
  YieldReport report;
  report.wafer = wafer.config();
  report.config = cfg;
  report.portfolio = portfolio_;
  const std::vector<WaferDie>& dies = wafer.dies();
  report.dies.resize(dies.size());

  const std::vector<std::vector<double>> slot_maps = reticle_slot_maps(wafer);
  // One screen per wafer (empty on the flat tier), shared read-only by
  // every worker: side² canonical passes (§16) or side² macromodel
  // interpolations (§19) up front buy MC skips on every decided die.
  const std::vector<SlotTriage> screen = tier_screen(wafer, cfg, slot_maps);
  const auto slot_of = [&wafer](const WaferDie& d) {
    return reticle_slot(wafer, d);
  };

  // Worker state: an engine clone plus a persistent controller whose
  // per-level base snapshots amortize NLDM delay calculation across all
  // the dies a worker processes.  Only the first level a worker touches
  // pays a full compute_base; the controller delta-builds the rest with
  // recorner_delta (one island's fan-out cone per escalation step).
  struct Worker {
    explicit Worker(const YieldAnalyzer& a)
        : engine(*a.sta_),
          ctrl(*a.design_, engine, *a.model_, *a.plan_, *a.sensors_) {}
    StaEngine engine;
    CompensationController ctrl;
  };
  const auto make_worker = [this] { return std::make_shared<Worker>(*this); };
  const auto body = [&](std::shared_ptr<Worker>& w, std::size_t i) {
    const std::size_t slot = slot_of(dies[i]);
    report.dies[i] =
        analyze_die_with(w->engine, w->ctrl, dies[i], cfg, slot_maps[slot],
                         screen.empty() ? nullptr : &screen[slot]);
  };
  if (pool != nullptr) {
    parallel_for(*pool, dies.size(), make_worker, body);
  } else {
    auto w = make_worker();
    for (std::size_t i = 0; i < dies.size(); ++i) body(w, i);
  }

  aggregate(report);
  return report;
}

}  // namespace vipvt
