#include "campaign/campaign.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "campaign/checkpoint.hpp"
#include "io/ndjson.hpp"
#include "variation/model.hpp"
#include "vi/flow.hpp"
#include "vi/policy.hpp"

namespace vipvt {

namespace {

/// FNV-1a 64-bit over the canonical byte stream spec_digest feeds it.
struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 0x100000001b3ULL;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { bytes(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void flag(bool v) { u64(v ? 1 : 0); }
};

}  // namespace

std::uint64_t CampaignReport::total_dies() const {
  std::uint64_t n = 0;
  for (const CellResult& c : cells) n += c.agg.dies;
  return n;
}

std::uint64_t CampaignReport::shipped_dies() const {
  std::uint64_t n = 0;
  for (const CellResult& c : cells) n += c.agg.shipped_dies();
  return n;
}

double CampaignReport::parametric_yield() const {
  const std::uint64_t total = total_dies();
  return total == 0 ? 0.0
                    : static_cast<double>(shipped_dies()) /
                          static_cast<double>(total);
}

void CampaignRunner::add_variant(std::string name, const Flow& flow) {
  if (!flow.sensors_planned() || !flow.activity_simulated()) {
    throw std::logic_error(
        "CampaignRunner::add_variant: run plan_sensors() and "
        "simulate_activity() first");
  }
  add_variant(std::move(name), flow.design(), flow.sta(), flow.variation(),
              flow.island_plan(), flow.razor_plan(), flow.activity(),
              1.0 / flow.post_shifter_clock_ns());
}

void CampaignRunner::add_variant(std::string name, const Design& design,
                                 const StaEngine& sta,
                                 const VariationModel& model,
                                 const IslandPlan& plan,
                                 const RazorPlan& sensors,
                                 const ActivityDb& activity,
                                 double clock_freq_ghz) {
  for (const Variant& v : variants_) {
    if (v.name == name) {
      throw std::invalid_argument("CampaignRunner: duplicate variant name '" +
                                  name + "'");
    }
  }
  variants_.push_back(Variant{std::move(name), &design, &sta, &model, &plan,
                              &sensors, &activity, clock_freq_ghz});
}

std::vector<CampaignCell> CampaignRunner::expand(
    const CampaignSpec& spec) const {
  if (variants_.empty()) {
    throw std::invalid_argument("campaign: no variants registered");
  }
  if (spec.wafer_grids.empty() || spec.sigma_scales.empty() ||
      spec.policies.empty() || spec.mc_samples.empty()) {
    throw std::invalid_argument("campaign: every sweep axis must be non-empty");
  }
  if (spec.wafers_per_cell < 1) {
    throw std::invalid_argument("campaign: wafers_per_cell must be >= 1");
  }
  if (spec.shard_dies < 1) {
    throw std::invalid_argument("campaign: shard_dies must be >= 1");
  }
  for (const double s : spec.sigma_scales) {
    if (!(s > 0.0)) {
      throw std::invalid_argument("campaign: sigma scales must be positive");
    }
  }
  for (const int m : spec.mc_samples) {
    if (m < 1) {
      throw std::invalid_argument("campaign: mc_samples must be positive");
    }
  }

  // Resolve the variant axis: explicit names, or every registered
  // variant in registration order.
  std::vector<std::uint32_t> axis;
  if (spec.variants.empty()) {
    for (std::size_t i = 0; i < variants_.size(); ++i) {
      axis.push_back(static_cast<std::uint32_t>(i));
    }
  } else {
    for (const std::string& name : spec.variants) {
      const auto it =
          std::find_if(variants_.begin(), variants_.end(),
                       [&name](const Variant& v) { return v.name == name; });
      if (it == variants_.end()) {
        throw std::invalid_argument("campaign: unknown variant '" + name + "'");
      }
      axis.push_back(static_cast<std::uint32_t>(it - variants_.begin()));
    }
  }

  std::vector<CampaignCell> cells;
  cells.reserve(axis.size() * spec.wafer_grids.size() *
                spec.sigma_scales.size() * spec.policies.size() *
                spec.mc_samples.size());
  std::uint32_t index = 0;
  for (std::uint32_t v = 0; v < axis.size(); ++v) {
    for (std::uint32_t g = 0; g < spec.wafer_grids.size(); ++g) {
      for (std::uint32_t s = 0; s < spec.sigma_scales.size(); ++s) {
        for (std::uint32_t p = 0; p < spec.policies.size(); ++p) {
          for (std::uint32_t m = 0; m < spec.mc_samples.size(); ++m) {
            CampaignCell cell;
            cell.index = index++;
            cell.variant = v;
            cell.wafer_grid = g;
            cell.sigma = s;
            cell.policy = p;
            cell.samples = m;
            cell.config = spec.base;
            const PolicyMix& pol = spec.policies[p];
            cell.config.allow_escalation = pol.allow_escalation;
            cell.config.allow_chip_wide_fallback = pol.allow_chip_wide_fallback;
            const int budget = spec.mc_samples[m];
            if (spec.base.mc.adaptive.enabled) {
              cell.config.mc.adaptive.max_samples = budget;
              cell.config.mc.adaptive.min_samples =
                  std::min(spec.base.mc.adaptive.min_samples, budget);
            } else {
              cell.config.mc.samples = budget;
            }
            cells.push_back(std::move(cell));
          }
        }
      }
    }
  }
  return cells;
}

struct CampaignRunner::Plan {
  std::vector<std::uint32_t> variant_axis;  ///< indices into variants_
  std::vector<std::string> variant_names;
  std::vector<CampaignCell> cells;
  std::vector<WaferModel> wafers;  ///< one per wafer_grids entry
  /// One compiled (variant-axis, policy) netlist (DESIGN.md §18):
  /// pure-VI mixes alias the variant's baseline design/sta/activity
  /// (CompiledPolicy holds null pointers), transforming mixes own a
  /// rewritten copy.  Compiled ONCE per pair — the sigma and MC-budget
  /// axes share it read-only, since criticality is measured on the
  /// characterized process.
  struct NetlistSlot {
    CompiledPolicy compiled;
    const Design* design = nullptr;
    const StaEngine* sta = nullptr;
    const ActivityDb* activity = nullptr;
  };
  std::vector<NetlistSlot> netlists;  ///< variant-axis-major x policy
  /// Sigma-scaled model copies, variant-axis-major x sigma.
  std::vector<std::unique_ptr<VariationModel>> models;
  /// One analyzer per (variant, policy, sigma) — the netlist a cell's
  /// dies fabricate on depends on its policy now, not just its variant.
  std::vector<std::unique_ptr<YieldAnalyzer>> analyzers;
  /// maps[v][g] = reticle_slot_maps of (baseline variant v, wafer grid
  /// g); left empty for a variant when every policy of the sweep
  /// transforms (nothing reads it then).  Systematic maps are
  /// sigma-independent, so they key on (netlist, wafer_grid) only.
  std::vector<std::vector<std::vector<std::vector<double>>>> maps;
  /// policy_maps[v*npol+p][g]: slot maps of a TRANSFORMED netlist (its
  /// instance list differs from the baseline's); empty for pure-VI
  /// mixes, which share maps[v][g].
  std::vector<std::vector<std::vector<std::vector<double>>>> policy_maps;
  /// screens[cell] = the cell's analytic triage screen (DESIGN.md §16),
  /// empty when triage is off.  Computed once in build_plan — a pure
  /// function of (variant, policy, sigma, geometry, MC budget), never of
  /// sharding — and shared read-only by every shard of the cell.
  std::vector<std::vector<SlotTriage>> screens;
  struct Job {
    std::uint32_t cell = 0;
    std::uint32_t wafer = 0;
    std::uint32_t die_begin = 0;
    std::uint32_t die_end = 0;
  };
  std::vector<Job> jobs;  ///< canonical job order (cell, wafer, shard)
  std::size_t npol = 1;
  std::size_t nsig = 1;

  std::size_t netlist_index(const CampaignCell& c) const {
    return c.variant * npol + c.policy;
  }
  std::size_t analyzer_index(const CampaignCell& c) const {
    return netlist_index(c) * nsig + c.sigma;
  }
  const std::vector<std::vector<double>>& maps_for(
      const CampaignCell& c) const {
    const std::size_t ns = netlist_index(c);
    return policy_maps[ns].empty() ? maps[c.variant][c.wafer_grid]
                                   : policy_maps[ns][c.wafer_grid];
  }
};

void CampaignRunner::build_plan(const CampaignSpec& spec, Plan& plan) const {
  plan.cells = expand(spec);  // validates the spec

  if (spec.variants.empty()) {
    for (const Variant& v : variants_) plan.variant_names.push_back(v.name);
    for (std::size_t i = 0; i < variants_.size(); ++i) {
      plan.variant_axis.push_back(static_cast<std::uint32_t>(i));
    }
  } else {
    plan.variant_names = spec.variants;
    for (const std::string& name : spec.variants) {
      const auto it =
          std::find_if(variants_.begin(), variants_.end(),
                       [&name](const Variant& v) { return v.name == name; });
      plan.variant_axis.push_back(
          static_cast<std::uint32_t>(it - variants_.begin()));
    }
  }

  plan.wafers.reserve(spec.wafer_grids.size());
  for (const WaferConfig& wc : spec.wafer_grids) plan.wafers.emplace_back(wc);

  const std::size_t nsig = spec.sigma_scales.size();
  const std::size_t npol = spec.policies.size();
  plan.nsig = nsig;
  plan.npol = npol;

  // Compiled (variant, policy) netlists (DESIGN.md §18): pure-VI mixes
  // alias the baseline references; transforming mixes own a rewritten
  // copy selected by criticality under the variant's characterized
  // model.
  plan.netlists.resize(plan.variant_axis.size() * npol);
  for (std::size_t v = 0; v < plan.variant_axis.size(); ++v) {
    const Variant& var = variants_[plan.variant_axis[v]];
    for (std::size_t p = 0; p < npol; ++p) {
      Plan::NetlistSlot& ns = plan.netlists[v * npol + p];
      ns.compiled = compile_policy_mix(spec.policies[p], *var.design,
                                       *var.sta, *var.model, *var.activity);
      ns.design = &ns.compiled.design_or(*var.design);
      ns.sta = &ns.compiled.sta_or(*var.sta);
      ns.activity = &ns.compiled.activity_or(*var.activity);
    }
  }

  // Sigma-scaled model copies: the scaled model reuses the variant's
  // characterization and exposure field, with only the random budget
  // rescaled.  Scale 1.0 still builds a copy — identical config, so
  // identical bits — which keeps every cell on the same code path.
  plan.models.resize(plan.variant_axis.size() * nsig);
  for (std::size_t v = 0; v < plan.variant_axis.size(); ++v) {
    const Variant& var = variants_[plan.variant_axis[v]];
    for (std::size_t s = 0; s < nsig; ++s) {
      VariationConfig vc = var.model->config();
      vc.three_sigma_random_frac *= spec.sigma_scales[s];
      plan.models[v * nsig + s] = std::make_unique<VariationModel>(
          var.model->char_params(), var.model->field(), vc);
    }
  }

  // One analyzer per (variant, policy, sigma), bound to the policy's
  // compiled netlist and the sigma-scaled model; island/sensor plans are
  // the baseline variant's (valid on the transformed netlist by the
  // zero-displacement ECO contract).
  plan.analyzers.resize(plan.netlists.size() * nsig);
  for (std::size_t v = 0; v < plan.variant_axis.size(); ++v) {
    const Variant& var = variants_[plan.variant_axis[v]];
    for (std::size_t p = 0; p < npol; ++p) {
      const Plan::NetlistSlot& ns = plan.netlists[v * npol + p];
      for (std::size_t s = 0; s < nsig; ++s) {
        auto analyzer = std::make_unique<YieldAnalyzer>(
            *ns.design, *ns.sta, *plan.models[v * nsig + s], *var.plan,
            *var.sensors, *ns.activity, var.clock_freq_ghz);
        analyzer->set_portfolio(ns.compiled.stats);
        plan.analyzers[(v * npol + p) * nsig + s] = std::move(analyzer);
      }
    }
  }

  // Systematic reticle-slot maps: computed once per (netlist, geometry)
  // and shared read-only by every shard of the sweep — the sigma axis
  // only touches the random component, never these maps.  Baseline maps
  // are shared by every pure-VI mix of a variant; each transforming mix
  // gets its own (its instance list differs).
  plan.maps.resize(plan.variant_axis.size());
  plan.policy_maps.resize(plan.netlists.size());
  for (std::size_t v = 0; v < plan.variant_axis.size(); ++v) {
    for (std::size_t p = 0; p < npol; ++p) {
      const std::size_t ns = v * npol + p;
      YieldAnalyzer& an = *plan.analyzers[ns * nsig];
      if (!plan.netlists[ns].compiled.transformed()) {
        if (plan.maps[v].empty()) {
          plan.maps[v].reserve(plan.wafers.size());
          for (const WaferModel& wafer : plan.wafers) {
            plan.maps[v].push_back(an.reticle_slot_maps(wafer));
          }
        }
      } else {
        plan.policy_maps[ns].reserve(plan.wafers.size());
        for (const WaferModel& wafer : plan.wafers) {
          plan.policy_maps[ns].push_back(an.reticle_slot_maps(wafer));
        }
      }
    }
  }

  // Per-cell analytic screens (empty unless a non-flat tier is on):
  // cells differing only in MC budget recompute the same screen, which
  // is side² canonical (or macromodel) passes — negligible next to one
  // shard's MC work.  Each analyzer slot caches its own macromodel
  // library, so macro-tier cells sharing a (variant, policy, sigma)
  // slot characterize once and reuse it across screens and shards.
  plan.screens.resize(plan.cells.size());
  if (spec.base.effective_tier() != EvalTier::Flat) {
    for (const CampaignCell& cell : plan.cells) {
      plan.screens[cell.index] =
          plan.analyzers[plan.analyzer_index(cell)]->tier_screen(
              plan.wafers[cell.wafer_grid], cell.config, plan.maps_for(cell));
    }
  }

  const auto shard = static_cast<std::size_t>(spec.shard_dies);
  for (const CampaignCell& cell : plan.cells) {
    const std::size_t dies = plan.wafers[cell.wafer_grid].num_dies();
    const std::size_t shards = dies == 0 ? 0 : (dies + shard - 1) / shard;
    for (std::uint32_t w = 0; w < static_cast<std::uint32_t>(spec.wafers_per_cell); ++w) {
      for (std::size_t k = 0; k < shards; ++k) {
        Plan::Job job;
        job.cell = cell.index;
        job.wafer = w;
        job.die_begin = static_cast<std::uint32_t>(k * shard);
        job.die_end = static_cast<std::uint32_t>(std::min(dies, (k + 1) * shard));
        plan.jobs.push_back(job);
      }
    }
  }
}

std::size_t CampaignRunner::num_jobs(const CampaignSpec& spec) const {
  const std::vector<CampaignCell> cells = expand(spec);
  const auto shard = static_cast<std::size_t>(spec.shard_dies);
  std::vector<std::size_t> dies_per_grid;
  dies_per_grid.reserve(spec.wafer_grids.size());
  for (const WaferConfig& wc : spec.wafer_grids) {
    dies_per_grid.push_back(WaferModel(wc).num_dies());
  }
  std::size_t jobs = 0;
  for (const CampaignCell& cell : cells) {
    const std::size_t dies = dies_per_grid[cell.wafer_grid];
    jobs += static_cast<std::size_t>(spec.wafers_per_cell) *
            (dies == 0 ? 0 : (dies + shard - 1) / shard);
  }
  return jobs;
}

std::uint64_t CampaignRunner::spec_digest(const CampaignSpec& spec) const {
  // Everything that decides what a job computes or how jobs are laid out
  // goes into the digest (shard_dies included: it shapes the job list a
  // checkpoint's records must align with).
  Fnv f;
  f.str(kCampaignStreamSchema);
  f.u64(kCampaignStreamVersion);
  if (spec.variants.empty()) {
    for (const Variant& v : variants_) f.str(v.name);
  } else {
    for (const std::string& name : spec.variants) f.str(name);
  }
  f.u64(spec.wafer_grids.size());
  for (const WaferConfig& wc : spec.wafer_grids) {
    f.f64(wc.wafer_diameter_mm);
    f.f64(wc.edge_exclusion_mm);
    f.f64(wc.field_mm);
    f.f64(wc.die_mm);
  }
  f.u64(spec.sigma_scales.size());
  for (const double s : spec.sigma_scales) f.f64(s);
  f.u64(spec.policies.size());
  for (const PolicyMix& p : spec.policies) {
    f.str(p.name);
    f.flag(p.allow_escalation);
    f.flag(p.allow_chip_wide_fallback);
    // Portfolio knobs (DESIGN.md §18): any of these changes which
    // netlist a cell's dies fabricate on, so a checkpoint must not
    // survive them.
    f.flag(p.sizing.enabled);
    f.f64(p.sizing.min_crit_prob);
    f.i64(p.sizing.max_upsized);
    f.i64(p.sizing.max_drive_steps);
    f.flag(p.buffering.enabled);
    f.f64(p.buffering.min_crit_prob);
    f.i64(p.buffering.max_nets);
    f.i64(p.buffering.min_fanout);
    f.i64(p.buffering.cluster);
    f.i64(p.crit_samples);
    f.u64(p.crit_seed);
  }
  f.u64(spec.mc_samples.size());
  for (const int m : spec.mc_samples) f.i64(m);
  f.i64(spec.wafers_per_cell);
  f.i64(spec.shard_dies);
  f.u64(spec.seed);
  const YieldConfig& b = spec.base;
  f.i64(b.mc.samples);
  f.f64(b.mc.confidence);
  f.i64(static_cast<std::int64_t>(b.mc.profile));
  f.flag(b.mc.adaptive.enabled);
  f.f64(b.mc.adaptive.mean_half_width_ns);
  f.f64(b.mc.adaptive.sigma_half_width_ns);
  f.f64(b.mc.adaptive.confidence);
  f.i64(b.mc.adaptive.min_samples);
  f.i64(b.mc.adaptive.max_samples);
  f.i64(b.mc.adaptive.check_every_batches);
  f.u64(b.seed);
  f.f64(b.speed_percentile);
  f.u64(b.speed_bins);
  f.flag(b.allow_escalation);
  f.flag(b.allow_chip_wide_fallback);
  f.flag(b.triage.enabled);
  f.f64(b.triage.confidence);
  f.f64(b.triage.band_scale);
  f.f64(b.triage.model_error_ns);
  f.i64(static_cast<std::int64_t>(b.tier));
  f.i64(b.macro.knots);
  f.f64(b.macro.grad_step);
  return f.h;
}

CampaignReport CampaignRunner::run(const CampaignSpec& spec,
                                   const CampaignRunOptions& opts) const {
  Plan plan;
  build_plan(spec, plan);
  const std::uint64_t digest = spec_digest(spec);
  const std::size_t total = plan.jobs.size();

  CampaignRunStats stats;
  stats.jobs_total = total;

  // ---- resume: recover the stream's complete-record prefix ---------------
  std::vector<ShardRecord> resumed;
  bool need_header = true;
  bool trailer_already = false;
  if (!opts.stream_path.empty() && opts.resume) {
    LoadedCampaignStream loaded = load_campaign_stream(opts.stream_path);
    if (loaded.header_seen) {
      if (loaded.spec_digest != digest || loaded.jobs_total != total) {
        throw std::runtime_error(
            "campaign resume: checkpoint was written by a different campaign "
            "spec (digest mismatch)");
      }
      if (loaded.records.size() > total) {
        throw std::runtime_error("campaign resume: more records than jobs");
      }
      for (std::size_t j = 0; j < loaded.records.size(); ++j) {
        const ShardRecord& r = loaded.records[j];
        const Plan::Job& job = plan.jobs[j];
        if (r.cell != job.cell || r.wafer != job.wafer ||
            r.die_begin != job.die_begin || r.die_end != job.die_end) {
          throw std::runtime_error(
              "campaign resume: checkpoint record does not match the job "
              "plan");
        }
      }
      resumed = std::move(loaded.records);
      need_header = false;
      trailer_already = loaded.trailer_seen;
      // Drop any torn tail a kill left behind; the next record appends
      // exactly where an uninterrupted run would have written it.
      std::filesystem::resize_file(opts.stream_path, loaded.valid_bytes);
    }
  }
  stats.jobs_resumed = resumed.size();

  // Jobs [first, last) run now; stop_after_jobs is the deliberate kill
  // point of the resume gates (counted over ALL completed jobs).
  const std::size_t first = resumed.size();
  const std::size_t stop =
      opts.stop_after_jobs == 0 ? total : std::min(opts.stop_after_jobs, total);
  const std::size_t last = std::max(stop, first);
  const std::size_t n = last - first;
  stats.jobs_run = n;

  std::ofstream os;
  std::unique_ptr<NdjsonWriter> writer;
  if (!opts.stream_path.empty()) {
    os.open(opts.stream_path,
            need_header ? std::ios::binary | std::ios::trunc
                        : std::ios::binary | std::ios::app);
    if (!os) {
      throw std::runtime_error("campaign: cannot open stream file '" +
                               opts.stream_path + "'");
    }
    writer = std::make_unique<NdjsonWriter>(os);
    if (need_header) {
      writer->record_line(serialize_campaign_header(digest, total, spec.seed));
    }
  }

  CampaignReport report;
  report.spec = spec;
  report.variant_names = plan.variant_names;
  report.cells.reserve(plan.cells.size());
  for (const CampaignCell& cell : plan.cells) {
    report.cells.push_back(CellResult{
        cell, YieldAggregate{},
        plan.netlists[plan.netlist_index(cell)].compiled.stats});
  }
  report.jobs_total = total;

  // Resumed records merge first — they are the job-order prefix, and
  // merge() is exact, so the final aggregates match an uninterrupted run
  // bit-for-bit.
  for (const ShardRecord& r : resumed) {
    report.cells[r.cell].agg.merge(r.agg);
  }

  // ---- in-order emission (the reorder buffer) ----------------------------
  // Workers finish shards in schedule order; records are emitted, merged
  // and streamed strictly in job order.  Transient state is bounded by
  // the out-of-order window (~pool size), never by die count.
  std::mutex mu;
  std::map<std::size_t, ShardRecord> pending;
  std::size_t next_emit = first;
  const auto emit_ready = [&]() {  // callers hold mu
    for (auto it = pending.find(next_emit); it != pending.end();
         it = pending.find(next_emit)) {
      const ShardRecord rec = std::move(it->second);
      pending.erase(it);
      const std::string line = serialize_shard_record(rec);
      if (writer) writer->record_line(line);
      if (opts.on_record) opts.on_record(line);
      report.cells[rec.cell].agg.merge(rec.agg);
      ++next_emit;
      ++stats.records_emitted;
    }
  };

  // Worker state: one {engine clone, controller} per (variant, policy,
  // sigma) analyzer slot, built lazily on the first job that needs it.
  // The controller persists across every job the worker runs for that
  // slot, so its per-level base-delay snapshots amortize NLDM delay
  // calculation across the whole campaign (DESIGN.md §12) — on the
  // policy's compiled netlist exactly as on the baseline.
  struct SlotState {
    SlotState(const Design& design, const StaEngine& sta,
              const VariationModel& model, const IslandPlan& plan,
              const RazorPlan& sensors)
        : engine(sta), ctrl(design, engine, model, plan, sensors) {}
    StaEngine engine;
    CompensationController ctrl;
  };
  struct WorkerState {
    std::vector<std::unique_ptr<SlotState>> slots;
  };
  const std::size_t nsig = spec.sigma_scales.size();
  const auto make_state = [&] {
    WorkerState w;
    w.slots.resize(plan.analyzers.size());
    return w;
  };
  const auto body = [&](WorkerState& w, std::size_t k) {
    const std::size_t j = first + k;
    const Plan::Job& job = plan.jobs[j];
    const CampaignCell& cell = plan.cells[job.cell];
    const std::size_t slot = plan.analyzer_index(cell);
    if (!w.slots[slot]) {
      const Variant& var = variants_[plan.variant_axis[cell.variant]];
      const Plan::NetlistSlot& ns = plan.netlists[plan.netlist_index(cell)];
      w.slots[slot] = std::make_unique<SlotState>(
          *ns.design, *ns.sta, *plan.models[cell.variant * nsig + cell.sigma],
          *var.plan, *var.sensors);
    }
    SlotState& s = *w.slots[slot];

    YieldConfig cfg = cell.config;
    cfg.seed = campaign_wafer_seed(spec.seed, cell.index, job.wafer);
    ShardRecord rec;
    rec.job = j;
    rec.cell = job.cell;
    rec.wafer = job.wafer;
    rec.die_begin = job.die_begin;
    rec.die_end = job.die_end;
    rec.agg = plan.analyzers[slot]->analyze_shard(
        s.engine, s.ctrl, plan.wafers[cell.wafer_grid], cfg, job.die_begin,
        job.die_end, plan.maps_for(cell), plan.screens[job.cell]);

    std::lock_guard<std::mutex> lock(mu);
    pending.emplace(j, std::move(rec));
    stats.peak_pending_shards =
        std::max(stats.peak_pending_shards, pending.size());
    emit_ready();
  };

  if (opts.pool != nullptr && opts.pool->size() > 1 && n > 1) {
    parallel_jobs(*opts.pool, n, make_state, body);
  } else {
    WorkerState w = make_state();
    for (std::size_t k = 0; k < n; ++k) body(w, k);
  }

  if (next_emit != last || !pending.empty()) {
    throw std::logic_error("campaign: emission did not drain the job range");
  }
  if (writer && next_emit == total && !trailer_already) {
    writer->record_line(serialize_campaign_trailer(total));
  }

  report.jobs_done = next_emit;
  if (opts.stats != nullptr) *opts.stats = stats;
  return report;
}

}  // namespace vipvt
