#include "campaign/checkpoint.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <string>

#include "io/ndjson.hpp"
#include "util/stats.hpp"

namespace vipvt {

namespace {

/// The eleven ExactMoments groups of a YieldAggregate, each serialized
/// under a short prefix: fixed order, fixed per-group fields (n, sum
/// hi/lo, sumsq hi/lo, min/max bit patterns).
constexpr std::array<std::string_view, 11> kMomentPrefixes = {
    "fmax", "wnsa", "wnsf", "pw0", "pw1", "pw2", "pw3",
    "lk0",  "lk1",  "lk2",  "lk3"};

std::array<const ExactMoments*, 11> moment_fields(const YieldAggregate& a) {
  return {&a.fmax_ghz,    &a.wns_all_low_ns, &a.wns_final_ns, &a.power_mw[0],
          &a.power_mw[1], &a.power_mw[2],    &a.power_mw[3],  &a.leakage_mw[0],
          &a.leakage_mw[1], &a.leakage_mw[2], &a.leakage_mw[3]};
}

std::array<ExactMoments*, 11> moment_fields(YieldAggregate& a) {
  return {&a.fmax_ghz,    &a.wns_all_low_ns, &a.wns_final_ns, &a.power_mw[0],
          &a.power_mw[1], &a.power_mw[2],    &a.power_mw[3],  &a.leakage_mw[0],
          &a.leakage_mw[1], &a.leakage_mw[2], &a.leakage_mw[3]};
}

double bits_to_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::uint64_t double_to_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

void put_moments(JsonBuilder& b, std::string_view prefix,
                 const ExactMoments& m) {
  const ExactMoments::State s = m.state();
  const auto key = [prefix](std::string_view suffix) {
    std::string k(prefix);
    k += '_';
    k += suffix;
    return k;
  };
  b.u64(key("n"), s.n)
      .i64(key("sh"), s.sum_hi)
      .u64(key("sl"), s.sum_lo)
      .i64(key("qh"), s.sumsq_hi)
      .u64(key("ql"), s.sumsq_lo)
      .bits(key("mn"), bits_to_double(s.min_bits))
      .bits(key("mx"), bits_to_double(s.max_bits));
}

bool get_moments(std::string_view line, std::string_view prefix,
                 ExactMoments& out) {
  const auto key = [prefix](std::string_view suffix) {
    std::string k(prefix);
    k += '_';
    k += suffix;
    return k;
  };
  ExactMoments::State s;
  double mn = 0.0, mx = 0.0;
  if (!ndjson_find_u64(line, key("n"), s.n)) return false;
  if (!ndjson_find_i64(line, key("sh"), s.sum_hi)) return false;
  if (!ndjson_find_u64(line, key("sl"), s.sum_lo)) return false;
  if (!ndjson_find_i64(line, key("qh"), s.sumsq_hi)) return false;
  if (!ndjson_find_u64(line, key("ql"), s.sumsq_lo)) return false;
  if (!ndjson_find_bits(line, key("mn"), mn)) return false;
  if (!ndjson_find_bits(line, key("mx"), mx)) return false;
  s.min_bits = double_to_bits(mn);
  s.max_bits = double_to_bits(mx);
  out = ExactMoments::from_state(s);
  return true;
}

}  // namespace

std::string serialize_campaign_header(std::uint64_t spec_digest,
                                      std::uint64_t jobs_total,
                                      std::uint64_t seed) {
  JsonBuilder b;
  b.str("t", "h")
      .str("schema", kCampaignStreamSchema)
      .u64("version", kCampaignStreamVersion)
      .u64("digest", spec_digest)
      .u64("jobs", jobs_total)
      .u64("seed", seed);
  return b.build();
}

std::string serialize_shard_record(const ShardRecord& r) {
  JsonBuilder b;
  b.str("t", "s")
      .u64("job", r.job)
      .u64("cell", r.cell)
      .u64("wafer", r.wafer)
      .u64("db", r.die_begin)
      .u64("de", r.die_end)
      .u64("dies", r.agg.dies);
  {
    std::array<std::uint64_t, kNumTuningPolicies> pc{};
    for (std::size_t i = 0; i < pc.size(); ++i) pc[i] = r.agg.policy_count[i];
    b.u64_array("policy", pc);
  }
  b.u64_array("islands", r.agg.island_activation)
      .u64("met", r.agg.timing_met)
      .u64("esc", r.agg.escalated)
      .u64("miss", r.agg.missed_violation)
      .u64("sev", r.agg.mc_severity_sum)
      .u64("drawn", r.agg.mc_samples_drawn)
      .u64("budget", r.agg.mc_samples_budget)
      .u64("conv", r.agg.mc_converged_dies)
      .u64("tga", r.agg.triage_analytical)
      .u64("tgm", r.agg.triage_mc_fallback)
      .u64("mac", r.agg.triage_macro);
  const auto moments = moment_fields(r.agg);
  for (std::size_t i = 0; i < kMomentPrefixes.size(); ++i) {
    put_moments(b, kMomentPrefixes[i], *moments[i]);
  }
  return b.build();
}

std::string serialize_campaign_trailer(std::uint64_t jobs_total) {
  JsonBuilder b;
  b.str("t", "e").u64("jobs", jobs_total);
  return b.build();
}

bool parse_shard_record(std::string_view line, ShardRecord& out) {
  std::string kind;
  if (!ndjson_find_str(line, "t", kind) || kind != "s") return false;
  ShardRecord r;
  if (!ndjson_find_u64(line, "job", r.job)) return false;
  if (!ndjson_find_u64(line, "cell", r.cell)) return false;
  if (!ndjson_find_u64(line, "wafer", r.wafer)) return false;
  if (!ndjson_find_u64(line, "db", r.die_begin)) return false;
  if (!ndjson_find_u64(line, "de", r.die_end)) return false;
  if (!ndjson_find_u64(line, "dies", r.agg.dies)) return false;
  std::vector<std::uint64_t> policy;
  if (!ndjson_find_u64_array(line, "policy", policy) ||
      policy.size() != static_cast<std::size_t>(kNumTuningPolicies)) {
    return false;
  }
  for (std::size_t i = 0; i < policy.size(); ++i) r.agg.policy_count[i] = policy[i];
  if (!ndjson_find_u64_array(line, "islands", r.agg.island_activation)) {
    return false;
  }
  if (!ndjson_find_u64(line, "met", r.agg.timing_met)) return false;
  if (!ndjson_find_u64(line, "esc", r.agg.escalated)) return false;
  if (!ndjson_find_u64(line, "miss", r.agg.missed_violation)) return false;
  if (!ndjson_find_u64(line, "sev", r.agg.mc_severity_sum)) return false;
  if (!ndjson_find_u64(line, "drawn", r.agg.mc_samples_drawn)) return false;
  if (!ndjson_find_u64(line, "budget", r.agg.mc_samples_budget)) return false;
  if (!ndjson_find_u64(line, "conv", r.agg.mc_converged_dies)) return false;
  if (!ndjson_find_u64(line, "tga", r.agg.triage_analytical)) return false;
  if (!ndjson_find_u64(line, "tgm", r.agg.triage_mc_fallback)) return false;
  if (!ndjson_find_u64(line, "mac", r.agg.triage_macro)) return false;
  const auto moments = moment_fields(r.agg);
  for (std::size_t i = 0; i < kMomentPrefixes.size(); ++i) {
    if (!get_moments(line, kMomentPrefixes[i], *moments[i])) return false;
  }
  out = std::move(r);
  return true;
}

LoadedCampaignStream load_campaign_stream(const std::string& path) {
  LoadedCampaignStream out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;

  std::string line;
  std::uint64_t offset = 0;
  while (std::getline(in, line)) {
    // getline strips '\n' but also returns the final unterminated
    // fragment of a killed write; only count the line if the newline was
    // actually consumed (stream not at a newline-less EOF).
    const bool terminated = !in.eof();
    if (!terminated) break;
    const std::uint64_t line_bytes = line.size() + 1;

    std::string kind;
    if (!ndjson_find_str(line, "t", kind)) break;
    if (kind == "h") {
      std::string schema;
      std::uint64_t version = 0;
      if (out.header_seen || !ndjson_find_str(line, "schema", schema) ||
          schema != kCampaignStreamSchema ||
          !ndjson_find_u64(line, "version", version) ||
          version != kCampaignStreamVersion ||
          !ndjson_find_u64(line, "digest", out.spec_digest) ||
          !ndjson_find_u64(line, "jobs", out.jobs_total) ||
          !ndjson_find_u64(line, "seed", out.seed)) {
        break;
      }
      out.header_seen = true;
    } else if (kind == "s") {
      ShardRecord r;
      if (!out.header_seen || !parse_shard_record(line, r) ||
          r.job != out.records.size()) {
        break;  // out-of-order or damaged record: prefix ends here
      }
      out.records.push_back(std::move(r));
    } else if (kind == "e") {
      std::uint64_t jobs = 0;
      if (!out.header_seen || !ndjson_find_u64(line, "jobs", jobs) ||
          jobs != out.jobs_total || out.records.size() != out.jobs_total) {
        break;
      }
      out.trailer_seen = true;
    } else {
      break;
    }
    offset += line_bytes;
    if (out.trailer_seen) break;  // nothing valid may follow the trailer
  }
  out.valid_bytes = offset;
  return out;
}

}  // namespace vipvt
