#pragma once
// Campaign stream/checkpoint records (schema "vipvt.campaign.ndjson",
// version 1).  One NDJSON line per record; the `t` key tags the kind:
//
//   t=h  header: schema/version, spec digest, total job count, seed —
//        written once at stream birth; resume validates it so a
//        checkpoint can never silently continue a different campaign.
//   t=s  shard: job/cell/wafer/die-range identity plus the COMPLETE
//        YieldAggregate reducer state.  Exact fields (integer tallies,
//        ExactMoments 128-bit sums, min/max doubles) travel as integers
//        and IEEE-754 bit patterns, so parse(serialize(r)) reproduces the
//        aggregate bit-for-bit — the stream IS the checkpoint.
//   t=e  end trailer: written after the last shard; its presence marks a
//        complete campaign (a live tail knows the stream won't grow).
//
// Serialization is deterministic (fixed key order and formats), so two
// campaigns that compute identical aggregates produce byte-identical
// streams — the property the resume gate byte-compares (DESIGN.md §15).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "yield/yield.hpp"

namespace vipvt {

inline constexpr std::string_view kCampaignStreamSchema =
    "vipvt.campaign.ndjson";
/// Version 2 added the triage tier tallies (tga/tgm, DESIGN.md §16) to
/// shard records; version-1 streams are not resumable (the digest embeds
/// the version, so resume refuses them loudly rather than silently
/// zeroing the new fields).  Version 3 covers the compensation-policy
/// portfolio (DESIGN.md §18): the record format is unchanged, but the
/// spec digest now hashes each policy's sizing/buffering knobs — which
/// decide the netlist a cell's dies fabricate on — so version-2 streams
/// are not resumable either.  Version 4 added the stage-macromodel tier
/// (DESIGN.md §19): shard records gain the macro-decided tally (mac)
/// and the digest hashes the tier selector plus the macromodel knobs.
inline constexpr std::uint64_t kCampaignStreamVersion = 4;

/// One completed wafer shard: job identity + full reducer state.
struct ShardRecord {
  std::uint64_t job = 0;   ///< dense job index (emission is in job order)
  std::uint64_t cell = 0;  ///< CampaignCell::index
  std::uint64_t wafer = 0;
  std::uint64_t die_begin = 0;
  std::uint64_t die_end = 0;
  YieldAggregate agg;
};

std::string serialize_campaign_header(std::uint64_t spec_digest,
                                      std::uint64_t jobs_total,
                                      std::uint64_t seed);
std::string serialize_shard_record(const ShardRecord& r);
std::string serialize_campaign_trailer(std::uint64_t jobs_total);

/// Parse one t=s line.  Returns false on any malformed or non-shard line
/// (the loader treats that as the end of the resumable prefix).
bool parse_shard_record(std::string_view line, ShardRecord& out);

/// What load_campaign_stream recovered from a (possibly truncated)
/// stream file.
struct LoadedCampaignStream {
  bool header_seen = false;
  std::uint64_t spec_digest = 0;
  std::uint64_t jobs_total = 0;
  std::uint64_t seed = 0;
  /// Shard records of the complete-record prefix, in file (= job) order.
  std::vector<ShardRecord> records;
  bool trailer_seen = false;
  /// Byte length of the resumable prefix (ends after the last complete,
  /// parseable record); resume truncates the file here before appending.
  std::uint64_t valid_bytes = 0;
};

/// Read a stream file back, tolerating a kill mid-write: only lines
/// terminated by '\n' AND parsing cleanly count, and the first bad line
/// ends the prefix.  Missing file -> default (header_seen == false).
LoadedCampaignStream load_campaign_stream(const std::string& path);

}  // namespace vipvt
