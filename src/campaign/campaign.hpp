#pragma once
// Wafer-campaign runtime: from one fast deterministic wafer to FLEETS of
// them.  A campaign is a declarative parameter sweep — netlist variants
// × wafer geometries × variation-sigma scales × compensation-policy
// mixes × per-die MC budgets, each cell fabricated as `wafers_per_cell`
// virtual wafers — expanded into per-wafer-shard jobs and scheduled onto
// the existing deterministic ThreadPool (DESIGN.md §15).  This is the
// experimental regime of the related work (policy portfolios compared
// across many MC campaigns: Neiroukh & Song arXiv:0710.4713, Zhang et
// al. arXiv:1705.04990) run at "virtual fab" scale.
//
// The three contracts, in order of importance:
//
//  1. *Determinism one level up.*  Every die's random stream derives
//     from (campaign seed, cell index, wafer index, die id) through
//     nested splitmix64 substreams — never from the schedule.  Shard
//     results reduce through partition-invariant accumulators
//     (YieldAggregate: exact integer tallies + ExactMoments), so the
//     final CampaignReport is BIT-identical for any shard size and any
//     thread count, and its serialized form byte-identical (hard-gated
//     in bench/campaign_sweep and CI).
//
//  2. *Streaming, O(1) in dies.*  A shard worker folds each die into
//     its aggregate and discards the outcome; completed shard records
//     are appended to an NDJSON stream in job order (consumers can
//     `tail -f` a running campaign).  Live state is bounded by the
//     out-of-order reorder window (~pool size), never by die count.
//
//  3. *Checkpoint == stream.*  The NDJSON stream carries the exact
//     reducer state of every completed shard (bit-pattern doubles,
//     128-bit integer sums), so resuming after a kill replays the
//     stream's complete-record prefix and re-runs only the remaining
//     jobs — a resumed campaign's report AND stream are byte-identical
//     to an uninterrupted run's.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "yield/wafer.hpp"
#include "yield/yield.hpp"

namespace vipvt {

class Flow;

// PolicyMix — the compensation-policy axis value — moved to
// vi/policy.hpp (pulled in through yield/yield.hpp) when it grew the
// design-side sizing/buffering knobs of the portfolio (DESIGN.md §18).
// The campaign compiles each (variant, mix) pair once via
// compile_policy_mix and runs every wafer of that cell on the compiled
// netlist.

/// Declarative sweep specification.  The cell grid is the cartesian
/// product of the five axes, in fixed nesting order (outermost first):
/// variant, wafer_grid, sigma_scale, policy, mc_samples — cell indices
/// are dense in that order and independent of sharding/threads, which
/// makes them stable keys for seeds, reports and checkpoints.
struct CampaignSpec {
  /// Netlist-variant axis: names registered with
  /// CampaignRunner::add_variant.  Empty = all registered variants, in
  /// registration order.
  std::vector<std::string> variants;
  /// Wafer-geometry axis (diameter / field / die size per cell).
  std::vector<WaferConfig> wafer_grids{WaferConfig{}};
  /// Variation-severity axis: scales the variant model's
  /// three_sigma_random_frac (1.0 = the characterized process).
  std::vector<double> sigma_scales{1.0};
  /// Compensation-policy axis.
  std::vector<PolicyMix> policies{PolicyMix{}};
  /// Per-die MC sampling axis: the fixed per-die budget, or — when
  /// base.mc.adaptive.enabled — the adaptive max_samples cap.
  std::vector<int> mc_samples{48};
  /// Virtual wafers fabricated per cell (distinct wafer seeds).
  int wafers_per_cell = 1;
  /// Dies per shard job.  Pure scheduling granularity: ANY value yields
  /// the identical campaign report (the determinism contract); it only
  /// trades scheduling overhead against load balance and checkpoint
  /// resolution.
  int shard_dies = 64;
  std::uint64_t seed = 0xca4fa167'5eed0001ULL;
  /// Template for each cell's YieldConfig: mc.samples (or adaptive cap),
  /// allow_escalation / allow_chip_wide_fallback and seed are overridden
  /// per cell/wafer; everything else (draw profile, batch width,
  /// adaptive CI targets, speed percentile, ...) is taken from here.
  YieldConfig base{};
};

/// Substream seeding tree (the checkpoint/resume backbone): the die
/// stream of die d on wafer w of cell c is a pure function of
/// (campaign seed, c, w, d) — resuming a campaign re-derives identical
/// streams for the remaining jobs regardless of what already ran.
constexpr std::uint64_t campaign_wafer_seed(std::uint64_t campaign_seed,
                                            std::uint64_t cell,
                                            std::uint64_t wafer) noexcept {
  return substream_seed(substream_seed(campaign_seed, cell), wafer);
}

/// The per-die RNG seed the wafer path derives internally
/// (YieldAnalyzer::analyze_die_with seeds Rng{substream_seed(cfg.seed,
/// die_id)} with cfg.seed = campaign_wafer_seed(...)).  Exposed so the
/// cross-wafer decorrelation property is testable against the REAL
/// seeding path (tests/test_util_rng.cpp).
constexpr std::uint64_t campaign_die_seed(std::uint64_t campaign_seed,
                                          std::uint64_t cell,
                                          std::uint64_t wafer,
                                          std::uint64_t die) noexcept {
  return substream_seed(campaign_wafer_seed(campaign_seed, cell, wafer), die);
}

/// One expanded cell of the sweep grid.
struct CampaignCell {
  std::uint32_t index = 0;  ///< dense cell id (seeding/report key)
  // Axis indices into the spec vectors.
  std::uint32_t variant = 0;
  std::uint32_t wafer_grid = 0;
  std::uint32_t sigma = 0;
  std::uint32_t policy = 0;
  std::uint32_t samples = 0;
  /// Fully resolved per-cell config, except seed (set per wafer job).
  YieldConfig config{};
};

/// Merged result of one cell: every wafer of the cell reduced into one
/// partition-invariant aggregate, plus what the cell's policy mix did to
/// the netlist (identical for every wafer of the cell — compiled once
/// per (variant, mix), DESIGN.md §18).
struct CellResult {
  CampaignCell cell;
  YieldAggregate agg;
  PortfolioStats portfolio{};
};

struct CampaignReport {
  CampaignSpec spec;
  std::vector<std::string> variant_names;  ///< resolved variant axis
  std::vector<CellResult> cells;           ///< cell-index order
  /// Jobs folded in (== all jobs for a completed campaign; fewer after a
  /// stop_after_jobs checkpoint run).
  std::uint64_t jobs_done = 0;
  std::uint64_t jobs_total = 0;
  bool complete() const { return jobs_done == jobs_total; }

  std::uint64_t total_dies() const;
  std::uint64_t shipped_dies() const;
  double parametric_yield() const;
};

/// Schedule-dependent observability (wall-clock shape, reorder-window
/// high-water marks).  Deliberately OUTSIDE CampaignReport so the
/// byte-compared artifact never carries schedule-dependent bytes.
struct CampaignRunStats {
  std::size_t jobs_total = 0;
  std::size_t jobs_resumed = 0;  ///< loaded from the checkpoint prefix
  std::size_t jobs_run = 0;      ///< executed this run
  /// High-water mark of completed-but-not-yet-emitted shard aggregates
  /// (the reorder buffer): the campaign's entire transient state is
  /// peak_pending_shards aggregates + one CellResult per cell — O(1) in
  /// dies.
  std::size_t peak_pending_shards = 0;
  std::size_t records_emitted = 0;
};

struct CampaignRunOptions {
  /// nullptr runs serially; any pool produces the identical report.
  ThreadPool* pool = nullptr;
  /// NDJSON stream & checkpoint file (one and the same).  Empty =
  /// neither streaming nor checkpointing.
  std::string stream_path{};
  /// Resume from stream_path's complete-record prefix (requires a
  /// matching spec digest; throws std::runtime_error otherwise).  When
  /// the file does not exist, starts fresh.
  bool resume = false;
  /// Stop (checkpoint) once this many jobs are complete IN TOTAL
  /// (including resumed ones); 0 = run to completion.  The deliberate
  /// "kill point" used by the resume gates.
  std::size_t stop_after_jobs = 0;
  /// Live-tail hook: called with each NDJSON record line, in job order,
  /// under the emit lock (keep it cheap).
  std::function<void(const std::string&)> on_record{};
  CampaignRunStats* stats = nullptr;  ///< optional out-param
};

class CampaignRunner {
 public:
  /// Register a netlist variant by name.  All references must outlive
  /// the runner (the Flow overload requires plan_sensors() +
  /// simulate_activity(), like YieldAnalyzer::from_flow).
  void add_variant(std::string name, const Flow& flow);
  void add_variant(std::string name, const Design& design,
                   const StaEngine& sta, const VariationModel& model,
                   const IslandPlan& plan, const RazorPlan& sensors,
                   const ActivityDb& activity, double clock_freq_ghz);

  std::size_t num_variants() const { return variants_.size(); }

  /// Expand the spec's dense cell grid (also validates it: unknown
  /// variant names, empty axes, non-positive counts all throw
  /// std::invalid_argument).  run() uses this same expansion.
  std::vector<CampaignCell> expand(const CampaignSpec& spec) const;

  /// Total shard jobs the spec expands to (cells × wafers × shards).
  std::size_t num_jobs(const CampaignSpec& spec) const;

  /// Spec fingerprint embedded in stream headers: resuming requires the
  /// digests to match, so a checkpoint can never silently continue a
  /// DIFFERENT campaign.
  std::uint64_t spec_digest(const CampaignSpec& spec) const;

  /// Run (or resume) the campaign.  See the file header for the
  /// determinism / streaming / checkpoint contracts.
  CampaignReport run(const CampaignSpec& spec,
                     const CampaignRunOptions& opts = {}) const;

 private:
  struct Variant {
    std::string name;
    const Design* design;
    const StaEngine* sta;
    const VariationModel* model;
    const IslandPlan* plan;
    const RazorPlan* sensors;
    const ActivityDb* activity;
    double clock_freq_ghz;
  };
  struct Plan;  // full expansion (models, wafers, slot maps, jobs)
  void build_plan(const CampaignSpec& spec, Plan& plan) const;

  std::vector<Variant> variants_;
};

}  // namespace vipvt
