// Razor sensor tuning on virtual silicon: how the SSTA-driven sensor
// budget trades area overhead against detection coverage.  For each
// criticality-probability threshold, plan sensors from the worst-case MC
// results, then fabricate a batch of chips at the worst corner and
// measure how many true violations the (reduced) sensor set catches.

#include <cstdio>

#include "util/table.hpp"
#include "vi/flow.hpp"

int main() {
  using namespace vipvt;

  FlowConfig cfg;
  cfg.vex = VexConfig::tiny();
  cfg.floorplan.target_utilization = 0.55;
  cfg.scenario.mc.samples = 150;
  cfg.islands.mc_samples = 80;

  Flow flow(cfg);
  flow.plan_sensors();  // builds worst-case MC + applies the default plan
  const McResult& worst_mc = flow.worst_case_mc();
  const std::size_t flops = flow.design().num_flops();
  const DieLocation loc = DieLocation::point('A');

  std::printf("core: %zu cells / %zu flops, clock %.3f ns\n\n",
              flow.design().num_instances(), flops,
              flow.post_shifter_clock_ns());

  Table t({"threshold", "sensors", "flop share", "area overhead [um^2]",
           "violations caught", "missed"});
  for (double thr : {0.0, 0.02, 0.10, 0.30, 0.60}) {
    RazorConfig rc;
    rc.crit_prob_threshold = thr;
    const RazorPlan plan = plan_razor_sensors(flow.sta(), worst_mc, rc);

    // Detection experiment: 20 chips at the worst corner; a violation is
    // "caught" if some sensored endpoint sees it at the all-low supply.
    Rng rng(thr * 1000 + 7);
    int violating = 0, caught = 0;
    for (int c = 0; c < 20; ++c) {
      const VirtualChip chip =
          fabricate_chip(flow.design(), flow.variation(), loc, rng);
      flow.sta().compute_base_all_low();
      std::vector<double> factors(chip.lgate_nm.size());
      for (InstId i = 0; i < factors.size(); ++i) {
        factors[i] = flow.variation().delay_factor(
            chip.lgate_nm[i], flow.sta().inst_corner(i),
            flow.design().cell_of(i).vth);
      }
      const StaResult truth = flow.sta().analyze(factors);
      if (truth.wns >= 0.0) continue;
      ++violating;
      const auto flags = sensor_flags(flow.sta(), plan, truth);
      bool any = false;
      for (bool f : flags) any |= f;
      caught += any;
    }

    const Cell& razor =
        flow.lib().cell(flow.lib().cell_for(CellFunc::RazorDff));
    const Cell& dff = flow.lib().cell(flow.lib().cell_for(CellFunc::Dff));
    const double overhead =
        static_cast<double>(plan.total()) * (razor.area_um2 - dff.area_um2);
    t.add_row({Table::num(thr, 2), std::to_string(plan.total()),
               Table::pct(static_cast<double>(plan.total()) /
                              static_cast<double>(flops), 1),
               Table::num(overhead, 0),
               violating ? std::to_string(caught) + "/" +
                               std::to_string(violating)
                         : "0/0",
               std::to_string(violating - caught)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("reading: threshold 0 (= any endpoint that ever violated in "
              "the MC) already needs only a small fraction of the flops —\n"
              "the paper's point.  Raising the threshold cuts area further "
              "but eventually misses real violations.\n");
  return 0;
}
