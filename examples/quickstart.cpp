// Quickstart: the whole methodology on a scaled-down VLIW core, end to
// end, in one page of code.  Build & run:
//
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
//
// Steps: build+place a core, clock it at its own fmax, characterize
// process-variation scenarios by Monte-Carlo SSTA, grow nested voltage
// islands, insert level shifters, plan Razor sensors, then compensate a
// fabricated (virtual) chip and compare power against chip-wide Vdd
// adaptation.

#include <cstdio>

#include "vi/flow.hpp"

int main() {
  using namespace vipvt;

  FlowConfig cfg;
  cfg.vex = VexConfig::tiny();              // small core for a fast demo
  cfg.floorplan.target_utilization = 0.55;  // room for level shifters
  cfg.scenario.mc.samples = 120;
  cfg.islands.mc_samples = 80;
  cfg.sim_cycles = 200;

  Flow flow(cfg);
  std::printf("core: %zu cells, clock %.3f ns\n",
              flow.design().num_instances(), flow.nominal_clock_ns());

  // 1. Design-time characterization: which die locations violate timing?
  flow.characterize();
  for (const auto& p : flow.scenarios().sweep) {
    std::printf("  core at diagonal t=%.2f: %d violating stage(s)\n",
                p.diagonal_t, p.severity);
  }

  // 2. Placement-aware nested voltage islands + level shifters + sensors.
  flow.plan_sensors();
  std::printf("islands: %d nested slices (%zu cells), %zu level shifters, "
              "%zu Razor sensors on %zu flops\n",
              flow.island_plan().num_islands(),
              flow.island_plan().total_island_cells(),
              flow.shifter_report().inserted, flow.razor_plan().total(),
              flow.design().num_flops());

  // 3. Post-silicon: fabricate a worst-corner chip and compensate it.
  Rng rng(1);
  const DieLocation worst = DieLocation::point('A');
  const VirtualChip chip =
      fabricate_chip(flow.design(), flow.variation(), worst, rng);
  CompensationController ctrl = flow.make_controller();
  const CompensationOutcome out = ctrl.compensate(chip);
  std::printf("chip at point A: wns %.3f -> %.3f ns, detected severity %d, "
              "raised %d island(s), timing %s\n",
              out.wns_before, out.wns_after, out.detected_severity,
              out.islands_raised, out.timing_met ? "MET" : "VIOLATED");

  // 4. The power argument (Fig. 5): islands beat chip-wide adaptation.
  flow.simulate_activity();
  const PowerBreakdown vi =
      flow.power_for_severity(out.islands_raised, worst);
  const PowerBreakdown cw = flow.power_chip_wide_high(worst);
  std::printf("power: %.3f mW with %d island(s) vs %.3f mW chip-wide high "
              "Vdd — %.1f %% saved\n",
              vi.total_mw(), out.islands_raised, cw.total_mw(),
              (1.0 - vi.total_mw() / cw.total_mw()) * 100.0);
  return 0;
}
