// Campaign: sweep a virtual fab across variation severity and
// compensation policy, several wafers per cell, and stream every
// completed shard to an NDJSON file you can `tail -f` while the
// campaign runs.  The same file doubles as the checkpoint: re-running
// with resume=true picks up where a killed campaign left off and
// produces byte-identical results.  Build & run:
//
//   cmake -B build && cmake --build build && ./build/examples/campaign

#include <cstdio>

#include "campaign/campaign.hpp"
#include "io/campaign_writers.hpp"
#include "vi/flow.hpp"
#include "yield/wafer.hpp"

int main() {
  using namespace vipvt;

  FlowConfig cfg;
  cfg.vex = VexConfig::tiny();  // small core for a fast demo
  cfg.floorplan.target_utilization = 0.55;
  cfg.scenario.sweep_points = 6;
  cfg.scenario.mc.samples = 100;
  cfg.islands.mc_samples = 80;
  cfg.sim_cycles = 150;
  Flow flow(cfg);
  flow.simulate_activity();  // runs the whole design-time pipeline
  std::printf("core: %zu cells, %d nested islands, %zu Razor sensors\n",
              flow.design().num_instances(), flow.island_plan().num_islands(),
              flow.razor_plan().total());

  CampaignRunner runner;
  runner.add_variant("tiny", flow);

  // 2 sigma scales x 2 policies = 4 cells, 2 wafers each.
  WaferConfig wc;
  wc.wafer_diameter_mm = 70.0;
  CampaignSpec spec;
  spec.wafer_grids = {wc};
  spec.sigma_scales = {1.0, 1.2};
  spec.policies = {PolicyMix{"full", true, true},
                   PolicyMix{"no-escalation", false, true}};
  spec.mc_samples = {8};
  spec.wafers_per_cell = 2;
  spec.shard_dies = 8;
  spec.base.mc.samples = 8;
  std::printf("campaign: %zu cells x %d wafers x %zu dies/wafer, %zu jobs\n",
              runner.expand(spec).size(), spec.wafers_per_cell,
              WaferModel(wc).num_dies(), runner.num_jobs(spec));

  ThreadPool pool;  // all hardware threads; results identical regardless
  CampaignRunOptions opts;
  opts.pool = &pool;
  opts.stream_path = "campaign.ndjson";  // stream == checkpoint
  std::size_t lines = 0;
  opts.on_record = [&lines](const std::string&) { ++lines; };  // live tail
  const CampaignReport report = runner.run(spec, opts);
  std::printf("streamed %zu shard records to campaign.ndjson (tail -f "
              "works on a live run)\n\n", lines);

  std::printf("  %-6s %-14s %9s %7s %10s %9s\n", "sigma", "policy", "dies",
              "yield", "fmax [GHz]", "escalated");
  for (const CellResult& c : report.cells) {
    const PolicyMix& p = spec.policies[c.cell.policy];
    std::printf("  %-6.2f %-14s %9llu %6.1f%% %10.4f %9llu\n",
                spec.sigma_scales[c.cell.sigma], p.name.c_str(),
                static_cast<unsigned long long>(c.agg.dies),
                c.agg.parametric_yield() * 100.0, c.agg.fmax_ghz.mean(),
                static_cast<unsigned long long>(c.agg.escalated));
  }
  std::printf("\ncampaign yield: %.1f %% (%llu/%llu dies ship)\n",
              report.parametric_yield() * 100.0,
              static_cast<unsigned long long>(report.shipped_dies()),
              static_cast<unsigned long long>(report.total_dies()));

  write_campaign_json_file("campaign.json", report);
  std::printf("wrote campaign.json / campaign.ndjson\n");
  return 0;
}
