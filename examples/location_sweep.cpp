// Die-location explorer: sweep the core position across the chip
// diagonal AND across rows/columns of the exposure field, printing the
// violation scenario and the island configuration the controller would
// choose at each point.  Illustrates how the same fabricated design
// needs different compensation depending on where each die sat on the
// wafer's exposure field.

#include <cstdio>

#include "util/table.hpp"
#include "vi/flow.hpp"

int main() {
  using namespace vipvt;

  FlowConfig cfg;
  cfg.vex = VexConfig::tiny();
  cfg.floorplan.target_utilization = 0.55;
  cfg.scenario.mc.samples = 120;
  cfg.islands.mc_samples = 80;

  Flow flow(cfg);
  flow.plan_sensors();
  CompensationController ctrl = flow.make_controller();
  MonteCarloSsta mc(flow.design(), flow.sta(), flow.variation());
  McConfig mcc;
  mcc.samples = 120;

  std::printf("core: %zu cells, %d islands planned, clock %.3f ns\n\n",
              flow.design().num_instances(), flow.island_plan().num_islands(),
              flow.post_shifter_clock_ns());

  // 2-D sweep over the chip: a 4x4 grid of core positions.
  Table t({"core @ (x,y) mm", "systematic dev", "severity (SSTA)",
           "islands raised (chip)", "timing"});
  Rng rng(2718);
  for (int gy = 3; gy >= 0; --gy) {
    for (int gx = 0; gx < 4; ++gx) {
      DieLocation loc;
      loc.core_origin_mm = {gx * 14.0 / 3.0 * 0.9, gy * 14.0 / 3.0 * 0.9};
      flow.sta().compute_base_all_low();
      const McResult res = mc.run(loc, mcc);
      const VirtualChip chip =
          fabricate_chip(flow.design(), flow.variation(), loc, rng);
      const CompensationOutcome out = ctrl.compensate(chip);
      const Point f = loc.field_mm({0, 0});
      t.add_row({Table::num(loc.core_origin_mm.x, 1) + "," +
                     Table::num(loc.core_origin_mm.y, 1),
                 Table::pct(flow.field().deviation_at(f.x, f.y), 1),
                 std::to_string(res.num_violating_stages()),
                 std::to_string(out.islands_raised),
                 out.timing_met ? "met" : "VIOLATED"});
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("reading: severity falls from the slow (lower-left) to the "
              "fast (upper-right) corner of the exposure field; the\n"
              "controller raises only as many islands as each die needs.\n");
  return 0;
}
