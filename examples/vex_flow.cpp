// Full paper flow on the 4-way VEX-class VLIW, printing every
// intermediate report the methodology produces (Fig. 1 of the paper):
// synthesis-like netlist statistics, placement QoR, dual-Vth power
// recovery, Monte-Carlo SSTA scenario characterization, voltage-island
// generation, level-shifter insertion, Razor sensor planning, and the
// final power comparison.

#include <cstdio>

#include "io/writers.hpp"
#include "util/table.hpp"
#include "vi/flow.hpp"

int main() {
  using namespace vipvt;

  FlowConfig cfg;  // full-size core, defaults as in the benches
  cfg.scenario.sweep_points = 12;
  cfg.scenario.mc.samples = 250;
  cfg.islands.mc_samples = 120;

  std::printf("=== 1. physical synthesis substitute ===\n");
  Flow flow(cfg);
  const Design& d = flow.design();
  std::printf("netlist: %zu instances, %zu nets, %zu flops, %.0f um^2\n",
              d.num_instances(), d.num_nets(), d.num_flops(), d.total_area());
  std::printf("die: %.0f x %.0f um, clock %.3f ns (%.1f MHz)\n",
              flow.floorplan().die().width(), flow.floorplan().die().height(),
              flow.nominal_clock_ns(), 1e3 / flow.nominal_clock_ns());
  const RecoveryReport& rec = flow.recovery_report();
  std::printf("dual-Vth recovery: %zu HVT + %zu UHVT cells, leakage "
              "%.3f -> %.3f mW, wns %.3f ns\n\n",
              rec.swapped_to_hvt, rec.swapped_to_uhvt,
              rec.leakage_before_mw, rec.leakage_after_mw, rec.wns_after_ns);

  std::printf("=== 2. SSTA scenario characterization ===\n");
  flow.characterize();
  for (const auto& p : flow.scenarios().sweep) {
    std::printf("  t=%.2f: severity %d  (3-sigma slacks DC %.3f / EX %.3f / "
                "WB %.3f ns)\n",
                p.diagonal_t, p.severity,
                p.analysis.stage(PipeStage::Decode).three_sigma_slack(),
                p.analysis.stage(PipeStage::Execute).three_sigma_slack(),
                p.analysis.stage(PipeStage::WriteBack).three_sigma_slack());
  }

  std::printf("\n=== 3. voltage islands + level shifters ===\n");
  flow.insert_shifters();
  const IslandPlan& plan = flow.island_plan();
  std::printf("direction: %s, growing from the %s side\n",
              slice_dir_name(plan.dir), plan.from_low_side ? "low" : "high");
  for (int k = 0; k < plan.num_islands(); ++k) {
    std::printf("  island %d: %zu cells, cut at %.1f um%s\n", k + 1,
                plan.cell_count[static_cast<std::size_t>(k)],
                plan.cuts[static_cast<std::size_t>(k)],
                plan.feasible[static_cast<std::size_t>(k)] ? "" : "  (INFEASIBLE)");
  }
  std::printf("level shifters: %zu inserted (%.1f %% of logic area), "
              "re-clocked to %.3f ns (%.1f %% degradation)\n",
              flow.shifter_report().inserted,
              flow.shifter_report().area_fraction * 100.0,
              flow.post_shifter_clock_ns(),
              flow.shifter_perf_degradation() * 100.0);

  std::printf("\n=== 4. Razor sensor planning ===\n");
  flow.plan_sensors();
  std::printf("sensors: %zu of %zu flops (DC %zu / EX %zu / WB %zu)\n",
              flow.razor_plan().total(), d.num_flops(),
              flow.razor_plan().per_stage[static_cast<int>(PipeStage::Decode)],
              flow.razor_plan().per_stage[static_cast<int>(PipeStage::Execute)],
              flow.razor_plan().per_stage[static_cast<int>(PipeStage::WriteBack)]);

  std::printf("\n=== 5. post-silicon compensation + power ===\n");
  flow.simulate_activity();
  CompensationController ctrl = flow.make_controller();
  Rng rng(0xfab);
  Table t({"chip location", "detected severity", "islands", "timing",
           "VI power [mW]", "chip-wide [mW]", "saving"});
  for (char p : {'A', 'B', 'C', 'D'}) {
    const DieLocation loc = DieLocation::point(p);
    const VirtualChip chip = fabricate_chip(d, flow.variation(), loc, rng);
    const CompensationOutcome out = ctrl.compensate(chip);
    const PowerBreakdown vi = flow.power_for_severity(out.islands_raised, loc);
    const PowerBreakdown cw = flow.power_chip_wide_high(loc);
    t.add_row({std::string(1, p), std::to_string(out.detected_severity),
               std::to_string(out.islands_raised),
               out.timing_met ? "met" : "VIOLATED",
               Table::num(vi.total_mw(), 3), Table::num(cw.total_mw(), 3),
               Table::pct(1.0 - vi.total_mw() / cw.total_mw(), 1)});
  }
  std::printf("%s", t.render().c_str());

  // Interchange artifacts for inspection with standard EDA tooling.
  write_verilog_file("vex_final.v", d);
  write_def_file("vex_final.def", d, flow.floorplan());
  write_sdf_file("vex_final.sdf", d, flow.sta());
  std::printf("\nwrote vex_final.v / vex_final.def / vex_final.sdf\n");
  return 0;
}
