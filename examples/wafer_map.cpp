// Wafer map: fabricate a full wafer of dies (virtual fab), pick each
// die's post-silicon tuning policy, and render the classic wafer-map
// mosaic — which die ships at all-low Vdd, which needed islands raised,
// which fell back to chip-wide high Vdd, which is discarded.  Also dumps
// the per-die CSV and aggregate JSON report.  Build & run:
//
//   cmake -B build && cmake --build build && ./build/examples/wafer_map
//
// Map glyphs: '0' all-low, '1'..'3' islands raised, 'H' chip-wide high,
// 'X' discard, '.' off-wafer.

#include <cstdio>

#include "io/yield_writers.hpp"
#include "vi/flow.hpp"
#include "yield/wafer.hpp"
#include "yield/yield.hpp"

int main() {
  using namespace vipvt;

  FlowConfig cfg;
  cfg.vex = VexConfig::tiny();  // small core for a fast demo
  cfg.floorplan.target_utilization = 0.55;
  cfg.scenario.mc.samples = 120;
  cfg.islands.mc_samples = 80;
  cfg.sim_cycles = 200;
  Flow flow(cfg);
  flow.simulate_activity();  // runs the whole design-time pipeline
  std::printf("core: %zu cells, %d nested islands, %zu Razor sensors\n",
              flow.design().num_instances(), flow.island_plan().num_islands(),
              flow.razor_plan().total());

  WaferConfig wc;  // 300 mm wafer, 28 mm exposure field, 2x2 dies each
  const WaferModel wafer(wc);
  std::printf("wafer: %zu dies (%d x %d mm), %d dies per field side\n",
              wafer.num_dies(), static_cast<int>(wc.die_mm),
              static_cast<int>(wc.die_mm), wafer.dies_per_field_side());

  YieldConfig yc;
  yc.mc.samples = 24;
  ThreadPool pool;  // all hardware threads; results identical regardless
  const YieldReport report =
      YieldAnalyzer::from_flow(flow).analyze(wafer, yc, &pool);

  std::printf("\n%s\n", wafer.ascii_map(report.policy_glyphs()).c_str());

  std::printf("parametric yield: %.1f %% (%zu/%zu dies ship)\n",
              report.parametric_yield() * 100.0, report.shipped_dies(),
              report.total_dies());
  for (int p = 0; p < kNumTuningPolicies; ++p) {
    const auto pol = static_cast<TuningPolicy>(p);
    const auto& pw = report.power_mw[static_cast<std::size_t>(p)];
    if (pw.count() == 0) {
      std::printf("  %-14s: 0 dies\n", tuning_policy_name(pol));
      continue;
    }
    std::printf("  %-14s: %4zu dies, power %.3f +/- %.3f mW\n",
                tuning_policy_name(pol), report.count(pol), pw.mean(),
                pw.stddev());
  }
  std::printf("island activation:");
  for (std::size_t k = 0; k < report.island_activation.size(); ++k) {
    std::printf(" %zu:%zu", k, report.island_activation[k]);
  }
  std::printf("\nshipped fmax: %.4f +/- %.4f GHz over %zu dies\n",
              report.fmax_ghz.mean(), report.fmax_ghz.stddev(),
              report.fmax_ghz.count());

  write_yield_csv_file("wafer_yield.csv", wafer, report);
  write_yield_json_file("wafer_yield.json", report);
  std::printf("wrote wafer_yield.csv / wafer_yield.json\n");
  return 0;
}
