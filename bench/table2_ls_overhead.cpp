// Table 2 reproduction: level-shifter overhead for horizontal vs vertical
// voltage-island slicing.  Paper rows: number of LS (8187 hor / 6353 ver),
// LS area vs processor logic area (31.5 % / 26.3 %), LS total power share
// at points A/B/C (~1-5 %), plus the §4.6 text numbers: the placed netlist
// with shifters runs 15 % (hor) / 8 % (ver) slower.

#include <cstdio>

#include "util/table.hpp"

#include "common.hpp"

int main() {
  using namespace vipvt;
  bench::print_header("Table 2", "level-shifter overhead, hor vs ver slicing");

  struct Row {
    SliceDir dir;
    std::size_t count = 0;
    double area_frac = 0.0;
    double perf_degradation = 0.0;
    double power_share[3] = {0, 0, 0};  // points A, B, C
    std::size_t island_cells = 0;
  };
  Row rows[2] = {{SliceDir::Horizontal}, {SliceDir::Vertical}};

  for (auto& row : rows) {
    std::printf("\n-- building %s-slicing flow --\n", slice_dir_name(row.dir));
    auto flow = bench::make_flow(row.dir, /*through_activity=*/true);
    row.count = flow->shifter_report().inserted;
    row.area_frac = flow->shifter_report().area_fraction;
    row.perf_degradation = flow->shifter_perf_degradation();
    row.island_cells = flow->island_plan().total_island_cells();
    const int islands = flow->island_plan().num_islands();
    int idx = 0;
    for (char p : {'A', 'B', 'C'}) {
      const DieLocation loc = DieLocation::point(p);
      const int sev = std::max(1, islands - idx);  // A: all, B: -1, C: -2
      const PowerBreakdown pb = flow->power_for_severity(sev, loc);
      row.power_share[idx] = pb.level_shifter_mw / pb.total_mw();
      ++idx;
    }
  }

  Table t({"metric", "horizontal (ours)", "vertical (ours)",
           "horizontal (paper)", "vertical (paper)"});
  t.add_row({"number of LS", std::to_string(rows[0].count),
             std::to_string(rows[1].count), "8187", "6353"});
  t.add_row({"LS area / logic area", Table::pct(rows[0].area_frac, 2),
             Table::pct(rows[1].area_frac, 2), "31.51%", "26.31%"});
  t.add_row({"LS total power (point A)", Table::pct(rows[0].power_share[0], 2),
             Table::pct(rows[1].power_share[0], 2), "0.97%", "4.17%"});
  t.add_row({"LS total power (point B)", Table::pct(rows[0].power_share[1], 2),
             Table::pct(rows[1].power_share[1], 2), "1.08%", "4.93%"});
  t.add_row({"LS total power (point C)", Table::pct(rows[0].power_share[2], 2),
             Table::pct(rows[1].power_share[2], 2), "1.14%", "5.23%"});
  t.add_row({"perf degradation (§4.6)",
             Table::pct(rows[0].perf_degradation, 1),
             Table::pct(rows[1].perf_degradation, 1), "15%", "8%"});
  t.add_row({"cells in islands", std::to_string(rows[0].island_cells),
             std::to_string(rows[1].island_cells), "-", "-"});
  std::printf("\n%s\n", t.render().c_str());

  std::printf("shape checks: thousands of shifters on a ~50k-cell core; LS "
              "area is a double-digit share of logic area; one slicing\n"
              "direction is clearly cheaper than the other on area and "
              "performance.  Which direction wins — and by how much — is\n"
              "design/placement specific; the paper's point is that the "
              "methodology quantifies it before committing (their\n"
              "horizontal slicing had more shifters and 2x the performance "
              "cost; ours agrees on the ordering).\n");
  return 0;
}
