// Compensation-policy portfolio Pareto (DESIGN.md §18): one wafer run
// per policy mix — VI escalation only, statistical sizing + VI,
// criticality buffering + VI, and all three — reporting the
// power/area/yield point each mix buys.  Transforming mixes compile the
// netlist once (compile_policy_mix) and fabricate every die on the
// transformed design; the §12 incremental-STA path (per-level
// recorner_delta snapshots) serves the compiled netlists exactly as it
// serves the baseline, and is hard-gated here on the transformed design.
//
// Hard determinism gates (any failure exits 1):
//   1. Per mix, the serialized report (CSV + JSON) is byte-identical for
//      any thread count.
//   2. Per mix, reducing the wafer in shards of ANY size and merging
//      reproduces the single-shard aggregate's serialized NDJSON record
//      byte-for-byte (the campaign-layer contract on compiled netlists).
//   3. Portfolio-off bit-identity: the vi-only mix's per-die bits and
//      CSV equal a pre-portfolio YieldAnalyzer::from_flow run exactly —
//      wiring the portfolio in changes NOTHING for untouched mixes.
//   4. Zero-strength bit-identity: a mix with sizing enabled but a
//      threshold no gate reaches compiles a transformed-but-identical
//      netlist whose per-die bits still equal the baseline (the
//      rebuilt-StaEngine path is exact, DESIGN.md §18).
//   5. §12 on the transformed netlist: per-escalation-level snapshots
//      delta-built with recorner_delta are byte-identical to full
//      compute_base snapshots.
//
// Emits BENCH_policy.json (one metric block per mix) for trajectory
// tracking across PRs.
//
// Knobs: --samples N (per-die MC budget, default 12), --dies N (use the
// smallest wafer with at least N dies instead of the 300 mm default),
// --out PATH.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/checkpoint.hpp"
#include "io/yield_writers.hpp"
#include "timing/sta.hpp"
#include "util/table.hpp"
#include "vi/islands.hpp"
#include "vi/policy.hpp"
#include "yield/wafer.hpp"
#include "yield/yield.hpp"

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace vipvt;
  using clock = std::chrono::steady_clock;
  bench::print_header("Policy portfolio",
                      "power/area/yield Pareto per compensation-policy mix");

  // Same tiny core as bench/wafer_yield: the workload SHAPE (per-die MC
  // + compensation on a shared read-only design) is the full VEX's.
  FlowConfig cfg;
  cfg.vex = VexConfig::tiny();
  cfg.floorplan.target_utilization = 0.55;
  cfg.scenario.sweep_points = 6;
  cfg.scenario.mc.samples = 100;
  cfg.islands.mc_samples = 80;
  cfg.sim_cycles = 150;
  Flow flow(cfg);
  flow.simulate_activity();
  std::printf("# design: %zu instances, clock %.3f ns\n",
              flow.design().num_instances(), flow.nominal_clock_ns());

  WaferConfig wc;  // 300 mm, 28 mm field, 14 mm die
  const int want_dies = bench::arg_int(argc, argv, "--dies", 0);
  if (want_dies > 0) {
    for (double diameter = 50.0; diameter <= 450.0; diameter += 10.0) {
      wc.wafer_diameter_mm = diameter;
      if (WaferModel(wc).num_dies() >= static_cast<std::size_t>(want_dies)) {
        break;
      }
    }
  }
  const WaferModel wafer{wc};
  YieldConfig yc;
  yc.mc.samples = bench::arg_int(argc, argv, "--samples", 12);
  yc.mc.profile = DrawProfile::Batched;
  std::printf("# wafer: %zu dies (%.0f mm), %d MC samples/die\n\n",
              wafer.num_dies(), wc.wafer_diameter_mm, yc.mc.samples);

  // The acceptance-criteria portfolio: >= 4 mixes spanning the three
  // levers.  Knob choices: a low criticality threshold so the tiny
  // core's statistically-critical gates actually select (crit is the
  // per-instance failing-path probability at the worst-corner die), a
  // 64-gate / 16-net area guard.
  const auto make_mix = [](const char* name, bool sizing, bool buffering) {
    PolicyMix m;
    m.name = name;
    m.sizing.enabled = sizing;
    m.sizing.min_crit_prob = 0.02;
    m.sizing.max_upsized = 64;
    m.buffering.enabled = buffering;
    m.buffering.min_crit_prob = 0.02;
    m.buffering.max_nets = 16;
    return m;
  };
  struct MixRun {
    PolicyMix mix;
    const char* key;  ///< BENCH json key prefix
    CompiledPolicy compiled;
    std::unique_ptr<YieldAnalyzer> analyzer;
    YieldReport serial_report;
    double serial_s = 0.0;
  };
  std::vector<MixRun> mixes;
  mixes.push_back({make_mix("vi-only", false, false), "vi_only", {}, {}, {}});
  mixes.push_back(
      {make_mix("sizing+vi", true, false), "sizing_vi", {}, {}, {}});
  mixes.push_back(
      {make_mix("buffering+vi", false, true), "buffering_vi", {}, {}, {}});
  mixes.push_back({make_mix("sizing+buffering+vi", true, true),
                   "sizing_buffering_vi", {}, {}, {}});

  const YieldAnalyzer baseline = YieldAnalyzer::from_flow(flow);
  for (MixRun& m : mixes) {
    m.compiled = compile_policy_mix(m.mix, flow.design(), flow.sta(),
                                    flow.variation(), flow.activity());
    m.analyzer = std::make_unique<YieldAnalyzer>(
        m.compiled.design_or(flow.design()), m.compiled.sta_or(flow.sta()),
        flow.variation(), flow.island_plan(), flow.razor_plan(),
        m.compiled.activity_or(flow.activity()),
        1.0 / flow.post_shifter_clock_ns());
    m.analyzer->set_portfolio(m.compiled.stats);
    std::printf("# mix %-20s: %llu gates upsized, %llu buffers on %llu "
                "nets, area %+.1f um^2\n",
                m.mix.name.c_str(),
                static_cast<unsigned long long>(m.compiled.stats.gates_upsized),
                static_cast<unsigned long long>(
                    m.compiled.stats.buffers_inserted),
                static_cast<unsigned long long>(m.compiled.stats.nets_buffered),
                m.compiled.stats.area_delta_um2);
  }
  std::printf("\n");

  const auto fingerprint = [&](const YieldReport& r) {
    std::ostringstream os;
    write_yield_csv(os, wafer, r);
    write_yield_json(os, r);
    return os.str();
  };
  // Every per-die field, as bit patterns: the identity the zero-strength
  // and portfolio-off gates compare (their CSV/JSON provenance stamps
  // may legitimately differ; the silicon must not).
  const auto die_bits = [](const YieldReport& r) {
    std::ostringstream os;
    os << std::hexfloat;
    for (const DieOutcome& d : r.dies) {
      os << d.die_id << ' ' << d.mc_severity << ' ' << d.mc_samples << ' '
         << static_cast<int>(d.mc_stop) << ' ' << d.detected_severity << ' '
         << d.islands_raised << ' ' << static_cast<int>(d.policy) << ' '
         << d.timing_met << ' ' << d.escalated << ' ' << d.missed_violation
         << ' ' << d.wns_all_low_ns << ' ' << d.wns_final_ns << ' '
         << d.fmax_ghz << ' ' << d.total_mw << ' ' << d.leakage_mw << '\n';
    }
    return os.str();
  };

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  bench::BenchJson out("policy_portfolio");
  out.set("dies", static_cast<double>(wafer.num_dies()));
  out.set("mc_samples_per_die", yc.mc.samples);
  out.set("hardware_threads", hw);

  // ---- gate 1: per-mix byte determinism across thread counts -------------
  for (MixRun& m : mixes) {
    const auto t0 = clock::now();
    m.serial_report = m.analyzer->analyze(wafer, yc, nullptr);
    const std::chrono::duration<double> dt = clock::now() - t0;
    m.serial_s = dt.count();
    const std::string reference = fingerprint(m.serial_report);
    for (unsigned threads : {2u, 4u}) {
      ThreadPool pool(threads);
      const YieldReport r = m.analyzer->analyze(wafer, yc, &pool);
      if (fingerprint(r) != reference) {
        std::printf("DETERMINISM VIOLATION: mix %s differs at %u threads\n",
                    m.mix.name.c_str(), threads);
        return 1;
      }
    }
  }

  // ---- gate 2: shard-partition invariance on compiled netlists -----------
  // The wafer reduced in one shard vs shards of 7 and 19 dies must
  // serialize to byte-identical NDJSON records (identity fields pinned,
  // so the bytes compare the reducer state alone).
  for (MixRun& m : mixes) {
    const std::size_t n = wafer.num_dies();
    const auto shard_record = [&](std::size_t shard_dies) {
      StaEngine engine(m.compiled.sta_or(flow.sta()));
      CompensationController ctrl(m.compiled.design_or(flow.design()), engine,
                                  flow.variation(), flow.island_plan(),
                                  flow.razor_plan());
      YieldAggregate agg;
      for (std::size_t b = 0; b < n; b += shard_dies) {
        const std::size_t e = std::min(n, b + shard_dies);
        YieldAggregate part =
            m.analyzer->analyze_shard(engine, ctrl, wafer, yc, b, e);
        if (b == 0) {
          agg = std::move(part);
        } else {
          agg.merge(part);
        }
      }
      ShardRecord rec;
      rec.job = 0;
      rec.cell = 0;
      rec.wafer = 0;
      rec.die_begin = 0;
      rec.die_end = n;
      rec.agg = std::move(agg);
      return serialize_shard_record(rec);
    };
    const std::string whole = shard_record(n);
    for (const std::size_t shard : {std::size_t{7}, std::size_t{19}}) {
      if (shard_record(shard) != whole) {
        std::printf("DETERMINISM VIOLATION: mix %s shard size %zu diverges "
                    "from the single-shard reduction\n",
                    m.mix.name.c_str(), shard);
        return 1;
      }
    }
  }
  std::printf("determinism: 4 mixes byte-identical across {1,2,4} threads "
              "and shard sizes {7,19,%zu}\n",
              wafer.num_dies());

  // ---- gate 3: portfolio-off bit-identity --------------------------------
  // A pre-portfolio analyzer (from_flow, no portfolio stamp beyond the
  // vi-only default) must reproduce the vi-only mix bit-for-bit: CSV
  // bytes AND every per-die field.
  const YieldReport pre_portfolio = baseline.analyze(wafer, yc, nullptr);
  {
    std::ostringstream a, b;
    write_yield_csv(a, wafer, pre_portfolio);
    write_yield_csv(b, wafer, mixes[0].serial_report);
    if (a.str() != b.str() ||
        die_bits(pre_portfolio) != die_bits(mixes[0].serial_report)) {
      std::printf("PORTFOLIO VIOLATION: vi-only mix differs from the "
                  "pre-portfolio path\n");
      return 1;
    }
  }

  // ---- gate 4: zero-strength transform bit-identity ----------------------
  // Sizing enabled with an unreachable threshold: compile_policy_mix
  // takes the full transform path (criticality MC, netlist copy, fresh
  // StaEngine) yet selects nothing — per-die bits must equal the
  // baseline exactly.
  {
    PolicyMix zero = make_mix("vi-only", true, false);
    zero.sizing.min_crit_prob = 2.0;  // probabilities are <= 1
    const CompiledPolicy cp = compile_policy_mix(
        zero, flow.design(), flow.sta(), flow.variation(), flow.activity());
    if (!cp.transformed() || cp.stats.gates_upsized != 0) {
      std::printf("PORTFOLIO VIOLATION: zero-strength mix was expected to "
                  "transform nothing\n");
      return 1;
    }
    YieldAnalyzer an(*cp.design, *cp.sta, flow.variation(),
                     flow.island_plan(), flow.razor_plan(), *cp.activity,
                     1.0 / flow.post_shifter_clock_ns());
    const YieldReport r = an.analyze(wafer, yc, nullptr);
    if (die_bits(r) != die_bits(pre_portfolio)) {
      std::printf("PORTFOLIO VIOLATION: zero-strength sizing policy changed "
                  "per-die bits vs the pre-portfolio path\n");
      return 1;
    }
    std::printf("zero-strength + portfolio-off bit-identity: ok\n");
  }

  // ---- gate 5: §12 level snapshots on the transformed netlist ------------
  // The sizing+buffering netlist through the same ladder the controller
  // climbs: every level's delta-built snapshot must be byte-identical to
  // a full compute_base of that level's corner assignment.
  const IslandPlan& plan = flow.island_plan();
  const MixRun& all3 = mixes.back();
  if (const int levels = plan.num_islands();
      levels > 0 && all3.compiled.transformed()) {
    StaEngine full_eng(*all3.compiled.sta);
    StaEngine delta_eng(*all3.compiled.sta);
    const auto floats_same = [](const std::vector<float>& a,
                                const std::vector<float>& b) {
      return a.size() == b.size() &&
             std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
    };
    const auto snap_same = [&](const StaEngine::BaseSnapshot& got,
                               const StaEngine::BaseSnapshot& want) {
      return floats_same(got.edge_base, want.edge_base) &&
             floats_same(got.launch_base, want.launch_base) &&
             floats_same(got.slew, want.slew) &&
             got.inst_corner == want.inst_corner;
    };
    delta_eng.compute_base(plan.corners_for_severity(0));
    delta_eng.analyze({});
    bool identical = true;
    for (int k = 1; k <= levels; ++k) {
      delta_eng.recorner_delta(static_cast<DomainId>(k), kVddHigh);
      full_eng.compute_base(plan.corners_for_severity(k));
      identical = identical &&
                  snap_same(delta_eng.snapshot_bases(),
                            full_eng.snapshot_bases());
    }
    if (!identical) {
      std::printf("DETERMINISM VIOLATION: recorner_delta level snapshots "
                  "diverged from full compute_base on the transformed "
                  "netlist\n");
      return 1;
    }
    std::printf("transformed-netlist level snapshots (x%d): byte-identical "
                "to full compute_base\n\n",
                levels);
  }

  // ---- the Pareto table ---------------------------------------------------
  Table pt({"mix", "yield %", "ship power [mW]", "area [um^2]", "d-area",
            "upsized", "buffers", "dies/s"});
  for (const MixRun& m : mixes) {
    const YieldReport& r = m.serial_report;
    double power = 0.0;
    std::size_t shipped = 0;
    for (const DieOutcome& d : r.dies) {
      if (d.policy == TuningPolicy::Discard) continue;
      power += d.total_mw;
      ++shipped;
    }
    const double ship_power = shipped == 0 ? 0.0
                                           : power / static_cast<double>(shipped);
    const double dies_per_s =
        static_cast<double>(wafer.num_dies()) / m.serial_s;
    pt.add_row({m.mix.name, Table::num(r.parametric_yield() * 100.0, 1),
                Table::num(ship_power, 3),
                Table::num(m.compiled.stats.area_um2, 1),
                Table::num(m.compiled.stats.area_delta_um2, 1),
                std::to_string(m.compiled.stats.gates_upsized),
                std::to_string(m.compiled.stats.buffers_inserted),
                Table::num(dies_per_s, 1)});
    char key[96];
    std::snprintf(key, sizeof key, "%s_yield", m.key);
    out.set(key, r.parametric_yield());
    std::snprintf(key, sizeof key, "%s_ship_power_mw", m.key);
    out.set(key, ship_power);
    std::snprintf(key, sizeof key, "%s_area_um2", m.key);
    out.set(key, m.compiled.stats.area_um2);
    std::snprintf(key, sizeof key, "%s_area_delta_um2", m.key);
    out.set(key, m.compiled.stats.area_delta_um2);
    std::snprintf(key, sizeof key, "%s_gates_upsized", m.key);
    out.set(key, static_cast<double>(m.compiled.stats.gates_upsized));
    std::snprintf(key, sizeof key, "%s_buffers", m.key);
    out.set(key, static_cast<double>(m.compiled.stats.buffers_inserted));
    std::snprintf(key, sizeof key, "%s_dies_per_sec", m.key);
    out.set(key, dies_per_s);
  }
  std::printf("%s\n", pt.render().c_str());

  out.write(bench::out_path(argc, argv, "BENCH_policy.json"));
  return 0;
}
