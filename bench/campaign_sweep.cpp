// Campaign sweep: the wafer-campaign layer as a batch workload, plus its
// TWO hard determinism gates (DESIGN.md §15), both of which exit
// non-zero on any byte difference:
//
//   1. Shard/thread invariance: the same sweep run at shard sizes
//      {1, 3} x thread counts {1, 2} must serialize to a byte-identical
//      campaign report — the partition-invariant reducer contract.
//   2. Kill-and-resume: a campaign checkpointed at the halfway job and
//      resumed must reproduce BOTH the uninterrupted report bytes AND
//      the uninterrupted NDJSON stream bytes.
//   3. Both of the above again with the analytical triage tier enabled
//      (DESIGN.md §16), covering the schema-v2 checkpoint's triage
//      tallies across a kill/resume boundary.
//
// Also measures campaign throughput (dies/sec through the full per-die
// MC + compensation pipeline) and records the streaming layer's O(1)
// evidence: the reorder buffer's high-water mark (peak_pending_shards),
// which is bounded by the pool size, never by die count.
//
// Knobs: --samples N (per-die MC budget), --wafers W (wafers per cell),
// --shard N (throughput-run shard size), --out PATH.  Emits
// BENCH_campaign.json.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "campaign/campaign.hpp"
#include "io/campaign_writers.hpp"
#include "util/table.hpp"
#include "vi/flow.hpp"

#include "common.hpp"

namespace {

std::string report_bytes(const vipvt::CampaignReport& report) {
  std::ostringstream os;
  vipvt::write_campaign_json(os, report);
  return os.str();
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vipvt;
  using clock = std::chrono::steady_clock;
  bench::print_header("Campaign sweep",
                      "multi-cell wafer campaigns, determinism + resume gates");

  const int mc_samples = bench::arg_int(argc, argv, "--samples", 8);
  const int wafers_per_cell = bench::arg_int(argc, argv, "--wafers", 2);
  const int shard_dies = bench::arg_int(argc, argv, "--shard", 3);

  // Tiny core, small wafer: the campaign multiplies dies by cells and
  // wafers, so each unit stays small while the ORCHESTRATION — the part
  // this bench gates — runs at full fidelity.
  FlowConfig cfg;
  cfg.vex = VexConfig::tiny();
  cfg.floorplan.target_utilization = 0.55;
  cfg.scenario.sweep_points = 6;
  cfg.scenario.mc.samples = 100;
  cfg.islands.mc_samples = 80;
  cfg.sim_cycles = 150;
  Flow flow(cfg);
  flow.simulate_activity();
  std::printf("# design: %zu instances, clock %.3f ns\n",
              flow.design().num_instances(), flow.nominal_clock_ns());

  CampaignRunner runner;
  runner.add_variant("tiny", flow);

  WaferConfig wc;
  wc.wafer_diameter_mm = 70.0;
  CampaignSpec spec;
  spec.wafer_grids = {wc};
  spec.sigma_scales = {1.0, 1.15};
  spec.policies = {PolicyMix{"full", true, true},
                   PolicyMix{"no-escalation", false, true}};
  spec.mc_samples = {mc_samples};
  spec.wafers_per_cell = wafers_per_cell;
  spec.shard_dies = shard_dies;
  spec.seed = 0xca4fa167;
  spec.base.mc.samples = mc_samples;

  const std::size_t wafer_dies = WaferModel(wc).num_dies();
  const std::size_t cells = runner.expand(spec).size();
  const auto total_dies = static_cast<double>(
      wafer_dies * cells * static_cast<std::size_t>(wafers_per_cell));
  std::printf("# campaign: %zu cells x %d wafers x %zu dies = %.0f die "
              "analyses, %d MC samples/die\n\n",
              cells, wafers_per_cell, wafer_dies, total_dies, mc_samples);

  bench::BenchJson out("campaign_sweep");
  out.set("cells", static_cast<double>(cells));
  out.set("wafers_per_cell", wafers_per_cell);
  out.set("dies_per_wafer", static_cast<double>(wafer_dies));
  out.set("total_dies", total_dies);
  out.set("mc_samples_per_die", mc_samples);

  // ---- gate 1: byte-identical report across shard sizes and threads ------
  const auto t0 = clock::now();
  const CampaignReport serial = runner.run(spec);
  const std::chrono::duration<double> serial_dt = clock::now() - t0;
  const std::string reference = report_bytes(serial);
  std::printf("campaign yield: %.1f %% (%llu/%llu dies ship)\n",
              serial.parametric_yield() * 100.0,
              static_cast<unsigned long long>(serial.shipped_dies()),
              static_cast<unsigned long long>(serial.total_dies()));
  out.set("serial_s", serial_dt.count());
  out.set("serial_dies_per_sec", total_dies / serial_dt.count());
  out.set("parametric_yield", serial.parametric_yield());

  Table t({"shard", "threads", "wall [s]", "dies/sec", "identical"});
  t.add_row({std::to_string(spec.shard_dies), "serial",
             Table::num(serial_dt.count(), 2),
             Table::num(total_dies / serial_dt.count(), 1), "ref"});
  for (const int shard : {1, 3}) {
    for (const unsigned threads : {1u, 2u}) {
      CampaignSpec s = spec;
      s.shard_dies = shard;
      ThreadPool pool(threads);
      CampaignRunOptions opts;
      opts.pool = &pool;
      CampaignRunStats stats;
      opts.stats = &stats;
      const auto t1 = clock::now();
      const CampaignReport report = runner.run(s, opts);
      const std::chrono::duration<double> dt = clock::now() - t1;
      const bool same = report_bytes(report) == reference;
      t.add_row({std::to_string(shard), std::to_string(threads),
                 Table::num(dt.count(), 2),
                 Table::num(total_dies / dt.count(), 1),
                 same ? "yes" : "NO (BUG)"});
      if (!same) {
        std::printf("DETERMINISM VIOLATION: report bytes differ at "
                    "shard_dies=%d threads=%u\n", shard, threads);
        return 1;
      }
      if (shard == 1 && threads == 2) {
        out.set("dies_per_sec_shard1_t2", total_dies / dt.count());
        out.set("peak_pending_shards_t2",
                static_cast<double>(stats.peak_pending_shards));
      }
    }
  }
  std::printf("%s\n", t.render().c_str());

  // ---- gate 2: kill-and-resume byte identity -----------------------------
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string full_path = (tmp / "vipvt_campaign_full.ndjson").string();
  const std::string cut_path = (tmp / "vipvt_campaign_cut.ndjson").string();

  CampaignRunOptions stream_opts;
  stream_opts.stream_path = full_path;
  CampaignRunStats full_stats;
  stream_opts.stats = &full_stats;
  const CampaignReport uninterrupted = runner.run(spec, stream_opts);
  const std::size_t kill_at = full_stats.jobs_total / 2;

  CampaignRunOptions cut_opts;
  cut_opts.stream_path = cut_path;
  cut_opts.stop_after_jobs = kill_at;
  (void)runner.run(spec, cut_opts);

  ThreadPool resume_pool(2);
  CampaignRunOptions resume_opts;
  resume_opts.stream_path = cut_path;
  resume_opts.resume = true;
  resume_opts.pool = &resume_pool;
  CampaignRunStats resume_stats;
  resume_opts.stats = &resume_stats;
  const CampaignReport resumed = runner.run(spec, resume_opts);

  const bool report_same = report_bytes(resumed) == report_bytes(uninterrupted);
  const bool stream_same = file_bytes(cut_path) == file_bytes(full_path);
  std::printf("kill-and-resume: %zu jobs, killed at %zu, resumed %zu "
              "-> report %s, stream %s\n\n",
              full_stats.jobs_total, kill_at, resume_stats.jobs_run,
              report_same ? "byte-identical" : "DIVERGED",
              stream_same ? "byte-identical" : "DIVERGED");
  std::filesystem::remove(full_path);
  std::filesystem::remove(cut_path);
  if (!report_same || !stream_same) {
    std::printf("DETERMINISM VIOLATION: resumed campaign diverged from the "
                "uninterrupted run\n");
    return 1;
  }
  out.set("resume_jobs_total", static_cast<double>(full_stats.jobs_total));
  out.set("resume_jobs_resumed", static_cast<double>(resume_stats.jobs_resumed));

  // ---- gate 3: determinism + resume with analytical triage on ------------
  // The same two contracts with the triage tier enabled (DESIGN.md §16):
  // the per-slot screen is a pure function of (variant, geometry, cfg),
  // so shard size, thread count, and a kill/resume boundary must not
  // change a single byte of the report or the NDJSON stream — including
  // the triage_analytical / triage_mc_fallback tallies the checkpoint
  // now carries (schema v2).
  {
    CampaignSpec ts = spec;
    ts.base.triage.enabled = true;
    const auto t2 = clock::now();
    const CampaignReport triage_serial = runner.run(ts);
    const std::chrono::duration<double> triage_dt = clock::now() - t2;
    const std::string triage_reference = report_bytes(triage_serial);
    out.set("triage_serial_s", triage_dt.count());
    out.set("triage_dies_per_sec", total_dies / triage_dt.count());
    for (const int shard : {1, 3}) {
      for (const unsigned threads : {1u, 2u}) {
        CampaignSpec s = ts;
        s.shard_dies = shard;
        ThreadPool pool(threads);
        CampaignRunOptions opts;
        opts.pool = &pool;
        if (report_bytes(runner.run(s, opts)) != triage_reference) {
          std::printf("DETERMINISM VIOLATION: triaged report bytes differ "
                      "at shard_dies=%d threads=%u\n", shard, threads);
          return 1;
        }
      }
    }

    const std::string tfull = (tmp / "vipvt_campaign_tfull.ndjson").string();
    const std::string tcut = (tmp / "vipvt_campaign_tcut.ndjson").string();
    CampaignRunOptions tfull_opts;
    tfull_opts.stream_path = tfull;
    CampaignRunStats tfull_stats;
    tfull_opts.stats = &tfull_stats;
    const CampaignReport tuninterrupted = runner.run(ts, tfull_opts);
    CampaignRunOptions tcut_opts;
    tcut_opts.stream_path = tcut;
    tcut_opts.stop_after_jobs = tfull_stats.jobs_total / 2;
    (void)runner.run(ts, tcut_opts);
    CampaignRunOptions tresume_opts;
    tresume_opts.stream_path = tcut;
    tresume_opts.resume = true;
    const CampaignReport tresumed = runner.run(ts, tresume_opts);
    const bool t_report_same =
        report_bytes(tresumed) == report_bytes(tuninterrupted);
    const bool t_stream_same = file_bytes(tcut) == file_bytes(tfull);
    std::printf("triage-enabled gates: shard/thread invariance ok, resume "
                "-> report %s, stream %s (%.1fx campaign speedup vs full "
                "MC)\n\n",
                t_report_same ? "byte-identical" : "DIVERGED",
                t_stream_same ? "byte-identical" : "DIVERGED",
                serial_dt.count() / triage_dt.count());
    std::filesystem::remove(tfull);
    std::filesystem::remove(tcut);
    if (!t_report_same || !t_stream_same) {
      std::printf("DETERMINISM VIOLATION: triaged campaign diverged across "
                  "a kill/resume boundary\n");
      return 1;
    }
    out.set("triage_speedup_vs_full_mc", serial_dt.count() / triage_dt.count());
  }

  // ---- streaming O(1) evidence -------------------------------------------
  // The campaign's transient state is the reorder buffer; its high-water
  // mark tracks the pool's out-of-order window, not the die count.  A
  // 4-thread run over every die of the sweep must keep the buffer within
  // a few shards of the pool size.
  {
    ThreadPool pool(4);
    CampaignSpec s = spec;
    s.shard_dies = 1;  // worst case: one pending slot per die
    CampaignRunOptions opts;
    opts.pool = &pool;
    CampaignRunStats stats;
    opts.stats = &stats;
    (void)runner.run(s, opts);
    std::printf("reorder buffer high-water mark at 4 threads, shard=1: "
                "%zu pending shards over %.0f dies (O(1) in dies)\n",
                stats.peak_pending_shards, total_dies);
    out.set("peak_pending_shards_t4_shard1",
            static_cast<double>(stats.peak_pending_shards));
    if (stats.peak_pending_shards > 64) {
      std::printf("STREAMING VIOLATION: reorder buffer grew far beyond the "
                  "pool's out-of-order window\n");
      return 1;
    }
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  out.set("hardware_threads", hw);
  out.write(bench::out_path(argc, argv, "BENCH_campaign.json"));
  return 0;
}
