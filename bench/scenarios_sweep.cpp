// §4.4 reproduction: timing-violation scenarios along the chip diagonal
// and SSTA-driven Razor sensor planning.  Paper findings: moving the core
// from the lower-left (A) to the upper-right (D), the number of violating
// stages drops 3 -> 2 -> 1 -> 0; only the flip-flops fed by paths that
// can become critical need Razor sensors (12 such paths for EX at A).

#include <cstdio>

#include "util/table.hpp"
#include "vi/razor.hpp"
#include "vi/scenario.hpp"

#include "common.hpp"

int main() {
  using namespace vipvt;
  bench::print_header("Scenario sweep (§4.4)",
                      "violation scenarios & sensor planning");

  auto flow = bench::make_flow(SliceDir::Vertical, /*through_activity=*/false);
  flow->characterize();
  const ScenarioSet& sc = flow->scenarios();

  Table t({"diagonal t", "core origin [mm]", "severity", "DC", "EX", "WB"});
  for (const auto& p : sc.sweep) {
    auto cell = [&](PipeStage s) {
      const auto& sd = p.analysis.stage(s);
      if (!sd.present) return std::string("-");
      return Table::num(sd.three_sigma_slack(), 3) +
             (sd.violates() ? " *" : "");
    };
    t.add_row({Table::num(p.diagonal_t, 2),
               Table::num(p.location.core_origin_mm.x, 2),
               std::to_string(p.severity), cell(PipeStage::Decode),
               cell(PipeStage::Execute), cell(PipeStage::WriteBack)});
  }
  std::printf("%s(3-sigma stage slack in ns; '*' = violates)\n\n",
              t.render().c_str());

  std::printf("distinct severities found: ");
  for (std::size_t k = 0; k < sc.by_severity.size(); ++k) {
    if (sc.by_severity[k].has_value()) {
      std::printf("%zu (t=%.2f)  ", k + 1, sc.by_severity[k]->diagonal_t);
    }
  }
  std::printf("\npaper: A=3 violating stages, B=2, C=1, D=0 — monotone along "
              "the diagonal.\n\n");

  // Razor sensor planning at the worst location.
  MonteCarloSsta mc(flow->design(), flow->sta(), flow->variation());
  McConfig mcc;
  mcc.samples = 500;
  const McResult worst = mc.run(DieLocation::point('A'), mcc);
  const RazorPlan plan = plan_razor_sensors(flow->sta(), worst);

  const std::size_t flops = flow->design().num_flops();
  Table rt({"stage", "sensored flops", "stage flops share"});
  std::array<std::size_t, kNumPipeStages> stage_flops{};
  for (const auto& inst : flow->design().instances()) {
    if (flow->design().lib().cell(inst.cell).is_sequential()) {
      ++stage_flops[static_cast<std::size_t>(inst.stage)];
    }
  }
  for (PipeStage s : {PipeStage::Decode, PipeStage::Execute,
                      PipeStage::WriteBack, PipeStage::Fetch}) {
    const auto k = static_cast<std::size_t>(s);
    rt.add_row({stage_name(s), std::to_string(plan.per_stage[k]),
                stage_flops[k] ? Table::pct(double(plan.per_stage[k]) /
                                            double(stage_flops[k]), 1)
                               : "-"});
  }
  std::printf("%s\n", rt.render().c_str());
  std::printf("sensors: %zu of %zu flops (%s) need Razor shadow latches — "
              "the SSTA-driven saving of §4.4\n"
              "(paper: e.g. 12 EX paths can become critical at point A, so "
              "only their capture flops are sensored).\n",
              plan.total(), flops,
              Table::pct(double(plan.total()) / double(flops), 1).c_str());
  return 0;
}
