// Table 1 reproduction: area and power breakdown of the VEX core by
// functional unit, under the FIR workload.  The paper reports (area %,
// power %): Register File 53/64.1, Execute 26.3/16.9, Decode 13.6/8.6,
// Write Back 0.04/0.1, Fetch 0.09/0.03, Pipe Regs 6.9/10.3.

#include <cstdio>
#include <map>
#include <string>

#include "power/power.hpp"
#include "util/table.hpp"

#include "common.hpp"

namespace {

using namespace vipvt;

/// Maps a unit path to one of the paper's Table-1 groups.
std::string group_of(const std::string& unit) {
  auto starts = [&](const char* p) { return unit.rfind(p, 0) == 0; };
  if (starts("regfile")) return "Register File";
  if (starts("execute")) return "Execute";
  if (starts("decode") || starts("branch")) return "Decode";
  if (starts("commit")) return "Write Back";
  if (starts("fetch")) return "Fetch";
  if (starts("pipe")) return "Pipe Regs";
  if (starts("level_shifters")) return "Level Shifters";
  return "Other";
}

}  // namespace

int main() {
  using namespace vipvt;
  bench::print_header("Table 1", "area and power breakdown for the VEX core");

  auto flow = bench::make_flow(SliceDir::Vertical, /*through_activity=*/true);
  const Design& d = flow->design();

  // Area and power per group (nominal all-low supply, FIR activity).
  const PowerBreakdown p = flow->power_all_low(DieLocation::point('A'));
  std::map<std::string, double> area, power;
  for (std::size_t u = 0; u < d.unit_names().size(); ++u) {
    const std::string g = group_of(d.unit_names()[u]);
    area[g] += d.unit_area(static_cast<UnitId>(u));
    power[g] += p.per_unit_mw[u];
  }
  const double total_area = d.total_area();
  const double total_power = p.total_mw();

  std::printf("total: area %.0f um^2, power %.3f mW at %.1f MHz "
              "(leakage share %s)\n\n",
              total_area, total_power, 1e3 / flow->post_shifter_clock_ns(),
              Table::pct(p.leakage_mw / total_power, 2).c_str());

  struct PaperRow {
    const char* group;
    double area_pct;
    double power_pct;
  };
  const PaperRow paper[] = {
      {"Register File", 53.0, 64.13}, {"Execute", 26.34, 16.89},
      {"Decode", 13.63, 8.57},        {"Write Back", 0.04, 0.1},
      {"Fetch", 0.09, 0.03},          {"Pipe Regs", 6.9, 10.28},
  };

  Table t({"unit", "area % (ours)", "area % (paper)", "power % (ours)",
           "power % (paper)"});
  for (const auto& row : paper) {
    t.add_row({row.group, Table::pct(area[row.group] / total_area, 2),
               Table::num(row.area_pct, 2) + "%",
               Table::pct(power[row.group] / total_power, 2),
               Table::num(row.power_pct, 2) + "%"});
  }
  for (const auto& [g, a] : area) {
    bool in_paper = false;
    for (const auto& row : paper) in_paper |= (g == row.group);
    if (in_paper) continue;
    t.add_row({g, Table::pct(a / total_area, 2), "-",
               Table::pct(power[g] / total_power, 2), "-"});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("shape check: the fully synthesized register file dominates "
              "both area and power; Execute is second; Fetch/Write-Back\n"
              "logic is small.  Our Write Back carries the commit units "
              "(saturation/flags), which the paper's RTL kept minimal;\n"
              "the Level Shifters row exists because this design already "
              "contains the voltage-island shifters.\n");
  return 0;
}
