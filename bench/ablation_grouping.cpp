// Ablation bench (our extension, motivated by §3/§6 "further cell
// grouping strategies" future work): how the design knobs move the
// results.
//   A. slicing direction x sizing margin -> island sizes, shifter count;
//   B. Razor sensor probability threshold -> sensor count vs detection
//      coverage on virtual silicon;
//   C. compensation outcomes across the diagonal (virtual-silicon yield).

#include <cstdio>

#include "util/table.hpp"
#include "vi/compensate.hpp"
#include "vi/logic_islands.hpp"

#include "common.hpp"

int main() {
  using namespace vipvt;
  bench::print_header("Ablation", "grouping/margin/sensor design-space sweeps");

  // --- A: direction x margin ------------------------------------------------
  std::printf("\nA. slicing direction x sizing margin\n");
  Table ta({"direction", "margin [frac of clk]", "island cells",
            "shifters", "LS area share", "perf degradation"});
  for (SliceDir dir : {SliceDir::Horizontal, SliceDir::Vertical}) {
    for (double margin : {0.004, 0.008, 0.02}) {
      FlowConfig cfg = bench::paper_flow_config(dir);
      cfg.islands.slack_margin_fraction = margin;
      Flow flow(cfg);
      flow.insert_shifters();
      ta.add_row({slice_dir_name(dir), Table::num(margin, 3),
                  std::to_string(flow.island_plan().total_island_cells()),
                  std::to_string(flow.shifter_report().inserted),
                  Table::pct(flow.shifter_report().area_fraction, 1),
                  Table::pct(flow.shifter_perf_degradation(), 1)});
    }
  }
  std::printf("%s(bigger margin -> bigger islands -> more shifters: the "
              "robustness/overhead trade)\n\n",
              ta.render().c_str());

  // --- B & C on one final vertical flow --------------------------------------
  auto flow = bench::make_flow(SliceDir::Vertical, /*through_activity=*/false);
  flow->plan_sensors();

  std::printf("B. Razor sensor threshold sweep (worst-location MC)\n");
  Table tb({"crit-prob threshold", "sensors", "share of flops"});
  const auto& mc_worst = flow->worst_case_mc();
  const double flops = static_cast<double>(flow->design().num_flops());
  for (double thr : {0.0, 0.01, 0.05, 0.20, 0.50}) {
    RazorConfig rc;
    rc.crit_prob_threshold = thr;
    const RazorPlan plan = plan_razor_sensors(flow->sta(), mc_worst, rc);
    tb.add_row({Table::num(thr, 2), std::to_string(plan.total()),
                Table::pct(static_cast<double>(plan.total()) / flops, 2)});
  }
  std::printf("%s(the paper's insight: SSTA results bound the sensored set "
              "far below all-flops)\n\n",
              tb.render().c_str());

  std::printf("C. virtual-silicon compensation outcomes (12 chips/point)\n");
  CompensationController ctrl = flow->make_controller();
  Table tc({"location", "violating chips", "all detected", "all fixed",
            "avg islands raised", "escalations"});
  Rng chip_rng(0xc41b5);
  for (char p : {'A', 'B', 'C', 'D'}) {
    const DieLocation loc = DieLocation::point(p);
    int violating = 0, detected = 0, fixed = 0, escalations = 0;
    double islands = 0.0;
    const int kChips = 12;
    for (int c = 0; c < kChips; ++c) {
      const VirtualChip chip =
          fabricate_chip(flow->design(), flow->variation(), loc, chip_rng);
      const CompensationOutcome out = ctrl.compensate(chip);
      if (out.wns_before < 0.0) {
        ++violating;
        detected += (out.detected_severity > 0);
      }
      fixed += out.timing_met;
      islands += out.islands_raised;
      escalations += out.escalated;
    }
    tc.add_row({std::string(1, p), std::to_string(violating),
                violating ? (detected == violating ? "yes" : "NO") : "-",
                fixed == kChips ? "yes" : "NO",
                Table::num(islands / kChips, 2),
                std::to_string(escalations)});
  }
  std::printf("%s(post-silicon test: sensors detect, islands fix; islands "
              "raised falls off toward the fast corner)\n\n",
              tc.render().c_str());

  // --- D: slice-based vs logic-aware islands (the paper's future work) ----
  std::printf("D. slice-based vs logic-aware island generation\n");
  {
    FlowConfig cfg = bench::paper_flow_config(SliceDir::Vertical);
    cfg.scenario.mc.samples = 150;
    Flow f2(cfg);
    f2.characterize();
    std::vector<DieLocation> locs;
    std::optional<DieLocation> fb;
    for (std::size_t k = f2.scenarios().by_severity.size(); k-- > 0;) {
      if (f2.scenarios().by_severity[k].has_value()) {
        fb = f2.scenarios().by_severity[k]->location;
      }
    }
    for (const auto& sp : f2.scenarios().by_severity) {
      if (sp.has_value()) {
        locs.push_back(sp->location);
        fb = sp->location;
      } else if (fb.has_value()) {
        locs.push_back(*fb);
      }
    }
    auto count_crossings = [&](const IslandPlan& plan) {
      std::size_t crossings = 0;
      const Design& d = f2.design();
      for (NetId n = 0; n < d.num_nets(); ++n) {
        const Net& net = d.net(n);
        if (net.is_clock) continue;
        const int drv =
            net.has_cell_driver()
                ? plan.domain_rank(d.instance(net.driver.inst).domain)
                : 0;
        std::array<bool, 256> seen{};
        for (const auto& sink : net.sinks) {
          const DomainId dom = d.instance(sink.inst).domain;
          if (plan.domain_rank(dom) > drv && !seen[dom]) {
            seen[dom] = true;
            ++crossings;
          }
        }
      }
      return crossings;
    };

    LogicIslandConfig lcfg;
    lcfg.mc_samples = 100;
    LogicIslandGenerator lgen(f2.design(), f2.sta(), f2.variation(), lcfg);
    const IslandPlan logic_plan = lgen.generate(locs);
    const std::size_t logic_cells = logic_plan.total_island_cells();
    const std::size_t logic_cross = count_crossings(logic_plan);

    IslandConfig scfg = cfg.islands;
    IslandGenerator sgen(f2.design(), f2.floorplan(), f2.sta(), f2.variation(),
                         scfg);
    const IslandPlan slice_plan = sgen.generate(locs);
    const std::size_t slice_cells = slice_plan.total_island_cells();
    const std::size_t slice_cross = count_crossings(slice_plan);

    Table td({"style", "island cells", "LS crossings", "crossings/cell"});
    td.add_row({"slices (paper)", std::to_string(slice_cells),
                std::to_string(slice_cross),
                Table::num(double(slice_cross) / double(slice_cells), 3)});
    td.add_row({"logic-aware (future work)", std::to_string(logic_cells),
                std::to_string(logic_cross),
                Table::num(double(logic_cross) / double(logic_cells), 3)});
    std::printf("%s(logic-driven grouping boosts far fewer cells but "
                "fragments the domains — the level-shifter bill per boosted "
                "cell explodes,\nwhich is the paper's §4.5 argument for "
                "physically-contiguous slices)\n\n",
                td.render().c_str());
  }

  // --- E: chip-wide AVS vs ABB (the paper's §1 motivation) -----------------
  std::printf("E. chip-wide supply adaptation vs body bias for the same "
              "speedup\n");
  {
    const CharParams& cp = flow->lib().char_params();
    const double shift = cp.abb_shift_matching_avs();
    Table te({"knob", "speedup", "dynamic power", "leakage power"});
    te.add_row({"AVS 1.0->1.2 V",
                Table::pct(1.0 - cp.high_vdd_speed_ratio(), 1),
                "x" + Table::num(cp.dynamic_factor(cp.vdd_high), 2),
                "x" + Table::num(cp.leakage_factor(cp.lgate_nom, cp.vdd_high), 2)});
    te.add_row({"ABB (FBB " + Table::num(shift * 1000, 0) + " mV)",
                Table::pct(1.0 - cp.abb_delay_ratio(shift), 1), "x1.00",
                "x" + Table::num(cp.abb_leakage_ratio(shift), 2)});
    std::printf("%s(paper §1, after Tschanz/Humenay: matching the AVS "
                "speedup with body bias costs far more leakage —\n"
                "the reason the methodology adapts supply, not body "
                "bias)\n",
                te.render().c_str());
  }
  return 0;
}
