// Fig. 3 reproduction: the per-pipeline-stage critical-path slack
// distributions at the worst-case die location (point A), from Monte
// Carlo SSTA, fitted to normals with the chi-squared test.  Paper
// findings to reproduce in shape:
//   * all of DC/EX/WB violate the slack-met condition at point A;
//   * EX is the most-shifted (global critical) stage with the LOWEST
//     variance (many near-critical paths -> max statistics);
//   * WB has the LARGEST variance (few dominant paths);
//   * the EX 3-sigma point implies a ~10 % fmax degradation.

#include <cstdio>

#include "util/stats.hpp"
#include "util/table.hpp"
#include "variation/mc_ssta.hpp"

#include "common.hpp"

int main() {
  using namespace vipvt;
  bench::print_header("Fig. 3", "critical path distribution per stage @ point A");

  auto flow = bench::make_flow(SliceDir::Vertical, /*through_activity=*/false);
  // Pre-island netlist characterization, as in the paper's methodology.
  MonteCarloSsta mc(flow->design(), flow->sta(), flow->variation());
  McConfig cfg;
  cfg.samples = 800;
  const McResult res = mc.run(DieLocation::point('A'), cfg);

  const double clock = flow->nominal_clock_ns();
  Table t({"stage", "mean slack [ns]", "sigma [ns]", "3sigma slack [ns]",
           "violates", "chi2 p-value", "normal fit"});
  for (PipeStage s :
       {PipeStage::Decode, PipeStage::Execute, PipeStage::WriteBack}) {
    const auto& sd = res.stage(s);
    if (!sd.present) continue;
    t.add_row({stage_name(s), Table::num(sd.fit.mean, 3),
               Table::num(sd.fit.stddev, 3),
               Table::num(sd.three_sigma_slack(), 3),
               sd.violates() ? "yes" : "no", Table::num(sd.fit.p_value, 3),
               sd.fit.accepted ? "accepted@95%" : "not rejected loosely"});
  }
  std::printf("%s\n", t.render().c_str());

  // ASCII densities (the figure itself).
  for (PipeStage s :
       {PipeStage::Execute, PipeStage::Decode, PipeStage::WriteBack}) {
    const auto& sd = res.stage(s);
    if (!sd.present) continue;
    Histogram h(sd.min_slack - 0.02, sd.max_slack + 0.02, 24);
    for (double x : sd.samples) h.add(x);
    std::printf("-- %s stage slack density (vertical line at 0 = slack-met)\n%s\n",
                stage_name(s), h.ascii(48).c_str());
  }

  // fmax degradation from the EX 3-sigma point.
  const auto& ex = res.stage(PipeStage::Execute);
  const double worst_period = clock - ex.three_sigma_slack();
  std::printf("EX 3-sigma slack %.4f ns -> worst-case clock %.3f ns vs "
              "nominal %.3f ns: %.1f %% frequency degradation "
              "(paper: ~10 %% at 3-sigma, 0.0435 ns on a 3.9 ns clock)\n",
              ex.three_sigma_slack(), worst_period, clock,
              (worst_period / clock - 1.0) * 100.0);

  // Variance ordering.
  const auto& dc = res.stage(PipeStage::Decode);
  const auto& wb = res.stage(PipeStage::WriteBack);
  std::printf("variance ordering: sigma(EX)=%.3f %s sigma(DC)=%.3f, "
              "sigma(WB)=%.3f largest: %s (paper: EX lowest, WB largest)\n",
              ex.fit.stddev, ex.fit.stddev < dc.fit.stddev ? "<" : ">=",
              dc.fit.stddev, wb.fit.stddev,
              (wb.fit.stddev >= dc.fit.stddev && wb.fit.stddev >= ex.fit.stddev)
                  ? "WB"
                  : "not WB");
  return 0;
}
