// google-benchmark microkernels for the engines the reproduction runs in
// its inner loops: annotated STA passes, Monte-Carlo factor draws, logic
// simulation cycles, power rollups, placement, and island trials.  These
// bound the cost of the methodology itself (the paper's design-time
// overhead argument).

#include <benchmark/benchmark.h>

#include <memory>

#include "netlist/vex.hpp"
#include "placement/placer.hpp"
#include "power/power.hpp"
#include "sim/stimulus.hpp"
#include "timing/recovery.hpp"
#include "timing/sta.hpp"
#include "variation/mc_ssta.hpp"

namespace {

using namespace vipvt;

/// Shared lazily-built full-size context (building per-benchmark would
/// dominate the timings).
struct Context {
  Context() : lib(make_st65lp_like()), design(make_vex_design(lib, VexConfig{})),
              fp(Floorplan::for_design(design, FloorplanConfig{})), db(fp) {
    place_design(design, fp, PlacerConfig{}, db);
    sta = std::make_unique<StaEngine>(design, StaOptions{});
    sta->set_clock_period(sta->min_period() * 1.04);
    recover_power(design, *sta, RecoveryConfig{});
    field = std::make_unique<ExposureField>(
        ExposureField::scaled_65nm(lib.char_params()));
    model = std::make_unique<VariationModel>(lib.char_params(), *field);
  }
  Library lib;
  Design design;
  Floorplan fp;
  PlacementDb db;
  std::unique_ptr<StaEngine> sta;
  std::unique_ptr<ExposureField> field;
  std::unique_ptr<VariationModel> model;
};

Context& ctx() {
  static Context c;
  return c;
}

void BM_StaAnalyzeNominal(benchmark::State& state) {
  auto& c = ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.sta->analyze());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(c.sta->num_edges()));
}
BENCHMARK(BM_StaAnalyzeNominal)->Unit(benchmark::kMillisecond);

void BM_StaComputeBase(benchmark::State& state) {
  auto& c = ctx();
  for (auto _ : state) {
    c.sta->compute_base_all_low();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(c.sta->num_edges()));
}
BENCHMARK(BM_StaComputeBase)->Unit(benchmark::kMillisecond);

void BM_McSample(benchmark::State& state) {
  auto& c = ctx();
  Rng rng(77);
  std::vector<double> factors;
  const DieLocation loc = DieLocation::point('A');
  for (auto _ : state) {
    c.model->draw_factors(c.design, *c.sta, loc, rng, factors);
    benchmark::DoNotOptimize(c.sta->analyze(factors));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(c.design.num_instances()));
}
BENCHMARK(BM_McSample)->Unit(benchmark::kMillisecond);

void BM_InstanceSlack(benchmark::State& state) {
  auto& c = ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.sta->instance_slack());
  }
}
BENCHMARK(BM_InstanceSlack)->Unit(benchmark::kMillisecond);

void BM_SimCycleFir(benchmark::State& state) {
  auto& c = ctx();
  LogicSimulator sim(c.design);
  FirStimulus stim(c.design, VexConfig{}, 3);
  for (auto _ : state) {
    stim.step(sim);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(c.design.num_instances()));
}
BENCHMARK(BM_SimCycleFir)->Unit(benchmark::kMillisecond);

void BM_PowerRollup(benchmark::State& state) {
  auto& c = ctx();
  const ActivityDb activity = ActivityDb::uniform(c.design, 0.12);
  PowerEngine engine(c.design, activity);
  PowerConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.compute({}, cfg));
  }
}
BENCHMARK(BM_PowerRollup)->Unit(benchmark::kMillisecond);

void BM_PlaceFullCore(benchmark::State& state) {
  Library lib = make_st65lp_like();
  for (auto _ : state) {
    state.PauseTiming();
    Design d = make_vex_design(lib, VexConfig{});
    Floorplan fp = Floorplan::for_design(d, FloorplanConfig{});
    PlacementDb db(fp);
    state.ResumeTiming();
    benchmark::DoNotOptimize(place_design(d, fp, PlacerConfig{}, db));
  }
}
BENCHMARK(BM_PlaceFullCore)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_BuildVexNetlist(benchmark::State& state) {
  Library lib = make_st65lp_like();
  for (auto _ : state) {
    Design d = make_vex_design(lib, VexConfig{});
    benchmark::DoNotOptimize(d.num_instances());
  }
}
BENCHMARK(BM_BuildVexNetlist)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
