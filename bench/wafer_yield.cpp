// Wafer-scale yield throughput: the virtual fab as a batch workload.
// Runs the full 300 mm wafer (~300 dies) through per-die MC SSTA +
// compensation-policy selection serially and on thread pools of
// increasing size, reporting dies/sec and the speedup trajectory, and
// verifying on the way that every configuration produced the identical
// report (the determinism-under-parallelism contract).  Thread counts
// beyond hardware_concurrency() still run the determinism check but are
// recorded under oversub_* keys and never reported as speedups.  A
// second sweep repeats the run under the Batched draw profile (bulk
// normals + factor tables in the per-die MC), which must be identical
// across thread counts WITHIN the profile.  A third sweep turns the
// analytical triage tier on (DESIGN.md §16) and hard-gates on its
// contract: non-MC outputs bit-identical to the triage-off run, and the
// analytic severity verdict agreeing with full MC within the confidence
// band's stated error rate — exit 1 beyond either bound.  A fourth
// sweep runs the stage-macromodel tier (DESIGN.md §19) under the same
// gates, plus bit-identity of restricted recharacterization up the
// escalation ladder against characterizing from scratch.
//
// Emits BENCH_wafer.json with dies/sec and speedups for trajectory
// tracking across PRs.
//
// Knobs: --samples N (per-die MC budget, default 24), --dies N (use the
// smallest wafer with at least N dies instead of the 300 mm default),
// --wafers W (fabricate W wafers per configuration, each on its own
// substream seed), --out PATH.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "io/yield_writers.hpp"
#include "ssta/canonical.hpp"
#include "ssta/macromodel.hpp"
#include "timing/sta.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "vi/islands.hpp"
#include "yield/wafer.hpp"
#include "yield/yield.hpp"

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace vipvt;
  using clock = std::chrono::steady_clock;
  bench::print_header("Wafer yield", "virtual fab throughput, serial vs pool");

  // The tiny core keeps the bench in seconds; the workload SHAPE (per-die
  // MC + policy escalation, shared read-only design/model) is identical
  // to the full VEX, so the scaling numbers transfer.
  FlowConfig cfg;
  cfg.vex = VexConfig::tiny();
  cfg.floorplan.target_utilization = 0.55;
  cfg.scenario.sweep_points = 6;
  cfg.scenario.mc.samples = 100;
  cfg.islands.mc_samples = 80;
  cfg.sim_cycles = 150;
  Flow flow(cfg);
  flow.simulate_activity();
  std::printf("# design: %zu instances, clock %.3f ns\n",
              flow.design().num_instances(), flow.nominal_clock_ns());

  // Wafer geometry: the 300 mm default, or (--dies N) the smallest wafer
  // that fits at least N dies — a direct workload-size dial.
  WaferConfig wc;  // 300 mm, 28 mm field, 14 mm die
  const int want_dies = bench::arg_int(argc, argv, "--dies", 0);
  if (want_dies > 0) {
    for (double diameter = 50.0; diameter <= 450.0; diameter += 10.0) {
      wc.wafer_diameter_mm = diameter;
      if (WaferModel(wc).num_dies() >= static_cast<std::size_t>(want_dies)) {
        break;
      }
    }
  }
  const WaferModel wafer{wc};
  const int num_wafers = std::max(1, bench::arg_int(argc, argv, "--wafers", 1));
  YieldConfig yc;
  yc.mc.samples = bench::arg_int(argc, argv, "--samples", 24);
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(flow);
  std::printf("# wafer: %zu dies (%.0f mm) x %d wafer(s), %d MC samples/die\n\n",
              wafer.num_dies(), wc.wafer_diameter_mm, num_wafers,
              yc.mc.samples);

  // Each wafer of a multi-wafer run gets its own substream seed (the
  // same derivation the campaign layer uses); --wafers 1 keeps the
  // historical single-wafer bytes.  The base config (profile, triage)
  // comes from the caller so every section — scalar, batched, triaged —
  // runs through the same timed loop.
  const auto run = [&](const YieldConfig& base_cfg, ThreadPool* pool) {
    YieldConfig cfg = base_cfg;
    std::vector<YieldReport> reports;
    reports.reserve(static_cast<std::size_t>(num_wafers));
    const auto t0 = clock::now();
    for (int w = 0; w < num_wafers; ++w) {
      cfg.seed = num_wafers > 1
                     ? substream_seed(yc.seed, static_cast<std::uint64_t>(w))
                     : yc.seed;
      reports.push_back(analyzer.analyze(wafer, cfg, pool));
    }
    const std::chrono::duration<double> dt = clock::now() - t0;
    return std::pair{std::move(reports), dt.count()};
  };
  const auto with_profile = [&](DrawProfile profile) {
    YieldConfig cfg = yc;
    cfg.mc.profile = profile;
    return cfg;
  };

  // Serial reference (no pool involved at all).
  auto [serial_reports, serial_s] = run(with_profile(DrawProfile::Scalar),
                                        nullptr);
  const YieldReport& serial_report = serial_reports.front();
  const auto dies =
      static_cast<double>(wafer.num_dies()) * static_cast<double>(num_wafers);

  const auto fingerprint = [&](const std::vector<YieldReport>& rs) {
    std::ostringstream os;
    for (const YieldReport& r : rs) {
      write_yield_csv(os, wafer, r);
      write_yield_json(os, r);
    }
    return os.str();
  };
  const std::string reference = fingerprint(serial_reports);

  Table t({"threads", "wall [s]", "dies/sec", "speedup", "identical"});
  t.add_row({"serial", Table::num(serial_s, 2), Table::num(dies / serial_s, 1),
             Table::num(1.0, 2), "ref"});

  bench::BenchJson out("wafer_yield");
  out.set("dies", dies);
  out.set("wafers", num_wafers);
  out.set("mc_samples_per_die", yc.mc.samples);
  out.set("serial_s", serial_s);
  out.set("serial_dies_per_sec", dies / serial_s);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  double speedup_at_4 = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const bool oversub = threads > hw;
    ThreadPool pool(threads);
    auto [report, secs] = run(with_profile(DrawProfile::Scalar), &pool);
    const bool same = fingerprint(report) == reference;
    const double speedup = serial_s / secs;
    if (threads == 4 && !oversub) speedup_at_4 = speedup;
    char label[32];
    std::snprintf(label, sizeof label, "%u%s", threads,
                  oversub ? " (oversub)" : "");
    t.add_row({label, Table::num(secs, 2), Table::num(dies / secs, 1),
               oversub ? "-" : Table::num(speedup, 2),
               same ? "yes" : "NO (BUG)"});
    char key[64];
    if (oversub) {
      std::snprintf(key, sizeof key, "oversub_t%u_dies_per_sec", threads);
      out.set(key, dies / secs);
    } else {
      std::snprintf(key, sizeof key, "dies_per_sec_t%u", threads);
      out.set(key, dies / secs);
      std::snprintf(key, sizeof key, "speedup_t%u", threads);
      out.set(key, speedup);
    }
    if (!same) {
      std::printf("DETERMINISM VIOLATION at %u threads\n", threads);
      return 1;
    }
  }
  std::printf("%s\n", t.render().c_str());

  // The same wafer under the Batched draw profile: the per-die MC draws
  // its factors through the bulk engine.  The report is bit-identical
  // across thread counts within the profile (its own contract; the
  // per-sample stream differs from Scalar by design, so the two
  // profiles' reports are compared statistically in bench/mc_ssta, not
  // here).
  auto [batched_serial, batched_s] = run(with_profile(DrawProfile::Batched),
                                         nullptr);
  const std::string batched_reference = fingerprint(batched_serial);
  Table bt({"threads", "wall [s]", "dies/sec", "vs scalar", "identical"});
  bt.add_row({"serial", Table::num(batched_s, 2),
              Table::num(dies / batched_s, 1),
              Table::num(serial_s / batched_s, 2), "ref"});
  out.set("batched_serial_dies_per_sec", dies / batched_s);
  out.set("batched_speedup_vs_scalar", serial_s / batched_s);
  for (unsigned threads : {2u, 4u}) {
    const bool oversub = threads > hw;
    ThreadPool pool(threads);
    auto [report, secs] = run(with_profile(DrawProfile::Batched), &pool);
    const bool same = fingerprint(report) == batched_reference;
    char label[32];
    std::snprintf(label, sizeof label, "%u%s", threads,
                  oversub ? " (oversub)" : "");
    bt.add_row({label, Table::num(secs, 2), Table::num(dies / secs, 1),
                oversub ? "-" : Table::num(serial_s / secs, 2),
                same ? "yes" : "NO (BUG)"});
    if (!oversub) {
      char key[64];
      std::snprintf(key, sizeof key, "batched_dies_per_sec_t%u", threads);
      out.set(key, dies / secs);
    }
    if (!same) {
      std::printf("DETERMINISM VIOLATION within the Batched profile at "
                  "%u threads\n", threads);
      return 1;
    }
  }
  std::printf("%s\n", bt.render().c_str());

  // Same wafer again with the analytical triage tier on (DESIGN.md §16):
  // one canonical-SSTA pass per reticle slot screens the wafer, and dies
  // whose analytic 3-sigma margin clears the confidence band skip their
  // MC budget entirely.  Three hard gates ride on this section:
  //   1. byte-determinism across thread counts, as for every profile;
  //   2. non-MC exactness — a triaged die's policy / wns / power /
  //      silicon bits must match the triage-off Batched run EXACTLY (the
  //      screen may only ever replace MC population statistics);
  //   3. statistical agreement — among analytically-decided dies, the
  //      analytic severity verdict may disagree with the full-MC verdict
  //      on at most ceil(3 * (1 - confidence) * decided) dies, the
  //      band's stated error rate with 3x headroom.
  YieldConfig tc = with_profile(DrawProfile::Batched);
  tc.triage.enabled = true;
  auto [triage_serial, triage_s] = run(tc, nullptr);
  const std::string triage_reference = fingerprint(triage_serial);
  Table tt({"threads", "wall [s]", "dies/sec", "vs batched", "identical"});
  tt.add_row({"serial", Table::num(triage_s, 2), Table::num(dies / triage_s, 1),
              Table::num(batched_s / triage_s, 2), "ref"});
  out.set("triage_dies_per_sec", dies / triage_s);
  out.set("triage_speedup_vs_batched", batched_s / triage_s);
  for (unsigned threads : {2u, 4u}) {
    const bool oversub = threads > hw;
    ThreadPool pool(threads);
    auto [report, secs] = run(tc, &pool);
    const bool same = fingerprint(report) == triage_reference;
    char label[32];
    std::snprintf(label, sizeof label, "%u%s", threads,
                  oversub ? " (oversub)" : "");
    tt.add_row({label, Table::num(secs, 2), Table::num(dies / secs, 1),
                oversub ? "-" : Table::num(batched_s / secs, 2),
                same ? "yes" : "NO (BUG)"});
    if (!oversub) {
      char key[64];
      std::snprintf(key, sizeof key, "triage_dies_per_sec_t%u", threads);
      out.set(key, dies / secs);
    }
    if (!same) {
      std::printf("DETERMINISM VIOLATION within the triaged profile at "
                  "%u threads\n", threads);
      return 1;
    }
  }
  std::printf("%s\n", tt.render().c_str());

  // Gate 2: every output the screen is NOT allowed to touch, compared
  // bit-for-bit (hexfloat) against the triage-off Batched run.
  const auto non_mc_fingerprint = [](const std::vector<YieldReport>& rs) {
    std::ostringstream os;
    os << std::hexfloat;
    for (const YieldReport& r : rs) {
      for (const DieOutcome& d : r.dies) {
        os << d.die_id << ' ' << d.detected_severity << ' '
           << d.islands_raised << ' ' << static_cast<int>(d.policy) << ' '
           << d.timing_met << ' ' << d.escalated << ' ' << d.missed_violation
           << ' ' << d.wns_all_low_ns << ' ' << d.wns_final_ns << ' '
           << d.total_mw << ' ' << d.leakage_mw << '\n';
      }
    }
    return os.str();
  };
  if (non_mc_fingerprint(triage_serial) != non_mc_fingerprint(batched_serial)) {
    std::printf("TRIAGE VIOLATION: non-MC die outputs differ from the "
                "triage-off run\n");
    return 1;
  }

  // Gate 3: the analytic verdict vs what full MC concluded on the SAME
  // dies (the triage-off run above, same seeds) — plus the sample-budget
  // accounting the tier exists for.
  std::size_t decided = 0, mismatches = 0, mc_saved = 0;
  for (std::size_t w = 0; w < triage_serial.size(); ++w) {
    const YieldReport& tr = triage_serial[w];
    const YieldReport& br = batched_serial[w];
    for (std::size_t i = 0; i < tr.dies.size(); ++i) {
      if (tr.dies[i].triage_tier != TriageTier::Analytical) continue;
      ++decided;
      mc_saved += static_cast<std::size_t>(br.dies[i].mc_samples);
      if (tr.dies[i].mc_severity != br.dies[i].mc_severity) ++mismatches;
    }
  }
  const double triage_frac = static_cast<double>(decided) / dies;
  const auto allowed = static_cast<std::size_t>(std::ceil(
      3.0 * (1.0 - tc.triage.confidence) * static_cast<double>(decided)));
  std::printf("triage: %zu/%.0f dies decided analytically (%.0f %%), "
              "%zu MC samples skipped, severity mismatches vs full MC: "
              "%zu (allowed %zu)\n\n",
              decided, dies, 100.0 * triage_frac, mc_saved, mismatches,
              allowed);
  out.set("triage_fraction", triage_frac);
  out.set("triage_analytical_dies", static_cast<double>(decided));
  out.set("triage_mc_samples_saved", static_cast<double>(mc_saved));
  out.set("triage_severity_mismatches", static_cast<double>(mismatches));
  out.set("triage_allowed_mismatches", static_cast<double>(allowed));
  if (decided == 0) {
    std::printf("TRIAGE VIOLATION: the screen decided no dies at all on "
                "this wafer\n");
    return 1;
  }
  if (mismatches > allowed) {
    std::printf("TRIAGE VIOLATION: analytic verdict disagreed with full MC "
                "beyond the band's stated error rate\n");
    return 1;
  }

  // Same wafer once more with the stage-macromodel tier (DESIGN.md §19):
  // each pipeline stage is characterized ONCE into boundary-moment forms
  // over a (basis-variant x knot) grid, and the per-die screen becomes a
  // macromodel EVALUATION (3-scalar basis fit + interpolation) instead
  // of a full canonical gate-graph pass.  The triage section's hard
  // gates all apply — byte-determinism across thread counts, non-MC
  // exactness vs the macro-off Batched run, statistical severity
  // agreement within the band's stated error rate — plus a macromodel-
  // specific one further down: restricted recharacterization up the
  // escalation ladder must be bit-identical to characterizing from
  // scratch.
  YieldConfig mcc = with_profile(DrawProfile::Batched);
  mcc.tier = EvalTier::Macro;
  double characterize_s;
  {
    const auto t0 = clock::now();
    (void)analyzer.macro_library(mcc.macro);
    const std::chrono::duration<double> dt = clock::now() - t0;
    characterize_s = dt.count();
    out.set("macro_characterize_s", characterize_s);
    std::printf("macromodel characterization (5 variants x %d knots): "
                "%.3f s (amortized across wafers, cached per analyzer)\n",
                mcc.macro.knots, characterize_s);
  }
  auto [macro_serial, macro_s] = run(mcc, nullptr);
  const std::string macro_reference = fingerprint(macro_serial);
  Table mt({"threads", "wall [s]", "dies/sec", "vs batched", "identical"});
  mt.add_row({"serial", Table::num(macro_s, 2), Table::num(dies / macro_s, 1),
              Table::num(batched_s / macro_s, 2), "ref"});
  out.set("macro_dies_per_sec", dies / macro_s);
  out.set("macro_speedup_vs_batched", batched_s / macro_s);
  out.set("macro_speedup_vs_triage", triage_s / macro_s);
  for (unsigned threads : {2u, 4u}) {
    const bool oversub = threads > hw;
    ThreadPool pool(threads);
    auto [report, secs] = run(mcc, &pool);
    const bool same = fingerprint(report) == macro_reference;
    char label[32];
    std::snprintf(label, sizeof label, "%u%s", threads,
                  oversub ? " (oversub)" : "");
    mt.add_row({label, Table::num(secs, 2), Table::num(dies / secs, 1),
                oversub ? "-" : Table::num(batched_s / secs, 2),
                same ? "yes" : "NO (BUG)"});
    if (!oversub) {
      char key[64];
      std::snprintf(key, sizeof key, "macro_dies_per_sec_t%u", threads);
      out.set(key, dies / secs);
    }
    if (!same) {
      std::printf("DETERMINISM VIOLATION within the macro tier at "
                  "%u threads\n", threads);
      return 1;
    }
  }
  std::printf("%s\n", mt.render().c_str());

  if (non_mc_fingerprint(macro_serial) != non_mc_fingerprint(batched_serial)) {
    std::printf("MACRO VIOLATION: non-MC die outputs differ from the "
                "macro-off run\n");
    return 1;
  }

  std::size_t mac_decided = 0, mac_mismatches = 0, mac_saved = 0;
  for (std::size_t w = 0; w < macro_serial.size(); ++w) {
    const YieldReport& mr = macro_serial[w];
    const YieldReport& br = batched_serial[w];
    for (std::size_t i = 0; i < mr.dies.size(); ++i) {
      if (mr.dies[i].triage_tier != TriageTier::Macro) continue;
      ++mac_decided;
      mac_saved += static_cast<std::size_t>(br.dies[i].mc_samples);
      if (mr.dies[i].mc_severity != br.dies[i].mc_severity) ++mac_mismatches;
    }
  }
  const double macro_frac = static_cast<double>(mac_decided) / dies;
  const auto mac_allowed = static_cast<std::size_t>(std::ceil(
      3.0 * (1.0 - mcc.triage.confidence) * static_cast<double>(mac_decided)));
  std::printf("macro: %zu/%.0f dies decided by the macromodel (%.0f %%), "
              "%zu MC samples skipped, severity mismatches vs full MC: "
              "%zu (allowed %zu)\n",
              mac_decided, dies, 100.0 * macro_frac, mac_saved, mac_mismatches,
              mac_allowed);
  out.set("macro_fraction", macro_frac);
  out.set("macro_decided_dies", static_cast<double>(mac_decided));
  out.set("macro_mc_samples_saved", static_cast<double>(mac_saved));
  out.set("macro_severity_mismatches", static_cast<double>(mac_mismatches));
  out.set("macro_allowed_mismatches", static_cast<double>(mac_allowed));
  if (mac_decided == 0) {
    std::printf("MACRO VIOLATION: the macromodel decided no dies at all on "
                "this wafer\n");
    return 1;
  }
  if (mac_mismatches > mac_allowed) {
    std::printf("MACRO VIOLATION: macromodel verdict disagreed with full MC "
                "beyond the band's stated error rate\n");
    return 1;
  }

  // Per-die screen cost: macromodel evaluation vs one flat canonical
  // pass over the reticle slots.  This is the per-die work the macro
  // tier replaces; the honest bottom line is the BREAK-EVEN wafer count
  // (characterization cost / per-wafer screen saving), printed so small
  // cores don't read as a free win — the same honesty the level_warmup
  // section applies to the re-corner delta (its committed small-core
  // speedup is 0.9992x, i.e. a wash).
  {
    StaEngine eng(flow.sta());
    eng.compute_base_all_low();
    const CanonicalSsta canon(flow.design(), eng, flow.variation());
    const StageMacroLibrary& lib = analyzer.macro_library(mcc.macro);
    const std::vector<std::vector<double>> slots =
        analyzer.reticle_slot_maps(wafer);
    constexpr int kEvalReps = 200;
    double canon_us = 0.0, eval_us = 0.0;
    for (int rep = 0; rep < kEvalReps; ++rep) {
      for (const std::vector<double>& map : slots) {
        auto t0 = clock::now();
        (void)canon.run(map);
        std::chrono::duration<double, std::micro> dt = clock::now() - t0;
        canon_us += dt.count();
        t0 = clock::now();
        (void)lib.evaluate(map);
        dt = clock::now() - t0;
        eval_us += dt.count();
      }
    }
    const double per = static_cast<double>(kEvalReps) *
                       static_cast<double>(slots.size());
    canon_us /= per;
    eval_us /= per;
    const double saving_per_wafer_s =
        (canon_us - eval_us) * static_cast<double>(slots.size()) * 1e-6;
    const double break_even =
        saving_per_wafer_s > 0.0 ? characterize_s / saving_per_wafer_s : -1.0;
    std::printf("macro screen: %.1f us/slot eval vs %.1f us/slot canonical "
                "(%.2fx); break-even at %.0f wafers per characterization\n\n",
                eval_us, canon_us, canon_us / eval_us,
                break_even < 0.0 ? 0.0 : break_even);
    out.set("macro_eval_us_per_slot", eval_us);
    out.set("macro_canonical_us_per_slot", canon_us);
    out.set("macro_eval_speedup", canon_us / eval_us);
    out.set("macro_break_even_wafers", break_even);
  }

  // Escalation-level re-corner cost: inside the yield loop, each
  // worker's CompensationController caches one BaseSnapshot per
  // escalation level of its persistent StaEngine, and compensate()
  // analyzes the engine after every set_level().  Since the incremental
  // re-corner landed (DESIGN.md §12), only the FIRST level a worker
  // touches pays a full NLDM compute_base(); every other level is
  // delta-built from the nearest cached neighbour with
  // StaEngine::recorner_delta.  Measure the per-level re-corner cost
  // both ways — full compute_base()+analyze() at each level vs a warm
  // recorner_delta flip into it (level k differs from k-1 only in
  // domain k) — and hard-gate on the delta-built snapshots being
  // byte-identical to the full ones at every level (the controller's
  // correctness contract).
  const IslandPlan& plan = flow.island_plan();
  if (const int levels = plan.num_islands(); levels > 0) {
    constexpr int kReps = 40;
    StaEngine full_eng(flow.sta());
    StaEngine delta_eng(flow.sta());
    std::vector<double> full_us(static_cast<std::size_t>(levels) + 1, 0.0);
    std::vector<double> delta_us(static_cast<std::size_t>(levels) + 1, 0.0);

    // Reference snapshot per level from the full path, taken once.
    std::vector<StaEngine::BaseSnapshot> ref;
    for (int k = 0; k <= levels; ++k) {
      full_eng.compute_base(plan.corners_for_severity(k));
      ref.push_back(full_eng.snapshot_bases());
    }
    const auto floats_same = [](const std::vector<float>& a,
                                const std::vector<float>& b) {
      return a.size() == b.size() &&
             std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
    };
    const auto snap_same = [&](const StaEngine::BaseSnapshot& got,
                               const StaEngine::BaseSnapshot& want) {
      return floats_same(got.edge_base, want.edge_base) &&
             floats_same(got.launch_base, want.launch_base) &&
             floats_same(got.slew, want.slew) &&
             got.inst_corner == want.inst_corner;
    };

    // The one full computation the delta-chained controller pays, plus
    // one untimed flip so the nominal-arrival cache is warm (a worker's
    // very first recorner_delta after compute_base pays one full arrival
    // propagation; every later one is cone-bounded).
    double delta_level0_us;
    {
      const auto t0 = clock::now();
      delta_eng.compute_base(plan.corners_for_severity(0));
      delta_eng.analyze({});
      const std::chrono::duration<double, std::micro> dt = clock::now() - t0;
      delta_level0_us = dt.count();
    }
    delta_eng.recorner_delta(1, kVddHigh);
    const StaEngine::RecornerStats warm_stats = delta_eng.recorner_stats();
    delta_eng.recorner_delta(1, kVddLow);
    std::printf("island 1 fan-out cone: %zu/%zu nodes (%.0f %%)%s\n",
                warm_stats.cone_nodes, delta_eng.num_nodes(),
                100.0 * static_cast<double>(warm_stats.cone_nodes) /
                    static_cast<double>(delta_eng.num_nodes()),
                warm_stats.full_fallback ? ", full fallback" : "");

    // Which path each level's re-corner actually took on a warm engine:
    // recorner_delta falls back to a full recompute when the dirty cone
    // exceeds StaOptions::recorner_fallback_fraction (DESIGN.md §12), so
    // the table says which regime the measured cost belongs to.  Level 0
    // is the one full compute_base by construction.
    std::vector<int> path_full(static_cast<std::size_t>(levels) + 1, 1);
    bool identical = snap_same(delta_eng.snapshot_bases(), ref[0]);
    for (int rep = 0; rep < kReps; ++rep) {
      for (int k = 0; k <= levels; ++k) {
        const auto t0 = clock::now();
        full_eng.compute_base(plan.corners_for_severity(k));
        full_eng.analyze({});
        const std::chrono::duration<double, std::micro> dt = clock::now() - t0;
        full_us[static_cast<std::size_t>(k)] += dt.count();
      }
      // Climb the ladder: flip domain k high to move level k-1 -> k.
      for (int k = 1; k <= levels; ++k) {
        const auto t0 = clock::now();
        delta_eng.recorner_delta(static_cast<DomainId>(k), kVddHigh);
        const std::chrono::duration<double, std::micro> dt = clock::now() - t0;
        delta_us[static_cast<std::size_t>(k)] += dt.count();
        if (rep == 0) {
          path_full[static_cast<std::size_t>(k)] =
              delta_eng.recorner_stats().full_fallback ? 1 : 0;
          identical = identical &&
                      snap_same(delta_eng.snapshot_bases(),
                                ref[static_cast<std::size_t>(k)]);
        }
      }
      // Walk back down (untimed) so the next rep climbs again.
      for (int k = levels; k >= 1; --k) {
        delta_eng.recorner_delta(static_cast<DomainId>(k), kVddLow);
      }
    }

    double full_total = 0.0, delta_total = delta_level0_us;
    Table lt({"level", "full [us]", "delta [us]", "speedup", "path"});
    for (int k = 0; k <= levels; ++k) {
      const double f = full_us[static_cast<std::size_t>(k)] / kReps;
      const double d = k == 0 ? delta_level0_us
                              : delta_us[static_cast<std::size_t>(k)] / kReps;
      const bool fell_back = path_full[static_cast<std::size_t>(k)] != 0;
      full_total += f;
      if (k > 0) delta_total += d;
      char label[32];
      std::snprintf(label, sizeof label, "%d%s", k, k == 0 ? " (full)" : "");
      lt.add_row({label, Table::num(f, 1), Table::num(d, 1),
                  k == 0 ? "-" : Table::num(f / d, 2),
                  k == 0 ? "full" : (fell_back ? "fallback" : "delta")});
      char key[64];
      std::snprintf(key, sizeof key, "level%d_full_us", k);
      out.set(key, f);
      std::snprintf(key, sizeof key, "level%d_delta_us", k);
      out.set(key, d);
      if (k > 0) {
        std::snprintf(key, sizeof key, "level%d_fallback", k);
        out.set(key, fell_back ? 1.0 : 0.0);
      }
    }
    std::printf("escalation re-corner cost (%d levels, mean of %d reps, "
                "snapshots %s):\n%s\n",
                levels + 1, kReps,
                identical ? "byte-identical" : "DIVERGED", lt.render().c_str());
    std::printf("all levels: %d fulls %.0f us vs 1 full + %d deltas %.0f us "
                "-> %.2fx\n\n",
                levels + 1, full_total, levels, delta_total,
                full_total / delta_total);
    out.set("level_warmup_levels", levels + 1);
    out.set("level_warmup_full_us", full_total);
    out.set("level_warmup_delta_us", delta_total);
    out.set("level_warmup_speedup", full_total / delta_total);
    if (!identical) {
      std::printf("DETERMINISM VIOLATION: recorner_delta level snapshots "
                  "diverged from full compute_base\n");
      return 1;
    }
  }

  // Macromodel recharacterization up the same ladder (DESIGN.md §19): a
  // VI escalation flips exactly one island's domain, so the library
  // re-runs its characterization passes restricted to the union of the
  // stage fan-in cones that domain touches.  Hard gate: the restricted
  // rebuild must be BIT-IDENTICAL to characterizing from scratch at the
  // new corner — same contract, and same honest framing, as the
  // level_warmup section above.
  if (const int levels = plan.num_islands(); levels > 0) {
    constexpr int kMacReps = 10;
    StaEngine eng(flow.sta());
    eng.compute_base(plan.corners_for_severity(0));
    StageMacroLibrary delta_lib(flow.design(), eng, flow.variation());
    Table rt({"level", "full [ms]", "delta [ms]", "speedup", "cone"});
    double full_total_ms = 0.0, delta_total_ms = 0.0;
    bool identical = true;
    for (int k = 1; k <= levels; ++k) {
      eng.compute_base(plan.corners_for_severity(k));
      double full_ms = 0.0, delta_ms = 0.0;
      std::string full_print;
      for (int rep = 0; rep < kMacReps; ++rep) {
        auto t0 = clock::now();
        const StageMacroLibrary full_lib(flow.design(), eng,
                                         flow.variation());
        std::chrono::duration<double, std::milli> dt = clock::now() - t0;
        full_ms += dt.count();
        if (rep == 0) full_print = full_lib.fingerprint();
        t0 = clock::now();
        delta_lib.recharacterize(eng, static_cast<DomainId>(k));
        dt = clock::now() - t0;
        delta_ms += dt.count();
      }
      full_ms /= kMacReps;
      delta_ms /= kMacReps;
      full_total_ms += full_ms;
      delta_total_ms += delta_ms;
      identical = identical && delta_lib.fingerprint() == full_print;
      const double frac =
          delta_lib.recharacterize_fraction(static_cast<DomainId>(k));
      char label[16], cone[16];
      std::snprintf(label, sizeof label, "%d", k);
      std::snprintf(cone, sizeof cone, "%.0f %%", 100.0 * frac);
      rt.add_row({label, Table::num(full_ms, 2), Table::num(delta_ms, 2),
                  Table::num(full_ms / delta_ms, 2), cone});
      char key[64];
      std::snprintf(key, sizeof key, "macro_rechar_level%d_full_ms", k);
      out.set(key, full_ms);
      std::snprintf(key, sizeof key, "macro_rechar_level%d_delta_ms", k);
      out.set(key, delta_ms);
    }
    std::printf("macromodel recharacterization (%d escalation levels, mean "
                "of %d reps, models %s):\n%s\n",
                levels, kMacReps,
                identical ? "bit-identical" : "DIVERGED", rt.render().c_str());
    out.set("macro_recharacterize_full_ms", full_total_ms);
    out.set("macro_recharacterize_delta_ms", delta_total_ms);
    out.set("macro_recharacterize_speedup", full_total_ms / delta_total_ms);
    if (!identical) {
      std::printf("MACRO VIOLATION: restricted recharacterization diverged "
                  "from characterizing at the corner from scratch\n");
      return 1;
    }
  }

  std::printf("yield: %.1f %% parametric (%zu/%zu shipped), "
              "policy mix: %zu all-low / %zu islands / %zu chip-wide / %zu discard\n",
              serial_report.parametric_yield() * 100.0,
              serial_report.shipped_dies(), serial_report.total_dies(),
              serial_report.count(TuningPolicy::AllLow),
              serial_report.count(TuningPolicy::NestedIslands),
              serial_report.count(TuningPolicy::ChipWideHigh),
              serial_report.count(TuningPolicy::Discard));
  out.set("parametric_yield", serial_report.parametric_yield());
  out.set("hardware_threads", hw);
  out.write(bench::out_path(argc, argv, "BENCH_wafer.json"));

  // The 2x-at-4-threads target only makes sense with >= 4 real cores; on
  // smaller machines we still verified determinism above, which is the
  // part that can silently break.
  if (speedup_at_4 < 2.0) {
    if (hw >= 4) {
      std::printf("WARNING: speedup at 4 threads %.2fx below the 2x target\n",
                  speedup_at_4);
      return 1;
    }
    std::printf("note: only %u hardware thread(s); the 4-thread scaling "
                "target is not enforceable here\n", hw);
  }
  return 0;
}
