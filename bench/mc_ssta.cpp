// Monte-Carlo SSTA throughput: the per-die hot loop as a batch workload.
// One die's MC run is the inner loop of every die of the wafer-scale
// yield subsystem, so its samples/sec is the throughput ceiling of the
// whole repo.  Measures:
//
//   1. scalar-serial baseline — batch width 1 (the pre-batching
//      per-sample analyze() kernel), no pool;
//   2. the batched SoA kernel alone — widths 4/8/16/32, still serial;
//   3. batched + parallel sampling — thread pools of increasing size;
//   4. the propagation kernel in isolation (pre-drawn factors, analyze
//      vs analyze_batch) — the end-to-end MC numbers are dominated by
//      the per-sample factor draw, which batching cannot touch, so the
//      kernel's own speedup is measured separately;
//
// and cross-checks on the way that EVERY configuration produced the
// bit-identical McResult (batch width and thread count are pure
// execution-layout choices; the reference seed result must not move).
// A mismatch is a hard failure — CI runs this binary as the
// batched-vs-scalar smoke check.  Emits BENCH_mc.json for trajectory
// tracking across PRs.
//
// Options: --samples N (default 1536), --out PATH (default: repo root).

#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "netlist/vex.hpp"
#include "placement/placer.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "variation/mc_ssta.hpp"
#include "variation/model.hpp"

#include "common.hpp"

namespace {

using namespace vipvt;

/// Byte-exact fingerprint of everything a McResult carries; %.17g round-
/// trips doubles, so equal strings <=> bit-identical results.
std::string fingerprint(const McResult& r) {
  std::ostringstream os;
  char buf[32];
  const auto num = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.17g,", v);
    os << buf;
  };
  os << r.samples << ';';
  for (const auto& sd : r.stages) {
    os << sd.present << ':';
    num(sd.fit.mean);
    num(sd.fit.stddev);
    num(sd.fit.p_value);
    num(sd.min_slack);
    num(sd.max_slack);
    for (double s : sd.samples) num(s);
    os << ';';
  }
  for (double p : r.endpoint_crit_prob) num(p);
  os << ';';
  for (auto c : r.endpoint_stage_crit) os << c << ',';
  os << ';';
  for (double t : r.min_period_samples) num(t);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using clock = std::chrono::steady_clock;
  bench::print_header("MC SSTA", "per-die Monte-Carlo throughput, "
                                 "scalar vs batched vs parallel");

  const int samples = bench::arg_int(argc, argv, "--samples", 1536);

  // The same tiny-core recipe as bench/wafer_yield: the workload SHAPE
  // (per-sample factor draw + full-graph propagation) matches the full
  // VEX; only the graph is smaller.
  Library lib = make_st65lp_like();
  Design design = make_vex_design(lib, VexConfig::tiny());
  Floorplan fp = Floorplan::for_design(design, FloorplanConfig{});
  PlacementDb db(fp);
  place_design(design, fp, PlacerConfig{}, db);
  StaEngine sta(design, StaOptions{});
  sta.set_clock_period(sta.min_period() * 1.01);
  const ExposureField field = ExposureField::scaled_65nm(lib.char_params());
  const VariationModel model(lib.char_params(), field);
  const MonteCarloSsta mc(design, sta, model);
  const DieLocation loc = DieLocation::point('A');
  std::printf("# design: %zu instances, %zu timing edges, %d samples\n\n",
              design.num_instances(), sta.num_edges(), samples);

  McConfig base;
  base.samples = samples;
  base.seed = 0x5ca1ab1eULL;

  const auto run = [&](int batch, ThreadPool* pool) {
    McConfig cfg = base;
    cfg.batch = batch;
    const auto t0 = clock::now();
    McResult res = mc.run(loc, cfg, pool);
    const std::chrono::duration<double> dt = clock::now() - t0;
    return std::pair{fingerprint(res), dt.count()};
  };

  bench::BenchJson out("mc_ssta");
  out.set("samples", samples);
  Table t({"config", "wall [s]", "samples/sec", "speedup", "identical"});
  bool all_identical = true;

  // 1. Scalar-serial reference.
  auto [reference, scalar_s] = run(1, nullptr);
  const double scalar_sps = samples / scalar_s;
  t.add_row({"scalar serial", Table::num(scalar_s, 3),
             Table::num(scalar_sps, 0), Table::num(1.0, 2), "ref"});
  out.set("scalar_serial_s", scalar_s);
  out.set("scalar_samples_per_sec", scalar_sps);

  // 2. Batched end-to-end, still serial: modest by design — the factor
  // draw (RNG + device-physics transcendentals per gate) dominates a
  // sample and is identical in both paths; section 4 isolates the
  // propagation kernel that batching actually accelerates.
  for (int batch : {4, 8, 16, 32}) {
    auto [fp_b, secs] = run(batch, nullptr);
    const bool same = fp_b == reference;
    all_identical &= same;
    const double speedup = scalar_s / secs;
    char label[32];
    std::snprintf(label, sizeof label, "batch %d serial", batch);
    t.add_row({label, Table::num(secs, 3), Table::num(samples / secs, 0),
               Table::num(speedup, 2), same ? "yes" : "NO (BUG)"});
    char key[48];
    std::snprintf(key, sizeof key, "batch%d_samples_per_sec", batch);
    out.set(key, samples / secs);
    std::snprintf(key, sizeof key, "batch%d_speedup_e2e", batch);
    out.set(key, speedup);
  }

  // 3. Batched + parallel sampling.
  double speedup_t8 = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    auto [fp_t, secs] = run(8, &pool);
    const bool same = fp_t == reference;
    all_identical &= same;
    const double speedup = scalar_s / secs;
    if (threads == 8) speedup_t8 = speedup;
    char label[32];
    std::snprintf(label, sizeof label, "batch 8, %u thread%s", threads,
                  threads == 1 ? "" : "s");
    t.add_row({label, Table::num(secs, 3), Table::num(samples / secs, 0),
               Table::num(speedup, 2), same ? "yes" : "NO (BUG)"});
    char key[48];
    std::snprintf(key, sizeof key, "samples_per_sec_t%u", threads);
    out.set(key, samples / secs);
    std::snprintf(key, sizeof key, "speedup_t%u", threads);
    out.set(key, speedup);
  }
  std::printf("%s\n", t.render().c_str());

  // 4. The propagation kernel in isolation: pre-draw the factor sets,
  // then time analyze() lane-by-lane vs analyze_batch() over the same
  // lanes, verifying every lane's StaResult is bit-identical.
  const int kernel_lanes = std::min(samples, 1024) / 8 * 8;
  const auto systematic = model.systematic_lgates(design, loc);
  std::vector<std::vector<double>> factor_sets(
      static_cast<std::size_t>(kernel_lanes));
  for (int k = 0; k < kernel_lanes; ++k) {
    Rng rng(substream_seed(base.seed, static_cast<std::uint64_t>(k)));
    model.draw_factors(design, sta, systematic, rng,
                       factor_sets[static_cast<std::size_t>(k)]);
  }
  std::vector<StaResult> scalar_res(static_cast<std::size_t>(kernel_lanes));
  auto t0 = clock::now();
  for (int k = 0; k < kernel_lanes; ++k) {
    scalar_res[static_cast<std::size_t>(k)] =
        sta.analyze(factor_sets[static_cast<std::size_t>(k)]);
  }
  const std::chrono::duration<double> kern_scalar_s = clock::now() - t0;
  std::vector<StaResult> batch_res(8);
  bool kernel_identical = true;
  t0 = clock::now();
  for (int k = 0; k < kernel_lanes; k += 8) {
    sta.analyze_batch(
        std::span(factor_sets).subspan(static_cast<std::size_t>(k), 8),
        std::span(batch_res));
    for (int l = 0; l < 8; ++l) {
      const StaResult& a = scalar_res[static_cast<std::size_t>(k + l)];
      const StaResult& b = batch_res[static_cast<std::size_t>(l)];
      kernel_identical &= a.wns == b.wns && a.tns == b.tns &&
                          a.min_period_ns == b.min_period_ns &&
                          a.stage_wns == b.stage_wns &&
                          a.endpoint_slack == b.endpoint_slack;
    }
  }
  const std::chrono::duration<double> kern_batch_s = clock::now() - t0;
  all_identical &= kernel_identical;
  const double kernel_speedup = kern_scalar_s.count() / kern_batch_s.count();
  std::printf("propagation kernel alone (%d lanes): scalar %.2f us/lane, "
              "batch-8 %.2f us/lane -> %.2fx, %s\n\n", kernel_lanes,
              kern_scalar_s.count() / kernel_lanes * 1e6,
              kern_batch_s.count() / kernel_lanes * 1e6, kernel_speedup,
              kernel_identical ? "bit-identical" : "MISMATCH (BUG)");
  out.set("kernel_lanes", kernel_lanes);
  out.set("kernel_scalar_us_per_lane",
          kern_scalar_s.count() / kernel_lanes * 1e6);
  out.set("kernel_batch8_us_per_lane",
          kern_batch_s.count() / kernel_lanes * 1e6);
  out.set("kernel_speedup_b8", kernel_speedup);

  const unsigned hw = std::thread::hardware_concurrency();
  out.set("hardware_threads", hw);
  out.write(bench::out_path(argc, argv, "BENCH_mc.json"));

  if (!all_identical) {
    std::printf("DETERMINISM VIOLATION: batched/parallel McResult differs "
                "from the scalar-serial reference\n");
    return 1;
  }
  if (kernel_speedup < 1.5) {
    std::printf("WARNING: batched kernel speedup %.2fx below the 1.5x "
                "target\n", kernel_speedup);
  }
  // The 4x combined target needs real cores; smaller machines still
  // verified bit-identity above, which is the part that silently breaks.
  if (speedup_t8 < 4.0) {
    if (hw >= 8) {
      std::printf("WARNING: combined speedup %.2fx at 8 threads below the "
                  "4x target\n", speedup_t8);
      return 1;
    }
    std::printf("note: only %u hardware thread(s); the 8-thread scaling "
                "target is not enforceable here (got %.2fx)\n", hw,
                speedup_t8);
  }
  return 0;
}
