// Monte-Carlo SSTA throughput: the per-die hot loop as a batch workload.
// One die's MC run is the inner loop of every die of the wafer-scale
// yield subsystem, so its samples/sec is the throughput ceiling of the
// whole repo.  Measures:
//
//   1. scalar-serial baseline — batch width 1 (the pre-batching
//      per-sample analyze() kernel), no pool;
//   2. the batched SoA kernel alone — widths 4/8/16/32, still serial;
//   3. batched + parallel sampling — thread pools up to the machine's
//      hardware_concurrency(); oversubscribed points (more threads than
//      cores) are still run for the determinism cross-check but recorded
//      under separate oversub_* keys and never reported as speedups;
//   4. the propagation kernel in isolation (pre-drawn factors, analyze
//      vs analyze_batch);
//   5. the Batched draw profile end-to-end (bulk Box-Muller normals +
//      delay-factor tables writing the SoA directly) across widths and
//      thread counts — bit-identical WITHIN the profile by contract;
//   6. the factor draw in isolation, scalar vs batched, against the
//      propagation cost — the batched engine exists to stop the draw
//      from dominating propagation;
//   7. the propagation kernel per SIMD dispatch target (DESIGN.md §17):
//      the dispatcher pinned to every compiled ISA in turn, each one
//      bit-compared against scalar analyze() and timed per lane;
//   8. the BatchedSimd stream across dispatch targets: the arch-
//      invariant draw byte-compared per target, pinned full runs
//      fingerprint-compared, plus the profile's width/thread invariance;
//   9. end-to-end time attribution of one batched sample into
//      draw / propagation / tally phases, gated to sum to the wall
//      clock within 5 % — the measurement that explains why
//      batchN_speedup_e2e sits near 1.0 while the isolated kernel wins;
//  10. statistical cross-profile gates: the profiles use different
//      (equally valid) random streams, so their stage-slack fits must
//      agree to sampling error — disagreement beyond ~8 standard errors
//      means one of the engines is wrong;
//  11. incremental re-cornering (recorner_delta vs full compute_base)
//      over a single-island escalation ladder;
//  12. adaptive sequential sampling vs the fixed budget at an equal
//      a-priori CI target: sample savings (soft), plus the hard
//      prefix-equivalence gate — the adaptive run stopping at N must be
//      bit-identical to a fixed run with samples = N, serial and pooled.
//
// Scalar-profile configurations must reproduce the scalar-serial
// reference bit-for-bit; Batched-profile configurations must reproduce
// the batched reference bit-for-bit; every SIMD dispatch target must
// reproduce the scalar propagation bits and the one BatchedSimd stream.
// Any mismatch — or a statistical disagreement between the profiles —
// is a hard failure; CI runs this binary as the smoke check.  Emits
// BENCH_mc.json for trajectory tracking across PRs.
//
// Options: --samples N (default 1536), --out PATH (default: repo root).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>

#include "netlist/vex.hpp"
#include "placement/placer.hpp"
#include "util/aligned.hpp"
#include "util/parallel.hpp"
#include "util/simd/dispatch.hpp"
#include "util/table.hpp"
#include "variation/mc_ssta.hpp"
#include "variation/model.hpp"

#include "common.hpp"

namespace {

using namespace vipvt;

/// Byte-exact fingerprint of everything a McResult carries; %.17g round-
/// trips doubles, so equal strings <=> bit-identical results.
std::string fingerprint(const McResult& r) {
  std::ostringstream os;
  char buf[32];
  const auto num = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.17g,", v);
    os << buf;
  };
  os << r.samples << ';';
  for (const auto& sd : r.stages) {
    os << sd.present << ':';
    num(sd.fit.mean);
    num(sd.fit.stddev);
    num(sd.fit.p_value);
    num(sd.min_slack);
    num(sd.max_slack);
    for (double s : sd.samples) num(s);
    os << ';';
  }
  for (double p : r.endpoint_crit_prob) num(p);
  os << ';';
  for (auto c : r.endpoint_stage_crit) os << c << ',';
  os << ';';
  for (double t : r.min_period_samples) num(t);
  return os.str();
}

/// Scalar-vs-batched statistical gate.  The profiles draw from different
/// streams, so per-sample bits differ by design; the stage-slack normal
/// fits, however, estimate the SAME population.  With n samples each,
/// the difference of two independent mean estimates has standard error
/// sigma*sqrt(2/n) and the log of the stddev ratio has standard error
/// ~1/sqrt(n-1); 8 standard errors is far beyond noise while still
/// catching a broken table (systematic factor bias) or a broken normal
/// generator (wrong variance) immediately.
bool stages_statistically_agree(const char* label, const McResult& scalar,
                                const McResult& batched, int n) {
  bool ok = true;
  std::printf("%s stage fits (n=%d per profile):\n", label, n);
  for (int s = 0; s < kNumPipeStages; ++s) {
    const StageSlackDist& a = scalar.stages[static_cast<std::size_t>(s)];
    const StageSlackDist& b = batched.stages[static_cast<std::size_t>(s)];
    if (a.present != b.present) {
      std::printf("  %-10s PRESENT-MISMATCH\n",
                  stage_name(static_cast<PipeStage>(s)));
      ok = false;
      continue;
    }
    if (!a.present) continue;
    const double sigma = std::max(a.fit.stddev, b.fit.stddev);
    const double mean_tol =
        8.0 * std::max(sigma * std::sqrt(2.0 / n), 1e-12);
    const double dmean = std::abs(a.fit.mean - b.fit.mean);
    bool stage_ok = dmean <= mean_tol;
    double log_ratio = 0.0;
    const double sd_tol = 8.0 / std::sqrt(std::max(n - 1, 1));
    if (a.fit.stddev > 0.0 && b.fit.stddev > 0.0) {
      log_ratio = std::abs(std::log(b.fit.stddev / a.fit.stddev));
      stage_ok &= log_ratio <= sd_tol;
    } else {
      stage_ok &= a.fit.stddev == b.fit.stddev;  // both degenerate
    }
    std::printf("  %-10s dmean %.2e (tol %.2e)  |log sd ratio| %.3f "
                "(tol %.3f)  %s\n",
                stage_name(static_cast<PipeStage>(s)), dmean, mean_tol,
                log_ratio, sd_tol, stage_ok ? "ok" : "DISAGREE");
    ok &= stage_ok;
  }
  std::printf("\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using clock = std::chrono::steady_clock;
  bench::print_header("MC SSTA", "per-die Monte-Carlo throughput, "
                                 "scalar vs batched vs parallel");

  const int samples = bench::arg_int(argc, argv, "--samples", 1536);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  // The same tiny-core recipe as bench/wafer_yield: the workload SHAPE
  // (per-sample factor draw + full-graph propagation) matches the full
  // VEX; only the graph is smaller.
  Library lib = make_st65lp_like();
  Design design = make_vex_design(lib, VexConfig::tiny());
  Floorplan fp = Floorplan::for_design(design, FloorplanConfig{});
  PlacementDb db(fp);
  place_design(design, fp, PlacerConfig{}, db);
  StaEngine sta(design, StaOptions{});
  sta.set_clock_period(sta.min_period() * 1.01);
  const ExposureField field = ExposureField::scaled_65nm(lib.char_params());
  const VariationModel model(lib.char_params(), field);
  const MonteCarloSsta mc(design, sta, model);
  const DieLocation loc = DieLocation::point('A');
  std::printf("# design: %zu instances, %zu timing edges, %d samples, "
              "%u hardware thread(s)\n\n",
              design.num_instances(), sta.num_edges(), samples, hw);

  McConfig base;
  base.samples = samples;
  base.seed = 0x5ca1ab1eULL;

  const auto run = [&](DrawProfile profile, int batch, ThreadPool* pool) {
    McConfig cfg = base;
    cfg.profile = profile;
    cfg.batch = batch;
    const auto t0 = clock::now();
    McResult res = mc.run(loc, cfg, pool);
    const std::chrono::duration<double> dt = clock::now() - t0;
    return std::pair{std::move(res), dt.count()};
  };

  bench::BenchJson out("mc_ssta");
  out.set("samples", samples);
  out.set("hardware_threads", hw);
  // Numeric twin of the top-level dispatch_arch provenance string
  // (0 scalar, 1 sse2, 2 avx2, 3 avx512) so trajectory tooling that only
  // reads metrics still sees which ISA produced the kernel rows.
  out.set("dispatch_arch_level",
          static_cast<double>(static_cast<int>(simd::active_arch())));
  Table t({"config", "wall [s]", "samples/sec", "speedup", "identical"});
  bool all_identical = true;

  // 1. Scalar-serial reference.
  auto [scalar_ref, scalar_s] = run(DrawProfile::Scalar, 1, nullptr);
  const std::string reference = fingerprint(scalar_ref);
  const double scalar_sps = samples / scalar_s;
  t.add_row({"scalar serial", Table::num(scalar_s, 3),
             Table::num(scalar_sps, 0), Table::num(1.0, 2), "ref"});
  out.set("scalar_serial_s", scalar_s);
  out.set("scalar_samples_per_sec", scalar_sps);

  // 2. Batched end-to-end, still serial: modest by design — the factor
  // draw (RNG + device-physics transcendentals per gate) dominates a
  // sample under the Scalar profile and is identical in both paths;
  // sections 4-6 isolate the kernels and section 5 measures the Batched
  // profile that removes the draw bottleneck.
  for (int batch : {4, 8, 16, 32}) {
    auto [res_b, secs] = run(DrawProfile::Scalar, batch, nullptr);
    const bool same = fingerprint(res_b) == reference;
    all_identical &= same;
    const double speedup = scalar_s / secs;
    char label[32];
    std::snprintf(label, sizeof label, "batch %d serial", batch);
    t.add_row({label, Table::num(secs, 3), Table::num(samples / secs, 0),
               Table::num(speedup, 2), same ? "yes" : "NO (BUG)"});
    char key[48];
    std::snprintf(key, sizeof key, "batch%d_samples_per_sec", batch);
    out.set(key, samples / secs);
    std::snprintf(key, sizeof key, "batch%d_speedup_e2e", batch);
    out.set(key, speedup);
  }

  // 3. Batched + parallel sampling.  Thread counts beyond the machine's
  // hardware concurrency measure scheduler thrash, not scaling: those
  // points still run (the determinism contract must hold at ANY thread
  // count) but are recorded under oversub_* keys, excluded from the
  // speedup columns, and never gate anything.
  double speedup_hw = 0.0;
  unsigned speedup_hw_threads = 0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const bool oversub = threads > hw;
    ThreadPool pool(threads);
    auto [res_t, secs] = run(DrawProfile::Scalar, 8, &pool);
    const bool same = fingerprint(res_t) == reference;
    all_identical &= same;
    const double speedup = scalar_s / secs;
    if (!oversub && threads >= speedup_hw_threads) {
      speedup_hw = speedup;
      speedup_hw_threads = threads;
    }
    char label[48];
    std::snprintf(label, sizeof label, "batch 8, %u thread%s%s", threads,
                  threads == 1 ? "" : "s", oversub ? " (oversub)" : "");
    t.add_row({label, Table::num(secs, 3), Table::num(samples / secs, 0),
               oversub ? "-" : Table::num(speedup, 2),
               same ? "yes" : "NO (BUG)"});
    char key[48];
    if (oversub) {
      std::snprintf(key, sizeof key, "oversub_t%u_samples_per_sec", threads);
      out.set(key, samples / secs);
    } else {
      std::snprintf(key, sizeof key, "samples_per_sec_t%u", threads);
      out.set(key, samples / secs);
      std::snprintf(key, sizeof key, "speedup_t%u", threads);
      out.set(key, speedup);
    }
  }
  std::printf("%s\n", t.render().c_str());

  // 4. The propagation kernel in isolation: pre-draw the factor sets,
  // then time analyze() lane-by-lane vs analyze_batch() over the same
  // lanes, verifying every lane's StaResult is bit-identical.
  const int kernel_lanes = std::min(samples, 1024) / 8 * 8;
  const auto systematic = model.systematic_lgates(design, loc);
  const auto stencils = model.field_stencils(design);
  std::vector<std::vector<double>> factor_sets(
      static_cast<std::size_t>(kernel_lanes));
  for (int k = 0; k < kernel_lanes; ++k) {
    Rng rng(substream_seed(base.seed, static_cast<std::uint64_t>(k)));
    model.draw_factors(design, sta, systematic, rng,
                       factor_sets[static_cast<std::size_t>(k)]);
  }
  std::vector<StaResult> scalar_res(static_cast<std::size_t>(kernel_lanes));
  auto t0 = clock::now();
  for (int k = 0; k < kernel_lanes; ++k) {
    scalar_res[static_cast<std::size_t>(k)] =
        sta.analyze(factor_sets[static_cast<std::size_t>(k)]);
  }
  const std::chrono::duration<double> kern_scalar_s = clock::now() - t0;
  std::vector<StaResult> batch_res(8);
  bool kernel_identical = true;
  t0 = clock::now();
  for (int k = 0; k < kernel_lanes; k += 8) {
    sta.analyze_batch(
        std::span(factor_sets).subspan(static_cast<std::size_t>(k), 8),
        std::span(batch_res));
    for (int l = 0; l < 8; ++l) {
      const StaResult& a = scalar_res[static_cast<std::size_t>(k + l)];
      const StaResult& b = batch_res[static_cast<std::size_t>(l)];
      kernel_identical &= a.wns == b.wns && a.tns == b.tns &&
                          a.min_period_ns == b.min_period_ns &&
                          a.stage_wns == b.stage_wns &&
                          a.endpoint_slack == b.endpoint_slack;
    }
  }
  const std::chrono::duration<double> kern_batch_s = clock::now() - t0;
  all_identical &= kernel_identical;
  const double kernel_speedup = kern_scalar_s.count() / kern_batch_s.count();
  const double prop_us_per_lane = kern_batch_s.count() / kernel_lanes * 1e6;
  std::printf("propagation kernel alone (%d lanes): scalar %.2f us/lane, "
              "batch-8 %.2f us/lane -> %.2fx, %s\n\n", kernel_lanes,
              kern_scalar_s.count() / kernel_lanes * 1e6, prop_us_per_lane,
              kernel_speedup,
              kernel_identical ? "bit-identical" : "MISMATCH (BUG)");
  out.set("kernel_lanes", kernel_lanes);
  out.set("kernel_scalar_us_per_lane",
          kern_scalar_s.count() / kernel_lanes * 1e6);
  out.set("kernel_batch8_us_per_lane", prop_us_per_lane);
  out.set("kernel_speedup_b8", kernel_speedup);

  // 5. The Batched draw profile end-to-end: bulk normals + delay-factor
  // tables write the propagation kernel's SoA directly.  Within the
  // profile the McResult is bit-identical for any width and any thread
  // count (a versioned contract, checked here the same way the Scalar
  // profile is checked against the seed path above).
  Table bt({"config", "wall [s]", "samples/sec", "vs scalar", "identical"});
  auto [batched_ref, batched_ref_s] = run(DrawProfile::Batched, 8, nullptr);
  const std::string batched_reference = fingerprint(batched_ref);
  bool batched_identical = true;
  double batched_best_serial_sps = samples / batched_ref_s;
  bt.add_row({"batched w8 serial", Table::num(batched_ref_s, 3),
              Table::num(samples / batched_ref_s, 0),
              Table::num(scalar_s / batched_ref_s, 2), "ref"});
  for (int batch : {4, 16, 32}) {
    auto [res_b, secs] = run(DrawProfile::Batched, batch, nullptr);
    const bool same = fingerprint(res_b) == batched_reference;
    batched_identical &= same;
    batched_best_serial_sps = std::max(batched_best_serial_sps, samples / secs);
    char label[32];
    std::snprintf(label, sizeof label, "batched w%d serial", batch);
    bt.add_row({label, Table::num(secs, 3), Table::num(samples / secs, 0),
                Table::num(scalar_s / secs, 2), same ? "yes" : "NO (BUG)"});
  }
  for (unsigned threads : {2u, 4u, 8u}) {
    const bool oversub = threads > hw;
    ThreadPool pool(threads);
    auto [res_t, secs] = run(DrawProfile::Batched, 8, &pool);
    const bool same = fingerprint(res_t) == batched_reference;
    batched_identical &= same;
    char label[48];
    std::snprintf(label, sizeof label, "batched w8, %u threads%s", threads,
                  oversub ? " (oversub)" : "");
    bt.add_row({label, Table::num(secs, 3), Table::num(samples / secs, 0),
                oversub ? "-" : Table::num(scalar_s / secs, 2),
                same ? "yes" : "NO (BUG)"});
    char key[56];
    std::snprintf(key, sizeof key,
                  oversub ? "batched_oversub_t%u_samples_per_sec"
                          : "batched_samples_per_sec_t%u",
                  threads);
    out.set(key, samples / secs);
  }
  std::printf("%s\n", bt.render().c_str());
  const double batched_speedup = batched_best_serial_sps / scalar_sps;
  out.set("batched_profile_samples_per_sec", batched_best_serial_sps);
  out.set("batched_profile_speedup_vs_scalar", batched_speedup);

  // 6. The draw in isolation: the batched engine's whole point is that
  // factor generation stops dominating propagation.  Time the scalar
  // draw (per-gate polar normals + exact pow quotient) against
  // draw_factors_batch (bulk Box-Muller + table lookup) and compare both
  // to the batch-8 propagation cost per lane.
  double draw_scalar_us = 0.0, draw_batch_us = 0.0;
  {
    const int draw_lanes = kernel_lanes;
    std::vector<double> scratch_factors;
    t0 = clock::now();
    for (int k = 0; k < draw_lanes; ++k) {
      Rng rng(substream_seed(base.seed, static_cast<std::uint64_t>(k)));
      model.draw_factors(design, sta, systematic, stencils, rng,
                         scratch_factors);
    }
    const std::chrono::duration<double> draw_scalar_s = clock::now() - t0;
    VariationModel::DrawScratch scratch;
    std::vector<double> factor_soa(design.num_instances() * 8);
    t0 = clock::now();
    for (int k = 0; k < draw_lanes; k += 8) {
      model.draw_factors_batch(design, sta, systematic, stencils, base.seed,
                               static_cast<std::uint64_t>(k), 8,
                               std::span(factor_soa), scratch);
    }
    const std::chrono::duration<double> draw_batch_s = clock::now() - t0;
    draw_scalar_us = draw_scalar_s.count() / draw_lanes * 1e6;
    draw_batch_us = draw_batch_s.count() / draw_lanes * 1e6;
    const double ratio_scalar = draw_scalar_us / prop_us_per_lane;
    const double ratio_batched = draw_batch_us / prop_us_per_lane;
    std::printf("factor draw alone (%d lanes): scalar %.2f us/sample "
                "(%.1fx propagation), batched %.2f us/sample "
                "(%.1fx propagation), draw speedup %.2fx\n",
                draw_lanes, draw_scalar_us, ratio_scalar, draw_batch_us,
                ratio_batched, draw_scalar_us / draw_batch_us);
    out.set("draw_scalar_us_per_sample", draw_scalar_us);
    out.set("draw_batched_us_per_sample", draw_batch_us);
    out.set("draw_speedup_batched", draw_scalar_us / draw_batch_us);
    out.set("draw_over_prop_scalar", ratio_scalar);
    out.set("draw_over_prop_batched", ratio_batched);
    if (ratio_batched > 3.0) {
      std::printf("WARNING: batched draw still dominates propagation "
                  "%.1fx > 3x\n", ratio_batched);
    }
    std::printf("\n");
  }

  // 7. The propagation kernel per dispatch target (DESIGN.md §17).  Pin
  // the dispatcher to every ISA this build compiled, re-run the batch-8
  // isolation loop over the SAME pre-drawn factor sets, and demand every
  // lane's StaResult equal the scalar analyze() reference bit-for-bit —
  // the per-lane bit-identity contract enforced in-process across ALL
  // dispatch targets, not just the autodetected one the rows above used.
  // Per-target us/lane rows land in BENCH_mc.json so each width's
  // trajectory is tracked separately.
  bool isa_identical = true;
  const std::vector<simd::Arch> archs = simd::available_archs();
  {
    Table it({"dispatch", "us/lane", "vs analyze()", "identical"});
    double sse2_us = 0.0, avx2_us = 0.0;
    for (const simd::Arch a : archs) {
      if (!simd::set_arch(a)) continue;  // compiled targets are settable
      std::vector<StaResult> res(8);
      bool same = true;
      const auto ta = clock::now();
      for (int k = 0; k < kernel_lanes; k += 8) {
        sta.analyze_batch(
            std::span(factor_sets).subspan(static_cast<std::size_t>(k), 8),
            std::span(res));
        for (int l = 0; l < 8; ++l) {
          const StaResult& sr = scalar_res[static_cast<std::size_t>(k + l)];
          const StaResult& br = res[static_cast<std::size_t>(l)];
          same &= sr.wns == br.wns && sr.tns == br.tns &&
                  sr.min_period_ns == br.min_period_ns &&
                  sr.stage_wns == br.stage_wns &&
                  sr.endpoint_slack == br.endpoint_slack;
        }
      }
      const std::chrono::duration<double> isa_s = clock::now() - ta;
      const double us = isa_s.count() / kernel_lanes * 1e6;
      if (a == simd::Arch::Sse2) sse2_us = us;
      if (a == simd::Arch::Avx2) avx2_us = us;
      isa_identical &= same;
      it.add_row({simd::arch_name(a), Table::num(us, 2),
                  Table::num(kern_scalar_s.count() / isa_s.count(), 2),
                  same ? "yes" : "NO (BUG)"});
      // "kernel_scalar_us_per_lane" is section 4's analyze() baseline;
      // the dispatched W=1 kernel gets its own kernel_w1 row.
      char key[48];
      std::snprintf(key, sizeof key, "kernel_%s_us_per_lane",
                    a == simd::Arch::Scalar ? "w1" : simd::arch_name(a));
      out.set(key, us);
    }
    simd::reset_arch();
    std::printf("propagation kernel per dispatch target (%d lanes, batch 8, "
                "bit-compared against scalar analyze(), %s):\n%s",
                kernel_lanes,
                isa_identical ? "all bit-identical" : "MISMATCH (BUG)",
                it.render().c_str());
    if (sse2_us > 0.0 && avx2_us > 0.0) {
      const double wide_speedup = sse2_us / avx2_us;
      out.set("kernel_avx2_speedup_vs_sse2", wide_speedup);
      std::printf("avx2 vs sse2: %.2fx per lane\n", wide_speedup);
      if (wide_speedup < 1.5) {
        std::printf("WARNING: AVX2 kernel speedup %.2fx over SSE2 below the "
                    "1.5x target\n", wide_speedup);
      }
    }
    std::printf("\n");
  }

  // 8. The BatchedSimd stream across dispatch targets.  The SIMD layer's
  // own Box-Muller (Rng::normals_simd -> v_log / v_sincos) must produce
  // the SAME bytes on every target — that is the whole reason the
  // profile is versioned (DESIGN.md §17).  Three gates, all hard:
  //   a) draw isolation: draw_factors_batch(simd_normals = true) byte-
  //      compared (memcmp) across every target;
  //   b) a pinned Batched full run must still reproduce the batched
  //      reference — the relax and table kernels are TRANSPARENT: they
  //      dispatch by ISA yet never change bits in any profile;
  //   c) pinned BatchedSimd full runs must fingerprint identically
  //      across targets, plus the profile's own width/thread invariance.
  bool simd_identical = true;
  McResult simd_ref;
  {
    const int draw_lanes = kernel_lanes;
    const std::size_t n_inst = design.num_instances();
    VariationModel::DrawScratch scratch;
    AlignedVec<double> factor_soa(n_inst * 8);
    std::vector<double> ref_stream;  // first target's full draw stream
    std::string simd_reference;
    Table st({"dispatch", "draw us/sample", "draw bytes", "run fp"});
    for (const simd::Arch a : archs) {
      if (!simd::set_arch(a)) continue;
      t0 = clock::now();
      for (int k = 0; k < draw_lanes; k += 8) {
        model.draw_factors_batch(design, sta, systematic, stencils, base.seed,
                                 static_cast<std::uint64_t>(k), 8,
                                 std::span(factor_soa), scratch, true);
      }
      const std::chrono::duration<double> dsimd_s = clock::now() - t0;
      // Untimed verify pass: regenerate every batch and byte-compare the
      // whole stream against the first target's capture.
      bool bytes_same = true;
      const bool first_target = ref_stream.empty();
      for (int k = 0; k < draw_lanes; k += 8) {
        model.draw_factors_batch(design, sta, systematic, stencils, base.seed,
                                 static_cast<std::uint64_t>(k), 8,
                                 std::span(factor_soa), scratch, true);
        if (first_target) {
          ref_stream.insert(ref_stream.end(), factor_soa.begin(),
                            factor_soa.end());
        } else {
          bytes_same &=
              std::memcmp(
                  ref_stream.data() + static_cast<std::size_t>(k) * n_inst,
                  factor_soa.data(), n_inst * 8 * sizeof(double)) == 0;
        }
      }
      auto [simd_run, simd_run_s] = run(DrawProfile::BatchedSimd, 8, nullptr);
      const std::string fp = fingerprint(simd_run);
      bool fp_same = true;
      if (simd_reference.empty()) {
        simd_reference = fp;
        simd_ref = std::move(simd_run);
        (void)simd_run_s;
      } else {
        fp_same = fp == simd_reference;
      }
      auto [batched_again, batched_again_s] =
          run(DrawProfile::Batched, 8, nullptr);
      (void)batched_again_s;
      const bool transparent = fingerprint(batched_again) == batched_reference;
      simd_identical &= bytes_same && fp_same && transparent;
      const double us = dsimd_s.count() / draw_lanes * 1e6;
      char key[48];
      std::snprintf(key, sizeof key, "draw_%s_us_per_sample",
                    a == simd::Arch::Scalar ? "w1" : simd::arch_name(a));
      out.set(key, us);
      st.add_row({simd::arch_name(a), Table::num(us, 2),
                  bytes_same ? (first_target ? "ref" : "identical")
                             : "MISMATCH",
                  !transparent
                      ? "batched DIVERGED"
                      : (fp_same ? (first_target ? "ref" : "identical")
                                 : "MISMATCH")});
    }
    simd::reset_arch();
    // Width/thread invariance of the BatchedSimd profile itself — the
    // same contract Batched carries, checked the same way.  The unpinned
    // batch-8 serial run doubles as the profile's throughput number: the
    // pinned loop above starts with the scalar target, whose draw cost
    // says nothing about what the autodetected dispatch delivers.
    double simd_unpinned_s = 0.0;
    {
      auto [w8u, w8u_s] = run(DrawProfile::BatchedSimd, 8, nullptr);
      simd_unpinned_s = w8u_s;
      simd_identical &= fingerprint(w8u) == simd_reference;
      auto [w16, w16_s] = run(DrawProfile::BatchedSimd, 16, nullptr);
      (void)w16_s;
      simd_identical &= fingerprint(w16) == simd_reference;
      ThreadPool pool(std::min(4u, hw));
      auto [pooled, pooled_s] = run(DrawProfile::BatchedSimd, 8, &pool);
      (void)pooled_s;
      simd_identical &= fingerprint(pooled) == simd_reference;
    }
    std::printf("BatchedSimd stream across dispatch targets (%d draw lanes; "
                "one pinned full run per target):\n%s",
                draw_lanes, st.render().c_str());
    std::printf("BatchedSimd serial (batch 8, %s dispatch): %.0f samples/sec "
                "(%.2fx scalar), %s\n\n",
                simd::arch_name(simd::active_arch()), samples / simd_unpinned_s,
                scalar_s / simd_unpinned_s,
                simd_identical ? "arch/width/thread-invariant"
                               : "INVARIANCE BROKEN (BUG)");
    out.set("simd_profile_samples_per_sec", samples / simd_unpinned_s);
    out.set("simd_profile_speedup_vs_scalar", scalar_s / simd_unpinned_s);
  }

  // 9. End-to-end time attribution of one batched sample.  Replicate the
  // engine's Batched per-batch loop phase-by-phase — factor draw
  // (draw_factors_batch), SoA propagation (analyze_batch_soa), tally
  // reduce (the per-lane endpoint/stage bookkeeping) — with its own
  // timers, and gate the three phases against the loop's wall clock:
  // within 5 % or the attribution (and any conclusion drawn from it) is
  // fiction.  This is the measurement that explains section 2: the
  // isolated batch-8 kernel beats scalar propagation ~2x, yet
  // batchN_speedup_e2e sits near 1.0 because under the SCALAR profile
  // the per-gate draw (polar normals + pow) dominates wall time and is
  // identical in both paths.  The Batched profile shrinks exactly that
  // phase, which is where section 5's end-to-end speedup comes from.
  bool attribution_ok = true;
  double attribution_frac = 0.0;
  {
    const int att_samples = kernel_lanes;
    const std::size_t n_inst = design.num_instances();
    StaEngine eng(sta);
    VariationModel::DrawScratch scratch;
    AlignedVec<double> factor_soa(n_inst * 8);
    std::vector<StaResult> results(8);
    const auto& endpoints = sta.endpoints();
    const std::size_t num_eps = endpoints.size();
    std::vector<std::uint32_t> crit(num_eps, 0), stage_crit(num_eps, 0);
    std::vector<std::array<double, kNumPipeStages>> stage_wns(
        static_cast<std::size_t>(att_samples));
    std::vector<double> min_period(static_cast<std::size_t>(att_samples));
    double t_draw = 0.0, t_prop = 0.0, t_tally = 0.0;
    const auto wall0 = clock::now();
    for (int k = 0; k < att_samples; k += 8) {
      const auto tp = clock::now();
      model.draw_factors_batch(design, eng, systematic, stencils, base.seed,
                               static_cast<std::uint64_t>(k), 8,
                               std::span(factor_soa), scratch);
      const auto tq = clock::now();
      eng.analyze_batch_soa(std::span<const double>(factor_soa), 8,
                            std::span(results));
      const auto tr = clock::now();
      for (int l = 0; l < 8; ++l) {
        const StaResult& sr = results[static_cast<std::size_t>(l)];
        stage_wns[static_cast<std::size_t>(k + l)] = sr.stage_wns;
        min_period[static_cast<std::size_t>(k + l)] = sr.min_period_ns;
        for (std::size_t epi = 0; epi < num_eps; ++epi) {
          const double slack = sr.endpoint_slack[epi];
          if (!std::isfinite(slack)) continue;
          if (slack < 0.0) ++crit[epi];
          const double swns =
              sr.stage_wns[static_cast<std::size_t>(endpoints[epi].stage)];
          if (slack <= swns + 1e-12) ++stage_crit[epi];
        }
      }
      const auto ts = clock::now();
      t_draw += std::chrono::duration<double>(tq - tp).count();
      t_prop += std::chrono::duration<double>(tr - tq).count();
      t_tally += std::chrono::duration<double>(ts - tr).count();
    }
    const double wall =
        std::chrono::duration<double>(clock::now() - wall0).count();
    const double phase_sum = t_draw + t_prop + t_tally;
    attribution_frac = phase_sum / wall;
    attribution_ok = std::abs(phase_sum - wall) <= 0.05 * wall;
    const double us = 1e6 / att_samples;
    std::printf(
        "batched-profile time attribution (%d samples, batch 8, serial):\n"
        "  draw   %8.2f us/sample  (%4.1f%% of wall)\n"
        "  prop   %8.2f us/sample  (%4.1f%% of wall)\n"
        "  tally  %8.2f us/sample  (%4.1f%% of wall)\n"
        "  phases sum to %.1f%% of wall — %s (gate: within 5%%)\n",
        att_samples, t_draw * us, 100.0 * t_draw / wall, t_prop * us,
        100.0 * t_prop / wall, t_tally * us, 100.0 * t_tally / wall,
        100.0 * attribution_frac,
        attribution_ok ? "accounted" : "UNACCOUNTED TIME (BUG)");
    std::printf(
        "  -> section 2's batchN_speedup_e2e ~ 1.0 explained: the Scalar "
        "profile draws at %.1f us/sample in BOTH the batch-1 and batch-N "
        "paths, dwarfing the %.2f -> %.2f us/lane propagation win; the "
        "Batched draw cuts that phase to %.1f us/sample, which is where "
        "section 5's end-to-end gain comes from\n\n",
        draw_scalar_us, kern_scalar_s.count() / kernel_lanes * 1e6,
        prop_us_per_lane, draw_batch_us);
    out.set("e2e_draw_us_per_sample", t_draw * us);
    out.set("e2e_prop_us_per_sample", t_prop * us);
    out.set("e2e_tally_us_per_sample", t_tally * us);
    out.set("e2e_phase_sum_over_wall", attribution_frac);
  }

  // 10. Statistical agreement between the profiles (hard gates): Batched
  // and BatchedSimd each use a different stream than Scalar, but all
  // three estimate the same population.
  const bool stats_ok = stages_statistically_agree(
      "scalar-vs-batched", scalar_ref, batched_ref, samples);
  const bool simd_stats_ok = stages_statistically_agree(
      "scalar-vs-batchedsimd", scalar_ref, simd_ref, samples);

  // 11. Incremental re-cornering (StaEngine::recorner_delta, DESIGN.md
  // §12).  The compensation loop flips exactly ONE voltage island per
  // escalation step, so re-cornering should cost the flipped domain's
  // fan-out cone, not a full compute_base + whole-graph propagation.
  // Slice the core into nested right-edge islands (the paper's
  // VI1⊂VI2⊂VI3 geometry), walk an escalation ladder up and down, and
  // time the full path against recorner_delta for the same flip
  // sequence.  Every step must stay bit-identical — result fields and
  // the whole base/slew/corner state alike (hard gate, like sections
  // 1-5).
  bool recorner_identical = true;
  {
    const Rect& die = fp.die();
    for (InstId i = 0; i < design.num_instances(); ++i) {
      const double frac = (design.instance(i).pos.x - die.lo.x) / die.width();
      DomainId dom = 0;
      if (frac > 0.985) dom = 1;
      else if (frac > 0.97) dom = 2;
      else if (frac > 0.955) dom = 3;
      design.instance(i).domain = dom;
    }
    StaEngine full_eng(sta);
    StaEngine delta_eng(sta);
    std::vector<int> corners(4, kVddLow);
    full_eng.compute_base(corners);
    (void)full_eng.analyze();
    delta_eng.compute_base(corners);
    (void)delta_eng.recorner_delta(1, kVddLow);  // warm index + caches

    // Escalation ladder: raise islands 1..3 then lower them again; every
    // step is a single-island flip (the compensation loop's unit of work).
    const std::pair<DomainId, int> ladder[] = {
        {1, kVddHigh}, {2, kVddHigh}, {3, kVddHigh},
        {3, kVddLow},  {2, kVddLow},  {1, kVddLow}};
    constexpr int kReps = 25;
    constexpr int kSteps = kReps * static_cast<int>(std::size(ladder));
    std::vector<StaResult> full_res(kSteps), delta_res(kSteps);

    t0 = clock::now();
    for (int r = 0, s = 0; r < kReps; ++r) {
      for (const auto& [dom, corner] : ladder) {
        corners[dom] = corner;
        full_eng.compute_base(corners);
        full_res[static_cast<std::size_t>(s++)] = full_eng.analyze();
      }
    }
    const std::chrono::duration<double> full_s = clock::now() - t0;

    double cone_nodes_sum = 0.0, slew_visited_sum = 0.0;
    t0 = clock::now();
    for (int r = 0, s = 0; r < kReps; ++r) {
      for (const auto& [dom, corner] : ladder) {
        delta_res[static_cast<std::size_t>(s++)] =
            delta_eng.recorner_delta(dom, corner);
        cone_nodes_sum += delta_eng.recorner_stats().cone_nodes;
        slew_visited_sum += delta_eng.recorner_stats().slew_nodes_visited;
      }
    }
    const std::chrono::duration<double> delta_s = clock::now() - t0;

    for (int s = 0; s < kSteps; ++s) {
      const StaResult& a = full_res[static_cast<std::size_t>(s)];
      const StaResult& b = delta_res[static_cast<std::size_t>(s)];
      recorner_identical &= a.wns == b.wns && a.tns == b.tns &&
                            a.min_period_ns == b.min_period_ns &&
                            a.stage_wns == b.stage_wns &&
                            a.endpoint_slack == b.endpoint_slack;
    }
    const auto snap_full = full_eng.snapshot_bases();
    const auto snap_delta = delta_eng.snapshot_bases();
    recorner_identical &= snap_full.edge_base == snap_delta.edge_base &&
                          snap_full.launch_base == snap_delta.launch_base &&
                          snap_full.slew == snap_delta.slew &&
                          snap_full.inst_corner == snap_delta.inst_corner;

    const double full_us = full_s.count() / kSteps * 1e6;
    const double delta_us = delta_s.count() / kSteps * 1e6;
    const double recorner_speedup = full_us / delta_us;
    std::printf("incremental re-corner (%d single-island flips, nested "
                "right-edge islands):\n"
                "  full compute_base+analyze  %8.1f us/flip\n"
                "  recorner_delta             %8.1f us/flip  -> %.2fx, %s\n"
                "  mean cone %.0f nodes (%.1f%% of graph), mean slew-pass "
                "visits %.0f nodes\n\n",
                kSteps, full_us, delta_us, recorner_speedup,
                recorner_identical ? "bit-identical" : "MISMATCH (BUG)",
                cone_nodes_sum / kSteps,
                100.0 * cone_nodes_sum / kSteps /
                    static_cast<double>(sta.num_nodes()),
                slew_visited_sum / kSteps);
    out.set("recorner_flips", kSteps);
    out.set("recorner_full_us_per_flip", full_us);
    out.set("recorner_delta_us_per_flip", delta_us);
    out.set("recorner_speedup", recorner_speedup);
    out.set("recorner_mean_cone_nodes", cone_nodes_sum / kSteps);
    out.set("recorner_mean_cone_fraction",
            cone_nodes_sum / kSteps / static_cast<double>(sta.num_nodes()));
    out.set("recorner_mean_slew_visits", slew_visited_sum / kSteps);
    if (recorner_speedup < 3.0) {
      std::printf("WARNING: recorner_delta speedup %.2fx below the 3x "
                  "target\n", recorner_speedup);
    }
  }

  // 12. Adaptive sequential sampling vs the fixed budget (DESIGN.md §14).
  // The CI target is fixed a priori off the scalar reference fits: pin
  // every stage's sigma to +/-15 % and its mean to +/-40 % of the worst
  // stage sigma, at 95 % — a precision the fixed budget comfortably
  // overshoots, so a correct sequential rule stops well short of it
  // (sample savings, soft target).  The hard gate is prefix equivalence:
  // the adaptive run stopping at N must fingerprint identically to a
  // fixed run with samples = N, serial AND pooled.
  bool adaptive_identical = true;
  int adaptive_n = 0;
  double adaptive_savings = 0.0;
  {
    const int fixed_budget = std::min(samples, 500);
    double sigma_max = 0.0;
    for (const auto& sd : scalar_ref.stages) {
      if (sd.present) sigma_max = std::max(sigma_max, sd.fit.stddev);
    }

    McConfig acfg = base;
    acfg.adaptive.enabled = true;
    acfg.adaptive.min_samples = 32;
    acfg.adaptive.max_samples = fixed_budget;
    acfg.adaptive.check_every_batches = 2;
    acfg.adaptive.sigma_half_width_ns = 0.15 * sigma_max;
    acfg.adaptive.mean_half_width_ns = 0.40 * sigma_max;

    t0 = clock::now();
    const McResult adaptive = mc.run(loc, acfg);
    const std::chrono::duration<double> adaptive_s = clock::now() - t0;
    adaptive_n = adaptive.samples;
    const std::string adaptive_fp = fingerprint(adaptive);

    ThreadPool pool(std::min(4u, hw));
    t0 = clock::now();
    const McResult adaptive_pooled = mc.run(loc, acfg, &pool);
    const std::chrono::duration<double> adaptive_pool_s = clock::now() - t0;
    const bool pooled_same = fingerprint(adaptive_pooled) == adaptive_fp &&
                             adaptive_pooled.samples == adaptive_n;
    adaptive_identical &= pooled_same;

    McConfig fcfg = base;
    fcfg.samples = adaptive_n;
    const bool fixed_same = fingerprint(mc.run(loc, fcfg)) == adaptive_fp;
    const bool fixed_pool_same =
        fingerprint(mc.run(loc, fcfg, &pool)) == adaptive_fp;
    adaptive_identical &= fixed_same && fixed_pool_same;

    fcfg.samples = fixed_budget;
    t0 = clock::now();
    (void)mc.run(loc, fcfg);
    const std::chrono::duration<double> fixed_s = clock::now() - t0;

    adaptive_savings =
        1.0 - static_cast<double>(adaptive_n) / fixed_budget;
    Table at({"config", "samples", "wall [s]", "stop", "identical"});
    at.add_row({"fixed budget", std::to_string(fixed_budget),
                Table::num(fixed_s.count(), 3), "fixed-budget", "-"});
    at.add_row({"adaptive serial", std::to_string(adaptive_n),
                Table::num(adaptive_s.count(), 3),
                mc_stop_name(adaptive.stopping_reason), "ref"});
    at.add_row({"adaptive pooled", std::to_string(adaptive_pooled.samples),
                Table::num(adaptive_pool_s.count(), 3),
                mc_stop_name(adaptive_pooled.stopping_reason),
                pooled_same ? "yes" : "NO (BUG)"});
    char nlabel[40];
    std::snprintf(nlabel, sizeof nlabel, "fixed at N=%d", adaptive_n);
    at.add_row({nlabel, std::to_string(adaptive_n), "-", "fixed-budget",
                fixed_same && fixed_pool_same ? "yes" : "NO (BUG)"});
    std::printf("adaptive sampling (sigma hw <= %.4g ns, mean hw <= %.4g ns "
                "at 95 %%):\n%s",
                acfg.adaptive.sigma_half_width_ns,
                acfg.adaptive.mean_half_width_ns, at.render().c_str());
    std::printf("convergence:");
    for (const McRound& r : adaptive.convergence) {
      std::printf(" %d:%.4f/%.4f", r.samples, r.worst_mean_half_width_ns,
                  r.worst_sigma_half_width_ns);
    }
    std::printf("  -> %s, %.1f%% of the fixed budget never drawn\n\n",
                mc_stop_name(adaptive.stopping_reason),
                100.0 * adaptive_savings);

    out.set("adaptive_fixed_budget", fixed_budget);
    out.set("adaptive_samples", adaptive_n);
    out.set("adaptive_rounds", static_cast<double>(adaptive.convergence.size()));
    out.set("adaptive_converged",
            adaptive.stopping_reason == McStop::Converged ? 1.0 : 0.0);
    out.set("adaptive_sample_savings", adaptive_savings);
    out.set("adaptive_wall_s", adaptive_s.count());
    out.set("adaptive_fixed_budget_wall_s", fixed_s.count());
    out.set("adaptive_speedup_vs_fixed", fixed_s.count() / adaptive_s.count());
  }

  out.write(bench::out_path(argc, argv, "BENCH_mc.json"));

  if (!all_identical) {
    std::printf("DETERMINISM VIOLATION: a Scalar-profile configuration "
                "differs from the scalar-serial reference\n");
    return 1;
  }
  if (!batched_identical) {
    std::printf("DETERMINISM VIOLATION: a Batched-profile configuration "
                "differs from the batched reference (width/thread layout "
                "leaked into the draw)\n");
    return 1;
  }
  if (!isa_identical) {
    std::printf("BIT-IDENTITY VIOLATION: a pinned dispatch target's batched "
                "propagation diverged from scalar analyze() — the per-lane "
                "contract of DESIGN.md §17 is broken\n");
    return 1;
  }
  if (!simd_identical) {
    std::printf("BIT-IDENTITY VIOLATION: the BatchedSimd stream is not "
                "invariant across dispatch targets / widths / threads, or a "
                "pinned Batched run diverged from the batched reference\n");
    return 1;
  }
  if (!attribution_ok) {
    std::printf("ATTRIBUTION FAILURE: draw+prop+tally account for %.1f%% of "
                "the replicated batched loop's wall clock (gate: 100%% +/- "
                "5%%) — a phase is being measured outside the split\n",
                100.0 * attribution_frac);
    return 1;
  }
  if (!stats_ok || !simd_stats_ok) {
    std::printf("STATISTICAL DISAGREEMENT: a profile's stage-slack fits "
                "differ from the Scalar profile beyond sampling error — one "
                "of the draw engines is biased\n");
    return 1;
  }
  if (!recorner_identical) {
    std::printf("DETERMINISM VIOLATION: recorner_delta diverged from the "
                "full compute_base+analyze re-corner\n");
    return 1;
  }
  if (!adaptive_identical) {
    std::printf("DETERMINISM VIOLATION: the adaptive run stopping at N=%d "
                "is not bit-identical to a fixed run with samples = N "
                "(prefix equivalence broken)\n", adaptive_n);
    return 1;
  }
  if (adaptive_savings <= 0.0) {
    std::printf("WARNING: adaptive sampling drew the whole fixed budget — "
                "no sample savings at the a-priori CI target\n");
  }
  if (kernel_speedup < 1.5) {
    std::printf("WARNING: batched kernel speedup %.2fx below the 1.5x "
                "target\n", kernel_speedup);
  }
  if (batched_speedup < 2.0) {
    std::printf("WARNING: Batched-profile serial throughput %.2fx the scalar "
                "baseline, below the 2x target\n", batched_speedup);
  }
  // The 4x combined target needs real cores; smaller machines still
  // verified bit-identity above, which is the part that silently breaks.
  if (hw >= 8 && speedup_hw < 4.0) {
    std::printf("WARNING: combined speedup %.2fx at %u threads below the "
                "4x target\n", speedup_hw, speedup_hw_threads);
    return 1;
  }
  if (hw < 8) {
    std::printf("note: only %u hardware thread(s); thread-scaling targets "
                "are not enforceable here\n", hw);
  }
  return 0;
}
