// Fig. 6 reproduction: normalized leakage power of the compensation
// schemes.  Paper findings: raising islands to 1.2 V raises their cells'
// leakage (lower effective Vth via DIBL + higher drain bias), and the
// level shifters add their own static draw; even so, vertical slicing
// leaks LESS than the level-shifter-free chip-wide high-Vdd design in
// every scenario, while (their) horizontal slicing exceeded it.

#include <cstdio>

#include "util/table.hpp"

#include "common.hpp"

int main() {
  using namespace vipvt;
  bench::print_header("Fig. 6", "normalized leakage power per violation scenario");

  std::unique_ptr<Flow> flows[2];
  std::printf("\n-- building horizontal-slicing flow --\n");
  flows[0] = bench::make_flow(SliceDir::Horizontal);
  std::printf("\n-- building vertical-slicing flow --\n");
  flows[1] = bench::make_flow(SliceDir::Vertical);

  const char points[] = {'A', 'B', 'C'};
  Table t({"scenario (location)", "islands", "chip-wide leak [mW]",
           "VI hor (norm)", "VI ver (norm)", "LS leak share (ver)"});
  for (int idx = 0; idx < 3; ++idx) {
    const DieLocation loc = DieLocation::point(points[idx]);
    double norm[2] = {0, 0};
    double ls_share = 0.0;
    double cw_leak = 0.0;
    int raised = 0;
    for (int f = 0; f < 2; ++f) {
      Flow& flow = *flows[f];
      const int islands = flow.island_plan().num_islands();
      raised = std::max(1, islands - idx);
      const PowerBreakdown vi = flow.power_for_severity(raised, loc);
      const PowerBreakdown cw = flow.power_chip_wide_high(loc);
      norm[f] = vi.leakage_mw / cw.leakage_mw;
      if (f == 1) {
        cw_leak = cw.leakage_mw;
        ls_share = vi.level_shifter_leakage_mw / vi.leakage_mw;
      }
    }
    t.add_row({std::string("severity ") + std::to_string(3 - idx) + " (" +
                   points[idx] + ")",
               std::to_string(raised), Table::num(cw_leak, 4),
               Table::num(norm[0], 3), Table::num(norm[1], 3),
               Table::pct(ls_share, 1)});
  }
  std::printf("\n%s\n", t.render().c_str());

  // Leakage share of total power (paper: <= 1.6 % on the LP library).
  const PowerBreakdown p = flows[1]->power_for_severity(
      flows[1]->island_plan().num_islands(), DieLocation::point('A'));
  std::printf("leakage share of total power (ver, worst scenario): %s "
              "(paper: leakage <= 1.6 %% of total on the low-power "
              "library)\n\n",
              Table::pct(p.leakage_mw / p.total_mw(), 2).c_str());

  std::printf("shape checks (paper): normalized VI leakage < 1.0 for the "
              "power-efficient slicing direction in all scenarios — the\n"
              "leakage added by level shifters is smaller than the leakage "
              "avoided by keeping most of the chip at 1.0 V.\n");
  return 0;
}
