// Fig. 2 reproduction: the systematic across-field Lgate map.  Prints the
// ASCII rendition of the exposure-field polynomial (dark = long gates =
// slow silicon, lower-left) plus the systematic deviation at the paper's
// four reference core locations A..D.

#include <cstdio>

#include "liberty/physics.hpp"
#include "util/table.hpp"
#include "variation/field.hpp"

#include "common.hpp"

int main() {
  using namespace vipvt;
  bench::print_header("Fig. 2", "systematic variation aware Lgate map");

  CharParams cp;
  const ExposureField field = ExposureField::scaled_65nm(cp);

  std::printf("exposure field: %.0f x %.0f mm, nominal Lgate %.1f nm, "
              "max systematic deviation +/- %.1f %%\n\n",
              field.field_mm(), field.field_mm(), field.lgate_nom(),
              field.max_dev_frac() * 100.0);
  std::printf("%s\n", field.ascii_map(36).c_str());
  std::printf("(dark '#' = +%.1f %% Lgate, slowest; ' ' = -%.1f %%, "
              "fastest; origin at lower-left)\n\n",
              field.max_dev_frac() * 100.0, field.max_dev_frac() * 100.0);

  Table t({"core position", "field x/y [mm]", "Lgate [nm]", "deviation",
           "expected behaviour (paper)"});
  const char* expect[] = {
      "slowest: all stages violate", "EX+DC violate", "only EX violates",
      "nominal performance"};
  int idx = 0;
  for (char p : {'A', 'B', 'C', 'D'}) {
    const DieLocation loc = DieLocation::point(p);
    const Point f = loc.field_mm({0.0, 0.0});
    const double lg = field.lgate_at(f.x, f.y);
    t.add_row({std::string(1, p), Table::num(f.x, 2) + "/" + Table::num(f.y, 2),
               Table::num(lg, 2),
               Table::pct((lg - field.lgate_nom()) / field.lgate_nom(), 2),
               expect[idx++]});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("paper: 2nd-order polynomial of exposure-field position "
              "(Eq. 1), coefficients scaled from 130 nm measurements so the\n"
              "systematic component spans +/- 5.5 %% at 65 nm; slowest corner "
              "at the lower-left of the field.  Reproduced: same form,\n"
              "same span, same orientation.\n");
  return 0;
}
