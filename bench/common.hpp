#pragma once
// Shared configuration for the paper-reproduction benches: every table
// and figure is regenerated on the same full-size 4-way VEX flow the
// paper evaluates (64x32 register file, 4 slots, 65 nm-class dual-Vdd
// library), differing only in the voltage-island slicing direction.

#include <cstdio>
#include <memory>
#include <string>

#include "vi/flow.hpp"

namespace vipvt::bench {

inline FlowConfig paper_flow_config(SliceDir dir = SliceDir::Vertical) {
  FlowConfig cfg;
  cfg.vex = VexConfig{};  // full 4-way, 32-bit, 64-reg core
  cfg.scenario.sweep_points = 12;
  cfg.scenario.mc.samples = 300;
  cfg.islands.dir = dir;
  cfg.islands.mc_samples = 100;
  cfg.sim_cycles = 400;
  return cfg;
}

/// Builds the flow through the requested stage, printing progress.
inline std::unique_ptr<Flow> make_flow(SliceDir dir = SliceDir::Vertical,
                                       bool through_activity = true) {
  auto flow = std::make_unique<Flow>(paper_flow_config(dir));
  std::printf("# design: %zu instances, %zu nets, clock %.3f ns (%.1f MHz)\n",
              flow->design().num_instances(), flow->design().num_nets(),
              flow->nominal_clock_ns(), 1e3 / flow->nominal_clock_ns());
  if (through_activity) {
    flow->simulate_activity();  // runs the whole pipeline
  }
  return flow;
}

inline void print_header(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
}

}  // namespace vipvt::bench
