#pragma once
// Shared configuration for the paper-reproduction benches: every table
// and figure is regenerated on the same full-size 4-way VEX flow the
// paper evaluates (64x32 register file, 4 slots, 65 nm-class dual-Vdd
// library), differing only in the voltage-island slicing direction.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/simd/dispatch.hpp"
#include "vi/flow.hpp"

namespace vipvt::bench {

inline FlowConfig paper_flow_config(SliceDir dir = SliceDir::Vertical) {
  FlowConfig cfg;
  cfg.vex = VexConfig{};  // full 4-way, 32-bit, 64-reg core
  cfg.scenario.sweep_points = 12;
  cfg.scenario.mc.samples = 300;
  cfg.islands.dir = dir;
  cfg.islands.mc_samples = 100;
  cfg.sim_cycles = 400;
  return cfg;
}

/// Builds the flow through the requested stage, printing progress.
inline std::unique_ptr<Flow> make_flow(SliceDir dir = SliceDir::Vertical,
                                       bool through_activity = true) {
  auto flow = std::make_unique<Flow>(paper_flow_config(dir));
  std::printf("# design: %zu instances, %zu nets, clock %.3f ns (%.1f MHz)\n",
              flow->design().num_instances(), flow->design().num_nets(),
              flow->nominal_clock_ns(), 1e3 / flow->nominal_clock_ns());
  if (through_activity) {
    flow->simulate_activity();  // runs the whole pipeline
  }
  return flow;
}

/// Integer argv option of the form `--name N` (e.g. `--samples 256` for
/// the CI smoke budget).  Returns `fallback` when absent.
inline int arg_int(int argc, char** argv, const char* name, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

/// Where a bench's BENCH_*.json belongs.  Benches run from the build
/// tree, but the JSON artifacts are committed at the repo root so the
/// perf trajectory is tracked across PRs — writing next to the binary
/// silently drops them into the (ignored) build directory.  Resolution:
/// an explicit `--out PATH` wins; otherwise walk up from the current
/// directory to the first directory containing ROADMAP.md (the repo
/// marker); fall back to the current directory.
inline std::string out_path(int argc, char** argv,
                            const std::string& filename) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) return argv[i + 1];
  }
  namespace fs = std::filesystem;
  std::error_code ec;
  for (fs::path d = fs::current_path(ec); !ec && !d.empty();
       d = d.parent_path()) {
    if (fs::exists(d / "ROADMAP.md", ec)) return (d / filename).string();
    if (d == d.root_path()) break;
  }
  return filename;
}

inline void print_header(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
  // CPU capability provenance: perf numbers in bench_output.txt are only
  // comparable across machines when the ISA context is recorded alongside
  // (DESIGN.md §17).
  std::printf("# cpu: %s | dispatch: %s\n", simd::cpu_features().c_str(),
              simd::arch_name(simd::active_arch()));
}

/// Short git revision of the working tree, or "unknown" outside a repo /
/// without git on PATH.  Shelling out keeps the build free of a libgit
/// dependency; a bench runs once per result file, so the popen cost is
/// irrelevant.
inline std::string git_short_sha() {
  FILE* p = ::popen("git rev-parse --short=12 HEAD 2>/dev/null", "r");
  if (p == nullptr) return "unknown";
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, p);
  const int rc = ::pclose(p);
  std::string sha(buf, n);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  if (rc != 0 || sha.empty()) return "unknown";
  return sha;
}

/// Current UTC time as ISO-8601 (e.g. "2026-08-08T12:34:56Z").
inline std::string iso_utc_now() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Machine-readable bench result sink: accumulate flat key -> number
/// metrics and emit them as a small JSON file (e.g. BENCH_wafer.json) so
/// future PRs can track performance trajectories without parsing the
/// human-oriented tables.  Keys are emitted in insertion order; numbers
/// with fixed precision — the file diffs cleanly run-to-run.  Every file
/// carries provenance (git_sha of the tree that produced it, UTC
/// timestamp) so a committed number is attributable to a revision.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : name_(std::move(bench_name)) {}

  void set(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Writes {"bench": name, "git_sha": ..., "date": ..., "cpu_features":
  /// ..., "dispatch_arch": ..., "metrics": {...}} to `path`.  The two CPU
  /// keys are capability provenance: a committed perf number is
  /// attributable to a revision AND to the ISA the dispatcher ran it on.
  void write(const std::string& path) const {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("cannot open " + path + " for writing");
    os << "{\n  \"bench\": \"" << name_ << "\",\n"
       << "  \"git_sha\": \"" << git_short_sha() << "\",\n"
       << "  \"date\": \"" << iso_utc_now() << "\",\n"
       << "  \"cpu_features\": \"" << simd::cpu_features() << "\",\n"
       << "  \"dispatch_arch\": \"" << simd::arch_name(simd::active_arch())
       << "\",\n"
       << "  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.6f", metrics_[i].second);
      os << (i ? ",\n    " : "\n    ") << '"' << metrics_[i].first
         << "\": " << buf;
    }
    os << "\n  }\n}\n";
    if (!os) throw std::runtime_error("write failed: " + path);
    std::printf("# wrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace vipvt::bench
