// Fig. 5 reproduction: normalized total power of the process-variation
// compensation schemes, for each timing-violation scenario.  Paper bars:
// chip-wide high Vdd (=1.0) vs {3,2,1} voltage islands at high Vdd in
// horizontal and vertical slicing.  Vertical slicing saves 8 % (worst
// scenario, point A) to 27 % (mildest, point C) over chip-wide.

#include <cstdio>

#include "util/table.hpp"

#include "common.hpp"

int main() {
  using namespace vipvt;
  bench::print_header("Fig. 5", "normalized total power per violation scenario");

  struct FlowData {
    std::unique_ptr<Flow> flow;
  };
  FlowData flows[2];
  std::printf("\n-- building horizontal-slicing flow --\n");
  flows[0].flow = bench::make_flow(SliceDir::Horizontal);
  std::printf("\n-- building vertical-slicing flow --\n");
  flows[1].flow = bench::make_flow(SliceDir::Vertical);

  // One scenario per row: severity k is fabricated/verified at its paper
  // location (A: all islands, B: all-1, C: all-2).
  const char points[] = {'A', 'B', 'C'};
  Table t({"scenario (location)", "islands raised",
           "chip-wide high Vdd", "VI horizontal", "VI vertical",
           "ver saving vs chip-wide", "paper saving (ver)"});
  const char* paper_saving[] = {"8%", "~15-20%", "27%"};

  for (int idx = 0; idx < 3; ++idx) {
    const DieLocation loc = DieLocation::point(points[idx]);
    double norm[2] = {0, 0};
    int raised = 0;
    double chipwide_total = 0.0;
    for (int f = 0; f < 2; ++f) {
      Flow& flow = *flows[f].flow;
      const int islands = flow.island_plan().num_islands();
      raised = std::max(1, islands - idx);
      const PowerBreakdown vi = flow.power_for_severity(raised, loc);
      const PowerBreakdown cw = flow.power_chip_wide_high(loc);
      norm[f] = vi.total_mw() / cw.total_mw();
      if (f == 1) chipwide_total = cw.total_mw();
    }
    t.add_row({std::string("severity ") + std::to_string(3 - idx) + " (" +
                   points[idx] + ")",
               std::to_string(raised), "1.000 (" +
                   Table::num(chipwide_total, 2) + " mW)",
               Table::num(norm[0], 3), Table::num(norm[1], 3),
               Table::pct(1.0 - norm[1], 1), paper_saving[idx]});
  }
  std::printf("\n%s\n", t.render().c_str());

  // All-low reference for context (no compensation).
  const PowerBreakdown low =
      flows[1].flow->power_all_low(DieLocation::point('A'));
  const PowerBreakdown cw =
      flows[1].flow->power_chip_wide_high(DieLocation::point('A'));
  std::printf("context: uncompensated all-low design %.3f mW vs chip-wide "
              "high Vdd %.3f mW (x%.2f)\n\n",
              low.total_mw(), cw.total_mw(), cw.total_mw() / low.total_mw());

  std::printf("shape checks (paper): VI-based compensation always beats "
              "chip-wide supply adaptation, and the saving grows as the\n"
              "violation scenario gets milder (fewer islands raised).\n");
  return 0;
}
