// Parameterized property suites: invariants that must hold across whole
// families of configurations, not just the defaults — datapath widths,
// issue widths, floorplan utilizations, supply-corner assignments, and
// variation strengths.

#include <gtest/gtest.h>

#include <memory>

#include "netlist/builder.hpp"
#include "netlist/generators.hpp"
#include "netlist/vex.hpp"
#include "placement/placer.hpp"
#include "sim/stimulus.hpp"
#include "timing/sta.hpp"
#include "util/rng.hpp"
#include "variation/mc_ssta.hpp"

namespace vipvt {
namespace {

// ---------- arithmetic generators across widths -----------------------------

class AdderWidth : public ::testing::TestWithParam<int> {};

TEST_P(AdderWidth, ClaMatchesReferenceAtAnyWidth) {
  const int w = GetParam();
  Library lib = make_st65lp_like();
  Design d("w", lib);
  NetlistBuilder b(d);
  Bus a = b.input_bus("a", w), bb = b.input_bus("b", w);
  const NetId cin = b.input("cin");
  auto add = cla_adder(b, a, bb, cin);
  Bus out = add.sum;
  out.push_back(add.cout);
  b.output(out);
  d.check();
  LogicSimulator sim(d);
  Rng rng(w);
  const std::uint64_t mask = w >= 64 ? ~0ull : ((1ull << w) - 1);
  for (int k = 0; k < 200; ++k) {
    const std::uint64_t x = rng.next() & mask;
    const std::uint64_t y = rng.next() & mask;
    const std::uint64_t c = rng.next() & 1;
    for (int i = 0; i < w; ++i) {
      sim.set_input(a[i], (x >> i) & 1);
      sim.set_input(bb[i], (y >> i) & 1);
    }
    sim.set_input(cin, c);
    sim.step();
    std::uint64_t got = 0;
    for (int i = 0; i < w; ++i) {
      got |= static_cast<std::uint64_t>(sim.value(out[i])) << i;
    }
    const bool cout = sim.value(out[static_cast<std::size_t>(w)]);
    const unsigned __int128 want =
        static_cast<unsigned __int128>(x) + y + c;
    EXPECT_EQ(got, static_cast<std::uint64_t>(want) & mask);
    EXPECT_EQ(cout, ((want >> w) & 1) != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidth,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 24,
                                           32, 48));

class MultWidth : public ::testing::TestWithParam<int> {};

TEST_P(MultWidth, WallaceMatchesReference) {
  const int w = GetParam();
  Library lib = make_st65lp_like();
  Design d("m", lib);
  NetlistBuilder b(d);
  Bus a = b.input_bus("a", w), bb = b.input_bus("b", w);
  Bus out = multiplier(b, a, bb);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(2 * w));
  b.output(out);
  d.check();
  LogicSimulator sim(d);
  Rng rng(100 + w);
  const std::uint64_t mask = (1ull << w) - 1;
  for (int k = 0; k < 150; ++k) {
    const std::uint64_t x = rng.next() & mask;
    const std::uint64_t y = rng.next() & mask;
    for (int i = 0; i < w; ++i) {
      sim.set_input(a[i], (x >> i) & 1);
      sim.set_input(bb[i], (y >> i) & 1);
    }
    sim.step();
    std::uint64_t got = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      got |= static_cast<std::uint64_t>(sim.value(out[i])) << i;
    }
    EXPECT_EQ(got, x * y) << x << "*" << y << " w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultWidth,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10, 12, 16));

class ShifterWidth : public ::testing::TestWithParam<int> {};

TEST_P(ShifterWidth, BarrelMatchesReferenceBothDirections) {
  const int w = GetParam();
  const int amt_bits = std::bit_width(static_cast<unsigned>(w)) - 1;
  for (bool left : {false, true}) {
    Library lib = make_st65lp_like();
    Design d("s", lib);
    NetlistBuilder b(d);
    Bus a = b.input_bus("a", w);
    Bus amt = b.input_bus("amt", amt_bits);
    Bus out = barrel_shifter(b, a, amt, left);
    b.output(out);
    d.check();
    LogicSimulator sim(d);
    Rng rng(7 * w + left);
    const std::uint64_t mask = (w >= 64) ? ~0ull : ((1ull << w) - 1);
    for (int k = 0; k < 120; ++k) {
      const std::uint64_t x = rng.next() & mask;
      const std::uint64_t s = rng.below(1ull << amt_bits);
      for (int i = 0; i < w; ++i) sim.set_input(a[i], (x >> i) & 1);
      for (int i = 0; i < amt_bits; ++i) sim.set_input(amt[i], (s >> i) & 1);
      sim.step();
      std::uint64_t got = 0;
      for (int i = 0; i < w; ++i) {
        got |= static_cast<std::uint64_t>(sim.value(out[i])) << i;
      }
      const std::uint64_t want =
          left ? (x << s) & mask : (x >> s);
      EXPECT_EQ(got, want) << "w=" << w << " left=" << left;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ShifterWidth,
                         ::testing::Values(4, 8, 16, 32));

// ---------- VEX configuration sweep -----------------------------------------

struct VexParam {
  int slots;
  int width;
  int regs;
};

class VexSweep : public ::testing::TestWithParam<VexParam> {};

TEST_P(VexSweep, BuildsChecksAndSimulates) {
  const VexParam p = GetParam();
  VexConfig cfg;
  cfg.slots = p.slots;
  cfg.width = p.width;
  cfg.num_regs = p.regs;
  cfg.mult_width = std::min(8, p.width / 2);
  cfg.opcode_bits = 4;
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, cfg);
  EXPECT_GT(d.num_instances(), 100u);
  LogicSimulator sim(d);
  FirStimulus stim(d, cfg, 3);
  stim.run(sim, 30);
  EXPECT_EQ(sim.cycles(), 30u);
}

INSTANTIATE_TEST_SUITE_P(Configs, VexSweep,
                         ::testing::Values(VexParam{1, 8, 8},
                                           VexParam{2, 8, 8},
                                           VexParam{2, 16, 16},
                                           VexParam{3, 8, 16},
                                           VexParam{4, 8, 8}));

// ---------- placement utilization sweep ---------------------------------------

class UtilSweep : public ::testing::TestWithParam<double> {};

TEST_P(UtilSweep, LegalAtEveryUtilization) {
  const double util = GetParam();
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig::tiny());
  FloorplanConfig fpc;
  fpc.target_utilization = util;
  Floorplan fp = Floorplan::for_design(d, fpc);
  PlacementDb db(fp);
  place_design(d, fp, PlacerConfig{}, db);
  EXPECT_NEAR(db.utilization() * fp.num_rows() * fp.sites_per_row() * 0.36,
              d.total_area(), d.total_area() * 0.2);
  for (const auto& inst : d.instances()) {
    ASSERT_TRUE(inst.placed);
    EXPECT_TRUE(fp.die().contains(inst.pos));
  }
}

INSTANTIATE_TEST_SUITE_P(Utils, UtilSweep,
                         ::testing::Values(0.4, 0.5, 0.6, 0.7, 0.8));

// ---------- STA invariants across corner assignments ---------------------------

class CornerSweep : public ::testing::TestWithParam<int> {};

TEST_P(CornerSweep, BoostingAnyDomainNeverSlowsTheDesign) {
  const int scheme = GetParam();
  static Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig::tiny());
  Floorplan fp = Floorplan::for_design(d, FloorplanConfig{});
  PlacementDb db(fp);
  place_design(d, fp, PlacerConfig{}, db);
  // Partition into 3 domains by x-thirds (scheme rotates which is which).
  const Rect& die = fp.die();
  for (InstId i = 0; i < d.num_instances(); ++i) {
    const double frac = (d.instance(i).pos.x - die.lo.x) / die.width();
    const int third = std::min(2, static_cast<int>(frac * 3));
    d.instance(i).domain = static_cast<DomainId>((third + scheme) % 3);
  }
  StaEngine sta(d, StaOptions{});
  sta.compute_base_all_low();
  const double base = sta.min_period();
  for (int mask = 1; mask < 8; ++mask) {
    std::vector<int> corners(3, kVddLow);
    for (int k = 0; k < 3; ++k) {
      if (mask & (1 << k)) corners[static_cast<std::size_t>(k)] = kVddHigh;
    }
    sta.compute_base(corners);
    const double t = sta.min_period();
    EXPECT_LE(t, base + 1e-9) << "mask " << mask;
  }
  // All-high is at least as fast as any partial boost.
  sta.compute_base(std::vector<int>{kVddHigh, kVddHigh, kVddHigh});
  const double all_high = sta.min_period();
  EXPECT_LT(all_high, base);
}

INSTANTIATE_TEST_SUITE_P(Schemes, CornerSweep, ::testing::Values(0, 1, 2));

// ---------- variation-strength monotonicity -----------------------------------

class VariationStrength : public ::testing::TestWithParam<double> {};

TEST_P(VariationStrength, StrongerRandomWidensStageSigma) {
  const double frac = GetParam();
  static Library lib = make_st65lp_like();
  static std::unique_ptr<Design> d;
  static std::unique_ptr<Floorplan> fp;
  static std::unique_ptr<StaEngine> sta;
  if (!d) {
    d = std::make_unique<Design>(make_vex_design(lib, VexConfig::tiny()));
    fp = std::make_unique<Floorplan>(
        Floorplan::for_design(*d, FloorplanConfig{}));
    PlacementDb db(*fp);
    place_design(*d, *fp, PlacerConfig{}, db);
    sta = std::make_unique<StaEngine>(*d, StaOptions{});
    sta->set_clock_period(sta->min_period() * 1.04);
  }
  CharParams cp = lib.char_params();
  ExposureField field = ExposureField::scaled_65nm(cp);
  VariationConfig weak_cfg, strong_cfg;
  weak_cfg.three_sigma_random_frac = frac;
  strong_cfg.three_sigma_random_frac = frac * 2.0;
  VariationModel weak(cp, field, weak_cfg);
  VariationModel strong(cp, field, strong_cfg);
  McConfig mcc;
  mcc.samples = 120;
  MonteCarloSsta mw(*d, *sta, weak), ms(*d, *sta, strong);
  const McResult rw = mw.run(DieLocation::point('B'), mcc);
  const McResult rs = ms.run(DieLocation::point('B'), mcc);
  EXPECT_GT(rs.stage(PipeStage::Execute).fit.stddev,
            rw.stage(PipeStage::Execute).fit.stddev);
  // Mean slack also degrades (max statistics shift with sigma).
  EXPECT_LT(rs.stage(PipeStage::Execute).fit.mean,
            rw.stage(PipeStage::Execute).fit.mean + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Strengths, VariationStrength,
                         ::testing::Values(0.02, 0.04, 0.065));

}  // namespace
}  // namespace vipvt
