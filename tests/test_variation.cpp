// Variation model tests: exposure-field polynomial scaling, the
// systematic gradient (slow at A, fast at D), random-component moments,
// delay-factor physics, and Monte-Carlo SSTA distribution properties.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <thread>

#include "netlist/vex.hpp"
#include "placement/placer.hpp"
#include "util/parallel.hpp"
#include "variation/field.hpp"
#include "variation/mc_ssta.hpp"
#include "variation/model.hpp"

namespace vipvt {
namespace {

TEST(ExposureField, ScaledToMaxDeviation) {
  CharParams cp;
  const ExposureField field = ExposureField::scaled_65nm(cp);
  double lo = 1e9, hi = -1e9;
  for (int i = 0; i <= 100; ++i) {
    for (int j = 0; j <= 100; ++j) {
      const double d = field.deviation_at(28.0 * i / 100, 28.0 * j / 100);
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
  }
  EXPECT_NEAR(hi, 0.055, 1e-3);
  EXPECT_NEAR(lo, -0.055, 1e-3);
}

TEST(ExposureField, SlowAtOriginFastAtFarCorner) {
  CharParams cp;
  const ExposureField field = ExposureField::scaled_65nm(cp);
  // Longest gates (slowest) at the lower-left of the field.
  EXPECT_GT(field.lgate_at(0.0, 0.0), cp.lgate_nom * 1.04);
  EXPECT_LT(field.lgate_at(28.0, 28.0), cp.lgate_nom * 0.97);
  // Monotone along the diagonal.
  double prev = field.lgate_at(0.0, 0.0);
  for (double t = 2.0; t <= 28.0; t += 2.0) {
    const double cur = field.lgate_at(t, t);
    EXPECT_LT(cur, prev + 1e-9);
    prev = cur;
  }
}

TEST(ExposureField, ClampsOutsideField) {
  CharParams cp;
  const ExposureField field = ExposureField::scaled_65nm(cp);
  EXPECT_DOUBLE_EQ(field.lgate_at(-5.0, -5.0), field.lgate_at(0.0, 0.0));
  EXPECT_DOUBLE_EQ(field.lgate_at(99.0, 99.0), field.lgate_at(28.0, 28.0));
}

TEST(ExposureField, AsciiMapRenders) {
  CharParams cp;
  const ExposureField field = ExposureField::scaled_65nm(cp);
  const std::string map = field.ascii_map(20);
  EXPECT_EQ(std::count(map.begin(), map.end(), '\n'), 20);
}

TEST(ExposureField, RejectsDegenerate) {
  EXPECT_THROW(ExposureField(PolyCoeffs{}, 28.0, 65.0, 0.055),
               std::invalid_argument);
  PolyCoeffs ok;
  ok.c = 1.0;
  EXPECT_THROW(ExposureField(ok, -1.0, 65.0, 0.055), std::invalid_argument);
}

TEST(DieLocation, PointsOrderedAlongDiagonal) {
  const auto a = DieLocation::point('A');
  const auto b = DieLocation::point('B');
  const auto c = DieLocation::point('C');
  const auto d = DieLocation::point('D');
  EXPECT_LT(a.core_origin_mm.x, b.core_origin_mm.x);
  EXPECT_LT(b.core_origin_mm.x, c.core_origin_mm.x);
  EXPECT_LT(c.core_origin_mm.x, d.core_origin_mm.x);
  EXPECT_THROW(DieLocation::point('Z'), std::invalid_argument);
}

class ModelTest : public ::testing::Test {
 protected:
  CharParams cp_;
  ExposureField field_ = ExposureField::scaled_65nm(cp_);
  VariationModel model_{cp_, field_};
};

TEST_F(ModelTest, RandomComponentMoments) {
  // 3*sigma_rnd / mu = 6.5 %.
  EXPECT_NEAR(model_.sigma_random_nm(), 0.065 / 3.0 * cp_.lgate_nom, 1e-9);
  Rng rng(4);
  RunningStats rs;
  const DieLocation loc = DieLocation::point('B');
  const Point pos{100.0, 100.0};
  for (int i = 0; i < 20000; ++i) {
    rs.add(model_.sample_lgate(pos, loc, rng));
  }
  EXPECT_NEAR(rs.mean(), model_.systematic_lgate(pos, loc), 0.05);
  EXPECT_NEAR(rs.stddev(), model_.sigma_random_nm(), 0.05);
}

TEST_F(ModelTest, DelayFactorIdentityAtNominal) {
  EXPECT_DOUBLE_EQ(model_.delay_factor(cp_.lgate_nom, kVddLow), 1.0);
  EXPECT_DOUBLE_EQ(model_.delay_factor(cp_.lgate_nom, kVddHigh), 1.0);
}

TEST_F(ModelTest, LongerGateSlower) {
  EXPECT_GT(model_.delay_factor(cp_.lgate_nom * 1.05, kVddLow), 1.05);
  EXPECT_LT(model_.delay_factor(cp_.lgate_nom * 0.95, kVddLow), 0.95);
}

TEST_F(ModelTest, HighVddLessSensitiveToLgate) {
  // Raising Vdd reduces the *relative* slowdown of a long gate (higher
  // overdrive): the compensation mechanism in one inequality.
  const double slow_low = model_.delay_factor(cp_.lgate_nom * 1.05, kVddLow);
  const double slow_high = model_.delay_factor(cp_.lgate_nom * 1.05, kVddHigh);
  EXPECT_LT(slow_high, slow_low);
}

TEST_F(ModelTest, WorstCoreLocationIsSlowest) {
  const Point pos{200.0, 200.0};
  const double a = model_.systematic_lgate(pos, DieLocation::point('A'));
  const double d = model_.systematic_lgate(pos, DieLocation::point('D'));
  EXPECT_GT(a, d);
}

class McFixture : public ::testing::Test {
 protected:
  McFixture() : design_(make_vex_design(lib_, VexConfig::tiny())) {
    fp_ = std::make_unique<Floorplan>(
        Floorplan::for_design(design_, FloorplanConfig{}));
    db_ = std::make_unique<PlacementDb>(*fp_);
    place_design(design_, *fp_, PlacerConfig{}, *db_);
    sta_ = std::make_unique<StaEngine>(design_, StaOptions{});
    // Slack-met at nominal.
    sta_->set_clock_period(sta_->min_period() * 1.01);
    field_ = std::make_unique<ExposureField>(
        ExposureField::scaled_65nm(lib_.char_params()));
    model_ = std::make_unique<VariationModel>(lib_.char_params(), *field_);
  }

  Library lib_ = make_st65lp_like();
  Design design_;
  std::unique_ptr<Floorplan> fp_;
  std::unique_ptr<PlacementDb> db_;
  std::unique_ptr<StaEngine> sta_;
  std::unique_ptr<ExposureField> field_;
  std::unique_ptr<VariationModel> model_;
};

TEST_F(McFixture, WorstLocationViolatesBestDoesNot) {
  MonteCarloSsta mc(design_, *sta_, *model_);
  McConfig cfg;
  cfg.samples = 150;
  const McResult at_a = mc.run(DieLocation::point('A'), cfg);
  const McResult at_d = mc.run(DieLocation::point('D'), cfg);
  EXPECT_GT(at_a.num_violating_stages(), 0);
  EXPECT_LE(at_d.num_violating_stages(), at_a.num_violating_stages());
  // Mean slack degrades toward A.
  const auto& ex_a = at_a.stage(PipeStage::Execute);
  const auto& ex_d = at_d.stage(PipeStage::Execute);
  ASSERT_TRUE(ex_a.present);
  ASSERT_TRUE(ex_d.present);
  EXPECT_LT(ex_a.fit.mean, ex_d.fit.mean);
}

TEST_F(McFixture, SeverityMonotoneAlongDiagonal) {
  MonteCarloSsta mc(design_, *sta_, *model_);
  McConfig cfg;
  cfg.samples = 100;
  int prev = 4;
  for (double t : {0.0, 0.3, 0.6, 0.9}) {
    DieLocation loc;
    loc.core_origin_mm = {t * 14.0, t * 14.0};
    const McResult res = mc.run(loc, cfg);
    EXPECT_LE(res.num_violating_stages(), prev);
    prev = res.num_violating_stages();
  }
}

TEST_F(McFixture, DistributionsFitNormals) {
  MonteCarloSsta mc(design_, *sta_, *model_);
  McConfig cfg;
  cfg.samples = 400;
  const McResult res = mc.run(DieLocation::point('A'), cfg);
  const auto& ex = res.stage(PipeStage::Execute);
  ASSERT_TRUE(ex.present);
  EXPECT_EQ(ex.samples.size(), 400u);
  EXPECT_GT(ex.fit.stddev, 0.0);
  // The paper fit stage distributions to normals at 95 % confidence; our
  // max-of-many-paths slack is normal-ish — require the fit not to be
  // wildly rejected (p above 1e-4) rather than strictly accepted.
  EXPECT_GT(ex.fit.p_value, 1e-4);
}

TEST_F(McFixture, EndpointCriticalityBounded) {
  MonteCarloSsta mc(design_, *sta_, *model_);
  McConfig cfg;
  cfg.samples = 80;
  const McResult res = mc.run(DieLocation::point('A'), cfg);
  double max_p = 0.0;
  for (double p : res.endpoint_crit_prob) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    max_p = std::max(max_p, p);
  }
  EXPECT_GT(max_p, 0.0);  // someone violates at point A
}

TEST_F(McFixture, DeterministicForSeed) {
  MonteCarloSsta mc(design_, *sta_, *model_);
  McConfig cfg;
  cfg.samples = 50;
  const McResult r1 = mc.run(DieLocation::point('B'), cfg);
  const McResult r2 = mc.run(DieLocation::point('B'), cfg);
  const auto& s1 = r1.stage(PipeStage::Execute).samples;
  const auto& s2 = r2.stage(PipeStage::Execute).samples;
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) EXPECT_EQ(s1[i], s2[i]);
}

/// Asserts two McResults are bit-identical on every field they carry.
void expect_identical(const McResult& a, const McResult& b) {
  EXPECT_EQ(a.samples, b.samples);
  for (int s = 0; s < kNumPipeStages; ++s) {
    const auto& sa = a.stages[static_cast<std::size_t>(s)];
    const auto& sb = b.stages[static_cast<std::size_t>(s)];
    EXPECT_EQ(sa.present, sb.present) << "stage " << s;
    EXPECT_EQ(sa.min_slack, sb.min_slack) << "stage " << s;
    EXPECT_EQ(sa.max_slack, sb.max_slack) << "stage " << s;
    EXPECT_EQ(sa.fit.mean, sb.fit.mean) << "stage " << s;
    EXPECT_EQ(sa.fit.stddev, sb.fit.stddev) << "stage " << s;
    EXPECT_EQ(sa.fit.chi2, sb.fit.chi2) << "stage " << s;
    EXPECT_EQ(sa.fit.p_value, sb.fit.p_value) << "stage " << s;
    EXPECT_EQ(sa.fit.accepted, sb.fit.accepted) << "stage " << s;
    ASSERT_EQ(sa.samples.size(), sb.samples.size()) << "stage " << s;
    for (std::size_t i = 0; i < sa.samples.size(); ++i) {
      EXPECT_EQ(sa.samples[i], sb.samples[i]) << "stage " << s << " @" << i;
    }
  }
  ASSERT_EQ(a.endpoint_crit_prob.size(), b.endpoint_crit_prob.size());
  for (std::size_t k = 0; k < a.endpoint_crit_prob.size(); ++k) {
    EXPECT_EQ(a.endpoint_crit_prob[k], b.endpoint_crit_prob[k]) << "ep " << k;
  }
  ASSERT_EQ(a.endpoint_stage_crit.size(), b.endpoint_stage_crit.size());
  for (std::size_t k = 0; k < a.endpoint_stage_crit.size(); ++k) {
    EXPECT_EQ(a.endpoint_stage_crit[k], b.endpoint_stage_crit[k]) << "ep " << k;
  }
  ASSERT_EQ(a.min_period_samples.size(), b.min_period_samples.size());
  for (std::size_t k = 0; k < a.min_period_samples.size(); ++k) {
    EXPECT_EQ(a.min_period_samples[k], b.min_period_samples[k]) << "k " << k;
  }
}

/// The determinism-under-parallelism contract: serial, 1-thread, and
/// 8-thread runs produce the bit-identical McResult.
TEST_F(McFixture, BitIdenticalAcrossThreadCounts) {
  MonteCarloSsta mc(design_, *sta_, *model_);
  McConfig cfg;
  cfg.samples = 60;  // not a multiple of the batch width: ragged tail
  const McResult serial = mc.run(DieLocation::point('A'), cfg);
  ThreadPool one(1);
  expect_identical(serial, mc.run(DieLocation::point('A'), cfg, &one));
  ThreadPool eight(8);
  expect_identical(serial, mc.run(DieLocation::point('A'), cfg, &eight));
}

/// The batch width is a pure execution-layout choice: the scalar kernel
/// (batch 1), the default width, and odd widths all yield the same bits.
TEST_F(McFixture, BitIdenticalAcrossBatchWidths) {
  MonteCarloSsta mc(design_, *sta_, *model_);
  McConfig cfg;
  cfg.samples = 60;
  const McResult ref = mc.run(DieLocation::point('A'), cfg);  // batch 8
  for (int batch : {1, 7, 32}) {
    McConfig c = cfg;
    c.batch = batch;
    expect_identical(ref, mc.run(DieLocation::point('A'), c));
    ThreadPool pool(3);
    expect_identical(ref, mc.run(DieLocation::point('A'), c, &pool));
  }
}

// ---- the Batched draw profile ---------------------------------------------

/// Within the Batched profile, thread count and batch width are pure
/// execution-layout choices, exactly as they are for Scalar: every lane's
/// bits derive from (seed, global sample index) alone.
TEST_F(McFixture, BatchedProfileBitIdenticalAcrossThreadsAndWidths) {
  MonteCarloSsta mc(design_, *sta_, *model_);
  McConfig cfg;
  cfg.samples = 60;  // not a multiple of the batch width: ragged tail
  cfg.profile = DrawProfile::Batched;
  const McResult ref = mc.run(DieLocation::point('A'), cfg);  // batch 8
  ThreadPool one(1), three(3), eight(8);
  expect_identical(ref, mc.run(DieLocation::point('A'), cfg, &one));
  expect_identical(ref, mc.run(DieLocation::point('A'), cfg, &eight));
  for (int batch : {1, 7, 32}) {
    McConfig c = cfg;
    c.batch = batch;
    expect_identical(ref, mc.run(DieLocation::point('A'), c));
    expect_identical(ref, mc.run(DieLocation::point('A'), c, &three));
  }
}

/// The two profiles draw from different streams (bit-different by
/// design) but estimate the same population: their stage-slack fits must
/// agree to sampling error.  8 standard errors = far beyond noise, still
/// tight enough to catch a biased table or a broken bulk generator.
TEST_F(McFixture, BatchedProfileAgreesWithScalarStatistically) {
  MonteCarloSsta mc(design_, *sta_, *model_);
  McConfig cfg;
  cfg.samples = 400;
  const McResult scalar = mc.run(DieLocation::point('A'), cfg);
  cfg.profile = DrawProfile::Batched;
  const McResult batched = mc.run(DieLocation::point('A'), cfg);
  const int n = cfg.samples;
  for (int s = 0; s < kNumPipeStages; ++s) {
    const auto& sa = scalar.stages[static_cast<std::size_t>(s)];
    const auto& sb = batched.stages[static_cast<std::size_t>(s)];
    ASSERT_EQ(sa.present, sb.present) << "stage " << s;
    if (!sa.present) continue;
    const double sigma = std::max(sa.fit.stddev, sb.fit.stddev);
    EXPECT_NEAR(sa.fit.mean, sb.fit.mean,
                8.0 * std::max(sigma * std::sqrt(2.0 / n), 1e-12))
        << "stage " << s;
    ASSERT_GT(sa.fit.stddev, 0.0);
    ASSERT_GT(sb.fit.stddev, 0.0);
    EXPECT_LT(std::abs(std::log(sb.fit.stddev / sa.fit.stddev)),
              8.0 / std::sqrt(static_cast<double>(n - 1)))
        << "stage " << s;
  }
  // And at least one sample differs: the profiles are genuinely
  // different streams, not an aliased code path.
  const auto& ex_a = scalar.stage(PipeStage::Execute).samples;
  const auto& ex_b = batched.stage(PipeStage::Execute).samples;
  ASSERT_EQ(ex_a.size(), ex_b.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < ex_a.size(); ++i) any_diff |= ex_a[i] != ex_b[i];
  EXPECT_TRUE(any_diff);
}

// ---- delay-factor interpolation tables ------------------------------------

TEST_F(ModelTest, DelayFactorTablesBoundTheirError) {
  const DelayFactorTables& tables = model_.delay_factor_tables();
  ASSERT_TRUE(tables.built());
  // The builder measured its own max relative error on a refinement
  // grid; the bound must be tiny against the 6.5 % process sigma being
  // modeled...
  EXPECT_LT(tables.max_rel_error(), 1e-6);
  EXPECT_GT(tables.max_rel_error(), 0.0);
  // ...and must actually HOLD against the exact pow-based quotient on a
  // probe grid unrelated to the builder's own.
  const double lo = tables.lo_nm();
  const double hi = tables.hi_nm();
  EXPECT_LT(lo, cp_.lgate_nom);
  EXPECT_GT(hi, cp_.lgate_nom);
  double measured = 0.0;
  for (int corner : {kVddLow, kVddHigh}) {
    for (int v = 0; v < kNumVthClasses; ++v) {
      const auto vth = static_cast<VthClass>(v);
      for (int i = 0; i <= 1237; ++i) {
        const double l = lo + (hi - lo) * i / 1237.0;
        const double exact = model_.delay_factor(l, corner, vth);
        const double approx = tables.eval(l, corner, vth);
        measured = std::max(measured, std::abs(approx - exact) / exact);
      }
    }
  }
  EXPECT_LE(measured, tables.max_rel_error() * 1.0001);
}

TEST_F(ModelTest, DelayFactorTablesClampOutsideRange) {
  const DelayFactorTables& tables = model_.delay_factor_tables();
  const double below = tables.eval(tables.lo_nm() - 5.0, kVddLow,
                                   VthClass::Svt);
  const double above = tables.eval(tables.hi_nm() + 5.0, kVddLow,
                                   VthClass::Svt);
  EXPECT_TRUE(std::isfinite(below));
  EXPECT_TRUE(std::isfinite(above));
  EXPECT_LT(below, above);  // still monotone through the clamp
}

// ---- correlated-field stencils --------------------------------------------

TEST_F(McFixture, StencilDrawBitIdenticalToPointDraw) {
  // With a correlated within-die component active, the stencil-hoisted
  // scalar draw must reproduce the direct at(Point) draw bit-for-bit.
  VariationConfig vc;
  vc.correlated_fraction = 0.8;
  const VariationModel model(lib_.char_params(), *field_, vc);
  const auto systematic =
      model.systematic_lgates(design_, DieLocation::point('B'));
  const auto stencils = model.field_stencils(design_);
  ASSERT_EQ(stencils.size(), design_.num_instances());
  std::vector<double> direct, hoisted;
  Rng r1(123), r2(123);
  model.draw_factors(design_, *sta_, systematic, r1, direct);
  model.draw_factors(design_, *sta_, systematic, stencils, r2, hoisted);
  ASSERT_EQ(direct.size(), hoisted.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i], hoisted[i]) << "inst " << i;
  }
  // Both consumed the same stream.
  EXPECT_EQ(r1.next(), r2.next());
}

TEST_F(McFixture, BatchedProfileDeterministicWithCorrelatedField) {
  // The correlated bulk field draw is part of the lane's substream: the
  // profile's thread/width invariance must survive it.
  VariationConfig vc;
  vc.correlated_fraction = 0.5;
  const VariationModel model(lib_.char_params(), *field_, vc);
  MonteCarloSsta mc(design_, *sta_, model);
  McConfig cfg;
  cfg.samples = 36;
  cfg.profile = DrawProfile::Batched;
  const McResult ref = mc.run(DieLocation::point('A'), cfg);
  ThreadPool pool(5);
  for (int batch : {3, 16}) {
    McConfig c = cfg;
    c.batch = batch;
    expect_identical(ref, mc.run(DieLocation::point('A'), c));
    expect_identical(ref, mc.run(DieLocation::point('A'), c, &pool));
  }
}

// ---- adaptive sequential sampling (DESIGN.md §14) --------------------------

TEST_F(McFixture, AdaptivePolicyValidation) {
  MonteCarloSsta mc(design_, *sta_, *model_);
  McConfig cfg;
  cfg.adaptive.enabled = true;
  auto run = [&](auto mutate) {
    McConfig c = cfg;
    mutate(c.adaptive);
    return mc.run(DieLocation::point('D'), c);
  };
  EXPECT_THROW(run([](AdaptivePolicy& p) { p.min_samples = 0; }),
               std::invalid_argument);
  EXPECT_THROW(run([](AdaptivePolicy& p) {
                 p.min_samples = 10;
                 p.max_samples = 9;
               }),
               std::invalid_argument);
  EXPECT_THROW(run([](AdaptivePolicy& p) { p.check_every_batches = 0; }),
               std::invalid_argument);
  EXPECT_THROW(run([](AdaptivePolicy& p) { p.confidence = 1.0; }),
               std::invalid_argument);
  EXPECT_THROW(run([](AdaptivePolicy& p) { p.confidence = 0.0; }),
               std::invalid_argument);
  // A disabled policy is inert config: bogus fields must not bite.
  cfg.adaptive.enabled = false;
  cfg.adaptive.min_samples = -7;
  cfg.samples = 10;
  EXPECT_NO_THROW(mc.run(DieLocation::point('D'), cfg));
}

/// The tentpole contract, fuzzed: for random seeds and random policies,
/// an adaptive run that stops at N is bit-identical to a fixed run with
/// samples = N — serially and for every thread count — and the stopping
/// N itself never depends on the pool.  Both draw profiles.
TEST_F(McFixture, AdaptiveStopBitIdenticalToFixedAtNFuzz) {
  MonteCarloSsta mc(design_, *sta_, *model_);
  const auto systematic =
      model_->systematic_lgates(design_, DieLocation::point('A'));

  // Pilot run: scale the fuzzed CI targets off the real stage sigmas so
  // the policies stop all over [min, max] instead of at one end.
  McConfig pilot;
  pilot.samples = 48;
  double sigma = 0.0;
  for (const auto& sd : mc.run_with_systematic(systematic, pilot).stages) {
    if (sd.present) sigma = std::max(sigma, sd.fit.stddev);
  }
  ASSERT_GT(sigma, 0.0);

  Rng fuzz(0xada9717e);
  ThreadPool one(1), four(4);
  ThreadPool many(std::max(2u, std::thread::hardware_concurrency()));
  for (int iter = 0; iter < 6; ++iter) {
    McConfig cfg;
    cfg.seed = fuzz.next();
    cfg.batch = 1 + static_cast<int>(fuzz.below(9));
    cfg.profile = iter % 2 ? DrawProfile::Batched : DrawProfile::Scalar;
    cfg.adaptive.enabled = true;
    cfg.adaptive.min_samples = 8 + static_cast<int>(fuzz.below(25));
    cfg.adaptive.max_samples = 120 + static_cast<int>(fuzz.below(81));
    cfg.adaptive.check_every_batches = 1 + static_cast<int>(fuzz.below(4));
    const double frac = fuzz.uniform(0.08, 0.55);
    cfg.adaptive.sigma_half_width_ns = frac * sigma;
    cfg.adaptive.mean_half_width_ns = 2.0 * frac * sigma;

    const McResult adaptive = mc.run_with_systematic(systematic, cfg);
    const int n = adaptive.samples;
    if (adaptive.stopping_reason == McStop::Converged) {
      EXPECT_GE(n, cfg.adaptive.min_samples) << "iter " << iter;
      EXPECT_LE(n, cfg.adaptive.max_samples) << "iter " << iter;
    } else {
      EXPECT_EQ(adaptive.stopping_reason, McStop::MaxSamples);
      EXPECT_EQ(n, cfg.adaptive.max_samples) << "iter " << iter;
    }
    ASSERT_FALSE(adaptive.convergence.empty());
    EXPECT_EQ(adaptive.convergence.back().samples, n);
    EXPECT_EQ(adaptive.convergence.back().converged,
              adaptive.stopping_reason == McStop::Converged);

    // Fixed-at-N equivalence, serial and across thread counts.
    McConfig fixed = cfg;
    fixed.adaptive = AdaptivePolicy{};
    fixed.samples = n;
    const McResult f = mc.run_with_systematic(systematic, fixed);
    EXPECT_EQ(f.stopping_reason, McStop::FixedBudget);
    EXPECT_TRUE(f.convergence.empty());
    expect_identical(adaptive, f);
    expect_identical(adaptive, mc.run_with_systematic(systematic, fixed, &one));
    expect_identical(adaptive,
                     mc.run_with_systematic(systematic, fixed, &four));
    expect_identical(adaptive,
                     mc.run_with_systematic(systematic, fixed, &many));

    // Adaptive under a pool: same stopping N, same reason, same history,
    // same bits as the serial adaptive run.
    const McResult pooled = mc.run_with_systematic(systematic, cfg, &four);
    EXPECT_EQ(pooled.stopping_reason, adaptive.stopping_reason);
    ASSERT_EQ(pooled.convergence.size(), adaptive.convergence.size());
    for (std::size_t r = 0; r < pooled.convergence.size(); ++r) {
      EXPECT_EQ(pooled.convergence[r].samples,
                adaptive.convergence[r].samples);
      EXPECT_EQ(pooled.convergence[r].converged,
                adaptive.convergence[r].converged);
    }
    expect_identical(adaptive, pooled);
  }
}

/// Stopping-rule properties: never before min_samples, always by
/// max_samples, checkpoint-grid quantization only, and tightening the
/// targets never stops EARLIER (monotone non-decreasing N).
TEST_F(McFixture, AdaptiveConvergenceProperties) {
  MonteCarloSsta mc(design_, *sta_, *model_);
  const auto systematic =
      model_->systematic_lgates(design_, DieLocation::point('A'));
  McConfig cfg;
  cfg.adaptive.enabled = true;
  cfg.adaptive.min_samples = 40;
  cfg.adaptive.max_samples = 160;
  cfg.adaptive.check_every_batches = 2;  // 16-sample checkpoint grid

  // Infinitely loose targets: converged at the first checkpoint at or
  // after min_samples — never a sample before it.
  cfg.adaptive.mean_half_width_ns = 1e9;
  cfg.adaptive.sigma_half_width_ns = 1e9;
  const McResult loose = mc.run_with_systematic(systematic, cfg);
  EXPECT_EQ(loose.stopping_reason, McStop::Converged);
  EXPECT_GE(loose.samples, cfg.adaptive.min_samples);
  EXPECT_LT(loose.samples,
            cfg.adaptive.min_samples + cfg.adaptive.check_every_batches *
                                           cfg.batch);

  // Unreachable (zero) targets: runs the full cap and says so.
  cfg.adaptive.mean_half_width_ns = 0.0;
  cfg.adaptive.sigma_half_width_ns = 0.0;
  const McResult capped = mc.run_with_systematic(systematic, cfg);
  EXPECT_EQ(capped.stopping_reason, McStop::MaxSamples);
  EXPECT_EQ(capped.samples, cfg.adaptive.max_samples);
  ASSERT_FALSE(capped.convergence.empty());
  EXPECT_FALSE(capped.convergence.back().converged);
  int prev_round = 0;
  for (const McRound& r : capped.convergence) {
    EXPECT_GT(r.samples, prev_round);
    EXPECT_GT(r.worst_sigma_half_width_ns, 0.0);
    prev_round = r.samples;
  }
  EXPECT_EQ(prev_round, cfg.adaptive.max_samples);

  // Monotonicity: the per-round half-width trajectory is target-
  // independent, so the first-crossing N can only grow as targets shrink.
  const double sigma = capped.stage(PipeStage::Execute).fit.stddev;
  ASSERT_GT(sigma, 0.0);
  cfg.adaptive.min_samples = 16;
  int prev_n = 0;
  for (double frac : {0.8, 0.4, 0.2, 0.1, 0.05}) {
    cfg.adaptive.sigma_half_width_ns = frac * sigma;
    cfg.adaptive.mean_half_width_ns = 2.0 * frac * sigma;
    const McResult r = mc.run_with_systematic(systematic, cfg);
    EXPECT_GE(r.samples, prev_n) << "frac " << frac;
    EXPECT_GE(r.samples, cfg.adaptive.min_samples);
    EXPECT_LE(r.samples, cfg.adaptive.max_samples);
    prev_n = r.samples;
  }
}

/// A deliberately wide-sigma stage (double the random Lgate spread) must
/// hold the stopping rule back: at the same absolute CI target the wide
/// model draws strictly more samples than the default one.
TEST_F(McFixture, AdaptiveWideSigmaStageDrawsMoreSamples) {
  VariationConfig vc;
  vc.three_sigma_random_frac = 0.13;  // ~2x the default 6.5 %
  const VariationModel wide_model(lib_.char_params(), *field_, vc);
  MonteCarloSsta base(design_, *sta_, *model_);
  MonteCarloSsta wide(design_, *sta_, wide_model);

  McConfig pilot;
  pilot.samples = 48;
  const double sigma =
      base.run(DieLocation::point('A'), pilot).stage(PipeStage::Execute)
          .fit.stddev;
  ASSERT_GT(sigma, 0.0);

  McConfig cfg;
  cfg.adaptive.enabled = true;
  cfg.adaptive.min_samples = 8;
  cfg.adaptive.max_samples = 320;
  cfg.adaptive.check_every_batches = 1;  // finest checkpoint grid
  cfg.adaptive.sigma_half_width_ns = 0.25 * sigma;  // ~30 samples at 1x
  cfg.adaptive.mean_half_width_ns = 1e9;            // sigma target binds
  const McResult r_base = base.run(DieLocation::point('A'), cfg);
  const McResult r_wide = wide.run(DieLocation::point('A'), cfg);
  EXPECT_EQ(r_base.stopping_reason, McStop::Converged);
  EXPECT_LT(r_base.samples, cfg.adaptive.max_samples);
  EXPECT_GT(r_wide.samples, r_base.samples);
}

/// run_with_systematic against the map run() derives internally must be
/// a pure refactoring seam: bit-identical results.
TEST_F(McFixture, RunWithSystematicMatchesRun) {
  MonteCarloSsta mc(design_, *sta_, *model_);
  McConfig cfg;
  cfg.samples = 40;
  const DieLocation loc = DieLocation::point('C');
  const auto systematic = model_->systematic_lgates(design_, loc);
  expect_identical(mc.run(loc, cfg), mc.run_with_systematic(systematic, cfg));
  cfg.profile = DrawProfile::Batched;
  expect_identical(mc.run(loc, cfg), mc.run_with_systematic(systematic, cfg));
}

}  // namespace
}  // namespace vipvt
