// STA engine tests: graph construction, arrival propagation, slack and
// per-stage grouping, annotated-factor scaling semantics, corner effects,
// and critical-path tracing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "netlist/builder.hpp"
#include "netlist/vex.hpp"
#include "placement/placer.hpp"
#include "timing/sta.hpp"
#include "util/rng.hpp"

namespace vipvt {
namespace {

/// PI -> INV -> INV -> DFF chain, all cells co-located (zero wire delay).
class ChainFixture : public ::testing::Test {
 protected:
  ChainFixture() : design_("chain", lib_) {
    NetlistBuilder b(design_);
    b.clock_input("clk");
    const NetId a = b.input("a");
    b.set_stage(PipeStage::Execute);
    const NetId x = b.inv(a);
    const NetId y = b.inv(x);
    const NetId q = b.dff(y);
    b.set_stage(PipeStage::Decode);
    const NetId z = b.inv(q);
    const NetId q2 = b.dff(z);
    b.output(q2);
    design_.check();
    for (InstId i = 0; i < design_.num_instances(); ++i) {
      design_.instance(i).pos = {10.0, 10.0};
      design_.instance(i).placed = true;
    }
  }

  Library lib_ = make_st65lp_like();
  Design design_;
  StaOptions opts_{};
};

TEST_F(ChainFixture, EndpointInventory) {
  StaEngine sta(design_, opts_);
  // 2 flop D endpoints + 1 primary output endpoint.
  EXPECT_EQ(sta.endpoints().size(), 3u);
  int flop_eps = 0;
  for (const auto& ep : sta.endpoints()) flop_eps += (ep.flop != kInvalidInst);
  EXPECT_EQ(flop_eps, 2);
}

TEST_F(ChainFixture, ArrivalMatchesManualLookup) {
  StaEngine sta(design_, opts_);
  const StaResult res = sta.analyze();

  // Manual recomputation for the PI -> INV -> INV -> DFF.D endpoint,
  // including the Elmore wire terms from the (tiny) center-to-center
  // bounding boxes.
  const Cell& inv = lib_.cell(lib_.find("INV_X1"));
  const Cell& dff = lib_.cell(lib_.find("DFF_X1"));
  const WireParams& wp = lib_.wire();
  const auto& arc = inv.arcs[0].corner[kVddLow];
  // Nets: a -> inv1 (net 'x' drives inv2), inv2 (net 'y' drives DFF.D).
  const NetId net_x = design_.instance(1).conns[0];
  const NetId net_y = design_.instance(2).conns[0];
  const double lx = net_hpwl(design_, net_x);
  const double ly = net_hpwl(design_, net_y);
  const double s0 = opts_.default_input_slew_ns;
  const double load1 = inv.pins[0].cap_pf + wp.capacitance(lx);
  const double d1 = arc.delay.lookup(s0, load1);
  const double w1 = wp.resistance(lx) *
                    (0.5 * wp.capacitance(lx) + inv.pins[0].cap_pf);
  const double s1 = arc.out_slew.lookup(s0, load1) + 2.0 * w1;
  const double load2 = dff.pins[0].cap_pf + wp.capacitance(ly);
  const double d2 = arc.delay.lookup(s1, load2);
  const double w2 = wp.resistance(ly) *
                    (0.5 * wp.capacitance(ly) + dff.pins[0].cap_pf);
  const double expected_arrival = d1 + w1 + d2 + w2;

  // Locate the EX-stage flop endpoint.
  double slack = 1e9;
  for (std::size_t k = 0; k < sta.endpoints().size(); ++k) {
    if (sta.endpoints()[k].flop != kInvalidInst &&
        sta.endpoints()[k].stage == PipeStage::Execute) {
      slack = res.endpoint_slack[k];
    }
  }
  const double expected_slack =
      opts_.clock_period_ns - dff.setup_ns - expected_arrival;
  // Edge delays are stored as float inside the engine.
  EXPECT_NEAR(slack, expected_slack, 1e-6);
}

TEST_F(ChainFixture, FactorsScaleCellDelaysExactly) {
  StaEngine sta(design_, opts_);
  const double t1 = sta.min_period();
  std::vector<double> factors(design_.num_instances(), 2.0);
  const double t2 = sta.min_period(factors);
  // Everything except setup and the (sub-10fs) wire Elmore terms scales
  // by exactly 2 — wires are variation-free per the paper's model.
  const Cell& dff = lib_.cell(lib_.find("DFF_X1"));
  EXPECT_NEAR(t2 - dff.setup_ns, 2.0 * (t1 - dff.setup_ns), 1e-4);
}

TEST_F(ChainFixture, PerStageGrouping) {
  StaEngine sta(design_, opts_);
  const StaResult res = sta.analyze();
  EXPECT_TRUE(std::isfinite(res.stage_worst(PipeStage::Execute)));
  EXPECT_TRUE(std::isfinite(res.stage_worst(PipeStage::Decode)));
  // The EX path (2 INVs from a port) vs DC path (clk->q + INV): both
  // positive slack at the default 3.9 ns clock.
  EXPECT_GT(res.stage_worst(PipeStage::Execute), 0.0);
  EXPECT_GT(res.stage_worst(PipeStage::Decode), 0.0);
}

TEST_F(ChainFixture, HighCornerShortensArrival) {
  StaEngine sta(design_, opts_);
  const double t_low = sta.min_period();
  // Everything into domain 1 at the high corner.
  for (InstId i = 0; i < design_.num_instances(); ++i) {
    design_.instance(i).domain = 1;
  }
  std::vector<int> corners = {kVddLow, kVddHigh};
  sta.compute_base(corners);
  const double t_high = sta.min_period();
  EXPECT_LT(t_high, t_low);
  EXPECT_NEAR(t_high / t_low, lib_.char_params().high_vdd_speed_ratio(), 0.03);
}

TEST_F(ChainFixture, TracePathWalksToLaunch) {
  StaEngine sta(design_, opts_);
  const StaResult res = sta.analyze();
  // Find worst endpoint.
  std::size_t worst = 0;
  for (std::size_t k = 1; k < res.endpoint_slack.size(); ++k) {
    if (res.endpoint_slack[k] < res.endpoint_slack[worst]) worst = k;
  }
  const auto path = sta.trace_path(worst);
  ASSERT_GE(path.size(), 2u);
  // Arrivals are non-decreasing along the path and sum of increments
  // equals the endpoint arrival.
  double sum = 0.0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    sum += path[i].incr_ns;
    if (i > 0) {
      EXPECT_GE(path[i].arrival_ns, path[i - 1].arrival_ns - 1e-12);
    }
  }
  EXPECT_NEAR(sum, path.back().arrival_ns, 1e-9);
}

TEST(StaVex, NominalTimingShape) {
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig::tiny());
  Floorplan fp = Floorplan::for_design(d, FloorplanConfig{});
  PlacementDb db(fp);
  place_design(d, fp, PlacerConfig{}, db);
  StaEngine sta(d, StaOptions{});
  const double tmin = sta.min_period();
  EXPECT_GT(tmin, 0.3);   // a real multi-level pipeline
  EXPECT_LT(tmin, 20.0);  // and not absurd

  sta.set_clock_period(tmin * 1.01);
  const StaResult res = sta.analyze();
  EXPECT_GE(res.wns, 0.0);
  EXPECT_NEAR(res.wns, 0.01 * tmin, 0.02 * tmin);
  EXPECT_EQ(res.tns, 0.0);

  // All four stages have endpoints on a VEX core.
  for (PipeStage s : {PipeStage::Fetch, PipeStage::Decode, PipeStage::Execute,
                      PipeStage::WriteBack}) {
    EXPECT_TRUE(std::isfinite(res.stage_worst(s))) << stage_name(s);
  }
}

TEST(StaVex, ExecuteIsTheCriticalStage) {
  // The paper: the global critical path lives in the EX stage (through a
  // forwarding unit and an ALU).
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig{});
  Floorplan fp = Floorplan::for_design(d, FloorplanConfig{});
  PlacementDb db(fp);
  place_design(d, fp, PlacerConfig{}, db);
  StaEngine sta(d, StaOptions{});
  StaResult res = sta.analyze();
  const double ex = res.stage_worst(PipeStage::Execute);
  for (PipeStage s : {PipeStage::Decode, PipeStage::WriteBack}) {
    EXPECT_LE(ex, res.stage_worst(s) + 1e-9) << stage_name(s);
  }
}

TEST(StaVex, TighterClockGoesNegative) {
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig::tiny());
  Floorplan fp = Floorplan::for_design(d, FloorplanConfig{});
  PlacementDb db(fp);
  place_design(d, fp, PlacerConfig{}, db);
  StaEngine sta(d, StaOptions{});
  const double tmin = sta.min_period();
  sta.set_clock_period(0.9 * tmin);
  const StaResult res = sta.analyze();
  EXPECT_LT(res.wns, 0.0);
  EXPECT_LT(res.tns, 0.0);
}

TEST(StaVex, MinPeriodMatchesAnalyzeField) {
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig::tiny());
  Floorplan fp = Floorplan::for_design(d, FloorplanConfig{});
  PlacementDb db(fp);
  place_design(d, fp, PlacerConfig{}, db);
  StaEngine sta(d, StaOptions{});
  const StaResult res = sta.analyze();
  EXPECT_EQ(sta.min_period(), res.min_period_ns);
  // All endpoints constrained here, so min period == clock - WNS exactly
  // (both are the same max scan over the same slacks).
  EXPECT_EQ(res.min_period_ns, res.clock_period_ns - res.wns);
}

/// The batched SoA kernel is a pure execution-layout change: every lane
/// of analyze_batch must reproduce the corresponding scalar analyze()
/// call bit-for-bit, on every StaResult field.
TEST(StaVex, AnalyzeBatchBitIdenticalToScalar) {
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig::tiny());
  Floorplan fp = Floorplan::for_design(d, FloorplanConfig{});
  PlacementDb db(fp);
  place_design(d, fp, PlacerConfig{}, db);
  StaEngine sta(d, StaOptions{});
  sta.set_clock_period(sta.min_period() * 1.005);

  Rng rng(0xbeefcafeULL);
  // Width 11 exercises the runtime-width fallback; a second pass over
  // the first 8 lanes exercises the fixed-width kernel.  Lane 5 is empty
  // (= nominal factors), a supported input.
  std::vector<std::vector<double>> lanes(11);
  for (std::size_t b = 0; b < lanes.size(); ++b) {
    if (b == 5) continue;
    lanes[b].resize(d.num_instances());
    for (auto& f : lanes[b]) f = rng.uniform(0.9, 1.15);
  }

  for (std::size_t width : {lanes.size(), std::size_t{8}}) {
    std::vector<StaResult> batch(width);
    sta.analyze_batch(std::span(lanes).first(width), std::span(batch));
    for (std::size_t b = 0; b < width; ++b) {
      const StaResult scalar = sta.analyze(lanes[b]);
      EXPECT_EQ(batch[b].clock_period_ns, scalar.clock_period_ns);
      EXPECT_EQ(batch[b].wns, scalar.wns) << "lane " << b;
      EXPECT_EQ(batch[b].tns, scalar.tns) << "lane " << b;
      EXPECT_EQ(batch[b].min_period_ns, scalar.min_period_ns) << "lane " << b;
      for (std::size_t s = 0; s < kNumPipeStages; ++s) {
        EXPECT_EQ(batch[b].stage_wns[s], scalar.stage_wns[s])
            << "lane " << b << " stage " << s;
      }
      ASSERT_EQ(batch[b].endpoint_slack.size(), scalar.endpoint_slack.size());
      for (std::size_t k = 0; k < scalar.endpoint_slack.size(); ++k) {
        EXPECT_EQ(batch[b].endpoint_slack[k], scalar.endpoint_slack[k])
            << "lane " << b << " endpoint " << k;
      }
    }
  }
}

TEST(StaVex, AnalyzeBatchSoaBitIdenticalToAnalyzeBatch) {
  // The SoA entry point is the batched draw engine's seam into the
  // propagation kernel: handing it a transposed copy of the same lanes
  // must reproduce analyze_batch (and therefore scalar analyze) exactly.
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig::tiny());
  Floorplan fp = Floorplan::for_design(d, FloorplanConfig{});
  PlacementDb db(fp);
  place_design(d, fp, PlacerConfig{}, db);
  StaEngine sta(d, StaOptions{});
  sta.set_clock_period(sta.min_period() * 1.005);

  constexpr std::size_t width = 6;  // runtime-width path
  Rng rng(0x50a50a5ULL);
  const std::size_t n = d.num_instances();
  std::vector<std::vector<double>> lanes(width);
  std::vector<double> soa(n * width);
  for (std::size_t b = 0; b < width; ++b) {
    lanes[b].resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      lanes[b][i] = rng.uniform(0.9, 1.15);
      soa[i * width + b] = lanes[b][i];
    }
  }
  std::vector<StaResult> from_lanes(width), from_soa(width);
  sta.analyze_batch(std::span(lanes), std::span(from_lanes));
  sta.analyze_batch_soa(soa, width, std::span(from_soa));
  for (std::size_t b = 0; b < width; ++b) {
    EXPECT_EQ(from_soa[b].wns, from_lanes[b].wns) << "lane " << b;
    EXPECT_EQ(from_soa[b].tns, from_lanes[b].tns) << "lane " << b;
    EXPECT_EQ(from_soa[b].min_period_ns, from_lanes[b].min_period_ns)
        << "lane " << b;
    for (std::size_t s = 0; s < kNumPipeStages; ++s) {
      EXPECT_EQ(from_soa[b].stage_wns[s], from_lanes[b].stage_wns[s])
          << "lane " << b << " stage " << s;
    }
    ASSERT_EQ(from_soa[b].endpoint_slack.size(),
              from_lanes[b].endpoint_slack.size());
    for (std::size_t k = 0; k < from_soa[b].endpoint_slack.size(); ++k) {
      EXPECT_EQ(from_soa[b].endpoint_slack[k], from_lanes[b].endpoint_slack[k])
          << "lane " << b << " endpoint " << k;
    }
  }
}

TEST(StaVex, AnalyzeBatchBasesBitIdenticalToRestoreAndAnalyze) {
  // Multi-base batching (each lane under its OWN compute_base output) is
  // what lets the compensation controller test every escalation level in
  // one pass.  Reference: restore_bases + scalar analyze per lane.
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig::tiny());
  Floorplan fp = Floorplan::for_design(d, FloorplanConfig{});
  PlacementDb db(fp);
  place_design(d, fp, PlacerConfig{}, db);
  // Three position-sliced domains so the corner assignments differ.
  const Rect& die = fp.die();
  for (InstId i = 0; i < d.num_instances(); ++i) {
    const double frac = (d.instance(i).pos.x - die.lo.x) / die.width();
    d.instance(i).domain =
        static_cast<DomainId>(std::min(2, static_cast<int>(frac * 3)));
  }
  StaEngine sta(d, StaOptions{});
  sta.set_clock_period(sta.min_period() * 1.02);

  std::vector<StaEngine::BaseSnapshot> snaps;
  for (int raised : {0, 1, 2, 3}) {
    std::vector<int> corners(3, kVddLow);
    for (int k = 0; k < raised; ++k) corners[static_cast<std::size_t>(k)] =
        kVddHigh;
    sta.compute_base(corners);
    snaps.push_back(sta.snapshot_bases());
  }

  const std::size_t width = snaps.size();
  Rng rng(0xface0ffULL);
  std::vector<std::vector<double>> factors(width);
  std::vector<const StaEngine::BaseSnapshot*> bases(width);
  for (std::size_t b = 0; b < width; ++b) {
    factors[b].resize(d.num_instances());
    for (auto& f : factors[b]) f = rng.uniform(0.92, 1.12);
    bases[b] = &snaps[b];
  }
  factors[2].clear();  // empty lane = nominal factors, a supported input

  std::vector<StaResult> batch(width);
  sta.analyze_batch_bases(bases, factors, std::span(batch));
  for (std::size_t b = 0; b < width; ++b) {
    sta.restore_bases(snaps[b]);
    const StaResult scalar =
        factors[b].empty() ? sta.analyze() : sta.analyze(factors[b]);
    EXPECT_EQ(batch[b].wns, scalar.wns) << "lane " << b;
    EXPECT_EQ(batch[b].tns, scalar.tns) << "lane " << b;
    EXPECT_EQ(batch[b].min_period_ns, scalar.min_period_ns) << "lane " << b;
    for (std::size_t s = 0; s < kNumPipeStages; ++s) {
      EXPECT_EQ(batch[b].stage_wns[s], scalar.stage_wns[s])
          << "lane " << b << " stage " << s;
    }
    ASSERT_EQ(batch[b].endpoint_slack.size(), scalar.endpoint_slack.size());
    for (std::size_t k = 0; k < scalar.endpoint_slack.size(); ++k) {
      EXPECT_EQ(batch[b].endpoint_slack[k], scalar.endpoint_slack[k])
          << "lane " << b << " endpoint " << k;
    }
  }
}

TEST(StaVex, SnapshotRestoreRoundTrips) {
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig::tiny());
  Floorplan fp = Floorplan::for_design(d, FloorplanConfig{});
  PlacementDb db(fp);
  place_design(d, fp, PlacerConfig{}, db);
  StaEngine sta(d, StaOptions{});
  sta.set_clock_period(sta.min_period() * 1.01);
  const StaResult before = sta.analyze();
  const StaEngine::BaseSnapshot snap = sta.snapshot_bases();
  // Perturb the engine with a different corner assignment...
  for (InstId i = 0; i < d.num_instances(); ++i) d.instance(i).domain = 1;
  sta.compute_base(std::vector<int>{kVddLow, kVddHigh});
  EXPECT_NE(sta.analyze().wns, before.wns);
  // ...then restore: bit-identical to the snapshot's analysis.
  sta.restore_bases(snap);
  const StaResult after = sta.analyze();
  EXPECT_EQ(after.wns, before.wns);
  EXPECT_EQ(after.min_period_ns, before.min_period_ns);
}

TEST(StaVex, AnalyzeBatchRejectsBadInput) {
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig::tiny());
  Floorplan fp = Floorplan::for_design(d, FloorplanConfig{});
  PlacementDb db(fp);
  place_design(d, fp, PlacerConfig{}, db);
  StaEngine sta(d, StaOptions{});

  std::vector<std::vector<double>> lanes(2);
  std::vector<StaResult> wrong_size(3);
  EXPECT_THROW(sta.analyze_batch(std::span(lanes), std::span(wrong_size)),
               std::invalid_argument);
  std::vector<StaResult> results(2);
  lanes[0].assign(3, 1.0);  // shorter than num_instances
  EXPECT_THROW(sta.analyze_batch(std::span(lanes), std::span(results)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Incremental re-cornering (StaEngine::recorner_delta, DESIGN.md §12).
// The contract under test: for ANY reachable escalation sequence, the
// incremental path leaves the engine in a state byte-identical to a full
// compute_base() at the equivalent per-domain corner vector — result
// fields, edge/launch bases, slews and corner map alike.
// ---------------------------------------------------------------------------

void expect_results_equal(const StaResult& got, const StaResult& want,
                          const char* what) {
  EXPECT_EQ(got.clock_period_ns, want.clock_period_ns) << what;
  EXPECT_EQ(got.wns, want.wns) << what;
  EXPECT_EQ(got.tns, want.tns) << what;
  EXPECT_EQ(got.min_period_ns, want.min_period_ns) << what;
  for (std::size_t s = 0; s < kNumPipeStages; ++s) {
    EXPECT_EQ(got.stage_wns[s], want.stage_wns[s]) << what << " stage " << s;
  }
  ASSERT_EQ(got.endpoint_slack.size(), want.endpoint_slack.size()) << what;
  for (std::size_t k = 0; k < want.endpoint_slack.size(); ++k) {
    ASSERT_EQ(got.endpoint_slack[k], want.endpoint_slack[k])
        << what << " endpoint " << k;
  }
}

void expect_snapshots_byte_identical(const StaEngine::BaseSnapshot& got,
                                     const StaEngine::BaseSnapshot& want,
                                     const char* what) {
  ASSERT_EQ(got.edge_base.size(), want.edge_base.size()) << what;
  ASSERT_EQ(got.launch_base.size(), want.launch_base.size()) << what;
  ASSERT_EQ(got.slew.size(), want.slew.size()) << what;
  ASSERT_EQ(got.inst_corner.size(), want.inst_corner.size()) << what;
  EXPECT_EQ(std::memcmp(got.edge_base.data(), want.edge_base.data(),
                        got.edge_base.size() * sizeof(float)),
            0)
      << what << " edge_base";
  EXPECT_EQ(std::memcmp(got.launch_base.data(), want.launch_base.data(),
                        got.launch_base.size() * sizeof(float)),
            0)
      << what << " launch_base";
  EXPECT_EQ(std::memcmp(got.slew.data(), want.slew.data(),
                        got.slew.size() * sizeof(float)),
            0)
      << what << " slew";
  EXPECT_EQ(got.inst_corner, want.inst_corner) << what << " inst_corner";
}

/// Tiny VEX, placed, sliced into 4 position-based voltage domains
/// (domain 0 = the bulk, 1..3 = progressively thinner right-edge slices,
/// mimicking the paper's nested-island geometry).  Built once — every
/// test takes fresh StaEngine instances over the shared design.
class StaRecorner : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new Library(make_st65lp_like());
    design_ = new Design(make_vex_design(*lib_, VexConfig::tiny()));
    Floorplan fp = Floorplan::for_design(*design_, FloorplanConfig{});
    PlacementDb db(fp);
    place_design(*design_, fp, PlacerConfig{}, db);
    const Rect& die = fp.die();
    for (InstId i = 0; i < design_->num_instances(); ++i) {
      const double frac =
          (design_->instance(i).pos.x - die.lo.x) / die.width();
      DomainId dom = 0;
      if (frac > 0.90) dom = 1;
      else if (frac > 0.80) dom = 2;
      else if (frac > 0.70) dom = 3;
      design_->instance(i).domain = dom;
    }
  }
  static void TearDownTestSuite() {
    delete design_;
    design_ = nullptr;
    delete lib_;
    lib_ = nullptr;
  }

  /// Full-recompute reference for a corner vector (fresh propagation).
  static StaResult reference(StaEngine& ref, std::span<const int> corners) {
    ref.compute_base(corners);
    return ref.analyze();
  }

  static Library* lib_;
  static Design* design_;
};

Library* StaRecorner::lib_ = nullptr;
Design* StaRecorner::design_ = nullptr;

TEST_F(StaRecorner, SingleIslandFlipBitIdenticalToFullRecompute) {
  StaEngine inc(*design_, StaOptions{});
  StaEngine ref(*design_, StaOptions{});
  for (DomainId dom : {DomainId{1}, DomainId{2}, DomainId{3}}) {
    std::vector<int> corners(4, kVddLow);
    corners[dom] = kVddHigh;
    const StaResult got = inc.recorner_delta(dom, kVddHigh);
    const StaResult want = reference(ref, corners);
    expect_results_equal(got, want, "single flip");
    expect_snapshots_byte_identical(inc.snapshot_bases(), ref.snapshot_bases(),
                                    "single flip");
    EXPECT_FALSE(inc.recorner_stats().noop);
    EXPECT_GT(inc.recorner_stats().instances_flipped, 0u);
    // Back down before the next domain (also through the delta path).
    inc.recorner_delta(dom, kVddLow);
    ASSERT_FALSE(::testing::Test::HasFailure()) << "domain " << int(dom);
  }
}

TEST_F(StaRecorner, FuzzEscalationSequencesBitIdenticalForcedDelta) {
  // recorner_fallback_fraction = 1 forces the delta path for every flip,
  // whatever the cone size: the pure incremental machinery must track a
  // full recompute bit-for-bit across a long random walk of corner flips.
  StaOptions opts;
  opts.recorner_fallback_fraction = 1.0;
  StaEngine inc(*design_, opts);
  StaEngine ref(*design_, opts);
  std::vector<int> corners(4, kVddLow);
  Rng rng(0xd17a5eedULL);
  for (int step = 0; step < 48; ++step) {
    const auto dom = static_cast<DomainId>(rng.next() % 4);
    const int corner = (rng.next() & 1) != 0 ? kVddHigh : kVddLow;
    corners[dom] = corner;
    const StaResult got = inc.recorner_delta(dom, corner);
    EXPECT_FALSE(inc.recorner_stats().full_fallback) << "step " << step;
    const StaResult want = reference(ref, corners);
    expect_results_equal(got, want, "fuzz step");
    expect_snapshots_byte_identical(inc.snapshot_bases(), ref.snapshot_bases(),
                                    "fuzz step");
    ASSERT_FALSE(::testing::Test::HasFailure()) << "step " << step;
  }
}

TEST_F(StaRecorner, FuzzWithDefaultFallbackThresholdStaysBitIdentical) {
  // At the default threshold some flips (big cones) take the full path
  // and some (thin slices) the delta path; the mix must be externally
  // invisible.
  StaEngine inc(*design_, StaOptions{});
  StaEngine ref(*design_, StaOptions{});
  std::vector<int> corners(4, kVddLow);
  Rng rng(0xab5c0ffeULL);
  std::size_t delta_flips = 0;
  for (int step = 0; step < 32; ++step) {
    const auto dom = static_cast<DomainId>(rng.next() % 4);
    const int corner = (rng.next() & 1) != 0 ? kVddHigh : kVddLow;
    corners[dom] = corner;
    const StaResult got = inc.recorner_delta(dom, corner);
    if (!inc.recorner_stats().noop && !inc.recorner_stats().full_fallback) {
      ++delta_flips;
    }
    const StaResult want = reference(ref, corners);
    expect_results_equal(got, want, "mixed-path step");
    expect_snapshots_byte_identical(inc.snapshot_bases(), ref.snapshot_bases(),
                                    "mixed-path step");
    ASSERT_FALSE(::testing::Test::HasFailure()) << "step " << step;
  }
  EXPECT_GT(delta_flips, 0u);  // the thin slices must go incremental
}

TEST_F(StaRecorner, NoopWhenCornerUnchanged) {
  StaEngine inc(*design_, StaOptions{});
  const StaResult want = inc.analyze();
  const StaResult got = inc.recorner_delta(1, kVddLow);  // already low
  EXPECT_TRUE(inc.recorner_stats().noop);
  EXPECT_EQ(inc.recorner_stats().instances_flipped, 0u);
  expect_results_equal(got, want, "noop");
}

TEST_F(StaRecorner, UnknownOrEmptyDomainIsNoop) {
  StaEngine inc(*design_, StaOptions{});
  const StaResult want = inc.analyze();
  const StaResult got = inc.recorner_delta(200, kVddHigh);
  EXPECT_TRUE(inc.recorner_stats().noop);
  expect_results_equal(got, want, "unknown domain");
}

TEST_F(StaRecorner, RejectsOutOfRangeCorner) {
  StaEngine inc(*design_, StaOptions{});
  EXPECT_THROW(inc.recorner_delta(1, kNumCorners), std::invalid_argument);
  EXPECT_THROW(inc.recorner_delta(1, -1), std::invalid_argument);
}

TEST_F(StaRecorner, FallbackFractionZeroForcesFullPath) {
  StaEngine inc(*design_, StaOptions{});
  inc.set_recorner_fallback_fraction(0.0);
  StaEngine ref(*design_, StaOptions{});
  std::vector<int> corners(4, kVddLow);
  corners[1] = kVddHigh;
  const StaResult got = inc.recorner_delta(1, kVddHigh);
  EXPECT_TRUE(inc.recorner_stats().full_fallback);
  const StaResult want = reference(ref, corners);
  expect_results_equal(got, want, "forced full");
  expect_snapshots_byte_identical(inc.snapshot_bases(), ref.snapshot_bases(),
                                  "forced full");
}

TEST_F(StaRecorner, DeltaPathVisitsAreConeBounded) {
  StaOptions opts;
  opts.recorner_fallback_fraction = 1.0;  // never fall back
  StaEngine inc(*design_, opts);
  // First call on a cold engine pays one full arrival propagation to
  // seed the nominal cache; the cone bound applies from then on.
  inc.recorner_delta(1, kVddHigh);
  EXPECT_EQ(inc.recorner_stats().arrival_nodes_visited, inc.num_nodes());
  inc.recorner_delta(1, kVddLow);
  const auto& st = inc.recorner_stats();
  EXPECT_FALSE(st.full_fallback);
  EXPECT_GT(st.cone_nodes, 0u);
  EXPECT_LT(st.cone_nodes, inc.num_nodes());  // cones stop at flop D pins
  EXPECT_LE(st.slew_nodes_visited, st.cone_nodes);
  EXPECT_LE(st.arrival_nodes_visited, st.cone_nodes);
  EXPECT_GT(st.delay_edges_changed, 0u);
}

TEST_F(StaRecorner, DeltaAfterRestoreBasesStaysExact) {
  // The snapshot carries slews, so an engine restored to a cached level
  // can continue incrementally from it — the controller's access pattern.
  StaOptions opts;
  opts.recorner_fallback_fraction = 1.0;
  StaEngine inc(*design_, opts);
  StaEngine ref(*design_, opts);
  const StaEngine::BaseSnapshot level0 = inc.snapshot_bases();
  inc.recorner_delta(1, kVddHigh);
  inc.recorner_delta(2, kVddHigh);
  inc.restore_bases(level0);
  const StaResult got = inc.recorner_delta(3, kVddHigh);
  std::vector<int> corners(4, kVddLow);
  corners[3] = kVddHigh;
  const StaResult want = reference(ref, corners);
  expect_results_equal(got, want, "delta after restore");
  expect_snapshots_byte_identical(inc.snapshot_bases(), ref.snapshot_bases(),
                                  "delta after restore");
}

TEST_F(StaRecorner, SnapshotCarriesSlewAndRejectsMismatch) {
  StaEngine inc(*design_, StaOptions{});
  StaEngine::BaseSnapshot snap = inc.snapshot_bases();
  EXPECT_EQ(snap.slew.size(), inc.num_nodes());
  snap.slew.pop_back();
  EXPECT_THROW(inc.restore_bases(snap), std::invalid_argument);
}

TEST_F(StaRecorner, ReflectsClockPeriodChanges) {
  // recorner_delta must report slacks against the engine's CURRENT clock,
  // like every other analysis entry point.
  StaEngine inc(*design_, StaOptions{});
  StaEngine ref(*design_, StaOptions{});
  const double period = inc.min_period() * 1.003;
  inc.set_clock_period(period);
  ref.set_clock_period(period);
  const StaResult got = inc.recorner_delta(2, kVddHigh);
  EXPECT_EQ(got.clock_period_ns, period);
  std::vector<int> corners(4, kVddLow);
  corners[2] = kVddHigh;
  expect_results_equal(got, reference(ref, corners), "clock change");
}

TEST_F(StaRecorner, StatsCountEveryDomainInstanceOnFirstFlip) {
  StaEngine inc(*design_, StaOptions{});
  std::size_t in_domain = 0;
  for (InstId i = 0; i < design_->num_instances(); ++i) {
    in_domain += design_->instance(i).domain == 2 ? 1 : 0;
  }
  ASSERT_GT(in_domain, 0u);
  inc.recorner_delta(2, kVddHigh);
  EXPECT_EQ(inc.recorner_stats().instances_flipped, in_domain);
  // Flipping again is a no-op; flipping back flips the same set.
  inc.recorner_delta(2, kVddHigh);
  EXPECT_TRUE(inc.recorner_stats().noop);
  inc.recorner_delta(2, kVddLow);
  EXPECT_EQ(inc.recorner_stats().instances_flipped, in_domain);
}

TEST(StaVex, MonotoneUnderUniformSlowdown) {
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig::tiny());
  Floorplan fp = Floorplan::for_design(d, FloorplanConfig{});
  PlacementDb db(fp);
  place_design(d, fp, PlacerConfig{}, db);
  StaEngine sta(d, StaOptions{});
  double prev = sta.min_period();
  for (double f : {1.05, 1.1, 1.2}) {
    std::vector<double> factors(d.num_instances(), f);
    const double t = sta.min_period(factors);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace vipvt
