// Netlist data-model tests: construction invariants, connectivity checks,
// unit/area bookkeeping and the ECO edit used by level-shifter insertion.

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/design.hpp"

namespace vipvt {
namespace {

class DesignTest : public ::testing::Test {
 protected:
  Library lib_ = make_st65lp_like();
};

TEST_F(DesignTest, BuilderCreatesConnectedGates) {
  Design d("t", lib_);
  NetlistBuilder b(d);
  const NetId a = b.input("a");
  const NetId x = b.input("x");
  const NetId z = b.and2(a, x);
  b.output(z);
  d.check();

  EXPECT_EQ(d.num_instances(), 1u);
  const Net& net = d.net(z);
  EXPECT_TRUE(net.has_cell_driver());
  EXPECT_TRUE(net.is_primary_output);
  EXPECT_EQ(d.net(a).sinks.size(), 1u);
}

TEST_F(DesignTest, DoubleDriverRejected) {
  Design d("t", lib_);
  NetlistBuilder b(d);
  const NetId a = b.input("a");
  const NetId z = b.inv(a);
  // Manually attempt to drive z again.
  const CellId inv = lib_.cell_for(CellFunc::Inv);
  EXPECT_THROW(
      d.add_instance("bad", inv, PipeStage::Other, kUnitTop, {a, z}),
      std::runtime_error);
}

TEST_F(DesignTest, PinCountMismatchRejected) {
  Design d("t", lib_);
  NetlistBuilder b(d);
  const NetId a = b.input("a");
  const CellId inv = lib_.cell_for(CellFunc::Inv);
  EXPECT_THROW(d.add_instance("bad", inv, PipeStage::Other, kUnitTop, {a}),
               std::invalid_argument);
}

TEST_F(DesignTest, ClockBookkeeping) {
  Design d("t", lib_);
  NetlistBuilder b(d);
  EXPECT_THROW(b.dff(NetId{0}), std::logic_error);  // no clock yet
  b.clock_input("clk");
  const NetId a = b.input("a");
  const NetId q = b.dff(a);
  b.output(q);
  d.check();
  EXPECT_EQ(d.num_flops(), 1u);
  EXPECT_NE(d.clock_net(), kInvalidNet);
  EXPECT_THROW(b.clock_input("clk2"), std::runtime_error);
}

TEST_F(DesignTest, UnitTaggingAndAreas) {
  Design d("t", lib_);
  NetlistBuilder b(d);
  const NetId a = b.input("a");
  NetId z;
  {
    NetlistBuilder::UnitScope u(b, "alu");
    z = b.inv(a);
    {
      NetlistBuilder::UnitScope v(b, "sub");
      z = b.inv(z);
    }
  }
  b.output(z);
  const UnitId alu = d.unit_id("alu");
  const UnitId sub = d.unit_id("alu/sub");
  EXPECT_GT(d.unit_area(alu), 0.0);
  EXPECT_GT(d.unit_area(sub), 0.0);
  EXPECT_NEAR(d.total_area(), d.unit_area(alu) + d.unit_area(sub), 1e-9);
}

TEST_F(DesignTest, StageTagging) {
  Design d("t", lib_);
  NetlistBuilder b(d);
  b.clock_input("clk");
  const NetId a = b.input("a");
  b.set_stage(PipeStage::Execute);
  const NetId z = b.inv(a);
  const NetId q = b.dff(z);
  b.output(q);
  EXPECT_EQ(d.instance(0).stage, PipeStage::Execute);
  EXPECT_EQ(d.instance(1).stage, PipeStage::Execute);
}

TEST_F(DesignTest, MoveSinkEco) {
  Design d("t", lib_);
  NetlistBuilder b(d);
  const NetId a = b.input("a");
  const NetId z1 = b.inv(a);   // inst 0
  const NetId z2 = b.inv(a);   // inst 1
  b.output(z1);
  b.output(z2);
  ASSERT_EQ(d.net(a).sinks.size(), 2u);

  // Reroute inst 1's input through a fresh net (as LS insertion does).
  const NetId mid = d.add_net("mid");
  const CellId buf = lib_.cell_for(CellFunc::Buf);
  d.add_instance("b0", buf, PipeStage::Other, kUnitTop, {a, mid});
  d.move_sink(a, PinConn{1, 0}, mid);
  d.check();
  EXPECT_EQ(d.net(mid).sinks.size(), 1u);
  EXPECT_EQ(d.instance(1).conns[0], mid);
  EXPECT_THROW(d.move_sink(a, PinConn{1, 0}, mid), std::invalid_argument);
}

TEST_F(DesignTest, ConstantsMemoized) {
  Design d("t", lib_);
  NetlistBuilder b(d);
  const NetId c0 = b.const0();
  EXPECT_EQ(b.const0(), c0);
  EXPECT_NE(b.const1(), c0);
  EXPECT_EQ(d.num_instances(), 2u);  // one tie cell each
}

TEST_F(DesignTest, ReductionTreeShape) {
  Design d("t", lib_);
  NetlistBuilder b(d);
  Bus bus = b.input_bus("in", 8);
  b.output(b.reduce_and(bus));
  // 8-input AND tree = 7 two-input gates.
  EXPECT_EQ(d.num_instances(), 7u);
  EXPECT_THROW(b.reduce_or(Bus{}), std::invalid_argument);
}

TEST_F(DesignTest, CheckCatchesClockPinOffClock) {
  Design d("t", lib_);
  NetlistBuilder b(d);
  b.clock_input("clk");
  const NetId a = b.input("a");
  const CellId dff = lib_.cell_for(CellFunc::Dff);
  const NetId q = d.add_net("q");
  // Wire CLK pin (pin 1) to a data net.
  d.add_instance("ff", dff, PipeStage::Other, kUnitTop, {a, a, q});
  EXPECT_THROW(d.check(), std::runtime_error);
}

TEST_F(DesignTest, BitwiseAndMuxBusesKeepWidth) {
  Design d("t", lib_);
  NetlistBuilder b(d);
  Bus x = b.input_bus("x", 4);
  Bus y = b.input_bus("y", 4);
  const NetId s = b.input("s");
  EXPECT_EQ(b.bitwise(CellFunc::Xor2, x, y).size(), 4u);
  EXPECT_EQ(b.mux2_bus(x, y, s).size(), 4u);
  Bus narrow = b.input_bus("n", 3);
  EXPECT_THROW(b.bitwise(CellFunc::And2, x, narrow), std::invalid_argument);
  EXPECT_THROW(b.mux2_bus(x, narrow, s), std::invalid_argument);
}

TEST_F(DesignTest, ConstBusEncodesValue) {
  Design d("t", lib_);
  NetlistBuilder b(d);
  Bus v = b.const_bus(0b1010, 4);
  // Bits 1 and 3 tie high.
  EXPECT_EQ(v[0], b.const0());
  EXPECT_EQ(v[1], b.const1());
  EXPECT_EQ(v[2], b.const0());
  EXPECT_EQ(v[3], b.const1());
}

}  // namespace
}  // namespace vipvt
