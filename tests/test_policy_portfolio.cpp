// Compensation-policy portfolio tests (DESIGN.md §18): the statistical
// sizing/buffering transforms under variation — function/Vth
// preservation, zero-displacement buffer legality, criticality
// determinism — plus the contract the whole portfolio leans on: a
// zero-strength policy's per-die STA bits equal the pre-portfolio path
// exactly, and the campaign's policy axis stays byte-deterministic on
// compiled netlists.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "io/campaign_writers.hpp"
#include "netlist/buffering.hpp"
#include "netlist/sizing.hpp"
#include "vi/flow.hpp"
#include "vi/policy.hpp"
#include "yield/yield.hpp"

namespace vipvt {
namespace {

FlowConfig tiny_flow_config() {
  FlowConfig cfg;
  cfg.vex = VexConfig::tiny();
  cfg.floorplan.target_utilization = 0.55;
  cfg.scenario.sweep_points = 6;
  cfg.scenario.mc.samples = 100;
  cfg.islands.mc_samples = 80;
  cfg.sim_cycles = 150;
  return cfg;
}

WaferConfig small_wafer() {
  WaferConfig wc;
  wc.wafer_diameter_mm = 70.0;  // a handful of dies
  return wc;
}

class PortfolioFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    flow_ = new Flow(tiny_flow_config());
    flow_->simulate_activity();
  }
  static void TearDownTestSuite() {
    delete flow_;
    flow_ = nullptr;
  }
  static Flow* flow_;
};
Flow* PortfolioFixture::flow_ = nullptr;

// ---- statistical upsizing --------------------------------------------------

TEST_F(PortfolioFixture, UpsizeCriticalPreservesFunctionAndVth) {
  Design design = flow_->design();
  const Design& base = flow_->design();
  const std::vector<double> crit(design.num_instances(), 1.0);
  CriticalSizingConfig cfg;
  cfg.enabled = true;
  cfg.min_crit_prob = 0.5;
  cfg.max_upsized = 40;
  const SizingReport report = upsize_critical(design, crit, cfg);
  EXPECT_GT(report.upsized, 0u);
  EXPECT_LE(report.upsized, 40u);

  std::size_t changed = 0;
  for (InstId i = 0; i < design.num_instances(); ++i) {
    const Cell& before = base.cell_of(i);
    const Cell& after = design.cell_of(i);
    if (before.name == after.name) continue;
    ++changed;
    EXPECT_EQ(before.func, after.func);
    EXPECT_EQ(before.vth, after.vth);
    EXPECT_GT(after.drive, before.drive);
    EXPECT_GE(after.area_um2, before.area_um2);
    // Zero-displacement ECO: the instance itself never moves.
    EXPECT_EQ(base.instance(i).pos.x, design.instance(i).pos.x);
    EXPECT_EQ(base.instance(i).pos.y, design.instance(i).pos.y);
  }
  EXPECT_EQ(changed, report.upsized);
  EXPECT_GT(design.total_area(), base.total_area());
  EXPECT_NO_THROW(design.check());
}

TEST_F(PortfolioFixture, UpsizeCriticalThresholdAndSizeValidation) {
  Design design = flow_->design();
  CriticalSizingConfig cfg;
  cfg.enabled = true;
  // Unreachable threshold: nothing selects.
  const std::vector<double> cold(design.num_instances(), 0.0);
  cfg.min_crit_prob = 0.5;
  EXPECT_EQ(upsize_critical(design, cold, cfg).upsized, 0u);
  // Mis-sized criticality vector throws.
  const std::vector<double> bad(design.num_instances() + 1, 1.0);
  EXPECT_THROW(upsize_critical(design, bad, cfg), std::invalid_argument);
}

// ---- statistical buffering -------------------------------------------------

TEST_F(PortfolioFixture, BufferCriticalNetsIsALegalZeroDisplacementEco) {
  Design design = flow_->design();
  const Design& base = flow_->design();
  const InstId base_insts = base.num_instances();
  const std::vector<double> crit(design.num_instances(), 1.0);
  CriticalBufferConfig cfg;
  cfg.enabled = true;
  cfg.min_crit_prob = 0.5;
  cfg.max_nets = 8;
  const BufferingReport report = buffer_critical_nets(design, crit, cfg);
  ASSERT_GT(report.buffers_inserted, 0u);
  EXPECT_LE(report.nets_split, 8u);

  // Every inserted instance is a placed buffer sitting AT its driver's
  // point, in the driver's voltage domain.
  for (InstId i = base_insts; i < design.num_instances(); ++i) {
    const Instance& buf = design.instance(i);
    EXPECT_EQ(design.cell_of(i).func, CellFunc::Buf);
    EXPECT_TRUE(buf.placed);
    const NetId in = buf.conns[0];
    const Instance& drv = design.instance(design.net(in).driver.inst);
    EXPECT_EQ(buf.pos.x, drv.pos.x);
    EXPECT_EQ(buf.pos.y, drv.pos.y);
    EXPECT_EQ(buf.domain, drv.domain);
    // Each leg serves at most `cluster` sinks.
    EXPECT_LE(design.net(buf.conns[1]).sinks.size(),
              static_cast<std::size_t>(cfg.cluster));
  }

  // Clock and primary-output nets are untouchable.
  for (NetId n = 0; n < base.num_nets(); ++n) {
    if (base.net(n).is_clock || base.net(n).is_primary_output) {
      EXPECT_EQ(design.net(n).sinks.size(), base.net(n).sinks.size());
    }
  }
  EXPECT_NO_THROW(design.check());

  // Endpoint stability: a rebuilt StaEngine enumerates the SAME flop
  // endpoints in the same order (buffers are appended combinational
  // cells), which is what keeps the baseline RazorPlan valid on the
  // transformed netlist.
  const StaEngine fresh(design, flow_->sta().options());
  const auto& before = flow_->sta().endpoints();
  const auto& after = fresh.endpoints();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t e = 0; e < before.size(); ++e) {
    EXPECT_EQ(after[e].flop, before[e].flop);
    EXPECT_EQ(after[e].stage, before[e].stage);
  }
}

// ---- criticality measurement -----------------------------------------------

TEST_F(PortfolioFixture, InstanceCriticalityIsBoundedAndDeterministic) {
  const std::vector<double> a = instance_criticality(
      flow_->design(), flow_->sta(), flow_->variation(),
      DieLocation::point('A'), 8, 0x5eed);
  const std::vector<double> b = instance_criticality(
      flow_->design(), flow_->sta(), flow_->variation(),
      DieLocation::point('A'), 8, 0x5eed);
  ASSERT_EQ(a.size(), flow_->design().num_instances());
  EXPECT_EQ(a, b);
  for (const double p : a) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

// ---- compiled policy mixes -------------------------------------------------

TEST_F(PortfolioFixture, PureViMixAliasesTheBaseline) {
  const PolicyMix mix{"vi-only", true, true};
  const CompiledPolicy cp =
      compile_policy_mix(mix, flow_->design(), flow_->sta(),
                         flow_->variation(), flow_->activity());
  EXPECT_FALSE(cp.transformed());
  EXPECT_EQ(&cp.design_or(flow_->design()), &flow_->design());
  EXPECT_EQ(&cp.sta_or(flow_->sta()), &flow_->sta());
  EXPECT_EQ(cp.stats.mix, "vi-only");
  EXPECT_EQ(cp.stats.gates_upsized, 0u);
  EXPECT_EQ(cp.stats.area_delta_um2, 0.0);
}

TEST_F(PortfolioFixture, CompilePolicyMixIsDeterministic) {
  PolicyMix mix;
  mix.name = "both";
  mix.sizing.enabled = true;
  mix.sizing.min_crit_prob = 0.02;
  mix.buffering.enabled = true;
  mix.buffering.min_crit_prob = 0.02;
  mix.crit_samples = 8;
  const CompiledPolicy a = compile_policy_mix(
      mix, flow_->design(), flow_->sta(), flow_->variation(),
      flow_->activity());
  const CompiledPolicy b = compile_policy_mix(
      mix, flow_->design(), flow_->sta(), flow_->variation(),
      flow_->activity());
  ASSERT_TRUE(a.transformed());
  EXPECT_EQ(a.stats.gates_upsized, b.stats.gates_upsized);
  EXPECT_EQ(a.stats.buffers_inserted, b.stats.buffers_inserted);
  EXPECT_EQ(a.stats.area_um2, b.stats.area_um2);
  ASSERT_EQ(a.design->num_instances(), b.design->num_instances());
  for (InstId i = 0; i < a.design->num_instances(); ++i) {
    ASSERT_EQ(a.design->instance(i).cell, b.design->instance(i).cell);
  }
  // Activity extends to the new nets at the source net's rate.
  ASSERT_EQ(a.activity->toggle_rate.size(), a.design->num_nets());
  for (NetId n = flow_->design().num_nets(); n < a.design->num_nets(); ++n) {
    const NetId src = a.design->instance(a.design->net(n).driver.inst).conns[0];
    EXPECT_EQ(a.activity->toggle_rate[n], a.activity->toggle_rate[src]);
  }
}

// The satellite contract: a policy that takes the full transform path
// but selects nothing (unreachable threshold) must produce per-die STA
// bits identical to the pre-portfolio baseline — the rebuilt StaEngine
// and the RNG-position rules are exact (DESIGN.md §18).
TEST_F(PortfolioFixture, ZeroStrengthPolicyMatchesPrePortfolioBits) {
  PolicyMix zero;
  zero.name = "zero";
  zero.sizing.enabled = true;
  zero.sizing.min_crit_prob = 2.0;  // probabilities are <= 1
  zero.crit_samples = 4;
  const CompiledPolicy cp = compile_policy_mix(
      zero, flow_->design(), flow_->sta(), flow_->variation(),
      flow_->activity());
  ASSERT_TRUE(cp.transformed());
  EXPECT_EQ(cp.stats.gates_upsized, 0u);
  EXPECT_EQ(cp.stats.area_delta_um2, 0.0);

  const YieldAnalyzer base = YieldAnalyzer::from_flow(*flow_);
  const YieldAnalyzer compiled(*cp.design, *cp.sta, flow_->variation(),
                               flow_->island_plan(), flow_->razor_plan(),
                               *cp.activity,
                               1.0 / flow_->post_shifter_clock_ns());
  const WaferModel wafer(small_wafer());
  YieldConfig yc;
  yc.mc.samples = 6;
  StaEngine eng_a(flow_->sta());
  StaEngine eng_b(*cp.sta);
  for (std::size_t i = 0; i < std::min<std::size_t>(4, wafer.num_dies());
       ++i) {
    const DieOutcome a = base.analyze_die(eng_a, wafer.dies()[i], yc);
    const DieOutcome b = compiled.analyze_die(eng_b, wafer.dies()[i], yc);
    EXPECT_EQ(a.mc_severity, b.mc_severity);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.islands_raised, b.islands_raised);
    EXPECT_EQ(a.wns_all_low_ns, b.wns_all_low_ns);  // bitwise: same doubles
    EXPECT_EQ(a.wns_final_ns, b.wns_final_ns);
    EXPECT_EQ(a.fmax_ghz, b.fmax_ghz);
    EXPECT_EQ(a.total_mw, b.total_mw);
    EXPECT_EQ(a.leakage_mw, b.leakage_mw);
  }
}

// ---- the campaign's policy axis on compiled netlists -----------------------

TEST_F(PortfolioFixture, CampaignPortfolioAxisIsShardInvariant) {
  CampaignRunner runner;
  runner.add_variant("tiny", *flow_);

  CampaignSpec spec;
  spec.wafer_grids = {small_wafer()};
  spec.policies = {PolicyMix{"vi-only", true, true}, PolicyMix{}};
  spec.policies[1].name = "sizing+vi";
  spec.policies[1].sizing.enabled = true;
  spec.policies[1].sizing.min_crit_prob = 0.02;
  spec.policies[1].crit_samples = 8;
  spec.mc_samples = {5};
  spec.base.mc.samples = 5;
  spec.base.speed_bins = 4;
  spec.shard_dies = 5;

  // The digest covers the portfolio knobs: the same spec with a
  // different sizing threshold is a DIFFERENT campaign.
  CampaignSpec other = spec;
  other.policies[1].sizing.min_crit_prob = 0.5;
  EXPECT_NE(runner.spec_digest(spec), runner.spec_digest(other));

  const CampaignReport a = runner.run(spec);
  ASSERT_EQ(a.cells.size(), 2u);
  EXPECT_EQ(a.cells[0].portfolio.mix, "vi-only");
  EXPECT_FALSE(a.cells[0].portfolio.sizing);
  EXPECT_EQ(a.cells[1].portfolio.mix, "sizing+vi");
  EXPECT_TRUE(a.cells[1].portfolio.sizing);
  EXPECT_GT(a.cells[1].portfolio.gates_upsized, 0u);
  EXPECT_GT(a.cells[1].portfolio.area_delta_um2, 0.0);
  // Both cells fabricated every die of the wafer.
  EXPECT_EQ(a.cells[0].agg.dies, a.cells[1].agg.dies);

  // Byte-identical report across shard sizes (the §15 contract extended
  // over the portfolio axis).
  CampaignSpec resharded = spec;
  resharded.shard_dies = 16;
  const CampaignReport b = runner.run(resharded);
  std::ostringstream osa, osb;
  write_campaign_json(osa, a);
  write_campaign_json(osb, b);
  // The spec echo differs (shard_dies is scheduling, not physics), so
  // compare from the first cell onward plus the aggregate yields.
  const std::string sa = osa.str(), sb = osb.str();
  const std::size_t ca = sa.find("\"cells\""), cb = sb.find("\"cells\"");
  ASSERT_NE(ca, std::string::npos);
  EXPECT_EQ(sa.substr(ca), sb.substr(cb));
  EXPECT_EQ(a.total_dies(), b.total_dies());
  EXPECT_EQ(a.shipped_dies(), b.shipped_dies());
}

}  // namespace
}  // namespace vipvt
