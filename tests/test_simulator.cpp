// Logic-simulator tests: gate truth tables, flop semantics, toggle
// accounting, reset behaviour and the stimulus generators.

#include <gtest/gtest.h>

#include <functional>

#include "netlist/builder.hpp"
#include "netlist/vex.hpp"
#include "sim/simulator.hpp"
#include "sim/stimulus.hpp"

namespace vipvt {
namespace {

class SimTest : public ::testing::Test {
 protected:
  Library lib_ = make_st65lp_like();
};

TEST_F(SimTest, TruthTablesAllFunctions) {
  Design d("truth", lib_);
  NetlistBuilder b(d);
  const NetId a = b.input("a");
  const NetId x = b.input("x");
  const NetId c = b.input("c");
  const NetId e = b.input("e");
  struct Case {
    NetId net;
    // expected output for each input pattern (a, x, c, e) packed as bits
    std::function<bool(bool, bool, bool, bool)> ref;
  };
  std::vector<Case> cases;
  cases.push_back({b.inv(a), [](bool A, bool, bool, bool) { return !A; }});
  cases.push_back({b.buf(a), [](bool A, bool, bool, bool) { return A; }});
  cases.push_back({b.nand2(a, x), [](bool A, bool X, bool, bool) { return !(A && X); }});
  cases.push_back({b.nor2(a, x), [](bool A, bool X, bool, bool) { return !(A || X); }});
  cases.push_back({b.and2(a, x), [](bool A, bool X, bool, bool) { return A && X; }});
  cases.push_back({b.or2(a, x), [](bool A, bool X, bool, bool) { return A || X; }});
  cases.push_back({b.xor2(a, x), [](bool A, bool X, bool, bool) { return A != X; }});
  cases.push_back({b.xnor2(a, x), [](bool A, bool X, bool, bool) { return A == X; }});
  cases.push_back({b.mux2(a, x, c), [](bool A, bool X, bool C, bool) { return C ? X : A; }});
  cases.push_back({b.maj3(a, x, c), [](bool A, bool X, bool C, bool) {
                     return (A && X) || (A && C) || (X && C);
                   }});
  cases.push_back({b.gate(CellFunc::Nand3, {a, x, c}),
                   [](bool A, bool X, bool C, bool) { return !(A && X && C); }});
  cases.push_back({b.gate(CellFunc::Nor3, {a, x, c}),
                   [](bool A, bool X, bool C, bool) { return !(A || X || C); }});
  cases.push_back({b.gate(CellFunc::And3, {a, x, c}),
                   [](bool A, bool X, bool C, bool) { return A && X && C; }});
  cases.push_back({b.gate(CellFunc::Or3, {a, x, c}),
                   [](bool A, bool X, bool C, bool) { return A || X || C; }});
  cases.push_back({b.gate(CellFunc::Nand4, {a, x, c, e}),
                   [](bool A, bool X, bool C, bool E) { return !(A && X && C && E); }});
  cases.push_back({b.gate(CellFunc::Aoi21, {a, x, c}),
                   [](bool A, bool X, bool C, bool) { return !((A && X) || C); }});
  cases.push_back({b.gate(CellFunc::Oai21, {a, x, c}),
                   [](bool A, bool X, bool C, bool) { return !((A || X) && C); }});
  cases.push_back({b.gate(CellFunc::Aoi22, {a, x, c, e}),
                   [](bool A, bool X, bool C, bool E) {
                     return !((A && X) || (C && E));
                   }});
  const NetId t0 = b.const0();
  const NetId t1 = b.const1();
  for (auto& cs : cases) b.output(cs.net);
  d.check();

  LogicSimulator sim(d);
  for (int pat = 0; pat < 16; ++pat) {
    const bool A = pat & 1, X = pat & 2, C = pat & 4, E = pat & 8;
    sim.set_input(a, A);
    sim.set_input(x, X);
    sim.set_input(c, C);
    sim.set_input(e, E);
    sim.step();
    for (std::size_t k = 0; k < cases.size(); ++k) {
      EXPECT_EQ(sim.value(cases[k].net), cases[k].ref(A, X, C, E))
          << "case " << k << " pattern " << pat;
    }
    EXPECT_FALSE(sim.value(t0));
    EXPECT_TRUE(sim.value(t1));
  }
}

TEST_F(SimTest, FlopCapturesOnEdgeOnly) {
  Design d("ff", lib_);
  NetlistBuilder b(d);
  b.clock_input("clk");
  const NetId din = b.input("d");
  const NetId q = b.dff(din);
  b.output(q);
  d.check();
  LogicSimulator sim(d);
  EXPECT_FALSE(sim.value(q));
  sim.set_input(din, true);
  EXPECT_FALSE(sim.value(q));  // not yet clocked
  sim.step();
  EXPECT_TRUE(sim.value(q));
  sim.set_input(din, false);
  sim.step();
  EXPECT_FALSE(sim.value(q));
}

TEST_F(SimTest, ShiftRegisterDelaysByOnePerStage) {
  Design d("sr", lib_);
  NetlistBuilder b(d);
  b.clock_input("clk");
  const NetId din = b.input("d");
  const NetId q1 = b.dff(din);
  const NetId q2 = b.dff(q1);
  const NetId q3 = b.dff(q2);
  b.output(q3);
  d.check();
  LogicSimulator sim(d);
  sim.set_input(din, true);
  sim.step();  // q1=1
  sim.set_input(din, false);
  sim.step();  // q1=0 q2=1
  sim.step();  // q3=1
  EXPECT_TRUE(sim.value(q3));
  sim.step();
  EXPECT_FALSE(sim.value(q3));
}

TEST_F(SimTest, ToggleCounting) {
  Design d("tgl", lib_);
  NetlistBuilder b(d);
  const NetId a = b.input("a");
  const NetId z = b.inv(a);
  b.output(z);
  d.check();
  LogicSimulator sim(d);
  for (int i = 0; i < 10; ++i) {
    sim.set_input(a, i % 2 == 0);
    sim.step();
  }
  EXPECT_EQ(sim.cycles(), 10u);
  EXPECT_EQ(sim.toggles()[a], 10u);  // toggles every cycle (starts at 0->1)
  EXPECT_EQ(sim.toggles()[z], 10u);
  EXPECT_DOUBLE_EQ(sim.toggle_rate(a), 1.0);
}

TEST_F(SimTest, ResetClearsStateAndStats) {
  Design d("rst", lib_);
  NetlistBuilder b(d);
  b.clock_input("clk");
  const NetId a = b.input("a");
  const NetId q = b.dff(a);
  b.output(q);
  LogicSimulator sim(d);
  sim.set_input(a, true);
  sim.step();
  EXPECT_TRUE(sim.value(q));
  sim.reset();
  EXPECT_FALSE(sim.value(q));
  EXPECT_EQ(sim.cycles(), 0u);
  EXPECT_EQ(sim.toggles()[q], 0u);
}

TEST_F(SimTest, SetInputRejectsInternalNets) {
  Design d("guard", lib_);
  NetlistBuilder b(d);
  const NetId a = b.input("a");
  const NetId z = b.inv(a);
  b.output(z);
  LogicSimulator sim(d);
  EXPECT_THROW(sim.set_input(z, true), std::invalid_argument);
  EXPECT_THROW(sim.input_by_name("nope"), std::out_of_range);
}

TEST_F(SimTest, RandomStimulusTogglesDesign) {
  Design d = make_vex_design(lib_, VexConfig::tiny());
  LogicSimulator sim(d);
  RandomStimulus stim(d, 5);
  stim.run(sim, 50);
  EXPECT_EQ(sim.cycles(), 50u);
  std::uint64_t total = 0;
  for (auto t : sim.toggles()) total += t;
  EXPECT_GT(total, 1000u);
}

TEST_F(SimTest, FirStimulusIsDeterministic) {
  Design d = make_vex_design(lib_, VexConfig::tiny());
  LogicSimulator s1(d), s2(d);
  FirStimulus f1(d, VexConfig::tiny(), 42), f2(d, VexConfig::tiny(), 42);
  f1.run(s1, 40);
  f2.run(s2, 40);
  for (NetId n = 0; n < d.num_nets(); ++n) {
    ASSERT_EQ(s1.toggles()[n], s2.toggles()[n]) << "net " << n;
  }
}

TEST_F(SimTest, FirActivityLowerThanRandom) {
  // Correlated FIR operands toggle high-order bits far less than white
  // noise: the sanity property that makes the workload "realistic".
  Design d = make_vex_design(lib_, VexConfig::tiny());
  LogicSimulator fir_sim(d), rnd_sim(d);
  FirStimulus fir(d, VexConfig::tiny(), 9);
  RandomStimulus rnd(d, 9);
  fir.run(fir_sim, 200);
  rnd.run(rnd_sim, 200);
  std::uint64_t fir_total = 0, rnd_total = 0;
  for (NetId n = 0; n < d.num_nets(); ++n) {
    fir_total += fir_sim.toggles()[n];
    rnd_total += rnd_sim.toggles()[n];
  }
  EXPECT_LT(fir_total, rnd_total);
}

}  // namespace
}  // namespace vipvt
