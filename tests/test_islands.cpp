// Voltage-island generation tests: nesting invariants, slice geometry,
// compensation effectiveness at the scenario locations, horizontal vs
// vertical direction handling, and corner bookkeeping.

#include <gtest/gtest.h>

#include "netlist/vex.hpp"
#include "placement/placer.hpp"
#include "timing/recovery.hpp"
#include "vi/islands.hpp"
#include "vi/scenario.hpp"

namespace vipvt {
namespace {

/// Shared expensive setup: placed + recovered tiny VEX with scenarios.
class IslandFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new Library(make_st65lp_like());
    design_ = new Design(make_vex_design(*lib_, VexConfig::tiny()));
    fp_ = new Floorplan(Floorplan::for_design(*design_, FloorplanConfig{}));
    db_ = new PlacementDb(*fp_);
    place_design(*design_, *fp_, PlacerConfig{}, *db_);
    sta_ = new StaEngine(*design_, StaOptions{});
    sta_->set_clock_period(sta_->min_period() * 1.04);
    recover_power(*design_, *sta_, RecoveryConfig{});
    field_ = new ExposureField(ExposureField::scaled_65nm(lib_->char_params()));
    model_ = new VariationModel(lib_->char_params(), *field_);
    ScenarioConfig sc;
    sc.sweep_points = 6;
    sc.mc.samples = 100;
    scenarios_ = new ScenarioSet(
        characterize_scenarios(*design_, *sta_, *model_, sc));
  }

  static void TearDownTestSuite() {
    delete scenarios_;
    delete model_;
    delete field_;
    delete sta_;
    delete db_;
    delete fp_;
    delete design_;
    delete lib_;
    scenarios_ = nullptr;
    model_ = nullptr;
    field_ = nullptr;
    sta_ = nullptr;
    db_ = nullptr;
    fp_ = nullptr;
    design_ = nullptr;
    lib_ = nullptr;
  }

  /// Locations per severity with fallbacks, as the Flow builds them.
  static std::vector<DieLocation> severity_locations() {
    std::vector<DieLocation> locs;
    std::optional<DieLocation> fb;
    for (std::size_t k = scenarios_->by_severity.size(); k-- > 0;) {
      if (scenarios_->by_severity[k].has_value()) {
        fb = scenarios_->by_severity[k]->location;
      }
    }
    for (const auto& sp : scenarios_->by_severity) {
      if (sp.has_value()) {
        locs.push_back(sp->location);
        fb = sp->location;
      } else if (fb.has_value()) {
        locs.push_back(*fb);
      }
    }
    return locs;
  }

  static Library* lib_;
  static Design* design_;
  static Floorplan* fp_;
  static PlacementDb* db_;
  static StaEngine* sta_;
  static ExposureField* field_;
  static VariationModel* model_;
  static ScenarioSet* scenarios_;
};

Library* IslandFixture::lib_ = nullptr;
Design* IslandFixture::design_ = nullptr;
Floorplan* IslandFixture::fp_ = nullptr;
PlacementDb* IslandFixture::db_ = nullptr;
StaEngine* IslandFixture::sta_ = nullptr;
ExposureField* IslandFixture::field_ = nullptr;
VariationModel* IslandFixture::model_ = nullptr;
ScenarioSet* IslandFixture::scenarios_ = nullptr;

TEST_F(IslandFixture, ScenariosExistAndAreOrdered) {
  EXPECT_GE(scenarios_->max_severity(), 1);
  int prev = 99;
  for (const auto& p : scenarios_->sweep) {
    EXPECT_LE(p.severity, prev);  // monotone non-increasing from A out
    prev = p.severity;
  }
}

TEST_F(IslandFixture, GeneratesNestedFeasibleIslands) {
  const auto locs = severity_locations();
  ASSERT_FALSE(locs.empty());
  IslandConfig cfg;
  cfg.dir = SliceDir::Vertical;
  cfg.mc_samples = 80;
  IslandGenerator gen(*design_, *fp_, *sta_, *model_, cfg);
  const IslandPlan plan = gen.generate(locs);

  ASSERT_EQ(plan.num_islands(), static_cast<int>(locs.size()));
  // Cuts are non-decreasing (nesting) and there is at least one cell in
  // the union of islands.
  for (int k = 1; k < plan.num_islands(); ++k) {
    EXPECT_GE(plan.cuts[k], plan.cuts[k - 1]);
  }
  EXPECT_GT(plan.total_island_cells(), 0u);
  for (int k = 0; k < plan.num_islands(); ++k) {
    EXPECT_TRUE(plan.feasible[k]) << "island " << k + 1;
  }

  // Domain assignment is consistent with cut geometry: domains partition
  // the sorted cells into contiguous prefixes.
  std::size_t in_islands = 0;
  for (InstId i = 0; i < design_->num_instances(); ++i) {
    const DomainId dom = design_->instance(i).domain;
    EXPECT_LE(dom, plan.num_islands());
    if (dom != kDomainBase) ++in_islands;
  }
  EXPECT_EQ(in_islands, plan.total_island_cells());
}

TEST_F(IslandFixture, VerticalSlicesAreVerticalStripes) {
  const auto locs = severity_locations();
  IslandConfig cfg;
  cfg.dir = SliceDir::Vertical;
  cfg.mc_samples = 80;
  IslandGenerator gen(*design_, *fp_, *sta_, *model_, cfg);
  const IslandPlan plan = gen.generate(locs);
  // For every pair (island cell, base cell): in slice-key space the
  // island cell is nearer the start side than any base-domain cell.
  const Rect& die = fp_->die();
  double max_island_key = -1.0, min_base_key = 1e18;
  for (InstId i = 0; i < design_->num_instances(); ++i) {
    const Instance& inst = design_->instance(i);
    const double key = plan.from_low_side ? inst.pos.x - die.lo.x
                                          : die.hi.x - inst.pos.x;
    if (inst.domain == kDomainBase) {
      min_base_key = std::min(min_base_key, key);
    } else {
      max_island_key = std::max(max_island_key, key);
    }
  }
  // Stripe boundary: allow one site of slack for equal coordinates.
  EXPECT_LE(max_island_key, min_base_key + fp_->site_width() + 1e-6);
}

TEST_F(IslandFixture, RaisingIslandsFixesScenario) {
  const auto locs = severity_locations();
  IslandConfig cfg;
  cfg.dir = SliceDir::Vertical;
  cfg.mc_samples = 80;
  IslandGenerator gen(*design_, *fp_, *sta_, *model_, cfg);
  const IslandPlan plan = gen.generate(locs);

  MonteCarloSsta mc(*design_, *sta_, *model_);
  McConfig mcc;
  mcc.samples = 80;
  for (int sev = 1; sev <= plan.num_islands(); ++sev) {
    const DieLocation& loc = locs[static_cast<std::size_t>(sev - 1)];
    // Without compensation the scenario violates...
    sta_->compute_base_all_low();
    const McResult before = mc.run(loc, mcc);
    EXPECT_GT(before.num_violating_stages(), 0) << "severity " << sev;
    // ...with islands 1..sev raised it is fixed.
    const auto corners = plan.corners_for_severity(sev);
    sta_->compute_base(corners);
    const McResult after = mc.run(loc, mcc);
    EXPECT_EQ(after.num_violating_stages(), 0) << "severity " << sev;
  }
  sta_->compute_base_all_low();
}

TEST_F(IslandFixture, HorizontalDirectionAlsoWorks) {
  const auto locs = severity_locations();
  IslandConfig cfg;
  cfg.dir = SliceDir::Horizontal;
  cfg.mc_samples = 80;
  IslandGenerator gen(*design_, *fp_, *sta_, *model_, cfg);
  const IslandPlan plan = gen.generate(locs);
  EXPECT_EQ(plan.dir, SliceDir::Horizontal);
  EXPECT_GT(plan.total_island_cells(), 0u);
  for (int k = 0; k < plan.num_islands(); ++k) {
    EXPECT_TRUE(plan.feasible[k]);
  }
  // Restore vertical plan for any later fixture users.
  IslandConfig vcfg;
  vcfg.dir = SliceDir::Vertical;
  vcfg.mc_samples = 80;
  IslandGenerator vgen(*design_, *fp_, *sta_, *model_, vcfg);
  vgen.generate(locs);
}

TEST(IslandPlanUnit, CornersForSeverity) {
  IslandPlan plan;
  plan.cuts = {10.0, 20.0, 30.0};
  plan.cell_count = {5, 5, 5};
  plan.feasible = {true, true, true};
  const auto c0 = plan.corners_for_severity(0);
  EXPECT_EQ(c0, (std::vector<int>{kVddLow, kVddLow, kVddLow, kVddLow}));
  const auto c2 = plan.corners_for_severity(2);
  EXPECT_EQ(c2, (std::vector<int>{kVddLow, kVddHigh, kVddHigh, kVddLow}));
  const auto c9 = plan.corners_for_severity(9);  // clamped
  EXPECT_EQ(c9, (std::vector<int>{kVddLow, kVddHigh, kVddHigh, kVddHigh}));
}

TEST(IslandPlanUnit, DomainRankOrder) {
  IslandPlan plan;
  plan.cuts = {1.0, 2.0, 3.0};
  // Island 1 raised first => highest rank; base lowest.
  EXPECT_EQ(plan.domain_rank(kDomainBase), 0);
  EXPECT_GT(plan.domain_rank(1), plan.domain_rank(2));
  EXPECT_GT(plan.domain_rank(2), plan.domain_rank(3));
  EXPECT_GT(plan.domain_rank(3), plan.domain_rank(kDomainBase));
}

TEST(IslandGeneratorUnit, RejectsEmptyScenarioList) {
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig::tiny());
  Floorplan fp = Floorplan::for_design(d, FloorplanConfig{});
  PlacementDb db(fp);
  place_design(d, fp, PlacerConfig{}, db);
  StaEngine sta(d, StaOptions{});
  CharParams cp = lib.char_params();
  ExposureField field = ExposureField::scaled_65nm(cp);
  VariationModel model(cp, field);
  IslandGenerator gen(d, fp, sta, model, IslandConfig{});
  EXPECT_THROW(gen.generate({}), std::invalid_argument);
}

}  // namespace
}  // namespace vipvt
