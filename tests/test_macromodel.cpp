// Stage-macromodel (hierarchical STA, DESIGN.md §19) tests: the
// macromodel-vs-flat equivalence fuzz (stage moments within the §14 CI
// band across sigma scales x escalation ladder x reticle slots, yield
// verdict agreement across seeds), characterization determinism,
// restricted-recharacterization bit-identity, cache-key correctness
// across policy-transformed netlists, and thread-count byte identity of
// macro-tier reports.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "io/yield_writers.hpp"
#include "ssta/canonical.hpp"
#include "ssta/macromodel.hpp"
#include "util/stats.hpp"
#include "vi/flow.hpp"
#include "vi/policy.hpp"
#include "yield/wafer.hpp"
#include "yield/yield.hpp"

namespace vipvt {
namespace {

FlowConfig tiny_flow_config() {
  FlowConfig cfg;
  cfg.vex = VexConfig::tiny();
  cfg.floorplan.target_utilization = 0.55;
  cfg.scenario.sweep_points = 6;
  cfg.scenario.mc.samples = 100;
  cfg.islands.mc_samples = 80;
  cfg.sim_cycles = 150;
  return cfg;
}

WaferConfig test_wafer_config() {
  WaferConfig wc;
  wc.wafer_diameter_mm = 200.0;
  return wc;
}

YieldConfig macro_off_config() {
  YieldConfig yc;
  yc.mc.samples = 12;
  yc.seed = 0xd1e5;
  return yc;
}

YieldConfig macro_on_config() {
  YieldConfig yc = macro_off_config();
  yc.tier = EvalTier::Macro;
  return yc;
}

/// Everything a die reports EXCEPT the MC-population fields a screen
/// replaces: these must be bitwise equal macro-tier on or off.
std::string non_mc_fingerprint(const YieldReport& r) {
  std::ostringstream os;
  for (const DieOutcome& d : r.dies) {
    os << d.die_id << ' ' << d.detected_severity << ' ' << d.islands_raised
       << ' ' << static_cast<int>(d.policy) << ' ' << d.timing_met << ' '
       << d.escalated << ' ' << d.missed_violation << ' '
       << std::hexfloat << d.wns_all_low_ns << ' ' << d.wns_final_ns << ' '
       << d.total_mw << ' ' << d.leakage_mw << std::defaultfloat << '\n';
  }
  return os.str();
}

class MacroFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    flow_ = new Flow(tiny_flow_config());
    flow_->simulate_activity();
  }
  static void TearDownTestSuite() {
    delete flow_;
    flow_ = nullptr;
  }
  static Flow* flow_;
};

Flow* MacroFixture::flow_ = nullptr;

// ---- characterization determinism ------------------------------------------

TEST_F(MacroFixture, CharacterizationIsBitDeterministic) {
  StaEngine engine(flow_->sta());
  engine.compute_base_all_low();
  const StageMacroLibrary a(flow_->design(), engine, flow_->variation());
  const StageMacroLibrary b(flow_->design(), engine, flow_->variation());
  EXPECT_FALSE(a.fingerprint().empty());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST_F(MacroFixture, EvaluateRejectsShortSystematicMap) {
  StaEngine engine(flow_->sta());
  engine.compute_base_all_low();
  const StageMacroLibrary lib(flow_->design(), engine, flow_->variation());
  const std::vector<double> short_map(flow_->design().num_instances() - 1,
                                      45.0);
  EXPECT_THROW((void)lib.evaluate(short_map), std::invalid_argument);
}

TEST_F(MacroFixture, RejectsDegenerateConfigs) {
  StaEngine engine(flow_->sta());
  engine.compute_base_all_low();
  MacroConfig one;
  one.knots = 1;
  EXPECT_THROW(
      StageMacroLibrary(flow_->design(), engine, flow_->variation(), one),
      std::invalid_argument);
  MacroConfig flat_step;
  flat_step.grad_step = 0.0;
  EXPECT_THROW(StageMacroLibrary(flow_->design(), engine, flow_->variation(),
                                 flat_step),
               std::invalid_argument);
}

// ---- equivalence fuzz vs the flat canonical path ---------------------------

// The §14 CI band the triage/macro verdict uses (DESIGN.md §16): what an
// n-sample MC estimate could plausibly disagree with analytic moments
// by, plus the model-error allowance.  The macromodel must agree with
// the FLAT canonical pass much tighter than either agrees with MC, so
// the band is a conservative equivalence bound.
double ci_band(std::size_t n, double sigma_ns, const TriageConfig& tc) {
  return tc.band_scale *
             (mean_confidence_interval(n, 0.0, sigma_ns, tc.confidence)
                  .half_width() +
              3.0 * stddev_confidence_interval(n, sigma_ns, tc.confidence)
                        .half_width()) +
         tc.model_error_ns;
}

TEST_F(MacroFixture, StageMomentsTrackFlatCanonicalAcrossSigmaAndLadder) {
  const Design& design = flow_->design();
  const VariationModel& base_model = flow_->variation();
  const IslandPlan& plan = flow_->island_plan();
  const TriageConfig tc{};  // default band knobs
  const std::size_t n = 48;

  for (const double sigma_scale : {0.75, 1.0, 1.25}) {
    VariationConfig vc = base_model.config();
    vc.three_sigma_random_frac *= sigma_scale;
    const VariationModel model(base_model.char_params(), base_model.field(),
                               vc);
    for (int level = 0; level <= plan.num_islands(); ++level) {
      StaEngine engine(flow_->sta());
      engine.compute_base(plan.corners_for_severity(level));
      const CanonicalSsta canon(design, engine, model);
      const StageMacroLibrary lib(design, engine, model);
      for (const char loc : {'A', 'B', 'C', 'D'}) {
        const std::vector<double> map =
            model.systematic_lgates(design, DieLocation::point(loc));
        const CanonicalResult flat = canon.run(map);
        const CanonicalResult macro = lib.evaluate(map);
        for (int s = 0; s < kNumPipeStages; ++s) {
          const StageGauss& f = flat.stages[static_cast<std::size_t>(s)];
          const StageGauss& m = macro.stages[static_cast<std::size_t>(s)];
          ASSERT_EQ(f.present, m.present)
              << "sigma " << sigma_scale << " level " << level << " loc "
              << loc << " stage " << s;
          if (!f.present) continue;
          const double band = ci_band(n, f.sigma_ns, tc);
          EXPECT_NEAR(m.mean_slack_ns, f.mean_slack_ns, band)
              << "sigma " << sigma_scale << " level " << level << " loc "
              << loc << " stage " << s;
          EXPECT_NEAR(3.0 * m.sigma_ns, 3.0 * f.sigma_ns, band)
              << "sigma " << sigma_scale << " level " << level << " loc "
              << loc << " stage " << s;
        }
        const double mp_band = ci_band(n, flat.min_period_sigma_ns, tc);
        EXPECT_NEAR(macro.min_period_mean_ns, flat.min_period_mean_ns, mp_band);
        EXPECT_NEAR(3.0 * macro.min_period_sigma_ns,
                    3.0 * flat.min_period_sigma_ns, mp_band);
      }
    }
  }
}

TEST_F(MacroFixture, WaferVerdictsAgreeWithFlatMcAcrossSeeds) {
  // Yield-verdict agreement fuzz: on macro-decided dies, the macromodel
  // severity may disagree with full MC at most at the band's stated
  // error rate (the same allowance the bench gates, with headroom for
  // discreteness on small wafers).
  const WaferModel wafer(test_wafer_config());
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
  for (const std::uint64_t seed : {0xd1e5ull, 0xabc123ull}) {
    YieldConfig off = macro_off_config();
    off.seed = seed;
    YieldConfig on = macro_on_config();
    on.seed = seed;
    const YieldReport flat = analyzer.analyze(wafer, off);
    const YieldReport macro = analyzer.analyze(wafer, on);
    ASSERT_EQ(flat.dies.size(), macro.dies.size());
    std::size_t decided = 0, mismatched = 0;
    for (std::size_t i = 0; i < macro.dies.size(); ++i) {
      if (macro.dies[i].triage_tier != TriageTier::Macro) continue;
      ++decided;
      if (macro.dies[i].mc_severity != flat.dies[i].mc_severity) ++mismatched;
    }
    EXPECT_GT(decided, 0u) << "seed " << seed;
    const double allowed = std::ceil(
        3.0 * (1.0 - on.triage.confidence) * static_cast<double>(decided));
    EXPECT_LE(static_cast<double>(mismatched), allowed) << "seed " << seed;
  }
}

// ---- restricted recharacterization (escalation ladder) ---------------------

TEST_F(MacroFixture, RecharacterizeMatchesFullCharacterizationUpTheLadder) {
  const Design& design = flow_->design();
  const VariationModel& model = flow_->variation();
  const IslandPlan& plan = flow_->island_plan();
  ASSERT_GT(plan.num_islands(), 0);

  StaEngine engine(flow_->sta());
  engine.compute_base(plan.corners_for_severity(0));
  StageMacroLibrary delta(design, engine, model);

  for (int level = 1; level <= plan.num_islands(); ++level) {
    engine.compute_base(plan.corners_for_severity(level));
    // Raising level-1 -> level flips exactly island `level`'s domain.
    delta.recharacterize(engine, static_cast<DomainId>(level));
    const StageMacroLibrary full(design, engine, model);
    EXPECT_EQ(delta.fingerprint(), full.fingerprint()) << "level " << level;
    EXPECT_GT(delta.recharacterize_fraction(static_cast<DomainId>(level)),
              0.0);
  }
}

TEST_F(MacroFixture, StageDomainIncidenceCoversGatingStages) {
  StaEngine engine(flow_->sta());
  engine.compute_base_all_low();
  const StageMacroLibrary lib(flow_->design(), engine, flow_->variation());
  // The base domain feeds every present gating stage on the tiny core.
  int touched = 0;
  for (PipeStage s :
       {PipeStage::Decode, PipeStage::Execute, PipeStage::WriteBack}) {
    if (lib.stage_touched(s, kDomainBase)) ++touched;
  }
  EXPECT_GT(touched, 0);
  // An out-of-range domain touches nothing.
  EXPECT_FALSE(lib.stage_touched(PipeStage::Execute, DomainId{255}));
  EXPECT_DOUBLE_EQ(lib.recharacterize_fraction(DomainId{255}), 0.0);
}

// ---- cache-key correctness across policy-transformed netlists --------------

TEST_F(MacroFixture, PolicyTransformedNetlistGetsItsOwnLibrary) {
  PolicyMix mix;
  mix.name = "sizing";
  mix.sizing.enabled = true;
  mix.sizing.min_crit_prob = 0.02;
  mix.crit_samples = 8;
  const CompiledPolicy cp =
      compile_policy_mix(mix, flow_->design(), flow_->sta(),
                         flow_->variation(), flow_->activity());
  ASSERT_TRUE(cp.transformed());
  ASSERT_GT(cp.stats.gates_upsized, 0u);

  const YieldAnalyzer base = YieldAnalyzer::from_flow(*flow_);
  const YieldAnalyzer compiled(*cp.design, *cp.sta, flow_->variation(),
                               flow_->island_plan(), flow_->razor_plan(),
                               *cp.activity,
                               1.0 / flow_->post_shifter_clock_ns());
  const MacroConfig mc{};
  const StageMacroLibrary& lib_base = base.macro_library(mc);
  const StageMacroLibrary& lib_compiled = compiled.macro_library(mc);
  // Upsizing changed stage timing, so the characterized rows must differ
  // — analyzers never share a library across netlist variants.
  EXPECT_NE(&lib_base, &lib_compiled);
  EXPECT_NE(lib_base.fingerprint(), lib_compiled.fingerprint());
}

TEST_F(MacroFixture, LibraryCacheReusedForSameKeyRebuiltForNewKey) {
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
  const MacroConfig a{};
  const StageMacroLibrary& first = analyzer.macro_library(a);
  const std::uint64_t passes_after_first = first.passes();
  // Same key: cached, no new characterization passes.
  const StageMacroLibrary& again = analyzer.macro_library(a);
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.passes(), passes_after_first);
  // New key: re-characterized with the new knot count.
  MacroConfig b;
  b.knots = 5;
  const StageMacroLibrary& rebuilt = analyzer.macro_library(b);
  EXPECT_EQ(rebuilt.config().knots, 5);
  // Same-key verdicts are stable across the rebuild boundary: a fresh
  // default-key library reproduces the original fingerprint.
  const StageMacroLibrary& back = analyzer.macro_library(a);
  StaEngine engine(flow_->sta());
  engine.compute_base_all_low();
  const StageMacroLibrary fresh(flow_->design(), engine, flow_->variation(),
                                a);
  EXPECT_EQ(back.fingerprint(), fresh.fingerprint());
}

// ---- macro tier report contracts -------------------------------------------

TEST_F(MacroFixture, MacroDecidedDiesSkipMcAndKeepSiliconBits) {
  const WaferModel wafer(test_wafer_config());
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
  const YieldReport off = analyzer.analyze(wafer, macro_off_config());
  YieldConfig on_cfg = macro_on_config();
  on_cfg.triage.band_scale = 0.0;
  on_cfg.triage.model_error_ns = 0.0;
  const YieldReport on = analyzer.analyze(wafer, on_cfg);

  EXPECT_EQ(on.triage_macro + on.triage_mc_fallback, on.dies.size());
  EXPECT_GT(on.triage_macro, 0u);
  EXPECT_EQ(on.triage_analytical, 0u);
  EXPECT_GT(on.triage_fraction(), 0.0);
  for (const DieOutcome& d : on.dies) {
    if (d.triage_tier != TriageTier::Macro) continue;
    EXPECT_EQ(d.mc_samples, 0);
    EXPECT_EQ(d.mc_stop, McStop::FixedBudget);
    EXPECT_GT(d.fmax_ghz, 0.0);
    EXPECT_GT(d.triage_margin_ns, d.triage_band_ns);
  }
  EXPECT_EQ(non_mc_fingerprint(on), non_mc_fingerprint(off));
}

TEST_F(MacroFixture, HugeBandMacroFallsBackToMcWithIdenticalResults) {
  const WaferModel wafer(test_wafer_config());
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
  const YieldReport off = analyzer.analyze(wafer, macro_off_config());
  YieldConfig on_cfg = macro_on_config();
  on_cfg.triage.model_error_ns = 1e9;
  const YieldReport on = analyzer.analyze(wafer, on_cfg);

  EXPECT_EQ(on.triage_macro, 0u);
  EXPECT_EQ(on.triage_mc_fallback, on.dies.size());
  ASSERT_EQ(on.dies.size(), off.dies.size());
  for (std::size_t i = 0; i < on.dies.size(); ++i) {
    EXPECT_EQ(on.dies[i].triage_tier, TriageTier::McFallback);
    EXPECT_EQ(on.dies[i].mc_severity, off.dies[i].mc_severity);
    EXPECT_EQ(on.dies[i].mc_samples, off.dies[i].mc_samples);
    EXPECT_DOUBLE_EQ(on.dies[i].fmax_ghz, off.dies[i].fmax_ghz);
  }
  EXPECT_EQ(non_mc_fingerprint(on), non_mc_fingerprint(off));
}

TEST_F(MacroFixture, MacroReportBitIdenticalAcrossThreadCounts) {
  const WaferModel wafer(test_wafer_config());
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
  const YieldConfig cfg = macro_on_config();
  const auto serialize = [&](const YieldReport& r) {
    std::ostringstream os;
    write_yield_csv(os, wafer, r);
    write_yield_json(os, r);
    return os.str();
  };
  ThreadPool four(4);
  const std::string serial_txt = serialize(analyzer.analyze(wafer, cfg));
  EXPECT_EQ(serialize(analyzer.analyze(wafer, cfg, &four)), serial_txt);
}

TEST_F(MacroFixture, ShardsWithoutSharedScreenReproduceTheMacroWaferRun) {
  const WaferModel wafer(test_wafer_config());
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
  const YieldConfig cfg = macro_on_config();
  const YieldReport full = analyzer.analyze(wafer, cfg);

  StaEngine engine(flow_->sta());
  CompensationController ctrl(flow_->design(), engine, flow_->variation(),
                              flow_->island_plan(), flow_->razor_plan());
  const std::size_t mid = wafer.num_dies() / 2;
  YieldAggregate agg = analyzer.analyze_shard(engine, ctrl, wafer, cfg, 0, mid);
  agg.merge(
      analyzer.analyze_shard(engine, ctrl, wafer, cfg, mid, wafer.num_dies()));

  EXPECT_EQ(agg.dies, full.dies.size());
  EXPECT_EQ(agg.triage_macro, full.triage_macro);
  EXPECT_EQ(agg.triage_mc_fallback, full.triage_mc_fallback);
  EXPECT_EQ(agg.shipped_dies(), full.shipped_dies());
  EXPECT_EQ(agg.mc_samples_drawn, full.mc_samples_drawn);
}

}  // namespace
}  // namespace vipvt
