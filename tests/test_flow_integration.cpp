// End-to-end integration tests over the Flow orchestrator: the whole
// paper pipeline on a scaled-down core, including the power comparisons
// of §5 (VI-based compensation beats chip-wide high Vdd) and determinism.

#include <gtest/gtest.h>

#include <memory>

#include "vi/flow.hpp"

namespace vipvt {
namespace {

FlowConfig tiny_flow_config(SliceDir dir = SliceDir::Vertical) {
  FlowConfig cfg;
  cfg.vex = VexConfig::tiny();
  // Small cores have proportionally longer island boundaries: leave
  // extra whitespace for the level shifters.
  cfg.floorplan.target_utilization = 0.55;
  cfg.scenario.sweep_points = 6;
  cfg.scenario.mc.samples = 100;
  cfg.islands.dir = dir;
  cfg.islands.mc_samples = 80;
  cfg.sim_cycles = 150;
  return cfg;
}

class FlowFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    flow_ = new Flow(tiny_flow_config());
    flow_->simulate_activity();  // pulls the whole pipeline
  }
  static void TearDownTestSuite() {
    delete flow_;
    flow_ = nullptr;
  }
  static Flow* flow_;
};

Flow* FlowFixture::flow_ = nullptr;

TEST_F(FlowFixture, FrontendProducesTimedDesign) {
  EXPECT_GT(flow_->nominal_clock_ns(), 0.0);
  EXPECT_GT(flow_->design().num_instances(), 1000u);
  EXPECT_GE(flow_->recovery_report().swapped_to_hvt, 1u);
  EXPECT_GE(flow_->recovery_report().wns_after_ns, 0.0);
}

TEST_F(FlowFixture, ScenariosCoverDiagonal) {
  const ScenarioSet& sc = flow_->scenarios();
  EXPECT_EQ(sc.sweep.size(), 6u);
  EXPECT_GE(sc.max_severity(), 1);
  // Severity decreases away from the A corner.
  EXPECT_GE(sc.sweep.front().severity, sc.sweep.back().severity);
}

TEST_F(FlowFixture, IslandsNestAndShiftersInserted) {
  const IslandPlan& plan = flow_->island_plan();
  EXPECT_GE(plan.num_islands(), 1);
  for (int k = 1; k < plan.num_islands(); ++k) {
    EXPECT_GE(plan.cuts[k], plan.cuts[k - 1]);
  }
  const ShifterReport& ls = flow_->shifter_report();
  EXPECT_GT(ls.inserted, 0u);
  EXPECT_GT(ls.area_fraction, 0.0);
  EXPECT_LT(ls.area_fraction, 0.6);
  // Insertion costs performance (paper: 8-15 %), but not absurdly.
  EXPECT_GT(flow_->shifter_perf_degradation(), 0.0);
  EXPECT_LT(flow_->shifter_perf_degradation(), 0.5);
}

TEST_F(FlowFixture, SensorPlanIsSelective) {
  const RazorPlan& plan = flow_->razor_plan();
  EXPECT_GT(plan.total(), 0u);
  EXPECT_LT(plan.total(), flow_->design().num_flops());
}

TEST_F(FlowFixture, ViPowerBeatsChipWide) {
  // Fig. 5's core claim: for every violation scenario, raising only the
  // needed islands consumes less total power than chip-wide high Vdd.
  const IslandPlan& plan = flow_->island_plan();
  const DieLocation loc = DieLocation::point('A');
  const PowerBreakdown chip_wide = flow_->power_chip_wide_high(loc);
  const PowerBreakdown all_low = flow_->power_all_low(loc);
  double prev = 0.0;
  for (int sev = plan.num_islands(); sev >= 1; --sev) {
    const PowerBreakdown vi = flow_->power_for_severity(sev, loc);
    EXPECT_LT(vi.total_mw(), chip_wide.total_mw()) << "severity " << sev;
    EXPECT_GT(vi.total_mw(), all_low.total_mw()) << "severity " << sev;
    if (prev > 0.0) {
      // Fewer raised islands => less power.
      EXPECT_LT(vi.total_mw(), prev);
    }
    prev = vi.total_mw();
  }
}

TEST_F(FlowFixture, LevelShifterPowerShareIsSmall) {
  // Table 2: LS power is a minor share of total.  The tiny core has a
  // proportionally long island boundary (more shifters per cell than the
  // full VEX, which lands in the paper's few-percent range — see the
  // table2_ls_overhead bench), so the bound here is loose.
  const PowerBreakdown p =
      flow_->power_for_severity(flow_->island_plan().num_islands(),
                                DieLocation::point('A'));
  EXPECT_GT(p.level_shifter_mw, 0.0);
  EXPECT_LT(p.level_shifter_mw / p.total_mw(), 0.30);
}

TEST_F(FlowFixture, CompensationControllerWorksEndToEnd) {
  CompensationController ctrl = flow_->make_controller();
  Rng rng(2026);
  const VirtualChip chip = fabricate_chip(
      flow_->design(), flow_->variation(), DieLocation::point('A'), rng);
  const CompensationOutcome out = ctrl.compensate(chip);
  EXPECT_TRUE(out.timing_met);
  EXPECT_GE(out.islands_raised, out.detected_severity);
}

TEST(FlowDeterminism, SameSeedSameResults) {
  auto run = [] {
    Flow flow(tiny_flow_config());
    flow.simulate_activity();
    const PowerBreakdown p =
        flow.power_for_severity(1, DieLocation::point('B'));
    return std::tuple{flow.nominal_clock_ns(), flow.island_plan().cuts,
                      flow.shifter_report().inserted, p.total_mw()};
  };
  EXPECT_EQ(run(), run());
}

TEST(FlowHorizontal, HorizontalDirectionCompletes) {
  Flow flow(tiny_flow_config(SliceDir::Horizontal));
  flow.simulate_activity();
  EXPECT_EQ(flow.island_plan().dir, SliceDir::Horizontal);
  EXPECT_GT(flow.shifter_report().inserted, 0u);
  const PowerBreakdown p = flow.power_for_severity(
      flow.island_plan().num_islands(), DieLocation::point('A'));
  EXPECT_GT(p.total_mw(), 0.0);
}

TEST(FlowGuards, AccessorsThrowBeforeSteps) {
  Flow flow(tiny_flow_config());
  EXPECT_THROW(flow.scenarios(), std::logic_error);
  EXPECT_THROW(flow.island_plan(), std::logic_error);
  EXPECT_THROW(flow.shifter_report(), std::logic_error);
  EXPECT_THROW(flow.razor_plan(), std::logic_error);
  EXPECT_THROW(flow.activity(), std::logic_error);
  EXPECT_THROW(flow.power_all_low(DieLocation::point('A')), std::logic_error);
}

}  // namespace
}  // namespace vipvt
