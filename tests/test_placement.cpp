// Placement tests: floorplan geometry, legality (no overlaps, on-site),
// wirelength sanity (placed beats random), density map accounting, and
// the incremental allocator used by level-shifter insertion.

#include <gtest/gtest.h>

#include <set>

#include "netlist/vex.hpp"
#include "placement/floorplan.hpp"
#include "placement/placer.hpp"

namespace vipvt {
namespace {

class PlacementTest : public ::testing::Test {
 protected:
  PlacementTest()
      : design_(make_vex_design(lib_, VexConfig::tiny())),
        fp_(Floorplan::for_design(design_, FloorplanConfig{})) {}

  Library lib_ = make_st65lp_like();
  Design design_;
  Floorplan fp_;
};

TEST_F(PlacementTest, FloorplanSizedToUtilization) {
  const double util = design_.total_area() / fp_.die().area();
  EXPECT_NEAR(util, 0.70, 0.05);
  EXPECT_GT(fp_.num_rows(), 4);
  EXPECT_GT(fp_.sites_per_row(), 16);
}

TEST_F(PlacementTest, RowSiteLookupRoundTrips) {
  EXPECT_EQ(fp_.row_at(fp_.row_y(3) + 0.1), 3);
  EXPECT_EQ(fp_.site_at(fp_.site_x(17) + 0.01), 17);
  // Clamped outside the die.
  EXPECT_EQ(fp_.row_at(-100.0), 0);
  EXPECT_EQ(fp_.row_at(1e9), fp_.num_rows() - 1);
}

TEST_F(PlacementTest, PlacesEveryInstanceLegally) {
  PlacementDb db(fp_);
  const PlaceResult res = place_design(design_, fp_, PlacerConfig{}, db);
  EXPECT_GT(res.hpwl_um, 0.0);

  std::set<std::pair<int, long>> used;
  for (InstId i = 0; i < design_.num_instances(); ++i) {
    const Instance& inst = design_.instance(i);
    ASSERT_TRUE(inst.placed);
    EXPECT_TRUE(fp_.die().contains(inst.pos)) << inst.name;
    // On a row boundary and a site boundary.
    const int row = fp_.row_at(inst.pos.y);
    const int site = fp_.site_at(inst.pos.x);
    EXPECT_NEAR(fp_.row_y(row), inst.pos.y, 1e-6);
    EXPECT_NEAR(fp_.site_x(site), inst.pos.x, 1e-6);
    // No overlaps: every site span unique.
    const int span = design_.cell_of(i).sites;
    for (int s = 0; s < span; ++s) {
      const bool fresh = used.insert({row, site + s}).second;
      EXPECT_TRUE(fresh) << "overlap at row " << row << " site " << site + s;
    }
  }
}

TEST_F(PlacementTest, ConnectivityDrivenBeatsRandom) {
  PlacementDb db(fp_);
  PlacerConfig cfg;
  place_design(design_, fp_, cfg, db);
  const double placed_hpwl = total_hpwl(design_);

  // Random-but-legal baseline: random initial positions, no pull.
  Design rnd = make_vex_design(lib_, VexConfig::tiny());
  Floorplan fp2 = Floorplan::for_design(rnd, FloorplanConfig{});
  PlacementDb db2(fp2);
  PlacerConfig rcfg;
  rcfg.iterations = 0;
  rcfg.random_init = true;
  place_design(rnd, fp2, rcfg, db2);
  const double random_hpwl = total_hpwl(rnd);

  EXPECT_LT(placed_hpwl, 0.5 * random_hpwl);
}

TEST_F(PlacementTest, DeterministicForSeed) {
  PlacementDb db1(fp_);
  place_design(design_, fp_, PlacerConfig{}, db1);
  std::vector<Point> first;
  for (const auto& inst : design_.instances()) first.push_back(inst.pos);

  Design again = make_vex_design(lib_, VexConfig::tiny());
  Floorplan fp2 = Floorplan::for_design(again, FloorplanConfig{});
  PlacementDb db2(fp2);
  place_design(again, fp2, PlacerConfig{}, db2);
  for (InstId i = 0; i < again.num_instances(); ++i) {
    EXPECT_EQ(again.instance(i).pos, first[i]);
  }
}

TEST_F(PlacementTest, StagesInterleaveAcrossFloorplan) {
  // The methodology's premise: performance-driven placement interleaves
  // pipeline stages, so slices cut across all stages.  Check that EX
  // cells appear in most vertical quarters of the die.
  PlacementDb db(fp_);
  place_design(design_, fp_, PlacerConfig{}, db);
  std::array<int, 4> quarters{};
  for (const auto& inst : design_.instances()) {
    if (inst.stage != PipeStage::Execute) continue;
    const int q = std::min(
        3, static_cast<int>((inst.pos.x - fp_.die().lo.x) / fp_.die().width() * 4));
    ++quarters[static_cast<std::size_t>(q)];
  }
  int populated = 0;
  for (int q : quarters) populated += (q > 0);
  EXPECT_GE(populated, 3);
}

TEST_F(PlacementTest, DensityMapAccountsAllArea) {
  PlacementDb db(fp_);
  place_design(design_, fp_, PlacerConfig{}, db);
  const auto map = density_map(design_, fp_, 8);
  double sum = 0.0;
  for (double v : map) sum += v;
  EXPECT_NEAR(sum, design_.total_area(), 1e-6);
}

TEST_F(PlacementTest, HpwlOfKnownNet) {
  // Two cells placed manually: HPWL equals the center-to-center bbox.
  Design d("two", lib_);
  const NetId a = d.add_primary_input("a");
  const NetId mid = d.add_net("mid");
  const NetId out = d.add_net("out");
  const CellId inv = lib_.cell_for(CellFunc::Inv);
  d.add_instance("u0", inv, PipeStage::Other, kUnitTop, {a, mid});
  d.add_instance("u1", inv, PipeStage::Other, kUnitTop, {mid, out});
  d.instance(0).pos = {0.0, 0.0};
  d.instance(0).placed = true;
  d.instance(1).pos = {10.0, 3.6};
  d.instance(1).placed = true;
  EXPECT_NEAR(net_hpwl(d, mid), 10.0 + 3.6, 1e-9);
}

TEST_F(PlacementTest, AllocatorFindsNearestFreeSpan) {
  PlacementDb db(fp_);
  // Fill row 2 except a gap at sites 10..12.
  for (int s = 0; s < fp_.sites_per_row(); ++s) {
    if (s >= 10 && s < 13) continue;
    db.occupy(2, s, 1);
  }
  const Point target{fp_.site_x(11), fp_.row_y(2)};
  const auto got = db.allocate_near(target, 3);
  ASSERT_TRUE(got.has_value());
  EXPECT_NEAR(got->x, fp_.site_x(10), 1e-9);
  EXPECT_NEAR(got->y, fp_.row_y(2), 1e-9);
  // The span is now taken; next request lands elsewhere.
  const auto next = db.allocate_near(target, 3);
  ASSERT_TRUE(next.has_value());
  EXPECT_NE(next->y, got->y);
}

TEST_F(PlacementTest, OccupancyGuards) {
  PlacementDb db(fp_);
  db.occupy(0, 0, 2);
  EXPECT_THROW(db.occupy(0, 1, 1), std::logic_error);
  db.release(0, 0, 2);
  EXPECT_THROW(db.release(0, 0, 1), std::logic_error);
  EXPECT_FALSE(db.is_free(-1, 0, 1));
  EXPECT_FALSE(db.is_free(0, fp_.sites_per_row() - 1, 3));
}

}  // namespace
}  // namespace vipvt
