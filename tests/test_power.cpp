// Power-engine tests: accounting identities, Vdd-squared scaling,
// leakage corner behaviour, unit/stage/domain rollups, and the dual-Vth
// power-recovery pass.

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/vex.hpp"
#include "placement/placer.hpp"
#include "power/power.hpp"
#include "sim/stimulus.hpp"
#include "timing/recovery.hpp"
#include "timing/sta.hpp"

namespace vipvt {
namespace {

class PowerFixture : public ::testing::Test {
 protected:
  PowerFixture() : design_(make_vex_design(lib_, VexConfig::tiny())) {
    fp_ = std::make_unique<Floorplan>(
        Floorplan::for_design(design_, FloorplanConfig{}));
    db_ = std::make_unique<PlacementDb>(*fp_);
    place_design(design_, *fp_, PlacerConfig{}, *db_);
    LogicSimulator sim(design_);
    FirStimulus stim(design_, VexConfig::tiny(), 3);
    stim.run(sim, 100);
    activity_.toggle_rate.resize(design_.num_nets());
    for (NetId n = 0; n < design_.num_nets(); ++n) {
      activity_.toggle_rate[n] = sim.toggle_rate(n);
    }
  }

  Library lib_ = make_st65lp_like();
  Design design_;
  std::unique_ptr<Floorplan> fp_;
  std::unique_ptr<PlacementDb> db_;
  ActivityDb activity_;
};

TEST_F(PowerFixture, RollupsSumToTotal) {
  PowerEngine engine(design_, activity_);
  PowerConfig cfg;
  const PowerBreakdown p = engine.compute({}, cfg);
  EXPECT_GT(p.total_mw(), 0.0);
  double unit_sum = 0.0;
  for (double v : p.per_unit_mw) unit_sum += v;
  EXPECT_NEAR(unit_sum, p.total_mw(), 1e-9);
  double stage_sum = 0.0;
  for (double v : p.per_stage_mw) stage_sum += v;
  EXPECT_NEAR(stage_sum, p.total_mw(), 1e-9);
  double domain_sum = 0.0;
  for (double v : p.per_domain_mw) domain_sum += v;
  EXPECT_NEAR(domain_sum, p.total_mw(), 1e-9);
  EXPECT_NEAR(p.total_mw(),
              p.switching_mw + p.internal_mw + p.leakage_mw, 1e-12);
}

TEST_F(PowerFixture, ChipWideHighVddCostsMoreDynamic) {
  PowerEngine engine(design_, activity_);
  PowerConfig cfg;
  const PowerBreakdown low = engine.compute({}, cfg);
  const std::vector<int> high = {kVddHigh};
  const PowerBreakdown hi = engine.compute(high, cfg);
  // CV^2: 1.2V costs 44% more switching power.
  EXPECT_NEAR(hi.switching_mw / low.switching_mw, 1.44, 0.01);
  EXPECT_GT(hi.internal_mw, low.internal_mw);
  EXPECT_GT(hi.leakage_mw, low.leakage_mw);
}

TEST_F(PowerFixture, DomainScopedRaiseOnlyTouchesDomain) {
  // Move EX cells into domain 1; raising domain 1 should not change
  // the power attributed to domain 0.
  for (InstId i = 0; i < design_.num_instances(); ++i) {
    if (design_.instance(i).stage == PipeStage::Execute) {
      design_.instance(i).domain = 1;
    }
  }
  PowerEngine engine(design_, activity_);
  PowerConfig cfg;
  const PowerBreakdown base = engine.compute({}, cfg);
  const std::vector<int> corners = {kVddLow, kVddHigh};
  const PowerBreakdown boosted = engine.compute(corners, cfg);
  ASSERT_EQ(base.per_domain_mw.size(), 2u);
  EXPECT_GT(boosted.per_domain_mw[1], base.per_domain_mw[1] * 1.2);
  // Domain 0 unchanged except nets whose *driver* sits in domain 1 —
  // attribution is by driver, so domain 0 numbers are identical.
  EXPECT_NEAR(boosted.per_domain_mw[0], base.per_domain_mw[0], 1e-9);
}

TEST_F(PowerFixture, ZeroActivityLeavesOnlyLeakage) {
  const ActivityDb quiet = ActivityDb::uniform(design_, 0.0);
  PowerEngine engine(design_, quiet);
  PowerConfig cfg;
  const PowerBreakdown p = engine.compute({}, cfg);
  EXPECT_DOUBLE_EQ(p.switching_mw, 0.0);
  EXPECT_DOUBLE_EQ(p.internal_mw, 0.0);
  EXPECT_GT(p.leakage_mw, 0.0);
}

TEST_F(PowerFixture, FrequencyScalesDynamicOnly) {
  PowerEngine engine(design_, activity_);
  PowerConfig slow, fast;
  slow.clock_freq_ghz = 0.1;
  fast.clock_freq_ghz = 0.2;
  const PowerBreakdown ps = engine.compute({}, slow);
  const PowerBreakdown pf = engine.compute({}, fast);
  EXPECT_NEAR(pf.dynamic_mw(), 2.0 * ps.dynamic_mw(), 1e-9);
  EXPECT_NEAR(pf.leakage_mw, ps.leakage_mw, 1e-12);
}

TEST_F(PowerFixture, VariationContextRaisesFastCornerLeakage) {
  CharParams cp = lib_.char_params();
  ExposureField field = ExposureField::scaled_65nm(cp);
  VariationModel model(cp, field);
  PowerEngine engine(design_, activity_);
  PowerConfig cfg;
  cfg.variation = &model;
  // Fast corner (short gates, point D-ish upper field) leaks more than
  // slow corner (point A).
  const DieLocation slow_loc = DieLocation::point('A');
  const DieLocation fast_loc = DieLocation::point('D');
  cfg.location = &slow_loc;
  const double leak_slow = engine.compute({}, cfg).leakage_mw;
  cfg.location = &fast_loc;
  const double leak_fast = engine.compute({}, cfg).leakage_mw;
  EXPECT_LT(leak_slow, leak_fast);  // point A = longest gates = least leak
}

TEST_F(PowerFixture, ActivityMismatchRejected) {
  ActivityDb bad;
  bad.toggle_rate.assign(3, 0.1);
  EXPECT_THROW(PowerEngine(design_, bad), std::invalid_argument);
}

TEST(PowerRecovery, CollapsesLeakageAndKeepsTiming) {
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig::tiny());
  Floorplan fp = Floorplan::for_design(d, FloorplanConfig{});
  PlacementDb db(fp);
  place_design(d, fp, PlacerConfig{}, db);
  StaEngine sta(d, StaOptions{});
  sta.set_clock_period(sta.min_period() * 1.04);

  const RecoveryReport rep = recover_power(d, sta, RecoveryConfig{});
  EXPECT_GT(rep.swapped_to_hvt + rep.swapped_to_uhvt, d.num_instances() / 4);
  EXPECT_LT(rep.leakage_after_mw, 0.5 * rep.leakage_before_mw);
  EXPECT_GE(rep.wns_after_ns, 0.0) << "recovery broke timing";
  EXPECT_GE(rep.wns_before_ns, 0.0);
}

TEST(PowerRecovery, BuildsTheSlackWall) {
  // After recovery every pipeline stage should sit near the clock: the
  // paper's balanced-stage profile.
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig::tiny());
  Floorplan fp = Floorplan::for_design(d, FloorplanConfig{});
  PlacementDb db(fp);
  place_design(d, fp, PlacerConfig{}, db);
  StaEngine sta(d, StaOptions{});
  const double clock = sta.min_period() * 1.04;
  sta.set_clock_period(clock);
  recover_power(d, sta, RecoveryConfig{});
  const StaResult res = sta.analyze();
  for (PipeStage s :
       {PipeStage::Decode, PipeStage::Execute, PipeStage::WriteBack}) {
    const double wns = res.stage_worst(s);
    EXPECT_GE(wns, 0.0) << stage_name(s);
    EXPECT_LT(wns, 0.30 * clock) << stage_name(s) << " too much slack left";
  }
}

TEST(PowerRecovery, TighterTargetKeepsMoreSlowCells) {
  Library lib = make_st65lp_like();
  auto run = [&](double slack_target) {
    Design d = make_vex_design(lib, VexConfig::tiny());
    Floorplan fp = Floorplan::for_design(d, FloorplanConfig{});
    PlacementDb db(fp);
    place_design(d, fp, PlacerConfig{}, db);
    StaEngine sta(d, StaOptions{});
    sta.set_clock_period(sta.min_period() * 1.04);
    RecoveryConfig cfg;
    cfg.stage_slack_target.fill(slack_target);
    const RecoveryReport rep = recover_power(d, sta, cfg);
    return rep.swapped_to_hvt + rep.swapped_to_uhvt;
  };
  // Demanding more slack forces more downgrades => fewer slow cells left.
  EXPECT_LT(run(0.030), run(0.005));
}

TEST(PowerRecovery, StageTargetsAreMet) {
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig::tiny());
  Floorplan fp = Floorplan::for_design(d, FloorplanConfig{});
  PlacementDb db(fp);
  place_design(d, fp, PlacerConfig{}, db);
  StaEngine sta(d, StaOptions{});
  const double clock = sta.min_period() * 1.04;
  sta.set_clock_period(clock);
  RecoveryConfig cfg;
  recover_power(d, sta, cfg);
  const StaResult res = sta.analyze();
  // Each reachable stage sits at (or above) its slack target but not
  // wildly above the larger of target and the all-SVT floor.
  for (PipeStage s :
       {PipeStage::Decode, PipeStage::Execute, PipeStage::WriteBack}) {
    const double target =
        cfg.stage_slack_target[static_cast<std::size_t>(s)] * clock;
    const double wns = res.stage_worst(s);
    // Reachability depends on structure; at minimum timing is not broken
    // beyond a small estimation error.
    EXPECT_GE(wns, std::min(0.0, target - 0.05 * clock)) << stage_name(s);
  }
  EXPECT_GE(res.wns, -0.02 * clock);
}

}  // namespace
}  // namespace vipvt
