// Tests for the EDA interchange writers: structural well-formedness,
// completeness (every instance/net present), determinism, and the SDF
// factor annotation used by the SSTA loop.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>

#include "io/writers.hpp"
#include "netlist/builder.hpp"
#include "netlist/vex.hpp"
#include "placement/placer.hpp"

namespace vipvt {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

class WriterFixture : public ::testing::Test {
 protected:
  WriterFixture() : design_(make_vex_design(lib_, VexConfig::tiny())) {
    fp_ = std::make_unique<Floorplan>(
        Floorplan::for_design(design_, FloorplanConfig{}));
    db_ = std::make_unique<PlacementDb>(*fp_);
    place_design(design_, *fp_, PlacerConfig{}, *db_);
    sta_ = std::make_unique<StaEngine>(design_, StaOptions{});
  }

  Library lib_ = make_st65lp_like();
  Design design_;
  std::unique_ptr<Floorplan> fp_;
  std::unique_ptr<PlacementDb> db_;
  std::unique_ptr<StaEngine> sta_;
};

TEST_F(WriterFixture, VerilogContainsEveryInstance) {
  std::ostringstream os;
  write_verilog(os, design_);
  const std::string v = os.str();
  EXPECT_NE(v.find("module "), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // One instantiation line per instance (library cell name + space).
  std::size_t inst_lines = 0;
  std::istringstream in(v);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("  ", 0) == 0 &&
        (line.find("_X1") != std::string::npos ||
         line.find("_X2") != std::string::npos ||
         line.find("_X4") != std::string::npos)) {
      ++inst_lines;
    }
  }
  EXPECT_EQ(inst_lines, design_.num_instances());
  // Ports declared.
  EXPECT_GE(count_occurrences(v, "input "), design_.primary_inputs().size());
  EXPECT_GE(count_occurrences(v, "output "), design_.primary_outputs().size());
}

TEST_F(WriterFixture, VerilogEscaping) {
  EXPECT_EQ(verilog_escape("foo"), "foo");
  EXPECT_EQ(verilog_escape("a[3]"), "\\a[3] ");
  EXPECT_EQ(verilog_escape("u/v"), "\\u/v ");
  EXPECT_EQ(verilog_escape("_x$1"), "_x$1");
  EXPECT_EQ(verilog_escape("3bad"), "\\3bad ");
}

TEST_F(WriterFixture, DefHasAllComponentsAndRows) {
  std::ostringstream os;
  write_def(os, design_, *fp_);
  const std::string def = os.str();
  EXPECT_NE(def.find("VERSION 5.8"), std::string::npos);
  EXPECT_NE(def.find("DIEAREA"), std::string::npos);
  EXPECT_EQ(count_occurrences(def, "ROW row_"),
            static_cast<std::size_t>(fp_->num_rows()));
  EXPECT_EQ(count_occurrences(def, "+ PLACED"), design_.num_instances());
  EXPECT_NE(def.find("END DESIGN"), std::string::npos);
}

TEST_F(WriterFixture, SdfCoversEveryInstanceWithArcs) {
  std::ostringstream os;
  write_sdf(os, design_, *sta_);
  const std::string sdf = os.str();
  EXPECT_NE(sdf.find("(SDFVERSION \"3.0\")"), std::string::npos);
  // Tie cells have no arcs; everything else gets one CELL entry.
  std::size_t with_arcs = 0;
  for (InstId i = 0; i < design_.num_instances(); ++i) {
    if (!design_.cell_of(i).arcs.empty()) ++with_arcs;
  }
  EXPECT_EQ(count_occurrences(sdf, "(INSTANCE "), with_arcs);
  EXPECT_GT(count_occurrences(sdf, "(IOPATH "), design_.num_instances());
}

TEST_F(WriterFixture, SdfFactorsScaleDelays) {
  std::ostringstream base_os, scaled_os;
  write_sdf(base_os, design_, *sta_);
  std::vector<double> factors(design_.num_instances(), 2.0);
  SdfOptions opts;
  opts.inst_factor = factors;
  write_sdf(scaled_os, design_, *sta_, opts);
  // Spot check: pull the first IOPATH delay from both and compare.
  auto first_delay = [](const std::string& sdf) {
    const auto pos = sdf.find("(IOPATH ");
    const auto open = sdf.find('(', pos + 8);
    const auto close = sdf.find(')', open);
    return std::stod(sdf.substr(open + 1, close - open - 1));
  };
  // SDF prints 6 fractional digits; allow one ULP of that rounding.
  EXPECT_NEAR(first_delay(scaled_os.str()), 2.0 * first_delay(base_os.str()),
              3e-6);
}

TEST_F(WriterFixture, WritersAreDeterministic) {
  std::ostringstream a, b;
  write_verilog(a, design_);
  write_verilog(b, design_);
  EXPECT_EQ(a.str(), b.str());
  std::ostringstream c, d;
  write_sdf(c, design_, *sta_);
  write_sdf(d, design_, *sta_);
  EXPECT_EQ(c.str(), d.str());
}

TEST_F(WriterFixture, LibertySummaryListsEveryCell) {
  std::ostringstream os;
  write_liberty_summary(os, lib_);
  const std::string lib_text = os.str();
  EXPECT_EQ(count_occurrences(lib_text, "  cell ("), lib_.num_cells());
  EXPECT_NE(lib_text.find("cell (LS_X1)"), std::string::npos);
  EXPECT_NE(lib_text.find("cell (RAZOR_DFF_X1)"), std::string::npos);
}

TEST_F(WriterFixture, FileWritersCreateFiles) {
  const std::string dir = ::testing::TempDir();
  write_verilog_file(dir + "/t.v", design_);
  write_def_file(dir + "/t.def", design_, *fp_);
  write_sdf_file(dir + "/t.sdf", design_, *sta_);
  std::ifstream v(dir + "/t.v"), d(dir + "/t.def"), s(dir + "/t.sdf");
  EXPECT_TRUE(v.good());
  EXPECT_TRUE(d.good());
  EXPECT_TRUE(s.good());
  EXPECT_THROW(write_verilog_file("/nonexistent_dir_xyz/t.v", design_),
               std::runtime_error);
}

TEST(WriterSmall, HandWrittenNetlistRoundTripsNames) {
  Library lib = make_st65lp_like();
  Design d("small", lib);
  NetlistBuilder b(d);
  b.clock_input("clk");
  Bus in = b.input_bus("data", 2);
  const NetId q = b.dff(b.xor2(in[0], in[1]));
  b.output(q);
  std::ostringstream os;
  write_verilog(os, d);
  const std::string v = os.str();
  EXPECT_NE(v.find("\\data[0] "), std::string::npos);
  EXPECT_NE(v.find("\\data[1] "), std::string::npos);
  EXPECT_NE(v.find("XOR2_X1"), std::string::npos);
  EXPECT_NE(v.find("DFF_X1"), std::string::npos);
}

}  // namespace
}  // namespace vipvt
