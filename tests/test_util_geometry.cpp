// Geometry primitive tests (points, rects, distances) plus the table
// renderer used by the benchmark harnesses.

#include <gtest/gtest.h>

#include "util/geometry.hpp"
#include "util/table.hpp"

namespace vipvt {
namespace {

TEST(Point, Arithmetic) {
  const Point a{1.0, 2.0}, b{3.0, 5.0};
  EXPECT_EQ((a + b), (Point{4.0, 7.0}));
  EXPECT_EQ((b - a), (Point{2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Point{2.0, 4.0}));
}

TEST(Point, Distances) {
  EXPECT_DOUBLE_EQ(manhattan({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(euclidean({0, 0}, {3, 4}), 5.0);
}

TEST(Rect, BasicQueries) {
  const Rect r{{0, 0}, {4, 2}};
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
  EXPECT_DOUBLE_EQ(r.height(), 2.0);
  EXPECT_DOUBLE_EQ(r.area(), 8.0);
  EXPECT_EQ(r.center(), (Point{2.0, 1.0}));
  EXPECT_TRUE(r.contains({4.0, 2.0}));  // boundary inclusive
  EXPECT_FALSE(r.contains({4.1, 1.0}));
}

TEST(Rect, Overlap) {
  const Rect a{{0, 0}, {2, 2}};
  EXPECT_TRUE(a.overlaps({{1, 1}, {3, 3}}));
  EXPECT_FALSE(a.overlaps({{2, 0}, {3, 1}}));  // touching is not overlap
  EXPECT_FALSE(a.overlaps({{5, 5}, {6, 6}}));
}

TEST(Rect, ExpandFromEmpty) {
  Rect r = Rect::empty();
  EXPECT_TRUE(r.is_empty());
  r.expand({1.0, 2.0});
  EXPECT_FALSE(r.is_empty());
  EXPECT_DOUBLE_EQ(r.area(), 0.0);
  r.expand({-1.0, 4.0});
  EXPECT_DOUBLE_EQ(r.width(), 2.0);
  EXPECT_DOUBLE_EQ(r.height(), 2.0);
}

TEST(Table, RendersAligned) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.5, 2)});
  t.add_row({"b", Table::pct(0.1234, 1)});
  const std::string s = t.render();
  EXPECT_NE(s.find("| alpha | 1.50  |"), std::string::npos) << s;
  EXPECT_NE(s.find("12.3%"), std::string::npos) << s;
}

TEST(Table, RejectsBadRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 3), "3.142");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
  EXPECT_EQ(Table::pct(0.08, 0), "8%");
}

}  // namespace
}  // namespace vipvt
